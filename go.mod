module quark

go 1.24
