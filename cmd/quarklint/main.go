// Command quarklint runs quark's project-specific static-analysis
// suite (internal/lint): determlint, locklint, stagelint, persistlint,
// and obslint — the invariants behind byte-identical goldens, the
// global lock order, prepare/commit staging, tmp-then-rename CRC
// persistence, and zero-cost observability.
//
// Two modes:
//
// Standalone (does its own `go list` + type-check; no findings = exit 0):
//
//	go run ./cmd/quarklint [-tags sqlite] ./...
//
// As a `go vet` backend, speaking the vettool unit protocol
// (-V=full / -flags handshakes and a vet.cfg compilation unit):
//
//	go build -o quarklint ./cmd/quarklint
//	go vet -vettool=$(pwd)/quarklint ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quark/internal/lint"
)

func main() {
	// The go command's handshakes arrive as raw args before normal flag
	// parsing; answer them first.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// Release-style version line: three fields, f[1] == "version".
			fmt.Println("quarklint version v1-" + strings.Join(analyzerNames(), "-"))
			return
		case arg == "-flags" || arg == "--flags":
			// JSON description of tool flags; we expose none to vet.
			fmt.Println("[]")
			return
		}
	}

	tags := flag.String("tags", "", "build tags for the standalone loader (comma-separated)")
	dir := flag.String("C", "", "directory to run the standalone loader in")
	flag.Parse()
	args := flag.Args()

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}
	runStandalone(*dir, *tags, args)
}

func analyzerNames() []string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return names
}

// runUnit analyzes one compilation unit handed over by `go vet`.
func runUnit(cfgFile string) {
	pkg, cfg, err := lint.LoadUnit(cfgFile)
	if cfg != nil && cfg.VetxOutput != "" {
		// We compute no facts; an empty vetx file keeps the go command's
		// cache bookkeeping happy either way.
		_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cfg.VetxOnly || cfg.IsTestUnit() {
		return
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// runStandalone loads, checks, and reports over full package patterns.
func runStandalone(dir, tags string, patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(lint.LoadOptions{Dir: dir, Tags: tags}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	fmt.Fprintf(os.Stderr, "quarklint: %d package(s), %d finding(s)\n", len(pkgs), len(diags))
	if len(diags) > 0 {
		os.Exit(2)
	}
}
