// Command quark demonstrates the system end to end on the paper's running
// example: it loads the product/vendor database (Figure 2), registers the
// catalog view (Figure 3), creates the Notify trigger (Section 2.2),
// prints the generated SQL trigger (compare Figure 16), applies the
// paper's price update, and shows the resulting notification.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quark/internal/core"
	"quark/internal/fixtures"
	"quark/internal/obs"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

var (
	obsAddr = flag.String("obs.addr", "", "serve /metrics, /snapshot, and pprof on this address")
	obsHold = flag.Duration("obs.hold", 0, "keep the debug server up this long after the demo finishes")
)

const catalogView = `
<catalog>
{for $prodname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $prodname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 where count($vendors) >= 2
 return <product name={$prodname}>
   { for $vendor in $vendors
     return <vendor>
       {$vendor/*}
     </vendor>}
 </product>}
</catalog>`

const notifyTrigger = `
CREATE TRIGGER Notify AFTER UPDATE
ON view('catalog')/product
WHERE OLD_NODE/@name = 'CRT 15'
DO notifySmith(NEW_NODE)`

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quark:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		return err
	}
	engine := core.NewEngine(db, core.ModeGroupedAgg)

	if *obsAddr != "" {
		reg := obs.New()
		engine.EnableObs(reg)
		srv, err := obs.Serve(*obsAddr, reg, func() any { return engine.Snapshot() })
		if err != nil {
			return err
		}
		fmt.Printf("observability: serving /metrics, /snapshot, /debug/pprof on %s\n", srv.Addr())
		defer func() {
			if *obsHold > 0 {
				fmt.Printf("observability: holding the debug server for %s\n", *obsHold)
				time.Sleep(*obsHold)
			}
			_ = srv.Close()
		}()
	}

	engine.RegisterAction("notifySmith", func(inv core.Invocation) error {
		fmt.Println("\n=== notifySmith invoked ===")
		fmt.Printf("trigger: %s, event: %s\n", inv.Trigger, inv.Event)
		fmt.Println("NEW_NODE:")
		fmt.Print(inv.New.Serialize(true))
		return nil
	})

	fmt.Println("=== Registering the catalog view (Figure 3) ===")
	if _, err := engine.CreateView("catalog", catalogView); err != nil {
		return err
	}
	doc, err := engine.EvalView("catalog")
	if err != nil {
		return err
	}
	fmt.Println("Materialized view (Figure 4):")
	fmt.Print(doc.Serialize(true))

	fmt.Println("\n=== Creating the XML trigger (Section 2.2) ===")
	fmt.Println(notifyTrigger)
	if err := engine.CreateTrigger(notifyTrigger); err != nil {
		return err
	}
	if err := engine.Flush(); err != nil {
		return err
	}
	st := engine.Stats()
	fmt.Printf("\ninstalled %d SQL trigger(s) for %d XML trigger(s)\n", st.SQLTriggers, st.XMLTriggers)

	fmt.Println("\n=== Generated SQL (compare Figure 16) ===")
	for key, sql := range engine.SQLTexts() {
		fmt.Printf("-- %s\n%s\n\n", key, sql)
		break // one plan is enough for the demo
	}

	fmt.Println("=== Applying the paper's update: Amazon discounts P1 to $75 ===")
	if _, err := engine.UpdateByPK("vendor",
		[]xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")},
		func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(75)
			return r
		}); err != nil {
		return err
	}

	fmt.Println("\n=== A non-matching update fires nothing ===")
	if _, err := engine.UpdateByPK("vendor",
		[]xdm.Value{xdm.Str("Buy.com"), xdm.Str("P2")},
		func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(195)
			return r
		}); err != nil {
		return err
	}
	fmt.Println("(updated LCD 19's vendor; the CRT 15 trigger stayed silent)")

	final := engine.Stats()
	fmt.Printf("\nstats: fires=%d actions=%d\n", final.Fires, final.Actions)
	return nil
}
