// Command benchrunner regenerates the paper's evaluation figures
// (Figures 17, 18, 22, 23, 24) as printed series: for each x-axis value it
// builds the Table 2 workload, performs a batch of independent single-row
// leaf updates, and reports the average time per update for each system
// (UNGROUPED / GROUPED / GROUPED-AGG).
//
//	benchrunner -fig 17            # one figure
//	benchrunner -fig all -scale 1  # everything at paper scale (slow)
//	benchrunner -fig 23 -scale 0.25 -updates 50
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/planner"
	"quark/internal/reldb"
	"quark/internal/relsql"
	"quark/internal/schema"
	"quark/internal/wire"
	"quark/internal/workload"
	"quark/internal/xdm"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate: 17, 18, 22, 23, 24, batch, dispatch, outbox, shard, adaptive, sqlite, compile, or all")
	scaleFlag   = flag.Float64("scale", 0.25, "data scale factor (1.0 = paper scale: 128K leaf tuples default)")
	updatesFlag = flag.Int("updates", 100, "independent updates per measurement (paper: 100)")
	maxTrigFlag = flag.Int("maxtriggers", 10000, "cap on trigger-count sweep (paper sweeps to 100,000)")
)

func defaults() workload.Params {
	p := workload.Default()
	p.LeafTuples = int(float64(p.LeafTuples) * *scaleFlag)
	if p.LeafTuples < p.Fanout*4 {
		p.LeafTuples = p.Fanout * 4
	}
	p.NumTriggers = int(float64(p.NumTriggers) * *scaleFlag)
	if p.NumTriggers < 10 {
		p.NumTriggers = 10
	}
	return p
}

func measure(p workload.Params, mode core.Mode) (time.Duration, error) {
	w, err := workload.Build(p, mode, 42)
	if err != nil {
		return 0, err
	}
	attachCore(w.Engine)
	// Warm-up update (index/plan caches).
	if err := w.UpdateOneLeaf(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < *updatesFlag; i++ {
		if err := w.UpdateOneLeaf(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(*updatesFlag), nil
}

func header(title string, modes []core.Mode) {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-14s", "x")
	for _, m := range modes {
		fmt.Printf("%16s", m)
	}
	fmt.Println("  (avg ms per update)")
}

func row(x string, p workload.Params, modes []core.Mode) {
	fmt.Printf("%-14s", x)
	for _, m := range modes {
		d, err := measure(p, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\n%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%16.3f", float64(d.Microseconds())/1000.0)
		recordPoint(fmt.Sprint(m), benchPoint{"x": x, "ms_per_update": float64(d.Microseconds()) / 1000.0})
	}
	fmt.Println()
}

func fig17() {
	curFig = "17"
	modes := []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg}
	header("Figure 17: varying the number of triggers", modes)
	for _, n := range []int{1, 10, 100, 1000, 10000, 100000} {
		if n > *maxTrigFlag {
			break
		}
		p := defaults()
		p.NumTriggers = n
		if n > 100 {
			// UNGROUPED at large trigger counts takes minutes per update;
			// report the grouped modes only (the paper's point exactly).
			modes2 := []core.Mode{core.ModeGrouped, core.ModeGroupedAgg}
			fmt.Printf("%-14d%16s", n, "(skipped)")
			for _, m := range modes2 {
				d, err := measure(p, m)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("%16.3f", float64(d.Microseconds())/1000.0)
			}
			fmt.Println()
			continue
		}
		row(fmt.Sprint(n), p, modes)
	}
}

func fig18() {
	curFig = "18"
	modes := []core.Mode{core.ModeGrouped, core.ModeGroupedAgg}
	header("Figure 18: varying the hierarchy depth", modes)
	for _, d := range []int{2, 3, 4, 5} {
		p := defaults()
		p.Depth = d
		row(fmt.Sprint(d), p, modes)
	}
}

func fig22() {
	curFig = "22"
	modes := []core.Mode{core.ModeGrouped, core.ModeGroupedAgg}
	header("Figure 22: varying the fanout (leaf tuples per XML element)", modes)
	for _, f := range []int{16, 32, 64, 128, 256} {
		p := defaults()
		p.Fanout = f
		row(fmt.Sprint(f), p, modes)
	}
}

func fig23() {
	curFig = "23"
	modes := []core.Mode{core.ModeGrouped, core.ModeGroupedAgg}
	header("Figure 23: varying the number of leaf tuples (data size)", modes)
	for _, n := range []int{32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024} {
		scaled := int(float64(n) * *scaleFlag)
		if scaled < 1024 {
			scaled = 1024
		}
		p := defaults()
		p.LeafTuples = scaled
		row(fmt.Sprintf("%dK", scaled/1024), p, modes)
	}
}

func fig24() {
	curFig = "24"
	modes := []core.Mode{core.ModeGrouped, core.ModeGroupedAgg}
	header("Figure 24: varying the number of satisfied triggers", modes)
	for _, s := range []int{1, 20, 40, 80, 100} {
		p := defaults()
		p.NumSatisfied = s
		row(fmt.Sprint(s), p, modes)
	}
}

// figBatch sweeps the batched-transaction API: k single-row leaf updates
// per commit; the per-row trigger cost drops roughly linearly with the
// batch size since the whole commit fires each SQL trigger once.
func figBatch() {
	curFig = "batch"
	fmt.Println("\nBatch-size sweep: per-row cost of k updates per transaction (GROUPED)")
	fmt.Printf("%-14s%16s%16s\n", "batch size", "single", "batched")
	fmt.Printf("%-14s%16s%16s  (avg ms per row)\n", "", "(k stmts)", "(1 commit)")
	for _, k := range []int{1, 10, 100, 1000} {
		p := defaults()
		fmt.Printf("%-14d", k)
		for _, batched := range []bool{false, true} {
			w, err := workload.Build(p, core.ModeGrouped, 42)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			attachCore(w.Engine)
			run := w.UpdateLeavesSingle
			if batched {
				run = w.UpdateLeavesBatch
			}
			if err := run(k); err != nil { // warm-up
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			iters := *updatesFlag / k
			if iters < 1 {
				iters = 1
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := run(k); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			perRow := time.Since(start) / time.Duration(iters*k)
			fmt.Printf("%16.3f", float64(perRow.Microseconds())/1000.0)
		}
		fmt.Println()
	}
}

// figDispatch sweeps the notification sink's latency and reports the
// writer-side cost per update (GROUPED) with actions delivered inline
// (sync) vs through the async dispatcher (queue 1024, 8 workers, Block
// backpressure). The async column also reports the end-to-end time to a
// fully drained queue: the sink work does not vanish, it just stops
// stalling the writer.
func figDispatch() {
	curFig = "dispatch"
	fmt.Println("\nDispatch sweep: per-update writer cost vs sink latency (GROUPED)")
	fmt.Printf("%-14s%16s%16s%16s%16s\n", "sink latency", "sync", "async writer", "async e2e", "writer speedup")
	burst := *updatesFlag
	if burst > 1024 {
		burst = 1024 // keep the burst inside the queue so writers never block
	}
	for _, lat := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		perUpdate := map[bool]time.Duration{}
		var asyncE2E time.Duration
		for _, async := range []bool{false, true} {
			p := defaults()
			w, err := workload.Build(p, core.ModeGrouped, 42)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			lat := lat
			attachCore(w.Engine)
			w.Engine.RegisterAction("notify", func(core.Invocation) error {
				if lat > 0 {
					time.Sleep(lat)
				}
				return nil
			})
			if async {
				if err := w.Engine.EnableAsyncDispatch(dispatch.Config{
					Workers: 8, QueueCap: 1024, Policy: dispatch.Block,
				}); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if err := w.UpdateOneLeaf(); err != nil { // warm-up
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w.Engine.Drain()
			start := time.Now()
			for i := 0; i < burst; i++ {
				if err := w.UpdateOneLeaf(); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			writer := time.Since(start)
			if async {
				w.Engine.Drain()
				asyncE2E = time.Since(start) / time.Duration(burst)
			}
			if err := w.Engine.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			perUpdate[async] = writer / time.Duration(burst)
		}
		speedup := float64(perUpdate[false]) / float64(perUpdate[true])
		fmt.Printf("%-14s%14.3fms%14.3fms%14.3fms%15.1fx\n", lat,
			float64(perUpdate[false].Microseconds())/1000.0,
			float64(perUpdate[true].Microseconds())/1000.0,
			float64(asyncE2E.Microseconds())/1000.0,
			speedup)
	}
}

// figOutbox has two parts. Part one prices the durability tax: per-update
// writer cost of async dispatch with and without the outbox appending
// every delivery to its segment log first. Part two demonstrates
// dispatch-aware backpressure: a flooding trigger against a slow sink,
// run under three policies — Block (no quota), DropNewest (no quota, the
// flood starves a well-behaved trigger out of the shared queue), and
// DropOldest with a per-trigger lane quota (the flood is capped, the
// quiet trigger is untouched) — with the outbox retaining every shed
// record for replay, so freshness-first queueing still converges to
// complete delivery.
func figOutbox() {
	curFig = "outbox"
	fmt.Println("\nOutbox sweep (1): per-update writer cost, async vs async+outbox (1ms sink)")
	fmt.Printf("%-24s%16s\n", "", "(avg ms per update)")
	burst := *updatesFlag
	if burst > 512 {
		burst = 512
	}
	for _, durable := range []bool{false, true} {
		p := defaults()
		w, err := workload.Build(p, core.ModeGrouped, 42)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		attachCore(w.Engine)
		w.Engine.RegisterAction("notify", func(core.Invocation) error {
			time.Sleep(time.Millisecond)
			return nil
		})
		if err := w.Engine.EnableAsyncDispatch(dispatch.Config{
			Workers: 8, QueueCap: 1024, Policy: dispatch.Block,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		label := "async"
		if durable {
			label = "async+outbox"
			dir, err := os.MkdirTemp("", "benchrunner-outbox-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
			lg, err := outbox.Open(dir, outbox.Options{})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer lg.Close()
			sink := outbox.SinkFunc(func(*wire.Record) error {
				time.Sleep(time.Millisecond)
				return nil
			})
			if err := w.Engine.EnableOutbox(lg, sink); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := w.UpdateOneLeaf(); err != nil { // warm-up
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w.Engine.Drain()
		start := time.Now()
		for i := 0; i < burst; i++ {
			if err := w.UpdateOneLeaf(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		per := time.Since(start) / time.Duration(burst)
		w.Engine.Drain()
		if err := w.Engine.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s%16.3f\n", label, float64(per.Microseconds())/1000.0)
	}

	fmt.Println("\nOutbox sweep (2): flooding trigger vs per-trigger quota (2ms sink, queue 64)")
	fmt.Printf("%-28s%12s%12s%12s%12s%12s%12s\n",
		"policy", "flood ok", "flood drop", "quiet ok", "quiet drop", "writer ms", "replayed")
	for _, cfg := range []struct {
		label string
		d     dispatch.Config
	}{
		{"BLOCK (no quota)", dispatch.Config{Workers: 2, QueueCap: 64, Policy: dispatch.Block}},
		{"DROP-NEWEST (no quota)", dispatch.Config{Workers: 2, QueueCap: 64, Policy: dispatch.DropNewest}},
		{"DROP-OLDEST quota=8", dispatch.Config{Workers: 2, QueueCap: 64, LaneQuota: 8, Policy: dispatch.DropOldest}},
	} {
		runFloodScenario(cfg.label, cfg.d)
	}
}

// runFloodScenario drives one backpressure configuration: 300 updates of
// the flooded symbol interleaved with 20 of the quiet one, a 2ms sink,
// then a restart-style replay that recovers whatever the policy shed.
func runFloodScenario(label string, dcfg dispatch.Config) {
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "quote",
		Columns: []schema.Column{
			{Name: "sym", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey: []string{"sym"},
	})
	db, err := reldb.Open(s)
	fail(err)
	fail(db.Insert("quote",
		reldb.Row{xdm.Str("FLOOD"), xdm.Float(1)},
		reldb.Row{xdm.Str("STEADY"), xdm.Float(1)},
	))
	e := core.NewEngine(db, core.ModeGrouped)
	attachCore(e)
	e.RegisterAction("notify", func(core.Invocation) error { return nil })
	_, err = e.CreateView("m", `<m>{for $q in view('default')/quote/row return <q sym={$q/sym} price={$q/price}></q>}</m>`)
	fail(err)
	fail(e.CreateTrigger(`CREATE TRIGGER flood AFTER UPDATE ON view('m')/q WHERE NEW_NODE/@sym = 'FLOOD' DO notify(NEW_NODE)`))
	fail(e.CreateTrigger(`CREATE TRIGGER quiet AFTER UPDATE ON view('m')/q WHERE NEW_NODE/@sym = 'STEADY' DO notify(NEW_NODE)`))
	fail(e.Flush())

	dir, err := os.MkdirTemp("", "benchrunner-flood-")
	fail(err)
	defer os.RemoveAll(dir)
	lg, err := outbox.Open(dir, outbox.Options{})
	fail(err)
	defer lg.Close()
	sink := outbox.SinkFunc(func(*wire.Record) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	fail(e.EnableAsyncDispatch(dcfg))
	fail(e.EnableOutbox(lg, sink))

	bump := func(sym string, p float64) {
		_, err := e.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, func(r reldb.Row) reldb.Row {
			r[1] = xdm.Float(p)
			return r
		})
		fail(err)
	}
	start := time.Now()
	for i := 0; i < 300; i++ {
		bump("FLOOD", float64(2+i))
		if i%15 == 0 {
			bump("STEADY", float64(2+i))
		}
	}
	writer := time.Since(start)
	e.Drain()
	fs, _ := e.TriggerDispatchStats("flood")
	qs, _ := e.TriggerDispatchStats("quiet")
	fail(e.Close())

	// "Restart": whatever the policy shed stayed durable; replay recovers it.
	replayed, err := lg.Replay(outbox.SinkFunc(func(*wire.Record) error { return nil }))
	fail(err)
	fmt.Printf("%-28s%12d%12d%12d%12d%12.1f%12d\n",
		label, fs.Completed, fs.Dropped, qs.Completed, qs.Dropped,
		float64(writer.Microseconds())/1000.0, replayed)
}

// figShard sweeps the shard count under 8 concurrent writers, each
// updating leaves of its own top-level element so every statement takes
// the routed fast path to a fixed shard. Two regimes:
//
//   - CPU-bound (no sink latency): detection and firing are pure
//     computation, so aggregate scaling is bounded by GOMAXPROCS — on a
//     one-core box the sweep shows ~1x by construction.
//   - Sink-bound (1 ms inline action): the action runs under the firing
//     statement's table lock, the serialization sharding removes. One
//     shard sleeps writers back to back; N shards overlap the sleeps of
//     writers routed apart, so scaling approaches min(writers, shards,
//     distinct shards hit) even on one core.
func figShard() {
	curFig = "shard"
	fmt.Printf("\nShard sweep: 8 routed writers (GROUPED), GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	runShardSweep("CPU-bound (no sink latency)", 0, *updatesFlag)
	u := *updatesFlag
	if u > 50 {
		u = 50 // 1 ms per update x 8 writers: keep the sweep short
	}
	runShardSweep("sink-bound (1 ms inline action)", time.Millisecond, u)
}

func runShardSweep(label string, sinkLatency time.Duration, updatesPerWriter int) {
	const writers = 8
	fmt.Printf("\n  %s\n", label)
	fmt.Printf("  %-10s%16s%16s%12s\n", "shards", "total updates/s", "ms/update", "speedup")
	p := defaults()
	if p.NumTriggers > 1000 {
		p.NumTriggers = 1000 // trigger population is not the variable here
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		w, err := workload.BuildSharded(p, core.ModeGrouped, n, 42)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		attachShard(w.Engine)
		if sinkLatency > 0 {
			w.Engine.RegisterAction("notify", func(core.Invocation) error {
				time.Sleep(sinkLatency)
				return nil
			})
		}
		var payload atomic.Int64
		payload.Store(1 << 20)
		if err := w.UpdateLeafOn(0, float64(payload.Add(1))); err != nil { // warm-up
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < updatesPerWriter; i++ {
					leaf := int64(g*p.Fanout + i%p.Fanout)
					if err := w.UpdateLeafOn(leaf, float64(payload.Add(1))); err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		total := writers * updatesPerWriter
		perSec := float64(total) / elapsed.Seconds()
		if n == 1 {
			base = perSec
		}
		recordPoint(label, benchPoint{
			"x":               n,
			"updates_per_sec": perSec,
			"ms_per_update":   elapsed.Seconds() * 1000 / float64(total),
			"speedup":         perSec / base,
		})
		fmt.Printf("  %-10d%16.0f%16.3f%11.2fx\n", n, perSec,
			elapsed.Seconds()*1000/float64(total), perSec/base)
	}
}

func figCompile() {
	curFig = "compile"
	fmt.Println("\nTrigger compile time (paper §6: ~100 ms on 2003 hardware)")
	p := defaults()
	p.NumTriggers = 1
	w, err := workload.Build(p, core.ModeGrouped, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	attachCore(w.Engine)
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`CREATE TRIGGER c%d AFTER UPDATE ON view('doc')/e0 WHERE NEW_NODE/@name = 'x%d' DO notify(NEW_NODE)`, i, i)
		if err := w.Engine.CreateTrigger(src); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Engine.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("average compile+install time: %.3f ms\n", float64(time.Since(start).Microseconds())/1000.0/n)
}

// figAdaptive exercises the cost-based planner on a skewed two-family
// trigger population: the standard name-selective triggers (one
// structural group, 100 members) plus a structurally distinct
// nested-aggregate family over the same view. Static engines run every
// group in one engine-wide mode; the adaptive engine starts in the WORST
// mode (UNGROUPED — one plan per member) and must climb out on its own:
// the planner re-picks per-group modes from live GroupStats, under a
// memory budget deliberately too small to materialize every group.
//
// All systems are measured in interleaved rounds — round-robin blocks of
// updates over engines built up front — so environment noise (a shared
// CI box) drifts every series equally and the adaptive/best-static ratio
// stays meaningful. Re-plans run inside the adaptive system's measured
// blocks: live migrations are part of its cost, not free.
//
// The run fails (exit 1) if the adaptive engine's materialized footprint
// exceeds its budget, or if its throughput falls below 3/4 of the best
// static mode — the cost model found the wrong modes.
func figAdaptive() {
	curFig = "adaptive"
	p := defaults()
	if p.NumTriggers > 100 {
		p.NumTriggers = 100 // UNGROUPED beyond 100 takes minutes (fig 17)
	}
	p.NumSatisfied = 2
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type system struct {
		name     string
		w        *workload.Setup
		adaptive bool
		perRound int // updates per interleaved round
		elapsed  time.Duration
		updates  int
	}
	blk := *updatesFlag / 10
	if blk < 2 {
		blk = 2
	}
	systems := []*system{
		// The two slow systems get 1/10 blocks: at ~100-400 ms/update they
		// would otherwise dominate the wall clock without getting steadier.
		{name: "UNGROUPED", w: nil, perRound: blk/10 + 1},
		{name: "GROUPED", perRound: blk},
		{name: "GROUPED-AGG", perRound: blk},
		{name: "MATERIALIZED", perRound: blk/10 + 1},
		{name: "adaptive", adaptive: true, perRound: blk},
	}
	modes := map[string]core.Mode{
		"UNGROUPED": core.ModeUngrouped, "GROUPED": core.ModeGrouped,
		"GROUPED-AGG": core.ModeGroupedAgg, "MATERIALIZED": core.ModeMaterialized,
		"adaptive": core.ModeUngrouped, // worst start: the planner must escape it
	}
	fmt.Printf("\nAdaptive sweep: skewed workload — %d selective + %d nested-agg triggers, two structural groups\n",
		p.NumTriggers, adaptiveAggTriggers)
	var budget int64
	for _, s := range systems {
		w, err := buildSkewed(p, modes[s.name], s.adaptive)
		if err != nil {
			fail(err)
		}
		s.w = w
		attachCore(w.Engine)
		warm := 6
		if s.name == "UNGROUPED" || s.name == "MATERIALIZED" {
			warm = 2
		}
		for i := 0; i < warm; i++ {
			if err := w.UpdateOneLeaf(); err != nil {
				fail(err)
			}
		}
		if s.adaptive {
			// Budget: 60% of the total estimated footprint — the bigger
			// group fits, both together never do.
			for _, g := range w.Engine.GroupStats() {
				budget += g.EstSnapshotBytes
			}
			budget = budget * 6 / 10
			if err := w.Engine.SetModePolicy(planner.New(planner.Config{MemoryBudget: budget})); err != nil {
				fail(err)
			}
			// Convergence is warm-up: the escape from UNGROUPED (plan
			// rebuilds included) happens here, and the measured rounds then
			// see the adaptive engine in steady state — where the periodic
			// re-plans it keeps paying are no-ops unless the workload moves.
			if _, err := w.Engine.Replan(); err != nil {
				fail(err)
			}
			for i := 0; i < 4; i++ {
				if err := w.UpdateOneLeaf(); err != nil {
					fail(err)
				}
			}
			fmt.Printf("  adaptive start: UNGROUPED everywhere; after first re-plan:\n")
			for _, g := range w.Engine.GroupStats() {
				fmt.Printf("    group members=%-4d mode=%s\n", g.Members, g.ModeName)
			}
		}
	}

	const rounds = 10
	for r := 0; r < rounds; r++ {
		for _, s := range systems {
			start := time.Now()
			for i := 0; i < s.perRound; i++ {
				if err := s.w.UpdateOneLeaf(); err != nil {
					fail(err)
				}
			}
			if s.adaptive {
				if _, err := s.w.Engine.Replan(); err != nil {
					fail(err)
				}
			}
			s.elapsed += time.Since(start)
			s.updates += s.perRound
		}
	}

	fmt.Printf("  %-14s%14s%14s%20s\n", "system", "updates/s", "ms/update", "materialized B")
	var best float64
	var adaptivePerSec float64
	var adaptiveBytes int64
	for _, s := range systems {
		perSec := float64(s.updates) / s.elapsed.Seconds()
		var matBytes int64
		for _, g := range s.w.Engine.GroupStats() {
			matBytes += g.SnapshotBytes
		}
		fmt.Printf("  %-14s%14.0f%14.3f%20d\n", s.name, perSec, 1000/perSec, matBytes)
		pt := benchPoint{"x": "skewed", "updates_per_sec": perSec,
			"ms_per_update": 1000 / perSec, "materialized_bytes": float64(matBytes)}
		if s.adaptive {
			adaptivePerSec, adaptiveBytes = perSec, matBytes
			pt["budget_bytes"] = float64(budget)
		} else if perSec > best {
			best = perSec
		}
		recordPoint(s.name, pt)
	}
	for _, s := range systems {
		if s.adaptive {
			for _, g := range s.w.Engine.GroupStats() {
				fmt.Printf("  adaptive group: members=%d mode=%s\n", g.Members, g.ModeName)
			}
		}
	}
	ratio := adaptivePerSec / best
	fmt.Printf("  adaptive/best-static: %.2fx, materialized %d of budget %d bytes\n",
		ratio, adaptiveBytes, budget)
	if adaptiveBytes > budget {
		fail(fmt.Errorf("adaptive: materialized %d bytes exceeds budget %d", adaptiveBytes, budget))
	}
	if ratio < 0.75 {
		fail(fmt.Errorf("adaptive: %.2fx of best static — the planner picked wrong modes", ratio))
	}
}

// adaptiveAggTriggers sizes the nested-aggregate trigger family.
const adaptiveAggTriggers = 8

// buildSkewed builds the standard workload plus the nested-aggregate
// family; the two families compile into two structural trigger groups.
func buildSkewed(p workload.Params, mode core.Mode, adaptive bool) (*workload.Setup, error) {
	var w *workload.Setup
	var err error
	if adaptive {
		w, err = workload.BuildAdaptive(p, mode, 42)
	} else {
		w, err = workload.Build(p, mode, 42)
	}
	if err != nil {
		return nil, err
	}
	for i := 0; i < adaptiveAggTriggers; i++ {
		src := fmt.Sprintf(`CREATE TRIGGER agg%d AFTER UPDATE ON view('doc')/e0 WHERE count(NEW_NODE/e1[./payload < %d]) >= %d DO notify(NEW_NODE)`,
			i, 100+10*i, 2+i)
		if err := w.Engine.CreateTrigger(src); err != nil {
			return nil, err
		}
	}
	if err := w.Engine.Flush(); err != nil {
		return nil, err
	}
	return w, nil
}

// figSqlite measures the durability tax of the real-database backend:
// with the relsql plan shadow attached, every translated plan evaluation is
// replayed as rendered SQL on a mirrored database (schema sync + transition
// loads + execution + multiset compare). The sweep reports update cost with
// the shadow detached vs attached per translation mode. Requires a build
// with the sqlite tag; otherwise it prints a note and records nothing.
func figSqlite() {
	curFig = "sqlite"
	if !relsql.Available() {
		fmt.Println("\nSQLite backend sweep: skipped — rebuild benchrunner with -tags sqlite")
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p := defaults()
	// The shadow rebuilds its mirror from scratch on every firing — that is
	// the tax being measured — so keep the data small enough that a sweep
	// finishes in seconds, not the paper's full scale.
	if p.LeafTuples > 1024 {
		p.LeafTuples = 1024
	}
	if p.NumTriggers > 50 {
		p.NumTriggers = 50
	}
	updates := *updatesFlag
	if updates > 25 {
		updates = 25
	}
	fmt.Printf("\nSQLite backend durability tax: %d leaves, %d triggers, %d updates/point\n",
		p.LeafTuples, p.NumTriggers, updates)
	fmt.Printf("  %-14s%14s%18s%10s%12s\n", "system", "ms/update", "ms/update+sql", "tax", "verified")
	for _, m := range []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg} {
		w, err := workload.Build(p, m, 42)
		if err != nil {
			fail(err)
		}
		attachCore(w.Engine)
		if err := w.UpdateOneLeaf(); err != nil {
			fail(err)
		}
		start := time.Now()
		for i := 0; i < updates; i++ {
			if err := w.UpdateOneLeaf(); err != nil {
				fail(err)
			}
		}
		base := time.Since(start) / time.Duration(updates)

		sh, err := relsql.NewShadow(w.Engine.DB())
		if err != nil {
			fail(err)
		}
		w.Engine.SetPlanShadow(sh)
		start = time.Now()
		for i := 0; i < updates; i++ {
			if err := w.UpdateOneLeaf(); err != nil {
				fail(err)
			}
		}
		shadowed := time.Since(start) / time.Duration(updates)
		w.Engine.SetPlanShadow(nil)
		verified := sh.Verified()
		if err := sh.Close(); err != nil {
			fail(err)
		}
		if verified == 0 {
			fail(fmt.Errorf("sqlite sweep: %s verified no plan evaluations", m))
		}
		baseMS := float64(base.Microseconds()) / 1000.0
		shadowMS := float64(shadowed.Microseconds()) / 1000.0
		fmt.Printf("  %-14s%14.3f%18.3f%9.1fx%12d\n", m, baseMS, shadowMS, shadowMS/baseMS, verified)
		recordPoint(fmt.Sprint(m), benchPoint{
			"x": "durability-tax", "ms_per_update": baseMS,
			"ms_per_update_sql": shadowMS, "tax_factor": shadowMS / baseMS,
			"verified": float64(verified),
		})
	}
}

func main() {
	flag.Parse()
	stop := startObs()
	fmt.Printf("quark benchrunner: scale=%.2f updates/point=%d\n", *scaleFlag, *updatesFlag)
	switch *figFlag {
	case "17":
		fig17()
	case "18":
		fig18()
	case "22":
		fig22()
	case "23":
		fig23()
	case "24":
		fig24()
	case "compile":
		figCompile()
	case "batch":
		figBatch()
	case "dispatch":
		figDispatch()
	case "outbox":
		figOutbox()
	case "shard":
		figShard()
	case "adaptive":
		figAdaptive()
	case "sqlite":
		figSqlite()
	case "all":
		fig17()
		fig18()
		fig22()
		fig23()
		fig24()
		figBatch()
		figDispatch()
		figOutbox()
		figShard()
		figAdaptive()
		figSqlite()
		figCompile()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
	writeBenchDocs()
	runGate()
	stop()
}
