package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"quark/internal/core"
	"quark/internal/obs"
	"quark/internal/shard"
)

var (
	obsAddrFlag = flag.String("obs.addr", "", "serve /metrics, /snapshot, and pprof on this address while figures run")
	obsHoldFlag = flag.Duration("obs.hold", 0, "keep the debug server up this long after the figures finish (CI smoke)")
	jsonFlag    = flag.Bool("json", false, "write a BENCH_<fig>.json snapshot per figure run")
	gateFlag    = flag.String("gate", "", "baseline BENCH_<fig>.json to diff against; exit 1 on throughput regression")
	gateTolFlag = flag.Float64("gate.tolerance", 0.15, "relative throughput drop tolerated by -gate")
)

// obsReg is the process-wide registry, non-nil only with -obs.addr:
// every engine a figure builds attaches to it, so the scrape shows the
// full pipeline's series while a sweep runs.
var obsReg *obs.Registry

// attachCore and attachShard wire a freshly built engine into the global
// registry (no-ops when -obs.addr is unset). Later engines re-register
// the same collector names, replacing earlier ones — the scrape follows
// the most recently built engine, which is the one running.
func attachCore(e *core.Engine) {
	if obsReg != nil {
		e.EnableObs(obsReg)
	}
}

func attachShard(e *shard.Engine) {
	if obsReg != nil {
		e.EnableObs(obsReg)
	}
}

// startObs brings the debug server up before any figure runs; the
// returned stop function holds it open for -obs.hold, then closes it.
func startObs() (stop func()) {
	if *obsAddrFlag == "" {
		return func() {}
	}
	obsReg = obs.New()
	srv, err := obs.Serve(*obsAddrFlag, obsReg, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("observability: serving /metrics, /snapshot, /debug/pprof on %s\n", srv.Addr())
	return func() {
		if *obsHoldFlag > 0 {
			fmt.Printf("observability: holding the debug server for %s\n", *obsHoldFlag)
			time.Sleep(*obsHoldFlag)
		}
		_ = srv.Close()
	}
}

// --- BENCH_<fig>.json snapshots: the repo's recorded perf trajectory ---

// benchPoint is one measured point of one series (x value + metrics).
type benchPoint map[string]any

type benchSeries struct {
	Label  string       `json:"label"`
	Points []benchPoint `json:"points"`
}

// benchDoc is one figure's snapshot: enough config to reproduce the run
// plus every measured series. CI diffs the committed snapshot against a
// fresh run (see -gate).
type benchDoc struct {
	Fig        string         `json:"fig"`
	Scale      float64        `json:"scale"`
	Updates    int            `json:"updates"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Series     []*benchSeries `json:"series"`
}

var (
	curFig    string // set by each fig runner; keys recordPoint into a doc
	benchDocs = map[string]*benchDoc{}
	docOrder  []string
)

// recordPoint appends one measurement to the named series of the current
// figure's snapshot. A no-op without -json or -gate.
func recordPoint(series string, pt benchPoint) {
	if (!*jsonFlag && *gateFlag == "") || curFig == "" {
		return
	}
	doc, ok := benchDocs[curFig]
	if !ok {
		doc = &benchDoc{
			Fig:        curFig,
			Scale:      *scaleFlag,
			Updates:    *updatesFlag,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		}
		benchDocs[curFig] = doc
		docOrder = append(docOrder, curFig)
	}
	for _, s := range doc.Series {
		if s.Label == series {
			s.Points = append(s.Points, pt)
			return
		}
	}
	doc.Series = append(doc.Series, &benchSeries{Label: series, Points: []benchPoint{pt}})
}

// writeBenchDocs writes one BENCH_<fig>.json per recorded figure.
func writeBenchDocs() {
	if !*jsonFlag {
		return
	}
	for _, fig := range docOrder {
		doc := benchDocs[fig]
		path := fmt.Sprintf("BENCH_%s.json", fig)
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// runGate diffs the fresh run against the committed baseline: for every
// (series, x) point both runs measured, a throughput metric
// (updates_per_sec) may not drop more than -gate.tolerance relative to
// the baseline. Latency-style metrics are reported but do not gate —
// they invert (lower is better) and CI hardware varies more than 15%.
func runGate() {
	if *gateFlag == "" {
		return
	}
	raw, err := os.ReadFile(*gateFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "gate: parsing %s: %v\n", *gateFlag, err)
		os.Exit(1)
	}
	cur, ok := benchDocs[base.Fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "gate: baseline is fig %q but this run did not record it (run with -fig %s)\n", base.Fig, base.Fig)
		os.Exit(1)
	}
	curPoints := map[string]float64{}
	for _, s := range cur.Series {
		for _, p := range s.Points {
			if v, ok := p["updates_per_sec"].(float64); ok {
				curPoints[fmt.Sprintf("%s|%v", s.Label, p["x"])] = v
			}
		}
	}
	failed := false
	for _, s := range base.Series {
		for _, p := range s.Points {
			bv, ok := p["updates_per_sec"].(float64)
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s|%v", s.Label, p["x"])
			cv, ok := curPoints[key]
			if !ok {
				fmt.Fprintf(os.Stderr, "gate: baseline point %q missing from this run\n", key)
				failed = true
				continue
			}
			floor := bv * (1 - *gateTolFlag)
			status := "ok"
			if cv < floor {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("gate: %-40s baseline %10.0f/s current %10.0f/s (floor %10.0f/s) %s\n",
				key, bv, cv, floor, status)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "gate: writer throughput dropped more than %.0f%% vs %s\n", *gateTolFlag*100, *gateFlag)
		os.Exit(1)
	}
	fmt.Printf("gate: all points within %.0f%% of %s\n", *gateTolFlag*100, *gateFlag)
}
