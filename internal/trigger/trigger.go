// Package trigger implements the XML trigger specification language of the
// paper (Section 2.2, after Bonifati et al.):
//
//	CREATE TRIGGER Name AFTER Event ON Path WHERE Condition DO Action
//
// Event is INSERT, UPDATE, or DELETE; Path is an XPath over a registered
// view; Condition is a boolean XQuery expression over OLD_NODE/NEW_NODE;
// Action is a call to a registered external function whose parameters are
// XQuery expressions (OLD_NODE and NEW_NODE are bound per Section 2.2:
// INSERT triggers may use only NEW_NODE, DELETE only OLD_NODE).
package trigger

import (
	"fmt"
	"strings"

	"quark/internal/reldb"
	"quark/internal/xquery"
)

// Spec is a parsed XML trigger definition.
type Spec struct {
	Name       string
	Event      reldb.Event
	ViewName   string
	PathSteps  []xquery.Step // steps after view('name')
	Condition  xquery.Expr   // nil when absent
	ActionFn   string
	ActionArgs []xquery.Expr
	Source     string
}

// Parse parses a CREATE TRIGGER statement.
func Parse(src string) (*Spec, error) {
	lx := xquery.NewLexer(src)
	next := func() (xquery.Token, error) { return lx.Next() }
	expectKw := func(kw string) error {
		t, err := next()
		if err != nil {
			return err
		}
		if t.Kind != xquery.TokIdent || !strings.EqualFold(t.Text, kw) {
			return fmt.Errorf("trigger: expected %q, found %s", kw, t)
		}
		return nil
	}
	if err := expectKw("CREATE"); err != nil {
		return nil, err
	}
	if err := expectKw("TRIGGER"); err != nil {
		return nil, err
	}
	nameTok, err := next()
	if err != nil {
		return nil, err
	}
	if nameTok.Kind != xquery.TokIdent {
		return nil, fmt.Errorf("trigger: expected trigger name, found %s", nameTok)
	}
	if err := expectKw("AFTER"); err != nil {
		return nil, err
	}
	evTok, err := next()
	if err != nil {
		return nil, err
	}
	var ev reldb.Event
	switch strings.ToUpper(evTok.Text) {
	case "INSERT":
		ev = reldb.EvInsert
	case "UPDATE":
		ev = reldb.EvUpdate
	case "DELETE":
		ev = reldb.EvDelete
	default:
		return nil, fmt.Errorf("trigger: unknown event %q (want INSERT, UPDATE, or DELETE)", evTok.Text)
	}
	if err := expectKw("ON"); err != nil {
		return nil, err
	}

	// Parse the path, condition, and action with the expression parser.
	tok, err := next()
	if err != nil {
		return nil, err
	}
	p := xquery.NewParserAt(lx, tok)
	pathExpr, err := p.ParseExprPublic()
	if err != nil {
		return nil, fmt.Errorf("trigger: bad Path: %w", err)
	}
	spec := &Spec{Name: nameTok.Text, Event: ev, Source: src}
	switch pe := pathExpr.(type) {
	case *xquery.ViewRef:
		spec.ViewName = pe.Name
	case *xquery.Path:
		vr, ok := pe.Base.(*xquery.ViewRef)
		if !ok {
			return nil, fmt.Errorf("trigger: Path must start at view('name')")
		}
		spec.ViewName = vr.Name
		spec.PathSteps = pe.Steps
	default:
		return nil, fmt.Errorf("trigger: Path must be an XPath over a view, got %s", xquery.String(pathExpr))
	}

	// Optional WHERE.
	cur := p.Current()
	if cur.Kind == xquery.TokIdent && strings.EqualFold(cur.Text, "WHERE") {
		// Advance past WHERE and parse the condition.
		tok2, err := lx.Next()
		if err != nil {
			return nil, err
		}
		p = xquery.NewParserAt(lx, tok2)
		cond, err := p.ParseExprPublic()
		if err != nil {
			return nil, fmt.Errorf("trigger: bad Condition: %w", err)
		}
		spec.Condition = cond
		cur = p.Current()
	}

	// DO action.
	if cur.Kind != xquery.TokIdent || !strings.EqualFold(cur.Text, "DO") {
		return nil, fmt.Errorf("trigger: expected DO, found %s", cur)
	}
	tok3, err := lx.Next()
	if err != nil {
		return nil, err
	}
	p = xquery.NewParserAt(lx, tok3)
	actionExpr, err := p.ParseExprPublic()
	if err != nil {
		return nil, fmt.Errorf("trigger: bad Action: %w", err)
	}
	fn, ok := actionExpr.(*xquery.FnCall)
	if !ok {
		return nil, fmt.Errorf("trigger: Action must be a function call, got %s", xquery.String(actionExpr))
	}
	spec.ActionFn = fn.Name
	spec.ActionArgs = fn.Args
	if p.Current().Kind != xquery.TokEOF {
		return nil, fmt.Errorf("trigger: trailing input after action: %s", p.Current())
	}

	// Event/node-variable consistency (Section 2.2): INSERT triggers may
	// reference only NEW_NODE, DELETE only OLD_NODE.
	check := func(e xquery.Expr, what string) error {
		if e == nil {
			return nil
		}
		var bad string
		walkNodeRefs(e, func(old bool) {
			if ev == reldb.EvInsert && old {
				bad = "OLD_NODE in an INSERT trigger"
			}
			if ev == reldb.EvDelete && !old {
				bad = "NEW_NODE in a DELETE trigger"
			}
		})
		if bad != "" {
			return fmt.Errorf("trigger: %s (%s)", bad, what)
		}
		return nil
	}
	if err := check(spec.Condition, "condition"); err != nil {
		return nil, err
	}
	for _, a := range spec.ActionArgs {
		if err := check(a, "action"); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// walkNodeRefs visits OLD_NODE/NEW_NODE references in an expression.
func walkNodeRefs(e xquery.Expr, fn func(old bool)) {
	switch x := e.(type) {
	case *xquery.NodeRef:
		fn(x.Old)
	case *xquery.Path:
		walkNodeRefs(x.Base, fn)
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				walkNodeRefs(p, fn)
			}
		}
	case *xquery.Cmp:
		walkNodeRefs(x.L, fn)
		walkNodeRefs(x.R, fn)
	case *xquery.Arith:
		walkNodeRefs(x.L, fn)
		walkNodeRefs(x.R, fn)
	case *xquery.Logic:
		for _, a := range x.Args {
			walkNodeRefs(a, fn)
		}
	case *xquery.FnCall:
		for _, a := range x.Args {
			walkNodeRefs(a, fn)
		}
	case *xquery.Quantified:
		walkNodeRefs(x.Seq, fn)
		walkNodeRefs(x.Sat, fn)
	case *xquery.IfExpr:
		walkNodeRefs(x.Cond, fn)
		walkNodeRefs(x.Then, fn)
		walkNodeRefs(x.Else, fn)
	}
}

// PathString renders the trigger's path for diagnostics.
func (s *Spec) PathString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "view(%q)", s.ViewName)
	for _, st := range s.PathSteps {
		sb.WriteString(st.String())
	}
	return sb.String()
}
