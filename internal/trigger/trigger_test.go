package trigger

import (
	"strings"
	"testing"

	"quark/internal/reldb"
	"quark/internal/xquery"
)

// TestParsePaperTrigger parses the Section 2.2 example verbatim.
func TestParsePaperTrigger(t *testing.T) {
	spec, err := Parse(`
CREATE TRIGGER Notify AFTER Update
ON view('catalog')/product
WHERE OLD_NODE/@name = 'CRT 15'
DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "Notify" || spec.Event != reldb.EvUpdate {
		t.Errorf("name=%q event=%v", spec.Name, spec.Event)
	}
	if spec.ViewName != "catalog" || len(spec.PathSteps) != 1 || spec.PathSteps[0].Name != "product" {
		t.Errorf("path = %s", spec.PathString())
	}
	if spec.Condition == nil {
		t.Fatal("condition missing")
	}
	cmp, ok := spec.Condition.(*xquery.Cmp)
	if !ok || cmp.Op != "=" {
		t.Errorf("condition = %s", xquery.String(spec.Condition))
	}
	if spec.ActionFn != "notifySmith" || len(spec.ActionArgs) != 1 {
		t.Errorf("action = %s(%d args)", spec.ActionFn, len(spec.ActionArgs))
	}
	if nr, ok := spec.ActionArgs[0].(*xquery.NodeRef); !ok || nr.Old {
		t.Errorf("arg = %s", xquery.String(spec.ActionArgs[0]))
	}
	if !strings.Contains(spec.PathString(), `view("catalog")/product`) {
		t.Errorf("PathString = %s", spec.PathString())
	}
}

func TestParseNoWhere(t *testing.T) {
	spec, err := Parse(`CREATE TRIGGER T AFTER INSERT ON view('v')/a DO f(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Condition != nil || spec.Event != reldb.EvInsert {
		t.Errorf("spec = %+v", spec)
	}
}

func TestParseDescendantPath(t *testing.T) {
	spec, err := Parse(`CREATE TRIGGER T AFTER DELETE ON view('v')//vendor DO f(OLD_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PathSteps[0].Axis != "descendant" {
		t.Errorf("axis = %s", spec.PathSteps[0].Axis)
	}
}

func TestParseMultiArgAction(t *testing.T) {
	spec, err := Parse(`CREATE TRIGGER T AFTER UPDATE ON view('v')/a DO f(NEW_NODE, OLD_NODE/@name, 42)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.ActionArgs) != 3 {
		t.Errorf("args = %d", len(spec.ActionArgs))
	}
}

// TestEventNodeConsistency: Section 2.2's rule — INSERT triggers may use
// only NEW_NODE, DELETE only OLD_NODE.
func TestEventNodeConsistency(t *testing.T) {
	cases := []string{
		`CREATE TRIGGER T AFTER INSERT ON view('v')/a WHERE OLD_NODE/@x = 1 DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER INSERT ON view('v')/a DO f(OLD_NODE)`,
		`CREATE TRIGGER T AFTER DELETE ON view('v')/a DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER DELETE ON view('v')/a WHERE NEW_NODE/@x = 1 DO f(OLD_NODE)`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected node/event consistency error", src)
		}
	}
	// UPDATE may use both.
	if _, err := Parse(`CREATE TRIGGER T AFTER UPDATE ON view('v')/a WHERE OLD_NODE/@x != NEW_NODE/@x DO f(OLD_NODE, NEW_NODE)`); err != nil {
		t.Errorf("UPDATE with both nodes rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`CREATE TRIGGER`,
		`MAKE TRIGGER T AFTER UPDATE ON view('v')/a DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER FROB ON view('v')/a DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER UPDATE ON 42 DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER UPDATE ON nosuchview/a DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER UPDATE ON view('v')/a DO 42`,
		`CREATE TRIGGER T AFTER UPDATE ON view('v')/a WHERE DO f(NEW_NODE)`,
		`CREATE TRIGGER T AFTER UPDATE ON view('v')/a DO f(NEW_NODE) trailing`,
		`CREATE TRIGGER T AFTER UPDATE ON view('v')/a`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}
