package reldb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"quark/internal/schema"
	"quark/internal/xdm"
)

func pvDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(schema.ProductVendor())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func loadPaperData(t *testing.T, db *DB) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Insert("product",
		Row{xdm.Str("P1"), xdm.Str("CRT 15"), xdm.Str("Samsung")},
		Row{xdm.Str("P2"), xdm.Str("LCD 19"), xdm.Str("Samsung")},
		Row{xdm.Str("P3"), xdm.Str("CRT 15"), xdm.Str("Viewsonic")},
	))
	must(db.Insert("vendor",
		Row{xdm.Str("Amazon"), xdm.Str("P1"), xdm.Float(100)},
		Row{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(120)},
		Row{xdm.Str("Circuitcity"), xdm.Str("P1"), xdm.Float(150)},
		Row{xdm.Str("Buy.com"), xdm.Str("P2"), xdm.Float(200)},
		Row{xdm.Str("Bestbuy"), xdm.Str("P2"), xdm.Float(180)},
		Row{xdm.Str("Bestbuy"), xdm.Str("P3"), xdm.Float(120)},
		Row{xdm.Str("Circuitcity"), xdm.Str("P3"), xdm.Float(140)},
	))
}

func TestInsertAndCounts(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	if db.RowCount("product") != 3 {
		t.Errorf("product count = %d", db.RowCount("product"))
	}
	if db.RowCount("vendor") != 7 {
		t.Errorf("vendor count = %d", db.RowCount("vendor"))
	}
}

func TestPrimaryKeyEnforcement(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	err := db.Insert("product", Row{xdm.Str("P1"), xdm.Str("dup"), xdm.Str("X")})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Errorf("expected duplicate PK error, got %v", err)
	}
	// All-or-nothing: a batch with an internal duplicate inserts nothing.
	err = db.Insert("product",
		Row{xdm.Str("P9"), xdm.Str("a"), xdm.Str("m")},
		Row{xdm.Str("P9"), xdm.Str("b"), xdm.Str("m")},
	)
	if err == nil {
		t.Fatal("expected batch duplicate error")
	}
	if _, ok, _ := db.GetByPK("product", xdm.Str("P9")); ok {
		t.Error("partial insert leaked after failed statement")
	}
	// Null PK rejected.
	if err := db.Insert("product", Row{xdm.Null, xdm.Str("x"), xdm.Str("y")}); err == nil {
		t.Error("expected NULL primary key rejection")
	}
}

func TestTypeChecking(t *testing.T) {
	db := pvDB(t)
	err := db.Insert("vendor", Row{xdm.Str("V"), xdm.Str("P1"), xdm.Str("not-a-price")})
	if err == nil {
		t.Error("expected type error for string price")
	}
	// Ints are acceptable in DECIMAL columns.
	if err := db.Insert("product", Row{xdm.Str("P1"), xdm.Str("n"), xdm.Str("m")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("vendor", Row{xdm.Str("V"), xdm.Str("P1"), xdm.Int(10)}); err != nil {
		t.Errorf("int into DECIMAL should work: %v", err)
	}
	if err := db.Insert("vendor", Row{xdm.Str("W"), xdm.Str("P1"), xdm.Float(1), xdm.Int(2)}); err == nil {
		t.Error("expected arity error")
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	db := pvDB(t)
	db.SetEnforceFKs(true)
	if err := db.Insert("vendor", Row{xdm.Str("V"), xdm.Str("PX"), xdm.Float(1)}); err == nil {
		t.Error("expected FK violation for orphan vendor")
	}
	if err := db.Insert("product", Row{xdm.Str("PX"), xdm.Str("n"), xdm.Str("m")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("vendor", Row{xdm.Str("V"), xdm.Str("PX"), xdm.Float(1)}); err != nil {
		t.Errorf("FK satisfied but rejected: %v", err)
	}
	// NULL FK is vacuous (needs an FK column outside the PK).
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name:       "parent",
		Columns:    []schema.Column{{Name: "id", Type: schema.TInt}},
		PrimaryKey: []string{"id"},
	})
	s.MustAddTable(&schema.Table{
		Name: "child",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "pid", Type: schema.TInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"pid"}, RefTable: "parent", RefColumns: []string{"id"}}},
	})
	db2, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetEnforceFKs(true)
	if err := db2.Insert("child", Row{xdm.Int(1), xdm.Null}); err != nil {
		t.Errorf("NULL FK should pass: %v", err)
	}
	if err := db2.Insert("child", Row{xdm.Int(2), xdm.Int(42)}); err == nil {
		t.Error("orphan child accepted")
	}
}

func TestGetUpdateDeleteByPK(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	r, ok, err := db.GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if err != nil || !ok {
		t.Fatalf("GetByPK: %v %v", ok, err)
	}
	if !xdm.Equal(r[2], xdm.Float(100)) {
		t.Errorf("price = %v", r[2])
	}
	ok, err = db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r Row) Row {
		r[2] = xdm.Float(75)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("UpdateByPK: %v %v", ok, err)
	}
	r, _, _ = db.GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if !xdm.Equal(r[2], xdm.Float(75)) {
		t.Errorf("price after update = %v", r[2])
	}
	ok, err = db.DeleteByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if err != nil || !ok {
		t.Fatalf("DeleteByPK: %v %v", ok, err)
	}
	if _, ok, _ := db.GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1")); ok {
		t.Error("row survived delete")
	}
	// Missing-row paths.
	if ok, _ := db.DeleteByPK("vendor", xdm.Str("Nobody"), xdm.Str("P1")); ok {
		t.Error("delete of missing row reported true")
	}
	if ok, _ := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Nobody"), xdm.Str("P1")}, func(r Row) Row { return r }); ok {
		t.Error("update of missing row reported true")
	}
}

func TestPredicateUpdateDelete(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	n, err := db.Update("vendor",
		func(r Row) bool { return r[1].AsString() == "P1" },
		func(r Row) Row { r[2], _ = xdm.Arith("*", r[2], xdm.Float(2)); return r })
	if err != nil || n != 3 {
		t.Fatalf("Update n=%d err=%v", n, err)
	}
	n, err = db.Delete("vendor", func(r Row) bool { return r[2].AsFloat() >= 200 })
	if err != nil {
		t.Fatal(err)
	}
	// Doubled P1 prices: 200, 240, 300 plus Buy.com 200 → 4 rows ≥ 200.
	if n != 4 {
		t.Errorf("Delete removed %d, want 4", n)
	}
	if db.RowCount("vendor") != 3 {
		t.Errorf("vendor count = %d, want 3", db.RowCount("vendor"))
	}
}

func TestUpdatePKChange(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	// Moving a vendor row to a new key works.
	ok, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r Row) Row {
		r[0] = xdm.Str("AmazonDE")
		return r
	})
	if err != nil || !ok {
		t.Fatalf("%v %v", ok, err)
	}
	if _, ok, _ := db.GetByPK("vendor", xdm.Str("AmazonDE"), xdm.Str("P1")); !ok {
		t.Error("moved row not found at new key")
	}
	// Colliding PK change is rejected.
	_, err = db.UpdateByPK("vendor", []xdm.Value{xdm.Str("AmazonDE"), xdm.Str("P1")}, func(r Row) Row {
		r[0] = xdm.Str("Bestbuy")
		return r
	})
	if err == nil {
		t.Error("expected PK collision error")
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	count := func(pid string) int {
		n := 0
		if err := db.Lookup("vendor", "pid", xdm.Str(pid), func(Row) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if count("P1") != 3 || count("P2") != 2 || count("P3") != 2 {
		t.Fatalf("index counts: P1=%d P2=%d P3=%d", count("P1"), count("P2"), count("P3"))
	}
	// Move one vendor from P1 to P2; index must follow.
	if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r Row) Row {
		r[1] = xdm.Str("P2")
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if count("P1") != 2 || count("P2") != 3 {
		t.Errorf("after move: P1=%d P2=%d", count("P1"), count("P2"))
	}
	if _, err := db.DeleteByPK("vendor", xdm.Str("Amazon"), xdm.Str("P2")); err != nil {
		t.Fatal(err)
	}
	if count("P2") != 2 {
		t.Errorf("after delete: P2=%d", count("P2"))
	}
}

func TestLookupUsesIndexStats(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	db.ResetStats()
	_ = db.Lookup("vendor", "pid", xdm.Str("P1"), func(Row) bool { return true })
	st := db.Stats()
	if st.IndexLookups != 1 || st.FullScans != 0 {
		t.Errorf("expected index path, got %+v", st)
	}
	// price is unindexed → scan path.
	_ = db.Lookup("vendor", "price", xdm.Float(120), func(Row) bool { return true })
	st = db.Stats()
	if st.FullScans != 1 {
		t.Errorf("expected scan path for unindexed column, got %+v", st)
	}
	if err := db.CreateIndex("vendor", "price"); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	n := 0
	_ = db.Lookup("vendor", "price", xdm.Float(120), func(Row) bool { n++; return true })
	if n != 2 {
		t.Errorf("price=120 rows = %d, want 2", n)
	}
	if db.Stats().IndexLookups != 1 {
		t.Error("late-built index not used")
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	n := 0
	_ = db.Scan("vendor", func(Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestTriggerTransitionTables(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	var got []*FireContext
	err := db.CreateTrigger(&SQLTrigger{
		Name: "t1", Table: "vendor", Event: EvUpdate,
		Body: func(ctx *FireContext) error { got = append(got, ctx); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper's example: Amazon's P1 price drops to 75.
	if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r Row) Row {
		r[2] = xdm.Float(75)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("trigger fired %d times, want 1", len(got))
	}
	ctx := got[0]
	if ctx.Event != EvUpdate || ctx.Table != "vendor" {
		t.Errorf("ctx = %v %v", ctx.Event, ctx.Table)
	}
	if len(ctx.Deleted) != 1 || len(ctx.Inserted) != 1 {
		t.Fatalf("transition sizes: del=%d ins=%d", len(ctx.Deleted), len(ctx.Inserted))
	}
	if !xdm.Equal(ctx.Deleted[0][2], xdm.Float(100)) || !xdm.Equal(ctx.Inserted[0][2], xdm.Float(75)) {
		t.Errorf("∇=%v Δ=%v", ctx.Deleted[0][2], ctx.Inserted[0][2])
	}
	// Statement-level: one multi-row update fires once.
	got = nil
	if _, err := db.Update("vendor",
		func(r Row) bool { return r[1].AsString() == "P3" },
		func(r Row) Row { r[2] = xdm.Float(99); return r }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Inserted) != 2 {
		t.Fatalf("statement-level UPDATE: fires=%d rows=%d", len(got), len(got[0].Inserted))
	}
	// Insert/delete events don't reach the UPDATE trigger.
	got = nil
	if err := db.Insert("vendor", Row{xdm.Str("New"), xdm.Str("P1"), xdm.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DeleteByPK("vendor", xdm.Str("New"), xdm.Str("P1")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("UPDATE trigger fired for INSERT/DELETE")
	}
}

func TestTriggerEventRouting(t *testing.T) {
	db := pvDB(t)
	fired := map[string]int{}
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		ev := ev
		if err := db.CreateTrigger(&SQLTrigger{
			Name: "t_" + ev.String(), Table: "product", Event: ev,
			Body: func(ctx *FireContext) error { fired[ev.String()]++; return nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("product", Row{xdm.Str("P1"), xdm.Str("n"), xdm.Str("m")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r Row) Row { r[1] = xdm.Str("n2"); return r }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DeleteByPK("product", xdm.Str("P1")); err != nil {
		t.Fatal(err)
	}
	if fired["INSERT"] != 1 || fired["UPDATE"] != 1 || fired["DELETE"] != 1 {
		t.Errorf("routing = %v", fired)
	}
	// Empty statements do not fire.
	if _, err := db.Delete("product", func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if fired["DELETE"] != 1 {
		t.Error("empty DELETE statement fired trigger")
	}
}

func TestTriggerCascadeAndDepthLimit(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name:       "a",
		Columns:    []schema.Column{{Name: "id", Type: schema.TInt}},
		PrimaryKey: []string{"id"},
	})
	s.MustAddTable(&schema.Table{
		Name:       "log",
		Columns:    []schema.Column{{Name: "id", Type: schema.TInt}},
		PrimaryKey: []string{"id"},
	})
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	// Cascade: insert into a writes into log.
	if err := db.CreateTrigger(&SQLTrigger{
		Name: "cascade", Table: "a", Event: EvInsert,
		Body: func(ctx *FireContext) error {
			return ctx.DB.Insert("log", Row{ctx.Inserted[0][0]})
		},
	}); err != nil {
		t.Fatal(err)
	}
	var depths []int
	if err := db.CreateTrigger(&SQLTrigger{
		Name: "onlog", Table: "log", Event: EvInsert,
		Body: func(ctx *FireContext) error {
			depths = append(depths, ctx.Depth)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("a", Row{xdm.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(depths) != 1 || db.RowCount("log") != 1 {
		t.Fatalf("cascade: fires=%d rows=%d", len(depths), db.RowCount("log"))
	}
	if depths[0] != 2 {
		t.Errorf("cascaded depth = %d, want 2", depths[0])
	}
	// Runaway recursion is stopped at the depth limit.
	next := int64(100)
	if err := db.CreateTrigger(&SQLTrigger{
		Name: "recursive", Table: "log", Event: EvInsert,
		Body: func(ctx *FireContext) error {
			next++
			return ctx.DB.Insert("log", Row{xdm.Int(next)})
		},
	}); err != nil {
		t.Fatal(err)
	}
	err = db.Insert("a", Row{xdm.Int(2)})
	if err == nil || !strings.Contains(err.Error(), "cascade exceeds depth") {
		t.Errorf("expected depth-limit error, got %v", err)
	}
}

func TestTriggerLifecycle(t *testing.T) {
	db := pvDB(t)
	tr := &SQLTrigger{Name: "x", Table: "product", Event: EvInsert, Body: func(*FireContext) error { return nil }}
	if err := db.CreateTrigger(tr); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTrigger(tr); err == nil {
		t.Error("duplicate trigger name accepted")
	}
	if db.TriggerCount() != 1 {
		t.Error("TriggerCount")
	}
	if err := db.DropTrigger("x"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTrigger("x"); err == nil {
		t.Error("double drop accepted")
	}
	if err := db.CreateTrigger(&SQLTrigger{Name: "y", Table: "nope", Event: EvInsert, Body: func(*FireContext) error { return nil }}); err == nil {
		t.Error("trigger on unknown table accepted")
	}
	if err := db.CreateTrigger(&SQLTrigger{Name: "z", Table: "product", Event: EvInsert}); err == nil {
		t.Error("trigger without body accepted")
	}
	if err := db.CreateTrigger(&SQLTrigger{Table: "product", Event: EvInsert, Body: func(*FireContext) error { return nil }}); err == nil {
		t.Error("unnamed trigger accepted")
	}
}

func TestUnknownTableErrors(t *testing.T) {
	db := pvDB(t)
	if err := db.Insert("nope", Row{}); err == nil {
		t.Error("Insert unknown table")
	}
	if _, err := db.Delete("nope", func(Row) bool { return true }); err == nil {
		t.Error("Delete unknown table")
	}
	if _, err := db.Update("nope", func(Row) bool { return true }, func(r Row) Row { return r }); err == nil {
		t.Error("Update unknown table")
	}
	if err := db.Scan("nope", func(Row) bool { return true }); err == nil {
		t.Error("Scan unknown table")
	}
	if err := db.CreateIndex("nope", "x"); err == nil {
		t.Error("CreateIndex unknown table")
	}
	if err := db.CreateIndex("product", "nope"); err == nil {
		t.Error("CreateIndex unknown column")
	}
}

// TestIndexConsistencyQuick drives a random sequence of inserts, updates,
// and deletes, then verifies that index lookups agree with full scans for
// every key — the core index-maintenance invariant.
func TestIndexConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db, err := Open(schema.ProductVendor())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			_ = db.Insert("product", Row{xdm.Str(string(rune('A' + i))), xdm.Str("n"), xdm.Str("m")})
		}
		nextVID := 0
		for op := 0; op < 200; op++ {
			switch r.Intn(3) {
			case 0:
				nextVID++
				pid := string(rune('A' + r.Intn(10)))
				_ = db.Insert("vendor", Row{xdm.Int(int64(nextVID)), xdm.Str(pid), xdm.Float(float64(r.Intn(100)))})
			case 1:
				pid := string(rune('A' + r.Intn(10)))
				_, _ = db.Update("vendor",
					func(row Row) bool { return row[1].AsString() == pid },
					func(row Row) Row {
						row[1] = xdm.Str(string(rune('A' + r.Intn(10))))
						return row
					})
			case 2:
				v := int64(r.Intn(nextVID + 1))
				_, _ = db.Delete("vendor", func(row Row) bool { return row[0].AsInt() == v })
			}
		}
		// Invariant: for every pid, index lookup set == scan-filter set.
		for i := 0; i < 10; i++ {
			pid := xdm.Str(string(rune('A' + i)))
			var viaIndex, viaScan int
			_ = db.Lookup("vendor", "pid", pid, func(Row) bool { viaIndex++; return true })
			_ = db.Scan("vendor", func(row Row) bool {
				if xdm.Equal(row[1], pid) {
					viaScan++
				}
				return true
			})
			if viaIndex != viaScan {
				t.Logf("seed %d pid %s: index=%d scan=%d", seed, pid, viaIndex, viaScan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidation(t *testing.T) {
	s := schema.New()
	if err := s.AddTable(&schema.Table{Name: ""}); err == nil {
		t.Error("empty table name accepted")
	}
	if err := s.AddTable(&schema.Table{Name: "t", Columns: []schema.Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := s.AddTable(&schema.Table{Name: "t", Columns: []schema.Column{{Name: "a"}}, PrimaryKey: []string{"b"}}); err == nil {
		t.Error("bad PK accepted")
	}
	if err := s.AddTable(&schema.Table{Name: "t", Columns: []schema.Column{{Name: "a"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&schema.Table{Name: "t", Columns: []schema.Column{{Name: "a"}}}); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := s.AddTable(&schema.Table{
		Name: "u", Columns: []schema.Column{{Name: "a"}},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"a"}, RefTable: "zzz", RefColumns: []string{"x"}}},
	}); err == nil {
		t.Error("FK to unknown table accepted")
	}
	ddl := schema.ProductVendor().String()
	for _, want := range []string{"CREATE TABLE product", "PRIMARY KEY (vid, pid)", "FOREIGN KEY (pid) REFERENCES product"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}
