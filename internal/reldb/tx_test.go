package reldb

import (
	"testing"

	"quark/internal/schema"
	"quark/internal/xdm"
)

func txTestDB(t *testing.T) *DB {
	t.Helper()
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "item",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "qty", Type: schema.TInt},
		},
		PrimaryKey: []string{"id"},
	})
	s.MustAddTable(&schema.Table{
		Name: "tag",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "label", Type: schema.TString},
		},
		PrimaryKey: []string{"id"},
	})
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

type firing struct {
	table    string
	event    Event
	inserted [][]int64
	deleted  [][]int64
	batch    bool
}

func recordFirings(t *testing.T, db *DB, table string, log *[]firing) {
	t.Helper()
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		ev := ev
		err := db.CreateTrigger(&SQLTrigger{
			Name: table + "_" + ev.String(), Table: table, Event: ev,
			Body: func(ctx *FireContext) error {
				f := firing{table: ctx.Table, event: ctx.Event, batch: ctx.Batch != nil}
				for _, r := range ctx.Inserted {
					f.inserted = append(f.inserted, []int64{r[0].AsInt(), r[1].AsInt()})
				}
				for _, r := range ctx.Deleted {
					f.deleted = append(f.deleted, []int64{r[0].AsInt(), r[1].AsInt()})
				}
				*log = append(*log, f)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTxCoalescesUpdates(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	set := func(q int64) func(Row) Row {
		return func(r Row) Row { r[1] = xdm.Int(q); return r }
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, set(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, set(30)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("expected 1 firing, got %d: %+v", len(log), log)
	}
	f := log[0]
	if f.event != EvUpdate || !f.batch {
		t.Fatalf("expected batched UPDATE firing, got %+v", f)
	}
	if len(f.deleted) != 1 || f.deleted[0][1] != 10 || f.inserted[0][1] != 30 {
		t.Fatalf("expected coalesced pair (10 -> 30), got %+v", f)
	}
}

func TestTxInsertThenUpdateFiresSingleInsert(t *testing.T) {
	db := txTestDB(t)
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[1] = xdm.Int(7)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvInsert {
		t.Fatalf("expected a single INSERT firing, got %+v", log)
	}
	if log[0].inserted[0][1] != 7 {
		t.Fatalf("expected Δ to carry the final version (qty=7), got %+v", log[0])
	}
}

func TestTxInsertThenDeleteFiresNothing(t *testing.T) {
	db := txTestDB(t)
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteByPK("item", xdm.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("expected no firings, got %+v", log)
	}
	if db.RowCount("item") != 0 {
		t.Fatalf("expected empty table")
	}
}

func TestTxDeleteThenReinsertBecomesUpdate(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	if _, err := tx.DeleteByPK("item", xdm.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(42)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvUpdate {
		t.Fatalf("expected a single UPDATE firing, got %+v", log)
	}
	if log[0].deleted[0][1] != 10 || log[0].inserted[0][1] != 42 {
		t.Fatalf("expected pair (10 -> 42), got %+v", log[0])
	}
}

func TestTxNoOpNetChangeFiresNothing(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	set := func(q int64) func(Row) Row {
		return func(r Row) Row { r[1] = xdm.Int(q); return r }
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, set(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, set(10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("expected no firings for a net no-op, got %+v", log)
	}
}

func TestTxMultiTableCommitOrderAndBatchDeltas(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("tag", Row{xdm.Int(1), xdm.Str("old")}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)
	var tagEvents []Event
	var sawDeltas int
	err := db.CreateTrigger(&SQLTrigger{
		Name: "tag_upd", Table: "tag", Event: EvUpdate,
		Body: func(ctx *FireContext) error {
			tagEvents = append(tagEvents, ctx.Event)
			if ctx.Batch != nil {
				sawDeltas = len(ctx.Batch.Deltas)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.UpdateByPK("tag", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[1] = xdm.Str("new")
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(1)}, Row{xdm.Int(2), xdm.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteByPK("item", xdm.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// item fires before tag (table-name order); only the surviving insert.
	if len(log) != 1 || log[0].event != EvInsert || len(log[0].inserted) != 1 {
		t.Fatalf("expected one INSERT firing with one row on item, got %+v", log)
	}
	if len(tagEvents) != 1 {
		t.Fatalf("expected one tag firing, got %v", tagEvents)
	}
	if sawDeltas != 2 {
		t.Fatalf("expected batch deltas for 2 tables, got %d", sawDeltas)
	}
}

func TestTxRollback(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}, Row{xdm.Int(2), xdm.Int(20)}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("item", "qty"); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(3), xdm.Int(30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[1] = xdm.Int(99)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteByPK("item", xdm.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("rollback must not fire triggers, got %+v", log)
	}
	if db.RowCount("item") != 2 {
		t.Fatalf("expected 2 rows after rollback, got %d", db.RowCount("item"))
	}
	r, ok, _ := db.GetByPK("item", xdm.Int(1))
	if !ok || r[1].AsInt() != 10 {
		t.Fatalf("expected row 1 restored to qty=10, got %v", r)
	}
	// Secondary index must be restored too.
	n := 0
	if err := db.Lookup("item", "qty", xdm.Int(10), func(Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expected qty index to find restored row, got %d hits", n)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("expected error committing a finished transaction")
	}
}

func TestTxPKSwapKeepsBothPreImages(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}, Row{xdm.Int(2), xdm.Int(20)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	// One statement swapping the two primary keys: both rows' old
	// versions must survive into the net transition tables.
	tx := db.Begin()
	if _, err := tx.Update("item", func(Row) bool { return true }, func(r Row) Row {
		if r[0].AsInt() == 1 {
			r[0] = xdm.Int(2)
		} else {
			r[0] = xdm.Int(1)
		}
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvUpdate {
		t.Fatalf("expected one UPDATE firing with both pairs, got %+v", log)
	}
	if len(log[0].inserted) != 2 || len(log[0].deleted) != 2 {
		t.Fatalf("expected 2 aligned update pairs, got %+v", log[0])
	}
	// Pairs follow row identity across the swap: each row keeps its qty
	// and receives the other key.
	for i := range log[0].deleted {
		o, n := log[0].deleted[i], log[0].inserted[i]
		if o[1] != n[1] {
			t.Errorf("pair %d is not identity-aligned: %v -> %v", i, o, n)
		}
		if o[0] == n[0] {
			t.Errorf("pair %d: key did not swap: %v -> %v", i, o, n)
		}
	}
}

func TestTxUpdateWithoutPrimaryKeyFiresUpdate(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name:    "nopk",
		Columns: []schema.Column{{Name: "v", Type: schema.TInt}},
	})
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("nopk", Row{xdm.Int(1)}); err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		ev := ev
		if err := db.CreateTrigger(&SQLTrigger{
			Name: "nopk_" + ev.String(), Table: "nopk", Event: ev,
			Body: func(ctx *FireContext) error {
				events = append(events, ctx.Event)
				return nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	if _, err := tx.Update("nopk", func(Row) bool { return true }, func(r Row) Row {
		r[0] = xdm.Int(2)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The synthetic rowid is stable across updates, so the batched change
	// coalesces to one UPDATE — not an INSERT+DELETE pair.
	if len(events) != 1 || events[0] != EvUpdate {
		t.Fatalf("expected a single UPDATE firing, got %v", events)
	}
}

func TestTxPKMoveStaysUpdate(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	// A PK-changing update fires AFTER UPDATE in the single-statement
	// path, so the batched path must report it as an update pair too — a
	// listener installed only on (item, UPDATE) must not miss it.
	tx := db.Begin()
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[0] = xdm.Int(5)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvUpdate {
		t.Fatalf("expected a single UPDATE firing, got %+v", log)
	}
	if log[0].deleted[0][0] != 1 || log[0].inserted[0][0] != 5 {
		t.Fatalf("expected pair key 1 -> 5, got %+v", log[0])
	}
}

func TestTxPKMoveThenInsertIntoVacatedKey(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	// Move row 1 -> 2, then insert a fresh row at the vacated key 1: the
	// moved row's pre-image belongs to the UPDATE pair, and the fresh row
	// is a plain INSERT — it must not adopt key 1's pre-image.
	tx := db.Begin()
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[0] = xdm.Int(2)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].event != EvInsert || log[1].event != EvUpdate {
		t.Fatalf("expected INSERT then UPDATE firings, got %+v", log)
	}
	if len(log[0].inserted) != 1 || log[0].inserted[0][1] != 99 {
		t.Fatalf("expected INSERT of the fresh row (qty=99), got %+v", log[0])
	}
	if len(log[1].deleted) != 1 || log[1].deleted[0][0] != 1 || log[1].inserted[0][0] != 2 {
		t.Fatalf("expected UPDATE pair 1 -> 2, got %+v", log[1])
	}
}

func TestTxChainedPKMoveCoalesces(t *testing.T) {
	db := txTestDB(t)
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	var log []firing
	recordFirings(t, db, "item", &log)

	// Move 1 -> 5 -> 9 across two statements: one UPDATE pair 1 -> 9.
	tx := db.Begin()
	move := func(from, to int64) {
		t.Helper()
		if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(from)}, func(r Row) Row {
			r[0] = xdm.Int(to)
			return r
		}); err != nil {
			t.Fatal(err)
		}
	}
	move(1, 5)
	move(5, 9)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvUpdate {
		t.Fatalf("expected a single UPDATE firing, got %+v", log)
	}
	if log[0].deleted[0][0] != 1 || log[0].inserted[0][0] != 9 {
		t.Fatalf("expected coalesced pair 1 -> 9, got %+v", log[0])
	}
}
