package reldb

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/schema"
	"quark/internal/xdm"
)

// countingTrigger installs one counter trigger per event on the table and
// returns the counters indexed by event.
func countingTriggers(t *testing.T, db *DB, table string) map[Event]*int {
	t.Helper()
	counts := map[Event]*int{}
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		ev := ev
		n := new(int)
		counts[ev] = n
		err := db.CreateTrigger(&SQLTrigger{
			Name:  fmt.Sprintf("count_%s_%s", table, ev),
			Table: table,
			Event: ev,
			Body:  func(*FireContext) error { *n++; return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return counts
}

// TestZeroRowStatementsFireNothing: statements whose transition tables
// would be empty fire no triggers — Insert included, which used to fire
// every INSERT trigger with an empty Δ on `Insert("t")`.
func TestZeroRowStatementsFireNothing(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	counts := countingTriggers(t, db, "vendor")

	none := func(Row) bool { return false }
	if err := db.Insert("vendor"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("vendor", none, func(r Row) Row { return r }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("vendor", none); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Nobody"), xdm.Str("P9")}, func(r Row) Row { return r }); err != nil || ok {
		t.Fatalf("UpdateByPK on missing row: ok=%v err=%v", ok, err)
	}
	if ok, err := db.DeleteByPK("vendor", xdm.Str("Nobody"), xdm.Str("P9")); err != nil || ok {
		t.Fatalf("DeleteByPK on missing row: ok=%v err=%v", ok, err)
	}
	for ev, n := range counts {
		if *n != 0 {
			t.Errorf("%s trigger fired %d times on zero-row statements, want 0", ev, *n)
		}
	}
}

// TestZeroRowTxFiresNothing: a transaction whose net effect is empty —
// zero-row statements, or changes that cancel out — commits without
// firing.
func TestZeroRowTxFiresNothing(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	counts := countingTriggers(t, db, "vendor")

	tx := db.Begin()
	if err := tx.Insert("vendor"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update("vendor", func(Row) bool { return false }, func(r Row) Row { return r }); err != nil {
		t.Fatal(err)
	}
	// Insert then delete the same row: net nothing.
	if err := tx.Insert("vendor", Row{xdm.Str("Temp"), xdm.Str("P1"), xdm.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if ok, err := tx.DeleteByPK("vendor", xdm.Str("Temp"), xdm.Str("P1")); err != nil || !ok {
		t.Fatalf("delete of in-tx insert: ok=%v err=%v", ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for ev, n := range counts {
		if *n != 0 {
			t.Errorf("%s trigger fired %d times on a net-empty transaction, want 0", ev, *n)
		}
	}
}

// TestTriggerBodyMutatingTriggers: a body that drops a later trigger and
// creates a new one must not make the firing wave skip or double-fire
// neighbors — the wave runs the statement-time snapshot exactly once
// each, and the new trigger joins from the next statement on.
func TestTriggerBodyMutatingTriggers(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	var fired []string
	record := func(name string) func(*FireContext) error {
		return func(*FireContext) error {
			fired = append(fired, name)
			return nil
		}
	}
	addLate := func(name string) error {
		return db.CreateTrigger(&SQLTrigger{Name: name, Table: "vendor", Event: EvUpdate, Body: record(name)})
	}
	mutator := func(*FireContext) error {
		fired = append(fired, "A")
		if err := db.DropTrigger("C"); err != nil {
			return err
		}
		return addLate("D")
	}
	if err := db.CreateTrigger(&SQLTrigger{Name: "A", Table: "vendor", Event: EvUpdate, Body: mutator}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"B", "C"} {
		if err := addLate(n); err != nil {
			t.Fatal(err)
		}
	}

	bump := func() {
		t.Helper()
		if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r Row) Row {
			r[2] = xdm.Float(r[2].AsFloat() + 1)
			return r
		}); err != nil {
			t.Fatal(err)
		}
	}
	bump()
	if got := strings.Join(fired, ","); got != "A,B,C" {
		t.Fatalf("first wave fired %q, want \"A,B,C\" (snapshot: C still fires, D not yet)", got)
	}
	// Drop the mutator (its body would fail dropping the now-gone C) and
	// check the steady state: C stays gone, D fires from this wave on.
	fired = nil
	if err := db.DropTrigger("A"); err != nil {
		t.Fatal(err)
	}
	bump()
	if got := strings.Join(fired, ","); got != "B,D" {
		t.Fatalf("second wave fired %q, want \"B,D\"", got)
	}
}

// TestTriggerBodyCreatesTriggerNoSkip: creating a trigger mid-wave (which
// grows the registered set) must not re-fire or skip the remaining
// statement-time triggers, however many appends happen.
func TestTriggerBodyCreatesTriggerNoSkip(t *testing.T) {
	db := pvDB(t)
	loadPaperData(t, db)
	var fired []string
	seq := 0
	spawner := func(*FireContext) error {
		fired = append(fired, "S")
		seq++
		name := fmt.Sprintf("spawn%d", seq)
		return db.CreateTrigger(&SQLTrigger{
			Name: name, Table: "vendor", Event: EvDelete,
			Body: func(*FireContext) error { fired = append(fired, name); return nil },
		})
	}
	if err := db.CreateTrigger(&SQLTrigger{Name: "S", Table: "vendor", Event: EvDelete, Body: spawner}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"T1", "T2"} {
		n := n
		if err := db.CreateTrigger(&SQLTrigger{Name: n, Table: "vendor", Event: EvDelete,
			Body: func(*FireContext) error { fired = append(fired, n); return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Delete("vendor", func(r Row) bool { return r[0].AsString() == "Buy.com" }); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fired, ","); got != "S,T1,T2" {
		t.Fatalf("wave fired %q, want \"S,T1,T2\"", got)
	}
	fired = nil
	if _, err := db.Delete("vendor", func(r Row) bool { return r[0].AsString() == "Bestbuy" && r[1].AsString() == "P3" }); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fired, ","); got != "S,T1,T2,spawn1" {
		t.Fatalf("second wave fired %q, want \"S,T1,T2,spawn1\"", got)
	}
}

// transitionKeys renders a transition table's rows compactly.
func transitionKeys(rows []Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = r[0].AsString() + "/" + r[1].AsString()
	}
	return strings.Join(parts, ",")
}

// TestTransitionOrderDeterministic: multi-row UPDATE and DELETE must
// present Δ/∇ in a stable (storage-key-sorted) order on every run, not in
// Go map iteration order.
func TestTransitionOrderDeterministic(t *testing.T) {
	const rounds = 25
	var updOrder, delOrder string
	for round := 0; round < rounds; round++ {
		db := pvDB(t)
		loadPaperData(t, db)
		var gotUpd, gotDel string
		err := db.CreateTrigger(&SQLTrigger{Name: "u", Table: "vendor", Event: EvUpdate,
			Body: func(ctx *FireContext) error {
				gotUpd = transitionKeys(ctx.Inserted) + "|" + transitionKeys(ctx.Deleted)
				return nil
			}})
		if err != nil {
			t.Fatal(err)
		}
		err = db.CreateTrigger(&SQLTrigger{Name: "d", Table: "vendor", Event: EvDelete,
			Body: func(ctx *FireContext) error {
				gotDel = transitionKeys(ctx.Deleted)
				return nil
			}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Update("vendor", func(Row) bool { return true }, func(r Row) Row {
			r[2] = xdm.Float(r[2].AsFloat() + 5)
			return r
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Delete("vendor", func(Row) bool { return true }); err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			updOrder, delOrder = gotUpd, gotDel
			if updOrder == "" || delOrder == "" {
				t.Fatal("triggers did not fire")
			}
			continue
		}
		if gotUpd != updOrder {
			t.Fatalf("round %d: UPDATE transition order %q != round 0 %q", round, gotUpd, updOrder)
		}
		if gotDel != delOrder {
			t.Fatalf("round %d: DELETE transition order %q != round 0 %q", round, gotDel, delOrder)
		}
	}
	// The stable order is also the UPDATE pairs' alignment contract:
	// Deleted[i] must be the old version of Inserted[i].
	parts := strings.SplitN(updOrder, "|", 2)
	if parts[0] != parts[1] {
		t.Fatalf("UPDATE pairs misaligned: Δ %q vs ∇ %q", parts[0], parts[1])
	}
}

// noPKSchema builds one table without a primary key (synthetic rowids).
func noPKSchema(t *testing.T) *DB {
	t.Helper()
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "events",
		Columns: []schema.Column{
			{Name: "kind", Type: schema.TString},
			{Name: "val", Type: schema.TInt},
		},
	})
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRollbackRestoresAutoID: a rolled-back transaction must return a
// no-PK table's rowid counter to its pre-transaction value, so re-running
// the same inserts allocates the same storage keys as the first attempt.
func TestRollbackRestoresAutoID(t *testing.T) {
	db := noPKSchema(t)
	if err := db.Insert("events", Row{xdm.Str("boot"), xdm.Int(1)}); err != nil {
		t.Fatal(err)
	}
	before := db.tables["events"].autoID

	tx := db.Begin()
	if err := tx.Insert("events",
		Row{xdm.Str("a"), xdm.Int(2)},
		Row{xdm.Str("b"), xdm.Int(3)},
	); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.tables["events"].autoID; got != before {
		t.Fatalf("autoID after rollback = %d, want %d", got, before)
	}
	if db.RowCount("events") != 1 {
		t.Fatalf("row count after rollback = %d, want 1", db.RowCount("events"))
	}

	// The re-run allocates the same keys: committing the same two inserts
	// after the rollback must leave the table with contiguous rowids
	// (observable as the re-insert landing in the rolled-back keys).
	tx2 := db.Begin()
	if err := tx2.Insert("events",
		Row{xdm.Str("a"), xdm.Int(2)},
		Row{xdm.Str("b"), xdm.Int(3)},
	); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.tables["events"].autoID; got != before+2 {
		t.Fatalf("autoID after re-run = %d, want %d", got, before+2)
	}
}

// TestCheckFKNonPKFallbackCountsScan: foreign keys referencing non-PK
// columns validate via a whole-table scan of the referenced table, which
// must be visible in Stats.FullScans.
func TestCheckFKNonPKFallbackCountsScan(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "parent",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "code", Type: schema.TString},
		},
		PrimaryKey: []string{"id"},
	})
	s.MustAddTable(&schema.Table{
		Name: "child",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "pcode", Type: schema.TString},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"pcode"}, RefTable: "parent", RefColumns: []string{"code"}},
		},
	})
	db, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	db.SetEnforceFKs(true)
	if err := db.Insert("parent", Row{xdm.Int(1), xdm.Str("X")}); err != nil {
		t.Fatal(err)
	}
	db.ResetStats()
	if err := db.Insert("child", Row{xdm.Int(10), xdm.Str("X")}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().FullScans; got != 1 {
		t.Errorf("FullScans after non-PK FK check = %d, want 1", got)
	}
	// The full-PK fast path stays scan-free.
	db.ResetStats()
	if err := db.Insert("parent", Row{xdm.Int(2), xdm.Str("Y")}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().FullScans; got != 0 {
		t.Errorf("FullScans on PK-referencing insert = %d, want 0", got)
	}
}
