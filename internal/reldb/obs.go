package reldb

import (
	"quark/internal/obs"
)

// dbObs is the resolved metric-handle set for one DB. It hangs off the
// DB behind an atomic pointer: a nil pointer is the disabled fast path
// (one load + branch per statement, no clock reads), so attaching
// observability never slows an unobserved database.
type dbObs struct {
	stmt      *obs.Histogram // quark_reldb_stmt_ns: single-statement apply+fire latency
	txPrepare *obs.Histogram // quark_reldb_tx_prepare_ns: net-delta computation + staging fire
	txCommit  *obs.Histogram // quark_reldb_tx_commit_ns: staged-delivery drain
}

// AttachObs resolves this DB's latency histograms from the registry and
// starts recording. Multiple DBs (the shards of a fleet) may attach to
// one registry: they share the same named series, so the histograms
// aggregate fleet-wide. Counter-style stats (statements, trigger fires,
// scans, index hits) are NOT registered here — they are exported by the
// layer that knows the fleet, via Stats() func collectors — so per-shard
// registrations can never shadow each other. Attach(nil) detaches.
func (db *DB) AttachObs(reg *obs.Registry) {
	if reg == nil {
		db.obs.Store(nil)
		return
	}
	db.obs.Store(&dbObs{
		stmt:      reg.Histogram("quark_reldb_stmt_ns", nil),
		txPrepare: reg.Histogram("quark_reldb_tx_prepare_ns", nil),
		txCommit:  reg.Histogram("quark_reldb_tx_commit_ns", nil),
	})
}
