// Package reldb is the relational substrate: an in-memory storage engine
// with primary keys, hash indexes, statement-level INSERT/UPDATE/DELETE,
// and statement-level AFTER triggers with transition tables. It plays the
// role IBM DB2 plays in the paper: the generated "SQL triggers" produced by
// the translation pipeline are installed here and fire with Δtable /
// ∇table transition tables exactly as described in Section 2.3.
//
// A DB's write path is not safe for concurrent use; the engine layer
// (internal/core) coordinates statements with per-table read/write locks.
// Read paths (Scan, Lookup, GetByPK, Stats) may run concurrently with each
// other: the work counters are atomic.
package reldb

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"quark/internal/schema"
	"quark/internal/xdm"
)

// Row is one relational tuple, positionally aligned with the table's
// columns.
type Row []xdm.Value

// Copy returns a copy of the row (values are immutable, so a shallow copy
// of the slice suffices).
func (r Row) Copy() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Event is the statement kind a SQL trigger listens for.
type Event uint8

// Statement events.
const (
	EvInsert Event = iota
	EvUpdate
	EvDelete
)

func (e Event) String() string {
	switch e {
	case EvInsert:
		return "INSERT"
	case EvUpdate:
		return "UPDATE"
	case EvDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("EVENT(%d)", uint8(e))
	}
}

// FireContext is handed to a trigger body when its statement completes. The
// transition tables follow the paper's notation: Inserted is Δtable (rows
// after the statement), Deleted is ∇table (rows before). For INSERT
// statements Deleted is empty; for DELETE, Inserted is empty; UPDATE
// populates both, index-aligned (Deleted[i] is the old version of
// Inserted[i]).
//
// Immutability contract: the Row values in the transition tables (and in
// Batch.Deltas) are snapshots that the store never mutates in place —
// every write path replaces rows copy-on-write (applyInsert copies its
// input; applyUpdate builds the new version from a copy and swaps it in).
// Trigger bodies and asynchronous dispatchers may therefore retain
// transition rows, and anything derived from them, beyond the firing
// statement without copying and without holding the statement's locks.
type FireContext struct {
	DB       *DB
	Table    string
	Event    Event
	Inserted []Row
	Deleted  []Row
	Depth    int // trigger cascade depth (1 for directly fired triggers)
	// Batch is non-nil when the firing comes from Tx.Prepare/Commit: the
	// trigger fires once for the whole transaction with the merged
	// transition tables, and Batch carries the net per-table deltas of the
	// entire batch (for engines that reconstruct cross-table old state).
	Batch *BatchInfo
	// Stage is non-nil when the firing is the staging pass of Tx.Prepare
	// (two-phase commit). A body that performs external deliveries must
	// route each one through Stage instead of performing it: staged
	// deliveries run at Tx.Commit, in staging order, after every
	// participant's prepare succeeded, so a prepare-phase error can still
	// abort the whole transaction with nothing delivered. Evaluation work
	// (and its errors) stays in the body; a body that ignores Stage simply
	// runs its effects at prepare time, which is the pre-two-phase
	// behavior.
	Stage func(deliver func() error)
}

// NetDelta is the net change of one table over a whole transaction:
// Inserted holds rows that exist after commit but not before (including
// new versions of updated rows); Deleted holds rows that existed before
// but not after (including old versions of updated rows).
type NetDelta struct {
	Inserted []Row
	Deleted  []Row
}

// BatchInfo identifies one Tx.Commit firing wave. Seq is unique per
// commit; Deltas maps every table the transaction touched to its net
// change.
type BatchInfo struct {
	Seq    int64
	Deltas map[string]*NetDelta
	// Silent marks a data-movement transaction (Tx.SetSilent) whose firing
	// wave must not produce observable trigger activity: bodies may refresh
	// internal state (a materialized view's diff baseline) but must not
	// activate triggers or deliver actions. Shard rebalancing uses it — the
	// donor's deletes and recipient's inserts are physical placement
	// artifacts, not logical data changes.
	Silent bool
	// EngineState is scratch storage for the trigger-translation layer:
	// every firing wave of one commit shares this BatchInfo and runs on
	// the committing goroutine, so per-commit state cached here (e.g.
	// cross-plan activation dedup) needs no locking and lives exactly as
	// long as the commit that created it.
	EngineState any
	// Obs is the opaque observability token set via Tx.SetObsToken (the
	// engine's prepare-phase trace span); reldb never inspects it.
	Obs any
}

// SQLTrigger is a statement-level AFTER trigger. Body is the compiled
// trigger action; SQL carries the rendered SQL text for display and tests.
type SQLTrigger struct {
	Name  string
	Table string
	Event Event
	SQL   string
	Body  func(*FireContext) error
}

// Stats counts engine work, used by benchmarks and by tests that assert
// index access paths are taken.
type Stats struct {
	Statements   int64
	TriggerFires int64
	FullScans    int64
	IndexLookups int64
	RowsRead     int64
}

// counters is the internal atomic mirror of Stats, safe for concurrent
// readers (Scan/Lookup run under shared locks at the engine layer).
type counters struct {
	statements   atomic.Int64
	triggerFires atomic.Int64
	fullScans    atomic.Int64
	indexLookups atomic.Int64
	rowsRead     atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Statements:   c.statements.Load(),
		TriggerFires: c.triggerFires.Load(),
		FullScans:    c.fullScans.Load(),
		IndexLookups: c.indexLookups.Load(),
		RowsRead:     c.rowsRead.Load(),
	}
}

func (c *counters) reset() {
	c.statements.Store(0)
	c.triggerFires.Store(0)
	c.fullScans.Store(0)
	c.indexLookups.Store(0)
	c.rowsRead.Store(0)
}

// maxTriggerDepth bounds trigger cascades, mirroring DB2's limit of 16.
const maxTriggerDepth = 16

type index struct {
	col int
	m   map[string]map[string]struct{} // value key -> set of row pk keys
}

type tableData struct {
	def     *schema.Table
	pkIdx   []int
	rows    map[string]Row
	indexes map[string]*index // column name -> secondary index
	autoID  int64             // synthetic rowid for tables without PK
	// fireDepth guards against runaway trigger cascades on this table.
	// Per-table counters keep concurrent statements on disjoint tables
	// (legal under the engine's per-table locks) from counting toward
	// each other's cascade budget; same-table writers are serialized by
	// the engine, and a cross-table cascade loop still grows every
	// counter it revisits, so the bound still trips.
	fireDepth atomic.Int32
}

// DB is an in-memory relational database instance over a fixed schema.
type DB struct {
	schema     *schema.Schema
	tables     map[string]*tableData
	triggers   []*SQLTrigger
	byName     map[string]*SQLTrigger
	enforceFKs bool
	stats      counters
	batchSeq   atomic.Int64
	// nesting reports overall cascade depth in FireContext.Depth. Under
	// concurrent statements (disjoint tables) it over-counts by the
	// number of in-flight firings — informational only; the cascade
	// LIMIT uses the per-table counters, which concurrency cannot trip.
	nesting atomic.Int32
	// obs, when non-nil, holds resolved latency-histogram handles (see
	// AttachObs). Nil means disabled: statement paths pay one atomic load
	// and a branch, never a clock read.
	obs atomic.Pointer[dbObs]
}

// Open creates an empty database for the schema. Primary-key columns of
// every table are indexed automatically (leading column).
func Open(s *schema.Schema) (*DB, error) {
	db := &DB{
		schema: s,
		tables: map[string]*tableData{},
		byName: map[string]*SQLTrigger{},
	}
	for _, t := range s.Tables() {
		td := &tableData{
			def:     t,
			pkIdx:   t.PKIndexes(),
			rows:    map[string]Row{},
			indexes: map[string]*index{},
		}
		db.tables[t.Name] = td
	}
	for _, t := range s.Tables() {
		for _, k := range t.PrimaryKey {
			if err := db.CreateIndex(t.Name, k); err != nil {
				return nil, err
			}
		}
		for _, fk := range t.ForeignKeys {
			for _, c := range fk.Columns {
				if err := db.CreateIndex(t.Name, c); err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}

// Schema returns the database schema.
func (db *DB) Schema() *schema.Schema { return db.schema }

// SetEnforceFKs toggles foreign-key enforcement on writes.
func (db *DB) SetEnforceFKs(on bool) { db.enforceFKs = on }

// Stats returns a copy of the engine counters.
func (db *DB) Stats() Stats { return db.stats.snapshot() }

// ResetStats zeroes the engine counters.
func (db *DB) ResetStats() { db.stats.reset() }

func (db *DB) table(name string) (*tableData, error) {
	td, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("reldb: unknown table %q", name)
	}
	return td, nil
}

func (td *tableData) pkKey(r Row) string {
	if len(td.pkIdx) == 0 {
		// Tables without a primary key get synthetic identity; callers use
		// insertKey to allocate one.
		return ""
	}
	ks := make([]xdm.Value, len(td.pkIdx))
	for i, c := range td.pkIdx {
		ks[i] = r[c]
	}
	return xdm.TupleKey(ks)
}

func (db *DB) validateRow(td *tableData, r Row) error {
	if len(r) != len(td.def.Columns) {
		return fmt.Errorf("reldb: table %s expects %d columns, got %d", td.def.Name, len(td.def.Columns), len(r))
	}
	for i, c := range td.def.Columns {
		if !c.Type.Accepts(r[i]) {
			return fmt.Errorf("reldb: table %s column %s (%s) rejects value %s", td.def.Name, c.Name, c.Type, r[i])
		}
	}
	for _, c := range td.pkIdx {
		if r[c].IsNull() {
			return fmt.Errorf("reldb: table %s primary key column %s is NULL", td.def.Name, td.def.Columns[c].Name)
		}
	}
	if db.enforceFKs {
		for _, fk := range td.def.ForeignKeys {
			if err := db.checkFK(td, fk, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func (db *DB) checkFK(td *tableData, fk schema.ForeignKey, r Row) error {
	ref, err := db.table(fk.RefTable)
	if err != nil {
		return err
	}
	// NULL foreign keys are vacuously satisfied.
	vals := make([]xdm.Value, len(fk.Columns))
	for i, c := range fk.Columns {
		ci := td.def.ColIndex(c)
		if r[ci].IsNull() {
			return nil
		}
		vals[i] = r[ci]
	}
	found := false
	// Fast path: referencing the full primary key.
	if len(fk.RefColumns) == len(ref.def.PrimaryKey) {
		same := true
		for i, rc := range fk.RefColumns {
			if ref.def.PrimaryKey[i] != rc {
				same = false
				break
			}
		}
		if same {
			_, found = ref.rows[xdm.TupleKey(vals)]
		}
		if found {
			return nil
		}
	}
	refIdx := make([]int, len(fk.RefColumns))
	for i, rc := range fk.RefColumns {
		refIdx[i] = ref.def.ColIndex(rc)
	}
	// Non-PK fallback: a whole-table scan of the referenced table, which
	// must show up in the stats like every other scan so access-path
	// assertions (and capacity planning) see it.
	db.stats.fullScans.Add(1)
	for _, row := range ref.rows {
		match := true
		for i, ri := range refIdx {
			if !xdm.Equal(row[ri], vals[i]) {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("reldb: foreign key violation: %s(%v) has no parent in %s", td.def.Name, vals, fk.RefTable)
	}
	return nil
}

// CreateIndex builds a hash index on a single column; idempotent.
func (db *DB) CreateIndex(table, col string) error {
	td, err := db.table(table)
	if err != nil {
		return err
	}
	ci := td.def.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("reldb: table %s has no column %q", table, col)
	}
	if _, ok := td.indexes[col]; ok {
		return nil
	}
	ix := &index{col: ci, m: map[string]map[string]struct{}{}}
	for pk, r := range td.rows { //quark:sorted hash-index build: resulting index content is independent of insertion order
		ix.add(r[ci], pk)
	}
	td.indexes[col] = ix
	return nil
}

// HasIndex reports whether a single-column index exists.
func (db *DB) HasIndex(table, col string) bool {
	td, err := db.table(table)
	if err != nil {
		return false
	}
	_, ok := td.indexes[col]
	return ok
}

func (ix *index) add(v xdm.Value, pk string) {
	k := v.Key()
	s, ok := ix.m[k]
	if !ok {
		s = map[string]struct{}{}
		ix.m[k] = s
	}
	s[pk] = struct{}{}
}

func (ix *index) remove(v xdm.Value, pk string) {
	k := v.Key()
	if s, ok := ix.m[k]; ok {
		delete(s, pk)
		if len(s) == 0 {
			delete(ix.m, k)
		}
	}
}

func (td *tableData) indexAdd(r Row, pk string) {
	for _, ix := range td.indexes { //quark:sorted each index is maintained independently; no cross-index order dependence
		ix.add(r[ix.col], pk)
	}
}

func (td *tableData) indexRemove(r Row, pk string) {
	for _, ix := range td.indexes { //quark:sorted each index is maintained independently; no cross-index order dependence
		ix.remove(r[ix.col], pk)
	}
}

func (td *tableData) insertKey(r Row) string {
	if len(td.pkIdx) > 0 {
		return td.pkKey(r)
	}
	td.autoID++
	return fmt.Sprintf("\x00rowid:%d", td.autoID)
}

// keyedRow pairs a row with its storage key (the primary-key tuple key, or
// a synthetic rowid for tables without a primary key).
type keyedRow struct {
	key string
	row Row
}

// updateChange records one row rewrite: the storage keys before and after
// (they differ when the update changes the primary key) and both versions.
type updateChange struct {
	oldKey, newKey string
	old, new       Row
}

// applyInsert validates and stores rows without firing triggers.
func (db *DB) applyInsert(table string, rows []Row) (*tableData, []keyedRow, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, nil, err
	}
	// Validate first (all-or-nothing).
	seen := map[string]bool{}
	for _, r := range rows {
		if err := db.validateRow(td, r); err != nil {
			return nil, nil, err
		}
		if len(td.pkIdx) > 0 {
			k := td.pkKey(r)
			if _, dup := td.rows[k]; dup || seen[k] {
				return nil, nil, fmt.Errorf("reldb: duplicate primary key in %s: %s", table, k)
			}
			seen[k] = true
		}
	}
	inserted := make([]keyedRow, 0, len(rows))
	for _, r := range rows {
		rc := r.Copy()
		k := td.insertKey(rc)
		td.rows[k] = rc
		td.indexAdd(rc, k)
		inserted = append(inserted, keyedRow{key: k, row: rc})
	}
	db.stats.statements.Add(1)
	return td, inserted, nil
}

// Insert adds rows to the table as one statement, then fires AFTER INSERT
// triggers with Δtable = rows. The statement is all-or-nothing: primary-key
// or type violations roll the whole statement back. A statement that
// inserted nothing fires nothing, matching Delete/Update (statement-level
// triggers still see an empty transition table in real SQL engines, but
// our translated bodies — and the paper's — have nothing to detect in an
// empty Δ, so the firing would be pure overhead).
func (db *DB) Insert(table string, rows ...Row) error {
	if m := db.obs.Load(); m != nil {
		defer m.stmt.Since(time.Now())
	}
	_, inserted, err := db.applyInsert(table, rows)
	if err != nil {
		return err
	}
	if len(inserted) == 0 {
		return nil
	}
	return db.fire(table, EvInsert, rowsOf(inserted), nil, nil, nil)
}

func rowsOf(krs []keyedRow) []Row {
	out := make([]Row, len(krs))
	for i, kr := range krs {
		out[i] = kr.row
	}
	return out
}

// applyDelete removes matching rows without firing triggers.
func (db *DB) applyDelete(table string, pred func(Row) bool) ([]keyedRow, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, err
	}
	var removed []keyedRow
	for k, r := range td.rows {
		if pred(r) {
			removed = append(removed, keyedRow{key: k, row: r})
		}
	}
	// Sort by storage key: td.rows is a map, and map order would make the
	// ∇table row order (and everything derived from it — activation order,
	// sink output, the outbox log) vary run to run. Tx.net already fires
	// in sorted key order; the single-statement path must match.
	sort.Slice(removed, func(i, j int) bool { return removed[i].key < removed[j].key })
	for _, kr := range removed {
		td.indexRemove(kr.row, kr.key)
		delete(td.rows, kr.key)
	}
	db.stats.statements.Add(1)
	return removed, nil
}

// Delete removes all rows matching pred as one statement and fires AFTER
// DELETE triggers with ∇table = removed rows. Returns the removed count.
func (db *DB) Delete(table string, pred func(Row) bool) (int, error) {
	if m := db.obs.Load(); m != nil {
		defer m.stmt.Since(time.Now())
	}
	removed, err := db.applyDelete(table, pred)
	if err != nil {
		return 0, err
	}
	if len(removed) == 0 {
		return 0, nil
	}
	return len(removed), db.fire(table, EvDelete, nil, rowsOf(removed), nil, nil)
}

// applyDeleteByPK removes one row by primary key without firing triggers.
func (db *DB) applyDeleteByPK(table string, key []xdm.Value) (*keyedRow, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, err
	}
	if len(td.pkIdx) == 0 {
		return nil, fmt.Errorf("reldb: table %s has no primary key", table)
	}
	k := xdm.TupleKey(key)
	r, ok := td.rows[k]
	db.stats.statements.Add(1)
	if !ok {
		return nil, nil
	}
	td.indexRemove(r, k)
	delete(td.rows, k)
	return &keyedRow{key: k, row: r}, nil
}

// DeleteByPK removes the row with the given primary key, if present.
func (db *DB) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	if m := db.obs.Load(); m != nil {
		defer m.stmt.Since(time.Now())
	}
	kr, err := db.applyDeleteByPK(table, key)
	if err != nil || kr == nil {
		return false, err
	}
	return true, db.fire(table, EvDelete, nil, []Row{kr.row}, nil, nil)
}

// applyUpdate rewrites matching rows without firing triggers.
func (db *DB) applyUpdate(table string, pred func(Row) bool, set func(Row) Row) ([]updateChange, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, err
	}
	var changes []updateChange
	for k, r := range td.rows {
		if pred(r) {
			changes = append(changes, updateChange{oldKey: k, old: r})
		}
	}
	// Sort by pre-update storage key before calling set: deterministic
	// Δ/∇ row order (map order varies run to run), and set observes rows
	// in a stable order too, matching what a sorted scan would do.
	sort.Slice(changes, func(i, j int) bool { return changes[i].oldKey < changes[j].oldKey })
	for i := range changes {
		nr := set(changes[i].old.Copy())
		if err := db.validateRow(td, nr); err != nil {
			return nil, err
		}
		changes[i].new = nr
	}
	// Check PK collisions after removal of the old keys.
	if len(td.pkIdx) > 0 {
		removed := map[string]bool{}
		for _, c := range changes {
			removed[c.oldKey] = true
		}
		added := map[string]bool{}
		for _, c := range changes {
			nk := td.pkKey(c.new)
			if added[nk] {
				return nil, fmt.Errorf("reldb: update produces duplicate primary key in %s", table)
			}
			if _, exists := td.rows[nk]; exists && !removed[nk] {
				return nil, fmt.Errorf("reldb: update collides with existing primary key in %s", table)
			}
			added[nk] = true
		}
	}
	for _, c := range changes {
		td.indexRemove(c.old, c.oldKey)
		delete(td.rows, c.oldKey)
	}
	for i := range changes {
		// Tables without a primary key keep their synthetic rowid: the
		// updated row is the same row, and key stability is what lets
		// Tx coalescing classify the change as an UPDATE pair.
		nk := changes[i].oldKey
		if len(td.pkIdx) > 0 {
			nk = td.pkKey(changes[i].new)
		}
		changes[i].newKey = nk
		td.rows[nk] = changes[i].new
		td.indexAdd(changes[i].new, nk)
	}
	db.stats.statements.Add(1)
	return changes, nil
}

// Update rewrites all rows matching pred via set, as one statement, then
// fires AFTER UPDATE triggers with ∇table = old rows and Δtable = new rows.
// set must return a full replacement row (it may mutate the copy it is
// given). Primary-key changes are permitted if they do not collide.
func (db *DB) Update(table string, pred func(Row) bool, set func(Row) Row) (int, error) {
	if m := db.obs.Load(); m != nil {
		defer m.stmt.Since(time.Now())
	}
	changes, err := db.applyUpdate(table, pred, set)
	if err != nil {
		return 0, err
	}
	if len(changes) == 0 {
		return 0, nil
	}
	oldRows := make([]Row, len(changes))
	newRows := make([]Row, len(changes))
	for i, c := range changes {
		oldRows[i], newRows[i] = c.old, c.new
	}
	return len(changes), db.fire(table, EvUpdate, newRows, oldRows, nil, nil)
}

// applyUpdateByPK rewrites one row by primary key without firing triggers.
func (db *DB) applyUpdateByPK(table string, key []xdm.Value, set func(Row) Row) (*updateChange, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, err
	}
	if len(td.pkIdx) == 0 {
		return nil, fmt.Errorf("reldb: table %s has no primary key", table)
	}
	k := xdm.TupleKey(key)
	old, ok := td.rows[k]
	if !ok {
		db.stats.statements.Add(1)
		return nil, nil
	}
	nr := set(old.Copy())
	if err := db.validateRow(td, nr); err != nil {
		return nil, err
	}
	nk := td.pkKey(nr)
	if nk != k {
		if _, exists := td.rows[nk]; exists {
			return nil, fmt.Errorf("reldb: update collides with existing primary key in %s", table)
		}
	}
	td.indexRemove(old, k)
	delete(td.rows, k)
	td.rows[nk] = nr
	td.indexAdd(nr, nk)
	db.stats.statements.Add(1)
	return &updateChange{oldKey: k, newKey: nk, old: old, new: nr}, nil
}

// UpdateByPK rewrites the single row with the given primary key.
func (db *DB) UpdateByPK(table string, key []xdm.Value, set func(Row) Row) (bool, error) {
	if m := db.obs.Load(); m != nil {
		defer m.stmt.Since(time.Now())
	}
	c, err := db.applyUpdateByPK(table, key, set)
	if err != nil || c == nil {
		return false, err
	}
	return true, db.fire(table, EvUpdate, []Row{c.new}, []Row{c.old}, nil, nil)
}

// fire activates the AFTER triggers for (table, ev). The cascade guard is
// a per-table counter (see tableData.fireDepth). stage, when non-nil,
// makes this a staging pass: it is handed to the bodies via
// FireContext.Stage so their deliveries defer to Tx.Commit.
func (db *DB) fire(table string, ev Event, inserted, deleted []Row, batch *BatchInfo, stage func(func() error)) error {
	td, err := db.table(table)
	if err != nil {
		return err
	}
	if d := td.fireDepth.Add(1); d > maxTriggerDepth {
		td.fireDepth.Add(-1)
		return fmt.Errorf("reldb: trigger cascade exceeds depth %d on %s", maxTriggerDepth, table)
	}
	defer td.fireDepth.Add(-1)
	depth := db.nesting.Add(1)
	defer db.nesting.Add(-1)
	// Snapshot the trigger list: a trigger body may call CreateTrigger or
	// DropTrigger, and iterating the live slice while it is rewritten
	// skips or double-fires neighbors. CreateTrigger/DropTrigger never
	// mutate the published slice in place (copy-on-write), so holding the
	// header captured here is a stable view of the statement-time set:
	// triggers installed when the statement completed fire; triggers
	// created by a body join from the next statement on.
	triggers := db.triggers
	for _, tr := range triggers {
		if tr.Table != table || tr.Event != ev {
			continue
		}
		db.stats.triggerFires.Add(1)
		ctx := &FireContext{
			DB:       db,
			Table:    table,
			Event:    ev,
			Inserted: inserted,
			Deleted:  deleted,
			Depth:    int(depth),
			Batch:    batch,
			Stage:    stage,
		}
		if err := tr.Body(ctx); err != nil {
			return fmt.Errorf("reldb: trigger %s: %w", tr.Name, err)
		}
	}
	return nil
}

// CreateTrigger installs a statement-level AFTER trigger.
func (db *DB) CreateTrigger(tr *SQLTrigger) error {
	if tr.Name == "" {
		return fmt.Errorf("reldb: trigger must have a name")
	}
	if _, dup := db.byName[tr.Name]; dup {
		return fmt.Errorf("reldb: duplicate trigger %q", tr.Name)
	}
	if _, err := db.table(tr.Table); err != nil {
		return err
	}
	if tr.Body == nil {
		return fmt.Errorf("reldb: trigger %q has no body", tr.Name)
	}
	// Copy-on-write: in-flight firing waves iterate the slice header they
	// captured, so the published slice must never be appended to in place.
	next := make([]*SQLTrigger, len(db.triggers), len(db.triggers)+1)
	copy(next, db.triggers)
	db.triggers = append(next, tr)
	db.byName[tr.Name] = tr
	return nil
}

// DropTrigger removes a trigger by name.
func (db *DB) DropTrigger(name string) error {
	if _, ok := db.byName[name]; !ok {
		return fmt.Errorf("reldb: no trigger %q", name)
	}
	delete(db.byName, name)
	// Copy-on-write, as in CreateTrigger: rebuild rather than splice so an
	// in-flight firing wave keeps its stable snapshot.
	next := make([]*SQLTrigger, 0, len(db.triggers)-1)
	for _, tr := range db.triggers {
		if tr.Name != name {
			next = append(next, tr)
		}
	}
	db.triggers = next
	return nil
}

// Triggers returns installed triggers in creation order.
func (db *DB) Triggers() []*SQLTrigger {
	return append([]*SQLTrigger(nil), db.triggers...)
}

// TriggerCount reports the number of installed SQL triggers.
func (db *DB) TriggerCount() int { return len(db.triggers) }

// Scan iterates every row of the table; fn returns false to stop early.
func (db *DB) Scan(table string, fn func(Row) bool) error {
	td, err := db.table(table)
	if err != nil {
		return err
	}
	db.stats.fullScans.Add(1)
	for _, r := range td.rows { //quark:sorted Scan's contract is unspecified order; deterministic consumers sort Δ/∇ rows by storage key (PR 3)
		db.stats.rowsRead.Add(1)
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// Lookup iterates the rows whose col equals v, using the column's hash
// index when present (falling back to a scan otherwise).
func (db *DB) Lookup(table, col string, v xdm.Value, fn func(Row) bool) error {
	td, err := db.table(table)
	if err != nil {
		return err
	}
	ix, ok := td.indexes[col]
	if !ok {
		ci := td.def.ColIndex(col)
		if ci < 0 {
			return fmt.Errorf("reldb: table %s has no column %q", table, col)
		}
		db.stats.fullScans.Add(1)
		for _, r := range td.rows { //quark:sorted Lookup's contract is unspecified order, matching the index path below
			db.stats.rowsRead.Add(1)
			if xdm.Equal(r[ci], v) {
				if !fn(r) {
					return nil
				}
			}
		}
		return nil
	}
	db.stats.indexLookups.Add(1)
	for pk := range ix.m[v.Key()] { //quark:sorted Lookup's contract is unspecified order; callers needing determinism sort downstream
		db.stats.rowsRead.Add(1)
		if !fn(td.rows[pk]) {
			return nil
		}
	}
	return nil
}

// GetByPK returns the row with the given primary key.
func (db *DB) GetByPK(table string, key ...xdm.Value) (Row, bool, error) {
	td, err := db.table(table)
	if err != nil {
		return nil, false, err
	}
	if len(td.pkIdx) == 0 {
		return nil, false, fmt.Errorf("reldb: table %s has no primary key", table)
	}
	r, ok := td.rows[xdm.TupleKey(key)]
	return r, ok, nil
}

// RowCount reports the number of rows in the table (0 for unknown tables).
func (db *DB) RowCount(table string) int {
	td, ok := db.tables[table]
	if !ok {
		return 0
	}
	return len(td.rows)
}

// AllRows returns a copy of the table's rows in unspecified order; intended
// for tests and diagnostics.
func (db *DB) AllRows(table string) []Row {
	td, ok := db.tables[table]
	if !ok {
		return nil
	}
	out := make([]Row, 0, len(td.rows))
	for _, r := range td.rows { //quark:sorted documented contract: rows return in unspecified order, tests/diagnostics only
		out = append(out, r)
	}
	return out
}
