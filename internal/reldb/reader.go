package reldb

import "quark/internal/schema"

// Reader is the read-only surface a mirroring backend needs to rebuild a
// consistent snapshot of the store: schema, full scans, and row counts.
// *DB implements it; internal/relsql consumes it so the real-database
// shadow never depends on the write path (and a test can hand in a fake).
type Reader interface {
	Schema() *schema.Schema
	Scan(table string, fn func(Row) bool) error
	RowCount(table string) int
}

var _ Reader = (*DB)(nil)
