package reldb

import (
	"fmt"
	"sort"
	"time"

	"quark/internal/xdm"
)

// Tx is a batched update transaction (paper §2.3 taken to its logical
// conclusion: a statement-level trigger fires once per statement however
// many rows the statement touches, so a transaction-level trigger fires
// once per transaction with the merged transition tables). Mutations apply
// to the database immediately — reads inside the transaction see them —
// but trigger firing is deferred to Commit, which activates each
// (table, event) trigger at most once with the coalesced net Δ/∇:
//
//   - two UPDATEs of the same row merge into one (original old, final new);
//   - an INSERT followed by UPDATEs contributes a single Δ row (final
//     version); an INSERT followed by DELETE contributes nothing;
//   - a DELETE followed by a re-INSERT of the same key becomes an UPDATE;
//   - primary-key-changing updates (including chains and swaps) stay
//     UPDATE pairs, tracked by row identity across the moves;
//   - updates whose net effect restores the original row are dropped.
//
// A Tx is not safe for concurrent use; the engine layer serializes whole
// transactions against other writers.
type Tx struct {
	db *DB
	// touched records, per table, the pre-transaction row stored under
	// each storage key the transaction has touched (nil = key was vacant).
	// The net transition is the diff between this snapshot and the current
	// table contents, so coalescing across any sequence of operations and
	// primary-key moves falls out of the bookkeeping.
	touched map[string]map[string]Row
	// moved tracks row identity across primary-key changes: per table,
	// the storage key a row currently occupies -> the key it occupied at
	// transaction start (entries exist only for rows that moved). It lets
	// the net diff pair a moved row's pre- and post-images as an UPDATE —
	// matching the single-statement path, which fires AFTER UPDATE for
	// PK-changing updates — instead of reporting DELETE+INSERT.
	moved map[string]map[string]string
	order []string // tables in first-touch order
	// allowed, when non-nil, restricts mutations to the listed tables
	// (declared-footprint batches, Engine.BatchTables); a mutation of any
	// other table fails before applying.
	allowed map[string]bool
	// autoIDs snapshots a table's synthetic-rowid counter before the
	// transaction's first insert into it, so Rollback can restore it: a
	// rolled-back transaction must leave no trace, and a drifted counter
	// would give re-run inserts different storage keys than the original
	// attempt (observable through key-ordered transition tables).
	autoIDs map[string]int64
	done    bool

	// Two-phase state: Prepare runs the firing waves in staging mode,
	// collecting the delivery thunks (in activation order) that Commit
	// later runs; batch is the staged wave's BatchInfo. prepErr is sticky —
	// a transaction whose prepare failed can only be rolled back or
	// re-report the same error.
	prepared bool
	prepErr  error
	staged   []func() error
	batch    *BatchInfo
	silent   bool
	obsTok   any

	// escalate latches when a restricted transaction touched an undeclared
	// table (the mutation was refused with ErrUndeclaredTable). The engine
	// layer reads it through NeedsEscalation to retry the batch under the
	// all-table lock instead of surfacing the error.
	escalate bool
}

// ErrUndeclaredTable is wrapped into the error a restricted transaction
// returns when a mutation targets a table outside its declared footprint
// (see Restrict). Callers can match it with errors.Is to distinguish the
// footprint violation from real mutation failures.
var ErrUndeclaredTable = fmt.Errorf("reldb: table not in declared footprint")

// NeedsEscalation reports whether a restricted transaction was refused a
// mutation for touching an undeclared table. The refusal is sticky: once
// set, the transaction's declared lock footprint is known to be too
// small, and the engine layer's lock escalation rolls it back and re-runs
// the batch under the all-table lock.
func (tx *Tx) NeedsEscalation() bool { return tx.escalate }

// SetObsToken attaches an opaque observability token that Prepare copies
// onto the firing wave's BatchInfo (see BatchInfo.Obs). The translation
// layer uses it to nest trigger-evaluation trace spans under the
// transaction's prepare phase; reldb itself never looks inside.
func (tx *Tx) SetObsToken(v any) { tx.obsTok = v }

// SetSilent marks the transaction as a silent data movement: its firing
// wave carries BatchInfo.Silent, telling trigger bodies to refresh any
// internal state (e.g. a materialized view's diff baseline) without
// activating triggers or staging deliveries. Must be called before
// Prepare; the flag cannot be cleared.
func (tx *Tx) SetSilent() error {
	if tx.prepared || tx.done {
		return fmt.Errorf("reldb: SetSilent after prepare")
	}
	tx.silent = true
	return nil
}

// Begin starts a batched transaction.
func (db *DB) Begin() *Tx {
	return &Tx{
		db:      db,
		touched: map[string]map[string]Row{},
		moved:   map[string]map[string]string{},
		autoIDs: map[string]int64{},
	}
}

// snapAutoID records the table's pre-transaction rowid counter the first
// time the transaction is about to insert into it.
func (tx *Tx) snapAutoID(table string) {
	if _, ok := tx.autoIDs[table]; ok {
		return
	}
	if td, ok := tx.db.tables[table]; ok {
		tx.autoIDs[table] = td.autoID
	}
}

func (tx *Tx) tableTouched(table string) map[string]Row {
	m, ok := tx.touched[table]
	if !ok {
		m = map[string]Row{}
		tx.touched[table] = m
		tx.moved[table] = map[string]string{}
		tx.order = append(tx.order, table)
	}
	return m
}

// noteMoves updates the identity chains for one statement's key-changing
// updates. A statement's changes are simultaneous: every oldKey refers to
// the pre-statement occupant, so origins are resolved for all changes
// before any chain entry is rewritten (a PK swap inside one statement
// must not read the other change's freshly installed entry).
func (tx *Tx) noteMoves(table string, changes []updateChange) {
	mv := tx.moved[table]
	type entry struct{ newKey, origin string }
	var adds []entry
	for _, c := range changes {
		if c.newKey == c.oldKey {
			continue
		}
		origin, chained := mv[c.oldKey]
		if !chained {
			origin = c.oldKey
		}
		adds = append(adds, entry{c.newKey, origin})
	}
	for _, c := range changes {
		if c.newKey != c.oldKey {
			delete(mv, c.oldKey)
		}
	}
	for _, a := range adds {
		// Rows created inside the transaction (origin has no pre-image)
		// need no entry: their final key diffs as vacant→row on its own.
		if a.origin != a.newKey && tx.touched[table][a.origin] != nil {
			mv[a.newKey] = a.origin
		}
	}
}

// noteFirstTouch records the pre-operation value of a storage key the first
// time the transaction touches it. Because every change inside the
// transaction is recorded here, "not yet touched" implies the current value
// equals the pre-transaction value.
func noteFirstTouch(m map[string]Row, key string, pre Row) {
	if _, ok := m[key]; !ok {
		m[key] = pre
	}
}

// Restrict limits the transaction to the declared tables: any subsequent
// mutation of an undeclared table fails before applying, so the caller's
// lock footprint stays authoritative. Reads are not restricted.
func (tx *Tx) Restrict(tables []string) {
	tx.allowed = map[string]bool{}
	for _, t := range tables {
		tx.allowed[t] = true
	}
}

func (tx *Tx) check() error {
	if tx.done {
		return fmt.Errorf("reldb: transaction already finished")
	}
	return nil
}

// checkTable combines the finished check with the declared-footprint
// restriction; every mutation entry point calls it before applying. A
// prepared transaction's mutations are frozen: the staged firing wave
// was computed from the net deltas at Prepare, so a later mutation would
// commit silently without ever firing — exactly the transactionality
// hole the two-phase split exists to close.
func (tx *Tx) checkTable(table string) error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.prepared || tx.prepErr != nil {
		return fmt.Errorf("reldb: transaction is prepared; mutations are frozen until commit or rollback")
	}
	if tx.allowed != nil && !tx.allowed[table] {
		tx.escalate = true
		return fmt.Errorf("reldb: transaction is restricted to its declared tables; %q is not declared: %w", table, ErrUndeclaredTable)
	}
	return nil
}

// Insert adds rows as one deferred-firing statement.
func (tx *Tx) Insert(table string, rows ...Row) error {
	if err := tx.checkTable(table); err != nil {
		return err
	}
	tx.snapAutoID(table)
	_, inserted, err := tx.db.applyInsert(table, rows)
	if err != nil {
		return err
	}
	m := tx.tableTouched(table)
	for _, kr := range inserted {
		noteFirstTouch(m, kr.key, nil)
		delete(tx.moved[table], kr.key) // fresh row: no identity chain
	}
	return nil
}

// Update rewrites all rows matching pred via set; firing is deferred.
func (tx *Tx) Update(table string, pred func(Row) bool, set func(Row) Row) (int, error) {
	if err := tx.checkTable(table); err != nil {
		return 0, err
	}
	changes, err := tx.db.applyUpdate(table, pred, set)
	if err != nil {
		return 0, err
	}
	m := tx.tableTouched(table)
	// Record every change's old key BEFORE any new-key vacancy: in a
	// statement that chains or swaps primary keys, another change's
	// newKey may be this change's oldKey, and the pre-image of that key
	// is the old row — not vacant.
	for _, c := range changes {
		noteFirstTouch(m, c.oldKey, c.old)
	}
	for _, c := range changes {
		if c.newKey != c.oldKey {
			// If still untouched, the key was vacant before this statement
			// (the collision check guarantees it) and, being unrecorded,
			// vacant at transaction start too.
			noteFirstTouch(m, c.newKey, nil)
		}
	}
	tx.noteMoves(table, changes)
	return len(changes), nil
}

// UpdateByPK rewrites the single row with the given primary key.
func (tx *Tx) UpdateByPK(table string, key []xdm.Value, set func(Row) Row) (bool, error) {
	if err := tx.checkTable(table); err != nil {
		return false, err
	}
	c, err := tx.db.applyUpdateByPK(table, key, set)
	if err != nil || c == nil {
		return false, err
	}
	m := tx.tableTouched(table)
	noteFirstTouch(m, c.oldKey, c.old)
	if c.newKey != c.oldKey {
		noteFirstTouch(m, c.newKey, nil)
	}
	tx.noteMoves(table, []updateChange{*c})
	return true, nil
}

// Delete removes all rows matching pred; firing is deferred.
func (tx *Tx) Delete(table string, pred func(Row) bool) (int, error) {
	if err := tx.checkTable(table); err != nil {
		return 0, err
	}
	removed, err := tx.db.applyDelete(table, pred)
	if err != nil {
		return 0, err
	}
	m := tx.tableTouched(table)
	for _, kr := range removed {
		noteFirstTouch(m, kr.key, kr.row)
		delete(tx.moved[table], kr.key) // the occupant is gone
	}
	return len(removed), nil
}

// DeleteByPK removes the row with the given primary key, if present.
func (tx *Tx) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	if err := tx.checkTable(table); err != nil {
		return false, err
	}
	kr, err := tx.db.applyDeleteByPK(table, key)
	if err != nil || kr == nil {
		return false, err
	}
	noteFirstTouch(tx.tableTouched(table), kr.key, kr.row)
	delete(tx.moved[table], kr.key) // the occupant is gone
	return true, nil
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !xdm.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// netChange is the coalesced per-table outcome of a transaction.
type netChange struct {
	ins, del       []Row
	updOld, updNew []Row // index-aligned update pairs
}

// net computes the coalesced change of one table by diffing the
// first-touch snapshot against the table's current contents, in sorted
// key order for deterministic firing. The moved-identity chains pair a
// PK-changed row's pre- and post-images as one UPDATE, so batched
// commits fire the same event kinds as the single-statement path.
func (tx *Tx) net(table string) netChange {
	td := tx.db.tables[table]
	m := tx.touched[table]
	mv := tx.moved[table]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var nc netChange
	// Keys claimed as a moved row's origin: their pre-image belongs to
	// that row (paired at its current key), not to whatever occupies the
	// key now — a fresh insert into a vacated key must not adopt it.
	claimed := map[string]bool{}
	for _, origin := range mv {
		claimed[origin] = true
	}
	// Pass 1: current occupants, paired with their identity's pre-image.
	consumed := map[string]bool{} // origin keys whose pre-image was paired
	for _, k := range keys {
		cur, exists := td.rows[k]
		if !exists {
			continue
		}
		origin := k
		if o, ok := mv[k]; ok {
			origin = o
		} else if claimed[k] {
			origin = "" // pre-image owned by the row that moved away
		}
		var pre Row
		if origin != "" {
			pre = m[origin]
		}
		switch {
		case pre == nil:
			nc.ins = append(nc.ins, cur)
		case origin != k || !rowsEqual(pre, cur):
			nc.updOld = append(nc.updOld, pre)
			nc.updNew = append(nc.updNew, cur)
			consumed[origin] = true
		default:
			consumed[origin] = true // net no-op; pre-image accounted for
		}
	}
	// Pass 2: pre-images whose row vanished (deleted, or displaced by a
	// row that moved in while the original was removed).
	for _, k := range keys {
		pre := m[k]
		if pre == nil || consumed[k] {
			continue
		}
		if _, exists := td.rows[k]; exists {
			if _, movedIn := mv[k]; !movedIn {
				// The occupant is the original row; pass 1 handled it.
				continue
			}
		}
		nc.del = append(nc.del, pre)
	}
	return nc
}

// Prepare runs the prepare phase of a two-phase commit: it computes the
// merged net deltas and runs every deferred firing wave in staging mode —
// trigger bodies evaluate their plans (all evaluation errors surface
// here) and stage their deliveries through FireContext.Stage instead of
// performing them. A successful Prepare leaves the transaction open: the
// caller either Commits (run the staged deliveries) or Rollbacks (undo
// every mutation; nothing was delivered). A failed Prepare is sticky —
// the transaction can only be rolled back, and a coordinator that
// prepared other participants can still roll all of them back, which is
// what closes the cross-shard partial-commit window. Prepare on an
// already-prepared transaction is a no-op.
func (tx *Tx) Prepare() error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.prepErr != nil {
		return tx.prepErr
	}
	if tx.prepared {
		return nil
	}
	if m := tx.db.obs.Load(); m != nil {
		defer m.txPrepare.Since(time.Now())
	}
	if err := tx.prepare(); err != nil {
		tx.prepErr = err
		return err
	}
	return nil
}

func (tx *Tx) prepare() error {
	tables := append([]string(nil), tx.order...)
	sort.Strings(tables)
	batch := &BatchInfo{Seq: tx.db.batchSeq.Add(1), Deltas: map[string]*NetDelta{}, Silent: tx.silent, Obs: tx.obsTok}
	nets := make(map[string]netChange, len(tables))
	for _, t := range tables {
		nc := tx.net(t)
		if len(nc.ins)+len(nc.del)+len(nc.updOld) == 0 {
			continue
		}
		nets[t] = nc
		nd := &NetDelta{}
		nd.Inserted = append(append(nd.Inserted, nc.ins...), nc.updNew...)
		nd.Deleted = append(append(nd.Deleted, nc.del...), nc.updOld...)
		batch.Deltas[t] = nd
	}
	tx.batch = batch
	stage := func(deliver func() error) {
		tx.staged = append(tx.staged, deliver)
	}
	for _, t := range tables {
		nc, ok := nets[t]
		if !ok {
			continue
		}
		if len(nc.ins) > 0 {
			if err := tx.db.fire(t, EvInsert, nc.ins, nil, batch, stage); err != nil {
				return err
			}
		}
		if len(nc.updNew) > 0 {
			if err := tx.db.fire(t, EvUpdate, nc.updNew, nc.updOld, batch, stage); err != nil {
				return err
			}
		}
		if len(nc.del) > 0 {
			if err := tx.db.fire(t, EvDelete, nil, nc.del, batch, stage); err != nil {
				return err
			}
		}
	}
	tx.prepared = true
	return nil
}

// Staged returns the BatchInfo of the staged firing wave (nil until a
// successful Prepare). Coordinators use it to inspect what a prepared
// transaction is about to deliver before deciding to commit.
func (tx *Tx) Staged() *BatchInfo {
	if !tx.prepared {
		return nil
	}
	return tx.batch
}

// Commit finishes the transaction. On an unprepared transaction it is the
// one-shot Prepare+Commit convenience with the historical contract: for
// every touched table (in name order) each of INSERT, UPDATE, DELETE
// fires at most once with the merged transition tables, every
// FireContext carries the transaction-wide net deltas, and trigger errors
// abort the wave while the data changes remain applied (AFTER-trigger
// semantics). On a prepared transaction it runs the staged deliveries in
// staging order; trigger evaluation already happened at Prepare, so the
// only errors left are delivery errors — which likewise leave the
// applied state standing.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	if !tx.prepared {
		if err := tx.Prepare(); err != nil {
			// One-shot contract: a firing error finishes the transaction
			// with its mutations applied (no implicit rollback).
			tx.done = true
			return err
		}
	}
	tx.done = true
	if m := tx.db.obs.Load(); m != nil {
		defer m.txCommit.Since(time.Now())
	}
	for _, deliver := range tx.staged {
		if err := deliver(); err != nil {
			return err
		}
	}
	return nil
}

// Rollback undoes every change the transaction applied, restoring rows and
// indexes to their pre-transaction state. No triggers fire. Rolling back
// a prepared transaction discards its staged deliveries — staging has no
// external effect, which is what makes the prepare phase abortable.
func (tx *Tx) Rollback() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.done = true
	for _, t := range tx.order {
		td := tx.db.tables[t]
		for k, pre := range tx.touched[t] { //quark:sorted rollback restores disjoint keys; final table state is order-independent
			cur, exists := td.rows[k]
			if exists {
				td.indexRemove(cur, k)
				delete(td.rows, k)
			}
			if pre != nil {
				td.rows[k] = pre
				td.indexAdd(pre, k)
			}
		}
	}
	// Restore synthetic rowid counters for no-PK tables: the rows the
	// transaction inserted are gone, so their allocated ids must be too.
	for t, id := range tx.autoIDs { //quark:sorted per-table counter restore; entries are independent
		tx.db.tables[t].autoID = id
	}
	return nil
}
