package reldb

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/xdm"
)

// stagingTrigger installs a trigger whose body evaluates at prepare (one
// eval entry per firing) and stages one delivery per transition row
// through FireContext.Stage (one deliver entry per row when the staged
// thunks run at Commit).
func stagingTrigger(t *testing.T, db *DB, table string, ev Event, evals, delivers *[]string, deliverErr func(string) error) {
	t.Helper()
	err := db.CreateTrigger(&SQLTrigger{
		Name: table + "_stage_" + ev.String(), Table: table, Event: ev,
		Body: func(ctx *FireContext) error {
			*evals = append(*evals, fmt.Sprintf("eval %s %s", ctx.Table, ctx.Event))
			rows := ctx.Inserted
			if ev == EvDelete {
				rows = ctx.Deleted
			}
			for _, r := range rows {
				line := fmt.Sprintf("deliver %s %s id=%d", ctx.Table, ctx.Event, r[0].AsInt())
				deliver := func() error {
					if deliverErr != nil {
						if err := deliverErr(line); err != nil {
							return err
						}
					}
					*delivers = append(*delivers, line)
					return nil
				}
				if ctx.Stage != nil {
					ctx.Stage(deliver)
					continue
				}
				if err := deliver(); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTxPrepareStagesWithoutDelivering: Prepare runs every body (all
// evaluation) but delivers nothing; Commit then runs exactly the staged
// deliveries, in staging order.
func TestTxPrepareStagesWithoutDelivering(t *testing.T) {
	db := txTestDB(t)
	var evals, delivers []string
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		stagingTrigger(t, db, "item", ev, &evals, &delivers, nil)
	}
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}, Row{xdm.Int(2), xdm.Int(20)}); err != nil {
		t.Fatal(err)
	}
	evals, delivers = nil, nil

	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(3), xdm.Int(30)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[1] = xdm.Int(11)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteByPK("item", xdm.Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Errorf("prepare ran %d evaluations, want 3 (one per event): %v", len(evals), evals)
	}
	if len(delivers) != 0 {
		t.Fatalf("prepare delivered: %v", delivers)
	}
	if tx.Staged() == nil {
		t.Fatal("prepared transaction reports no staged batch")
	}
	// Mutations are frozen once prepared: a late write would commit
	// without ever firing (the wave was staged from the prepare-time
	// deltas), so it must be rejected outright.
	if err := tx.Insert("item", Row{xdm.Int(9), xdm.Int(90)}); err == nil || !strings.Contains(err.Error(), "prepared") {
		t.Fatalf("insert after prepare = %v, want the frozen-transaction error", err)
	}
	if _, ok, _ := db.GetByPK("item", xdm.Int(9)); ok {
		t.Fatal("rejected post-prepare insert was applied")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"deliver item INSERT id=3",
		"deliver item UPDATE id=1",
		"deliver item DELETE id=2",
	}
	if strings.Join(delivers, "\n") != strings.Join(want, "\n") {
		t.Errorf("staged deliveries = %v, want %v", delivers, want)
	}
}

// TestTxPrepareThenRollbackLeavesNoTrace: a prepared-but-rolled-back
// transaction delivers nothing and restores rows, indexes, and counters.
func TestTxPrepareThenRollbackLeavesNoTrace(t *testing.T) {
	db := txTestDB(t)
	var evals, delivers []string
	for _, ev := range []Event{EvInsert, EvUpdate, EvDelete} {
		stagingTrigger(t, db, "item", ev, &evals, &delivers, nil)
	}
	if err := db.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	evals, delivers = nil, nil

	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(2), xdm.Int(20)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r Row) Row {
		r[1] = xdm.Int(99)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(delivers) != 0 {
		t.Fatalf("rolled-back prepared transaction delivered: %v", delivers)
	}
	if n := db.RowCount("item"); n != 1 {
		t.Fatalf("row count after rollback = %d, want 1", n)
	}
	r, ok, _ := db.GetByPK("item", xdm.Int(1))
	if !ok || r[1].AsInt() != 10 {
		t.Fatalf("row 1 after rollback = %v (ok=%v), want qty=10", r, ok)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after rollback must fail")
	}
}

// TestTxPrepareErrorIsSticky: a body error during Prepare surfaces, the
// transaction stays open for Rollback, re-preparing reports the same
// error, and nothing was delivered.
func TestTxPrepareErrorIsSticky(t *testing.T) {
	db := txTestDB(t)
	boom := fmt.Errorf("boom")
	err := db.CreateTrigger(&SQLTrigger{
		Name: "item_boom", Table: "item", Event: EvInsert,
		Body: func(*FireContext) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	err = tx.Prepare()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("prepare error = %v, want boom", err)
	}
	if err2 := tx.Prepare(); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("re-prepare error = %v, want the sticky %v", err2, err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after failed prepare: %v", err)
	}
	if n := db.RowCount("item"); n != 0 {
		t.Fatalf("row count after rollback = %d, want 0", n)
	}
}

// TestTxCommitDeliveryErrorKeepsState: a staged delivery error aborts the
// remaining deliveries but the applied mutations stand (AFTER-trigger
// semantics carried into phase two).
func TestTxCommitDeliveryErrorKeepsState(t *testing.T) {
	db := txTestDB(t)
	var evals, delivers []string
	boom := fmt.Errorf("boom")
	stagingTrigger(t, db, "item", EvInsert, &evals, &delivers, func(line string) error {
		if strings.Contains(line, "id=2") {
			return boom
		}
		return nil
	})
	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(10)}, Row{xdm.Int(2), xdm.Int(20)}, Row{xdm.Int(3), xdm.Int(30)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if err != boom {
		t.Fatalf("commit error = %v, want boom", err)
	}
	// Delivery 1 ran, 2 failed, 3 never ran; all three rows stand.
	if len(delivers) != 1 || !strings.Contains(delivers[0], "id=1") {
		t.Errorf("deliveries before the error = %v, want exactly id=1", delivers)
	}
	if n := db.RowCount("item"); n != 3 {
		t.Errorf("row count after delivery error = %d, want 3", n)
	}
	if err := tx.Rollback(); err == nil {
		t.Error("rollback after commit must fail")
	}
}

// TestTxOneShotCommitUnchanged: Commit without an explicit Prepare keeps
// the historical contract — bodies that ignore Stage run their effects
// inline, and a body error finishes the transaction with data applied.
func TestTxOneShotCommitUnchanged(t *testing.T) {
	db := txTestDB(t)
	var log []firing
	recordFirings(t, db, "item", &log)
	tx := db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(1), xdm.Int(10)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].event != EvInsert || !log[0].batch {
		t.Fatalf("one-shot commit firings = %+v", log)
	}

	boom := fmt.Errorf("boom")
	if err := db.CreateTrigger(&SQLTrigger{
		Name: "item_boom", Table: "item", Event: EvInsert,
		Body: func(*FireContext) error { return boom },
	}); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	if err := tx.Insert("item", Row{xdm.Int(2), xdm.Int(20)}); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("one-shot commit error = %v, want boom", err)
	}
	if n := db.RowCount("item"); n != 2 {
		t.Errorf("row count after one-shot firing error = %d, want 2 (data applied)", n)
	}
	if err := tx.Rollback(); err == nil {
		t.Error("rollback after one-shot commit must fail (transaction finished)")
	}
}
