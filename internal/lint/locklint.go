package lint

import (
	"go/ast"
	"go/types"
)

// LockLint enforces the engine's documented lock hierarchy (see the
// Engine concurrency-model comment in internal/core/engine.go and the
// migration notes in adaptive.go):
//
//  1. Per-table locks are acquired only through acquireLocks, which
//     walks lockOrder so acquisition order is globally fixed and
//     deadlock-free. Any direct Lock/RLock/Unlock/RUnlock on an entry
//     of the tableLocks map outside acquireLocks is a finding.
//
//  2. The metadata mutex e.mu is ordered BEFORE table locks: a
//     function that has taken table locks (via acquireLocks,
//     lockForWrite, or lockAllForWrite) must not subsequently acquire
//     e.mu while they are held. Lexically, an e.mu.Lock/RLock after an
//     acquire call in the same function is a finding unless the
//     returned release function has been invoked in between.
var LockLint = &Analyzer{
	Name:    "locklint",
	Doc:     "table locks only via acquireLocks/lockOrder; never take e.mu while holding table locks",
	Applies: pathIn("internal/core", "internal/reldb"),
	Run:     runLockLint,
}

// acquireFuncs are the blessed table-lock entry points; calling one
// means table locks are (potentially) held from that point on.
var acquireFuncs = map[string]bool{
	"acquireLocks":    true,
	"lockForWrite":    true,
	"lockAllForWrite": true,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true, "TryLock": true, "TryRLock": true}

func runLockLint(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTableLockAccess(pass, fd)
			checkMuAfterTableLocks(pass, fd)
		}
	}
	return nil
}

// checkTableLockAccess flags direct lock-method calls on tableLocks
// entries outside acquireLocks.
func checkTableLockAccess(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name == "acquireLocks" {
		return
	}
	// Track locals bound from a tableLocks index: `l := e.tableLocks[t]`.
	fromTable := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if isTableLocksIndex(rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := identObj(pass, id); obj != nil {
							fromTable[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !lockMethods[sel.Sel.Name] {
				return true
			}
			recv := ast.Unparen(sel.X)
			if isTableLocksIndex(recv) {
				pass.Reportf(n.Pos(), "direct %s on a tableLocks entry: table locks are acquired only through acquireLocks (global lockOrder)", sel.Sel.Name)
				return true
			}
			if id, ok := recv.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && fromTable[obj] {
					pass.Reportf(n.Pos(), "direct %s on a tableLocks entry (via %s): table locks are acquired only through acquireLocks (global lockOrder)", sel.Sel.Name, id.Name)
				}
			}
		}
		return true
	})
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func isTableLocksIndex(e ast.Expr) bool {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "tableLocks"
}

// acquireSite is one table-lock acquisition still considered live.
type acquireSite struct {
	node    ast.Node
	name    string       // which blessed entry point was called
	release types.Object // variable holding the release func, if bound
}

// checkMuAfterTableLocks flags metadata-mutex acquisition ordered after
// a table-lock acquisition in the same function body.
func checkMuAfterTableLocks(pass *Pass, fd *ast.FuncDecl) {
	var acquires []acquireSite

	// A deferred unlock() runs at function exit, not at its lexical
	// position, so it must not end the critical section for the walk.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	// Single source-ordered walk. Function literals are traversed too:
	// a closure created while table locks are held usually runs under
	// them (staged thunks are covered by stagelint, not here).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// unlock := e.acquireLocks(...) — remember which variable
			// releases the tables.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if name, ok := acquireCallName(call); ok {
					site := acquireSite{node: n, name: name}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						site.release = identObj(pass, id)
					}
					acquires = append(acquires, site)
				}
			}
		case *ast.CallExpr:
			if name, ok := acquireCallName(n); ok {
				if !insideAssign(fd, n) {
					// Bare call (result deferred or discarded): treat the
					// locks as held for the rest of the function.
					acquires = append(acquires, acquireSite{node: n, name: name})
				}
				return true
			}
			// unlock() — the acquisition bound to this variable is over
			// (unless deferred: those release only at function exit).
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && !deferred[n] {
					for i := len(acquires) - 1; i >= 0; i-- {
						if acquires[i].release == obj {
							acquires = append(acquires[:i], acquires[i+1:]...)
							break
						}
					}
				}
				return true
			}
			// X.mu.Lock() / X.mu.RLock() after a live acquisition.
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok || inner.Sel.Name != "mu" {
				return true
			}
			if len(acquires) > 0 && n.Pos() > acquires[0].node.Pos() {
				pass.Reportf(n.Pos(), "%s.mu.%s while table locks from %s may still be held: the global order is e.mu before table locks (engine.go concurrency model)",
					exprString(pass, inner.X), sel.Sel.Name, acquires[len(acquires)-1].name)
			}
		}
		return true
	})
}

// insideAssign reports whether call is the RHS of an assignment in fd
// (those are recorded by the AssignStmt case with their release var).
func insideAssign(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call {
				found = true
			}
		}
		return !found
	})
	return found
}

func acquireCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if acquireFuncs[sel.Sel.Name] {
		return sel.Sel.Name, true
	}
	return "", false
}
