package lint

import (
	"go/ast"
	"strings"
)

// PersistLint enforces the crash-safety discipline for small durable
// state files — directory checkpoints (*.ckpt), the dead-letter
// quarantine (dead.log), persisted failure budgets, and mode/routing
// stores. The repo-wide contract (PRs 5–8) is tmp-then-rename with CRC
// framing: a torn write must be detectable (CRC frame) and must never
// clobber the previous good state (rename is atomic; the tmp file takes
// the torn bytes).
//
// Rules, inside the durable packages (internal/outbox, internal/shard):
//
//  1. os.WriteFile must target a path built as `<final> + ".tmp"` and
//     the same function must os.Rename that tmp path afterwards.
//  2. Such a writer must produce CRC-framed bytes: the function must
//     reference a framing helper (Frame, encodeFrame).
//  3. os.Create is forbidden outright: append logs go through
//     os.OpenFile with explicit flags, checkpoints through rule 1.
//
// Everywhere else in the module, writing a path that names a protected
// artifact (.ckpt, dead.log, dir.delta, modes) with os.WriteFile or
// os.Create is flagged: only the blessed stores may touch those files.
var PersistLint = &Analyzer{
	Name:    "persistlint",
	Doc:     "checkpoint/ack/budget files are written tmp-then-rename with CRC framing by their owning stores",
	Applies: pathIn("internal"),
	Run:     runPersistLint,
}

// durablePkgs are the stores that own crash-safe files and must follow
// the full tmp-then-rename + framing idiom on every whole-file write.
var durablePkgs = pathIn("internal/outbox", "internal/shard")

// protectedNames are substrings of durable-artifact file names no code
// outside the durable packages may construct writes to.
var protectedNames = []string{".ckpt", "dead.log", "dir.delta"}

func runPersistLint(pass *Pass) error {
	durable := durablePkgs(pass.Path)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPersistFunc(pass, fd, durable)
		}
	}
	return nil
}

func checkPersistFunc(pass *Pass, fd *ast.FuncDecl, durable bool) {
	// Pre-scan: tmp-path variables (`tmp := path + ".tmp"`), rename
	// targets, and framing evidence within this function.
	tmpVars := map[string]bool{}
	renamed := map[string]bool{}
	framing := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !isTmpSuffixExpr(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					tmpVars[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if IsPkgCall(pass.Info, n, "os", "Rename") && len(n.Args) == 2 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					renamed[id.Name] = true
				}
			}
			if fn := Callee(pass.Info, n); fn != nil {
				switch fn.Name() {
				case "Frame", "encodeFrame", "AppendUvarint":
					framing = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case IsPkgCall(pass.Info, call, "os", "WriteFile") && len(call.Args) >= 2:
			path := ast.Unparen(call.Args[0])
			if durable {
				id, isIdent := path.(*ast.Ident)
				switch {
				case !isIdent || !tmpVars[id.Name]:
					pass.Reportf(call.Pos(), "os.WriteFile on a durable-store path must write `path + \".tmp\"` and os.Rename it into place (torn writes must not clobber good state)")
				case !renamed[id.Name]:
					pass.Reportf(call.Pos(), "tmp file %s is written but never os.Rename'd into place in this function", id.Name)
				case !framing:
					pass.Reportf(call.Pos(), "durable write without CRC framing evidence: wrap the payload with Frame/encodeFrame so torn or corrupt bytes are detected at open")
				}
			} else if name := protectedNameIn(pass, call.Args[0], fd); name != "" {
				pass.Reportf(call.Pos(), "os.WriteFile to protected durable artifact %q outside its owning store: route through internal/outbox or internal/shard persistence helpers", name)
			}
		case IsPkgCall(pass.Info, call, "os", "Create"):
			if durable {
				pass.Reportf(call.Pos(), "os.Create in a durable store: append logs use os.OpenFile with explicit flags, checkpoints use tmp-then-rename")
			} else if len(call.Args) == 1 {
				if name := protectedNameIn(pass, call.Args[0], fd); name != "" {
					pass.Reportf(call.Pos(), "os.Create on protected durable artifact %q outside its owning store", name)
				}
			}
		}
		return true
	})
}

// isTmpSuffixExpr matches `X + ".tmp"` or a string literal ending in
// ".tmp".
func isTmpSuffixExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		return isTmpSuffixExpr(e.Y) || isTmpSuffixExpr(e.X)
	case *ast.BasicLit:
		return strings.HasSuffix(strings.Trim(e.Value, "`\""), ".tmp")
	}
	return false
}

// protectedNameIn reports the first protected artifact name appearing
// in any string literal under expr (following one level of local
// variable definition inside fd).
func protectedNameIn(pass *Pass, expr ast.Expr, fd *ast.FuncDecl) string {
	name := ""
	scan := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			val := strings.Trim(lit.Value, "`\"")
			for _, p := range protectedNames {
				if strings.Contains(val, p) {
					name = p
					return false
				}
			}
			return true
		})
	}
	scan(expr)
	if name != "" {
		return name
	}
	// One level of indirection: `path := filepath.Join(dir, "x.ckpt")`.
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if obj == nil {
			return ""
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || identObj(pass, lid) != obj || i >= len(as.Rhs) {
					continue
				}
				scan(as.Rhs[i])
			}
			return name == ""
		})
	}
	return name
}
