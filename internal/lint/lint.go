// Package lint is quark's project-specific static-analysis suite: five
// analyzers that enforce, at compile time, the invariants the engine's
// correctness story rests on (deterministic delivery order, global lock
// ordering, prepare/commit staging discipline, tmp-then-rename CRC
// persistence, and nil-safe zero-cost observability). The analyzers are
// built directly on go/ast + go/types so the module stays
// dependency-free; cmd/quarklint drives them either standalone (doing
// its own `go list` + type-check) or as a `go vet -vettool=` backend.
//
// See README.md in this directory for the invariant catalog: which PR
// introduced each contract and which analyzer now pins it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule set. Run receives a fully type-checked
// package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by canonical import path. A nil Applies
	// means the analyzer runs everywhere.
	Applies func(path string) bool
	Run     func(*Pass) error
}

// Package is one type-checked compilation unit handed to analyzers.
type Package struct {
	Path  string // canonical import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[directiveKey]string // (file,line,name) -> reason
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass is the per-(analyzer, package) context.
type Pass struct {
	*Package
	Analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every applicable analyzer to every package and returns
// the findings sorted by position. Diagnostics inside _test.go files
// are dropped: the invariants guard production code, and tests
// legitimately use wall clocks, raw writes, and unsorted iteration.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Package:  pkg,
				Analyzer: a,
				report: func(d Diagnostic) {
					if strings.HasSuffix(d.Pos.Filename, "_test.go") {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// pathIn returns an Applies filter matching any of the given import
// path suffixes (e.g. "internal/core" matches both "quark/internal/core"
// and a fixture module's "quark/internal/core").
func pathIn(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) || strings.Contains(path, "/"+s+"/") {
				return true
			}
		}
		return false
	}
}

// ---- //quark: directives ------------------------------------------------

type directiveKey struct {
	file string
	line int
	name string
}

// Directive reports the reason text of a `//quark:<name> <reason>`
// comment governing pos: either an end-of-line comment on the same line
// or a comment on the line immediately above (a directive governs its
// own line and the next, so both trailing and standalone placements
// work). The boolean is false when no directive is present; an empty
// reason is returned as present-but-empty so analyzers can insist on a
// justification.
func (p *Package) Directive(pos token.Pos, name string) (reason string, ok bool) {
	if p.directives == nil {
		p.directives = map[directiveKey]string{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, found := strings.CutPrefix(c.Text, "//quark:")
					if !found {
						continue
					}
					dname, drest, _ := strings.Cut(text, " ")
					cpos := p.Fset.Position(c.Pos())
					reason := strings.TrimSpace(drest)
					p.directives[directiveKey{cpos.Filename, cpos.Line, dname}] = reason
					next := p.Fset.Position(c.End()).Line + 1
					p.directives[directiveKey{cpos.Filename, next, dname}] = reason
				}
			}
		}
	}
	pp := p.Fset.Position(pos)
	reason, ok = p.directives[directiveKey{pp.Filename, pp.Line, name}]
	return reason, ok
}

// ---- shared AST / types helpers ----------------------------------------

// Callee resolves the called object of a call expression, looking
// through parentheses. Returns nil for calls through function values,
// func literals, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := info.Uses[fun]; o != nil {
			if _, isFn := o.(*types.Func); isFn {
				return o
			}
			// Builtins (append, delete, ...) resolve to *types.Builtin.
			if _, isB := o.(*types.Builtin); isB {
				return o
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := Callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsMethodCall reports whether call invokes a method named name whose
// receiver's named type lives in a package whose path ends in pkgSuffix
// (empty pkgSuffix matches any package). typeName "" matches any
// receiver type; name "" matches any method.
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, name string) bool {
	fn, ok := Callee(info, call).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || (name != "" && fn.Name() != name) {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	if typeName != "" && named.Obj().Name() != typeName {
		return false
	}
	if pkgSuffix == "" {
		return true
	}
	tp := named.Obj().Pkg()
	return tp != nil && (tp.Path() == pkgSuffix || strings.HasSuffix(tp.Path(), "/"+pkgSuffix))
}

// IsMapType reports whether t is (or aliases) a map type.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// EnclosingFunc returns the innermost function declaration containing
// pos in file, or nil.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// HasNilGuardAncestor reports whether any if-statement on the ancestor
// stack has a condition mentioning a comparison against nil. stack is
// an inner-to-outer (or outer-to-inner) list of enclosing nodes.
func HasNilGuardAncestor(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condMentionsNil(ifs.Cond) {
			return true
		}
	}
	return false
}

func condMentionsNil(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && (b.Op == token.NEQ || b.Op == token.EQL) {
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// WalkWithStack traverses root, invoking fn with each node and the
// stack of its ancestors (outermost first, excluding the node itself).
// Returning false from fn prunes the subtree.
func WalkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
