package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct {
		Err string
	}
}

// LoadOptions configure the standalone package loader.
type LoadOptions struct {
	Dir  string // module directory to run `go list` in ("" = cwd)
	Tags string // build tags, comma-separated (maps to -tags)
}

// Load type-checks the packages matching patterns using `go list
// -deps -export` for dependency export data, so it needs no network
// and no third-party driver. Only non-test Go files of the matched
// (non-dep-only) packages are parsed and analyzed; dependencies are
// imported from their compiled export data.
func Load(opts LoadOptions, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error"}
	if opts.Tags != "" {
		args = append(args, "-tags", opts.Tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	// One importer instance across all targets so shared dependencies
	// are only materialized once.
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(t.ImportPath, t.Dir, absJoin(t.Dir, t.GoFiles), imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// check parses and type-checks one package from its source files.
func check(path, dir string, files []string, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, fname := range files {
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fname, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ---- go vet -vettool unit mode -----------------------------------------

// VetConfig mirrors the JSON config the go command writes for each
// vet invocation (cmd/go/internal/work.vetConfig).
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string
	GoVersion    string

	SucceedOnTypecheckFailure bool
}

// LoadUnit type-checks the single compilation unit described by a
// vet.cfg file handed to us by `go vet -vettool=`.
func LoadUnit(cfgFile string) (*Package, *VetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %v", cfgFile, err)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		// Import paths in source resolve through ImportMap to canonical
		// package paths, which PackageFile maps to export data.
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", lookup)
	pkg, err := check(cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		return nil, cfg, err
	}
	return pkg, cfg, nil
}

// IsTestUnit reports whether the unit is a test variant (in-package
// test build or external _test package); those are skipped entirely —
// the invariants guard production code.
func (c *VetConfig) IsTestUnit() bool {
	return strings.Contains(c.ID, ".test") || strings.HasSuffix(c.ImportPath, "_test") ||
		strings.Contains(c.ID, " [")
}
