package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsLint keeps PR 7's zero-cost observability guarantee honest:
// "disabled = one branch, no clock read". Three rules:
//
//  1. (everywhere) No field access chained directly onto an atomic
//     handle Load(): `e.obsp.Load().fire` panics when observability is
//     detached, and even when it doesn't, it hides the enabled-check.
//     Bind the result and nil-check it: `if m := e.obsp.Load(); m != nil`.
//
//  2. (everywhere) A clock read passed to an obs recording method
//     (`h.Since(time.Now())`) must sit inside a branch dominated by a
//     nil-check, so the disabled path never reaches time.Now. The obs
//     methods themselves are nil-safe, but by the time the argument is
//     evaluated the clock has already been read.
//
//  3. (internal/obs) Every exported pointer-receiver method on a handle
//     type (Registry, Counter, Gauge, Histogram, Span) must nil-check
//     the receiver before touching its fields — handles flow through
//     the engine as "nil means disabled", so an unguarded method is a
//     latent panic on every disabled deployment.
var ObsLint = &Analyzer{
	Name: "obslint",
	Doc:  "obs handles bound+nil-checked, no clock reads outside the enabled branch, obs methods nil-safe",
	Run:  runObsLint,
}

// obsHandleTypes are the nil-means-disabled handle types of internal/obs.
var obsHandleTypes = map[string]bool{
	"Registry": true, "Counter": true, "Gauge": true, "Histogram": true, "Span": true,
}

func runObsLint(pass *Pass) error {
	inObs := strings.HasSuffix(pass.Path, "internal/obs")
	for _, file := range pass.Files {
		if inObs {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkNilSafeMethod(pass, fd)
				}
			}
			continue
		}
		WalkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkLoadChain(pass, n)
			case *ast.CallExpr:
				checkClockIntoObs(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkLoadChain flags `X.Load().field` where the loaded value is a
// pointer to a struct carrying obs handles.
func checkLoadChain(pass *Pass, sel *ast.SelectorExpr) {
	call, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := Callee(pass.Info, call).(*types.Func)
	if !ok || fn.Name() != "Load" {
		return
	}
	t := pass.Info.Types[call].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok || !structCarriesObs(st) {
		return
	}
	// Only field selections are dangerous; a method call on the result
	// would be a method on the struct pointer, which can be nil-safe.
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		pass.Reportf(sel.Pos(), "field access on an unchecked Load() result: bind it first (`if m := x.Load(); m != nil { ... }`) so the disabled path is one branch")
	}
}

// structCarriesObs reports whether st has a field whose type comes from
// internal/obs.
func structCarriesObs(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if tp := named.Obj().Pkg(); tp != nil && strings.HasSuffix(tp.Path(), "internal/obs") {
				return true
			}
		}
	}
	return false
}

// checkClockIntoObs flags obs recording calls whose arguments read the
// clock outside a nil-guard.
func checkClockIntoObs(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if !IsMethodCall(pass.Info, call, "internal/obs", "", "") {
		return
	}
	clock := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if IsPkgCall(pass.Info, c, "time", "Now") || IsPkgCall(pass.Info, c, "time", "Since") {
					clock = true
				}
			}
			return !clock
		})
	}
	if !clock {
		return
	}
	if HasNilGuardAncestor(stack) {
		return
	}
	if reason, ok := pass.Directive(call.Pos(), "clock"); ok {
		if reason == "" {
			pass.Reportf(call.Pos(), "//quark:clock needs a justification")
		}
		return
	}
	pass.Reportf(call.Pos(), "clock read evaluated before the obs nil-check: hoist the call into `if m := ...; m != nil { ... }` so disabled means no clock read")
}

// checkNilSafeMethod enforces rule 3 inside internal/obs.
func checkNilSafeMethod(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || !fd.Name.IsExported() {
		return
	}
	recvField := fd.Recv.List[0]
	ptr, ok := recvField.Type.(*ast.StarExpr)
	if !ok {
		return
	}
	tid, ok := ptr.X.(*ast.Ident)
	if !ok || !obsHandleTypes[tid.Name] {
		return
	}
	if len(recvField.Names) == 0 {
		return
	}
	recv := pass.Info.Defs[recvField.Names[0]]
	if recv == nil {
		return
	}
	if reason, ok := pass.Directive(fd.Pos(), "nilsafe"); ok && reason != "" {
		return
	}

	guardPos := token.NoPos
	fieldPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if guardPos == token.NoPos && condNilChecksObj(pass, n.Cond, recv) {
				guardPos = n.Pos()
			}
		case *ast.SelectorExpr:
			id, ok := ast.Unparen(n.X).(*ast.Ident)
			if !ok || pass.Info.Uses[id] != recv {
				return true
			}
			if s, ok := pass.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
				if fieldPos == token.NoPos || n.Pos() < fieldPos {
					fieldPos = n.Pos()
				}
			}
		}
		return true
	})
	if fieldPos == token.NoPos {
		return // pure delegation (e.g. Inc -> Add); the callee guards
	}
	if guardPos == token.NoPos || guardPos > fieldPos {
		pass.Reportf(fd.Pos(), "exported method (*%s).%s touches receiver fields without a nil-receiver guard: handles are nil when observability is disabled", tid.Name, fd.Name.Name)
	}
}

func condNilChecksObj(pass *Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
		if isNilIdent(y) {
			if id, ok := x.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		} else if isNilIdent(x) {
			if id, ok := y.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
