package outbox

import "os"

// Frame stands in for the store's CRC framing helper.
func Frame(payload []byte) []byte { return payload }

// WriteCheckpoint is the blessed idiom: framed payload, tmp path,
// atomic rename into place.
func WriteCheckpoint(path string, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, Frame(payload), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
