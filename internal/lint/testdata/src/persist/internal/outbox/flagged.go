// Package outbox is a persistlint fixture durable store: every
// whole-file write here must be tmp-then-rename with CRC framing.
package outbox

import "os"

// WriteCheckpointBad writes the final path directly: a torn write
// clobbers the previous good state.
func WriteCheckpointBad(path string, payload []byte) error {
	return os.WriteFile(path, payload, 0o644) // want "os.WriteFile on a durable-store path"
}

// CreateBad truncates in place.
func CreateBad(path string) error {
	f, err := os.Create(path) // want "os.Create in a durable store"
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteNoRename leaves the tmp file orphaned.
func WriteNoRename(path string, payload []byte) error {
	tmp := path + ".tmp"
	return os.WriteFile(tmp, payload, 0o644) // want "never os.Rename"
}

// WriteNoFrame renames but writes raw bytes: torn or corrupt content
// is undetectable at open.
func WriteNoFrame(path string, payload []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, payload, 0o644); err != nil { // want "without CRC framing evidence"
		return err
	}
	return os.Rename(tmp, path)
}
