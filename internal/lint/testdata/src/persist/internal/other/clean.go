package other

import (
	"os"
	"path/filepath"
)

// WriteReport writes an unprotected file: no durable-store contract
// applies outside internal/outbox and internal/shard.
func WriteReport(dir string, payload []byte) error {
	return os.WriteFile(filepath.Join(dir, "report.json"), payload, 0o644)
}
