// Package other is outside the durable stores: it must not construct
// writes to their protected artifacts at all.
package other

import (
	"os"
	"path/filepath"
)

// Clobber writes a checkpoint file from outside its owning store.
func Clobber(dir string, payload []byte) error {
	return os.WriteFile(filepath.Join(dir, "modes.ckpt"), payload, 0o644) // want "protected durable artifact"
}

// ClobberVar hides the protected name behind a local variable.
func ClobberVar(dir string) error {
	p := filepath.Join(dir, "dead.log")
	f, err := os.Create(p) // want "protected durable artifact"
	if err != nil {
		return err
	}
	return f.Close()
}
