module persistfix

go 1.24
