// Package core is the stagelint fixture target: functions that receive
// a *reldb.FireContext are prepare-phase roots, and nothing reachable
// from them may hit a delivery primitive outside a stage guard.
package core

import (
	"stagefix/internal/outbox"
	"stagefix/internal/reldb"
)

type Engine struct {
	ob   *outbox.Log
	sink *outbox.Sink
}

// fire appends to the outbox directly from the prepare phase.
func (e *Engine) fire(ctx *reldb.FireContext, payload []byte) error {
	return e.ob.Append(payload) // want "outbox append reachable from prepare-phase function fire"
}

// fireViaHelper reaches the same primitive through a same-package
// helper; the diagnostic lands on the helper's call site with the path.
func (e *Engine) fireViaHelper(ctx *reldb.FireContext, payload []byte) error {
	return e.emit(payload)
}

func (e *Engine) emit(payload []byte) error {
	return e.ob.Append(payload) // want "outbox append reachable from prepare-phase function fireViaHelper -> emit"
}

// fireSink delivers straight to a sink.
func (e *Engine) fireSink(ctx *reldb.FireContext, payload []byte) error {
	return e.sink.Deliver(payload) // want "sink delivery reachable from prepare-phase function fireSink"
}
