package core

import "stagefix/internal/reldb"

// staged wraps the delivery in a thunk handed to ctx.Stage: it runs at
// commit, not during prepare, which is exactly the discipline.
func (e *Engine) staged(ctx *reldb.FireContext, payload []byte) error {
	return ctx.Stage(func() error { return e.ob.Append(payload) })
}

// immediate takes the statement-level path only after checking that no
// staging is in progress — the stageOrDeliver shape.
func (e *Engine) immediate(ctx *reldb.FireContext, payload []byte) error {
	if ctx == nil || ctx.Stage == nil {
		return e.ob.Append(payload)
	}
	return ctx.Stage(func() error { return e.ob.Append(payload) })
}
