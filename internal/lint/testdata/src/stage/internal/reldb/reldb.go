// Package reldb is a stagelint fixture mirror: the analyzer recognizes
// prepare-phase functions by a *reldb.FireContext parameter.
package reldb

// FireContext carries the staging hook a trigger body must use for its
// effects during the prepare phase.
type FireContext struct {
	Table string
	Stage func(func() error) error
}
