// Package outbox is a stagelint fixture mirror of the delivery
// primitives the analyzer bans from prepare-phase reach.
package outbox

type Log struct{}

func (l *Log) Append(payload []byte) error { return nil }

type Sink struct{}

func (s *Sink) Deliver(payload []byte) error { return nil }
