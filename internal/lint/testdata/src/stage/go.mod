module stagefix

go 1.24
