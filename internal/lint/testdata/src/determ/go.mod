module determfix

go 1.24
