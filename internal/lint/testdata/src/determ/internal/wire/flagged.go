// Package wire is a determlint fixture: it sits on a path the analyzer
// scopes to (internal/wire), so clocks, shared-source randomness, and
// unsorted map iteration are findings here.
package wire

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock with no obs guard and no annotation.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic path"
}

// Shuffle draws from the package-level, randomly-seeded source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the shared randomly-seeded source"
}

// Keys leaks map iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration over map m has nondeterministic order"
		out = append(out, k)
	}
	return out
}

// BadExcuse carries the escape hatch but no justification.
func BadExcuse(m map[string]int) int {
	last := 0
	//quark:sorted
	for _, v := range m { // want "needs a justification"
		last = v
	}
	return last
}
