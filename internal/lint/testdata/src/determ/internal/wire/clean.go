package wire

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type handle struct{ enabled bool }

// KeysSorted appends under the loop but sorts before the order can
// surface: order-insensitive by the append-then-sort rule.
func KeysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum accumulates commutatively; iteration order cannot surface.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Validate early-returns on bad entries, which is order-dependent in
// which error surfaces first — annotated with a justification.
func Validate(m map[string]int) error {
	for k, v := range m { //quark:sorted validation only: any order rejects the same bad entry set
		if v < 0 {
			return fmt.Errorf("bad %s", k)
		}
	}
	return nil
}

// Timed reads the clock only inside an enabled-check branch, the PR 7
// obs-guard idiom.
func Timed(h *handle) time.Time {
	if h != nil {
		return time.Now()
	}
	return time.Time{}
}

// Seeded randomness is deterministic: constructors and methods on an
// explicitly-seeded *rand.Rand are allowed.
func Seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
