package core

// Footprint follows the documented order: metadata lock first, table
// locks acquired through the blessed entry point while holding it.
func (e *Engine) Footprint(table string) func() {
	e.mu.RLock()
	unlock := e.acquireLocks(map[string]bool{table: true}, nil)
	e.mu.RUnlock()
	return unlock
}

// Sequential releases the table locks before touching e.mu, so the
// critical sections never overlap.
func (e *Engine) Sequential(write map[string]bool) {
	unlock := e.acquireLocks(write, nil)
	unlock()
	e.mu.Lock()
	e.mu.Unlock()
}
