// Package core is a locklint fixture: a miniature of the engine's lock
// manager. acquireLocks is the blessed entry point; everything else
// must go through it.
package core

import "sync"

type Engine struct {
	mu         sync.RWMutex
	tableLocks map[string]*sync.RWMutex
	lockOrder  []string
}

// acquireLocks is the one place allowed to touch tableLocks entries.
func (e *Engine) acquireLocks(write, read map[string]bool) func() {
	var held []func()
	for _, t := range e.lockOrder {
		l := e.tableLocks[t]
		switch {
		case write[t]:
			l.Lock()
			held = append(held, l.Unlock)
		case read[t]:
			l.RLock()
			held = append(held, l.RUnlock)
		}
	}
	return func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i]()
		}
	}
}
