package core

// Direct bypasses acquireLocks on a tableLocks entry.
func (e *Engine) Direct(table string) {
	e.tableLocks[table].RLock()         // want "direct RLock on a tableLocks entry"
	defer e.tableLocks[table].RUnlock() // want "direct RUnlock on a tableLocks entry"
}

// ViaLocal launders the entry through a local variable first.
func (e *Engine) ViaLocal(table string) {
	l := e.tableLocks[table]
	l.Lock()   // want "direct Lock on a tableLocks entry"
	l.Unlock() // want "direct Unlock on a tableLocks entry"
}

// MuAfterTables inverts the global order: table locks are still held
// (the unlock is deferred) when e.mu is taken.
func (e *Engine) MuAfterTables(write map[string]bool) {
	unlock := e.acquireLocks(write, nil)
	defer unlock()
	e.mu.Lock() // want "e.mu.Lock while table locks from acquireLocks may still be held"
	e.mu.Unlock()
}
