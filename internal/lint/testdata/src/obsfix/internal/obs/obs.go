// Package obs is an obslint fixture mirror of the nil-means-disabled
// handle types: every exported method must guard a nil receiver before
// touching fields.
package obs

import "time"

type Counter struct{ n int64 }

// Add guards the receiver: safe on every disabled deployment.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Inc is pure delegation; the callee guards.
func (c *Counter) Inc() { c.Add(1) }

type Histogram struct{ sum int64 }

// Since touches h.sum with no nil check.
func (h *Histogram) Since(t0 time.Time) { // want "touches receiver fields without a nil-receiver guard"
	h.sum += int64(time.Since(t0))
}

type Gauge struct{ v int64 }

// Set is exempted with a justification.
//
//quark:nilsafe fixture: pretend construction guarantees non-nil
func (g *Gauge) Set(v int64) { g.v = v }
