// Package engine is the obslint fixture consumer: obs handles must be
// bound and nil-checked before use, and clock reads must stay inside
// the enabled branch.
package engine

import (
	"sync/atomic"
	"time"

	"obsfix/internal/obs"
)

type metrics struct {
	fire *obs.Histogram
}

type Engine struct {
	obsp atomic.Pointer[metrics]
}

// Peek chains a field access straight onto Load(): panics when
// observability is detached.
func (e *Engine) Peek() *obs.Histogram {
	return e.obsp.Load().fire // want "field access on an unchecked Load"
}

// Fire reads the clock before any enabled-check: the disabled path
// pays for time.Now.
func (e *Engine) Fire(m *metrics) {
	m.fire.Since(time.Now()) // want "clock read evaluated before the obs nil-check"
}
