package engine

import (
	"time"

	"obsfix/internal/obs"
)

// FireGuarded is the PR 7 idiom: bind, nil-check, and only then read
// the clock — disabled means one branch and no clock read.
func (e *Engine) FireGuarded() {
	if m := e.obsp.Load(); m != nil {
		m.fire.Since(time.Now())
	}
}

// Calibrate feeds a clock reading into an obs handle on purpose and
// says why.
func Calibrate(h *obs.Histogram, t0 time.Time) {
	h.Since(t0.Add(time.Since(t0))) //quark:clock fixture: calibration input, cost model not delivered bytes
}
