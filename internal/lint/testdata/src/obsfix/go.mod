module obsfix

go 1.24
