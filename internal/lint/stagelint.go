package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StageLint enforces the two-phase staging discipline from PR 5: during
// a transaction's prepare phase, trigger bodies evaluate plans and
// STAGE their effects through FireContext.Stage — nothing may reach a
// sink, the dispatcher, or the outbox log until commit, so an abort
// leaves every observable byte identical to the pre-transaction state.
//
// A function is part of the prepare phase if it receives a
// *reldb.FireContext (trigger bodies run during Tx.Prepare whenever
// ctx.Stage is non-nil). From such functions, stagelint walks the
// static call graph inside the package and flags any path that reaches
// a delivery primitive:
//
//   - core.(*Engine).deliver / deliverDurable (sink or dispatcher)
//   - core.(*Engine).obAppendBatch (outbox group append)
//   - outbox.(*Log).Append / AppendBatch
//   - dispatch.(*Dispatcher).Enqueue
//   - outbox.Sink.Deliver
//
// Two shapes are exempt, because they are exactly how staging works:
//
//   - calls inside a function literal that is not immediately invoked
//     (staged thunks: `ctx.Stage(func() error { ... deliver ... })`)
//   - calls dominated by a branch that checked `ctx.Stage == nil` or
//     `ctx == nil` (the statement-level immediate-delivery path, as in
//     stageOrDeliver)
var StageLint = &Analyzer{
	Name:    "stagelint",
	Doc:     "prepare-phase code must stage deliveries via FireContext.Stage, never deliver or append directly",
	Applies: pathIn("internal/core", "internal/reldb"),
	Run:     runStageLint,
}

// stageBanned describes one delivery primitive by receiver-package
// suffix, receiver type name ("" = package function or any receiver),
// and method name.
type stageBanned struct {
	pkg, typ, name, what string
}

var stageBannedSet = []stageBanned{
	{"internal/core", "Engine", "deliver", "sink/dispatcher delivery"},
	{"internal/core", "Engine", "deliverDurable", "durable delivery"},
	{"internal/core", "Engine", "obAppendBatch", "outbox group append"},
	{"internal/outbox", "Log", "Append", "outbox append"},
	{"internal/outbox", "Log", "AppendBatch", "outbox append"},
	{"internal/dispatch", "Dispatcher", "Enqueue", "dispatcher enqueue"},
	{"internal/outbox", "", "Deliver", "sink delivery"},
}

func bannedCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	for _, b := range stageBannedSet {
		if IsMethodCall(pass.Info, call, b.pkg, b.typ, b.name) {
			return b.what, true
		}
	}
	return "", false
}

func runStageLint(pass *Pass) error {
	// Index this package's function declarations by their object so the
	// walk can descend into same-package helpers.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	visited := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasFireContextParam(pass, fd) {
				continue
			}
			walkPrepareReachable(pass, decls, visited, fd, fd.Name.Name)
		}
	}
	return nil
}

// hasFireContextParam reports whether fd takes a *reldb.FireContext
// (or, inside package reldb itself, a *FireContext).
func hasFireContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "FireContext" {
			continue
		}
		if tp := named.Obj().Pkg(); tp != nil && strings.HasSuffix(tp.Path(), "internal/reldb") {
			return true
		}
	}
	return false
}

// walkPrepareReachable scans fn's body for banned calls, descending
// into same-package callees (outside func literals) breadth-first.
// root names the prepare-phase entry point for the diagnostic.
func walkPrepareReachable(pass *Pass, decls map[types.Object]*ast.FuncDecl, visited map[types.Object]bool, fd *ast.FuncDecl, root string) {
	if obj := pass.Info.Defs[fd.Name]; obj != nil {
		if visited[obj] {
			return
		}
		visited[obj] = true
	}
	WalkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		// Do not descend into function literals that are not immediately
		// invoked: their bodies run later (staged thunks, action funcs).
		if fl, ok := n.(*ast.FuncLit); ok && !isImmediatelyInvoked(fl, stack) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, bad := bannedCall(pass, call); bad {
			if !stageGuarded(stack) {
				pass.Reportf(call.Pos(), "%s reachable from prepare-phase function %s without a ctx.Stage==nil guard: stage the effect via FireContext.Stage so aborts stay byte-identical", what, root)
			}
			return true
		}
		// Descend into same-package helpers called outside a guard: a
		// helper that delivers unconditionally is just as reachable.
		if stageGuarded(stack) {
			return true
		}
		if fn, ok := Callee(pass.Info, call).(*types.Func); ok {
			if callee, ok := decls[fn]; ok {
				walkPrepareReachable(pass, decls, visited, callee, root+" -> "+fn.Name())
			}
		}
		return true
	})
}

// isImmediatelyInvoked reports whether fl is the Fun of a CallExpr
// directly above it on the stack (an IIFE executes in place).
func isImmediatelyInvoked(fl *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == fl
}

// stageGuarded reports whether the node is inside a branch dominated by
// a check of ctx.Stage == nil or ctx == nil — the immediate-delivery
// path that only runs for statement-level (non-staged) firings.
func stageGuarded(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condChecksStageNil(ifs.Cond) {
			return true
		}
	}
	return false
}

func condChecksStageNil(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if b.Op != token.EQL && b.Op != token.NEQ {
			return true
		}
		other := b.X
		if isNilIdent(other) {
			other = b.Y
		} else if !isNilIdent(b.Y) {
			return true
		}
		switch o := ast.Unparen(other).(type) {
		case *ast.SelectorExpr:
			if o.Sel.Name == "Stage" {
				found = true
			}
		case *ast.Ident:
			if o.Name == "ctx" {
				found = true
			}
		}
		return !found
	})
	return found
}
