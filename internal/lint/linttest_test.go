package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest on top of the
// stdlib loader: each fixture under testdata/src/<name> is a
// self-contained module whose package paths end in the real repo's
// suffixes (internal/core, internal/wire, ...) so Applies scoping
// matches. `// want "regexp"` comments mark the line a diagnostic must
// land on; every want must be matched and every diagnostic must be
// wanted. Patterns are taken verbatim (no unescaping), so `// want
// "direct Lock"` matches a message containing that substring.

func TestDetermLint(t *testing.T)  { runFixture(t, DetermLint, "determ") }
func TestLockLint(t *testing.T)    { runFixture(t, LockLint, "lock") }
func TestStageLint(t *testing.T)   { runFixture(t, StageLint, "stage") }
func TestPersistLint(t *testing.T) { runFixture(t, PersistLint, "persist") }
func TestObsLint(t *testing.T)     { runFixture(t, ObsLint, "obsfix") }

type expect struct {
	file string
	line int
	pat  string
	re   *regexp.Regexp
	hit  bool
}

var wantPatRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := Load(LoadOptions{Dir: dir}, "./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
	}

	var wants []*expect
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					_, rest, found := strings.Cut(c.Text, "// want ")
					if !found {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantPatRE.FindAllStringSubmatch(rest, -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expect{file: pos.Filename, line: pos.Line, pat: pat, re: re})
					}
				}
			}
		}
	}

	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on fixture %s: %v", a.Name, fixture, err)
	}

	var errs []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Sprintf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			errs = append(errs, fmt.Sprintf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pat))
		}
	}
	for _, e := range errs {
		t.Error(e)
	}
}
