package lint

// All returns the full quarklint analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DetermLint,
		LockLint,
		StageLint,
		PersistLint,
		ObsLint,
	}
}
