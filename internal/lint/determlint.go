package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetermLint enforces the repo's determinism contract on the packages
// whose output is pinned byte-for-byte: the wire codec, the outbox log,
// the conformance goldens, core trigger firing, the shard router and
// directory, and the relational store whose Δ/∇ order feeds them all.
//
// Rules:
//
//  1. No wall-clock reads (time.Now, time.Since) outside an
//     observability guard. The PR 7 contract is "disabled = one branch,
//     no clock read": a clock read is acceptable only inside a branch
//     dominated by a nil-check of an obs handle. Intentional exceptions
//     (e.g. planner calibration inputs) carry `//quark:clock <reason>`.
//
//  2. No nondeterministically-seeded randomness: package-level math/rand
//     functions draw from the shared, randomly-seeded source. Seeded
//     *rand.Rand values built via rand.New(rand.NewSource(k)) are
//     deterministic and allowed.
//
//  3. No unsorted `range` over a map unless the loop is provably
//     order-insensitive (it only writes map entries, accumulates
//     commutatively, or appends to slices that are sorted before use in
//     the same function). Anything else needs `//quark:sorted <reason>`
//     with a non-empty justification — an adjacent sort or an argument
//     for why order cannot reach pinned output.
var DetermLint = &Analyzer{
	Name: "determlint",
	Doc:  "forbid wall clocks, shared-source randomness, and unsorted map iteration in deterministic paths",
	Applies: pathIn(
		"internal/wire",
		"internal/outbox",
		"internal/conformance",
		"internal/core",
		"internal/shard",
		"internal/reldb",
	),
	Run: runDetermLint,
}

func runDetermLint(pass *Pass) error {
	for _, file := range pass.Files {
		WalkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkClockCall(pass, n, stack)
				checkRandCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkClockCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	var what string
	switch {
	case IsPkgCall(pass.Info, call, "time", "Now"):
		what = "time.Now"
	case IsPkgCall(pass.Info, call, "time", "Since"):
		what = "time.Since"
	default:
		return
	}
	if HasNilGuardAncestor(stack) {
		// Obs-guard idiom: `if m := h.Load(); m != nil { ... time.Now() }`.
		// The disabled path takes one branch and never reads the clock.
		return
	}
	if reason, ok := pass.Directive(call.Pos(), "clock"); ok {
		if reason == "" {
			pass.Reportf(call.Pos(), "//quark:clock needs a justification (why may this path read the wall clock?)")
		}
		return
	}
	pass.Reportf(call.Pos(), "%s in a deterministic path: guard it behind an obs-handle nil-check or annotate //quark:clock <reason>", what)
}

func checkRandCall(pass *Pass, call *ast.CallExpr) {
	fn, ok := Callee(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on an explicitly-seeded *rand.Rand are deterministic
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return // constructors: determinism hinges on the seed, caught elsewhere
	}
	pass.Reportf(call.Pos(), "rand.%s draws from the shared randomly-seeded source; use rand.New(rand.NewSource(seed)) in deterministic paths", fn.Name())
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Info.Types[rng.X].Type
	if !IsMapType(t) {
		return
	}
	if reason, ok := pass.Directive(rng.Pos(), "sorted"); ok {
		if reason == "" {
			pass.Reportf(rng.Pos(), "//quark:sorted needs a justification (adjacent sort or why order cannot surface)")
		}
		return
	}
	fd := EnclosingFunc(file, rng.Pos())
	var body *ast.BlockStmt
	if fd != nil {
		body = fd.Body
	}
	if orderInsensitiveBlock(pass, rng.Body, loopCtx{fnBody: body, after: rng.End()}) {
		return
	}
	pass.Reportf(rng.Pos(), "iteration over map %s has nondeterministic order: collect+sort the keys, make the body order-insensitive, or annotate //quark:sorted <reason>", exprString(pass, rng.X))
}

// slicesSortedAfter collects the objects of slice variables passed to a
// sort call (sort.Strings/Ints/Float64s/Slice/SliceStable/Sort,
// slices.Sort/SortFunc/SortStableFunc) lexically after pos inside body.
func slicesSortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn, ok := Callee(pass.Info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// loopCtx carries the function body and the position after which a
// sort call redeems appends made inside the loop under inspection.
type loopCtx struct {
	fnBody *ast.BlockStmt
	after  token.Pos
	sorted map[types.Object]bool // lazily computed
}

func (c *loopCtx) sortedSet(pass *Pass) map[types.Object]bool {
	if c.sorted == nil {
		if c.fnBody != nil {
			c.sorted = slicesSortedAfter(pass, c.fnBody, c.after)
		} else {
			c.sorted = map[types.Object]bool{}
		}
	}
	return c.sorted
}

// orderInsensitiveBlock reports whether every statement in the block is
// one whose effect cannot depend on iteration order: map writes and
// deletes, commutative numeric accumulation (atomic counters included),
// boolean latching, appends into slices that are sorted later, and
// control flow composed of the same. An early `break` is allowed only
// when the body performs no numeric accumulation (a partial commutative
// sum still depends on which elements were visited).
func orderInsensitiveBlock(pass *Pass, blk *ast.BlockStmt, ctx loopCtx) bool {
	if hasBreak(blk) && hasAccumulation(blk) {
		return false
	}
	for _, st := range blk.List {
		if !orderInsensitiveStmt(pass, st, ctx) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *Pass, st ast.Stmt, ctx loopCtx) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, st, ctx)
	case *ast.IncDecStmt:
		return true // counting is commutative
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch c := Callee(pass.Info, call).(type) {
		case *types.Builtin:
			return c.Name() == "delete"
		case *types.Func:
			// Atomic / stats counter bumps are commutative:
			// sync/atomic Add/Store-free increments and the obs
			// Counter/Gauge/Histogram family.
			if c.Name() == "Add" || c.Name() == "Inc" {
				return IsMethodCall(pass.Info, call, "sync/atomic", "", c.Name()) ||
					IsMethodCall(pass.Info, call, "internal/obs", "", c.Name())
			}
			// A sort erases whatever order the input arrived in.
			if c.Pkg() != nil && (c.Pkg().Path() == "sort" || c.Pkg().Path() == "slices") {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		// A guard whose branches are themselves order-insensitive: the
		// condition may read loop variables freely (reads don't order).
		if st.Init != nil && !orderInsensitiveStmt(pass, st.Init, ctx) {
			return false
		}
		if !orderInsensitiveBlock(pass, st.Body, ctx) {
			return false
		}
		switch e := st.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitiveBlock(pass, e, ctx)
		case *ast.IfStmt:
			return orderInsensitiveStmt(pass, e, ctx)
		}
		return false
	case *ast.BlockStmt:
		return orderInsensitiveBlock(pass, st, ctx)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE || st.Tok == token.BREAK
	case *ast.RangeStmt:
		// Nested loop: appends inside it may be redeemed by a sort that
		// runs after the NESTED loop (still inside the outer body).
		nested := loopCtx{fnBody: ctx.fnBody, after: st.End()}
		return orderInsensitiveBlock(pass, st.Body, nested)
	case *ast.ForStmt:
		nested := loopCtx{fnBody: ctx.fnBody, after: st.End()}
		return orderInsensitiveBlock(pass, st.Body, nested)
	case *ast.DeclStmt:
		return true // declarations have no cross-iteration effect
	}
	return false
}

func hasBreak(blk *ast.BlockStmt) bool {
	found := false
	ast.Inspect(blk, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.RangeStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break there doesn't exit this loop
		}
		return !found
	})
	return found
}

func hasAccumulation(blk *ast.BlockStmt) bool {
	found := false
	ast.Inspect(blk, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				found = true
			}
		}
		return !found
	})
	return found
}

func orderInsensitiveAssign(pass *Pass, as *ast.AssignStmt, ctx loopCtx) bool {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		// x[k] = v (map write), _ = v, append into a later-sorted slice,
		// or a define of a loop-local temp.
		for i, lhs := range as.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				if as.Tok == token.DEFINE {
					continue // fresh per-iteration binding
				}
				// `s = append(s, ...)` with s sorted after the loop.
				if i < len(as.Rhs) && isAppendOfSorted(pass, as.Rhs[i], pass.Info.Uses[l], ctx.sortedSet(pass)) {
					continue
				}
				// Latching a boolean (`found = true`) is commutative.
				if i < len(as.Rhs) && isBoolLit(as.Rhs[i]) {
					continue
				}
				return false
			case *ast.IndexExpr:
				if IsMapType(pass.Info.Types[l.X].Type) {
					continue // map writes don't depend on visit order
				}
				return false
			default:
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		// Commutative accumulation — except string concatenation, whose
		// result depends on order.
		for _, lhs := range as.Lhs {
			if t := pass.Info.Types[lhs].Type; t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

func isAppendOfSorted(pass *Pass, rhs ast.Expr, lobj types.Object, sorted map[types.Object]bool) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	if b, ok := Callee(pass.Info, call).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return lobj != nil && sorted[lobj]
}

func isBoolLit(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false")
}

func exprString(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(pass, e.X) + "[...]"
	}
	return "value"
}
