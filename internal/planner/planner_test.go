package planner

import (
	"reflect"
	"testing"

	"quark/internal/core"
)

func warmGroup(sig string, mode core.Mode, fires, estRows, estBytes int64) core.GroupStat {
	return core.GroupStat{
		Sig: sig, Mode: mode, ModeName: mode.String(), Members: 3,
		Fires: fires, EstSnapshotRows: estRows, EstSnapshotBytes: estBytes,
	}
}

// A hot group over a small view materializes; a cold group is left alone.
func TestDecideMaterializesHotSmallGroup(t *testing.T) {
	p := New(Config{MemoryBudget: 1 << 20})
	stats := []core.GroupStat{
		warmGroup("hot", core.ModeGrouped, 1000, 10, 4_000),
		warmGroup("cold", core.ModeGrouped, 2, 10, 4_000),
	}
	target := p.Decide(stats)
	if target["hot"] != core.ModeMaterialized {
		t.Errorf("hot small group -> %v, want MATERIALIZED (target=%v)", target["hot"], target)
	}
	if _, ok := target["cold"]; ok {
		t.Errorf("cold group got a decision: %v", target["cold"])
	}
}

// A group whose view is huge stays translated: full re-evaluation costs
// more than the delta-driven plan.
func TestDecideKeepsLargeViewTranslated(t *testing.T) {
	p := New(Config{MemoryBudget: -1}) // unbounded: cost, not budget, decides
	stats := []core.GroupStat{
		warmGroup("big", core.ModeGroupedAgg, 1000, 1_000_000, 72_000_000),
	}
	if target := p.Decide(stats); len(target) != 0 {
		t.Errorf("large view got a switch: %v", target)
	}
}

// The memory budget is a hard cap: greedy selection takes the best
// benefit-per-byte groups that fit and leaves the rest translated.
func TestDecideRespectsMemoryBudget(t *testing.T) {
	p := New(Config{MemoryBudget: 5_000})
	stats := []core.GroupStat{
		warmGroup("a", core.ModeGrouped, 5000, 10, 4_000), // best benefit/byte
		warmGroup("b", core.ModeGrouped, 1000, 10, 4_000), // does not fit with a
	}
	target := p.Decide(stats)
	if target["a"] != core.ModeMaterialized {
		t.Errorf("group a -> %v, want MATERIALIZED", target["a"])
	}
	if m, ok := target["b"]; ok && m == core.ModeMaterialized {
		t.Error("group b materialized past the budget")
	}
	// Zero budget: nothing materializes, ever.
	p0 := New(Config{MemoryBudget: 0})
	for sig, m := range p0.Decide(stats) {
		if m == core.ModeMaterialized {
			t.Errorf("zero budget materialized %q", sig)
		}
	}
}

// An already-materialized group within budget produces no switch (no-op
// decisions are dropped), and hysteresis keeps near-ties in place.
func TestDecideHysteresisAndNoOps(t *testing.T) {
	p := New(Config{MemoryBudget: 1 << 20})
	inPlace := warmGroup("steady", core.ModeMaterialized, 1000, 10, 4_000)
	inPlace.SnapshotRows = 10
	inPlace.SnapshotBytes = 4_000
	if target := p.Decide([]core.GroupStat{inPlace}); len(target) != 0 {
		t.Errorf("steady materialized group got a switch: %v", target)
	}
	// Near-tie: materialized cost ~= translated cost; the 20% margin
	// keeps the current mode. 60 rows × 400ns = 24000ns vs GROUPED-AGG
	// 0.8×(25000+600) = 20480ns — better, but not 20% better.
	tie := warmGroup("tie", core.ModeMaterialized, 1000, 60, 24_000)
	tie.SnapshotRows = 60
	tie.SnapshotBytes = 24_000
	if target := p.Decide([]core.GroupStat{tie}); len(target) != 0 {
		t.Errorf("near-tie group switched: %v", target)
	}
}

// Decisions are deterministic in their input regardless of slice order —
// the property that lets every shard apply the same fleet-wide decision.
func TestDecideDeterministic(t *testing.T) {
	p := New(Config{MemoryBudget: 6_000})
	a := []core.GroupStat{
		warmGroup("g1", core.ModeGrouped, 900, 10, 4_000),
		warmGroup("g2", core.ModeGrouped, 901, 10, 4_000),
		warmGroup("g3", core.ModeUngrouped, 50, 500, 200_000),
	}
	b := []core.GroupStat{a[2], a[0], a[1]}
	t1, t2 := p.Decide(a), p.Decide(b)
	if !reflect.DeepEqual(t1, t2) {
		t.Errorf("order-dependent decision: %v vs %v", t1, t2)
	}
	if len(t1) == 0 {
		t.Error("expected at least one switch")
	}
}
