// Package planner is the cost-based adaptive mode selector: it scores
// every trigger group from the engine's live per-group statistics
// (core.GroupStat) and picks the translation mode each group should run,
// materializing the most profitable groups under a configurable memory
// budget. The approach follows the query-clustering template of
// "Materialized View Selection by Query Clustering in XML Data
// Warehouses" (see PAPERS.md): the engine's structural trigger groups ARE
// the clusters — triggers identical up to constants — and the planner
// selects the materialization set over them greedily by benefit per byte.
//
// The cost model is deliberately coarse. Per firing, a translated group
// costs roughly one plan evaluation per installed plan (UNGROUPED runs
// one plan per member; GROUPED/GROUPED-AGG share one, paying a small
// constants-table join overhead per member), while a MATERIALIZED group
// re-evaluates its whole view, costing time proportional to the snapshot
// row count. Observed per-group latency calibrates both sides when the
// group has fired enough to trust (Config.MinFires); groups without
// history fall back to fixed default constants. Decisions are
// deterministic in their input — ties break by signature — which is what
// lets every shard of a fleet apply the same Decide output.
package planner

import (
	"sort"
	"strconv"

	"quark/internal/core"
	"quark/internal/obs"
)

// Default cost constants (nanoseconds), used until a group has observed
// history to calibrate with. Absolute precision is irrelevant; only the
// relative ordering of the per-mode costs matters, and every constant is
// overridden by measurement once the group clears MinFires.
const (
	// defaultEvalNS is the assumed cost of one translated plan evaluation
	// (affected-node graph over the delta, with index support).
	defaultEvalNS = 25_000
	// defaultPerRowNS is the assumed cost per snapshot row of one
	// materialized re-evaluation + diff.
	defaultPerRowNS = 400
	// memberJoinNS is the per-member overhead a grouped plan pays for the
	// constants-table join and per-member residual work.
	memberJoinNS = 200
	// aggFactor discounts GROUPED-AGG relative to GROUPED: deriving old
	// aggregates from new values and transition tables (§5.2) avoids the
	// OLD-side re-navigation.
	aggFactor = 0.8
)

// Config parameterizes the planner.
type Config struct {
	// MemoryBudget bounds the summed (measured or estimated) snapshot
	// bytes of all groups the planner keeps MATERIALIZED. Zero means no
	// materialization at all; negative means unbounded.
	MemoryBudget int64
	// MinFires is the observation threshold: a group that has fired fewer
	// times keeps its current mode (no thrash while cold). Defaults to 8.
	MinFires int64
	// Hysteresis is the relative cost improvement a switch must promise
	// (0.2 = 20% cheaper) before the planner moves a group off its
	// current mode. Defaults to 0.2; zero is allowed (always take the
	// cheapest), negative disables switching entirely.
	Hysteresis float64
}

// Planner implements core.ModePolicy.
type Planner struct {
	cfg Config
	reg *obs.Registry
}

// New builds a planner with cfg's zero values defaulted.
func New(cfg Config) *Planner {
	if cfg.MinFires == 0 {
		cfg.MinFires = 8
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.2
	}
	return &Planner{cfg: cfg}
}

// AttachObs makes the planner emit a "planner.decide" event per Decide
// call (group counts and the chosen materialization set's footprint) on
// top of the mode.switch/replan events the engines emit themselves.
func (p *Planner) AttachObs(reg *obs.Registry) { p.reg = reg }

// modeCost estimates one firing's cost (ns) for the group in each mode.
func (p *Planner) modeCost(gs core.GroupStat) [4]float64 {
	members := float64(gs.Members)
	if members < 1 {
		members = 1
	}
	// Calibrate a per-evaluation cost from observed history when the
	// group is warm; the observed number already reflects whatever mode
	// it ran, so it anchors the translated-side estimate.
	perEval := float64(defaultEvalNS)
	perRow := float64(defaultPerRowNS)
	if gs.Fires >= p.cfg.MinFires && gs.EvalNS > 0 {
		observed := float64(gs.EvalNS) / float64(gs.Fires)
		if gs.Mode == core.ModeMaterialized {
			if rows := float64(gs.SnapshotRows); rows > 0 {
				perRow = observed / rows
			}
		} else {
			plans := 1.0
			if gs.Mode == core.ModeUngrouped {
				plans = members
			}
			perEval = observed / plans
		}
	}
	matRows := float64(gs.SnapshotRows)
	if matRows == 0 {
		matRows = float64(gs.EstSnapshotRows)
	}
	var c [4]float64
	c[core.ModeUngrouped] = members * perEval
	c[core.ModeGrouped] = perEval + members*memberJoinNS
	c[core.ModeGroupedAgg] = aggFactor * c[core.ModeGrouped]
	c[core.ModeMaterialized] = matRows * perRow
	if matRows == 0 {
		// An empty view diffs for free but carries no benefit either;
		// avoid a degenerate zero that would always win.
		c[core.ModeMaterialized] = float64(defaultEvalNS)
	}
	return c
}

// snapshotBytes is the budget charge for keeping the group MATERIALIZED:
// the measured footprint when it is already materialized, the estimate
// otherwise.
func snapshotBytes(gs core.GroupStat) int64 {
	if gs.SnapshotBytes > 0 {
		return gs.SnapshotBytes
	}
	return gs.EstSnapshotBytes
}

// Decide implements core.ModePolicy: per group, the cheapest translated
// mode wins unless materialization beats it AND fits the memory budget
// (greedy by benefit per byte, weighted by how often the group fires).
// Cold groups (< MinFires) keep their current mode; warm groups only
// switch when the winner clears the hysteresis margin against the
// current mode's cost.
func (p *Planner) Decide(stats []core.GroupStat) map[string]core.Mode {
	if p.cfg.Hysteresis < 0 {
		return nil
	}
	sorted := append([]core.GroupStat(nil), stats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Sig < sorted[j].Sig })

	type cand struct {
		gs         core.GroupStat
		costs      [4]float64
		translated core.Mode // cheapest non-materialized mode
		benefit    float64   // (translated - materialized) × fire weight
		bytes      int64
	}
	var cands []cand
	target := map[string]core.Mode{}
	for _, gs := range sorted {
		if gs.Fires < p.cfg.MinFires {
			continue // cold: no opinion
		}
		costs := p.modeCost(gs)
		best := core.ModeGrouped
		for _, m := range []core.Mode{core.ModeGroupedAgg, core.ModeUngrouped} {
			if costs[m] < costs[best] {
				best = m
			}
		}
		c := cand{gs: gs, costs: costs, translated: best, bytes: snapshotBytes(gs)}
		weight := float64(gs.Fires)
		c.benefit = (costs[best] - costs[core.ModeMaterialized]) * weight
		cands = append(cands, c)
		target[gs.Sig] = best // provisional; the budget pass may upgrade
	}

	// Greedy materialization under the budget: most benefit per byte
	// first, skipping groups materialization would not help.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		ba := ca.benefit / float64(ca.bytes+1)
		bb := cb.benefit / float64(cb.bytes+1)
		if ba != bb {
			return ba > bb
		}
		return ca.gs.Sig < cb.gs.Sig
	})
	var spent, matGroups int64
	for _, i := range order {
		c := cands[i]
		if c.benefit <= 0 {
			continue
		}
		if p.cfg.MemoryBudget == 0 {
			continue
		}
		if p.cfg.MemoryBudget > 0 && spent+c.bytes > p.cfg.MemoryBudget {
			continue
		}
		spent += c.bytes
		matGroups++
		target[c.gs.Sig] = core.ModeMaterialized
	}

	// Hysteresis: drop switches that do not clear the margin against the
	// group's current cost, and no-ops.
	for _, c := range cands {
		want := target[c.gs.Sig]
		if want == c.gs.Mode {
			delete(target, c.gs.Sig)
			continue
		}
		cur := c.costs[c.gs.Mode]
		if c.costs[want] > cur*(1-p.cfg.Hysteresis) {
			delete(target, c.gs.Sig)
		}
	}
	if p.reg != nil {
		p.reg.Emit("planner.decide", map[string]string{
			"groups":             strconv.Itoa(len(stats)),
			"warm":               strconv.Itoa(len(cands)),
			"switches":           strconv.Itoa(len(target)),
			"materialized":       strconv.FormatInt(matGroups, 10),
			"materialized_bytes": strconv.FormatInt(spent, 10),
		})
	}
	return target
}
