// Package outbox makes trigger actions durable: an append-only segment
// log of wire-encoded invocation records with an acknowledgement
// watermark, giving at-least-once delivery across process restarts. The
// engine appends every activation to the log *before* handing it to the
// dispatcher (transactional-outbox pattern); a record is acknowledged only
// after its sink accepted it, so a crash between append and ack loses
// nothing — Replay re-drives the unacknowledged suffix through the sink in
// log order on the next start. Because the engine serializes appends with
// enqueues, log order agrees with dispatch order, and per-trigger FIFO is
// preserved end to end: live, replayed, and partitioned (partition key =
// trigger name).
//
// On-disk layout (one directory per log):
//
//	seg-<first-seq>.log   length+CRC framed wire records, rotated by size
//	ack                   8-byte little-endian acknowledged watermark
//	dead.log              dead-lettered records (same framing), see Options.RetryLimit
//	failures              per-record delivery-failure budgets (one CRC frame)
//
// Crash tolerance: Open scans segments, validates every frame's CRC, and
// truncates a torn tail (a record half-written when the process died), so
// a crashed producer restarts cleanly. A torn ack write at worst repeats
// deliveries — the at-least-once contract, never lost deliveries.
package outbox

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quark/internal/obs"
	"quark/internal/wire"
)

// Options parameterizes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size;
	// defaults to 4 MiB.
	SegmentBytes int64
	// Sync fsyncs after every append. Off by default: the process-crash
	// guarantees hold either way (the OS flushes the page cache); Sync
	// extends them to power loss at a large throughput cost.
	Sync bool
	// RetryLimit bounds a record's delivery failures (live attempts and
	// replay attempts both count; counts persist across restarts in the
	// failures file, so the budget is exact even for a crash-looping
	// consumer): once a
	// record has failed RetryLimit times, NoteFailure moves it to the
	// dead-letter file and acknowledges it, so one poison record can no
	// longer pin the watermark — later acks stop accumulating in memory,
	// Compact reclaims its segment, and a restart no longer redelivers
	// the suffix above it. 0 (the default) disables dead-lettering: a
	// failing record stays due forever, the pre-dead-letter contract.
	RetryLimit int
	// AutoCompactLag, when positive, runs Compact automatically whenever
	// an append observes the acknowledged watermark at least this many
	// records past the start of the oldest on-disk segment — bounding the
	// disk footprint of a long-running engine without manual Compact
	// calls. 0 (the default) keeps compaction manual.
	AutoCompactLag uint64
	// Obs, when non-nil, attaches observability from the first moment of
	// Open — recovery-time transitions (torn-tail truncation) emit events
	// that a post-open AttachObs would miss.
	Obs *obs.Registry
}

// Stats is a snapshot of the log's counters.
type Stats struct {
	Appended    int64  // records appended over this Log's lifetime
	Acked       uint64 // acknowledged watermark (every seq <= Acked is done)
	NextSeq     uint64 // sequence the next append will receive
	Segments    int    // segment files on disk
	DeadLetters int64  // records currently quarantined in the dead-letter file
	DiskBytes   int64  // on-disk footprint: every segment file plus dead.log
}

const (
	segPrefix    = "seg-"
	segSuffix    = ".log"
	ackFileName  = "ack"
	deadFileName = "dead.log"
	failFileName = "failures"
	frameHeader  = 8 // u32 payload length + u32 CRC32 (little-endian)
)

// Log is an append-only outbox over one directory. All methods are safe
// for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	seg       *os.File // active segment (append mode)
	segSize   int64
	segs      []uint64         // first seq of every segment, ascending
	segBytes  map[uint64]int64 // per-segment on-disk size (first seq -> bytes)
	deadBytes int64            // dead.log on-disk size
	nextSeq   uint64
	acked     uint64          // contiguous watermark: all seq <= acked are done
	pending   map[uint64]bool // acked out of order, still above the watermark
	failures  map[uint64]int  // per-record delivery failures (dead-letter budget)
	deadF     *os.File        // dead-letter file (append mode), opened lazily
	dead      int64           // records in the dead-letter file
	ackF      *os.File
	appended  int64
	closed    bool

	// om, when non-nil, holds resolved metric handles plus the registry
	// for event emission (see AttachObs). Nil is the disabled fast path.
	om atomic.Pointer[logObs]
}

// logObs is the resolved metric-handle set for one Log.
type logObs struct {
	reg      *obs.Registry
	append   *obs.Histogram // quark_outbox_append_ns: frame write (+fsync) latency
	fsync    *obs.Histogram // quark_outbox_fsync_ns: fsync alone
	replayed *obs.Counter   // quark_outbox_replayed_total: records re-driven by Replay
}

// AttachObs resolves the log's latency histograms, registers snapshot
// collectors for its counters, and starts emitting structured events
// (dead-letter quarantine, redrive, torn-tail truncation at Open when
// attached via Options.Obs). AttachObs(nil) detaches the hot-path
// handles and silences events.
func (l *Log) AttachObs(reg *obs.Registry) {
	if reg == nil {
		l.om.Store(nil)
		return
	}
	l.om.Store(&logObs{
		reg:      reg,
		append:   reg.Histogram("quark_outbox_append_ns", nil),
		fsync:    reg.Histogram("quark_outbox_fsync_ns", nil),
		replayed: reg.Counter("quark_outbox_replayed_total"),
	})
	reg.Func("quark_outbox_appended_total", func() int64 { return l.Stats().Appended })
	reg.GaugeFunc("quark_outbox_acked", func() int64 { return int64(l.Stats().Acked) })
	reg.GaugeFunc("quark_outbox_next_seq", func() int64 { return int64(l.Stats().NextSeq) })
	reg.GaugeFunc("quark_outbox_segments", func() int64 { return int64(l.Stats().Segments) })
	reg.GaugeFunc("quark_outbox_dead_letters", func() int64 { return l.Stats().DeadLetters })
	reg.GaugeFunc("quark_outbox_disk_bytes", func() int64 { return l.Stats().DiskBytes })
}

// Open creates or re-opens the log directory, scanning existing segments
// (validating CRCs and truncating a torn tail) and loading the ack
// watermark.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1, pending: map[uint64]bool{}, failures: map[uint64]int{}, segBytes: map[uint64]int64{}}
	if opts.Obs != nil {
		l.AttachObs(opts.Obs)
	}
	if err := l.loadAck(); err != nil {
		return nil, err
	}
	if err := l.loadFailures(); err != nil {
		return nil, err
	}
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	// Count existing dead-letter records (the file survives restarts; a
	// torn tail there truncates exactly like a segment's).
	if dn, validBytes, err := scanSegmentFile(filepath.Join(dir, deadFileName)); err == nil {
		dropped, err := truncateTo(filepath.Join(dir, deadFileName), validBytes)
		if err != nil {
			return nil, err
		}
		if dropped > 0 {
			if m := l.om.Load(); m != nil {
				m.reg.Emit("outbox.torn_tail_truncate", map[string]string{
					"file": deadFileName, "dropped_bytes": strconv.FormatInt(dropped, 10),
				})
			}
		}
		l.dead = int64(dn)
		l.deadBytes = validBytes
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// The watermark can be ahead of an empty log only through corruption;
	// clamp so appends never reuse an acknowledged sequence.
	if l.acked >= l.nextSeq {
		l.nextSeq = l.acked + 1
	}
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) segPath(first uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix))
}

func (l *Log) loadAck() error {
	b, err := os.ReadFile(filepath.Join(l.dir, ackFileName))
	switch {
	case os.IsNotExist(err):
		return nil
	case err != nil:
		return err
	case len(b) < 8:
		// Torn first-ever ack write: treat as zero (redeliver; never lose).
		return nil
	}
	l.acked = binary.LittleEndian.Uint64(b)
	return nil
}

// scanSegments walks the segment files in order, counting valid records to
// recover nextSeq and truncating the active (last) segment after the last
// valid frame.
func (l *Log) scanSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			return fmt.Errorf("outbox: malformed segment name %q", name)
		}
		l.segs = append(l.segs, first)
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	for i, first := range l.segs {
		last := i == len(l.segs)-1
		n, validBytes, err := scanSegmentFile(l.segPath(first))
		if err != nil {
			return err
		}
		if i > 0 && first != l.nextSeq {
			return fmt.Errorf("outbox: segment %d does not continue sequence %d", first, l.nextSeq)
		}
		l.nextSeq = first + n
		l.segBytes[first] = validBytes
		if last {
			// Truncate a torn tail so the next append starts on a clean
			// frame boundary.
			dropped, err := truncateTo(l.segPath(first), validBytes)
			if err != nil {
				return err
			}
			if dropped > 0 {
				if m := l.om.Load(); m != nil {
					m.reg.Emit("outbox.torn_tail_truncate", map[string]string{
						"file":          fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix),
						"dropped_bytes": strconv.FormatInt(dropped, 10),
					})
				}
			}
			f, err := os.OpenFile(l.segPath(first), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			l.seg = f
			l.segSize = validBytes
		}
	}
	return nil
}

// forEachFrame walks the valid length+CRC frames of one segment's bytes,
// stopping at the first torn or corrupt frame, and returns the byte
// offset just past the last valid frame. It is the single frame decoder:
// recovery (scanSegmentFile) and read-back (visit) must never disagree on
// framing.
func forEachFrame(b []byte, fn func(payload []byte) error) (validBytes int64, err error) {
	off := 0
	for off+frameHeader <= len(b) {
		n := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if off+frameHeader+n > len(b) {
			break // torn tail
		}
		payload := b[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(off), err
			}
		}
		off += frameHeader + n
	}
	return int64(off), nil
}

// Frame renders one length+CRC frame around an arbitrary payload — the
// log's segment framing, exported so sibling persistence files can share
// one tested format (the shard router's directory checkpoint + delta log
// live beside the outbox; Open ignores any file that is not seg-*.log).
func Frame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame
}

// ScanFrames walks the valid frames of b in order, stopping at the first
// torn or corrupt frame, and returns the byte offset just past the last
// valid frame — the truncation point for torn-tail recovery. It is the
// exported face of the log's own frame decoder.
func ScanFrames(b []byte, fn func(payload []byte) error) (validBytes int64, err error) {
	return forEachFrame(b, fn)
}

// scanSegmentFile counts the valid frames of one segment and returns the
// byte offset just past the last valid frame.
func scanSegmentFile(path string) (records uint64, validBytes int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	validBytes, _ = forEachFrame(b, func([]byte) error {
		records++
		return nil
	})
	return records, validBytes, nil
}

// truncateTo trims the file to size, reporting how many torn-tail bytes
// were dropped (0 when the file was already clean).
func truncateTo(path string, size int64) (dropped int64, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() == size {
		return 0, nil
	}
	return fi.Size() - size, os.Truncate(path, size)
}

// encodeFrame renders one record's length+CRC frame.
func encodeFrame(rec *wire.Record) []byte {
	return Frame(wire.Encode(rec))
}

// Append assigns the record the next sequence number, writes it to the
// active segment, and returns the sequence. The record's Seq field is set
// to the assigned value before encoding, so the log is self-describing.
func (l *Log) Append(rec *wire.Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.readyLocked(); err != nil {
		return 0, err
	}
	rec.Seq = l.nextSeq
	return l.writeFramesLocked(encodeFrame(rec), 1)
}

// AppendBatch is the group-commit append: every record is assigned a
// consecutive sequence number (in slice order) and the frames are written
// as ONE contiguous write — and, with Options.Sync, one fsync — so a
// whole firing wave pays a single syscall instead of one per record.
// Rotation is checked once up front: a batch never splits across
// segments (an oversized batch simply overfills its segment, exactly as
// one oversized record would). Returns the first assigned sequence. The
// write is all-or-nothing against the scan: a torn batch truncates back
// to the last good frame, so a crash mid-batch loses the whole batch,
// never a random middle.
func (l *Log) AppendBatch(recs []*wire.Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, fmt.Errorf("outbox: empty append batch")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.readyLocked(); err != nil {
		return 0, err
	}
	first := l.nextSeq
	var buf []byte
	for i, rec := range recs {
		rec.Seq = first + uint64(i)
		buf = append(buf, encodeFrame(rec)...)
	}
	return l.writeFramesLocked(buf, uint64(len(recs)))
}

// readyLocked rejects a closed log and rotates a full (or absent) active
// segment.
func (l *Log) readyLocked() error {
	if l.closed {
		return fmt.Errorf("outbox: log is closed")
	}
	if l.seg == nil || l.segSize >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// writeFramesLocked writes the already-framed buffer holding n records
// (whose Seq fields are assigned from l.nextSeq onward) and advances the
// sequence space, returning the first sequence.
func (l *Log) writeFramesLocked(buf []byte, n uint64) (uint64, error) {
	m := l.om.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	first := l.nextSeq
	if _, err := l.seg.Write(buf); err != nil {
		// A partial write leaves torn bytes that would hide every later
		// frame of this segment from scan and replay. Truncate back to
		// the last good frame; if even that fails, abandon the segment —
		// the next append rotates to a fresh file, and the scan-time
		// torn-tail handling keeps the abandoned segment's valid prefix
		// readable (sequence numbering stays contiguous either way,
		// because nextSeq was not advanced).
		if terr := l.seg.Truncate(l.segSize); terr != nil {
			_ = l.seg.Close()
			l.seg = nil
		}
		return 0, err
	}
	if l.opts.Sync {
		var fsyncStart time.Time
		if m != nil {
			fsyncStart = time.Now()
		}
		if err := l.seg.Sync(); err != nil {
			return 0, err
		}
		if m != nil {
			m.fsync.Since(fsyncStart)
		}
	}
	l.segSize += int64(len(buf))
	if len(l.segs) > 0 {
		l.segBytes[l.segs[len(l.segs)-1]] = l.segSize
	}
	l.nextSeq += n
	l.appended += int64(n)
	l.maybeAutoCompactLocked()
	if m != nil {
		m.append.Since(start)
	}
	return first, nil
}

// maybeAutoCompactLocked applies the Options.AutoCompactLag policy: when
// the watermark has advanced far enough past the oldest segment's first
// record, fully-acknowledged segments are reclaimed. Best-effort — an
// unlinking error leaves the segment for the next append or a manual
// Compact to surface.
func (l *Log) maybeAutoCompactLocked() {
	lag := l.opts.AutoCompactLag
	if lag == 0 || len(l.segs) < 2 || l.acked < l.segs[0] {
		return
	}
	if l.acked-l.segs[0]+1 >= lag {
		_, _ = l.compactLocked()
	}
}

func (l *Log) rotateLocked() error {
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			return err
		}
		l.seg = nil
	}
	first := l.nextSeq
	f, err := os.OpenFile(l.segPath(first), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.seg = f
	l.segSize = 0
	l.segs = append(l.segs, first)
	l.segBytes[first] = 0
	return nil
}

// Ack acknowledges one delivered record. Acks may arrive out of order
// (distinct triggers complete on different workers); the durable watermark
// only advances over a contiguous acknowledged prefix, so an out-of-order
// ack is held in memory until the gap below it closes. A crash forgets
// held acks — their records are redelivered, which at-least-once allows.
//
// Consequence of the contiguous watermark: a record that is never
// acknowledged (a permanently failing sink, or a delivery shed by a drop
// policy and not yet replayed) pins the watermark below it — later acks
// accumulate in memory, Compact cannot reclaim the pinned segment, and a
// crash redelivers everything above the watermark. That is the price of
// never losing a delivery. Options.RetryLimit bounds that price: a record
// whose delivery keeps failing is moved to the dead-letter file by
// NoteFailure and acknowledged, unpinning the watermark (see DeadLetters).
func (l *Log) Ack(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ackLocked(seq)
}

func (l *Log) ackLocked(seq uint64) error {
	if seq <= l.acked {
		return nil
	}
	l.pending[seq] = true
	advanced := false
	for l.pending[l.acked+1] {
		delete(l.pending, l.acked+1)
		delete(l.failures, l.acked+1)
		l.acked++
		advanced = true
	}
	if !advanced {
		return nil
	}
	return l.writeAckLocked()
}

// NoteFailure counts one failed delivery attempt of the record against
// its dead-letter budget (Options.RetryLimit). When the budget is
// exhausted the record is appended to the dead-letter file and
// acknowledged — the watermark advances past it, Compact can reclaim its
// segment, and a restart's Replay no longer redelivers the suffix that
// was pinned above it. DeadLetters reads the quarantined records back for
// operator inspection; Redrive re-delivers them. With RetryLimit 0 this
// is a no-op: the record stays due forever. Failure counts are persisted
// beside the ack file on every update, so RetryLimit is exact across
// crashes — a poison record's budget resumes where it left off instead of
// resetting on restart.
func (l *Log) NoteFailure(rec *wire.Record) (deadLettered bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.RetryLimit <= 0 {
		return false, nil
	}
	if rec.Seq <= l.acked || l.pending[rec.Seq] {
		return false, nil // already delivered (or already dead-lettered)
	}
	n := l.failures[rec.Seq] + 1
	if n < l.opts.RetryLimit {
		l.failures[rec.Seq] = n
		return false, l.persistFailuresLocked()
	}
	// Quarantine before acknowledging: a crash between the two at worst
	// leaves the record both dead-lettered and due, and the next failing
	// replay attempt re-quarantines it — never a silent loss.
	if err := l.appendDeadLocked(rec); err != nil {
		return false, err
	}
	delete(l.failures, rec.Seq)
	l.dead++
	if m := l.om.Load(); m != nil {
		m.reg.Emit("outbox.dead_letter", map[string]string{
			"seq":     strconv.FormatUint(rec.Seq, 10),
			"trigger": rec.Trigger,
		})
	}
	if err := l.persistFailuresLocked(); err != nil {
		return true, err
	}
	return true, l.ackLocked(rec.Seq)
}

// persistFailuresLocked rewrites the failure-count file atomically
// (write-tmp-then-rename): one CRC frame holding (seq, count) pairs. An
// empty map removes the file. A torn or corrupt file is treated as absent
// at Open — budgets reset, which at-least-once allows; the common crash
// (between a failure and the next) preserves counts exactly.
func (l *Log) persistFailuresLocked() error {
	path := filepath.Join(l.dir, failFileName)
	if len(l.failures) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	seqs := make([]uint64, 0, len(l.failures))
	for s := range l.failures {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	payload := binary.AppendUvarint(nil, uint64(len(seqs)))
	for _, s := range seqs {
		payload = binary.AppendUvarint(payload, s)
		payload = binary.AppendUvarint(payload, uint64(l.failures[s]))
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, Frame(payload), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadFailures restores the persisted per-record failure budgets, dropping
// entries at or below the ack watermark (their records are done).
func (l *Log) loadFailures() error {
	b, err := os.ReadFile(filepath.Join(l.dir, failFileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	_, _ = ScanFrames(b, func(payload []byte) error {
		n, off := binary.Uvarint(payload)
		for i := uint64(0); i < n; i++ {
			seq, m := binary.Uvarint(payload[off:])
			if m <= 0 {
				break
			}
			off += m
			cnt, m2 := binary.Uvarint(payload[off:])
			if m2 <= 0 {
				break
			}
			off += m2
			if seq > l.acked {
				l.failures[seq] = int(cnt)
			}
		}
		return nil
	})
	return nil
}

func (l *Log) appendDeadLocked(rec *wire.Record) error {
	if l.deadF == nil {
		f, err := os.OpenFile(filepath.Join(l.dir, deadFileName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.deadF = f
	}
	frame := encodeFrame(rec)
	if _, err := l.deadF.Write(frame); err != nil {
		return err
	}
	l.deadBytes += int64(len(frame))
	if l.opts.Sync {
		return l.deadF.Sync()
	}
	return nil
}

// DeadLetters reads back every quarantined record in dead-letter order.
func (l *Log) DeadLetters() ([]*wire.Record, error) {
	b, err := os.ReadFile(filepath.Join(l.dir, deadFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*wire.Record
	_, err = forEachFrame(b, func(payload []byte) error {
		rec, err := wire.Decode(payload)
		if err != nil {
			return fmt.Errorf("outbox: dead-letter file: %w", err)
		}
		out = append(out, rec)
		return nil
	})
	return out, err
}

// Redrive re-delivers the quarantined records through sink in dead-letter
// order, completing the operator loop that DeadLetters starts. Each
// accepted record is removed from dead.log and its failure budget reset;
// a sink error stops the redrive at the failing record, which stays
// quarantined (with the suffix behind it) for the next attempt. On full
// success dead.log is truncated away. The rewrite is atomic
// (write-tmp-then-rename), so a kill during Redrive leaves either the old
// quarantine set or the pruned one — re-delivering a record twice at
// worst, the at-least-once contract.
func (l *Log) Redrive(sink Sink) (redelivered int, err error) {
	if sink == nil {
		return 0, fmt.Errorf("outbox: Redrive requires a sink")
	}
	recs, err := l.DeadLetters()
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	var sinkErr error
	for _, rec := range recs {
		if derr := sink.Deliver(rec); derr != nil {
			sinkErr = fmt.Errorf("outbox: redrive of record %d (trigger %s): %w", rec.Seq, rec.Trigger, derr)
			break
		}
		redelivered++
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Keep the undelivered suffix plus anything quarantined since the
	// snapshot was read (NoteFailure appends under the lock we now hold).
	keep := append([]*wire.Record(nil), recs[redelivered:]...)
	if all, rerr := l.DeadLetters(); rerr == nil && len(all) > len(recs) {
		keep = append(keep, all[len(recs):]...)
	}
	for _, rec := range recs[:redelivered] {
		delete(l.failures, rec.Seq)
	}
	if perr := l.persistFailuresLocked(); perr != nil && sinkErr == nil {
		sinkErr = perr
	}
	if werr := l.rewriteDeadLocked(keep); werr != nil && sinkErr == nil {
		sinkErr = werr
	}
	if m := l.om.Load(); m != nil {
		m.reg.Emit("outbox.redrive", map[string]string{
			"redelivered": strconv.Itoa(redelivered),
			"remaining":   strconv.Itoa(len(keep)),
		})
	}
	return redelivered, sinkErr
}

// rewriteDeadLocked replaces dead.log's contents with the given records
// (removing the file when none remain) via an atomic rename.
func (l *Log) rewriteDeadLocked(keep []*wire.Record) error {
	if l.deadF != nil {
		_ = l.deadF.Close()
		l.deadF = nil
	}
	path := filepath.Join(l.dir, deadFileName)
	if len(keep) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		l.dead = 0
		l.deadBytes = 0
		return nil
	}
	var buf []byte
	for _, rec := range keep {
		buf = append(buf, encodeFrame(rec)...)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	l.dead = int64(len(keep))
	l.deadBytes = int64(len(buf))
	return nil
}

func (l *Log) writeAckLocked() error {
	if l.ackF == nil {
		f, err := os.OpenFile(filepath.Join(l.dir, ackFileName), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		l.ackF = f
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], l.acked)
	if _, err := l.ackF.WriteAt(b[:], 0); err != nil {
		return err
	}
	if l.opts.Sync {
		return l.ackF.Sync()
	}
	return nil
}

// Acked returns the acknowledged watermark: every record with seq <= the
// returned value has been delivered.
func (l *Log) Acked() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked
}

// NextSeq returns the sequence number the next append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	disk := l.deadBytes
	for _, b := range l.segBytes {
		disk += b
	}
	return Stats{Appended: l.appended, Acked: l.acked, NextSeq: l.nextSeq, Segments: len(l.segs), DeadLetters: l.dead, DiskBytes: disk}
}

// Records reads back every record with seq >= from, in sequence order,
// decoding through the wire codec (the same path Replay uses).
func (l *Log) Records(from uint64) ([]*wire.Record, error) {
	var out []*wire.Record
	err := l.visit(func(rec *wire.Record) error {
		if rec.Seq >= from {
			out = append(out, rec)
		}
		return nil
	})
	return out, err
}

// visit decodes every record of every segment in order. It snapshots the
// segment list under the lock but reads files unlocked: segments are
// append-only, and visit tolerates a frame appended mid-read (it simply
// includes it).
func (l *Log) visit(fn func(*wire.Record) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segs...)
	l.mu.Unlock()
	for _, first := range segs {
		b, err := os.ReadFile(l.segPath(first))
		if os.IsNotExist(err) {
			// A concurrent Compact removed the segment; by Compact's
			// precondition every record in it was acknowledged, so a
			// Replay/Records pass would have skipped them anyway.
			continue
		}
		if err != nil {
			return err
		}
		if _, err := forEachFrame(b, func(payload []byte) error {
			rec, err := wire.Decode(payload)
			if err != nil {
				return fmt.Errorf("outbox: segment %d: %w", first, err)
			}
			return fn(rec)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Replay re-drives every unacknowledged record through the sink in
// sequence order, acknowledging each one the sink accepts, and returns the
// number delivered. Log order preserves per-trigger append order, so a
// partition-keyed sink observes per-trigger FIFO exactly as live delivery
// would. A sink error counts against the record's dead-letter budget
// (Options.RetryLimit): a record whose budget is exhausted moves to the
// dead-letter file, the watermark advances past it, and the replay
// CONTINUES with the suffix it was pinning. A record still within budget
// stops the replay as before (everything before it stays acknowledged; it
// and everything after remain due), so a restarted consumer resumes where
// it failed — and a poison record stops it at most RetryLimit times, ever.
func (l *Log) Replay(sink Sink) (int, error) {
	l.mu.Lock()
	acked := l.acked
	pending := make(map[uint64]bool, len(l.pending))
	for s := range l.pending {
		pending[s] = true
	}
	l.mu.Unlock()
	delivered := 0
	err := l.visit(func(rec *wire.Record) error {
		if rec.Seq <= acked || pending[rec.Seq] {
			return nil
		}
		if err := sink.Deliver(rec); err != nil {
			dl, dlErr := l.NoteFailure(rec)
			if dlErr != nil {
				// The quarantine itself failed (e.g. dead.log unwritable):
				// surface THAT, or the operator would never learn why the
				// watermark stays pinned despite the retry budget.
				return fmt.Errorf("outbox: replay of record %d (trigger %s): %v (dead-letter quarantine failed: %w)",
					rec.Seq, rec.Trigger, err, dlErr)
			}
			if dl {
				return nil // quarantined; the suffix above it is unpinned
			}
			return fmt.Errorf("outbox: replay of record %d (trigger %s): %w", rec.Seq, rec.Trigger, err)
		}
		delivered++
		if m := l.om.Load(); m != nil {
			m.replayed.Inc()
		}
		return l.Ack(rec.Seq)
	})
	return delivered, err
}

// Compact removes segment files whose every record is acknowledged. The
// active segment is never removed. With Options.AutoCompactLag set,
// appends run this automatically once the watermark lags far enough
// behind the log head.
func (l *Log) Compact() (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log) compactLocked() (removed int, err error) {
	for len(l.segs) > 1 {
		// The first record of the next segment bounds this segment's last.
		if l.segs[1] > l.acked+1 {
			break
		}
		if err := os.Remove(l.segPath(l.segs[0])); err != nil {
			return removed, err
		}
		delete(l.segBytes, l.segs[0])
		l.segs = l.segs[1:]
		removed++
	}
	return removed, nil
}

// Close flushes and closes the log's file handles. Appends after Close
// fail; a closed log can be re-opened with Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil && first == nil {
			first = err
		}
		if err := l.seg.Close(); err != nil && first == nil {
			first = err
		}
		l.seg = nil
	}
	if l.ackF != nil {
		if err := l.ackF.Sync(); err != nil && first == nil {
			first = err
		}
		if err := l.ackF.Close(); err != nil && first == nil {
			first = err
		}
		l.ackF = nil
	}
	if l.deadF != nil {
		if err := l.deadF.Sync(); err != nil && first == nil {
			first = err
		}
		if err := l.deadF.Close(); err != nil && first == nil {
			first = err
		}
		l.deadF = nil
	}
	return first
}

var _ io.Closer = (*Log)(nil)
