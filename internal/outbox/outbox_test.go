package outbox

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quark/internal/reldb"
	"quark/internal/wire"
	"quark/internal/xdm"
)

func rec(trigger string, i int) *wire.Record {
	return &wire.Record{
		Trigger: trigger,
		Event:   reldb.EvUpdate,
		New:     xdm.Elem("n", xdm.Attr("i", fmt.Sprint(i))),
		Args:    []xdm.Value{xdm.Int(int64(i))},
	}
}

func TestAppendAssignsContiguousSeqs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		seq, err := l.Append(rec("t", i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
	recs, err := l.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read back %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Args[0].AsInt() != int64(i+1) {
			t.Errorf("record %d: seq=%d args=%v", i, r.Seq, r.Args)
		}
	}
}

func TestAckWatermarkContiguous(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 4; i++ {
		if _, err := l.Append(rec("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order acks: watermark must not jump over the gap at 1.
	must := func(seq uint64) {
		if err := l.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	must(3)
	must(2)
	if got := l.Acked(); got != 0 {
		t.Fatalf("watermark advanced over unacked record 1: %d", got)
	}
	must(1)
	if got := l.Acked(); got != 3 {
		t.Fatalf("watermark = %d, want 3 after gap closed", got)
	}
	must(4)
	if got := l.Acked(); got != 4 {
		t.Fatalf("watermark = %d, want 4", got)
	}
}

// TestKillAndRestart is the crash scenario of the durability contract: a
// producer appends deliveries, some are acknowledged, and the process dies
// with the rest still queued. A fresh Open of the same directory must
// replay exactly the unacknowledged records, in order, through a
// partitioned sink with per-trigger FIFO intact and nothing lost.
func TestKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	triggers := []string{"alpha", "beta", "gamma"}
	const perTrigger = 10
	for i := 0; i < perTrigger; i++ {
		for _, tr := range triggers {
			if _, err := l.Append(rec(tr, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The consumer got through the first 7 records before the "crash".
	for seq := uint64(1); seq <= 7; seq++ {
		if err := l.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the Log without closing (handles leak in-test; the
	// files are what a killed process leaves behind).

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer l2.Close()
	if got := l2.Acked(); got != 7 {
		t.Fatalf("restart lost the watermark: %d", got)
	}
	sink := NewPartitionedSink(2)
	n, err := l2.Replay(sink)
	if err != nil {
		t.Fatal(err)
	}
	want := len(triggers)*perTrigger - 7
	if n != want {
		t.Fatalf("replayed %d records, want %d", n, want)
	}
	if sink.Total() != want {
		t.Fatalf("sink holds %d records, want %d", sink.Total(), want)
	}
	// No delivery lost and per-trigger FIFO preserved: each trigger's
	// replayed records are its unacked suffix in ascending order.
	for _, tr := range triggers {
		recs := sink.ByTrigger(tr)
		lastSeq := uint64(0)
		for _, r := range recs {
			if r.Seq <= lastSeq {
				t.Errorf("trigger %s: out-of-order replay: %d after %d", tr, r.Seq, lastSeq)
			}
			lastSeq = r.Seq
		}
	}
	if got := l2.Acked(); got != uint64(len(triggers)*perTrigger) {
		t.Fatalf("replay did not acknowledge delivered records: watermark %d", got)
	}
	// A second replay delivers nothing: at-least-once converges.
	if n, err := l2.Replay(sink); err != nil || n != 0 {
		t.Fatalf("second replay delivered %d records (err %v), want 0", n, err)
	}
}

func TestReplayStopsAtSinkError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(rec("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	failing := SinkFunc(func(r *wire.Record) error {
		calls++
		if r.Seq == 3 {
			return fmt.Errorf("broker down")
		}
		return nil
	})
	n, err := l.Replay(failing)
	if err == nil {
		t.Fatal("replay swallowed the sink error")
	}
	if n != 2 || l.Acked() != 2 {
		t.Fatalf("delivered %d, watermark %d; want 2, 2", n, l.Acked())
	}
	// Resume: the failed record and its successors are still due.
	var got []uint64
	ok := SinkFunc(func(r *wire.Record) error {
		got = append(got, r.Seq)
		return nil
	})
	if _, err := l.Replay(ok); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("resume replayed %v, want [3 4 5]", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(rec("t", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop half of the last record's bytes, as a crash
	// mid-write would.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	recs, err := l2.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn log yields %d records, want 2", len(recs))
	}
	// The torn record's sequence is reused by the next append: it was
	// never durable, so it never existed.
	seq, err := l2.Append(rec("t", 99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("append after torn tail got seq %d, want 3", seq)
	}
}

func TestSegmentRotationAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		if _, err := l.Append(rec("rotate", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	// Re-open across segments: sequence continues and all records read.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records across segments, want %d", len(recs), n)
	}
	for seq := uint64(1); seq <= n; seq++ {
		if err := l2.Ack(seq); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := l2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compact removed nothing despite a fully acked log")
	}
	if got := l2.Stats().Segments; got != 1 {
		t.Fatalf("segments after compact = %d, want 1 (active)", got)
	}
	// Appends continue after compaction, and reads skip the removed range.
	seq, err := l2.Append(rec("rotate", n+1))
	if err != nil {
		t.Fatal(err)
	}
	if seq != n+1 {
		t.Fatalf("seq after compact = %d, want %d", seq, n+1)
	}
}

func TestFileSinkEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewFileSink(&buf)
	for i := 1; i <= 3; i++ {
		r := rec("json", i)
		r.Seq = uint64(i)
		if err := s.Deliver(r); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		var r wire.Record
		if err := r.UnmarshalJSON([]byte(line)); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.Trigger != "json" || r.Seq != uint64(i+1) {
			t.Errorf("line %d decoded to trigger=%s seq=%d", i, r.Trigger, r.Seq)
		}
	}
}

func TestPartitionedSinkKeyStability(t *testing.T) {
	s := NewPartitionedSink(4)
	for i := 0; i < 50; i++ {
		tr := fmt.Sprintf("t%d", i%5)
		if err := s.Deliver(rec(tr, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every record of one trigger landed in that trigger's partition.
	seen := 0
	for i := 0; i < 5; i++ {
		tr := fmt.Sprintf("t%d", i)
		part := s.PartitionFor(tr)
		for p := 0; p < s.Partitions(); p++ {
			for _, r := range s.Partition(p) {
				if r.Trigger == tr {
					if p != part {
						t.Errorf("trigger %s record in partition %d, key says %d", tr, p, part)
					}
					seen++
				}
			}
		}
	}
	if seen != 50 {
		t.Fatalf("accounted for %d records, want 50", seen)
	}
}
