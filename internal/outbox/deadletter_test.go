package outbox

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/wire"
)

// poisonSink fails every delivery of the poison trigger and records the
// rest.
type poisonSink struct {
	poison    string
	delivered []uint64
	failures  int
}

func (s *poisonSink) Deliver(r *wire.Record) error {
	if r.Trigger == s.poison {
		s.failures++
		return fmt.Errorf("poison record %d", r.Seq)
	}
	s.delivered = append(s.delivered, r.Seq)
	return nil
}

// TestDeadLetterUnpinsWatermark: a permanently failing record is moved to
// the dead-letter file once its retry budget is spent, the watermark
// advances past it, and the suffix above it replays.
func TestDeadLetterUnpinsWatermark(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{RetryLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		trig := "ok"
		if i == 2 {
			trig = "poison"
		}
		if _, err := l.Append(rec(trig, i)); err != nil {
			t.Fatal(err)
		}
	}
	sink := &poisonSink{poison: "poison"}
	// Attempts 1 and 2 stop at the poison record (budget not yet spent);
	// record 1 delivers on the first pass and is skipped afterwards.
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := l.Replay(sink); err == nil {
			t.Fatalf("replay attempt %d: expected the poison record to stop the pass", attempt)
		}
		if got := l.Acked(); got != 1 {
			t.Fatalf("replay attempt %d: watermark = %d, want 1 (pinned)", attempt, got)
		}
	}
	// Attempt 3 exhausts the budget: the record dead-letters, the pass
	// continues, and the whole log acknowledges.
	n, err := l.Replay(sink)
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	if n != 3 { // records 3, 4, 5
		t.Errorf("final replay delivered %d, want 3", n)
	}
	if got := l.Acked(); got != 5 {
		t.Errorf("watermark = %d, want 5 (poison record acknowledged via dead-letter)", got)
	}
	if sink.failures != 3 {
		t.Errorf("poison record was attempted %d times, want exactly RetryLimit=3", sink.failures)
	}
	dead, err := l.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0].Seq != 2 || dead[0].Trigger != "poison" {
		t.Fatalf("dead letters = %+v, want exactly record 2", dead)
	}
	if st := l.Stats(); st.DeadLetters != 1 {
		t.Errorf("Stats.DeadLetters = %d, want 1", st.DeadLetters)
	}
}

// TestDeadLetterKillAndRestart is the acceptance scenario: a poison
// record pins the watermark, the process dies, and after dead-lettering
// on the restarted consumer a SECOND restart redelivers nothing — the
// suffix above the poison record is no longer replayed.
func TestDeadLetterKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		trig := "ok"
		if i == 3 {
			trig = "poison"
		}
		if _, err := l.Append(rec(trig, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Ack(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // crash with 2..6 due
		t.Fatal(err)
	}

	// Restarted consumer with a bounded retry budget.
	l, err = Open(dir, Options{RetryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink := &poisonSink{poison: "poison"}
	if _, err := l.Replay(sink); err == nil {
		t.Fatal("first replay: poison record within budget must stop the pass")
	}
	n, err := l.Replay(sink)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if n != 3 { // 4, 5, 6 (2 delivered on the first pass)
		t.Errorf("second replay delivered %d, want 3", n)
	}
	if got := l.Acked(); got != 6 {
		t.Fatalf("watermark = %d, want 6", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: nothing is due — the poison record no longer pins
	// the suffix, and the dead-letter file survived.
	l, err = Open(dir, Options{RetryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fresh := &poisonSink{poison: "poison"}
	n, err = l.Replay(fresh)
	if err != nil {
		t.Fatalf("post-restart replay: %v", err)
	}
	if n != 0 || fresh.failures != 0 {
		t.Errorf("post-restart replay redelivered %d records (%d poison attempts), want none", n, fresh.failures)
	}
	dead, err := l.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0].Seq != 3 {
		t.Fatalf("dead letters after restart = %+v, want record 3", dead)
	}
	if st := l.Stats(); st.DeadLetters != 1 {
		t.Errorf("Stats.DeadLetters after restart = %d, want 1", st.DeadLetters)
	}
}

// TestAutoCompactOnAppend: with AutoCompactLag set, appends reclaim
// fully-acknowledged segments without any manual Compact call, keeping
// the on-disk segment count bounded where a manual-only log grows without
// limit.
func TestAutoCompactOnAppend(t *testing.T) {
	const n = 12
	// Control: manual-only compaction accumulates one tiny segment per
	// append (SegmentBytes 1 rotates every record).
	ctl, err := Open(t.TempDir(), Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	// Under test: a lag-3 policy.
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1, AutoCompactLag: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= n; i++ {
		for _, lg := range []*Log{ctl, l} {
			if _, err := lg.Append(rec("t", i)); err != nil {
				t.Fatal(err)
			}
			if err := lg.Ack(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := ctl.Stats(); st.Segments != n {
		t.Fatalf("control grew %d segments, want %d (manual-only must not compact)", st.Segments, n)
	}
	st := l.Stats()
	if st.Segments > 4 {
		t.Fatalf("auto-compacting log holds %d segments after %d acked appends, want a bounded handful", st.Segments, n)
	}
	// The unacked tail is still fully readable after compaction.
	if _, err := l.Append(rec("t", n+1)); err != nil {
		t.Fatal(err)
	}
	recs, err := l.Records(uint64(n + 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != uint64(n+1) {
		t.Fatalf("post-compact read-back = %+v", recs)
	}
}

// TestAppendBatchGroupCommit: one AppendBatch call assigns contiguous
// sequences in slice order, survives a reopen (scan compatibility), and
// interleaves correctly with single appends.
func TestAppendBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec("a", 1)); err != nil {
		t.Fatal(err)
	}
	batch := []*wire.Record{rec("a", 2), rec("b", 3), rec("a", 4)}
	first, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first seq = %d, want 2", first)
	}
	for i, r := range batch {
		if r.Seq != uint64(2+i) {
			t.Errorf("batch record %d assigned seq %d", i, r.Seq)
		}
	}
	if _, err := l.Append(rec("b", 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextSeq(); got != 6 {
		t.Fatalf("reopened NextSeq = %d, want 6", got)
	}
	recs, err := l.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range recs {
		got = append(got, fmt.Sprintf("%d:%s:%d", r.Seq, r.Trigger, r.Args[0].AsInt()))
	}
	want := "1:a:1 2:a:2 3:b:3 4:a:4 5:b:5"
	if strings.Join(got, " ") != want {
		t.Fatalf("read-back = %q, want %q", strings.Join(got, " "), want)
	}

	if _, err := l.AppendBatch(nil); err == nil {
		t.Error("empty AppendBatch must error")
	}
}
