package outbox

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"quark/internal/wire"
)

// seqSink records delivered sequences and fails any listed in refuse.
type seqSink struct {
	delivered []uint64
	refuse    map[uint64]bool
}

func (s *seqSink) Deliver(r *wire.Record) error {
	if s.refuse[r.Seq] {
		return fmt.Errorf("refused %d", r.Seq)
	}
	s.delivered = append(s.delivered, r.Seq)
	return nil
}

// quarantine appends n poison records plus one good one and replays with
// RetryLimit 1 so every poison record dead-letters immediately. Returns
// the log (open) and the poison sequences in log order.
func quarantine(t *testing.T, dir string, n int) (*Log, []uint64) {
	t.Helper()
	l, err := Open(dir, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 1; i <= n; i++ {
		seq, err := l.Append(rec("poison", i))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if _, err := l.Append(rec("ok", n+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(&poisonSink{poison: "poison"}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := l.Acked(); got != uint64(n+1) {
		t.Fatalf("watermark = %d, want %d (all poison dead-lettered)", got, n+1)
	}
	return l, seqs
}

// TestRedriveDeliversInOrder: Redrive re-delivers every quarantined record
// in dead-letter order and empties the quarantine on full success.
func TestRedriveDeliversInOrder(t *testing.T) {
	l, seqs := quarantine(t, t.TempDir(), 3)
	defer l.Close()
	sink := &seqSink{}
	n, err := l.Redrive(sink)
	if err != nil {
		t.Fatalf("redrive: %v", err)
	}
	if n != 3 {
		t.Fatalf("redelivered %d, want 3", n)
	}
	for i, seq := range seqs {
		if sink.delivered[i] != seq {
			t.Fatalf("redrive order = %v, want %v", sink.delivered, seqs)
		}
	}
	dead, err := l.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Fatalf("quarantine not emptied: %+v", dead)
	}
	if st := l.Stats(); st.DeadLetters != 0 {
		t.Errorf("Stats.DeadLetters = %d, want 0", st.DeadLetters)
	}
	if _, err := os.Stat(filepath.Join(l.Dir(), deadFileName)); !os.IsNotExist(err) {
		t.Errorf("dead.log still present after full redrive")
	}
}

// TestRedriveKillAndRestart is the acceptance scenario: a redrive that
// stops partway prunes exactly the delivered prefix, the process dies,
// and the restarted log still holds — and can redrive — the undelivered
// suffix.
func TestRedriveKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	l, seqs := quarantine(t, dir, 3)
	// The sink accepts the first record and refuses the second: the
	// redrive stops there, keeping records 2 and 3 quarantined.
	sink := &seqSink{refuse: map[uint64]bool{seqs[1]: true}}
	n, err := l.Redrive(sink)
	if err == nil {
		t.Fatal("partial redrive must surface the sink error")
	}
	if n != 1 {
		t.Fatalf("partial redrive delivered %d, want 1", n)
	}
	if err := l.Close(); err != nil { // crash after the partial redrive
		t.Fatal(err)
	}

	l, err = Open(dir, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	dead, err := l.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 2 || dead[0].Seq != seqs[1] || dead[1].Seq != seqs[2] {
		t.Fatalf("restarted quarantine = %+v, want records %v", dead, seqs[1:])
	}
	fresh := &seqSink{}
	n, err = l.Redrive(fresh)
	if err != nil {
		t.Fatalf("post-restart redrive: %v", err)
	}
	if n != 2 || fresh.delivered[0] != seqs[1] || fresh.delivered[1] != seqs[2] {
		t.Fatalf("post-restart redrive delivered %v, want %v", fresh.delivered, seqs[1:])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Third incarnation: the quarantine stayed empty across the restart.
	l, err = Open(dir, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if dead, _ := l.DeadLetters(); len(dead) != 0 {
		t.Fatalf("quarantine resurrected after clean redrive: %+v", dead)
	}
	if st := l.Stats(); st.DeadLetters != 0 {
		t.Errorf("Stats.DeadLetters = %d, want 0", st.DeadLetters)
	}
}

// TestFailureBudgetSurvivesCrash: RetryLimit is exact across restarts —
// two failed attempts, a crash, and one more attempt dead-letter a
// RetryLimit=3 record; the budget does not reset to zero on reopen.
func TestFailureBudgetSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{RetryLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec("poison", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec("ok", 2)); err != nil {
		t.Fatal(err)
	}
	sink := &poisonSink{poison: "poison"}
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := l.Replay(sink); err == nil {
			t.Fatalf("attempt %d: expected the poison record to stop the pass", attempt)
		}
	}
	if sink.failures != 2 {
		t.Fatalf("pre-crash attempts = %d, want 2", sink.failures)
	}
	if err := l.Close(); err != nil { // crash with 2 of 3 budget spent
		t.Fatal(err)
	}

	l, err = Open(dir, Options{RetryLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fresh := &poisonSink{poison: "poison"}
	n, err := l.Replay(fresh)
	if err != nil {
		t.Fatalf("post-crash replay: %v", err)
	}
	if fresh.failures != 1 {
		t.Fatalf("post-crash attempts = %d, want exactly 1 (budget persisted, not reset)", fresh.failures)
	}
	if n != 1 { // record 2 delivers once the poison record dead-letters
		t.Errorf("post-crash replay delivered %d, want 1", n)
	}
	if got := l.Acked(); got != 2 {
		t.Errorf("watermark = %d, want 2", got)
	}
	dead, err := l.DeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0].Seq != 1 {
		t.Fatalf("dead letters = %+v, want record 1", dead)
	}
	// The spent budget is released once the record is quarantined.
	if _, err := os.Stat(filepath.Join(dir, failFileName)); !os.IsNotExist(err) {
		t.Errorf("failure-budget file lingers after quarantine")
	}
}

// TestFailureBudgetTornFile: a torn budget file is treated as absent at
// Open — budgets reset (allowed by at-least-once), the log still opens.
func TestFailureBudgetTornFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{RetryLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec("poison", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(&poisonSink{poison: "poison"}); err == nil {
		t.Fatal("expected replay to fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, failFileName)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b[:len(b)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{RetryLimit: 3})
	if err != nil {
		t.Fatalf("open over torn budget file: %v", err)
	}
	defer l.Close()
	// The budget reset: the record gets a full 3 attempts again.
	sink := &poisonSink{poison: "poison"}
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := l.Replay(sink); err == nil {
			t.Fatalf("attempt %d: pass should still stop (budget reset to 0)", attempt)
		}
	}
	if _, err := l.Replay(sink); err != nil {
		t.Fatalf("third attempt should dead-letter: %v", err)
	}
	if sink.failures != 3 {
		t.Errorf("post-reset attempts = %d, want 3", sink.failures)
	}
}
