package outbox

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"quark/internal/wire"
)

// Sink consumes invocation records. Implementations must be safe for
// concurrent Deliver calls from distinct triggers; the engine guarantees
// records of the same trigger are delivered one at a time, in order.
type Sink interface {
	Deliver(rec *wire.Record) error
}

// SinkFunc adapts an in-process function to the Sink interface.
type SinkFunc func(*wire.Record) error

// Deliver implements Sink.
func (f SinkFunc) Deliver(rec *wire.Record) error { return f(rec) }

// FileSink writes one JSON line per record to w — the file/pipe consumer
// shape. Each line is a self-describing wire.Record, so a downstream
// process (tail -f, jq, another language) needs no live engine to act on
// the stream.
type FileSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewFileSink wraps w. The sink serializes writes, so w needs no locking
// of its own.
func NewFileSink(w io.Writer) *FileSink { return &FileSink{w: w} }

// Deliver implements Sink.
func (s *FileSink) Deliver(rec *wire.Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.w.Write(b)
	return err
}

// PartitionedSink is a NATS/Kafka-shaped in-memory topic: a fixed number
// of ordered partitions, records routed by partition key = trigger name.
// Same key -> same partition and appends within a partition are ordered,
// so per-trigger FIFO survives the fan-out — the property a real broker
// provides with keyed messages, mocked here for tests, demos, and the
// benchrunner without a broker dependency.
type PartitionedSink struct {
	parts []partition
	// FailFor, when non-nil, makes Deliver reject records whose trigger it
	// reports true for — crash/outage injection for replay tests.
	FailFor func(trigger string) bool
}

type partition struct {
	mu   sync.Mutex
	recs []*wire.Record
}

// NewPartitionedSink creates a sink with n partitions (minimum 1).
func NewPartitionedSink(n int) *PartitionedSink {
	if n < 1 {
		n = 1
	}
	return &PartitionedSink{parts: make([]partition, n)}
}

// PartitionFor returns the partition index the key routes to.
func (s *PartitionedSink) PartitionFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.parts)))
}

// Deliver implements Sink, appending the record to its key's partition.
func (s *PartitionedSink) Deliver(rec *wire.Record) error {
	if s.FailFor != nil && s.FailFor(rec.Trigger) {
		return fmt.Errorf("outbox: partitioned sink rejecting trigger %s", rec.Trigger)
	}
	p := &s.parts[s.PartitionFor(rec.Trigger)]
	p.mu.Lock()
	p.recs = append(p.recs, rec)
	p.mu.Unlock()
	return nil
}

// Partition returns a snapshot of one partition's records in append order.
func (s *PartitionedSink) Partition(i int) []*wire.Record {
	p := &s.parts[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*wire.Record(nil), p.recs...)
}

// Partitions returns the partition count.
func (s *PartitionedSink) Partitions() int { return len(s.parts) }

// Total returns the number of records across all partitions.
func (s *PartitionedSink) Total() int {
	n := 0
	for i := range s.parts {
		p := &s.parts[i]
		p.mu.Lock()
		n += len(p.recs)
		p.mu.Unlock()
	}
	return n
}

// ByTrigger returns every record of one trigger in delivery order.
func (s *PartitionedSink) ByTrigger(trigger string) []*wire.Record {
	var out []*wire.Record
	for _, rec := range s.Partition(s.PartitionFor(trigger)) {
		if rec.Trigger == trigger {
			out = append(out, rec)
		}
	}
	return out
}
