package outbox

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"quark/internal/wire"
)

// TestCompactConcurrentAppendAck stresses Compact racing live producers
// and consumers — the combination the sequential Compact tests never
// exercised. Tiny segments force constant rotation, acks arrive shuffled
// (out of order within windows, like a multi-worker dispatcher), and a
// compactor loops the whole time. Invariants checked throughout and at
// quiesce:
//
//   - the acknowledged watermark only moves forward;
//   - every record above the watermark is still readable (Compact must
//     never remove an unacknowledged record);
//   - at quiesce the watermark covers everything, a final Compact leaves
//     only the active segment's tail, and Records finds nothing undone.
//
// Run under -race this doubles as the locking proof for the
// Append/Ack/Compact/visit quartet.
func TestCompactConcurrentAppendAck(t *testing.T) {
	const total = 1500
	l, err := Open(t.TempDir(), Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	seqs := make(chan uint64, total)
	done := make(chan struct{})
	var wg, compWG sync.WaitGroup

	// Producer: appends everything, handing sequences to the acker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(seqs)
		for i := 0; i < total; i++ {
			seq, err := l.Append(rec("t", i))
			if err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			seqs <- seq
		}
	}()

	// Acker: acknowledges in shuffled windows, so the watermark advances
	// in bursts while later acks are held out of order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		var window []uint64
		flush := func() {
			rng.Shuffle(len(window), func(i, j int) { window[i], window[j] = window[j], window[i] })
			for _, s := range window {
				if err := l.Ack(s); err != nil {
					t.Errorf("ack %d: %v", s, err)
				}
			}
			window = window[:0]
		}
		for s := range seqs {
			window = append(window, s)
			if len(window) >= 16 {
				flush()
			}
		}
		flush()
	}()

	// Compactor: loops until producer and acker finish, checking the
	// invariants after every pass.
	compWG.Add(1)
	go func() {
		defer compWG.Done()
		var lastAcked uint64
		for pass := 0; ; pass++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := l.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			acked := l.Acked()
			if acked < lastAcked {
				t.Errorf("watermark moved backward: %d -> %d", lastAcked, acked)
				return
			}
			lastAcked = acked
			if pass%4 == 0 {
				// Everything above the watermark must still be readable: a
				// record Compact lost would break crash replay. (Sampled —
				// a full segment read-back every pass would dominate the
				// schedule and starve the writers of interesting overlap.)
				recs, err := l.Records(acked + 1)
				if err != nil {
					t.Errorf("records above watermark: %v", err)
					return
				}
				next := l.NextSeq()
				// recs may include records appended after the snapshot of
				// acked; the invariant that never flakes is sequence
				// sanity and decodability.
				for _, r := range recs {
					if r.Seq <= acked || r.Seq >= next+1 {
						t.Errorf("read-back record %d outside (%d, %d]", r.Seq, acked, next)
						return
					}
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait() // producer + acker (compactor still looping)
	close(done)
	compWG.Wait()

	if acked := l.Acked(); acked != total {
		t.Fatalf("quiesced watermark = %d, want %d", acked, total)
	}
	removed, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 1 {
		t.Errorf("final Compact (removed %d) left %d segments, want 1 (active)", removed, st.Segments)
	}
	if st.NextSeq != total+1 || st.Appended != total {
		t.Errorf("stats after quiesce: %+v", st)
	}
	recs, err := l.Records(l.Acked() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("%d records still unacknowledged after quiesce", len(recs))
	}
	// A replay over the fully-acked log must deliver nothing.
	n, err := l.Replay(SinkFunc(func(*wire.Record) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replay redelivered %d records on a fully-acked log", n)
	}
}
