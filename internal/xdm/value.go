// Package xdm implements the data model shared by every layer of the
// system: relational column values, XQGM tuple values, and XML nodes.
// It is a small, self-contained analogue of the XQuery 1.0 data model
// restricted to the types the paper's XQuery subset (Appendix D) needs.
package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNode holds a single XML node; KindSeq holds
// an ordered sequence of values (typically nodes produced by aggXMLFrag).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindNode
	KindSeq
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindNode:
		return "node"
	case KindSeq:
		return "sequence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed value. The zero Value is Null. Values are
// immutable by convention: operations return new Values.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	node *Node
	seq  []Value
}

// Null is the null (absent) value.
var Null = Value{kind: KindNull}

// True and False are the boolean constants.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// Bool returns a boolean Value.
func Bool(b bool) Value {
	if b {
		return True
	}
	return False
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// NodeVal wraps an XML node as a Value. A nil node yields Null.
func NodeVal(n *Node) Value {
	if n == nil {
		return Null
	}
	return Value{kind: KindNode, node: n}
}

// Seq returns a sequence Value over vs. The slice is not copied.
func Seq(vs []Value) Value { return Value{kind: KindSeq, seq: vs} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean content; callers must check Kind first.
func (v Value) AsBool() bool { return v.b }

// AsInt returns the integer content, converting floats by truncation.
func (v Value) AsInt() int64 {
	if v.kind == KindFloat {
		return int64(v.f)
	}
	return v.i
}

// AsFloat returns the numeric content as float64.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string content; for non-strings it returns the
// canonical lexical form (like XQuery fn:string).
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	default:
		return v.Lexical()
	}
}

// AsNode returns the node content or nil.
func (v Value) AsNode() *Node {
	if v.kind != KindNode {
		return nil
	}
	return v.node
}

// AsSeq returns the contained sequence. A single node or scalar is treated
// as a singleton sequence; Null is the empty sequence.
func (v Value) AsSeq() []Value {
	switch v.kind {
	case KindSeq:
		return v.seq
	case KindNull:
		return nil
	default:
		return []Value{v}
	}
}

// SeqLen returns the length of the value viewed as a sequence.
func (v Value) SeqLen() int {
	switch v.kind {
	case KindSeq:
		return len(v.seq)
	case KindNull:
		return 0
	default:
		return 1
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Lexical returns the canonical lexical representation used for tagging
// values into XML text and for string comparison of typed values.
func (v Value) Lexical() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			// Render integral floats the way a DECIMAL column would.
			return strconv.FormatFloat(v.f, 'f', 2, 64)
		}
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindNode:
		return v.node.Serialize(false)
	case KindSeq:
		var sb strings.Builder
		for _, e := range v.seq {
			sb.WriteString(e.Lexical())
		}
		return sb.String()
	default:
		return ""
	}
}

// String implements fmt.Stringer with a debugging-oriented form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return strconv.Quote(v.s)
	case KindSeq:
		parts := make([]string, len(v.seq))
		for i, e := range v.seq {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ")"
	default:
		return v.Lexical()
	}
}

// EffectiveBool computes the XQuery effective boolean value: false for
// null/empty, the value itself for bool, non-zero for numerics, non-empty
// for strings, true for any node or non-empty sequence.
func (v Value) EffectiveBool() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindNode:
		return true
	case KindSeq:
		return len(v.seq) > 0
	default:
		return false
	}
}

// Compare orders two values. Nulls sort first; values of different kinds
// are ordered by numeric promotion when both are numeric, else by their
// lexical form. Returns -1, 0, or 1.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.AsString(), b.AsString())
}

// Equal reports deep equality of two values. Node values compare by deep
// structural equality (the paper's tagger-level OLD_NODE = NEW_NODE check).
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		if a.IsNumeric() && b.IsNumeric() {
			return a.AsFloat() == b.AsFloat()
		}
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f
	case KindString:
		return a.s == b.s
	case KindNode:
		return a.node.DeepEqual(b.node)
	case KindSeq:
		if len(a.seq) != len(b.seq) {
			return false
		}
		for i := range a.seq {
			if !Equal(a.seq[i], b.seq[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Key returns a string usable as a map key that distinguishes values the
// way Equal does for scalar kinds. Node and sequence values key by their
// serialized form.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00N"
	case KindBool:
		if v.b {
			return "\x00T"
		}
		return "\x00F"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) {
			// Integral floats key identically to ints so that numeric
			// promotion in Equal matches Key-based grouping.
			return "\x00i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x00f" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case KindString:
		return "\x00s" + v.s
	case KindNode:
		return "\x00n" + v.node.Serialize(false)
	case KindSeq:
		var sb strings.Builder
		sb.WriteString("\x00q")
		for _, e := range v.seq {
			k := e.Key()
			sb.WriteString(strconv.Itoa(len(k)))
			sb.WriteByte(':')
			sb.WriteString(k)
		}
		return sb.String()
	default:
		return "\x00?"
	}
}

// TupleKey concatenates the Keys of vs into a single composite map key.
func TupleKey(vs []Value) string {
	var sb strings.Builder
	for _, v := range vs {
		k := v.Key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

// Arith applies a binary arithmetic operator to numeric values. Null
// operands yield Null (SQL semantics). Supported ops: + - * div mod.
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("xdm: arithmetic %q on non-numeric values %s, %s", op, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt && op != "div" {
		x, y := a.i, b.i
		switch op {
		case "+":
			return Int(x + y), nil
		case "-":
			return Int(x - y), nil
		case "*":
			return Int(x * y), nil
		case "mod":
			if y == 0 {
				return Null, fmt.Errorf("xdm: mod by zero")
			}
			return Int(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return Float(x + y), nil
	case "-":
		return Float(x - y), nil
	case "*":
		return Float(x * y), nil
	case "div":
		if y == 0 {
			return Null, fmt.Errorf("xdm: division by zero")
		}
		return Float(x / y), nil
	case "mod":
		if y == 0 {
			return Null, fmt.Errorf("xdm: mod by zero")
		}
		return Float(math.Mod(x, y)), nil
	default:
		return Null, fmt.Errorf("xdm: unknown arithmetic operator %q", op)
	}
}

// CompareOp evaluates a general comparison (=, !=, <, <=, >, >=) with SQL
// null semantics: any comparison involving Null is Null (returned as Null).
func CompareOp(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	var c int
	if a.kind == KindNode || b.kind == KindNode || a.kind == KindSeq || b.kind == KindSeq {
		// General comparison over sequences: true if any pair matches.
		as, bs := a.AsSeq(), b.AsSeq()
		for _, x := range as {
			for _, y := range bs {
				r, err := CompareOp(op, atomize(x), atomize(y))
				if err != nil {
					return Null, err
				}
				if r.EffectiveBool() {
					return True, nil
				}
			}
		}
		return False, nil
	}
	c = Compare(a, b)
	switch op {
	case "=":
		return Bool(c == 0), nil
	case "!=":
		return Bool(c != 0), nil
	case "<":
		return Bool(c < 0), nil
	case "<=":
		return Bool(c <= 0), nil
	case ">":
		return Bool(c > 0), nil
	case ">=":
		return Bool(c >= 0), nil
	default:
		return Null, fmt.Errorf("xdm: unknown comparison operator %q", op)
	}
}

// atomize extracts the typed value of a node (its text content, parsed as a
// number when possible), mirroring XQuery fn:data for our subset.
func atomize(v Value) Value {
	if v.kind != KindNode {
		return v
	}
	return ParseTyped(v.node.TextContent())
}

// Atomize is the exported form of atomize, applying fn:data semantics to
// nodes and mapping sequences element-wise.
func Atomize(v Value) Value {
	switch v.kind {
	case KindNode:
		return atomize(v)
	case KindSeq:
		out := make([]Value, len(v.seq))
		for i, e := range v.seq {
			out[i] = Atomize(e)
		}
		return Seq(out)
	default:
		return v
	}
}

// ParseTyped parses s into an Int or Float when it is a valid number, else
// returns it as a string value.
func ParseTyped(s string) Value {
	t := strings.TrimSpace(s)
	if t == "" {
		return Str(s)
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return Float(f)
	}
	return Str(s)
}
