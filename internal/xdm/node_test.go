package xdm

import (
	"strings"
	"testing"
)

func catalogFixture() *Node {
	return Elem("catalog",
		Elem("product", Attr("name", "CRT 15"),
			Elem("vendor",
				Elem("pid", TextNd("P1")),
				Elem("vid", TextNd("Amazon")),
				Elem("price", TextNd("100.00"))),
			Elem("vendor",
				Elem("pid", TextNd("P1")),
				Elem("vid", TextNd("Bestbuy")),
				Elem("price", TextNd("120.00")))),
	)
}

func TestElemConstruction(t *testing.T) {
	n := catalogFixture()
	if n.Name != "catalog" || n.Kind != ElementNode {
		t.Fatal("root element wrong")
	}
	prods := n.ChildElements("product")
	if len(prods) != 1 {
		t.Fatalf("want 1 product, got %d", len(prods))
	}
	if v, ok := prods[0].Attribute("name"); !ok || v != "CRT 15" {
		t.Errorf("attribute name = %q, %v", v, ok)
	}
	if _, ok := prods[0].Attribute("missing"); ok {
		t.Error("missing attribute reported present")
	}
	if len(prods[0].ChildElements("vendor")) != 2 {
		t.Error("want 2 vendors")
	}
	if len(prods[0].ChildElements("*")) != 2 {
		t.Error("wildcard children")
	}
}

func TestAttrRoutedToAttrs(t *testing.T) {
	n := Elem("e", Attr("a", "1"), TextNd("x"))
	if len(n.Attrs) != 1 || len(n.Children) != 1 {
		t.Fatalf("attrs=%d children=%d", len(n.Attrs), len(n.Children))
	}
	n.AppendChild(Attr("b", "2"))
	if len(n.Attrs) != 2 {
		t.Error("AppendChild should route attribute nodes to Attrs")
	}
}

func TestDescendants(t *testing.T) {
	n := catalogFixture()
	var got []*Node
	got = n.Descendants("vendor", got)
	if len(got) != 2 {
		t.Errorf("descendant vendors = %d, want 2", len(got))
	}
	all := n.Descendants("*", nil)
	// product, 2 vendors, each vendor has 3 children = 1+2+6 = 9
	if len(all) != 9 {
		t.Errorf("all descendants = %d, want 9", len(all))
	}
}

func TestTextContent(t *testing.T) {
	n := Elem("a", Elem("b", TextNd("x")), TextNd("y"), Elem("c", Elem("d", TextNd("z"))))
	if got := n.TextContent(); got != "xyz" {
		t.Errorf("TextContent = %q, want xyz", got)
	}
	if Attr("k", "v").TextContent() != "v" {
		t.Error("attribute TextContent")
	}
	var nilNode *Node
	if nilNode.TextContent() != "" {
		t.Error("nil TextContent")
	}
}

func TestCopyIsDeep(t *testing.T) {
	n := catalogFixture()
	c := n.Copy()
	if !n.DeepEqual(c) {
		t.Fatal("copy not equal")
	}
	c.Children[0].Attrs[0].Text = "LCD 19"
	if n.DeepEqual(c) {
		t.Error("mutating copy affected original (not deep)")
	}
	if v, _ := n.Children[0].Attribute("name"); v != "CRT 15" {
		t.Error("original mutated")
	}
}

func TestDeepEqual(t *testing.T) {
	a := catalogFixture()
	b := catalogFixture()
	if !a.DeepEqual(b) {
		t.Error("identical trees unequal")
	}
	// Attribute order should not matter.
	x := Elem("e", Attr("a", "1"), Attr("b", "2"))
	y := Elem("e", Attr("b", "2"), Attr("a", "1"))
	if !x.DeepEqual(y) {
		t.Error("attribute order should not affect equality")
	}
	// Child order does matter.
	p := Elem("e", Elem("a"), Elem("b"))
	q := Elem("e", Elem("b"), Elem("a"))
	if p.DeepEqual(q) {
		t.Error("child order must affect equality")
	}
	if a.DeepEqual(nil) {
		t.Error("non-nil vs nil")
	}
	var nn *Node
	if !nn.DeepEqual(nil) {
		t.Error("nil vs nil")
	}
}

func TestSerializeCompact(t *testing.T) {
	n := Elem("product", Attr("name", "CRT 15"),
		Elem("vendor", Elem("vid", TextNd("Amazon"))))
	got := n.Serialize(false)
	want := `<product name="CRT 15"><vendor><vid>Amazon</vid></vendor></product>`
	if got != want {
		t.Errorf("Serialize = %q, want %q", got, want)
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := Elem("e", Attr("a", `x"<&`), TextNd("1<2&3>4"))
	got := n.Serialize(false)
	if !strings.Contains(got, `a="x&quot;&lt;&amp;"`) {
		t.Errorf("attribute escaping: %q", got)
	}
	if !strings.Contains(got, "1&lt;2&amp;3&gt;4") {
		t.Errorf("text escaping: %q", got)
	}
}

func TestSerializeEmptyElement(t *testing.T) {
	if got := Elem("empty").Serialize(false); got != "<empty/>" {
		t.Errorf("empty element = %q", got)
	}
}

func TestSerializeDeterministicAttrOrder(t *testing.T) {
	x := Elem("e", Attr("b", "2"), Attr("a", "1"))
	y := Elem("e", Attr("a", "1"), Attr("b", "2"))
	if x.Serialize(false) != y.Serialize(false) {
		t.Error("serialization must canonicalize attribute order")
	}
}

func TestSerializeIndent(t *testing.T) {
	n := catalogFixture()
	out := n.Serialize(true)
	if !strings.Contains(out, "\n") {
		t.Error("indented form should be multi-line")
	}
	// Round-trip through the parser.
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("Parse(indented): %v", err)
	}
	if !back.DeepEqual(n) {
		t.Error("indent round-trip lost structure")
	}
}

func TestParseRoundTrip(t *testing.T) {
	n := catalogFixture()
	out := n.Serialize(false)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !back.DeepEqual(n) {
		t.Errorf("round trip mismatch:\n in: %s\nout: %s", out, back.Serialize(false))
	}
}

func TestParseSelfClosingAndEntities(t *testing.T) {
	n, err := Parse(`<a x="1&amp;2"><b/>t&lt;u</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Attribute("x"); v != "1&2" {
		t.Errorf("entity in attr: %q", v)
	}
	if n.TextContent() != "t<u" {
		t.Errorf("entity in text: %q", n.TextContent())
	}
	if len(n.ChildElements("b")) != 1 {
		t.Error("self-closing child")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"no tags",
		"<a>",
		"<a></b>",
		"<a x=1></a>",
		`<a x="1></a>`,
		"<a></a><b></b>",
		"<a></a>trailing",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestNodeValueIntegration(t *testing.T) {
	n := catalogFixture()
	v := NodeVal(n)
	if v.AsNode() != n {
		t.Error("AsNode identity")
	}
	w := NodeVal(catalogFixture())
	if !Equal(v, w) {
		t.Error("Equal should use DeepEqual for nodes")
	}
	if v.Key() != w.Key() {
		t.Error("Key should match for deep-equal nodes")
	}
}
