package xdm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Bool(true), KindBool},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("hi"), KindString},
		{NodeVal(Elem("a")), KindNode},
		{Seq([]Value{Int(1)}), KindSeq},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if NodeVal(nil).Kind() != KindNull {
		t.Error("NodeVal(nil) should be Null")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("AsInt")
	}
	if Float(7.9).AsInt() != 7 {
		t.Error("AsInt truncation")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat promotion")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString")
	}
	if Int(12).AsString() != "12" {
		t.Error("AsString of int")
	}
	if Bool(true).AsBool() != true {
		t.Error("AsBool")
	}
}

func TestLexicalForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, ""},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-5), "-5"},
		{Float(100), "100.00"},
		{Float(120.5), "120.5"},
		{Str("abc"), "abc"},
	}
	for _, c := range cases {
		if got := c.v.Lexical(); got != c.want {
			t.Errorf("Lexical(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEffectiveBool(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Float(-2), Str("x"), NodeVal(Elem("a")), Seq([]Value{Null})}
	falsy := []Value{Null, Bool(false), Int(0), Float(0), Str(""), Seq(nil)}
	for _, v := range truthy {
		if !v.EffectiveBool() {
			t.Errorf("EffectiveBool(%v) = false, want true", v)
		}
	}
	for _, v := range falsy {
		if v.EffectiveBool() {
			t.Errorf("EffectiveBool(%v) = true, want false", v)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(1.5), Float(1.5), 0},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualNumericPromotion(t *testing.T) {
	if !Equal(Int(3), Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Equal(Int(3), Float(3.1)) {
		t.Error("Int(3) should not equal Float(3.1)")
	}
	if !Equal(Null, Null) {
		t.Error("Null equals Null (for identity purposes)")
	}
	if Equal(Str("3"), Int(3)) {
		t.Error("string and int are not Equal")
	}
}

func TestKeyDistinguishesLikeEqual(t *testing.T) {
	vals := []Value{
		Null, Bool(true), Bool(false), Int(0), Int(1), Int(-1),
		Float(0.5), Float(1), Str(""), Str("a"), Str("1"),
		NodeVal(Elem("a")), NodeVal(Elem("b")),
		Seq([]Value{Int(1), Int(2)}), Seq([]Value{Int(1)}),
	}
	for i, a := range vals {
		for j, b := range vals {
			ke := a.Key() == b.Key()
			eq := Equal(a, b)
			if ke != eq {
				t.Errorf("vals[%d]=%v vals[%d]=%v: Key match %v but Equal %v", i, a, j, b, ke, eq)
			}
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Composite keys must not be confusable across boundaries.
	a := TupleKey([]Value{Str("ab"), Str("c")})
	b := TupleKey([]Value{Str("a"), Str("bc")})
	if a == b {
		t.Error("TupleKey must distinguish boundary placement")
	}
	c := TupleKey([]Value{Str("ab")})
	if a == c {
		t.Error("TupleKey must encode arity")
	}
}

func TestTupleKeyQuick(t *testing.T) {
	f := func(x, y string, n int64) bool {
		a := TupleKey([]Value{Str(x), Int(n), Str(y)})
		b := TupleKey([]Value{Str(x), Int(n), Str(y)})
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   string
		a, b Value
		want Value
	}{
		{"+", Int(2), Int(3), Int(5)},
		{"-", Int(2), Int(3), Int(-1)},
		{"*", Int(4), Int(3), Int(12)},
		{"mod", Int(7), Int(3), Int(1)},
		{"div", Int(7), Int(2), Float(3.5)},
		{"+", Float(1.5), Int(1), Float(2.5)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("Arith(%s): %v", c.op, err)
		}
		if !Equal(got, c.want) {
			t.Errorf("Arith(%v %s %v) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if v, err := Arith("+", Null, Int(1)); err != nil || !v.IsNull() {
		t.Error("null propagation in Arith")
	}
	if _, err := Arith("div", Int(1), Int(0)); err == nil {
		t.Error("expected division-by-zero error")
	}
	if _, err := Arith("+", Str("a"), Int(1)); err == nil {
		t.Error("expected non-numeric error")
	}
}

func TestCompareOp(t *testing.T) {
	ops := map[string][3]bool{ // results for (1 vs 2), (2 vs 2), (3 vs 2)
		"=":  {false, true, false},
		"!=": {true, false, true},
		"<":  {true, false, false},
		"<=": {true, true, false},
		">":  {false, false, true},
		">=": {false, true, true},
	}
	for op, want := range ops {
		for i, a := range []Value{Int(1), Int(2), Int(3)} {
			got, err := CompareOp(op, a, Int(2))
			if err != nil {
				t.Fatal(err)
			}
			if got.AsBool() != want[i] {
				t.Errorf("CompareOp(%v %s 2) = %v, want %v", a, op, got, want[i])
			}
		}
	}
	if v, err := CompareOp("=", Null, Int(1)); err != nil || !v.IsNull() {
		t.Error("null comparison should yield Null")
	}
}

func TestCompareOpGeneralSequence(t *testing.T) {
	seq := Seq([]Value{Int(1), Int(5), Int(9)})
	got, err := CompareOp("=", seq, Int(5))
	if err != nil || !got.AsBool() {
		t.Error("general comparison: seq = 5 should be true")
	}
	got, err = CompareOp(">", seq, Int(8))
	if err != nil || !got.AsBool() {
		t.Error("general comparison: seq > 8 should be true (9 matches)")
	}
	got, err = CompareOp("<", seq, Int(1))
	if err != nil || got.AsBool() {
		t.Error("general comparison: seq < 1 should be false")
	}
}

func TestCompareOpNodeAtomization(t *testing.T) {
	n := Elem("price", TextNd("120.00"))
	got, err := CompareOp("=", NodeVal(n), Float(120))
	if err != nil {
		t.Fatal(err)
	}
	if !got.AsBool() {
		t.Error("node with text 120.00 should compare = 120")
	}
	got, err = CompareOp("<", NodeVal(n), Int(121))
	if err != nil || !got.AsBool() {
		t.Error("node < 121 should hold")
	}
}

func TestAtomize(t *testing.T) {
	n := Elem("a", TextNd("42"))
	if v := Atomize(NodeVal(n)); !Equal(v, Int(42)) {
		t.Errorf("Atomize elem = %v, want 42", v)
	}
	s := Seq([]Value{NodeVal(Elem("a", TextNd("1"))), Str("x")})
	out := Atomize(s)
	if out.SeqLen() != 2 || !Equal(out.AsSeq()[0], Int(1)) {
		t.Errorf("Atomize seq = %v", out)
	}
}

func TestParseTyped(t *testing.T) {
	if !Equal(ParseTyped("12"), Int(12)) {
		t.Error("ParseTyped int")
	}
	if !Equal(ParseTyped("1.5"), Float(1.5)) {
		t.Error("ParseTyped float")
	}
	if !Equal(ParseTyped("abc"), Str("abc")) {
		t.Error("ParseTyped string")
	}
	if !Equal(ParseTyped(""), Str("")) {
		t.Error("ParseTyped empty")
	}
}

func TestSeqHelpers(t *testing.T) {
	if Null.SeqLen() != 0 || Int(1).SeqLen() != 1 || Seq([]Value{Int(1), Int(2)}).SeqLen() != 2 {
		t.Error("SeqLen")
	}
	if len(Int(1).AsSeq()) != 1 || len(Null.AsSeq()) != 0 {
		t.Error("AsSeq")
	}
}

// randomScalar builds an arbitrary scalar value from a rand source.
func randomScalar(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(1000) - 500)
	case 3:
		return Float(float64(r.Int63n(1000))/4 - 100)
	default:
		const letters = "abcdexyz"
		n := r.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	}
}

func TestKeyEqualConsistencyQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomScalar(r))
			args[1] = reflect.ValueOf(randomScalar(r))
		},
	}
	f := func(a, b Value) bool {
		return (a.Key() == b.Key()) == Equal(a, b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrderQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(randomScalar(r))
			}
		},
	}
	// Transitivity on a sampled triple.
	f := func(a, b, c Value) bool {
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
