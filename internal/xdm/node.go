package xdm

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind identifies the kind of an XML node.
type NodeKind uint8

// Node kinds supported by the view data model. Document nodes are not
// needed: views always have a single constructed root element.
const (
	ElementNode NodeKind = iota
	AttributeNode
	TextNode
)

// Node is an XML node. Elements have a Name, Attrs, and Children; attribute
// and text nodes carry their string content in Text. Nodes form trees; the
// model is ordered (document order = slice order).
type Node struct {
	Kind     NodeKind
	Name     string  // element/attribute name; empty for text nodes
	Text     string  // attribute value or text content
	Attrs    []*Node // attribute nodes, for elements
	Children []*Node // child element/text nodes, for elements
}

// Elem constructs an element node with the given children. Attribute nodes
// in children are routed to Attrs; everything else becomes child content.
func Elem(name string, children ...*Node) *Node {
	e := &Node{Kind: ElementNode, Name: name}
	for _, c := range children {
		if c == nil {
			continue
		}
		if c.Kind == AttributeNode {
			e.Attrs = append(e.Attrs, c)
		} else {
			e.Children = append(e.Children, c)
		}
	}
	return e
}

// Attr constructs an attribute node.
func Attr(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Text: value}
}

// Text constructs a text node.
func TextNd(s string) *Node {
	return &Node{Kind: TextNode, Text: s}
}

// AppendChild appends c to the element's content (or attributes when c is
// an attribute node) and returns n for chaining.
func (n *Node) AppendChild(c *Node) *Node {
	if c == nil {
		return n
	}
	if c.Kind == AttributeNode {
		n.Attrs = append(n.Attrs, c)
	} else {
		n.Children = append(n.Children, c)
	}
	return n
}

// Attribute returns the value of the named attribute and whether it exists.
func (n *Node) Attribute(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Text, true
		}
	}
	return "", false
}

// ChildElements returns the child elements with the given name; "*" matches
// all element children.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "*" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// Descendants appends to out all descendant elements (excluding n itself)
// matching name ("*" for any), in document order.
func (n *Node) Descendants(name string, out []*Node) []*Node {
	for _, c := range n.Children {
		if c.Kind != ElementNode {
			continue
		}
		if name == "*" || c.Name == name {
			out = append(out, c)
		}
		out = c.Descendants(name, out)
	}
	return out
}

// TextContent returns the concatenated text content of the subtree, i.e.
// the XQuery string value of the node.
func (n *Node) TextContent() string {
	if n == nil {
		return ""
	}
	switch n.Kind {
	case TextNode, AttributeNode:
		return n.Text
	}
	var sb strings.Builder
	n.writeText(&sb)
	return sb.String()
}

func (n *Node) writeText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Text)
		case ElementNode:
			c.writeText(sb)
		}
	}
}

// Copy returns a deep copy of the node.
func (n *Node) Copy() *Node {
	if n == nil {
		return nil
	}
	m := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		m.Attrs = make([]*Node, len(n.Attrs))
		for i, a := range n.Attrs {
			m.Attrs[i] = a.Copy()
		}
	}
	if len(n.Children) > 0 {
		m.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			m.Children[i] = c.Copy()
		}
	}
	return m
}

// DeepEqual reports structural equality: same kind, name, text, attributes
// (order-insensitive, per the XML data model) and children (order-sensitive).
func (n *Node) DeepEqual(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Name != m.Name || n.Text != m.Text {
		return false
	}
	if len(n.Attrs) != len(m.Attrs) || len(n.Children) != len(m.Children) {
		return false
	}
	if len(n.Attrs) > 0 {
		av := make(map[string]string, len(n.Attrs))
		for _, a := range n.Attrs {
			av[a.Name] = a.Text
		}
		for _, b := range m.Attrs {
			v, ok := av[b.Name]
			if !ok || v != b.Text {
				return false
			}
		}
	}
	for i := range n.Children {
		if !n.Children[i].DeepEqual(m.Children[i]) {
			return false
		}
	}
	return true
}

// Serialize renders the subtree as XML text. When indent is true a
// two-space indented multi-line form is produced.
func (n *Node) Serialize(indent bool) string {
	if n == nil {
		return ""
	}
	var sb strings.Builder
	n.serialize(&sb, indent, 0)
	return sb.String()
}

func (n *Node) serialize(sb *strings.Builder, indent bool, depth int) {
	pad := ""
	if indent {
		pad = strings.Repeat("  ", depth)
	}
	switch n.Kind {
	case TextNode:
		sb.WriteString(pad)
		escapeText(sb, n.Text)
		if indent {
			sb.WriteByte('\n')
		}
	case AttributeNode:
		// A bare attribute serialized alone (diagnostics only).
		sb.WriteString(pad)
		sb.WriteString(n.Name)
		sb.WriteString(`="`)
		escapeAttr(sb, n.Text)
		sb.WriteString(`"`)
		if indent {
			sb.WriteByte('\n')
		}
	case ElementNode:
		sb.WriteString(pad)
		sb.WriteByte('<')
		sb.WriteString(n.Name)
		// Stable attribute order for deterministic serialization.
		attrs := n.Attrs
		if len(attrs) > 1 {
			attrs = append([]*Node(nil), attrs...)
			sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
		}
		for _, a := range attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Name)
			sb.WriteString(`="`)
			escapeAttr(sb, a.Text)
			sb.WriteString(`"`)
		}
		if len(n.Children) == 0 {
			sb.WriteString("/>")
			if indent {
				sb.WriteByte('\n')
			}
			return
		}
		sb.WriteByte('>')
		onlyText := true
		for _, c := range n.Children {
			if c.Kind != TextNode {
				onlyText = false
				break
			}
		}
		if indent && !onlyText {
			sb.WriteByte('\n')
			for _, c := range n.Children {
				c.serialize(sb, true, depth+1)
			}
			sb.WriteString(pad)
		} else {
			for _, c := range n.Children {
				c.serialize(sb, false, 0)
			}
		}
		sb.WriteString("</")
		sb.WriteString(n.Name)
		sb.WriteByte('>')
		if indent {
			sb.WriteByte('\n')
		}
	}
}

func escapeText(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		default:
			sb.WriteRune(r)
		}
	}
}

func escapeAttr(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}

// Parse parses a small subset of XML sufficient to round-trip Serialize
// output in tests: elements, attributes, text, entities, self-closing tags.
func Parse(s string) (*Node, error) {
	p := &xmlParser{src: s}
	p.skipSpace()
	n, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xdm: trailing content at offset %d", p.pos)
	}
	return n, nil
}

type xmlParser struct {
	src string
	pos int
}

func (p *xmlParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *xmlParser) parseElement() (*Node, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return nil, fmt.Errorf("xdm: expected '<' at offset %d", p.pos)
	}
	p.pos++
	name := p.parseName()
	if name == "" {
		return nil, fmt.Errorf("xdm: expected element name at offset %d", p.pos)
	}
	e := &Node{Kind: ElementNode, Name: name}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xdm: unexpected end of input in <%s>", name)
		}
		if strings.HasPrefix(p.src[p.pos:], "/>") {
			p.pos += 2
			return e, nil
		}
		if p.src[p.pos] == '>' {
			p.pos++
			break
		}
		an := p.parseName()
		if an == "" {
			return nil, fmt.Errorf("xdm: expected attribute name at offset %d", p.pos)
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '=' {
			return nil, fmt.Errorf("xdm: expected '=' after attribute %q", an)
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.src) || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
			return nil, fmt.Errorf("xdm: expected quoted value for attribute %q", an)
		}
		q := p.src[p.pos]
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != q {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xdm: unterminated attribute value for %q", an)
		}
		e.Attrs = append(e.Attrs, Attr(an, unescape(p.src[start:p.pos])))
		p.pos++
	}
	// Content.
	for {
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("xdm: missing </%s>", name)
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			p.pos += 2
			cn := p.parseName()
			if cn != name {
				return nil, fmt.Errorf("xdm: mismatched close tag </%s>, want </%s>", cn, name)
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '>' {
				return nil, fmt.Errorf("xdm: expected '>' closing </%s>", name)
			}
			p.pos++
			return e, nil
		}
		if p.src[p.pos] == '<' {
			c, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, c)
			continue
		}
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '<' {
			p.pos++
		}
		txt := unescape(p.src[start:p.pos])
		if strings.TrimSpace(txt) != "" {
			e.Children = append(e.Children, TextNd(txt))
		}
	}
}

func (p *xmlParser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '=' || c == '/' || c == '<' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&amp;", "&")
	return r.Replace(s)
}
