package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/shard"
	"quark/internal/xdm"
)

// ShardedSetup is the sharded counterpart of Setup: the same schema,
// data, view, and trigger population over a shard.Engine. With the same
// Params and seed, every shard's union of rows equals the single-engine
// Setup's data exactly (genRows is shared), which is what lets the
// conformance fuzzer compare the two engines op for op.
type ShardedSetup struct {
	Params   Params
	Schema   *schema.Schema
	Engine   *shard.Engine
	ViewSrc  string
	TopNames []string
	// Notifications counts action invocations; atomic because shards can
	// fire concurrently under concurrent writers.
	Notifications atomic.Int64

	rng *rand.Rand
}

// BuildSharded mirrors Build over a sharded engine with n shards. The
// hierarchy partitions by top-level id (the top table routes by its
// primary key; every deeper level follows its foreign key), so each top
// element's whole subtree — the provenance of one view element — lives on
// one shard, the invariant that makes per-shard firing equal global
// firing.
func BuildSharded(p Params, mode core.Mode, n int, seed int64) (*ShardedSetup, error) {
	return BuildShardedDir(p, mode, n, seed, "")
}

// BuildShardedDir is BuildSharded with a directory-persistence path (see
// shard.Config.Dir); empty keeps the routing directory in memory only.
func BuildShardedDir(p Params, mode core.Mode, n int, seed int64, dir string) (*ShardedSetup, error) {
	return buildSharded(p, mode, n, seed, dir, false)
}

// BuildShardedAdaptive is BuildSharded with per-group translation modes
// enabled fleet-wide (see BuildAdaptive).
func BuildShardedAdaptive(p Params, mode core.Mode, n int, seed int64) (*ShardedSetup, error) {
	return buildSharded(p, mode, n, seed, "", true)
}

func buildSharded(p Params, mode core.Mode, n int, seed int64, dir string, adaptive bool) (*ShardedSetup, error) {
	if p.Depth < 2 {
		return nil, fmt.Errorf("workload: depth must be >= 2")
	}
	s := BuildSchema(p)
	e, err := shard.New(s, shard.Config{Shards: n, Mode: mode, Dir: dir})
	if err != nil {
		return nil, err
	}
	if adaptive {
		// Before trigger registration: grouping signatures depend on it.
		if err := e.SetModePolicy(nil); err != nil {
			return nil, err
		}
	}
	w := &ShardedSetup{Params: p, Schema: s, Engine: e, rng: rand.New(rand.NewSource(seed))}

	topNames, levels := genRows(p, w.rng)
	w.TopNames = topNames
	for lvl, rows := range levels {
		// Parents before children: the router's directory resolves each
		// level's ownership from the level above.
		if err := e.Insert(p.TableName(lvl), rows...); err != nil {
			return nil, err
		}
	}

	e.RegisterAction("notify", func(core.Invocation) error {
		w.Notifications.Add(1)
		return nil
	})
	w.ViewSrc = ViewSource(p)
	if err := e.CreateView("doc", w.ViewSrc); err != nil {
		return nil, err
	}
	for i := 0; i < p.NumTriggers; i++ {
		if err := e.CreateTrigger(triggerSrc(topNames, i, min(p.NumSatisfied, p.NumTriggers))); err != nil {
			return nil, err
		}
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return w, nil
}

// LeafTable returns the leaf table's name.
func (w *ShardedSetup) LeafTable() string { return w.Params.TableName(w.Params.Depth - 1) }

// UpdateLeafOn performs one single-row payload update of the given leaf
// (routed to its owning shard). payload should differ from the current
// value; see the package doc's no-op caveat.
func (w *ShardedSetup) UpdateLeafOn(leafID int64, payload float64) error {
	_, err := w.Engine.UpdateByPK(w.LeafTable(), []xdm.Value{xdm.Int(leafID)}, func(r reldb.Row) reldb.Row {
		r[len(r)-1] = xdm.Float(payload)
		return r
	})
	return err
}
