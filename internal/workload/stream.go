package workload

import (
	"fmt"
	"math/rand"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/shard"
	"quark/internal/xdm"
)

// StreamParams configures GenStream. Fractions are probabilities per op;
// whatever probability is left over becomes a plain single-leaf update.
type StreamParams struct {
	// Ops is the number of operations to generate.
	Ops int
	// CrossShardFrac is the probability an op is a multi-root batch
	// transaction. Its roots are drawn without replacement, so with
	// several shards the batch usually spans shards.
	CrossShardFrac float64
	// BatchRoots is how many distinct roots a batch op touches (min 2).
	BatchRoots int
	// BatchSize is how many leaf sub-ops a batch op contains (min
	// BatchRoots; sub-ops round-robin over the chosen roots).
	BatchSize int
	// MoveFrac is the probability a single op re-parents a live leaf to a
	// different root — on a sharded engine, a row migration.
	MoveFrac float64
	// InsertFrac / DeleteFrac are the probabilities a single op inserts a
	// fresh leaf under a root / deletes a live leaf.
	InsertFrac, DeleteFrac float64
	// RebalanceFrac is the probability an op is a shard rebalance moving a
	// few routing groups to rotated shards. The single-engine oracle
	// ignores rebalance ops entirely — data movement must be
	// observationally invisible, which is exactly what the differential
	// fuzzer proves. Zero keeps the rng draw sequence of pre-elastic
	// streams intact, so existing pinned seeds reproduce byte-identically.
	RebalanceFrac float64
	// ModeFlipFrac is the probability an op flips one trigger group's
	// translation mode (a live, silent migration). Like rebalances, mode
	// flips must be observationally invisible: appliers that opt in apply
	// them, the oracle ignores them. Zero adds no rng draws, so existing
	// pinned seeds replay unchanged.
	ModeFlipFrac float64
}

// DefaultStream returns fuzzer-oriented stream parameters: mostly
// updates, a healthy minority of batches, moves, inserts, and deletes.
func DefaultStream(ops int) StreamParams {
	return StreamParams{
		Ops:            ops,
		CrossShardFrac: 0.25,
		BatchRoots:     3,
		BatchSize:      6,
		MoveFrac:       0.10,
		InsertFrac:     0.10,
		DeleteFrac:     0.08,
	}
}

// OpKind enumerates leaf operations.
type OpKind uint8

// Leaf operation kinds.
const (
	OpUpdate OpKind = iota // set a live leaf's payload
	OpInsert               // insert a fresh leaf under Parent
	OpDelete               // delete a live leaf
	OpMove                 // re-parent a live leaf to Parent
)

// LeafOp is one primitive mutation of the leaf table.
type LeafOp struct {
	Kind    OpKind
	Leaf    int64
	Parent  int64   // insert/move target root (depth-2: the top id)
	Payload float64 // update/insert payload
}

// RebalanceOp asks a sharded engine to move the routing groups of the
// named roots to the shard Offset slots past their current one (modulo
// the live shard count, resolved at apply time). Engines without shards
// — the differential oracle — treat it as a no-op.
type RebalanceOp struct {
	Roots  []int64
	Offset int
}

// ModeFlipOp asks an adaptive engine to switch one trigger group's
// translation mode: Group indexes into the engine's sorted group
// signatures (modulo the live group count, resolved at apply time) and
// Mode is the target core.Mode ordinal. Appliers that don't opt in — the
// differential oracle — treat it as a no-op.
type ModeFlipOp struct {
	Group int
	Mode  int
}

// Op is one unit of the stream: a single statement (len(Batch) == 1),
// one transaction over several leaves/roots, a rebalance, or a mode flip.
type Op struct {
	Batch     []LeafOp
	Rebalance *RebalanceOp
	ModeFlip  *ModeFlipOp
}

// GenStream generates a deterministic, replayable update stream for the
// Depth == 2 workload: the same (p, sp, seed) always yields the same ops
// (see the package doc's key-space contract). The generator tracks
// liveness so deletes and moves always target existing leaves, inserts
// allocate ids that never collide, and payloads are stream-unique values
// >= 1000 so no generated update is a no-op.
func GenStream(p Params, sp StreamParams, seed int64) ([]Op, error) {
	if p.Depth != 2 {
		return nil, fmt.Errorf("workload: GenStream supports Depth == 2, got %d", p.Depth)
	}
	if sp.Ops <= 0 {
		return nil, fmt.Errorf("workload: StreamParams.Ops must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	numTop := p.NumTop()
	// Live leaves per root, mirroring genRows' initial layout.
	live := make([][]int64, numTop)
	for r := 0; r < numTop; r++ {
		for j := 0; j < p.Fanout; j++ {
			live[r] = append(live[r], int64(r*p.Fanout+j))
		}
	}
	nextID := int64(numTop * p.Fanout)
	payload := 1000.0
	nextPayload := func() float64 {
		payload++
		return payload
	}
	pickRoot := func() int {
		return rng.Intn(numTop)
	}
	pickLive := func(r int) (int64, bool) {
		if len(live[r]) == 0 {
			return 0, false
		}
		return live[r][rng.Intn(len(live[r]))], true
	}
	removeLive := func(r int, leaf int64) {
		for i, l := range live[r] {
			if l == leaf {
				live[r] = append(live[r][:i], live[r][i+1:]...)
				return
			}
		}
	}

	genOne := func() LeafOp {
		x := rng.Float64()
		r := pickRoot()
		switch {
		case x < sp.MoveFrac:
			if leaf, ok := pickLive(r); ok && numTop > 1 {
				to := (r + 1 + rng.Intn(numTop-1)) % numTop // always a different root
				removeLive(r, leaf)
				live[to] = append(live[to], leaf)
				return LeafOp{Kind: OpMove, Leaf: leaf, Parent: int64(to)}
			}
		case x < sp.MoveFrac+sp.InsertFrac:
			leaf := nextID
			nextID++
			live[r] = append(live[r], leaf)
			return LeafOp{Kind: OpInsert, Leaf: leaf, Parent: int64(r), Payload: nextPayload()}
		case x < sp.MoveFrac+sp.InsertFrac+sp.DeleteFrac:
			if leaf, ok := pickLive(r); ok {
				removeLive(r, leaf)
				return LeafOp{Kind: OpDelete, Leaf: leaf}
			}
		}
		// Fallthrough (and the empty-root fallback): a plain update.
		if leaf, ok := pickLive(r); ok {
			return LeafOp{Kind: OpUpdate, Leaf: leaf, Payload: nextPayload()}
		}
		// Root emptied by deletes: repopulate it so the stream stays busy.
		leaf := nextID
		nextID++
		live[r] = append(live[r], leaf)
		return LeafOp{Kind: OpInsert, Leaf: leaf, Parent: int64(r), Payload: nextPayload()}
	}

	var ops []Op
	for i := 0; i < sp.Ops; i++ {
		// The extra draw only happens when rebalances are requested, so a
		// RebalanceFrac of zero replays legacy streams unchanged.
		if sp.RebalanceFrac > 0 && rng.Float64() < sp.RebalanceFrac {
			k := 1 + rng.Intn(3)
			if k > numTop {
				k = numTop
			}
			perm := rng.Perm(numTop)[:k]
			roots := make([]int64, k)
			for j, r := range perm {
				roots[j] = int64(r)
			}
			ops = append(ops, Op{Rebalance: &RebalanceOp{Roots: roots, Offset: 1 + rng.Intn(7)}})
			continue
		}
		// Same gating contract as rebalances: no extra draws unless asked.
		if sp.ModeFlipFrac > 0 && rng.Float64() < sp.ModeFlipFrac {
			ops = append(ops, Op{ModeFlip: &ModeFlipOp{Group: rng.Intn(64), Mode: rng.Intn(4)}})
			continue
		}
		if rng.Float64() < sp.CrossShardFrac && numTop > 1 {
			nRoots := sp.BatchRoots
			if nRoots < 2 {
				nRoots = 2
			}
			if nRoots > numTop {
				nRoots = numTop
			}
			roots := rng.Perm(numTop)[:nRoots]
			size := sp.BatchSize
			if size < nRoots {
				size = nRoots
			}
			var batch []LeafOp
			for j := 0; j < size; j++ {
				r := roots[j%nRoots]
				if leaf, ok := pickLive(r); ok {
					batch = append(batch, LeafOp{Kind: OpUpdate, Leaf: leaf, Payload: nextPayload()})
				} else {
					leaf := nextID
					nextID++
					live[r] = append(live[r], leaf)
					batch = append(batch, LeafOp{Kind: OpInsert, Leaf: leaf, Parent: int64(r), Payload: nextPayload()})
				}
			}
			ops = append(ops, Op{Batch: batch})
			continue
		}
		ops = append(ops, Op{Batch: []LeafOp{genOne()}})
	}
	return ops, nil
}

// TxWriter is the mutation surface a stream op needs; *reldb.Tx and
// *shard.Tx both satisfy it.
type TxWriter interface {
	Insert(table string, rows ...reldb.Row) error
	UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error)
	DeleteByPK(table string, key ...xdm.Value) (bool, error)
}

// Applier abstracts the single and sharded engines for stream replay:
// statement-level ops plus transactions.
type Applier interface {
	TxWriter
	Batch(fn func(TxWriter) error) error
}

// Rebalancer is the optional Applier extension for engines that can move
// routing groups; appliers without it (the single-engine oracle) skip
// rebalance ops.
type Rebalancer interface {
	ApplyRebalance(table string, roots []int64, offset int) error
}

// ModeFlipper is the optional Applier extension for adaptive engines that
// can switch a trigger group's translation mode mid-stream; appliers
// without it — or with FlipModes left off (the oracle) — skip flip ops.
type ModeFlipper interface {
	ApplyModeFlip(group, mode int) error
}

// SingleApplier adapts a core.Engine. FlipModes opts the applier into
// ModeFlip ops (requires an adaptive engine); left false they no-op,
// which is what the differential oracle wants.
type SingleApplier struct {
	E         *core.Engine
	FlipModes bool
}

// Insert implements TxWriter.
func (a SingleApplier) Insert(table string, rows ...reldb.Row) error {
	return a.E.Insert(table, rows...)
}

// UpdateByPK implements TxWriter.
func (a SingleApplier) UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error) {
	return a.E.UpdateByPK(table, key, set)
}

// DeleteByPK implements TxWriter.
func (a SingleApplier) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	return a.E.DeleteByPK(table, key...)
}

// Batch implements Applier.
func (a SingleApplier) Batch(fn func(TxWriter) error) error {
	return a.E.Batch(func(tx *reldb.Tx) error { return fn(tx) })
}

// ApplyModeFlip implements ModeFlipper: the group index resolves against
// the engine's sorted signatures, so identical streams resolve to
// identical groups on every engine shape.
func (a SingleApplier) ApplyModeFlip(group, mode int) error {
	if !a.FlipModes {
		return nil
	}
	sigs := a.E.GroupSigs()
	if len(sigs) == 0 {
		return nil
	}
	return a.E.SetGroupMode(sigs[group%len(sigs)], core.Mode(mode))
}

// ShardApplier adapts a shard.Engine. FlipModes opts into ModeFlip ops,
// as on SingleApplier.
type ShardApplier struct {
	E         *shard.Engine
	FlipModes bool
}

// Insert implements TxWriter.
func (a ShardApplier) Insert(table string, rows ...reldb.Row) error {
	return a.E.Insert(table, rows...)
}

// UpdateByPK implements TxWriter.
func (a ShardApplier) UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error) {
	return a.E.UpdateByPK(table, key, set)
}

// DeleteByPK implements TxWriter.
func (a ShardApplier) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	return a.E.DeleteByPK(table, key...)
}

// Batch implements Applier.
func (a ShardApplier) Batch(fn func(TxWriter) error) error {
	return a.E.Batch(func(tx *shard.Tx) error { return fn(tx) })
}

// ApplyRebalance implements Rebalancer: each named root's group moves to
// the shard offset slots past its current one, all in one plan.
func (a ShardApplier) ApplyRebalance(table string, roots []int64, offset int) error {
	n := a.E.NumShards()
	if n < 2 {
		return nil
	}
	plan := shard.Plan{}
	for _, root := range roots {
		key := shard.GroupKey(xdm.Int(root))
		from := a.E.GroupOwner(table, xdm.Int(root))
		plan.Moves = append(plan.Moves, shard.GroupMove{Table: table, Key: key, To: (from + offset) % n})
	}
	_, err := a.E.Rebalance(plan)
	return err
}

// ApplyModeFlip implements ModeFlipper fleet-wide: one two-phase switch
// flips the group on every shard.
func (a ShardApplier) ApplyModeFlip(group, mode int) error {
	if !a.FlipModes {
		return nil
	}
	sigs := a.E.GroupSigs()
	if len(sigs) == 0 {
		return nil
	}
	return a.E.SetGroupMode(sigs[group%len(sigs)], core.Mode(mode))
}

// ApplyOp replays one stream op against an engine: a single statement for
// len(Batch) == 1, one transaction otherwise. Identical streams applied
// to the single and sharded engines must produce identical invocation
// streams — that is the fuzzer's claim.
func ApplyOp(a Applier, p Params, op Op) error {
	if op.Rebalance != nil {
		if rb, ok := a.(Rebalancer); ok {
			return rb.ApplyRebalance(p.TableName(0), op.Rebalance.Roots, op.Rebalance.Offset)
		}
		return nil // the oracle: data movement is observationally invisible
	}
	if op.ModeFlip != nil {
		if mf, ok := a.(ModeFlipper); ok {
			return mf.ApplyModeFlip(op.ModeFlip.Group, op.ModeFlip.Mode)
		}
		return nil // the oracle: mode migration is observationally invisible
	}
	leafTable := p.TableName(p.Depth - 1)
	apply := func(w TxWriter, lo LeafOp) error {
		switch lo.Kind {
		case OpUpdate:
			_, err := w.UpdateByPK(leafTable, []xdm.Value{xdm.Int(lo.Leaf)}, func(r reldb.Row) reldb.Row {
				r[len(r)-1] = xdm.Float(lo.Payload)
				return r
			})
			return err
		case OpInsert:
			return w.Insert(leafTable, reldb.Row{xdm.Int(lo.Leaf), xdm.Int(lo.Parent), xdm.Float(lo.Payload)})
		case OpDelete:
			_, err := w.DeleteByPK(leafTable, xdm.Int(lo.Leaf))
			return err
		case OpMove:
			_, err := w.UpdateByPK(leafTable, []xdm.Value{xdm.Int(lo.Leaf)}, func(r reldb.Row) reldb.Row {
				r[1] = xdm.Int(lo.Parent)
				return r
			})
			return err
		default:
			return fmt.Errorf("workload: unknown op kind %d", lo.Kind)
		}
	}
	if len(op.Batch) == 1 {
		return apply(a, op.Batch[0])
	}
	return a.Batch(func(w TxWriter) error {
		for _, lo := range op.Batch {
			if err := apply(w, lo); err != nil {
				return err
			}
		}
		return nil
	})
}
