// Package workload generates the experimental setups of the paper's
// Section 6 (Table 2): hierarchical relational schemas of configurable
// depth, synthetic data with a configurable number of leaf tuples and
// fanout, the XML view nesting children inside parents with the
// count(...) >= 2 predicate on the lowest level, and populations of
// structurally similar XML triggers with configurable selectivity. It
// also builds the same workload over a sharded engine (BuildSharded) and
// generates seeded, replayable update streams (GenStream) for the
// differential fuzzer in internal/conformance.
//
// # Key-space assumptions
//
// Everything downstream — UpdateOneLeaf's targeting, the shard router's
// root partitioning, and GenStream's replayability — leans on the
// deterministic id layout Build produces. The contract is:
//
//   - Top-level rows have ids 0..NumTop()-1, where NumTop() =
//     max(1, LeafTuples/Fanout). Ids are dense and never reused.
//   - Each deeper level uses per-table 0-based sequential ids; the parent
//     of row i at branching factor b is i/b. Consequently each top
//     element owns one contiguous block of Fanout leaves, and for
//     Depth == 2 the leaf with id i belongs to top element i/Fanout.
//   - The initial leaf id space is exactly 0..NumTop()*Fanout-1.
//     GenStream allocates fresh leaf ids upward from NumTop()*Fanout, so
//     generated inserts can never collide with seeded rows or each other.
//   - Payloads are floats: seeded rows draw from 50..249; GenStream
//     writes values >= 1000 that are unique within the stream, so a
//     generated update is never a no-op (a no-op would fire differently
//     through statement-level and batched execution paths).
//   - Streams are pure functions of (Params, StreamParams, seed): the
//     same inputs yield the same []Op, element for element
//     (TestGenStreamDeterministic pins this down — it is what makes a
//     fuzzer failure replayable from its logged seed).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

// Params mirrors Table 2. Defaults (the bold values; the plain-text paper
// lost the bolding, EXPERIMENTS.md records the inference): depth 2, 128K
// leaf tuples, 64 leaf tuples per top-level element, 10,000 triggers, 1
// satisfied trigger per update.
type Params struct {
	Depth        int // hierarchy depth (2 = product/vendor)
	LeafTuples   int // rows in the leaf table
	Fanout       int // leaf tuples per top-level XML element
	NumTriggers  int // structurally similar triggers
	NumSatisfied int // triggers satisfied per update
}

// Default returns the default parameters at a given scale factor: scale 1
// is the paper's default (128K leaves); smaller scales keep unit tests and
// -short benchmarks quick.
func Default() Params {
	return Params{Depth: 2, LeafTuples: 128 * 1024, Fanout: 64, NumTriggers: 10000, NumSatisfied: 1}
}

// Small returns a scaled-down configuration for tests.
func Small() Params {
	return Params{Depth: 2, LeafTuples: 2048, Fanout: 16, NumTriggers: 100, NumSatisfied: 1}
}

// TableName returns the name of the i-th level table (0 = top/root
// ancestor, Depth-1 = leaf). Depth 2 uses the paper's product/vendor names.
func (p Params) TableName(level int) string {
	if p.Depth == 2 {
		if level == 0 {
			return "product"
		}
		return "vendor"
	}
	return fmt.Sprintf("level%d", level)
}

// Setup is a generated experiment instance.
type Setup struct {
	Params  Params
	Schema  *schema.Schema
	DB      *reldb.DB
	Engine  *core.Engine
	ViewSrc string
	// Satisfied counts action invocations (the paper's "insert NEW_NODE
	// into a temporary table" stand-in).
	Notifications int
	// Names of top-level elements, by index (for trigger constants).
	TopNames []string

	rng *rand.Rand
}

// BuildSchema constructs the hierarchy: level0(id, name) and, for each
// deeper level i, leveli(id, parent, payload) with a foreign key to its
// parent (Section 6.1: "each child table has a foreign key column
// referencing its parent's primary key").
func BuildSchema(p Params) *schema.Schema {
	s := schema.New()
	for lvl := 0; lvl < p.Depth; lvl++ {
		t := &schema.Table{Name: p.TableName(lvl)}
		t.Columns = append(t.Columns, schema.Column{Name: "id", Type: schema.TInt})
		if lvl > 0 {
			t.Columns = append(t.Columns, schema.Column{Name: "parent", Type: schema.TInt})
		}
		if lvl == 0 {
			t.Columns = append(t.Columns, schema.Column{Name: "name", Type: schema.TString})
		} else {
			t.Columns = append(t.Columns, schema.Column{Name: "payload", Type: schema.TFloat})
		}
		t.PrimaryKey = []string{"id"}
		if lvl > 0 {
			t.ForeignKeys = []schema.ForeignKey{{
				Columns: []string{"parent"}, RefTable: p.TableName(lvl - 1), RefColumns: []string{"id"},
			}}
		}
		s.MustAddTable(t)
	}
	return s
}

// ViewSource builds the XQuery view: children nested inside parents, with
// the count(...) >= 2 predicate on the lowest level as in the paper's
// experiments ("the count(...) >= 2 predicate remained on the lowest
// level, that is, on the vendors").
func ViewSource(p Params) string {
	var b strings.Builder
	b.WriteString("<doc>\n")
	b.WriteString("{for $e0 in view('default')/" + p.TableName(0) + "/row\n")
	fmt.Fprintf(&b, " let $s1 := view('default')/%s/row[./parent = $e0/id]\n", p.TableName(1))
	if p.Depth == 2 {
		b.WriteString(" where count($s1) >= 2\n")
	}
	b.WriteString(" return <e0 name={$e0/name}>\n")
	b.WriteString(viewLevel(p, 1))
	b.WriteString(" </e0>}\n</doc>")
	return b.String()
}

// viewLevel emits the nested FLWOR iterating level lvl.
func viewLevel(p Params, lvl int) string {
	var b strings.Builder
	fmt.Fprintf(&b, " {for $e%d in $s%d\n", lvl, lvl)
	if lvl+1 < p.Depth {
		fmt.Fprintf(&b, "  let $s%d := view('default')/%s/row[./parent = $e%d/id]\n", lvl+1, p.TableName(lvl+1), lvl)
		if lvl == p.Depth-2 {
			fmt.Fprintf(&b, "  where count($s%d) >= 2\n", lvl+1)
		}
	}
	fmt.Fprintf(&b, "  return <e%d id={$e%d/id}>\n", lvl, lvl)
	if lvl == p.Depth-1 {
		fmt.Fprintf(&b, "   {$e%d/payload}\n", lvl)
	} else {
		b.WriteString(viewLevel(p, lvl+1))
	}
	fmt.Fprintf(&b, "  </e%d>}\n", lvl)
	return b.String()
}

// NumTop returns the number of top-level elements the layout produces
// (see the package doc's key-space contract).
func (p Params) NumTop() int {
	n := p.LeafTuples / p.Fanout
	if n < 1 {
		n = 1
	}
	return n
}

// branching returns the children-per-node factor at each level edge:
// Fanout spread over Depth-1 levels (factor 2 at intermediate edges, the
// remainder at the leaf edge).
func (p Params) branching() []int {
	branch := make([]int, p.Depth-1)
	remaining := p.Fanout
	for i := 0; i < p.Depth-2; i++ {
		branch[i] = 2
		remaining /= 2
	}
	if remaining < 1 {
		remaining = 1
	}
	branch[p.Depth-2] = remaining
	return branch
}

// genRows produces every level's initial rows (index 0 = the top table)
// plus the top names, drawing payloads from rng in the fixed order both
// Build and BuildSharded share — the single source of the key-space
// contract in the package doc.
func genRows(p Params, rng *rand.Rand) (topNames []string, levels [][]reldb.Row) {
	numTop := p.NumTop()
	branch := p.branching()
	topNames = make([]string, numTop)
	top := make([]reldb.Row, numTop)
	for i := 0; i < numTop; i++ {
		topNames[i] = fmt.Sprintf("Item %06d", i)
		top[i] = reldb.Row{xdm.Int(int64(i)), xdm.Str(topNames[i])}
	}
	levels = append(levels, top)
	parents := numTop
	for lvl := 1; lvl < p.Depth; lvl++ {
		bfac := branch[lvl-1]
		count := parents * bfac
		rows := make([]reldb.Row, count)
		for i := 0; i < count; i++ {
			rows[i] = reldb.Row{
				xdm.Int(int64(i)),
				xdm.Int(int64(i / bfac)),
				xdm.Float(float64(50 + rng.Intn(200))),
			}
		}
		levels = append(levels, rows)
		parents = count
	}
	return topNames, levels
}

// Build creates the schema, loads data, compiles the view, and registers
// the triggers in the given mode. Data layout: the number of top elements
// is LeafTuples/Fanout; intermediate levels use a uniform branching factor
// so that each top element owns Fanout leaves.
func Build(p Params, mode core.Mode, seed int64) (*Setup, error) {
	return build(p, mode, seed, false)
}

// BuildAdaptive is Build with per-group translation modes enabled (every
// group starts in mode, flippable at runtime via SetGroupModes or the
// stream's ModeFlip ops).
func BuildAdaptive(p Params, mode core.Mode, seed int64) (*Setup, error) {
	return build(p, mode, seed, true)
}

func build(p Params, mode core.Mode, seed int64, adaptive bool) (*Setup, error) {
	if p.Depth < 2 {
		return nil, fmt.Errorf("workload: depth must be >= 2")
	}
	s := BuildSchema(p)
	db, err := reldb.Open(s)
	if err != nil {
		return nil, err
	}
	w := &Setup{Params: p, Schema: s, DB: db, rng: rand.New(rand.NewSource(seed))}

	topNames, levels := genRows(p, w.rng)
	w.TopNames = topNames
	for lvl, rows := range levels {
		if err := db.Insert(p.TableName(lvl), rows...); err != nil {
			return nil, err
		}
	}

	// Engine, view, triggers.
	e := core.NewEngine(db, mode)
	if adaptive {
		// Before trigger registration: grouping signatures depend on it.
		if err := e.SetModePolicy(nil); err != nil {
			return nil, err
		}
	}
	w.Engine = e
	e.RegisterAction("notify", func(core.Invocation) error {
		w.Notifications++
		return nil
	})
	w.ViewSrc = ViewSource(p)
	if _, err := e.CreateView("doc", w.ViewSrc); err != nil {
		return nil, err
	}
	if err := w.CreateTriggers(p.NumTriggers, p.NumSatisfied); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return w, nil
}

// CreateTriggers populates n structurally similar UPDATE triggers on the
// top-level element. numSatisfied of them use the name of top element 0
// (the one the updates target); the rest use distinct other names, so each
// update satisfies exactly numSatisfied triggers (Table 2's "number of
// satisfied triggers").
func (w *Setup) CreateTriggers(n, numSatisfied int) error {
	for i := 0; i < n; i++ {
		if err := w.Engine.CreateTrigger(triggerSrc(w.TopNames, i, min(numSatisfied, n))); err != nil {
			return err
		}
	}
	return nil
}

// triggerSrc renders the i-th structurally similar trigger: the first
// numSatisfied watch top element 0's name; the rest spread over the other
// names, so updates under any top element fire the triggers watching it.
func triggerSrc(topNames []string, i, numSatisfied int) string {
	name := topNames[0]
	if i >= numSatisfied {
		name = topNames[1+i%(max(1, len(topNames)-1))]
		if name == topNames[0] {
			name = "No Such Item"
		}
	}
	return fmt.Sprintf(`CREATE TRIGGER trig%d AFTER UPDATE ON view('doc')/e0 WHERE NEW_NODE/@name = '%s' DO notify(NEW_NODE)`, i, name)
}

// LeafTable returns the leaf table's name.
func (w *Setup) LeafTable() string { return w.Params.TableName(w.Params.Depth - 1) }

// UpdateOneLeaf performs one independent single-row update on the leaf
// table, targeting a leaf under top element 0 (so the satisfied triggers
// fire); the paper averages over 100 such updates.
func (w *Setup) UpdateOneLeaf() error {
	// Leaf ids under top element 0 are 0..(fanout-1) by construction for
	// depth 2; for deeper trees the first leaf block still belongs to top 0.
	leafID := int64(w.rng.Intn(maxInt(1, w.Params.Fanout)))
	newPayload := xdm.Float(float64(50 + w.rng.Intn(200)))
	_, err := w.Engine.UpdateByPK(w.LeafTable(), []xdm.Value{xdm.Int(leafID)}, func(r reldb.Row) reldb.Row {
		r[len(r)-1] = newPayload
		return r
	})
	return err
}

// UpdateLeavesBatch updates leaf rows 0..k-1 (a contiguous block spanning
// ceil(k/Fanout) top-level elements) inside ONE batched transaction: the
// translated SQL triggers fire once at commit with the merged transition
// tables, so per-row trigger cost amortizes with k.
func (w *Setup) UpdateLeavesBatch(k int) error {
	if k > w.Params.LeafTuples {
		k = w.Params.LeafTuples
	}
	return w.Engine.Batch(func(tx *reldb.Tx) error {
		for i := 0; i < k; i++ {
			newPayload := xdm.Float(float64(50 + w.rng.Intn(200)))
			if _, err := tx.UpdateByPK(w.LeafTable(), []xdm.Value{xdm.Int(int64(i))}, func(r reldb.Row) reldb.Row {
				r[len(r)-1] = newPayload
				return r
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// UpdateLeavesSingle updates the same leaf rows as UpdateLeavesBatch but
// as k independent statements, each paying a full trigger firing.
func (w *Setup) UpdateLeavesSingle(k int) error {
	if k > w.Params.LeafTuples {
		k = w.Params.LeafTuples
	}
	for i := 0; i < k; i++ {
		newPayload := xdm.Float(float64(50 + w.rng.Intn(200)))
		if _, err := w.Engine.UpdateByPK(w.LeafTable(), []xdm.Value{xdm.Int(int64(i))}, func(r reldb.Row) reldb.Row {
			r[len(r)-1] = newPayload
			return r
		}); err != nil {
			return err
		}
	}
	return nil
}

// UpdateRandomLeaf updates a uniformly random leaf row (for data-size
// experiments where the touched element should be arbitrary).
func (w *Setup) UpdateRandomLeaf() error {
	leafID := int64(w.rng.Intn(maxInt(1, w.Params.LeafTuples)))
	newPayload := xdm.Float(float64(50 + w.rng.Intn(200)))
	_, err := w.Engine.UpdateByPK(w.LeafTable(), []xdm.Value{xdm.Int(leafID)}, func(r reldb.Row) reldb.Row {
		r[len(r)-1] = newPayload
		return r
	})
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
