package workload

import (
	"strings"
	"testing"

	"quark/internal/core"
)

// TestWorkloadEndToEnd: a small Table 2 instance fires exactly
// NumSatisfied notifications per leaf update in every mode.
func TestWorkloadEndToEnd(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p := Params{Depth: 2, LeafTuples: 512, Fanout: 16, NumTriggers: 20, NumSatisfied: 3}
			w, err := Build(p, mode, 7)
			if err != nil {
				t.Fatal(err)
			}
			if w.DB.RowCount("vendor") != 512 || w.DB.RowCount("product") != 32 {
				t.Fatalf("rows: vendor=%d product=%d", w.DB.RowCount("vendor"), w.DB.RowCount("product"))
			}
			for i := 0; i < 5; i++ {
				if err := w.UpdateOneLeaf(); err != nil {
					t.Fatal(err)
				}
			}
			if w.Notifications != 5*3 {
				t.Errorf("notifications = %d, want 15 (5 updates x 3 satisfied)", w.Notifications)
			}
			st := w.Engine.Stats()
			if st.XMLTriggers != 20 {
				t.Errorf("XML triggers = %d", st.XMLTriggers)
			}
			if mode == core.ModeUngrouped && st.SQLTriggers < 20 {
				t.Errorf("ungrouped SQL triggers = %d, want >= 20", st.SQLTriggers)
			}
			if mode != core.ModeUngrouped && st.SQLTriggers >= 20 {
				t.Errorf("%s SQL triggers = %d, want shared (< 20)", mode, st.SQLTriggers)
			}
		})
	}
}

// TestWorkloadDepths: deeper hierarchies build, evaluate, and fire.
func TestWorkloadDepths(t *testing.T) {
	for _, depth := range []int{2, 3, 4, 5} {
		p := Params{Depth: depth, LeafTuples: 256, Fanout: 16, NumTriggers: 10, NumSatisfied: 1}
		w, err := Build(p, core.ModeGrouped, 11)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		// The view materializes with nested levels.
		doc, err := w.Engine.EvalView("doc")
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		tops := doc.ChildElements("e0")
		if len(tops) == 0 {
			t.Fatalf("depth %d: empty view", depth)
		}
		// Verify nesting depth by following e1/e2/... chains.
		cur := tops[0]
		for lvl := 1; lvl < depth; lvl++ {
			name := "e" + string(rune('0'+lvl))
			kids := cur.ChildElements(name)
			if len(kids) == 0 {
				t.Fatalf("depth %d: no %s under %s", depth, name, cur.Name)
			}
			cur = kids[0]
		}
		before := w.Notifications
		if err := w.UpdateOneLeaf(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if w.Notifications != before+1 {
			t.Errorf("depth %d: notifications = %d, want %d", depth, w.Notifications, before+1)
		}
	}
}

// TestWorkloadSatisfiedCounts: varying NumSatisfied changes exactly the
// number of fired actions.
func TestWorkloadSatisfiedCounts(t *testing.T) {
	for _, sat := range []int{1, 5, 10} {
		p := Params{Depth: 2, LeafTuples: 256, Fanout: 16, NumTriggers: 40, NumSatisfied: sat}
		w, err := Build(p, core.ModeGroupedAgg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.UpdateOneLeaf(); err != nil {
			t.Fatal(err)
		}
		if w.Notifications != sat {
			t.Errorf("satisfied=%d: notifications = %d", sat, w.Notifications)
		}
	}
}

// TestViewSourceShape: generated XQuery contains the paper's count
// predicate on the lowest level.
func TestViewSourceShape(t *testing.T) {
	src := ViewSource(Params{Depth: 2})
	if !strings.Contains(src, "count($s1) >= 2") {
		t.Errorf("depth-2 view missing count predicate:\n%s", src)
	}
	src = ViewSource(Params{Depth: 4})
	if !strings.Contains(src, "count($s3) >= 2") {
		t.Errorf("depth-4 view should count the leaf level:\n%s", src)
	}
	if strings.Contains(src, "count($s1)") {
		t.Errorf("depth-4 view should not count level 1:\n%s", src)
	}
}

// TestUpdatesTouchOnlyAffectedData: with GROUPED mode on a larger dataset,
// a single leaf update reads a bounded number of rows (the Figure 23
// property: cost independent of data size).
func TestUpdatesTouchOnlyAffectedData(t *testing.T) {
	p := Params{Depth: 2, LeafTuples: 8192, Fanout: 16, NumTriggers: 50, NumSatisfied: 1}
	w, err := Build(p, core.ModeGrouped, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.UpdateOneLeaf(); err != nil { // warm-up
		t.Fatal(err)
	}
	w.DB.ResetStats()
	if err := w.UpdateOneLeaf(); err != nil {
		t.Fatal(err)
	}
	st := w.DB.Stats()
	if st.FullScans != 0 {
		t.Errorf("full scans per update = %d, want 0", st.FullScans)
	}
	if st.RowsRead > 512 {
		t.Errorf("rows read per update = %d, want bounded (dataset has 8192 leaves)", st.RowsRead)
	}
}
