package workload

import (
	"reflect"
	"testing"

	"quark/internal/core"
)

// TestGenStreamDeterministic: the same (Params, StreamParams, seed) yields
// the same ops element for element — the property that makes a fuzzer
// failure replayable from its logged seed — and a different seed yields a
// different stream.
func TestGenStreamDeterministic(t *testing.T) {
	p := Params{Depth: 2, LeafTuples: 256, Fanout: 16, NumTriggers: 10, NumSatisfied: 2}
	sp := DefaultStream(200)
	a, err := GenStream(p, sp, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenStream(p, sp, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("op %d differs between identical seeds:\n%+v\n%+v", i, a[i], b[i])
			}
		}
		t.Fatal("streams differ in length")
	}
	c, err := GenStream(p, sp, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("seeds 42 and 43 generated identical streams")
	}
}

// TestGenStreamWellFormed: generated ops respect the key-space contract —
// inserts never collide with live ids, deletes and moves target live
// leaves, moves change the parent, and payloads never repeat (no no-op
// updates).
func TestGenStreamWellFormed(t *testing.T) {
	p := Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 10, NumSatisfied: 1}
	sp := DefaultStream(500)
	ops, err := GenStream(p, sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]int64{} // leaf -> parent
	numTop := p.NumTop()
	for i := 0; i < numTop*p.Fanout; i++ {
		live[int64(i)] = int64(i / p.Fanout)
	}
	seenPayload := map[float64]bool{}
	kinds := map[OpKind]int{}
	batches := 0
	for oi, op := range ops {
		if len(op.Batch) > 1 {
			batches++
			roots := map[int64]bool{}
			for _, lo := range op.Batch {
				if lo.Kind == OpUpdate {
					roots[live[lo.Leaf]] = true
				} else {
					roots[lo.Parent] = true
				}
			}
			if len(roots) < 2 {
				t.Errorf("op %d: batch touches %d roots, want >= 2", oi, len(roots))
			}
		}
		for _, lo := range op.Batch {
			kinds[lo.Kind]++
			switch lo.Kind {
			case OpUpdate:
				if _, ok := live[lo.Leaf]; !ok {
					t.Fatalf("op %d updates dead leaf %d", oi, lo.Leaf)
				}
				if lo.Payload < 1000 || seenPayload[lo.Payload] {
					t.Fatalf("op %d: payload %v reused or out of range", oi, lo.Payload)
				}
				seenPayload[lo.Payload] = true
			case OpInsert:
				if _, ok := live[lo.Leaf]; ok {
					t.Fatalf("op %d inserts existing leaf %d", oi, lo.Leaf)
				}
				live[lo.Leaf] = lo.Parent
				if seenPayload[lo.Payload] {
					t.Fatalf("op %d: payload %v reused", oi, lo.Payload)
				}
				seenPayload[lo.Payload] = true
			case OpDelete:
				if _, ok := live[lo.Leaf]; !ok {
					t.Fatalf("op %d deletes dead leaf %d", oi, lo.Leaf)
				}
				delete(live, lo.Leaf)
			case OpMove:
				cur, ok := live[lo.Leaf]
				if !ok {
					t.Fatalf("op %d moves dead leaf %d", oi, lo.Leaf)
				}
				if cur == lo.Parent {
					t.Fatalf("op %d moves leaf %d to its own root %d", oi, lo.Leaf, lo.Parent)
				}
				live[lo.Leaf] = lo.Parent
			}
		}
	}
	for _, k := range []OpKind{OpUpdate, OpInsert, OpDelete, OpMove} {
		if kinds[k] == 0 {
			t.Errorf("stream of 500 ops generated no ops of kind %d", k)
		}
	}
	if batches == 0 {
		t.Error("stream generated no batch ops")
	}
}

// TestBuildShardedParity: BuildSharded holds exactly the single-engine
// data (per-table row counts across the fleet) and fires the same number
// of notifications for the same routed update.
func TestBuildShardedParity(t *testing.T) {
	p := Params{Depth: 2, LeafTuples: 256, Fanout: 16, NumTriggers: 20, NumSatisfied: 3}
	single, err := Build(p, core.ModeGrouped, 9)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildSharded(p, core.ModeGrouped, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl < p.Depth; lvl++ {
		table := p.TableName(lvl)
		want := single.DB.RowCount(table)
		got := 0
		for i := 0; i < sharded.Engine.NumShards(); i++ {
			got += sharded.Engine.Shard(i).DB().RowCount(table)
		}
		if got != want {
			t.Errorf("%s: fleet holds %d rows, single engine %d", table, got, want)
		}
	}
	// Same leaf, same payload change on both engines: leaf 0 sits under
	// top element 0, which NumSatisfied triggers watch.
	if err := sharded.UpdateLeafOn(0, 5000); err != nil {
		t.Fatal(err)
	}
	if got := sharded.Notifications.Load(); got != int64(p.NumSatisfied) {
		t.Errorf("sharded update fired %d notifications, want %d", got, p.NumSatisfied)
	}
}
