package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveN(42)
	h.Since(time.Now())
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	if s.Child("x") != nil {
		t.Fatal("nil span child must be nil")
	}
	if s.Render() != "" || s.Duration() != 0 || s.Ended() || s.Children() != nil {
		t.Fatal("nil span accessors")
	}
	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.Func("f", func() int64 { return 1 })
	r.GaugeFunc("g", func() int64 { return 1 })
	r.Emit("e", nil)
	r.OnEvent(nil)
	if r.StartSpan("tx") != nil {
		t.Fatal("nil registry span")
	}
	if ev := r.Events(); ev != nil {
		t.Fatal("nil registry events")
	}
	if sp := r.FinishedSpans(); sp != nil {
		t.Fatal("nil registry spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHistogramBuckets pins the bucket-selection rule: a value lands in
// the first bucket whose upper bound covers it, a value exactly equal to
// a bound lands in that bound's bucket (le semantics), and values above
// the last bound land in the overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 0}, {9, 0},
		{10, 0}, // exactly on the first bound: le semantics
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow
	}
	for _, c := range cases {
		before := h.buckets[c.bucket].Load()
		h.ObserveN(c.v)
		if got := h.buckets[c.bucket].Load(); got != before+1 {
			t.Errorf("ObserveN(%d): bucket %d not incremented", c.v, c.bucket)
		}
	}
	s := h.snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if len(s.Buckets) != len(s.Bounds)+1 {
		t.Fatalf("want %d buckets (bounds + overflow), got %d", len(s.Bounds)+1, len(s.Buckets))
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]int64{100, 10, 1000})
	h.ObserveN(5)
	if h.buckets[0].Load() != 1 {
		t.Fatal("bounds were not sorted at creation")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter must return the same handle for the same name")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge must return the same handle for the same name")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{99}) // later bounds ignored
	if h1 != h2 || len(h2.bounds) != 2 {
		t.Fatal("Histogram must keep first-registration bounds")
	}
}

func TestSnapshotMergesFuncCollectors(t *testing.T) {
	r := New()
	r.Counter("direct").Add(7)
	r.Func("collected_total", func() int64 { return 41 })
	r.GaugeFunc("depth", func() int64 { return 13 })
	s := r.Snapshot()
	if s.Counters["direct"] != 7 || s.Counters["collected_total"] != 41 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["depth"] != 13 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
}

// TestConcurrentRecording hammers every recording surface from many
// goroutines while snapshots are taken; run under -race this proves the
// recording paths are race-clean.
func TestConcurrentRecording(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.ObserveN(int64(i))
				if i%100 == 0 {
					r.Emit("tick", map[string]string{"w": fmt.Sprint(w)})
					sp := r.StartSpan("tx")
					sp.Child("prepare").End()
					sp.End()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
				r.FinishedSpans()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := r.Snapshot()
	if s.Counters["c"] != workers*iters {
		t.Fatalf("counter = %d, want %d", s.Counters["c"], workers*iters)
	}
	if s.Histograms["h"].Count != workers*iters {
		t.Fatalf("hist count = %d, want %d", s.Histograms["h"].Count, workers*iters)
	}
}

func TestEventRingWrap(t *testing.T) {
	r := New()
	total := eventRingSize + 50
	for i := 0; i < total; i++ {
		r.Emit("e", map[string]string{"i": fmt.Sprint(i)})
	}
	evs := r.Events()
	if len(evs) != eventRingSize {
		t.Fatalf("len = %d, want %d", len(evs), eventRingSize)
	}
	if evs[0].Fields["i"] != fmt.Sprint(total-eventRingSize) {
		t.Fatalf("oldest retained = %s", evs[0].Fields["i"])
	}
	if evs[len(evs)-1].Fields["i"] != fmt.Sprint(total-1) {
		t.Fatalf("newest retained = %s", evs[len(evs)-1].Fields["i"])
	}
}

func TestEventHook(t *testing.T) {
	r := New()
	var got []string
	r.OnEvent(func(ev Event) { got = append(got, ev.Kind) })
	r.Emit("a", nil)
	r.Emit("b", nil)
	r.OnEvent(nil)
	r.Emit("c", nil)
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("hook saw %v", got)
	}
}

func TestSpanTree(t *testing.T) {
	r := New()
	tx := r.StartSpan("tx")
	tx.SetAttr("shards", "2")
	prep := tx.Child("prepare")
	eval := prep.Child("eval")
	eval.End()
	prep.End()
	commit := tx.Child("commit")
	// leave commit open: root End must close it
	tx.End()
	if !commit.Ended() {
		t.Fatal("root End must close open descendants")
	}
	tx.End() // idempotent
	fin := r.FinishedSpans()
	if len(fin) != 1 {
		t.Fatalf("finished = %d", len(fin))
	}
	kids := fin[0].Children()
	if len(kids) != 2 || kids[0].Name != "prepare" || kids[1].Name != "commit" {
		t.Fatalf("children = %v", kids)
	}
	out := fin[0].Render()
	for _, want := range []string{"tx ", "shards=2", "\n  prepare", "\n    eval", "\n  commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestSpanChildEndOnlyDoesNotRetain(t *testing.T) {
	r := New()
	tx := r.StartSpan("tx")
	tx.Child("prepare").End()
	if n := len(r.FinishedSpans()); n != 0 {
		t.Fatalf("child End retained %d roots", n)
	}
	tx.End()
	if n := len(r.FinishedSpans()); n != 1 {
		t.Fatalf("root End retained %d roots", n)
	}
}

func TestSpanRingWrap(t *testing.T) {
	r := New()
	total := spanRingSize + 10
	for i := 0; i < total; i++ {
		sp := r.StartSpan("tx")
		sp.SetAttr("i", fmt.Sprint(i))
		sp.End()
	}
	fin := r.FinishedSpans()
	if len(fin) != spanRingSize {
		t.Fatalf("len = %d, want %d", len(fin), spanRingSize)
	}
	if fin[0].Attrs["i"] != fmt.Sprint(total-spanRingSize) {
		t.Fatalf("oldest retained = %s", fin[0].Attrs["i"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("quark_core_fires_total").Add(3)
	r.Gauge("quark_dispatch_queue_depth").Set(5)
	h := r.Histogram("quark_core_fire_ns", []int64{10, 100})
	h.ObserveN(7)   // bucket le=10
	h.ObserveN(50)  // bucket le=100
	h.ObserveN(999) // overflow
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE quark_core_fires_total counter\nquark_core_fires_total 3\n",
		"# TYPE quark_dispatch_queue_depth gauge\nquark_dispatch_queue_depth 5\n",
		"# TYPE quark_core_fire_ns histogram\n",
		`quark_core_fire_ns_bucket{le="10"} 1`,
		`quark_core_fire_ns_bucket{le="100"} 2`, // cumulative
		`quark_core_fire_ns_bucket{le="+Inf"} 3`,
		"quark_core_fire_ns_sum 1056",
		"quark_core_fire_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefaultLatencyBounds)
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.ObserveN(i % 1_000_000)
			i += 997
		}
	})
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.ObserveN(int64(i))
	}
}
