// Package obs is the repo's dependency-free observability kit: atomic
// counters and gauges, fixed-bucket latency histograms with lock-free
// recording, a span API for tracing one transaction through the commit
// pipeline (route → prepare-per-shard → trigger eval → stage →
// group-commit outbox append → ack → sink delivery), a structured event
// ring for state transitions that used to be silent (rebalance
// start/finish, dead-letter quarantine, redrive, torn-tail truncation),
// and an HTTP debug server exposing all of it as Prometheus text, JSON,
// and net/http/pprof.
//
// Every method on Counter, Gauge, Histogram, Span, and Registry is safe
// on a nil receiver and does nothing — that nil check IS the disabled
// fast path. Layers keep an atomic pointer to their resolved handles;
// when observability is off the pointer is nil, the instrumentation
// collapses to a branch, and no clock is read.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// and the nil pointer are both ready to use (nil no-ops).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the histogram upper bounds (nanoseconds) used
// for every latency series in the engine: 1µs up to ~10s in roughly
// 1-2.5-5 steps, which brackets everything from an in-memory index hit
// to a full fsync stall.
var DefaultLatencyBounds = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000, 100_000_000, 250_000_000,
	500_000_000, 1_000_000_000, 2_500_000_000, 10_000_000_000,
}

// Histogram is a fixed-bucket histogram with lock-free recording: one
// atomic add into the bucket whose upper bound first covers the value,
// plus count and sum. Bounds are set at creation and never change, so
// Observe never allocates or locks. Nil-safe.
type Histogram struct {
	bounds  []int64 // sorted upper bounds; values above the last go in the overflow bucket
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := make([]int64, len(bounds))
	copy(bs, bounds)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(int64(d)) }

// Since records the elapsed time from start to now.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveN(int64(time.Since(start)))
}

// ObserveN records one raw value (nanoseconds for latency series).
func (h *Histogram) ObserveN(v int64) {
	if h == nil {
		return
	}
	// Binary search the bucket: bounds are small (≤ ~24), so this is a
	// handful of compares with no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistSnapshot is one histogram's point-in-time state. Buckets[i] counts
// observations ≤ Bounds[i]; the final extra bucket is the overflow.
type HistSnapshot struct {
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry holds every metric by name plus the event ring and the
// completed-span ring. Get-or-create accessors are cheap enough for
// setup paths; hot paths should resolve their handles once at
// enable time and keep the pointers. All methods are nil-safe: a nil
// registry hands out nil handles, and nil handles no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
	gfuncs   map[string]func() int64

	events eventRing
	spans  spanRing
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
		gfuncs:   make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (pass nil for DefaultLatencyBounds). Bounds
// are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Func registers a snapshot-time collector: fn is called when the
// registry is scraped or snapshotted, so pre-existing atomic stats
// (reldb scan counters, dispatch queue depths, outbox watermarks) are
// exported without double-instrumenting their hot paths. Re-registering
// a name replaces the collector.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// GaugeFunc registers a snapshot-time collector exported as a gauge
// (instantaneous values: queue depths, watermarks, live lane counts).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gfuncs[name] = fn
}

// Snapshot is the registry's full point-in-time state: every counter,
// gauge, func collector, histogram, and the recent-event tail.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Events     []Event                 `json:"events,omitempty"`
}

// Snapshot captures the registry. Func collectors run inside, so the
// returned map already merges live external stats. Safe to call
// concurrently with recording. Nil registries return an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	gfuncs := make(map[string]func() int64, len(r.gfuncs))
	for k, v := range r.gfuncs {
		gfuncs[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	// Func collectors may take their own locks (e.g. outbox.Stats), so
	// they run outside the registry mutex.
	for k, fn := range funcs {
		s.Counters[k] = fn()
	}
	for k, fn := range gfuncs {
		s.Gauges[k] = fn()
	}
	s.Events = r.Events()
	return s
}
