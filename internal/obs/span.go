package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed node in a transaction trace. A root span is started
// from the registry ("tx" for a batch commit); children nest under it
// ("prepare", "commit", "abort", "outbox-append", ...). Ending a root
// span retains the finished tree in the registry's span ring, where
// tests and the /snapshot endpoint can read it.
//
// All methods are nil-safe no-ops, so disabled tracing costs one branch.
// A span tree is guarded by its root's mutex: children may be added and
// ended from any goroutine.
type Span struct {
	Name  string
	Attrs map[string]string

	start time.Time
	end   time.Time

	children []*Span
	root     *Span // self for roots
	reg      *Registry
	mu       sync.Mutex // root-only; guards the whole tree
}

// spanRingSize bounds how many finished root spans the registry keeps.
const spanRingSize = 256

type spanRing struct {
	mu  sync.Mutex
	buf [spanRingSize]*Span
	n   int
}

// StartSpan opens a root span. End it to retain the finished tree.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{Name: name, start: time.Now(), reg: r}
	s.root = s
	return s
}

// Child opens a child span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, root: s.root}
	s.root.mu.Lock()
	c.start = time.Now()
	s.children = append(s.children, c)
	s.root.mu.Unlock()
	return c
}

// SetAttr attaches one key=value annotation.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.root.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[key] = val
	s.root.mu.Unlock()
}

// End closes the span. Ending a root retains its tree in the registry's
// finished ring; any still-open descendants are closed with it so the
// retained tree is always fully ended. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	root := s.root
	root.mu.Lock()
	now := time.Now()
	first := s.end.IsZero()
	if first {
		s.end = now
	}
	if s == root && first {
		closeOpenLocked(root, now)
	}
	root.mu.Unlock()
	if s == root && first && root.reg != nil {
		ring := &root.reg.spans
		ring.mu.Lock()
		ring.buf[ring.n%spanRingSize] = root
		ring.n++
		ring.mu.Unlock()
	}
}

func closeOpenLocked(s *Span, now time.Time) {
	if s.end.IsZero() {
		s.end = now
	}
	for _, c := range s.children {
		closeOpenLocked(c, now)
	}
}

// Duration returns the span's elapsed time (0 if unfinished or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.root.mu.Lock()
	defer s.root.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Ended reports whether the span has been closed.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.root.mu.Lock()
	defer s.root.mu.Unlock()
	return !s.end.IsZero()
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.root.mu.Lock()
	defer s.root.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// FinishedSpans returns the retained finished root spans, oldest first.
func (r *Registry) FinishedSpans() []*Span {
	if r == nil {
		return nil
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	n := r.spans.n
	count := n
	if count > spanRingSize {
		count = spanRingSize
	}
	out := make([]*Span, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.spans.buf[i%spanRingSize])
	}
	return out
}

// Render formats the span tree as an indented one-span-per-line trace —
// the human-readable form the README's "how to read a commit trace"
// section documents.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.root.mu.Lock()
	renderLocked(&b, s, 0)
	s.root.mu.Unlock()
	return b.String()
}

func renderLocked(b *strings.Builder, s *Span, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	d := time.Duration(0)
	if !s.end.IsZero() {
		d = s.end.Sub(s.start)
	}
	b.WriteString(s.Name)
	fmt.Fprintf(b, " %v", d)
	for k, v := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", k, v)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		renderLocked(b, c, depth+1)
	}
}
