package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (untyped counters/gauges plus classic _bucket/_sum/_count
// histogram series), deterministically sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", k, k, s.Counters[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", k, k, s.Gauges[k]); err != nil {
			return err
		}
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", k); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", k, strconv.FormatInt(b, 10), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			k, h.Count, k, h.Sum, k, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Server is a running debug HTTP server; Close stops it.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr is the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the debug server on addr and returns immediately.
// Endpoints:
//
//	/metrics       Prometheus text exposition of the registry
//	/snapshot      JSON: the snapshot() value if given, else the registry
//	/debug/pprof/  the standard net/http/pprof suite
//
// snapshot, when non-nil, supplies the /snapshot payload — pass the
// engine's unified Snapshot method to expose the cross-layer struct.
func Serve(addr string, reg *Registry, snapshot func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any
		if snapshot != nil {
			v = snapshot()
		} else {
			v = reg.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
