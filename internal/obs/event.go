package obs

import (
	"sync"
	"time"
)

// Event is one structured state transition: a kind plus flat string
// fields. Transitions that used to be silent — rebalance start/finish,
// dead-letter quarantine, redrive, torn-tail truncation — emit these.
type Event struct {
	Time   time.Time         `json:"time"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// eventRingSize bounds the retained event tail; old events are
// overwritten, never blocking the emitter.
const eventRingSize = 256

type eventRing struct {
	mu   sync.Mutex
	buf  [eventRingSize]Event
	n    int // total emitted
	hook func(Event)
}

// Emit records one event in the ring and invokes the hook, if any. The
// hook runs synchronously on the emitting goroutine, so hooks must be
// fast and must not call back into the emitting layer.
func (r *Registry) Emit(kind string, fields map[string]string) {
	if r == nil {
		return
	}
	ev := Event{Time: time.Now(), Kind: kind, Fields: fields}
	r.events.mu.Lock()
	r.events.buf[r.events.n%eventRingSize] = ev
	r.events.n++
	hook := r.events.hook
	r.events.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// OnEvent installs fn as the event hook (nil to clear). One hook at a
// time; installing replaces the previous one.
func (r *Registry) OnEvent(fn func(Event)) {
	if r == nil {
		return
	}
	r.events.mu.Lock()
	r.events.hook = fn
	r.events.mu.Unlock()
}

// Events returns the retained event tail, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	n := r.events.n
	if n == 0 {
		return nil
	}
	count := n
	if count > eventRingSize {
		count = eventRingSize
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, r.events.buf[i%eventRingSize])
	}
	return out
}
