package grouping

import (
	"strings"
	"testing"

	"quark/internal/xdm"
	"quark/internal/xqgm"
)

func TestConstRefMustBeBound(t *testing.T) {
	cr := &ConstRef{Idx: 0}
	if _, err := cr.Eval(&xqgm.Env{}); err == nil {
		t.Error("unbound ConstRef must error")
	}
	if cr.String() != "?0" {
		t.Errorf("String = %q", cr.String())
	}
}

func TestBind(t *testing.T) {
	tmpl := &xqgm.Cmp{Op: "=", L: xqgm.Col(3), R: &ConstRef{Idx: 0}}
	bound := Bind(tmpl, []xdm.Value{xdm.Str("CRT 15")})
	v, err := bound.Eval(&xqgm.Env{In: [2][]xdm.Value{{xdm.Null, xdm.Null, xdm.Null, xdm.Str("CRT 15")}, nil}})
	if err != nil || !v.AsBool() {
		t.Errorf("bound template eval = %v, %v", v, err)
	}
	// Out-of-range consts are left unbound (error at eval).
	ub := Bind(tmpl, nil)
	if _, err := ub.Eval(&xqgm.Env{In: [2][]xdm.Value{{xdm.Null, xdm.Null, xdm.Null, xdm.Str("x")}, nil}}); err == nil {
		t.Error("unbindable template should error at eval")
	}
}

func TestGroupMembership(t *testing.T) {
	tmpl := &xqgm.Cmp{Op: "=", L: xqgm.Col(0), R: &ConstRef{Idx: 0}}
	g := NewGroup("sig", tmpl, 1)
	if err := g.Add("t1", []xdm.Value{xdm.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("t2", []xdm.Value{xdm.Str("a"), xdm.Str("b")}); err == nil {
		t.Error("wrong constant arity accepted")
	}
	if err := g.Add("t3", []xdm.Value{xdm.Str("b")}); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || g.Signature() != "sig" {
		t.Errorf("size=%d sig=%q", g.Size(), g.Signature())
	}
	if !g.Remove("t1") || g.Remove("t1") {
		t.Error("Remove semantics")
	}
	if g.Size() != 1 {
		t.Errorf("size after remove = %d", g.Size())
	}
}

// TestConstantsTable: distinct constant combinations share one row with
// merged TrigIDs (the Section 5.1 constants table).
func TestConstantsTable(t *testing.T) {
	tmpl := &xqgm.Cmp{Op: "=", L: xqgm.Col(0), R: &ConstRef{Idx: 0}}
	g := NewGroup("sig", tmpl, 1)
	for _, m := range []struct{ id, c string }{
		{"1", "CRT 15"}, {"2", "CRT 15"}, {"3", "LCD 19"},
	} {
		if err := g.Add(m.id, []xdm.Value{xdm.Str(m.c)}); err != nil {
			t.Fatal(err)
		}
	}
	ct := g.ConstantsTable()
	if ct.Type != xqgm.OpConstants || len(ct.ConstRows) != 2 {
		t.Fatalf("constants rows = %d, want 2 (merged combos)", len(ct.ConstRows))
	}
	ctx := xqgm.NewEvalContext(nil, nil)
	rows, err := ctx.Eval(ct)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, r := range rows {
		found[r[1].AsString()] = r[0].AsString()
	}
	if found["CRT 15"] != "1,2" || found["LCD 19"] != "3" {
		t.Errorf("TrigIDs = %v (want CRT 15 -> \"1,2\")", found)
	}
	ids := SplitTriggerIDs(xdm.Str("1,2"))
	if len(ids) != 2 || ids[0] != "1" || ids[1] != "2" {
		t.Errorf("SplitTriggerIDs = %v", ids)
	}
	if SplitTriggerIDs(xdm.Str("")) != nil {
		t.Error("empty TrigIDs should split to nil")
	}
}

// TestBuildGroupedPlan: equality conditions become join pairs; the rest
// stays residual (decorrelated Figure 14/15 form).
func TestBuildGroupedPlan(t *testing.T) {
	// Condition: col0 = ?0 and col1 < ?1.
	tmpl := &xqgm.Logic{Op: "and", Args: []xqgm.Expr{
		&xqgm.Cmp{Op: "=", L: xqgm.Col(0), R: &ConstRef{Idx: 0}},
		&xqgm.Cmp{Op: "<", L: xqgm.Col(1), R: &ConstRef{Idx: 1}},
	}}
	g := NewGroup("sig", tmpl, 2)
	_ = g.Add("a", []xdm.Value{xdm.Str("x"), xdm.Int(10)})
	_ = g.Add("b", []xdm.Value{xdm.Str("y"), xdm.Int(5)})

	// A little "affected nodes" relation: (name, value).
	an := xqgm.NewConstants([]string{"name", "value"}, [][]xqgm.Expr{
		{xqgm.LitOf(xdm.Str("x")), xqgm.LitOf(xdm.Int(7))},
		{xqgm.LitOf(xdm.Str("y")), xqgm.LitOf(xdm.Int(7))},
		{xqgm.LitOf(xdm.Str("z")), xqgm.LitOf(xdm.Int(1))},
	})
	plan := BuildGroupedPlan(g, an)
	if plan.TrigIDsCol != 2 || plan.ConstBase != 3 {
		t.Errorf("layout: TrigIDs=%d ConstBase=%d", plan.TrigIDsCol, plan.ConstBase)
	}
	ctx := xqgm.NewEvalContext(nil, nil)
	rows, err := ctx.Eval(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// x matches trigger a only (7 < 10); y does not match b (7 >= 5);
	// z matches nothing.
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1: %v", len(rows), rows)
	}
	if rows[0][0].AsString() != "x" || rows[0][plan.TrigIDsCol].AsString() != "a" {
		t.Errorf("row = %v", rows[0])
	}
	// The join found at the plan root carries one equi pair and a residual.
	join := plan.Root
	if join.Type != xqgm.OpJoin || len(join.On) != 1 || join.JoinPred == nil {
		t.Errorf("plan shape: %s", join)
	}
}

func TestSignature(t *testing.T) {
	tmpl := &xqgm.Cmp{Op: "=", L: xqgm.Col(0), R: &ConstRef{Idx: 0}}
	s := Signature(tmpl)
	if !strings.Contains(s, "?0") {
		t.Errorf("signature %q should show placeholders", s)
	}
	if Signature(nil) != "<nil>" {
		t.Error("nil signature")
	}
}
