// Package grouping implements scalable trigger grouping (paper Section
// 5.1): structurally similar XML triggers — identical except for the
// constant values in their conditions — share a single SQL trigger. Each
// group holds a constants table with a TrigIDs column; selections on
// constants are converted into joins with the constants table, and residual
// (possibly nested) condition parts are evaluated per (row, constants-row)
// pair, which is the decorrelated form of the paper's correlated G_grouped
// graph (Figures 14-15).
package grouping

import (
	"fmt"
	"sort"
	"strings"

	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// ConstRef is a placeholder expression referencing the j-th constant of a
// trigger's condition. Conditions are written against the affected-node
// graph's output with ConstRef leaves; Bind or BuildGroupedPlan replaces
// them before evaluation.
type ConstRef struct {
	Idx int
}

// Eval implements xqgm.Expr; a ConstRef must be rewritten away before
// evaluation.
func (c *ConstRef) Eval(*xqgm.Env) (xdm.Value, error) {
	return xdm.Null, fmt.Errorf("grouping: unbound constant reference ?%d", c.Idx)
}

func (c *ConstRef) String() string { return fmt.Sprintf("?%d", c.Idx) }

// Bind substitutes literal values for the ConstRef placeholders in a
// condition template (the UNGROUPED path: one plan per trigger).
func Bind(template xqgm.Expr, consts []xdm.Value) xqgm.Expr {
	return xqgm.RewriteExpr(template, func(e xqgm.Expr) xqgm.Expr {
		if cr, ok := e.(*ConstRef); ok {
			if cr.Idx < len(consts) {
				return xqgm.LitOf(consts[cr.Idx])
			}
		}
		return e
	})
}

// Signature produces the structural signature used to group triggers: the
// condition template rendered with placeholders, so triggers differing only
// in constants collide. Callers prepend view/path/event identifiers.
func Signature(template xqgm.Expr) string {
	if template == nil {
		return "<nil>"
	}
	return template.String()
}

// ComposeSignature turns a trigger's structural signature (view, path,
// event, and abstracted condition — the Signature form with identifiers
// prepended by the caller) into its group key. The structural form is
// mode-agnostic: an adaptive engine always groups structurally, making a
// group's translation mode a mutable property rather than part of its
// identity, so mixed modes coexist and a group can switch modes without
// re-grouping. Only a legacy UNGROUPED engine passes perTrigger=true,
// which prepends the trigger name so every trigger stays its own
// singleton group — preserving the paper's per-trigger translation and
// its per-trigger group counts.
func ComposeSignature(structural string, perTrigger bool, trigName string) string {
	if perTrigger {
		return trigName + "|" + structural
	}
	return structural
}

// Member is one XML trigger inside a group.
type Member struct {
	TrigID string
	Consts []xdm.Value
}

// Group is a set of structurally similar triggers sharing one plan.
type Group struct {
	signature string
	template  xqgm.Expr
	numConsts int
	members   []Member
}

// NewGroup creates a group for the given condition template with numConsts
// constant placeholders.
func NewGroup(signature string, template xqgm.Expr, numConsts int) *Group {
	return &Group{signature: signature, template: template, numConsts: numConsts}
}

// Signature returns the group's structural signature.
func (g *Group) Signature() string { return g.signature }

// Template returns the shared condition template.
func (g *Group) Template() xqgm.Expr { return g.template }

// Size reports the number of member triggers.
func (g *Group) Size() int { return len(g.members) }

// Add registers a trigger with its constant values.
func (g *Group) Add(trigID string, consts []xdm.Value) error {
	if len(consts) != g.numConsts {
		return fmt.Errorf("grouping: trigger %s has %d constants, group expects %d", trigID, len(consts), g.numConsts)
	}
	g.members = append(g.members, Member{TrigID: trigID, Consts: consts})
	return nil
}

// Remove drops a trigger from the group; reports whether it was present.
func (g *Group) Remove(trigID string) bool {
	for i, m := range g.members {
		if m.TrigID == trigID {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return true
		}
	}
	return false
}

// ConstantsTable builds the group's constants table operator (paper
// Section 5.1): one row per distinct constant combination, with a TrigIDs
// column listing the member triggers sharing it (comma-separated, sorted).
func (g *Group) ConstantsTable() *xqgm.Operator {
	type combo struct {
		key    string
		consts []xdm.Value
		ids    []string
	}
	byKey := map[string]*combo{}
	var order []string
	for _, m := range g.members {
		k := xdm.TupleKey(m.Consts)
		c, ok := byKey[k]
		if !ok {
			c = &combo{key: k, consts: m.Consts}
			byKey[k] = c
			order = append(order, k)
		}
		c.ids = append(c.ids, m.TrigID)
	}
	sort.Strings(order)
	names := make([]string, 1+g.numConsts)
	names[0] = "TrigIDs"
	for j := 0; j < g.numConsts; j++ {
		names[j+1] = fmt.Sprintf("Const%d", j+1)
	}
	rows := make([][]xqgm.Expr, 0, len(order))
	for _, k := range order {
		c := byKey[k]
		sort.Strings(c.ids)
		row := make([]xqgm.Expr, 1+g.numConsts)
		row[0] = xqgm.LitOf(xdm.Str(strings.Join(c.ids, ",")))
		for j, v := range c.consts {
			row[j+1] = xqgm.LitOf(v)
		}
		rows = append(rows, row)
	}
	return xqgm.NewConstants(names, rows)
}

// SplitTriggerIDs parses a TrigIDs column value back into trigger IDs.
func SplitTriggerIDs(v xdm.Value) []string {
	s := v.AsString()
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// GroupedPlan is the shared plan for a trigger group: the affected-node
// graph joined with the constants table. Output columns are the ANGraph's
// columns followed by the constants table's columns (TrigIDs first).
type GroupedPlan struct {
	Root       *xqgm.Operator
	TrigIDsCol int // output position of the TrigIDs column
	ConstBase  int // output position of Const1
}

// BuildGroupedPlan converts the per-trigger Select(condition-with-constants)
// into a join with the group's constants table (paper Figure 14), keeping
// any non-equality condition parts as a residual join predicate evaluated
// per (affected-node row, constants row) — the decorrelated equivalent of
// the correlated G_grouped graph of Figure 15, correct for arbitrarily
// nested conditions because the residual is evaluated per constant
// combination.
//
// anRoot is the affected-node graph; template is the condition with
// ConstRef placeholders, written over anRoot's output columns (input 0).
func BuildGroupedPlan(g *Group, anRoot *xqgm.Operator) *GroupedPlan {
	consts := g.ConstantsTable()
	anW := anRoot.OutWidth()

	// Split the template conjunction into hash-joinable equalities
	// (column = constant) and a residual.
	var on []xqgm.JoinEq
	var residual []xqgm.Expr
	for _, conj := range conjuncts(g.template) {
		if l, r, ok := matchEqConst(conj); ok {
			on = append(on, xqgm.JoinEq{L: l, R: 1 + r}) // +1: TrigIDs col
			continue
		}
		if conj != nil {
			residual = append(residual, rewriteForJoin(conj))
		}
	}
	var resid xqgm.Expr
	if len(residual) == 1 {
		resid = residual[0]
	} else if len(residual) > 1 {
		resid = &xqgm.Logic{Op: "and", Args: residual}
	}
	join := xqgm.NewJoin(xqgm.JoinInner, anRoot, consts, on, resid)
	return &GroupedPlan{Root: join, TrigIDsCol: anW, ConstBase: anW + 1}
}

// conjuncts flattens a conjunction into its terms.
func conjuncts(e xqgm.Expr) []xqgm.Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*xqgm.Logic); ok && l.Op == "and" {
		var out []xqgm.Expr
		for _, a := range l.Args {
			out = append(out, conjuncts(a)...)
		}
		return out
	}
	return []xqgm.Expr{e}
}

// matchEqConst recognizes Col(c) = ConstRef(j) (either operand order) and
// returns (c, j). Only top-level scalar equalities are joinable; anything
// else stays in the residual.
func matchEqConst(e xqgm.Expr) (int, int, bool) {
	cmp, ok := e.(*xqgm.Cmp)
	if !ok || cmp.Op != "=" {
		return 0, 0, false
	}
	if c, ok := cmp.L.(*xqgm.ColRef); ok && c.Input == 0 {
		if k, ok := cmp.R.(*ConstRef); ok {
			return c.Col, k.Idx, true
		}
	}
	if c, ok := cmp.R.(*xqgm.ColRef); ok && c.Input == 0 {
		if k, ok := cmp.L.(*ConstRef); ok {
			return c.Col, k.Idx, true
		}
	}
	return 0, 0, false
}

// rewriteForJoin converts a condition term into a join predicate: ConstRef
// placeholders become references to the constants-table side (input 1),
// while column references to the affected-node side stay on input 0.
func rewriteForJoin(e xqgm.Expr) xqgm.Expr {
	return xqgm.RewriteExpr(e, func(x xqgm.Expr) xqgm.Expr {
		if cr, ok := x.(*ConstRef); ok {
			return &xqgm.ColRef{Input: 1, Col: 1 + cr.Idx}
		}
		return x
	})
}
