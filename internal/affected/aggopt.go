package affected

import (
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// rewriteOldAggregates implements the paper's Section 5.2 optimization
// (GROUPED-AGG): instead of recomputing distributive aggregates over the
// reconstructed B_old, the old aggregate values are derived from the new
// aggregate values and the transition tables — the inverse of incremental
// view maintenance:
//
//	old_count(g) = new_count(g) + |∇B rows of g| − |ΔB rows of g|
//	old_sum(g)   = new_sum(g)   + sum(∇B of g)   − sum(ΔB of g)
//
// (compare Figure 16's deltaCount CTE: +1 per DELETED row, −1 per INSERTED
// row, summed with the new counts).
//
// For every rewritable GroupBy in the original graph, the corresponding
// operator in the G_old clone is replaced in place by
//
//	Project(drop _rows)(
//	  Select(_rows > 0)(                       // group existed before
//	    GroupBy(G; sum(vals), sum(_rows))(
//	      UnionAll(
//	        Project(G, newAggs, _rows)(newGroupBy),   // shared with G
//	        Project(G, +contrib, +1)(I with B := ∇B),
//	        Project(G, −contrib, −1)(I with B := ΔB)))))
//
// A GroupBy is rewritable when its input is select-project-join only, reads
// the updated table exactly once, and its aggregates are count(*) / sum
// (aggXMLFrag columns are elided to NULL when elideXMLFrag is set — sound
// when the trigger never reads OLD_NODE content, which the engine checks).
// Non-rewritable GroupBys keep the direct B_old computation.
//
// Returns the number of GroupBys rewritten.
func rewriteOldAggregates(orig, gOldRoot *xqgm.Operator, table string,
	mapNew, mapOld map[*xqgm.Operator]*xqgm.Operator,
	deltaSrc, nablaSrc xqgm.TableSource, elideXMLFrag bool) int {

	rewritten := 0
	xqgm.Walk(orig, func(gb *xqgm.Operator) {
		if gb.Type != xqgm.OpGroupBy || gb == orig {
			return
		}
		if !rewritableGroupBy(gb, table, elideXMLFrag) {
			return
		}
		nb := mapNew[gb]
		ob := mapOld[gb]
		if nb == nil || ob == nil {
			return
		}
		rewriteOne(gb, nb, ob, table, deltaSrc, nablaSrc, elideXMLFrag)
		rewritten++
	})
	return rewritten
}

// rewritableGroupBy checks the applicability conditions.
func rewritableGroupBy(gb *xqgm.Operator, table string, elideXMLFrag bool) bool {
	// Aggregates must be invertible (count(*) / sum), with aggXMLFrag
	// permitted only under elision.
	for _, a := range gb.Aggs {
		switch a.Func {
		case xqgm.AggCount:
			// count(expr) skips NULLs and is only invertible when the
			// argument is provably non-null — e.g. a constructed XML node
			// column, which the view compiler produces for child counts.
			if a.Arg != nil && !argProvablyNonNull(gb, a.Arg) {
				return false
			}
		case xqgm.AggSum:
			if a.Arg == nil {
				return false
			}
		case xqgm.AggXMLFrag:
			if !elideXMLFrag {
				return false
			}
		default:
			return false // min/max/avg are not distributive (paper §5.2)
		}
	}
	// Input must be select-project-join over base tables, reading the
	// updated table exactly once.
	occurrences := 0
	ok := true
	xqgm.Walk(gb.Inputs[0], func(o *xqgm.Operator) {
		switch o.Type {
		case xqgm.OpTable:
			if o.Table == table {
				occurrences++
			}
		case xqgm.OpSelect, xqgm.OpProject, xqgm.OpOrderBy:
		case xqgm.OpJoin:
			if o.JoinKind != xqgm.JoinInner {
				ok = false
			}
		default:
			// A nested GroupBy/Union/Unnest makes the delta non-linear —
			// but only if the updated table flows through it; subtrees
			// over other tables are constants for this statement.
			if tableInSubtree(o, table) {
				ok = false
			}
		}
	})
	return ok && occurrences == 1
}

// tableInSubtree reports whether the subtree reads the given base table.
func tableInSubtree(root *xqgm.Operator, table string) bool {
	found := false
	xqgm.Walk(root, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable && o.Table == table {
			found = true
		}
	})
	return found
}

// argProvablyNonNull reports whether an aggregate argument can never be
// NULL: a direct reference to an XML-constructor projection.
func argProvablyNonNull(gb *xqgm.Operator, arg xqgm.Expr) bool {
	cr, ok := arg.(*xqgm.ColRef)
	if !ok || cr.Input != 0 {
		return false
	}
	in := gb.Inputs[0]
	if in.Type != xqgm.OpProject || cr.Col >= len(in.Projs) {
		return false
	}
	_, isCtor := in.Projs[cr.Col].E.(*xqgm.ElemCtor)
	return isCtor
}

func rewriteOne(gb, nb, ob *xqgm.Operator, table string, deltaSrc, nablaSrc xqgm.TableSource, elideXMLFrag bool) {
	ng := len(gb.GroupCols)
	na := len(gb.Aggs)
	outNames := gb.OutNames()

	// Locate (or derive) the new-side row count per group. The new-side
	// GroupBy must NOT be modified in place: widening an operator in the
	// middle of the graph would shift every downstream column reference.
	// When nb lacks a count(*), a sibling GroupBy over nb's (shared,
	// memoized) input supplies it via a functional join.
	rowsPos := -1
	for i, a := range nb.Aggs {
		if a.Func == xqgm.AggCount && a.Arg == nil {
			rowsPos = ng + i
			break
		}
	}
	newSrc := nb
	rowsCol := rowsPos
	if rowsPos < 0 {
		cnt := xqgm.NewGroupBy(nb.Inputs[0], append([]int(nil), nb.GroupCols...),
			xqgm.Agg{Name: "_rows", Func: xqgm.AggCount})
		on := make([]xqgm.JoinEq, ng)
		for j := 0; j < ng; j++ {
			on[j] = xqgm.JoinEq{L: j, R: j}
		}
		newSrc = xqgm.NewJoin(xqgm.JoinInner, nb, cnt, on, nil)
		rowsCol = nb.OutWidth() + ng
	}

	// part_new: group values, new aggregate values, new row count.
	newProjs := make([]xqgm.Proj, 0, ng+na+1)
	for j := 0; j < ng; j++ {
		newProjs = append(newProjs, xqgm.Proj{Name: outNames[j], E: xqgm.Col(j)})
	}
	for i, a := range gb.Aggs {
		if a.Func == xqgm.AggXMLFrag {
			newProjs = append(newProjs, xqgm.Proj{Name: a.Name, E: xqgm.LitOf(xdm.Null)})
		} else {
			newProjs = append(newProjs, xqgm.Proj{Name: a.Name, E: xqgm.Col(ng + i)})
		}
	}
	newProjs = append(newProjs, xqgm.Proj{Name: "_rows", E: xqgm.Col(rowsCol)})
	partNew := xqgm.NewProject(newSrc, newProjs...)

	// part_plus (∇B side, +) and part_minus (ΔB side, −).
	mkPart := func(src xqgm.TableSource, sign int64) *xqgm.Operator {
		in := xqgm.WithTableSource(gb.Inputs[0], table, xqgm.SrcBase, src)
		projs := make([]xqgm.Proj, 0, ng+na+1)
		for j, gc := range gb.GroupCols {
			projs = append(projs, xqgm.Proj{Name: outNames[j], E: xqgm.Col(gc)})
		}
		for _, a := range gb.Aggs {
			var e xqgm.Expr
			switch a.Func {
			case xqgm.AggCount:
				e = xqgm.LitOf(xdm.Int(sign))
			case xqgm.AggSum:
				e = a.Arg
				if sign < 0 {
					e = &xqgm.Arith{Op: "*", L: e, R: xqgm.LitOf(xdm.Int(-1))}
				}
			case xqgm.AggXMLFrag:
				e = xqgm.LitOf(xdm.Null)
			}
			projs = append(projs, xqgm.Proj{Name: a.Name, E: e})
		}
		projs = append(projs, xqgm.Proj{Name: "_rows", E: xqgm.LitOf(xdm.Int(sign))})
		return xqgm.NewProject(in, projs...)
	}
	partPlus := mkPart(nablaSrc, 1)
	partMinus := mkPart(deltaSrc, -1)

	u := xqgm.NewUnion(false, partNew, partPlus, partMinus)

	groupCols := make([]int, ng)
	for j := 0; j < ng; j++ {
		groupCols[j] = j
	}
	adjAggs := make([]xqgm.Agg, 0, na+1)
	for i, a := range gb.Aggs {
		adjAggs = append(adjAggs, xqgm.Agg{Name: a.Name, Func: xqgm.AggSum, Arg: xqgm.Col(ng + i)})
	}
	adjAggs = append(adjAggs, xqgm.Agg{Name: "_rows", Func: xqgm.AggSum, Arg: xqgm.Col(ng + na)})
	adj := xqgm.NewGroupBy(u, groupCols, adjAggs...)

	sel := xqgm.NewSelect(adj, &xqgm.Cmp{Op: ">", L: xqgm.Col(ng + na), R: xqgm.LitOf(xdm.Int(0))})

	// Retarget ob in place to the final Project (parents keep pointing at
	// ob); output schema (names, positions, key) is unchanged.
	projs := make([]xqgm.Proj, ng+na)
	for i := 0; i < ng+na; i++ {
		projs[i] = xqgm.Proj{Name: outNames[i], E: xqgm.Col(i)}
	}
	ob.Type = xqgm.OpProject
	ob.Inputs = []*xqgm.Operator{sel}
	ob.Projs = projs
	ob.GroupCols = nil
	ob.Aggs = nil
	ob.Pred = nil
	ob.Key = nil // re-derived by the caller
}

// sanity check helper used in tests.
func countTableSources(root *xqgm.Operator, table string, src xqgm.TableSource) int {
	n := 0
	xqgm.Walk(root, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable && o.Table == table && o.Source == src {
			n++
		}
	})
	return n
}
