package affected

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// buildCountView constructs a catalog-like path graph whose only aggregates
// are distributive: <product name={pname} cnt={count}/> for products with
// at least minVendors vendors. Fully rewritable by GROUPED-AGG.
func buildCountView(s *schema.Schema, minVendors int64) (*xqgm.Operator, int, int) {
	prodDef, _ := s.Table("product")
	vendDef, _ := s.Table("vendor")
	prod := xqgm.NewTable(prodDef, xqgm.SrcBase)
	vend := xqgm.NewTable(vendDef, xqgm.SrcBase)
	join := xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil)
	g := xqgm.NewGroupBy(join, []int{1},
		xqgm.Agg{Name: "cnt", Func: xqgm.AggCount},
		xqgm.Agg{Name: "total", Func: xqgm.AggSum, Arg: xqgm.Col(5)},
	)
	sel := xqgm.NewSelect(g, &xqgm.Cmp{Op: ">=", L: xqgm.Col(1), R: xqgm.LitOf(xdm.Int(minVendors))})
	elem := &xqgm.ElemCtor{Name: "product", Attrs: []xqgm.AttrSpec{
		{Name: "name", E: xqgm.Col(0)},
		{Name: "cnt", E: xqgm.Col(1)},
		{Name: "total", E: xqgm.Col(2)},
	}}
	top := xqgm.NewProject(sel,
		xqgm.Proj{Name: "product", E: elem},
		xqgm.Proj{Name: "pname", E: xqgm.Col(0)},
	)
	xqgm.DeriveKeys(top)
	return top, 0, 1
}

func pairKey(p Pair, nameCol int) string {
	if !p.New[nameCol].IsNull() {
		return p.New[nameCol].AsString()
	}
	return p.Old[nameCol].AsString()
}

func sortedPairStrings(pairs []Pair, nodeCol, nameCol int) []string {
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		oldS, newS := "∅", "∅"
		if n := p.Old[nodeCol].AsNode(); n != nil {
			oldS = n.Serialize(false)
		}
		if n := p.New[nodeCol].AsNode(); n != nil {
			newS = n.Serialize(false)
		}
		out = append(out, pairKey(p, nameCol)+" :: "+oldS+" -> "+newS)
	}
	sort.Strings(out)
	return out
}

// TestOldAggDeltaEquivalence: for a fully-distributive view, the
// GROUPED-AGG graph must produce exactly the same (OLD, NEW) pairs as the
// direct B_old computation, across random statements and all events.
func TestOldAggDeltaEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	if err := db.CreateIndex("product", "pname"); err != nil {
		t.Fatal(err)
	}

	makeGraphs := func(ev reldb.Event, aggOpt bool) *ANGraph {
		g, nodeCol, _ := buildCountView(s, 2)
		_ = nodeCol
		an, err := CreateANGraph(s, ev, g, "vendor", Options{
			Prune:       true,
			OldAggDelta: aggOpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		return an
	}

	pids := []string{"P1", "P2", "P3"}
	vids := []string{"Amazon", "Bestbuy", "Buy.com", "Circuitcity", "Newegg"}
	for step := 0; step < 30; step++ {
		var deltas map[string]*xqgm.Transition
		switch r.Intn(3) {
		case 0:
			vid, pid := vids[r.Intn(len(vids))], pids[r.Intn(len(pids))]
			if _, ok, _ := db.GetByPK("vendor", xdm.Str(vid), xdm.Str(pid)); ok {
				continue
			}
			deltas = captureStatement(t, db, "vendor", func() error {
				return db.Insert("vendor", reldb.Row{xdm.Str(vid), xdm.Str(pid), xdm.Float(float64(50 + r.Intn(200)))})
			})
		case 1:
			pid := pids[r.Intn(len(pids))]
			price := float64(50 + r.Intn(200))
			deltas = captureStatement(t, db, "vendor", func() error {
				_, err := db.Update("vendor",
					func(row reldb.Row) bool { return row[1].AsString() == pid },
					func(row reldb.Row) reldb.Row { row[2] = xdm.Float(price); return row })
				return err
			})
		case 2:
			vid := vids[r.Intn(len(vids))]
			deltas = captureStatement(t, db, "vendor", func() error {
				_, err := db.Delete("vendor", func(row reldb.Row) bool { return row[0].AsString() == vid })
				return err
			})
		}
		for _, ev := range []reldb.Event{reldb.EvUpdate, reldb.EvInsert, reldb.EvDelete} {
			plain, err := makeGraphs(ev, false).Eval(db, deltas)
			if err != nil {
				t.Fatalf("step %d %v plain: %v", step, ev, err)
			}
			opt, err := makeGraphs(ev, true).Eval(db, deltas)
			if err != nil {
				t.Fatalf("step %d %v agg-opt: %v", step, ev, err)
			}
			ps := sortedPairStrings(plain, 0, 1)
			os := sortedPairStrings(opt, 0, 1)
			if fmt.Sprint(ps) != fmt.Sprint(os) {
				t.Fatalf("step %d %v mismatch:\nplain: %v\nopt:   %v", step, ev, ps, os)
			}
		}
	}
}

// TestOldAggDeltaRewriteApplied: the rewrite actually fires for the count
// view and not for a min-aggregate view.
func TestOldAggDeltaRewriteApplied(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	g, _, _ := buildCountView(s, 2)
	gb := findGroupBy(g)
	if gb == nil || !rewritableGroupBy(gb, "vendor", false) {
		t.Error("count view GroupBy should be rewritable without elision")
	}
	mp, _, _, _ := buildMinPriceView(s)
	mgb := findGroupBy(mp)
	if mgb == nil || rewritableGroupBy(mgb, "vendor", true) {
		t.Error("min view GroupBy must not be rewritable (min is not distributive)")
	}
	// Catalog view: rewritable only with XMLFrag elision.
	v := fixtures.BuildCatalogView(s, 2)
	cgb := findGroupBy(v.ProductProj)
	if rewritableGroupBy(cgb, "vendor", false) {
		t.Error("catalog GroupBy must not be rewritable without elision (aggXMLFrag)")
	}
	if !rewritableGroupBy(cgb, "vendor", true) {
		t.Error("catalog GroupBy should be rewritable with elision")
	}
}

func findGroupBy(root *xqgm.Operator) *xqgm.Operator {
	var out *xqgm.Operator
	xqgm.Walk(root, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpGroupBy && out == nil {
			out = o
		}
	})
	return out
}

// TestElidedOldXMLFrag: with elision + SkipValueCompare on the catalog
// view, affected keys and NEW nodes stay correct while OLD node content is
// dropped (the engine only enables this when OLD_NODE content is unused).
func TestElidedOldXMLFrag(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	if err := db.CreateIndex("product", "pname"); err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(s, 2)
	an, err := CreateANGraph(s, reldb.EvUpdate, v.ProductProj, "vendor", Options{
		Prune:            true,
		SkipValueCompare: true, // catalog view is injective w.r.t. vendor
		OldAggDelta:      true,
		ElideOldXMLFrag:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	deltas := captureStatement(t, db, "vendor", func() error {
		_, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(75)
			return r
		})
		return err
	})
	pairs, err := an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1 (CRT 15)", len(pairs))
	}
	p := pairs[0]
	if p.New[v.ProdNameCol].AsString() != "CRT 15" {
		t.Errorf("key = %q", p.New[v.ProdNameCol].AsString())
	}
	newNode := p.New[v.ProdNodeCol].AsNode()
	if len(newNode.ChildElements("vendor")) != 5 {
		t.Errorf("NEW node vendors = %d, want 5", len(newNode.ChildElements("vendor")))
	}
	// The new node reflects the new price.
	found := false
	for _, vd := range newNode.ChildElements("vendor") {
		if vd.ChildElements("vid")[0].TextContent() == "Amazon" &&
			vd.ChildElements("price")[0].TextContent() == "75.00" {
			found = true
		}
	}
	if !found {
		t.Error("NEW node missing updated Amazon price")
	}
	// The OLD node is a shell: correct name, elided children.
	oldNode := p.Old[v.ProdNodeCol].AsNode()
	if n, _ := oldNode.Attribute("name"); n != "CRT 15" {
		t.Errorf("OLD node name = %q", n)
	}
	if len(oldNode.ChildElements("vendor")) != 0 {
		t.Error("OLD node children should be elided under ElideOldXMLFrag")
	}
	// Old count (on the scalar column) must still be exact: 5.
	if cnt := p.Old[v.ProdCountCol].AsInt(); cnt != 5 {
		t.Errorf("OLD cnt = %d, want 5 (delta-adjusted)", cnt)
	}
}

// TestOldCountCrossingWithAggOpt: GROUPED-AGG must detect INSERT/DELETE
// events (count threshold crossings), which depend on exact old counts.
func TestOldCountCrossingWithAggOpt(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	if err := db.CreateIndex("product", "pname"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("product", reldb.Row{xdm.Str("P4"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P4"), xdm.Float(900)}); err != nil {
		t.Fatal(err)
	}
	g, nodeCol, nameCol := buildCountView(s, 2)
	an, err := CreateANGraph(s, reldb.EvInsert, g, "vendor", Options{Prune: true, OldAggDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	deltas := captureStatement(t, db, "vendor", func() error {
		return db.Insert("vendor", reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P4"), xdm.Float(950)})
	})
	pairs, err := an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("INSERT events = %d, want 1 (OLED 27 crossed the threshold)", len(pairs))
	}
	if pairs[0].New[nameCol].AsString() != "OLED 27" || !pairs[0].Old[nodeCol].IsNull() {
		t.Errorf("pair = %v", pairs[0])
	}
}
