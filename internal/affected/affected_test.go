package affected

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// captureStatement runs fn and captures the transition tables of the single
// statement it performs on the given table.
func captureStatement(t *testing.T, db *reldb.DB, table string, fn func() error) map[string]*xqgm.Transition {
	t.Helper()
	tr := &xqgm.Transition{}
	for i, ev := range []reldb.Event{reldb.EvInsert, reldb.EvUpdate, reldb.EvDelete} {
		name := fmt.Sprintf("capture_%s_%d", table, i)
		err := db.CreateTrigger(&reldb.SQLTrigger{
			Name: name, Table: table, Event: ev,
			Body: func(ctx *reldb.FireContext) error {
				tr.Inserted = append(tr.Inserted, ctx.Inserted...)
				tr.Deleted = append(tr.Deleted, ctx.Deleted...)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = db.DropTrigger(name) }()
	}
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return map[string]*xqgm.Transition{table: tr}
}

// snapshotProducts evaluates the product-level path graph (Figure 5A) and
// returns key -> serialized product node.
func snapshotProducts(t *testing.T, db *reldb.DB) map[string]string {
	t.Helper()
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(v.ProductProj)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, r := range rows {
		out[r[v.ProdNameCol].AsString()] = r[v.ProdNodeCol].AsNode().Serialize(false)
	}
	return out
}

type oracleDiff struct {
	updated  map[string][2]string // key -> (old, new)
	inserted map[string]string
	deleted  map[string]string
}

func diffSnapshots(before, after map[string]string) oracleDiff {
	d := oracleDiff{updated: map[string][2]string{}, inserted: map[string]string{}, deleted: map[string]string{}}
	for k, o := range before {
		if n, ok := after[k]; ok {
			if o != n {
				d.updated[k] = [2]string{o, n}
			}
		} else {
			d.deleted[k] = o
		}
	}
	for k, n := range after {
		if _, ok := before[k]; !ok {
			d.inserted[k] = n
		}
	}
	return d
}

// anGraphs builds the three event graphs for the product path over a table.
func anGraphs(t *testing.T, s *schema.Schema, table string) map[reldb.Event]*ANGraph {
	t.Helper()
	out := map[reldb.Event]*ANGraph{}
	for _, ev := range []reldb.Event{reldb.EvUpdate, reldb.EvInsert, reldb.EvDelete} {
		v := fixtures.BuildCatalogView(s, 2)
		g, err := CreateANGraph(s, ev, v.ProductProj, table, Options{Prune: true, CompareCols: []int{v.ProdNodeCol}})
		if err != nil {
			t.Fatalf("CreateANGraph(%v, %s): %v", ev, table, err)
		}
		out[ev] = g
	}
	return out
}

// checkAgainstOracle applies a statement, captures transitions, runs all
// three ANGraphs, and compares against the recompute-and-diff oracle.
func checkAgainstOracle(t *testing.T, db *reldb.DB, table, label string, fn func() error) {
	t.Helper()
	graphs := anGraphs(t, db.Schema(), table)
	before := snapshotProducts(t, db)
	deltas := captureStatement(t, db, table, fn)
	after := snapshotProducts(t, db)
	want := diffSnapshots(before, after)

	v := fixtures.BuildCatalogView(db.Schema(), 2)
	nodeCol, nameCol := v.ProdNodeCol, v.ProdNameCol

	// UPDATE pairs.
	gotUpd := map[string][2]string{}
	pairs, err := graphs[reldb.EvUpdate].Eval(db, deltas)
	if err != nil {
		t.Fatalf("%s: UPDATE eval: %v", label, err)
	}
	for _, p := range pairs {
		key := p.New[nameCol].AsString()
		gotUpd[key] = [2]string{p.Old[nodeCol].AsNode().Serialize(false), p.New[nodeCol].AsNode().Serialize(false)}
	}
	if len(gotUpd) != len(want.updated) {
		t.Errorf("%s: UPDATE events = %v, want %v", label, keys(gotUpd), keysP(want.updated))
	}
	for k, w := range want.updated {
		g, ok := gotUpd[k]
		if !ok {
			t.Errorf("%s: missing UPDATE for %q", label, k)
			continue
		}
		if g[0] != w[0] {
			t.Errorf("%s: OLD_NODE(%q) = %s, want %s", label, k, g[0], w[0])
		}
		if g[1] != w[1] {
			t.Errorf("%s: NEW_NODE(%q) = %s, want %s", label, k, g[1], w[1])
		}
	}

	// INSERT pairs: OLD side must be null.
	gotIns := map[string]string{}
	pairs, err = graphs[reldb.EvInsert].Eval(db, deltas)
	if err != nil {
		t.Fatalf("%s: INSERT eval: %v", label, err)
	}
	for _, p := range pairs {
		if !p.Old[nodeCol].IsNull() {
			t.Errorf("%s: INSERT pair has non-null OLD_NODE", label)
		}
		gotIns[p.New[nameCol].AsString()] = p.New[nodeCol].AsNode().Serialize(false)
	}
	if fmt.Sprint(gotIns) != fmt.Sprint(want.inserted) {
		t.Errorf("%s: INSERT events = %v, want %v", label, gotIns, want.inserted)
	}

	// DELETE pairs: NEW side must be null.
	gotDel := map[string]string{}
	pairs, err = graphs[reldb.EvDelete].Eval(db, deltas)
	if err != nil {
		t.Fatalf("%s: DELETE eval: %v", label, err)
	}
	for _, p := range pairs {
		if !p.New[nodeCol].IsNull() {
			t.Errorf("%s: DELETE pair has non-null NEW_NODE", label)
		}
		gotDel[p.Old[nameCol].AsString()] = p.Old[nodeCol].AsNode().Serialize(false)
	}
	if fmt.Sprint(gotDel) != fmt.Sprint(want.deleted) {
		t.Errorf("%s: DELETE events = %v, want %v", label, gotDel, want.deleted)
	}
}

func keys(m map[string][2]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysP(m map[string][2]string) []string { return keys(m) }

// TestNestedPredicateInsert reproduces the Section 4.1 example: inserting
// vendor (Amazon, P2, 500) updates the "LCD 19" product. The naive
// delta-substitution approach misses this because count(Δ)=1 < 2; our
// CreateAKGraph joins back with the full table and must catch it.
func TestNestedPredicateInsert(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, db, "vendor", "§4.1 insert", func() error {
		return db.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P2"), xdm.Float(500)})
	})
}

// TestAffectedKeysDirect checks the raw CreateAKGraph output for the §4.1
// insert: exactly {"LCD 19"}.
func TestAffectedKeysDirect(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	g := xqgm.Clone(v.ProductProj)
	xqgm.DeriveKeys(g)
	ak, kcols, err := CreateAKGraph(db.Schema(), g, "vendor", xqgm.SrcDelta)
	if err != nil {
		t.Fatal(err)
	}
	if ak == nil {
		t.Fatal("nil AK graph")
	}
	if len(kcols) != 1 {
		t.Fatalf("key cols = %v, want one (pname)", kcols)
	}
	deltas := captureStatement(t, db, "vendor", func() error {
		return db.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P2"), xdm.Float(500)})
	})
	ctx := xqgm.NewEvalContext(db, deltas)
	rows, err := ctx.Eval(ak)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsString() != "LCD 19" {
		t.Errorf("affected keys = %v, want [LCD 19]", rows)
	}
}

// TestPaperPriceUpdate reproduces the Section 2.3 example: Amazon's P1
// price drops to 75, updating the "CRT 15" product node.
func TestPaperPriceUpdate(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, db, "vendor", "price drop", func() error {
		_, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(75)
			return r
		})
		return err
	})
}

// TestViewInsertAndDeleteEvents drives count crossings in both directions:
// P4 gains a second vendor (XML INSERT) then loses it (XML DELETE).
func TestViewInsertAndDeleteEvents(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("product", reldb.Row{xdm.Str("P4"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P4"), xdm.Float(900)}); err != nil {
		t.Fatal(err)
	}
	// count 1 -> 2: OLED 27 appears in the view.
	checkAgainstOracle(t, db, "vendor", "insert crossing", func() error {
		return db.Insert("vendor", reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P4"), xdm.Float(950)})
	})
	// count 2 -> 1: OLED 27 disappears.
	checkAgainstOracle(t, db, "vendor", "delete crossing", func() error {
		_, err := db.DeleteByPK("vendor", xdm.Str("Bestbuy"), xdm.Str("P4"))
		return err
	})
}

// TestProductRename: updating pname moves vendors between groups, which can
// insert one node, delete another, or update both.
func TestProductRename(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	// Rename P3 from "CRT 15" to "LCD 19": CRT 15 loses two vendors (down
	// to 3, still in view => UPDATE) and LCD 19 gains two (UPDATE).
	checkAgainstOracle(t, db, "product", "rename P3", func() error {
		_, err := db.UpdateByPK("product", []xdm.Value{xdm.Str("P3")}, func(r reldb.Row) reldb.Row {
			r[1] = xdm.Str("LCD 19")
			return r
		})
		return err
	})
}

// TestNoOpUpdateProducesNoEvents: a SET price = price statement yields full
// transition tables but empty pruned ones; no trigger events must fire.
func TestNoOpUpdateProducesNoEvents(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, db, "vendor", "no-op update", func() error {
		_, err := db.Update("vendor", func(reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row { return r })
		return err
	})
}

// TestMultiRowStatement: one statement touching many rows fires one set of
// events covering all affected nodes.
func TestMultiRowStatement(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, db, "vendor", "global price hike", func() error {
		_, err := db.Update("vendor", func(reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row {
			nv, _ := xdm.Arith("*", r[2], xdm.Float(1.1))
			r[2] = nv
			return r
		})
		return err
	})
}

// TestRandomizedOracle drives random statements through the pipeline and
// checks every one against the recompute oracle (Theorem 2 in anger).
func TestRandomizedOracle(t *testing.T) {
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			db, err := fixtures.OpenPaperDB()
			if err != nil {
				t.Fatal(err)
			}
			names := []string{"CRT 15", "LCD 19", "OLED 27", "Plasma 42"}
			vids := []string{"Amazon", "Bestbuy", "Buy.com", "Circuitcity", "Newegg", "Walmart"}
			pids := []string{"P1", "P2", "P3"}
			nextP := 4
			for step := 0; step < 40; step++ {
				switch r.Intn(6) {
				case 0: // insert product
					pid := fmt.Sprintf("P%d", nextP)
					nextP++
					pids = append(pids, pid)
					name := names[r.Intn(len(names))]
					checkAgainstOracle(t, db, "product", "rand insert product", func() error {
						return db.Insert("product", reldb.Row{xdm.Str(pid), xdm.Str(name), xdm.Str("m")})
					})
				case 1: // insert vendor (may collide; ignore errors by pre-check)
					vid := vids[r.Intn(len(vids))]
					pid := pids[r.Intn(len(pids))]
					if _, ok, _ := db.GetByPK("vendor", xdm.Str(vid), xdm.Str(pid)); ok {
						continue
					}
					price := float64(50 + r.Intn(300))
					checkAgainstOracle(t, db, "vendor", "rand insert vendor", func() error {
						return db.Insert("vendor", reldb.Row{xdm.Str(vid), xdm.Str(pid), xdm.Float(price)})
					})
				case 2: // update vendor price
					pid := pids[r.Intn(len(pids))]
					price := float64(50 + r.Intn(300))
					checkAgainstOracle(t, db, "vendor", "rand price update", func() error {
						_, err := db.Update("vendor",
							func(row reldb.Row) bool { return row[1].AsString() == pid },
							func(row reldb.Row) reldb.Row { row[2] = xdm.Float(price); return row })
						return err
					})
				case 3: // delete a vendor
					vid := vids[r.Intn(len(vids))]
					checkAgainstOracle(t, db, "vendor", "rand delete vendor", func() error {
						_, err := db.Delete("vendor", func(row reldb.Row) bool { return row[0].AsString() == vid })
						return err
					})
				case 4: // rename product
					pid := pids[r.Intn(len(pids))]
					name := names[r.Intn(len(names))]
					checkAgainstOracle(t, db, "product", "rand rename", func() error {
						_, err := db.Update("product",
							func(row reldb.Row) bool { return row[0].AsString() == pid },
							func(row reldb.Row) reldb.Row { row[1] = xdm.Str(name); return row })
						return err
					})
				case 5: // no-op vendor update
					checkAgainstOracle(t, db, "vendor", "rand noop", func() error {
						_, err := db.Update("vendor", func(reldb.Row) bool { return true },
							func(row reldb.Row) reldb.Row { return row })
						return err
					})
				}
			}
		})
	}
}

// buildMinPriceView constructs the Figure 21 view: products with their
// minimum price. Returns (path graph top, node col, name col, min col).
func buildMinPriceView(s *schema.Schema) (*xqgm.Operator, int, int, int) {
	prodDef, _ := s.Table("product")
	vendDef, _ := s.Table("vendor")
	prod := xqgm.NewTable(prodDef, xqgm.SrcBase)
	vend := xqgm.NewTable(vendDef, xqgm.SrcBase)
	join := xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil)
	g := xqgm.NewGroupBy(join, []int{1},
		xqgm.Agg{Name: "minprice", Func: xqgm.AggMin, Arg: xqgm.Col(5)})
	elem := &xqgm.ElemCtor{
		Name:  "product",
		Attrs: []xqgm.AttrSpec{{Name: "name", E: xqgm.Col(0)}},
		Children: []xqgm.Expr{
			&xqgm.ElemCtor{Name: "min", Children: []xqgm.Expr{xqgm.Col(1)}},
		},
	}
	top := xqgm.NewProject(g,
		xqgm.Proj{Name: "product", E: elem},
		xqgm.Proj{Name: "pname", E: xqgm.Col(0)},
		xqgm.Proj{Name: "minprice", E: xqgm.Col(1)},
	)
	xqgm.DeriveKeys(top)
	return top, 0, 1, 2
}

// TestSpuriousUpdateSuppression reproduces Appendix E.1: a price update
// that does not change the minimum must not produce an UPDATE event — but
// only because of the final value comparison (or its F.4 aggregate-column
// pushdown). Without either, a spurious update appears.
func TestSpuriousUpdateSuppression(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	run := func(opts Options) []Pair {
		g, _, _, _ := buildMinPriceView(s)
		an, err := CreateANGraph(s, reldb.EvUpdate, g, "vendor", opts)
		if err != nil {
			t.Fatal(err)
		}
		// Amazon P1: 100 -> 75. P1 is "CRT 15" whose min over P1+P3 vendors
		// is 100? vendors for CRT 15: P1(100,120,150), P3(120,140): min 100.
		// So dropping Amazon to 75 DOES change min. Use Bestbuy P1 120->110
		// instead: min stays 100.
		deltas := map[string]*xqgm.Transition{"vendor": {
			Inserted: []reldb.Row{{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(110)}},
			Deleted:  []reldb.Row{{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(120)}},
		}}
		// Apply the actual update to keep DB state consistent with deltas.
		if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Bestbuy"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(110)
			return r
		}); err != nil {
			t.Fatal(err)
		}
		pairs, err := an.Eval(db, deltas)
		if err != nil {
			t.Fatal(err)
		}
		// Restore.
		if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Bestbuy"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(120)
			return r
		}); err != nil {
			t.Fatal(err)
		}
		return pairs
	}
	// Default: full node comparison suppresses the spurious update.
	if pairs := run(Options{Prune: true}); len(pairs) != 0 {
		t.Errorf("node-compare: spurious updates = %d, want 0", len(pairs))
	}
	// F.4: comparing just the aggregate column also suppresses it.
	if pairs := run(Options{Prune: true, CompareCols: []int{2}}); len(pairs) != 0 {
		t.Errorf("agg-compare: spurious updates = %d, want 0", len(pairs))
	}
	// Without any comparison the spurious update appears (the view is not
	// injective, so SkipValueCompare is unsound here — by design).
	if pairs := run(Options{Prune: true, SkipValueCompare: true}); len(pairs) != 1 {
		t.Errorf("no-compare: updates = %d, want 1 spurious", len(pairs))
	}
}

// TestInjectiveAnalysis checks InjectiveFor against F.2.
func TestInjectiveAnalysis(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	v := fixtures.BuildCatalogView(s, 2)
	// The catalog view embeds all vendor columns (pid, vid, price) in the
	// vendor element: injective w.r.t. vendor.
	if !InjectiveFor(v.ProductProj, "vendor") {
		t.Error("catalog view should be injective w.r.t. vendor")
	}
	// It drops product.mfr: not injective w.r.t. product.
	if InjectiveFor(v.ProductProj, "product") {
		t.Error("catalog view should NOT be injective w.r.t. product (mfr dropped)")
	}
	// The min-price view aggregates price with min: not injective w.r.t.
	// vendor.
	mp, _, _, _ := buildMinPriceView(s)
	if InjectiveFor(mp, "vendor") {
		t.Error("min-price view should NOT be injective w.r.t. vendor")
	}
}

// TestInjectiveFastPath: for an injective view with pruned transition
// tables, SkipValueCompare is sound (Theorem 3): no-op updates produce no
// events, real updates still do.
func TestInjectiveFastPath(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	// Injective product view: every product column embedded in the node.
	prodDef, _ := s.Table("product")
	prod := xqgm.NewTable(prodDef, xqgm.SrcBase)
	elem := &xqgm.ElemCtor{Name: "product", Attrs: []xqgm.AttrSpec{
		{Name: "pid", E: xqgm.Col(0)},
		{Name: "name", E: xqgm.Col(1)},
		{Name: "mfr", E: xqgm.Col(2)},
	}}
	top := xqgm.NewProject(prod,
		xqgm.Proj{Name: "product", E: elem},
		xqgm.Proj{Name: "pid", E: xqgm.Col(0)},
	)
	xqgm.DeriveKeys(top)
	if !InjectiveFor(top, "product") {
		t.Fatal("fully-embedding view should be injective")
	}
	an, err := CreateANGraph(s, reldb.EvUpdate, top, "product", Options{Prune: true, SkipValueCompare: true})
	if err != nil {
		t.Fatal(err)
	}
	// No-op statement: pruned tables empty, no events.
	deltas := captureStatement(t, db, "product", func() error {
		_, err := db.Update("product", func(reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row { return r })
		return err
	})
	pairs, err := an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Errorf("no-op update: %d events, want 0 (injective fast path)", len(pairs))
	}
	// Real update: exactly one event.
	deltas = captureStatement(t, db, "product", func() error {
		_, err := db.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Str("Sony")
			return r
		})
		return err
	})
	pairs, err = an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("mfr update: %d events, want 1", len(pairs))
	}
	oldN, newN := pairs[0].Old[0].AsNode(), pairs[0].New[0].AsNode()
	if m, _ := oldN.Attribute("mfr"); m != "Samsung" {
		t.Errorf("old mfr = %q", m)
	}
	if m, _ := newN.Attribute("mfr"); m != "Sony" {
		t.Errorf("new mfr = %q", m)
	}
}

// TestErrorPaths covers validation errors.
func TestErrorPaths(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	v := fixtures.BuildCatalogView(s, 2)
	// Table not in the graph.
	if _, err := CreateANGraph(s, reldb.EvUpdate, v.ProductProj, "nosuch", Options{}); err == nil {
		t.Error("expected error for unknown table")
	}
	// Keyless table.
	s2 := schema.New()
	s2.MustAddTable(&schema.Table{Name: "nokey", Columns: []schema.Column{{Name: "a", Type: schema.TInt}}})
	def, _ := s2.Table("nokey")
	g := xqgm.NewTable(def, xqgm.SrcBase)
	xqgm.DeriveKeys(g)
	if _, _, err := CreateAKGraph(s2, g, "nokey", xqgm.SrcDelta); err == nil {
		t.Error("expected error for keyless table")
	}
	// Unnest in the path graph.
	pdef, _ := s.Table("product")
	pt := xqgm.NewTable(pdef, xqgm.SrcBase)
	gb := xqgm.NewGroupBy(pt, []int{1}, xqgm.Agg{Name: "x", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(0)})
	un := xqgm.NewUnnest(gb, 1)
	if _, _, err := CreateAKGraph(s, un, "product", xqgm.SrcDelta); err == nil {
		t.Error("expected error for Unnest in path graph")
	}
}

// TestUnionViewAffectedKeys exercises the Union case of CreateAKGraph with
// a view that unions two selections of products.
func TestUnionViewAffectedKeys(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	pdef, _ := s.Table("product")
	p1 := xqgm.NewTable(pdef, xqgm.SrcBase)
	samsung := xqgm.NewSelect(p1, &xqgm.Cmp{Op: "=", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Str("Samsung"))})
	crt := xqgm.NewSelect(p1, &xqgm.Cmp{Op: "=", L: xqgm.Col(1), R: xqgm.LitOf(xdm.Str("CRT 15"))})
	u := xqgm.NewUnion(true, samsung, crt)
	xqgm.DeriveKeys(u)
	an, err := CreateANGraph(s, reldb.EvUpdate, u, "product", Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	// Update P1's mfr: P1 is in both branches (Samsung + CRT 15); changing
	// mfr to Sony removes it from the first branch but keeps it via CRT 15,
	// and its visible tuple changes.
	deltas := captureStatement(t, db, "product", func() error {
		_, err := db.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Str("Sony")
			return r
		})
		return err
	})
	pairs, err := an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 {
		t.Fatalf("union view updates = %d, want 1", len(pairs))
	}
	if pairs[0].Old[2].AsString() != "Samsung" || pairs[0].New[2].AsString() != "Sony" {
		t.Errorf("pair = %v -> %v", pairs[0].Old, pairs[0].New)
	}
}

// TestBothJoinSidesAffected exercises the union-of-cross-products branch: a
// self-ish scenario where one statement's table appears on both sides of a
// join. We join vendor with vendor (same table twice) on pid to find
// co-vendors, then check affected keys after a price update.
func TestBothJoinSidesAffected(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	vdef, _ := s.Table("vendor")
	va := xqgm.NewTable(vdef, xqgm.SrcBase)
	vb := xqgm.NewTable(vdef, xqgm.SrcBase)
	join := xqgm.NewJoin(xqgm.JoinInner, va, vb, []xqgm.JoinEq{{L: 1, R: 1}}, nil)
	top := xqgm.NewProject(join,
		xqgm.Proj{Name: "a_vid", E: xqgm.Col(0)},
		xqgm.Proj{Name: "a_pid", E: xqgm.Col(1)},
		xqgm.Proj{Name: "b_vid", E: xqgm.Col(3)},
		xqgm.Proj{Name: "b_pid", E: xqgm.Col(4)},
		xqgm.Proj{Name: "pair", E: &xqgm.ElemCtor{Name: "pair", Attrs: []xqgm.AttrSpec{
			{Name: "a", E: xqgm.Col(0)},
			{Name: "b", E: xqgm.Col(3)},
			{Name: "pa", E: xqgm.Col(2)},
			{Name: "pb", E: xqgm.Col(5)},
		}}},
	)
	xqgm.DeriveKeys(top)
	if top.Key == nil {
		t.Fatal("self-join view must have a key")
	}
	an, err := CreateANGraph(s, reldb.EvUpdate, top, "vendor", Options{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	deltas := captureStatement(t, db, "vendor", func() error {
		_, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(75)
			return r
		})
		return err
	})
	pairs, err := an.Eval(db, deltas)
	if err != nil {
		t.Fatal(err)
	}
	// P1 has 3 vendors; pairs involving Amazon on either side change:
	// (Amazon, X) 3 + (X, Amazon) 3 - (Amazon, Amazon) counted twice = 5.
	if len(pairs) != 5 {
		t.Errorf("affected self-join pairs = %d, want 5", len(pairs))
	}
}
