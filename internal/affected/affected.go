// Package affected implements the paper's central algorithms (Section 4):
//
//   - CreateAKGraph (Figure 8): given a view graph and a transition table,
//     build an XQGM graph producing the canonical keys of exactly the view
//     tuples affected by the relational update — correct even under
//     arbitrarily nested predicates (the Section 4.1 challenge).
//   - CreateANGraph (Figure 12): combine the Δ-side and ∇-side affected
//     keys, join back with G and G_old, and produce (OLD_NODE, NEW_NODE)
//     pairs with the event-specific join (inner / left-anti / right-anti).
//   - InjectiveFor (Appendix F): the sufficient conditions for injective
//     views, which let the spurious-update value comparison be dropped when
//     pruned transition tables are used (Theorem 3).
package affected

import (
	"fmt"

	"quark/internal/pushdown"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xqgm"
)

// Options tunes CreateANGraph.
type Options struct {
	// Prune uses the pruned transition tables Δ' = Δ−∇ and ∇' = ∇−Δ
	// (Definition 8) instead of the raw ones.
	Prune bool
	// SkipValueCompare drops the final OLD_NODE ≠ NEW_NODE selection for
	// UPDATE events (sound for injective views with pruning, Theorem 3).
	SkipValueCompare bool
	// CompareCols, when non-empty, restricts the UPDATE-event value
	// comparison to these columns of the view output instead of comparing
	// whole nodes (Appendix F.4: pushing the comparison down to aggregate
	// columns for views that are injective except for scalar aggregates).
	CompareCols []int
	// OldAggDelta enables the Section 5.2 GROUPED-AGG optimization:
	// distributive aggregates on the B_old side are derived from the new
	// aggregates plus the transition tables instead of recomputed.
	OldAggDelta bool
	// ElideOldXMLFrag additionally allows OldAggDelta to rewrite GroupBys
	// containing aggXMLFrag aggregates by replacing the OLD side's XML
	// fragments with NULL. Sound only when the trigger never reads
	// OLD_NODE content (the engine checks this before enabling it).
	ElideOldXMLFrag bool
}

// ANGraph is the result of CreateANGraph: a graph whose output rows carry
// both versions of each affected view tuple.
type ANGraph struct {
	Root  *xqgm.Operator
	Event reldb.Event // the XML-level event the graph detects
	Table string

	keyWidth  int // width of the affected-key union Ou
	viewWidth int // width of the (extended) view output
}

// NewCol returns the output position of view column i's post-update value.
func (g *ANGraph) NewCol(i int) int { return g.keyWidth + i }

// OldCol returns the output position of view column i's pre-update value.
func (g *ANGraph) OldCol(i int) int { return g.keyWidth + g.viewWidth + g.keyWidth + i }

// ViewWidth reports the width of the (possibly key-extended) view output.
func (g *ANGraph) ViewWidth() int { return g.viewWidth }

// CreateAKGraph implements Figure 8. It returns an operator O' and the
// output columns K of o such that joining o with O' on K yields exactly the
// tuples of o affected by the update captured in the transition table read
// with source src (SrcDelta/SrcNabla or their pruned variants). O' outputs
// the values of columns K in order. A nil operator means the update cannot
// affect o.
//
// The graph rooted at o may be extended in place (key columns are appended
// to Project outputs, mirroring "Add K to O.outputColumns"); callers should
// pass a private clone.
func CreateAKGraph(s *schema.Schema, o *xqgm.Operator, table string, src xqgm.TableSource) (*xqgm.Operator, []int, error) {
	switch o.Type {
	case xqgm.OpTable:
		if o.Table != table {
			return nil, nil, nil
		}
		def, ok := s.Table(table)
		if !ok {
			return nil, nil, fmt.Errorf("affected: unknown table %q", table)
		}
		if !def.HasPrimaryKey() {
			return nil, nil, fmt.Errorf("affected: table %q has no primary key; view is not trigger-specifiable", table)
		}
		dt := xqgm.NewTable(def, src)
		ak := xqgm.ProjectCols(dt, def.PKIndexes())
		return ak, append([]int(nil), def.PKIndexes()...), nil

	case xqgm.OpConstants:
		return nil, nil, nil

	case xqgm.OpSelect, xqgm.OpOrderBy:
		// Select/Project "merely propagate the key column(s)".
		return CreateAKGraph(s, o.Inputs[0], table, src)

	case xqgm.OpProject:
		ak, ki, err := CreateAKGraph(s, o.Inputs[0], table, src)
		if err != nil || ak == nil {
			return nil, nil, err
		}
		ko := make([]int, len(ki))
		for i, ic := range ki {
			ko[i] = ensureProjected(o, ic)
		}
		return ak, ko, nil

	case xqgm.OpGroupBy:
		in := o.Inputs[0]
		akIn, ki, err := CreateAKGraph(s, in, table, src)
		if err != nil || akIn == nil {
			return nil, nil, err
		}
		// J ← Join(key(I'))(I, I'): pair input rows with affected keys.
		on := make([]xqgm.JoinEq, len(ki))
		for j, ic := range ki {
			on[j] = xqgm.JoinEq{L: ic, R: j}
		}
		// Push the affected-key semijoin into I so the join touches only
		// candidate rows (§5.2 pushdown; compare Figure 16's ProductCount
		// CTE, which joins AffectedKeys before aggregating).
		pushedIn, _ := pushdown.PushSemiJoin(in, akIn, ki)
		j := xqgm.NewJoin(xqgm.JoinInner, pushedIn, akIn, on, nil)
		// O' ← GroupBy(J) on O's grouping columns (distinct affected group
		// keys); the group columns occupy the same positions in J as in I.
		ak := xqgm.NewGroupBy(j, append([]int(nil), o.GroupCols...))
		ko := make([]int, len(o.GroupCols))
		for i := range o.GroupCols {
			ko[i] = i
		}
		return ak, ko, nil

	case xqgm.OpJoin:
		if o.JoinKind == xqgm.JoinLeftOuter {
			return createAKLeftOuter(s, o, table, src)
		}
		if o.JoinKind != xqgm.JoinInner {
			return nil, nil, fmt.Errorf("affected: CreateAKGraph over %v joins is not supported in view definitions", o.JoinKind)
		}
		l, r := o.Inputs[0], o.Inputs[1]
		lw := l.OutWidth()
		akL, kl, err := CreateAKGraph(s, l, table, src)
		if err != nil {
			return nil, nil, err
		}
		akR, kr, err := CreateAKGraph(s, r, table, src)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case akL == nil && akR == nil:
			return nil, nil, nil
		case akR == nil:
			return akL, append([]int(nil), kl...), nil
		case akL == nil:
			ko := make([]int, len(kr))
			for i, c := range kr {
				ko[i] = lw + c
			}
			return akR, ko, nil
		default:
			// Union of cross-products (Figure 8 lines 36-39):
			//   Ja = Project(K)(Join(I'0, I1));  Jb = Project(K)(Join(I0, I'1))
			ja := xqgm.NewJoin(xqgm.JoinInner, akL, r, nil, nil)
			jaProjs := make([]xqgm.Proj, 0, len(kl)+len(kr))
			for i := range kl {
				jaProjs = append(jaProjs, xqgm.Proj{Name: fmt.Sprintf("k%d", i), E: xqgm.Col(i)})
			}
			for j, c := range kr {
				jaProjs = append(jaProjs, xqgm.Proj{Name: fmt.Sprintf("k%d", len(kl)+j), E: xqgm.Col(len(kl) + c)})
			}
			pa := xqgm.NewProject(ja, jaProjs...)

			jb := xqgm.NewJoin(xqgm.JoinInner, l, akR, nil, nil)
			jbProjs := make([]xqgm.Proj, 0, len(kl)+len(kr))
			for i, c := range kl {
				jbProjs = append(jbProjs, xqgm.Proj{Name: fmt.Sprintf("k%d", i), E: xqgm.Col(c)})
			}
			for j := range kr {
				jbProjs = append(jbProjs, xqgm.Proj{Name: fmt.Sprintf("k%d", len(kl)+j), E: xqgm.Col(lw + j)})
			}
			pb := xqgm.NewProject(jb, jbProjs...)

			union := xqgm.NewUnion(true, pa, pb)
			ko := make([]int, 0, len(kl)+len(kr))
			ko = append(ko, kl...)
			for _, c := range kr {
				ko = append(ko, lw+c)
			}
			return union, ko, nil
		}

	case xqgm.OpUnion:
		// For each affected input, join it back with its affected keys,
		// project the union's full canonical key, and union the results
		// (Figure 8 lines 43-53, made schema-uniform by projecting the
		// output key from every branch).
		xqgm.DeriveKeys(o)
		if o.Key == nil {
			return nil, nil, fmt.Errorf("affected: Union without canonical key")
		}
		var branches []*xqgm.Operator
		for _, in := range o.Inputs {
			akIn, ki, err := CreateAKGraph(s, in, table, src)
			if err != nil {
				return nil, nil, err
			}
			if akIn == nil {
				continue
			}
			on := make([]xqgm.JoinEq, len(ki))
			for j, ic := range ki {
				on[j] = xqgm.JoinEq{L: ic, R: j}
			}
			pushedIn, _ := pushdown.PushSemiJoin(in, akIn, ki)
			join := xqgm.NewJoin(xqgm.JoinInner, pushedIn, akIn, on, nil)
			branches = append(branches, xqgm.ProjectCols(join, o.Key))
		}
		if len(branches) == 0 {
			return nil, nil, nil
		}
		var ak *xqgm.Operator
		if len(branches) == 1 {
			ak = xqgm.NewUnion(true, branches[0]) // still dedup
		} else {
			ak = xqgm.NewUnion(true, branches...)
		}
		return ak, append([]int(nil), o.Key...), nil

	case xqgm.OpUnnest:
		return nil, nil, fmt.Errorf("affected: Unnest must be composed away before trigger analysis (Theorem 1)")

	default:
		return nil, nil, fmt.Errorf("affected: unsupported operator %v", o.Type)
	}
}

// createAKLeftOuter handles the functional left-outer joins produced by the
// view compiler (parent rows joined with grouped child fragments on the
// parent key). An output row is affected when its left part changed or when
// its matched right-side group changed. Affected keys from either side are
// normalized to the left input's canonical key (= the join's key, by the
// functional-join property) by joining back with the (semijoin-restricted)
// left input, so both branches union cleanly even when the updated table
// occurs on both sides.
func createAKLeftOuter(s *schema.Schema, o *xqgm.Operator, table string, src xqgm.TableSource) (*xqgm.Operator, []int, error) {
	l, r := o.Inputs[0], o.Inputs[1]
	akL, kl, err := CreateAKGraph(s, l, table, src)
	if err != nil {
		return nil, nil, err
	}
	akR, kr, err := CreateAKGraph(s, r, table, src)
	if err != nil {
		return nil, nil, err
	}
	if akL == nil && akR == nil {
		return nil, nil, nil
	}
	xqgm.DeriveKeys(l)
	lk := l.Key
	if lk == nil {
		return nil, nil, fmt.Errorf("affected: left-outer join: left input has no canonical key")
	}
	// Map right-side key columns to left positions via the join equalities.
	mapRight := func(cols []int) ([]int, error) {
		out := make([]int, len(cols))
		for i, c := range cols {
			mapped := -1
			for _, eq := range o.On {
				if eq.R == c {
					mapped = eq.L
					break
				}
			}
			if mapped < 0 {
				return nil, fmt.Errorf("affected: left-outer join: affected key column %d of the right input is not a join column", c)
			}
			out[i] = mapped
		}
		return out, nil
	}
	sameAsLK := func(cols []int) bool {
		if len(cols) != len(lk) {
			return false
		}
		for i := range cols {
			if cols[i] != lk[i] {
				return false
			}
		}
		return true
	}
	// normalize produces an operator yielding the left-key values of the
	// left rows whose columns `cols` match the ak operator's keys.
	normalize := func(ak *xqgm.Operator, cols []int) *xqgm.Operator {
		if sameAsLK(cols) {
			return ak
		}
		pushed, _ := pushdown.PushSemiJoin(l, ak, cols)
		on := make([]xqgm.JoinEq, len(cols))
		for j, c := range cols {
			on[j] = xqgm.JoinEq{L: c, R: j}
		}
		join := xqgm.NewJoin(xqgm.JoinInner, pushed, ak, on, nil)
		return xqgm.NewGroupBy(join, append([]int(nil), lk...))
	}
	var branches []*xqgm.Operator
	if akL != nil {
		branches = append(branches, normalize(akL, kl))
	}
	if akR != nil {
		ko, err := mapRight(kr)
		if err != nil {
			return nil, nil, err
		}
		branches = append(branches, normalize(akR, ko))
	}
	var ak *xqgm.Operator
	if len(branches) == 1 {
		ak = branches[0]
	} else {
		ak = xqgm.NewUnion(true, branches...)
	}
	return ak, append([]int(nil), lk...), nil
}

// composeOpMaps chains clone and pushdown operator maps: an original
// operator resolves through the clone map, then through the pushdown map
// when the pushed rewrite replaced it.
func composeOpMaps(a, b map[*xqgm.Operator]*xqgm.Operator) map[*xqgm.Operator]*xqgm.Operator {
	out := make(map[*xqgm.Operator]*xqgm.Operator, len(a))
	for k, v := range a {
		if w, ok := b[v]; ok {
			out[k] = w
		} else {
			out[k] = v
		}
	}
	return out
}

// ensureProjected returns the output position of a Project that carries
// input column ic, appending a passthrough projection when missing
// (Figure 8 line 57: "Add K to O.outputColumns").
func ensureProjected(o *xqgm.Operator, ic int) int {
	for pi, p := range o.Projs {
		if cr, ok := p.E.(*xqgm.ColRef); ok && cr.Input == 0 && cr.Col == ic {
			return pi
		}
	}
	name := ""
	if names := o.Inputs[0].OutNames(); ic < len(names) {
		name = names[ic]
	}
	if name == "" {
		name = fmt.Sprintf("_ak%d", ic)
	}
	o.Projs = append(o.Projs, xqgm.Proj{Name: name, E: xqgm.Col(ic)})
	return len(o.Projs) - 1
}

// CreateANGraph implements Figure 12: it builds the graph producing
// (OLD_NODE, NEW_NODE) pairs for the XML event ev on path graph G, given
// updates to the named base table. G is not modified; the result owns
// private clones. The returned ANGraph exposes the column layout.
func CreateANGraph(s *schema.Schema, ev reldb.Event, g *xqgm.Operator, table string, opts Options) (*ANGraph, error) {
	deltaSrc, nablaSrc := xqgm.SrcDelta, xqgm.SrcNabla
	if opts.Prune {
		deltaSrc, nablaSrc = xqgm.SrcDeltaPruned, xqgm.SrcNablaPruned
	}

	gNew, mapNew := xqgm.CloneMap(g)
	gOld, mapOld := xqgm.CloneMap(g)
	// Every base table in the old-side clone reads B_old, not just the
	// fired table. For single-statement firings the other tables have empty
	// transition tables and B_old degenerates to the current table, so this
	// costs nothing; for batched transactions (Tx.Commit) the evaluator is
	// handed the net deltas of every touched table and the old side then
	// reconstructs the true pre-transaction state across tables.
	xqgm.Walk(gOld, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable && o.Source == xqgm.SrcBase {
			o.Source = xqgm.SrcOld
		}
	})
	xqgm.DeriveKeys(gNew)
	xqgm.DeriveKeys(gOld)
	if gNew.Key == nil {
		return nil, fmt.Errorf("affected: path graph has no canonical key; view is not trigger-specifiable")
	}

	// Affected keys on the Δ side (over G) and the ∇ side (over G_old).
	akNew, kNew, err := CreateAKGraph(s, gNew, table, deltaSrc)
	if err != nil {
		return nil, err
	}
	akOld, kOld, err := CreateAKGraph(s, gOld, table, nablaSrc)
	if err != nil {
		return nil, err
	}
	if akNew == nil || akOld == nil {
		return nil, fmt.Errorf("affected: table %q does not occur in the path graph", table)
	}
	if len(kNew) != len(kOld) {
		return nil, fmt.Errorf("affected: internal error: Δ/∇ affected-key shapes differ (%v vs %v)", kNew, kOld)
	}
	// Both sides were built from clones of the same graph, so the key
	// column positions agree; assert it.
	for i := range kNew {
		if kNew[i] != kOld[i] {
			return nil, fmt.Errorf("affected: internal error: Δ/∇ key columns differ (%v vs %v)", kNew, kOld)
		}
	}

	// Ou ← Union of the affected keys.
	ou := xqgm.NewUnion(true, akNew, akOld)
	kw := len(kNew)

	// Trigger pushdown (§5.2): restrict both view sides to the affected
	// keys before joining, so firing cost scales with the number of
	// affected nodes, not the database size (Figure 16 / Figure 23).
	gNewP, pmapNew := pushdown.PushSemiJoin(gNew, ou, kNew)
	gOldP, pmapOld := pushdown.PushSemiJoin(gOld, ou, kOld)

	if opts.OldAggDelta {
		// The GROUPED-AGG rewrite targets the pushed graphs: compose the
		// clone maps with the pushdown maps so original GroupBys resolve to
		// their restricted counterparts.
		rewriteOldAggregates(g, gOldP, table,
			composeOpMaps(mapNew, pmapNew), composeOpMaps(mapOld, pmapOld),
			deltaSrc, nablaSrc, opts.ElideOldXMLFrag)
	}
	xqgm.DeriveKeys(gNewP)
	xqgm.DeriveKeys(gOldP)

	// Onew ← Join(Ou.key = G.key)(Ou, G); Oold likewise against G_old.
	onNew := make([]xqgm.JoinEq, kw)
	for j := 0; j < kw; j++ {
		onNew[j] = xqgm.JoinEq{L: j, R: kNew[j]}
	}
	oNew := xqgm.NewJoin(xqgm.JoinInner, ou, gNewP, onNew, nil)
	oOld := xqgm.NewJoin(xqgm.JoinInner, ou, gOldP, onNew, nil)

	vw := gNew.OutWidth()
	if gOld.OutWidth() != vw {
		return nil, fmt.Errorf("affected: internal error: G and G_old widths differ")
	}

	// Final join on the full canonical key; the join type encodes the
	// event semantics (Definitions 2-3).
	key := gNew.Key
	topOn := make([]xqgm.JoinEq, len(key))
	for i, kc := range key {
		topOn[i] = xqgm.JoinEq{L: kw + kc, R: kw + kc}
	}
	var root *xqgm.Operator
	switch ev {
	case reldb.EvUpdate:
		root = xqgm.NewJoin(xqgm.JoinInner, oNew, oOld, topOn, nil)
	case reldb.EvInsert:
		root = xqgm.NewJoin(xqgm.JoinLeftAnti, oNew, oOld, topOn, nil)
	case reldb.EvDelete:
		root = xqgm.NewJoin(xqgm.JoinRightAnti, oNew, oOld, topOn, nil)
	default:
		return nil, fmt.Errorf("affected: unknown event %v", ev)
	}

	an := &ANGraph{Root: root, Event: ev, Table: table, keyWidth: kw, viewWidth: vw}

	// Spurious-update filter (Figure 12 line 11 / Appendix E.1): required
	// for UPDATE events unless the view is injective and pruning is on.
	if ev == reldb.EvUpdate && !opts.SkipValueCompare {
		cols := opts.CompareCols
		if len(cols) == 0 {
			for i := 0; i < vw; i++ {
				cols = append(cols, i)
			}
		}
		var diffs []xqgm.Expr
		for _, c := range cols {
			diffs = append(diffs, &xqgm.Logic{Op: "not", Args: []xqgm.Expr{
				&xqgm.Call{Name: "deep-equal", Args: []xqgm.Expr{
					xqgm.Col(an.NewCol(c)),
					xqgm.Col(an.OldCol(c)),
				}},
			}})
		}
		var pred xqgm.Expr
		if len(diffs) == 1 {
			pred = diffs[0]
		} else {
			pred = &xqgm.Logic{Op: "or", Args: diffs}
		}
		an.Root = xqgm.NewSelect(root, pred)
	}
	return an, nil
}

// Pairs evaluates the ANGraph and returns the affected (old, new) tuples of
// the view output, both sides restricted to the original view width.
type Pair struct {
	Old, New xqgm.Tuple
}

// Eval runs the ANGraph under the given transition tables and extracts the
// (old, new) view tuples.
func (g *ANGraph) Eval(db *reldb.DB, deltas map[string]*xqgm.Transition) ([]Pair, error) {
	ctx := xqgm.NewEvalContext(db, deltas)
	rows, err := ctx.Eval(g.Root)
	if err != nil {
		return nil, err
	}
	out := make([]Pair, 0, len(rows))
	for _, r := range rows {
		p := Pair{Old: make(xqgm.Tuple, g.viewWidth), New: make(xqgm.Tuple, g.viewWidth)}
		for i := 0; i < g.viewWidth; i++ {
			p.New[i] = r[g.NewCol(i)]
			p.Old[i] = r[g.OldCol(i)]
		}
		out = append(out, p)
	}
	return out, nil
}

// InjectiveFor implements the Appendix F.2 sufficient conditions: it
// reports whether the view graph is injective with respect to the given
// base table. The check computes, for every output column of every
// operator, the set of the table's base columns that are injectively
// recoverable from it: direct column references, XML-constructor embedding,
// and aggXMLFrag embedding preserve their arguments injectively; all other
// expressions and aggregates lose information. The view is injective for
// the table iff the root's output jointly recovers every column of the
// table. Injective views need no OLD_NODE ≠ NEW_NODE comparison when pruned
// transition tables are used (Theorem 3).
func InjectiveFor(root *xqgm.Operator, table string) bool {
	def := tableWidth(root, table)
	if def == 0 {
		return false
	}
	recov := recoverable(root, table, map[*xqgm.Operator][]colMask{})
	var all colMask
	for _, m := range recov {
		all |= m
	}
	return all == (colMask(1)<<def)-1
}

// colMask is a bitset over a base table's column indexes (tables are small).
type colMask uint64

func tableWidth(root *xqgm.Operator, table string) int {
	w := 0
	xqgm.Walk(root, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable && o.Table == table {
			w = o.Width
		}
	})
	return w
}

// recoverable returns, per output column, the mask of `table` base columns
// injectively recoverable from that column.
func recoverable(o *xqgm.Operator, table string, memo map[*xqgm.Operator][]colMask) []colMask {
	if r, ok := memo[o]; ok {
		return r
	}
	var out []colMask
	switch o.Type {
	case xqgm.OpTable:
		out = make([]colMask, o.Width)
		if o.Table == table {
			for i := range out {
				out[i] = colMask(1) << i
			}
		}
	case xqgm.OpConstants:
		out = make([]colMask, o.Width)
	case xqgm.OpSelect, xqgm.OpOrderBy:
		out = recoverable(o.Inputs[0], table, memo)
	case xqgm.OpProject:
		in := recoverable(o.Inputs[0], table, memo)
		out = make([]colMask, len(o.Projs))
		for pi, p := range o.Projs {
			out[pi] = exprRecov(p.E, in)
		}
	case xqgm.OpJoin:
		lt := recoverable(o.Inputs[0], table, memo)
		rt := recoverable(o.Inputs[1], table, memo)
		out = make([]colMask, 0, len(lt)+len(rt))
		out = append(out, lt...)
		out = append(out, rt...)
	case xqgm.OpGroupBy:
		in := recoverable(o.Inputs[0], table, memo)
		out = make([]colMask, 0, len(o.GroupCols)+len(o.Aggs))
		for _, g := range o.GroupCols {
			out = append(out, in[g])
		}
		for _, a := range o.Aggs {
			if a.Func == xqgm.AggXMLFrag && a.Arg != nil {
				// aggXMLFrag concatenates its arguments into a sequence,
				// preserving each fragment: injective (F.2).
				out = append(out, exprRecovCtor(a.Arg, in))
			} else {
				// count/sum/min/max/avg lose the contributing values.
				out = append(out, 0)
			}
		}
	default:
		// Union merges duplicates and Unnest duplicates rows: conservative.
		out = make([]colMask, o.OutWidth())
	}
	memo[o] = out
	return out
}

// exprRecov computes the recoverable mask of an expression used as a
// projection: only direct column references and XML constructors preserve
// their inputs injectively.
func exprRecov(e xqgm.Expr, in []colMask) colMask {
	switch x := e.(type) {
	case *xqgm.ColRef:
		if x.Input == 0 && x.Col < len(in) {
			return in[x.Col]
		}
	case *xqgm.ElemCtor:
		return exprRecovCtor(x, in)
	}
	return 0
}

// exprRecovCtor computes the recoverable mask of an expression embedded in
// an XML fragment: constructors render each child into a distinct position,
// so direct column references and nested constructors are injective, while
// computed values (arithmetic, comparisons, function calls) are not.
func exprRecovCtor(e xqgm.Expr, in []colMask) colMask {
	switch x := e.(type) {
	case *xqgm.ColRef:
		if x.Input == 0 && x.Col < len(in) {
			return in[x.Col]
		}
	case *xqgm.ElemCtor:
		var m colMask
		for _, a := range x.Attrs {
			m |= exprRecovCtor(a.E, in)
		}
		for _, c := range x.Children {
			m |= exprRecovCtor(c, in)
		}
		return m
	}
	return 0
}

// Lexicalize is a helper for tests: renders a tuple deterministically.
func Lexicalize(t xqgm.Tuple) string {
	out := ""
	for i, v := range t {
		if i > 0 {
			out += "|"
		}
		out += v.Lexical()
	}
	return out
}
