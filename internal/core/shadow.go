package core

import (
	"quark/internal/xqgm"
)

// PlanShadow mirrors translated trigger-plan evaluations onto a second,
// SQL-executing backend. After every in-memory evaluation the engine hands
// the shadow the rendered SQL text of the plan it just ran, the firing's
// transition tables, and the evaluator's result rows; the shadow replays the
// SQL against its own copy of the store and returns an error on any
// divergence (multiset comparison — SQL promises no row order).
//
// This is the conformance seam of the real-database backend
// (internal/relsql): the paper's claim is that the translated SQL triggers
// run unchanged on a relational engine, and the shadow makes that claim a
// per-firing invariant instead of a one-off test.
type PlanShadow interface {
	VerifyPlan(table, sqlText string, deltas map[string]*xqgm.Transition, rows []xqgm.Tuple) error
}

// SetPlanShadow installs (or, with nil, removes) the plan shadow. Safe to
// call at any time; firings observe the change atomically.
func (e *Engine) SetPlanShadow(s PlanShadow) {
	if s == nil {
		e.shadow.Store(nil)
		return
	}
	e.shadow.Store(&s)
}
