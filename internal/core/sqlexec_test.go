package core

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/sqlshim"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// shimShadow is a test-local PlanShadow over the sqlshim engine directly
// (no database/sql, no build tag): every plan firing rebuilds a mirror of
// the store plus the transition tables and requires the rendered SQL to
// reproduce the evaluator's rows exactly. internal/relsql is the packaged
// form of the same idea behind the sqlite tag; this keeps the executability
// guarantee in the default test tier.
type shimShadow struct {
	db       *reldb.DB
	verified int
}

func ddlForTable(t *schema.Table, name string, withPK bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (", name)
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
	}
	if withPK && t.HasPrimaryKey() {
		fmt.Fprintf(&sb, ", PRIMARY KEY (%s)", strings.Join(t.PrimaryKey, ", "))
	}
	sb.WriteString(")")
	return sb.String()
}

func loadShimTable(sdb *sqlshim.DB, name string, width int, rows []reldb.Row) error {
	stmt := fmt.Sprintf("INSERT INTO %s VALUES (%s)",
		name, strings.TrimSuffix(strings.Repeat("?, ", width), ", "))
	for _, r := range rows {
		if _, err := sdb.Exec(stmt, r...); err != nil {
			return err
		}
	}
	return nil
}

func (s *shimShadow) VerifyPlan(table, sqlText string, deltas map[string]*xqgm.Transition, rows []xqgm.Tuple) error {
	sdb := sqlshim.NewDB()
	for _, t := range s.db.Schema().Tables() {
		if _, err := sdb.Exec(ddlForTable(t, t.Name, true)); err != nil {
			return err
		}
		if _, err := sdb.Exec(ddlForTable(t, "INSERTED_"+t.Name, false)); err != nil {
			return err
		}
		if _, err := sdb.Exec(ddlForTable(t, "DELETED_"+t.Name, false)); err != nil {
			return err
		}
		var base []reldb.Row
		if err := s.db.Scan(t.Name, func(r reldb.Row) bool {
			base = append(base, r)
			return true
		}); err != nil {
			return err
		}
		if err := loadShimTable(sdb, t.Name, len(t.Columns), base); err != nil {
			return err
		}
		if d := deltas[t.Name]; d != nil {
			if err := loadShimTable(sdb, "INSERTED_"+t.Name, len(t.Columns), d.Inserted); err != nil {
				return err
			}
			if err := loadShimTable(sdb, "DELETED_"+t.Name, len(t.Columns), d.Deleted); err != nil {
				return err
			}
		}
	}
	res, err := sdb.Exec(sqlText)
	if err != nil {
		return fmt.Errorf("execute rendered SQL on %s: %w", table, err)
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[xdm.TupleKey(r)]++
	}
	for _, r := range res.Rows {
		counts[xdm.TupleKey(r)]--
	}
	for k, n := range counts {
		if n != 0 {
			return fmt.Errorf("plan on %s: SQL result diverges from evaluator (%+d of %q); evaluator %d rows, SQL %d rows",
				table, -n, k, len(rows), len(res.Rows))
		}
	}
	s.verified++
	return nil
}

// TestRenderedSQLExecutesOnShim drives the paper's catalog triggers in every
// translated mode with the shadow attached: each firing's rendered SQL must
// parse, execute, and reproduce the evaluator's result multiset on real
// INSERTED_/DELETED_ tables — per statement and per batched commit.
func TestRenderedSQLExecutesOnShim(t *testing.T) {
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg} {
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			for _, src := range []string{
				`CREATE TRIGGER Notify AFTER UPDATE ON view('catalog')/product
				 WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`,
				`CREATE TRIGGER Cheap AFTER UPDATE ON view('catalog')/product
				 WHERE count(NEW_NODE/vendor[./price < 110]) >= 1 DO notifySmith(NEW_NODE)`,
				`CREATE TRIGGER NewProd AFTER INSERT ON view('catalog')/product DO notifySmith(NEW_NODE)`,
				`CREATE TRIGGER GoneProd AFTER DELETE ON view('catalog')/product DO notifySmith(OLD_NODE)`,
			} {
				if err := e.CreateTrigger(src); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			sh := &shimShadow{db: e.db}
			e.SetPlanShadow(sh)

			if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(75)
				return r
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.Insert("vendor", reldb.Row{xdm.Str("Newegg"), xdm.Str("P2"), xdm.Float(210)}); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Delete("vendor", func(r reldb.Row) bool {
				return r[0].AsString() == "Circuitcity"
			}); err != nil {
				t.Fatal(err)
			}
			// Batched commit: multi-statement transaction exercises the
			// batch-fallback plan (batchSQL) where one exists.
			if err := e.Batch(func(tx *reldb.Tx) error {
				if err := tx.Insert("product", reldb.Row{xdm.Str("P4"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
					return err
				}
				return tx.Insert("vendor",
					reldb.Row{xdm.Str("Amazon"), xdm.Str("P4"), xdm.Float(300)},
					reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P4"), xdm.Float(310)})
			}); err != nil {
				t.Fatal(err)
			}

			if sh.verified == 0 {
				t.Fatal("shadow verified no plan evaluations")
			}
			if len(*log) == 0 {
				t.Fatal("triggers delivered no notifications")
			}
			t.Logf("mode %s: %d plan evaluations verified on the SQL backend", mode, sh.verified)
		})
	}
}

// TestOldTableBagSemanticsSQL is the duplicate-row regression for the B_old
// rendering fix: on a keyless table holding two identical rows with one of
// them freshly inserted, B_old = (B EXCEPT ALL Δ) UNION ALL ∇ keeps exactly
// one copy. The old set-based EXCEPT rendering annihilates both copies —
// the bug this PR fixes — and the in-memory evaluator must agree with the
// fixed SQL.
func TestOldTableBagSemanticsSQL(t *testing.T) {
	def := &schema.Table{
		Name:    "b",
		Columns: []schema.Column{{Name: "x", Type: schema.TInt}},
	}
	s := schema.New()
	s.MustAddTable(def)
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	// Post-statement state: two identical rows, one of them just inserted.
	if err := db.Insert("b", reldb.Row{xdm.Int(7)}, reldb.Row{xdm.Int(7)}); err != nil {
		t.Fatal(err)
	}
	deltas := map[string]*xqgm.Transition{
		"b": {Inserted: []reldb.Row{{xdm.Int(7)}}},
	}

	// Evaluator: B_old must hold exactly one copy of the row.
	root := xqgm.NewTable(def, xqgm.SrcOld)
	rows, err := xqgm.NewEvalContext(db, deltas).Eval(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 7 {
		t.Fatalf("evaluator B_old = %v, want exactly one row (7)", rows)
	}

	// Rendered SQL on the shim backend must agree.
	sdb := sqlshim.NewDB()
	for _, stmt := range []string{
		"CREATE TABLE b (x INTEGER)",
		"CREATE TABLE INSERTED_b (x INTEGER)",
		"CREATE TABLE DELETED_b (x INTEGER)",
		"INSERT INTO b VALUES (7), (7)",
		"INSERT INTO INSERTED_b VALUES (7)",
	} {
		if _, err := sdb.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	sqlText := RenderSQL(root)
	res, err := sdb.Exec(sqlText)
	if err != nil {
		t.Fatalf("rendered B_old SQL failed: %v\n%s", err, sqlText)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("rendered B_old SQL = %v, want exactly one row (7)\n%s", res.Rows, sqlText)
	}

	// The pre-fix rendering used set-semantics EXCEPT: both copies vanish,
	// silently under-reporting the old state. Executing that shape shows
	// why the ROW_NUMBER bag-difference emulation is required.
	legacy := "SELECT x FROM b EXCEPT SELECT x FROM INSERTED_b UNION ALL SELECT x FROM DELETED_b"
	res, err = sdb.Exec(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("legacy set-based EXCEPT yielded %v; expected it to (wrongly) drop every copy — regression fixture is stale", res.Rows)
	}
}
