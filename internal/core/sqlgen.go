package core

import (
	"fmt"
	"strconv"
	"strings"

	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// RenderSQL renders an XQGM plan as executable SQL in the style of the
// paper's Figure 16 (WITH common-table-expressions feeding a final SELECT).
// The dialect is the portable subset executed by internal/sqlshim behind
// the relsql backend:
//
//   - every CTE carries an explicit column list with unique names, so no
//     positional c%d names leak into outer SELECTs;
//   - string literals escape single quotes, reserved-word identifiers are
//     double-quoted;
//   - B_old and the pruned transition tables are bag expressions (§4.2 /
//     Definition 8): EXCEPT ALL is emulated with ROW_NUMBER occurrence
//     numbering since SQLite has no EXCEPT ALL, with operands explicitly
//     parenthesized;
//   - anti joins render as NOT EXISTS with NULL padding to the full
//     combined width, matching the evaluator's tuple shape;
//   - XML construction and path navigation render as UDF calls
//     (xml_element, xml_attr, xml_concat, path_step, ...) the backend
//     implements with the same semantics as the evaluator.
func RenderSQL(root *xqgm.Operator) string {
	r := &sqlRenderer{refs: map[*xqgm.Operator]*relRef{}}
	final := r.render(root)
	var sb strings.Builder
	if len(r.ctes) > 0 {
		sb.WriteString("WITH ")
		for i, c := range r.ctes {
			if i > 0 {
				sb.WriteString(",\n")
			}
			sb.WriteString(c.name)
			sb.WriteString("(")
			sb.WriteString(colList(c.cols))
			sb.WriteString(") AS (\n  ")
			sb.WriteString(strings.ReplaceAll(c.body, "\n", "\n  "))
			sb.WriteString("\n)")
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "SELECT %s FROM %s", colList(final.cols), final.name)
	return sb.String()
}

// relRef is a rendered relation: a name usable in FROM clauses plus its
// output column identifiers (sanitized, unique within the relation).
type relRef struct {
	name string
	cols []string
}

type cte struct {
	name string
	cols []string
	body string
}

type sqlRenderer struct {
	refs map[*xqgm.Operator]*relRef
	ctes []cte
	seq  int
}

// render returns a relation reference usable in FROM clauses, materializing
// intermediate operators as CTEs.
func (r *sqlRenderer) render(o *xqgm.Operator) *relRef {
	if ref, ok := r.refs[o]; ok {
		return ref
	}
	ref := r.renderOp(o)
	r.refs[o] = ref
	return ref
}

func (r *sqlRenderer) renderOp(o *xqgm.Operator) *relRef {
	switch o.Type {
	case xqgm.OpTable:
		cols := uniqueCols(o.Names, o.OutWidth())
		switch o.Source {
		case xqgm.SrcDelta:
			return &relRef{name: qid("INSERTED_" + o.Table), cols: cols}
		case xqgm.SrcNabla:
			return &relRef{name: qid("DELETED_" + o.Table), cols: cols}
		case xqgm.SrcDeltaPruned:
			body := "-- pruned delta: rows also deleted in the same transition removed with multiplicity (Definition 8)\n" +
				bagDiff(cols, qid("INSERTED_"+o.Table), qid("DELETED_"+o.Table))
			return r.addCTE("INSERTED_"+o.Table+"_pruned", cols, body)
		case xqgm.SrcNablaPruned:
			body := "-- pruned nabla: rows also inserted in the same transition removed with multiplicity (Definition 8)\n" +
				bagDiff(cols, qid("DELETED_"+o.Table), qid("INSERTED_"+o.Table))
			return r.addCTE("DELETED_"+o.Table+"_pruned", cols, body)
		case xqgm.SrcOld:
			// B_old = (B EXCEPT ALL delta) UNION ALL nabla, per Section
			// 4.2 — a bag expression, so plain EXCEPT/UNION (set
			// operators) would collapse duplicate rows.
			body := "-- B_old = (B EXCEPT ALL INSERTED_) UNION ALL DELETED_ (Section 4.2, bag semantics;\n" +
				"-- EXCEPT ALL emulated with ROW_NUMBER occurrence numbering, operands parenthesized)\n" +
				bagDiff(cols, qid(o.Table), qid("INSERTED_"+o.Table)) +
				"\nUNION ALL\n" +
				fmt.Sprintf("SELECT %s FROM %s", colList(cols), qid("DELETED_"+o.Table))
			return r.addCTE(o.Table+"_old", cols, body)
		default: // SrcBase
			return &relRef{name: qid(o.Table), cols: cols}
		}
	case xqgm.OpConstants:
		cols := uniqueCols(o.Names, len(o.Names))
		rows := make([]string, 0, len(o.ConstRows))
		for _, row := range o.ConstRows {
			cells := make([]string, len(row))
			for i, e := range row {
				cells[i] = r.renderExpr(e, exprCtx{})
			}
			rows = append(rows, "("+strings.Join(cells, ", ")+")")
		}
		body := fmt.Sprintf("-- constants(%s)\nVALUES\n  %s",
			strings.Join(o.Names, ", "), strings.Join(rows, ",\n  "))
		return r.addCTE("Constants", cols, body)
	case xqgm.OpSelect:
		in := r.render(o.Inputs[0])
		body := fmt.Sprintf("SELECT %s\nFROM %s\nWHERE %s",
			colList(in.cols), in.name, r.renderExpr(o.Pred, exprCtx{l: in}))
		return r.addCTE("Filtered", in.cols, body)
	case xqgm.OpProject:
		in := r.render(o.Inputs[0])
		names := make([]string, len(o.Projs))
		for i, p := range o.Projs {
			names[i] = p.Name
		}
		cols := uniqueCols(names, len(o.Projs))
		items := make([]string, len(o.Projs))
		for i, p := range o.Projs {
			items[i] = r.renderExpr(p.E, exprCtx{l: in}) + " AS " + qid(cols[i])
		}
		body := fmt.Sprintf("SELECT %s\nFROM %s", strings.Join(items, ", "), in.name)
		return r.addCTE("Projected", cols, body)
	case xqgm.OpJoin:
		return r.renderJoin(o)
	case xqgm.OpGroupBy:
		return r.renderGroupBy(o)
	case xqgm.OpUnion:
		first := r.render(o.Inputs[0])
		parts := make([]string, len(o.Inputs))
		for i, input := range o.Inputs {
			in := r.render(input)
			parts[i] = fmt.Sprintf("SELECT %s FROM %s", colList(in.cols), in.name)
		}
		sep := "\nUNION ALL\n"
		if o.Distinct {
			sep = "\nUNION\n"
		}
		cols := append([]string(nil), first.cols...)
		return r.addCTE("Unioned", cols, strings.Join(parts, sep))
	case xqgm.OpOrderBy:
		in := r.render(o.Inputs[0])
		ords := make([]string, len(o.OrderCols))
		for i, oc := range o.OrderCols {
			ords[i] = qid(in.cols[oc.Col])
			if oc.Desc {
				ords[i] += " DESC"
			}
		}
		body := fmt.Sprintf("SELECT %s FROM %s ORDER BY %s",
			colList(in.cols), in.name, strings.Join(ords, ", "))
		return r.addCTE("Ordered", in.cols, body)
	default:
		return r.addCTE("Op", []string{"c0"}, "-- unsupported operator "+o.Type.String())
	}
}

func (r *sqlRenderer) renderJoin(o *xqgm.Operator) *relRef {
	lr := r.render(o.Inputs[0])
	rr := r.render(o.Inputs[1])
	outNames := make([]string, 0, len(lr.cols)+len(rr.cols))
	outNames = append(outNames, lr.cols...)
	outNames = append(outNames, rr.cols...)
	cols := uniqueCols(outNames, len(outNames))

	conds := make([]string, 0, len(o.On)+1)
	for _, eq := range o.On {
		conds = append(conds, fmt.Sprintf("L.%s = R.%s", qid(lr.cols[eq.L]), qid(rr.cols[eq.R])))
	}
	if o.JoinPred != nil {
		conds = append(conds, r.renderExpr(o.JoinPred, exprCtx{l: lr, r: rr, qualify: true}))
	}

	switch o.JoinKind {
	case xqgm.JoinLeftAnti, xqgm.JoinRightAnti:
		// Anti joins keep the unmatched rows of one side, NULL-padded to
		// the full combined width (the evaluator's tuple shape); there is
		// no SQL ANTI JOIN, so render as NOT EXISTS.
		keep, drop := lr, rr
		keepAlias, dropAlias := "L", "R"
		if o.JoinKind == xqgm.JoinRightAnti {
			keep, drop = rr, lr
			keepAlias, dropAlias = "R", "L"
		}
		items := make([]string, len(cols))
		for i := range cols {
			fromLeft := i < len(lr.cols)
			if fromLeft == (o.JoinKind == xqgm.JoinLeftAnti) {
				src := lr.cols
				off := 0
				if !fromLeft {
					src = rr.cols
					off = len(lr.cols)
				}
				items[i] = fmt.Sprintf("%s.%s AS %s", keepAlias, qid(src[i-off]), qid(cols[i]))
			} else {
				items[i] = "NULL AS " + qid(cols[i])
			}
		}
		sub := fmt.Sprintf("SELECT 1 FROM %s AS %s", drop.name, dropAlias)
		if len(conds) > 0 {
			sub += " WHERE " + strings.Join(conds, " AND ")
		}
		body := fmt.Sprintf("-- anti join rendered as NOT EXISTS with NULL padding to full width\nSELECT %s\nFROM %s AS %s\nWHERE NOT EXISTS (%s)",
			strings.Join(items, ", "), keep.name, keepAlias, sub)
		return r.addCTE("Joined", cols, body)
	}

	kind := "JOIN"
	if o.JoinKind == xqgm.JoinLeftOuter {
		kind = "LEFT OUTER JOIN"
	}
	items := make([]string, 0, len(cols))
	for i, c := range lr.cols {
		items = append(items, fmt.Sprintf("L.%s AS %s", qid(c), qid(cols[i])))
	}
	for i, c := range rr.cols {
		items = append(items, fmt.Sprintf("R.%s AS %s", qid(c), qid(cols[len(lr.cols)+i])))
	}
	on := "1=1"
	if len(conds) > 0 {
		on = strings.Join(conds, " AND ")
	}
	body := fmt.Sprintf("SELECT %s\nFROM %s AS L %s %s AS R ON %s",
		strings.Join(items, ", "), lr.name, kind, rr.name, on)
	return r.addCTE("Joined", cols, body)
}

func (r *sqlRenderer) renderGroupBy(o *xqgm.Operator) *relRef {
	in := r.render(o.Inputs[0])
	rawOut := make([]string, 0, len(o.GroupCols)+len(o.Aggs))
	gb := make([]string, 0, len(o.GroupCols))
	for _, g := range o.GroupCols {
		rawOut = append(rawOut, in.cols[g])
		gb = append(gb, qid(in.cols[g]))
	}
	for _, a := range o.Aggs {
		rawOut = append(rawOut, a.Name)
	}
	cols := uniqueCols(rawOut, len(rawOut))
	items := make([]string, 0, len(cols))
	for i := range o.GroupCols {
		items = append(items, gb[i]+" AS "+qid(cols[i]))
	}
	// Document order for order-sensitive aggregation (aggXMLFrag) follows
	// the input's canonical key, like the evaluator's pre-aggregation sort.
	var ord []string
	if key := o.Inputs[0].Key; len(key) > 0 {
		for _, k := range key {
			ord = append(ord, qid(in.cols[k]))
		}
	} else {
		for _, c := range in.cols {
			ord = append(ord, qid(c))
		}
	}
	for j, a := range o.Aggs {
		arg := "*"
		if a.Arg != nil {
			arg = r.renderExpr(a.Arg, exprCtx{l: in})
		}
		call := strings.ToUpper(a.Func.String()) + "(" + arg
		if a.Func == xqgm.AggXMLFrag {
			call += " ORDER BY " + strings.Join(ord, ", ")
		}
		call += ")"
		items = append(items, call+" AS "+qid(cols[len(o.GroupCols)+j]))
	}
	body := fmt.Sprintf("SELECT %s\nFROM %s", strings.Join(items, ", "), in.name)
	if len(gb) > 0 {
		body += "\nGROUP BY " + strings.Join(gb, ", ")
	}
	return r.addCTE("Grouped", cols, body)
}

func (r *sqlRenderer) addCTE(base string, cols []string, body string) *relRef {
	r.seq++
	name := fmt.Sprintf("%s_%d", sqlIdent(base), r.seq)
	r.ctes = append(r.ctes, cte{name: name, cols: cols, body: body})
	return &relRef{name: name, cols: cols}
}

// bagDiff renders a bag difference A EXCEPT ALL B over the given columns.
// SQLite has no EXCEPT ALL; numbering duplicate occurrences with ROW_NUMBER
// turns the bag difference into a set difference: the i-th copy of a row
// survives iff B holds fewer than i copies.
func bagDiff(cols []string, a, b string) string {
	list := colList(cols)
	numbered := func(rel string) string {
		return fmt.Sprintf("SELECT %s, ROW_NUMBER() OVER (PARTITION BY %s) AS occ_ FROM %s", list, list, rel)
	}
	return fmt.Sprintf("SELECT %s FROM (\n  (%s)\n  EXCEPT\n  (%s)\n)", list, numbered(a), numbered(b))
}

func colList(cols []string) string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = qid(c)
	}
	return strings.Join(out, ", ")
}

// uniqueCols sanitizes output column names and disambiguates duplicates
// (e.g. a self-join's two pid columns become pid and pid_2), so explicit
// CTE column lists never carry ambiguous or positional names.
func uniqueCols(names []string, width int) []string {
	out := make([]string, width)
	used := make(map[string]bool, width)
	for i := 0; i < width; i++ {
		base := ""
		if i < len(names) {
			base = names[i]
		}
		if base == "" {
			base = fmt.Sprintf("c%d", i)
		}
		base = sqlIdent(base)
		cand := base
		for n := 2; used[strings.ToLower(cand)]; n++ {
			cand = fmt.Sprintf("%s_%d", base, n)
		}
		used[strings.ToLower(cand)] = true
		out[i] = cand
	}
	return out
}

// sqlIdent sanitizes a name into identifier characters.
func sqlIdent(s string) string {
	if s == "" {
		return "c"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = append([]byte{'_'}, out...)
	}
	return string(out)
}

// sqlReserved holds keywords that must be double-quoted when used as
// identifiers (column names like "order" or "group" appear in schemas).
var sqlReserved = map[string]bool{
	"all": true, "and": true, "as": true, "asc": true, "between": true,
	"by": true, "case": true, "create": true, "cross": true, "default": true,
	"delete": true, "desc": true, "distinct": true, "drop": true, "else": true,
	"end": true, "except": true, "exists": true, "explain": true, "false": true,
	"from": true, "group": true, "having": true, "in": true, "index": true,
	"inner": true, "insert": true, "intersect": true, "into": true, "is": true,
	"join": true, "key": true, "left": true, "like": true, "limit": true,
	"not": true, "null": true, "offset": true, "on": true, "or": true,
	"order": true, "outer": true, "over": true, "partition": true,
	"plan": true, "primary": true, "query": true, "references": true,
	"right": true, "row_number": true, "select": true, "set": true,
	"table": true, "then": true, "true": true, "union": true, "unique": true,
	"update": true, "using": true, "values": true, "when": true,
	"where": true, "with": true,
}

// qid quotes an identifier when it collides with a reserved word.
func qid(s string) string {
	if sqlReserved[strings.ToLower(s)] {
		return `"` + s + `"`
	}
	return s
}

// sqlStr renders a SQL string literal with single quotes escaped.
func sqlStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// exprCtx carries column-name context for expression rendering.
type exprCtx struct {
	l, r    *relRef
	qualify bool // qualify input-0 refs as L. and input-1 refs as R.
	inPath  bool // inside a path-step predicate: input 0 column 0 is ITEM
}

// sqlCallNames maps evaluator function names to the backend's UDF names.
var sqlCallNames = map[string]string{
	"data":       "xml_data",
	"string":     "xml_string",
	"count":      "seq_count",
	"empty":      "seq_empty",
	"exists":     "seq_exists",
	"concat":     "concat",
	"abs":        "ABS",
	"coalesce":   "COALESCE",
	"deep-equal": "deep_equal",
}

func (r *sqlRenderer) renderExpr(e xqgm.Expr, c exprCtx) string {
	switch x := e.(type) {
	case *xqgm.ColRef:
		if x.Input == 0 {
			if c.inPath {
				// A path-step predicate sees the current step item as
				// input 0 column 0 (xqgm.PathStep.Eval); the backend
				// binds it as ITEM.
				return "ITEM"
			}
			if c.l != nil && x.Col < len(c.l.cols) {
				if c.qualify {
					return "L." + qid(c.l.cols[x.Col])
				}
				return qid(c.l.cols[x.Col])
			}
		}
		if x.Input == 1 && c.r != nil && x.Col < len(c.r.cols) {
			return "R." + qid(c.r.cols[x.Col])
		}
		return fmt.Sprintf("c%d", x.Col)
	case *xqgm.Lit:
		return renderLit(x.V)
	case *xqgm.Cmp:
		op := x.Op
		if op == "!=" {
			op = "<>"
		}
		return fmt.Sprintf("(%s %s %s)", r.renderExpr(x.L, c), op, r.renderExpr(x.R, c))
	case *xqgm.Arith:
		op := x.Op
		if op == "div" {
			op = "/"
		}
		if op == "mod" {
			op = "%"
		}
		return fmt.Sprintf("(%s %s %s)", r.renderExpr(x.L, c), op, r.renderExpr(x.R, c))
	case *xqgm.Logic:
		if x.Op == "not" {
			return "NOT (" + r.renderExpr(x.Args[0], c) + ")"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = r.renderExpr(a, c)
		}
		return "(" + strings.Join(parts, " "+strings.ToUpper(x.Op)+" ") + ")"
	case *xqgm.IsNullExpr:
		if x.Neg {
			return "(" + r.renderExpr(x.E, c) + " IS NOT NULL)"
		}
		return "(" + r.renderExpr(x.E, c) + " IS NULL)"
	case *xqgm.Call:
		if x.Name == "not" {
			return "NOT (" + r.renderExpr(x.Args[0], c) + ")"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = r.renderExpr(a, c)
		}
		name := sqlCallNames[x.Name]
		if name == "" {
			name = sqlIdent(x.Name)
		}
		return name + "(" + strings.Join(args, ", ") + ")"
	case *xqgm.ElemCtor:
		parts := []string{sqlStr(x.Name)}
		for _, a := range x.Attrs {
			parts = append(parts, fmt.Sprintf("xml_attr(%s, %s)", sqlStr(a.Name), r.renderExpr(a.E, c)))
		}
		for _, ch := range x.Children {
			parts = append(parts, r.renderExpr(ch, c))
		}
		return "xml_element(" + strings.Join(parts, ", ") + ")"
	case *xqgm.PathStep:
		args := []string{r.renderExpr(x.In, c), sqlStr(x.Axis), sqlStr(x.Name)}
		if x.Predicate != nil {
			pc := c
			pc.inPath = true
			args = append(args, r.renderExpr(x.Predicate, pc))
		}
		return "path_step(" + strings.Join(args, ", ") + ")"
	default:
		if sq, ok := e.(interface{ SeqItems() []xqgm.Expr }); ok {
			items := sq.SeqItems()
			parts := make([]string, len(items))
			for i, it := range items {
				parts[i] = r.renderExpr(it, c)
			}
			return "xml_concat(" + strings.Join(parts, ", ") + ")"
		}
		return e.String()
	}
}

// renderLit renders a literal value in the backend's lexical forms.
func renderLit(v xdm.Value) string {
	switch v.Kind() {
	case xdm.KindNull:
		return "NULL"
	case xdm.KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	case xdm.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case xdm.KindFloat:
		return v.Lexical()
	case xdm.KindString:
		return sqlStr(v.AsString())
	case xdm.KindNode:
		return "xml_parse(" + sqlStr(v.AsNode().Serialize(false)) + ")"
	case xdm.KindSeq:
		items := v.AsSeq()
		parts := make([]string, len(items))
		for i, it := range items {
			parts[i] = renderLit(it)
		}
		return "xml_concat(" + strings.Join(parts, ", ") + ")"
	default:
		return "NULL"
	}
}
