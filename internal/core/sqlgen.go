package core

import (
	"fmt"
	"strings"

	"quark/internal/xqgm"
)

// RenderSQL renders an XQGM plan as readable SQL text in the style of the
// paper's Figure 16 (WITH common-table-expressions feeding a final SELECT).
// The text is for inspection and tests; plans are executed directly by the
// evaluator.
func RenderSQL(root *xqgm.Operator) string {
	r := &sqlRenderer{names: map[*xqgm.Operator]string{}}
	final := r.render(root)
	var sb strings.Builder
	if len(r.ctes) > 0 {
		sb.WriteString("WITH ")
		for i, c := range r.ctes {
			if i > 0 {
				sb.WriteString(",\n")
			}
			sb.WriteString(c.name)
			sb.WriteString(" AS (\n  ")
			sb.WriteString(strings.ReplaceAll(c.body, "\n", "\n  "))
			sb.WriteString("\n)")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("SELECT * FROM ")
	sb.WriteString(final)
	return sb.String()
}

type cte struct {
	name string
	body string
}

type sqlRenderer struct {
	names map[*xqgm.Operator]string
	ctes  []cte
	seq   int
}

// render returns a relation name usable in FROM clauses, materializing
// intermediate operators as CTEs.
func (r *sqlRenderer) render(o *xqgm.Operator) string {
	if n, ok := r.names[o]; ok {
		return n
	}
	var body string
	switch o.Type {
	case xqgm.OpTable:
		n := o.Table
		switch o.Source {
		case xqgm.SrcDelta, xqgm.SrcDeltaPruned:
			n = "INSERTED_" + o.Table
		case xqgm.SrcNabla, xqgm.SrcNablaPruned:
			n = "DELETED_" + o.Table
		case xqgm.SrcOld:
			// B_old per Section 4.2.
			body = fmt.Sprintf("SELECT * FROM %s EXCEPT SELECT * FROM INSERTED_%s UNION SELECT * FROM DELETED_%s",
				o.Table, o.Table, o.Table)
			return r.addCTE(o, o.Table+"_old", body)
		}
		r.names[o] = n
		return n
	case xqgm.OpConstants:
		vals := make([]string, 0, len(o.ConstRows))
		for _, row := range o.ConstRows {
			cells := make([]string, len(row))
			for i, e := range row {
				cells[i] = e.String()
			}
			vals = append(vals, "("+strings.Join(cells, ", ")+")")
		}
		body = fmt.Sprintf("VALUES %s -- constants(%s)", strings.Join(vals, ", "), strings.Join(o.Names, ", "))
		return r.addCTE(o, "Constants", body)
	case xqgm.OpSelect:
		in := r.render(o.Inputs[0])
		body = fmt.Sprintf("SELECT * FROM %s\nWHERE %s", in, renderExpr(o.Pred, o.Inputs[0], nil))
		return r.addCTE(o, "Filtered", body)
	case xqgm.OpProject:
		in := r.render(o.Inputs[0])
		cols := make([]string, len(o.Projs))
		for i, p := range o.Projs {
			cols[i] = fmt.Sprintf("%s AS %s", renderExpr(p.E, o.Inputs[0], nil), sqlIdent(p.Name))
		}
		body = fmt.Sprintf("SELECT %s\nFROM %s", strings.Join(cols, ", "), in)
		return r.addCTE(o, "Projected", body)
	case xqgm.OpJoin:
		l := r.render(o.Inputs[0])
		rr := r.render(o.Inputs[1])
		kind := "JOIN"
		switch o.JoinKind {
		case xqgm.JoinLeftOuter:
			kind = "LEFT OUTER JOIN"
		case xqgm.JoinLeftAnti:
			kind = "LEFT ANTI JOIN"
		case xqgm.JoinRightAnti:
			kind = "RIGHT ANTI JOIN"
		}
		conds := make([]string, 0, len(o.On)+1)
		lNames := colNames(o.Inputs[0])
		rNames := colNames(o.Inputs[1])
		for _, eq := range o.On {
			conds = append(conds, fmt.Sprintf("L.%s = R.%s", idx(lNames, eq.L), idx(rNames, eq.R)))
		}
		if o.JoinPred != nil {
			conds = append(conds, renderExpr(o.JoinPred, o.Inputs[0], o.Inputs[1]))
		}
		onClause := "1=1"
		if len(conds) > 0 {
			onClause = strings.Join(conds, " AND ")
		}
		body = fmt.Sprintf("SELECT * FROM %s AS L %s %s AS R ON %s", l, kind, rr, onClause)
		return r.addCTE(o, "Joined", body)
	case xqgm.OpGroupBy:
		in := r.render(o.Inputs[0])
		names := colNames(o.Inputs[0])
		var cols []string
		for _, g := range o.GroupCols {
			cols = append(cols, idx(names, g))
		}
		groupClause := strings.Join(cols, ", ")
		for _, a := range o.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = renderExpr(a.Arg, o.Inputs[0], nil)
			}
			cols = append(cols, fmt.Sprintf("%s(%s) AS %s", strings.ToUpper(a.Func.String()), arg, sqlIdent(a.Name)))
		}
		body = fmt.Sprintf("SELECT %s\nFROM %s", strings.Join(cols, ", "), in)
		if groupClause != "" {
			body += "\nGROUP BY " + groupClause
		}
		return r.addCTE(o, "Grouped", body)
	case xqgm.OpUnion:
		parts := make([]string, len(o.Inputs))
		for i, in := range o.Inputs {
			parts[i] = "SELECT * FROM " + r.render(in)
		}
		sep := "\nUNION ALL\n"
		if o.Distinct {
			sep = "\nUNION\n"
		}
		body = strings.Join(parts, sep)
		return r.addCTE(o, "Unioned", body)
	case xqgm.OpOrderBy:
		in := r.render(o.Inputs[0])
		names := colNames(o.Inputs[0])
		cols := make([]string, len(o.OrderCols))
		for i, oc := range o.OrderCols {
			cols[i] = idx(names, oc.Col)
			if oc.Desc {
				cols[i] += " DESC"
			}
		}
		body = fmt.Sprintf("SELECT * FROM %s ORDER BY %s", in, strings.Join(cols, ", "))
		return r.addCTE(o, "Ordered", body)
	default:
		return r.addCTE(o, "Op", "-- unsupported operator "+o.Type.String())
	}
}

func (r *sqlRenderer) addCTE(o *xqgm.Operator, base, body string) string {
	r.seq++
	name := fmt.Sprintf("%s_%d", base, r.seq)
	r.names[o] = name
	r.ctes = append(r.ctes, cte{name: name, body: body})
	return name
}

func colNames(o *xqgm.Operator) []string {
	return o.OutNames()
}

func idx(names []string, i int) string {
	if i >= 0 && i < len(names) && names[i] != "" {
		return sqlIdent(names[i])
	}
	return fmt.Sprintf("c%d", i)
}

func sqlIdent(s string) string {
	if s == "" {
		return "c"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// renderExpr renders an expression; l/r provide column names for inputs 0
// and 1.
func renderExpr(e xqgm.Expr, l, r *xqgm.Operator) string {
	switch x := e.(type) {
	case *xqgm.ColRef:
		if x.Input == 0 && l != nil {
			return idx(colNames(l), x.Col)
		}
		if x.Input == 1 && r != nil {
			return "R." + idx(colNames(r), x.Col)
		}
		return fmt.Sprintf("c%d", x.Col)
	case *xqgm.Lit:
		return x.String()
	case *xqgm.Cmp:
		op := x.Op
		if op == "!=" {
			op = "<>"
		}
		return fmt.Sprintf("(%s %s %s)", renderExpr(x.L, l, r), op, renderExpr(x.R, l, r))
	case *xqgm.Arith:
		op := x.Op
		if op == "div" {
			op = "/"
		}
		if op == "mod" {
			op = "%"
		}
		return fmt.Sprintf("(%s %s %s)", renderExpr(x.L, l, r), op, renderExpr(x.R, l, r))
	case *xqgm.Logic:
		if x.Op == "not" {
			return "NOT (" + renderExpr(x.Args[0], l, r) + ")"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = renderExpr(a, l, r)
		}
		return "(" + strings.Join(parts, " "+strings.ToUpper(x.Op)+" ") + ")"
	case *xqgm.IsNullExpr:
		if x.Neg {
			return "(" + renderExpr(x.E, l, r) + " IS NOT NULL)"
		}
		return "(" + renderExpr(x.E, l, r) + " IS NULL)"
	case *xqgm.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = renderExpr(a, l, r)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *xqgm.ElemCtor:
		// XML construction happens above the SQL level (tagger pull-up);
		// render as an XMLELEMENT-style pseudo-call.
		var parts []string
		for _, a := range x.Attrs {
			parts = append(parts, fmt.Sprintf("XMLATTRIBUTE(%s AS %s)", renderExpr(a.E, l, r), a.Name))
		}
		for _, c := range x.Children {
			parts = append(parts, renderExpr(c, l, r))
		}
		return fmt.Sprintf("XMLELEMENT(%s%s)", sqlIdent(x.Name), prefixComma(parts))
	default:
		return e.String()
	}
}

func prefixComma(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return ", " + strings.Join(parts, ", ")
}
