package core

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

const watchCRTTrigger = `
	CREATE TRIGGER WatchCRT AFTER UPDATE ON view('catalog')/product
	WHERE NEW_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`

// TestPrepareCheckAbortsBatch: a failing prepare check rolls the whole
// batch back — no notifications, no state — and the check observes the
// staged invocation set.
func TestPrepareCheckAbortsBatch(t *testing.T) {
	for _, mode := range []Mode{ModeGrouped, ModeMaterialized} {
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			if err := e.CreateTrigger(watchCRTTrigger); err != nil {
				t.Fatal(err)
			}
			boom := fmt.Errorf("vetoed")
			var staged int
			e.SetPrepareCheck(func(invs []Invocation) error {
				staged = len(invs)
				return boom
			})
			err := e.Batch(func(tx *reldb.Tx) error {
				_, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(90))
				return err
			})
			if err == nil || !strings.Contains(err.Error(), "vetoed") {
				t.Fatalf("batch error = %v, want the prepare-check veto", err)
			}
			if staged == 0 {
				t.Error("prepare check saw no staged invocations; the update should activate WatchCRT")
			}
			if len(*log) != 0 {
				t.Errorf("aborted batch delivered: %+v", *log)
			}
			r, ok, _ := e.DB().GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
			if !ok || r[2].AsFloat() != 100 {
				t.Errorf("aborted batch left state behind: %v", r)
			}
			// Disarmed, the same batch commits and delivers.
			e.SetPrepareCheck(nil)
			if err := e.Batch(func(tx *reldb.Tx) error {
				_, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(90))
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 1 {
				t.Errorf("disarmed batch delivered %d notifications, want 1", len(*log))
			}
		})
	}
}

// TestBatchHandlePrepareCommitRollback drives the explicit two-phase
// surface a coordinator uses: Prepare stages without delivering and keeps
// the handle open for either Commit (delivers) or Rollback (no trace).
func TestBatchHandlePrepareCommitRollback(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	if err := e.CreateTrigger(watchCRTTrigger); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Prepare + Rollback: nothing delivered, nothing applied.
	h, err := e.BeginBatch()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Tx().UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(77)); err != nil {
		t.Fatal(err)
	}
	if err := h.Prepare(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 0 {
		t.Fatalf("prepare delivered: %+v", *log)
	}
	if err := h.Rollback(); err != nil {
		t.Fatal(err)
	}
	if r, _, _ := e.DB().GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1")); r[2].AsFloat() != 100 {
		t.Fatalf("rolled-back prepared batch left price %v", r[2])
	}

	// Prepare + Commit: the staged wave delivers.
	h, err = e.BeginBatch()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Tx().UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(66)); err != nil {
		t.Fatal(err)
	}
	if err := h.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := h.Prepare(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := h.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 1 {
		t.Fatalf("committed prepared batch delivered %d notifications, want 1", len(*log))
	}
}

// TestOutboxGroupCommitWave: a batch commit with the outbox enabled
// appends the whole firing wave as one grouped write; the log holds every
// delivery in activation order with contiguous sequences, and all are
// acknowledged after the inline wave ran.
func TestOutboxGroupCommitWave(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	if err := e.CreateTrigger(watchCRTTrigger); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`
		CREATE TRIGGER NewProducts AFTER INSERT ON view('catalog')/product
		DO notifySmith(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if err := e.EnableOutbox(lg, nil); err != nil {
		t.Fatal(err)
	}
	err = e.Batch(func(tx *reldb.Tx) error {
		if _, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(90)); err != nil {
			return err
		}
		if err := tx.Insert("product", reldb.Row{xdm.Str("P9"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
			return err
		}
		return tx.Insert("vendor",
			reldb.Row{xdm.Str("Amazon"), xdm.Str("P9"), xdm.Float(500)},
			reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P9"), xdm.Float(480)},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(*log) < 2 {
		t.Fatalf("batch delivered %d notifications, want >= 2 (update + insert events)", len(*log))
	}
	st := lg.Stats()
	if st.Appended != int64(len(*log)) {
		t.Errorf("outbox appended %d records for %d deliveries", st.Appended, len(*log))
	}
	if st.Acked != st.NextSeq-1 {
		t.Errorf("inline wave left unacked records: acked %d of %d", st.Acked, st.NextSeq-1)
	}
	recs, err := lg.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d; group append must assign contiguous sequences", i, r.Seq)
		}
		if r.Trigger != (*log)[i].Trigger {
			t.Errorf("log order diverges from delivery order at %d: %s vs %s", i, r.Trigger, (*log)[i].Trigger)
		}
	}
}

// TestCommitDeliveryErrorKeepsBatchState: with a sync failing action, the
// batch surfaces the delivery error but the data stays applied, and with
// an outbox the failed delivery's record stays durable for replay.
func TestCommitDeliveryErrorKeepsBatchState(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeGrouped)
	boom := fmt.Errorf("sink down")
	e.RegisterAction("notifySmith", func(Invocation) error { return boom })
	if err := e.CreateTrigger(watchCRTTrigger); err != nil {
		t.Fatal(err)
	}
	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if err := e.EnableOutbox(lg, nil); err != nil {
		t.Fatal(err)
	}
	err = e.Batch(func(tx *reldb.Tx) error {
		_, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(90))
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "sink down") {
		t.Fatalf("batch error = %v, want the delivery failure", err)
	}
	r, ok, _ := e.DB().GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if !ok || r[2].AsFloat() != 90 {
		t.Errorf("delivery error unwound the committed update: %v", r)
	}
	st := lg.Stats()
	if st.Appended == 0 {
		t.Fatal("failed delivery was never made durable")
	}
	if st.Acked != 0 {
		t.Errorf("failed delivery was acknowledged (acked=%d); it must stay due for replay", st.Acked)
	}
}
