package core

import (
	"fmt"
	"sync"
	"testing"

	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/wire"
	"quark/internal/xdm"
)

// newWatchedEngine builds one quote table with n always-matching UPDATE
// watch triggers (W0..Wn-1) over it, actions registered as no-ops (the
// outbox sink is the consumer under test).
func newWatchedEngine(t *testing.T, n int) *Engine {
	t.Helper()
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "quote",
		Columns: []schema.Column{
			{Name: "sym", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey: []string{"sym"},
	})
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("quote",
		reldb.Row{xdm.Str("QRK"), xdm.Float(100)},
		reldb.Row{xdm.Str("XML"), xdm.Float(200)},
	); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, ModeGrouped)
	e.RegisterAction("notify", func(Invocation) error { return nil })
	src := `<m>{for $q in view('default')/quote/row return <q sym={$q/sym} price={$q/price}></q>}</m>`
	if _, err := e.CreateView("v", src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		trig := fmt.Sprintf(`CREATE TRIGGER W%d AFTER UPDATE ON view('v')/q DO notify(NEW_NODE, %d)`, i, i)
		if err := e.CreateTrigger(trig); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e
}

func bumpPrice(e *Engine, sym string, p float64) error {
	_, err := e.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, func(r reldb.Row) reldb.Row {
		r[1] = xdm.Float(p)
		return r
	})
	return err
}

// TestOutboxKillAndRestart is the acceptance scenario: a process running
// with async dispatch and a partitioned sink suffers a partial outage (two
// triggers' deliveries fail, so their records stay unacknowledged) and
// then dies. A fresh process re-opens the outbox directory and replays:
// exactly the undelivered records arrive, per-trigger FIFO is preserved
// across the live/replayed boundary, and no delivery is lost.
func TestOutboxKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	const triggers = 4
	const updates = 6

	lg, err := outbox.Open(dir, outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newWatchedEngine(t, triggers)
	live := outbox.NewPartitionedSink(2)
	live.FailFor = func(trig string) bool { return trig == "W1" || trig == "W2" }
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableOutbox(lg, live); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < updates; i++ {
		if err := bumpPrice(e, "QRK", 101.5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	st := e.Stats()
	if !st.Outbox || st.OutboxLog.Appended != triggers*updates {
		t.Fatalf("stats = %+v, want %d appended outbox records", st, triggers*updates)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the engine; close only the log handles (a killed
	// process's descriptors close with it).
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recover the log and replay into a healthy sink.
	lg2, err := outbox.Open(dir, outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	replay := outbox.NewPartitionedSink(2)
	n, err := lg2.Replay(replay)
	if err != nil {
		t.Fatal(err)
	}
	// Everything W1/W2 plus any later records below the stalled watermark
	// gets redelivered; at minimum the 2*updates failed deliveries.
	if n < 2*updates {
		t.Fatalf("replayed %d records, want >= %d", n, 2*updates)
	}
	if lg2.Acked() != uint64(triggers*updates) {
		t.Fatalf("watermark after replay = %d, want %d", lg2.Acked(), triggers*updates)
	}

	// No delivery lost: per trigger, the union of live deliveries and
	// replayed deliveries covers every appended record; and both the live
	// and replayed streams are in ascending sequence order per trigger.
	all, err := lg2.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	perTrigger := map[string][]uint64{}
	for _, r := range all {
		perTrigger[r.Trigger] = append(perTrigger[r.Trigger], r.Seq)
	}
	for trig, want := range perTrigger {
		seen := map[uint64]bool{}
		for _, streams := range [][]*wire.Record{live.ByTrigger(trig), replay.ByTrigger(trig)} {
			last := uint64(0)
			for _, r := range streams {
				if r.Seq <= last {
					t.Errorf("trigger %s: delivery order violated (%d after %d)", trig, r.Seq, last)
				}
				last = r.Seq
				seen[r.Seq] = true
			}
		}
		for _, seq := range want {
			if !seen[seq] {
				t.Errorf("trigger %s: record %d was never delivered", trig, seq)
			}
		}
	}
}

// TestOutboxSyncInline: without async dispatch the outbox still appends
// before delivering and acks after; a run with a healthy sink converges to
// a fully acknowledged log (nothing left to replay).
func TestOutboxSyncInline(t *testing.T) {
	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	e := newWatchedEngine(t, 2)
	var mu sync.Mutex
	var got []*wire.Record
	sink := outbox.SinkFunc(func(r *wire.Record) error {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
		return nil
	})
	if err := e.EnableOutbox(lg, sink); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableOutbox(lg, sink); err == nil {
		t.Fatal("second EnableOutbox succeeded")
	}
	for i := 0; i < 3; i++ {
		if err := bumpPrice(e, "XML", 10+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := lg.Stats()
	if st.Appended != 6 || st.Acked != 6 {
		t.Fatalf("log stats = %+v, want 6 appended, 6 acked", st)
	}
	if n, err := lg.Replay(outbox.NewPartitionedSink(1)); err != nil || n != 0 {
		t.Fatalf("replay after clean run delivered %d (err %v), want 0", n, err)
	}
	if len(got) != 6 {
		t.Fatalf("sink saw %d records, want 6", len(got))
	}
}

// TestOutboxRecordFidelity: the records a consumer reads back from the
// log carry the full invocation — event, NEW_NODE tree, evaluated args —
// identical to what an in-process action would have received.
func TestOutboxRecordFidelity(t *testing.T) {
	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	e := newWatchedEngine(t, 1)
	var invs []Invocation
	e.RegisterAction("notify", func(inv Invocation) error {
		invs = append(invs, inv)
		return nil
	})
	// nil sink: the registered action consumes, the log records.
	if err := e.EnableOutbox(lg, nil); err != nil {
		t.Fatal(err)
	}
	if err := bumpPrice(e, "QRK", 55.25); err != nil {
		t.Fatal(err)
	}
	recs, err := lg.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(invs) != 1 {
		t.Fatalf("records=%d invocations=%d, want 1 and 1", len(recs), len(invs))
	}
	r, inv := recs[0], invs[0]
	if r.Trigger != inv.Trigger || r.Event != inv.Event {
		t.Errorf("record (%s, %s) != invocation (%s, %s)", r.Trigger, r.Event, inv.Trigger, inv.Event)
	}
	if r.New.Serialize(false) != inv.New.Serialize(false) {
		t.Errorf("NEW node diverged:\nlog: %s\ninv: %s", r.New.Serialize(false), inv.New.Serialize(false))
	}
	if len(r.Args) != len(inv.Args) {
		t.Fatalf("args %d != %d", len(r.Args), len(inv.Args))
	}
	for i := range r.Args {
		if r.Args[i].Lexical() != inv.Args[i].Lexical() {
			t.Errorf("arg %d: %s != %s", i, r.Args[i], inv.Args[i])
		}
	}
}

// TestOutboxLogOrderMatchesDeliveryOrder: under concurrent disjoint-table
// batches (the only way two statements can activate triggers truly
// concurrently), each trigger's live delivery order must equal its log
// order — the invariant that makes replay faithful.
func TestOutboxLogOrderMatchesDeliveryOrder(t *testing.T) {
	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	e, _, _ := newTwoMarketEngine(t, ModeGrouped)
	sink := outbox.NewPartitionedSink(2)
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 1024, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableOutbox(lg, sink); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, tbl := range []string{"quoteA", "quoteB"} {
		tbl := tbl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				err := e.BatchTables([]string{tbl}, func(tx *reldb.Tx) error {
					_, err := tx.UpdateByPK(tbl, []xdm.Value{xdm.Str("X1")}, setQuotePrice(float64(i)))
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e.Drain()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := lg.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	logOrder := map[string][]uint64{}
	for _, r := range all {
		logOrder[r.Trigger] = append(logOrder[r.Trigger], r.Seq)
	}
	for trig, want := range logOrder {
		recs := sink.ByTrigger(trig)
		if len(recs) != len(want) {
			t.Fatalf("trigger %s: delivered %d, logged %d", trig, len(recs), len(want))
		}
		for i, r := range recs {
			if r.Seq != want[i] {
				t.Fatalf("trigger %s: delivery %d has seq %d, log has %d", trig, i, r.Seq, want[i])
			}
		}
	}
}
