package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"quark/internal/reldb"
	"quark/internal/xdm"
)

// writer abstracts the mutation surface shared by the engine (one firing
// wave per statement) and a reldb.Tx (one firing wave per commit), so the
// same script can run in both styles.
type writer interface {
	Insert(table string, rows ...reldb.Row) error
	UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error)
	DeleteByPK(table string, key ...xdm.Value) (bool, error)
}

func notifKeys(log []notification) []string {
	out := make([]string, len(log))
	for i, n := range log {
		out[i] = fmt.Sprintf("%s|%s|new=%s|args=%d|%s", n.Trigger, n.Event, n.NewKey, n.Args, n.NewXML)
	}
	sort.Strings(out)
	return out
}

// setPrice returns a set function for the vendor table's price column.
func setPrice(p float64) func(reldb.Row) reldb.Row {
	return func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(p)
		return r
	}
}

// runScript executes the script in the given style and returns the sorted
// notification keys.
func runScript(t *testing.T, mode Mode, batched bool, triggers []string, script func(writer) error) []string {
	t.Helper()
	e, log := newCatalogEngine(t, mode)
	for _, src := range triggers {
		if err := e.CreateTrigger(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var err error
	if batched {
		err = e.Batch(func(tx *reldb.Tx) error { return script(tx) })
	} else {
		err = script(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	return notifKeys(*log)
}

// TestBatchMatchesOracle runs a mixed script — updates to several rows of
// the same product, a product flipping below the count(...) >= 2
// threshold, and a brand-new product with two vendors — in every
// translation mode, single-statement and batched, and requires each mode
// to agree exactly with the MATERIALIZED oracle run in the same style.
func TestBatchMatchesOracle(t *testing.T) {
	triggers := []string{
		`CREATE TRIGGER WatchCRT AFTER UPDATE ON view('catalog')/product
		 WHERE NEW_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER NewProducts AFTER INSERT ON view('catalog')/product
		 DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER GoneProducts AFTER DELETE ON view('catalog')/product
		 DO notifySmith(OLD_NODE/@name)`,
	}
	script := func(w writer) error {
		// Two updates to the same row (coalesce) plus one to a sibling.
		if _, err := w.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(90)); err != nil {
			return err
		}
		if _, err := w.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(80)); err != nil {
			return err
		}
		if _, err := w.UpdateByPK("vendor", []xdm.Value{xdm.Str("Bestbuy"), xdm.Str("P1")}, setPrice(110)); err != nil {
			return err
		}
		// LCD 19 drops below the 2-vendor threshold: a view-level DELETE.
		if _, err := w.DeleteByPK("vendor", xdm.Str("Buy.com"), xdm.Str("P2")); err != nil {
			return err
		}
		// A new product appears with two vendors: a view-level INSERT.
		if err := w.Insert("product", reldb.Row{xdm.Str("P9"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
			return err
		}
		return w.Insert("vendor",
			reldb.Row{xdm.Str("Amazon"), xdm.Str("P9"), xdm.Float(500)},
			reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P9"), xdm.Float(480)},
		)
	}
	for _, batched := range []bool{false, true} {
		style := "single"
		if batched {
			style = "batched"
		}
		t.Run(style, func(t *testing.T) {
			oracle := runScript(t, ModeMaterialized, batched, triggers, script)
			if len(oracle) == 0 {
				t.Fatal("oracle fired nothing; script is not exercising the pipeline")
			}
			for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg} {
				got := runScript(t, mode, batched, triggers, script)
				if !reflect.DeepEqual(got, oracle) {
					t.Errorf("%s/%s diverges from oracle:\n got:    %v\n oracle: %v", mode, style, got, oracle)
				}
			}
		})
	}
}

// TestBatchFiresOncePerStatementGroup: N single-row updates inside one
// batch must cost one trigger-plan evaluation, not N.
func TestBatchFiresOncePerCommit(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	err := e.CreateTrigger(`
		CREATE TRIGGER Watch AFTER UPDATE ON view('catalog')/product
		WHERE NEW_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Fires
	err = e.Batch(func(tx *reldb.Tx) error {
		for i, vendor := range []string{"Amazon", "Bestbuy", "Circuitcity"} {
			if _, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str(vendor), xdm.Str("P1")}, setPrice(float64(60+i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fires := e.Stats().Fires - before
	if fires != 1 {
		t.Errorf("expected 1 plan firing for the whole batch, got %d", fires)
	}
	if len(*log) != 1 {
		t.Errorf("expected 1 coalesced notification, got %d: %+v", len(*log), *log)
	}
}

// TestBatchMultiTableOldState: a commit that changes BOTH joined tables
// must still hand the action the true pre-transaction OLD_NODE (the old
// side reconstructs every touched table, not just the firing one).
func TestBatchMultiTableOldState(t *testing.T) {
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg, ModeMaterialized} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			err := e.CreateTrigger(`
				CREATE TRIGGER Watch AFTER UPDATE ON view('catalog')/product
				WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(OLD_NODE/@name, NEW_NODE/@name)`)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			// Rename the product AND reprice one of its vendors in one batch.
			err = e.Batch(func(tx *reldb.Tx) error {
				if _, err := tx.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
					r[1] = xdm.Str("CRT 15 flat")
					return r
				}); err != nil {
					return err
				}
				_, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(95))
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			// The renamed product is a view-level DELETE+INSERT of separate
			// names plus ... P3 keeps name CRT 15 but is untouched. The
			// trigger watches UPDATE with OLD name CRT 15: P1's node changed
			// name (that is a delete/insert pair at the view level since the
			// name is the canonical key) so no UPDATE should fire for it;
			// nothing else changed under the old name except the vendor of
			// P1 which now reports under the new name. The oracle defines
			// the expected outcome; here we only require every mode to agree
			// with it, computed below.
			got := notifKeys(*log)
			oe, olog := newCatalogEngine(t, ModeMaterialized)
			if err := oe.CreateTrigger(`
				CREATE TRIGGER Watch AFTER UPDATE ON view('catalog')/product
				WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(OLD_NODE/@name, NEW_NODE/@name)`); err != nil {
				t.Fatal(err)
			}
			if err := oe.Flush(); err != nil {
				t.Fatal(err)
			}
			err = oe.Batch(func(tx *reldb.Tx) error {
				if _, err := tx.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
					r[1] = xdm.Str("CRT 15 flat")
					return r
				}); err != nil {
					return err
				}
				_, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(95))
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			want := notifKeys(*olog)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s diverges from oracle:\n got:    %v\n oracle: %v", mode, got, want)
			}
		})
	}
}

// TestBatchRollback: an erroring batch rolls everything back and fires
// nothing.
func TestBatchRollback(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	err := e.CreateTrigger(`
		CREATE TRIGGER Watch AFTER UPDATE ON view('catalog')/product
		WHERE NEW_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	err = e.Batch(func(tx *reldb.Tx) error {
		if _, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, setPrice(10)); err != nil {
			return err
		}
		return boom
	})
	if err == nil {
		t.Fatal("expected the batch error to propagate")
	}
	if len(*log) != 0 {
		t.Errorf("rolled-back batch fired notifications: %+v", *log)
	}
	r, ok, _ := e.DB().GetByPK("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if !ok || r[2].AsFloat() != 100 {
		t.Errorf("rollback did not restore the price: %v", r)
	}
}
