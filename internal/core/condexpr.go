package core

import (
	"fmt"

	"quark/internal/compile"
	"quark/internal/grouping"
	"quark/internal/xdm"
	"quark/internal/xqgm"
	"quark/internal/xquery"
)

// Layout abstracts where the old/new versions of the view's columns live in
// a plan's output row, so conditions and action arguments compile against
// both the translated-trigger plans (ANGraph layout) and the materialized
// baseline (tuple-pair layout).
type Layout struct {
	NewCol func(i int) int
	OldCol func(i int) int
}

// condCompiler translates trigger Condition / Action-argument expressions
// (over OLD_NODE / NEW_NODE) into xqgm expressions over a plan row,
// performing condition pushdown where the navigation tree provides scalar
// bindings (attributes, counts) and falling back to generic path
// navigation over the constructed node values otherwise.
type condCompiler struct {
	nav    *compile.NavNode
	layout Layout
	// abstract, when true, replaces literals with grouping.ConstRef
	// placeholders and records their values (trigger grouping, §5.1).
	abstract bool
	consts   []xdm.Value
	// usage tracking for the GROUPED-AGG safety check.
	oldContentUsed bool
}

func (cc *condCompiler) lit(v xdm.Value) xqgm.Expr {
	if !cc.abstract {
		return xqgm.LitOf(v)
	}
	cc.consts = append(cc.consts, v)
	return &grouping.ConstRef{Idx: len(cc.consts) - 1}
}

func (cc *condCompiler) nodeCol(old bool) int {
	if old {
		cc.oldContentUsed = true
		return cc.layout.OldCol(cc.nav.NodeCol)
	}
	return cc.layout.NewCol(cc.nav.NodeCol)
}

// compile translates a trigger expression.
func (cc *condCompiler) compile(e xquery.Expr) (xqgm.Expr, error) {
	switch x := e.(type) {
	case *xquery.Lit:
		return cc.lit(x.V), nil
	case *xquery.NodeRef:
		return xqgm.Col(cc.nodeCol(x.Old)), nil
	case *xquery.Path:
		return cc.compilePath(x)
	case *xquery.Cmp:
		l, err := cc.compile(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.compile(x.R)
		if err != nil {
			return nil, err
		}
		return &xqgm.Cmp{Op: x.Op, L: l, R: r}, nil
	case *xquery.Arith:
		l, err := cc.compile(x.L)
		if err != nil {
			return nil, err
		}
		r, err := cc.compile(x.R)
		if err != nil {
			return nil, err
		}
		return &xqgm.Arith{Op: x.Op, L: l, R: r}, nil
	case *xquery.Logic:
		args := make([]xqgm.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := cc.compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &xqgm.Logic{Op: x.Op, Args: args}, nil
	case *xquery.FnCall:
		switch x.Name {
		case "count", "empty", "exists", "data", "string", "not", "abs":
			args := make([]xqgm.Expr, len(x.Args))
			for i, a := range x.Args {
				ce, err := cc.compile(a)
				if err != nil {
					return nil, err
				}
				args[i] = ce
			}
			return &xqgm.Call{Name: x.Name, Args: args}, nil
		default:
			return nil, fmt.Errorf("core: unsupported function %q in trigger expression", x.Name)
		}
	case *xquery.Quantified:
		// some/every $v in <path> satisfies p  ==>  count(path[p']) >/= 0.
		seq, err := cc.compile(x.Seq)
		if err != nil {
			return nil, err
		}
		sat, err := cc.compileItemPred(x.Sat, x.Var)
		if err != nil {
			return nil, err
		}
		step, ok := seq.(*xqgm.PathStep)
		if !ok {
			return nil, fmt.Errorf("core: quantified expression requires a path source")
		}
		filtered := &xqgm.PathStep{In: step.In, Axis: step.Axis, Name: step.Name, Predicate: andPreds(step.Predicate, sat)}
		cnt := &xqgm.Call{Name: "count", Args: []xqgm.Expr{filtered}}
		if x.Every {
			total := &xqgm.Call{Name: "count", Args: []xqgm.Expr{step}}
			return &xqgm.Cmp{Op: "=", L: cnt, R: total}, nil
		}
		return &xqgm.Cmp{Op: ">", L: cnt, R: xqgm.LitOf(xdm.Int(0))}, nil
	default:
		return nil, fmt.Errorf("core: unsupported trigger expression %s", xquery.String(e))
	}
}

func andPreds(a, b xqgm.Expr) xqgm.Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &xqgm.Logic{Op: "and", Args: []xqgm.Expr{a, b}}
}

// compilePath translates OLD_NODE/NEW_NODE paths. Attribute access on the
// path's top element is pushed down to the scalar column recorded in the
// navigation tree (condition pushdown); anything else navigates the
// constructed node value.
func (cc *condCompiler) compilePath(p *xquery.Path) (xqgm.Expr, error) {
	nr, ok := p.Base.(*xquery.NodeRef)
	if !ok {
		return nil, fmt.Errorf("core: trigger paths must start at OLD_NODE or NEW_NODE, got %s", xquery.String(p))
	}
	// Pushdown: NODE/@attr with a recorded scalar binding.
	if len(p.Steps) == 1 && p.Steps[0].Axis == "attribute" && len(p.Steps[0].Preds) == 0 {
		if col, ok := cc.nav.Attrs[p.Steps[0].Name]; ok {
			if nr.Old {
				return xqgm.Col(cc.layout.OldCol(col)), nil
			}
			return xqgm.Col(cc.layout.NewCol(col)), nil
		}
	}
	// Generic navigation over the node value.
	var cur xqgm.Expr = xqgm.Col(cc.nodeCol(nr.Old))
	for _, st := range p.Steps {
		axis := st.Axis
		if axis == "self" {
			continue
		}
		step := &xqgm.PathStep{In: cur, Axis: axis, Name: st.Name}
		for _, pd := range st.Preds {
			pe, err := cc.compileItemPred(pd, "")
			if err != nil {
				return nil, err
			}
			step.Predicate = andPreds(step.Predicate, pe)
		}
		cur = step
	}
	return cur, nil
}

// compileItemPred compiles a predicate evaluated per step item: the context
// item "." (and the quantifier variable when itemVar is set) becomes column
// 0 of the predicate environment.
func (cc *condCompiler) compileItemPred(e xquery.Expr, itemVar string) (xqgm.Expr, error) {
	switch x := e.(type) {
	case *xquery.Lit:
		return cc.lit(x.V), nil
	case *xquery.ContextItem:
		return xqgm.Col(0), nil
	case *xquery.VarRef:
		if x.Name == itemVar {
			return xqgm.Col(0), nil
		}
		return nil, fmt.Errorf("core: unbound variable $%s in trigger predicate", x.Name)
	case *xquery.Path:
		var in xqgm.Expr
		steps := x.Steps
		switch b := x.Base.(type) {
		case *xquery.ContextItem:
			in = xqgm.Col(0)
		case *xquery.VarRef:
			if b.Name != itemVar {
				return nil, fmt.Errorf("core: unbound variable $%s in trigger predicate", b.Name)
			}
			in = xqgm.Col(0)
		case *xquery.NodeRef:
			return cc.compilePath(x)
		default:
			return nil, fmt.Errorf("core: unsupported predicate path %s", xquery.String(x))
		}
		cur := in
		for _, st := range steps {
			step := &xqgm.PathStep{In: cur, Axis: st.Axis, Name: st.Name}
			for _, pd := range st.Preds {
				pe, err := cc.compileItemPred(pd, itemVar)
				if err != nil {
					return nil, err
				}
				step.Predicate = andPreds(step.Predicate, pe)
			}
			cur = step
		}
		return cur, nil
	case *xquery.Cmp:
		l, err := cc.compileItemPred(x.L, itemVar)
		if err != nil {
			return nil, err
		}
		r, err := cc.compileItemPred(x.R, itemVar)
		if err != nil {
			return nil, err
		}
		return &xqgm.Cmp{Op: x.Op, L: l, R: r}, nil
	case *xquery.Arith:
		l, err := cc.compileItemPred(x.L, itemVar)
		if err != nil {
			return nil, err
		}
		r, err := cc.compileItemPred(x.R, itemVar)
		if err != nil {
			return nil, err
		}
		return &xqgm.Arith{Op: x.Op, L: l, R: r}, nil
	case *xquery.Logic:
		args := make([]xqgm.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := cc.compileItemPred(a, itemVar)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &xqgm.Logic{Op: x.Op, Args: args}, nil
	case *xquery.FnCall:
		args := make([]xqgm.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := cc.compileItemPred(a, itemVar)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &xqgm.Call{Name: x.Name, Args: args}, nil
	default:
		return nil, fmt.Errorf("core: unsupported predicate expression %s", xquery.String(e))
	}
}
