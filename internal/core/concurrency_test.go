package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"quark/internal/reldb"
	"quark/internal/xdm"
)

// TestConcurrentEvalViewAndBatchedWrites drives concurrent readers
// (EvalView, Stats) against batched and single-statement writers. Run
// under -race this checks the per-table lock discipline: readers must see
// consistent view snapshots while writers mutate and fire triggers.
func TestConcurrentEvalViewAndBatchedWrites(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeGrouped)
	var fired atomic.Int64
	e.RegisterAction("count", func(Invocation) error {
		fired.Add(1)
		return nil
	})
	err := e.CreateTrigger(`
		CREATE TRIGGER Watch AFTER UPDATE ON view('catalog')/product
		WHERE NEW_NODE/@name = 'CRT 15' DO count(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	const iters = 50
	var wg sync.WaitGroup

	// Batched writer: repriced vendors of P1 in one commit per iteration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			err := e.Batch(func(tx *reldb.Tx) error {
				for _, v := range []string{"Amazon", "Bestbuy"} {
					if _, err := tx.UpdateByPK("vendor", []xdm.Value{xdm.Str(v), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
						r[2] = xdm.Float(float64(80 + i%40))
						return r
					}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Single-statement writer on a different product.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Bestbuy"), xdm.Str("P3")}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(float64(100 + i%25))
				return r
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Concurrent readers: view evaluation and stats polling.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n, err := e.EvalView("catalog")
				if err != nil {
					t.Error(err)
					return
				}
				if len(n.ChildElements("product")) == 0 {
					t.Error("view snapshot lost all products")
					return
				}
				_ = e.Stats()
				_ = e.DB().Stats()
			}
		}()
	}

	wg.Wait()
	if fired.Load() == 0 {
		t.Fatal("no notifications fired; the test did not exercise the write path")
	}
}
