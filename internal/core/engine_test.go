package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

const catalogSrc = `
<catalog>
{for $prodname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $prodname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 where count($vendors) >= 2
 return <product name={$prodname}>
   { for $vendor in $vendors
     return <vendor>
       {$vendor/*}
     </vendor>}
 </product>}
</catalog>`

// notification captures one action invocation.
type notification struct {
	Trigger string
	Event   reldb.Event
	OldKey  string
	NewKey  string
	NewXML  string
	Args    int
}

func newCatalogEngine(t *testing.T, mode Mode) (*Engine, *[]notification) {
	t.Helper()
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, mode)
	var log []notification
	e.RegisterAction("notifySmith", func(inv Invocation) error {
		n := notification{Trigger: inv.Trigger, Event: inv.Event, Args: len(inv.Args)}
		if inv.Old != nil {
			n.OldKey, _ = inv.Old.Attribute("name")
		}
		if inv.New != nil {
			n.NewKey, _ = inv.New.Attribute("name")
			n.NewXML = inv.New.Serialize(false)
		}
		log = append(log, n)
		return nil
	})
	if _, err := e.CreateView("catalog", catalogSrc); err != nil {
		t.Fatal(err)
	}
	return e, &log
}

// TestPaperNotifyTrigger runs the paper's Section 2.2 example end to end:
// the Notify trigger fires on the price update with the new product value.
func TestPaperNotifyTrigger(t *testing.T) {
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg, ModeMaterialized} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			err := e.CreateTrigger(`
				CREATE TRIGGER Notify AFTER UPDATE
				ON view('catalog')/product
				WHERE OLD_NODE/@name = 'CRT 15'
				DO notifySmith(NEW_NODE)`)
			if err != nil {
				t.Fatal(err)
			}
			// Amazon discounts P1 (the paper's transition-table example).
			if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(75)
				return r
			}); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 1 {
				t.Fatalf("notifications = %d, want 1", len(*log))
			}
			n := (*log)[0]
			if n.Trigger != "Notify" || n.NewKey != "CRT 15" {
				t.Errorf("notification = %+v", n)
			}
			if !strings.Contains(n.NewXML, "75.00") {
				t.Errorf("NEW_NODE should carry the new price: %s", n.NewXML)
			}
			// A non-matching product update does not fire.
			*log = nil
			if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Buy.com"), xdm.Str("P2")}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(190)
				return r
			}); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 0 {
				t.Errorf("LCD 19 update fired the CRT 15 trigger: %+v", *log)
			}
			// Descendant updates fire too ("not only for direct updates to
			// a <product> element, but also for updates to its descendant
			// nodes"): handled above since the update was to a vendor.
		})
	}
}

// TestInsertAndDeleteTriggers: count-threshold crossings fire INSERT and
// DELETE triggers with the right node bindings.
func TestInsertAndDeleteTriggers(t *testing.T) {
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg, ModeMaterialized} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			if err := e.CreateTrigger(`CREATE TRIGGER NewProd AFTER INSERT ON view('catalog')/product DO notifySmith(NEW_NODE)`); err != nil {
				t.Fatal(err)
			}
			if err := e.CreateTrigger(`CREATE TRIGGER GoneProd AFTER DELETE ON view('catalog')/product DO notifySmith(OLD_NODE)`); err != nil {
				t.Fatal(err)
			}
			// New product with one vendor: not yet in the view.
			if err := e.Insert("product", reldb.Row{xdm.Str("P4"), xdm.Str("OLED 27"), xdm.Str("LG")}); err != nil {
				t.Fatal(err)
			}
			if err := e.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P4"), xdm.Float(900)}); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 0 {
				t.Fatalf("%s: premature fire: %+v", mode, *log)
			}
			// Second vendor: OLED 27 enters the view -> INSERT.
			if err := e.Insert("vendor", reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P4"), xdm.Float(950)}); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 1 || (*log)[0].Trigger != "NewProd" || (*log)[0].NewKey != "OLED 27" {
				t.Fatalf("INSERT notifications = %+v", *log)
			}
			if (*log)[0].OldKey != "" {
				t.Error("INSERT must not bind OLD_NODE")
			}
			// Remove one vendor: OLED 27 leaves the view -> DELETE.
			*log = nil
			if _, err := e.DeleteByPK("vendor", xdm.Str("Amazon"), xdm.Str("P4")); err != nil {
				t.Fatal(err)
			}
			if len(*log) != 1 || (*log)[0].Trigger != "GoneProd" || (*log)[0].OldKey != "OLED 27" {
				t.Fatalf("DELETE notifications = %+v", *log)
			}
		})
	}
}

// TestGroupingSharesSQLTriggers: structurally similar triggers share SQL
// triggers in grouped modes and don't in ungrouped mode (Section 5.1).
func TestGroupingSharesSQLTriggers(t *testing.T) {
	counts := map[Mode]int{}
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg} {
		e, _ := newCatalogEngine(t, mode)
		names := []string{"CRT 15", "LCD 19", "OLED 27", "Plasma 42", "TFT 17"}
		for i, nm := range names {
			err := e.CreateTrigger(fmt.Sprintf(`
				CREATE TRIGGER T%d AFTER UPDATE ON view('catalog')/product
				WHERE OLD_NODE/@name = '%s' DO notifySmith(NEW_NODE)`, i, nm))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		counts[mode] = st.SQLTriggers
		if mode == ModeUngrouped && st.Groups != 5 {
			t.Errorf("%s groups = %d, want 5", mode, st.Groups)
		}
		if mode != ModeUngrouped && st.Groups != 1 {
			t.Errorf("%s groups = %d, want 1", mode, st.Groups)
		}
	}
	if counts[ModeUngrouped] != 5*counts[ModeGrouped] {
		t.Errorf("SQL triggers: ungrouped=%d grouped=%d (want 5x)", counts[ModeUngrouped], counts[ModeGrouped])
	}
	if counts[ModeGrouped] != counts[ModeGroupedAgg] {
		t.Errorf("grouped=%d groupedagg=%d", counts[ModeGrouped], counts[ModeGroupedAgg])
	}
}

// TestGroupedActivationRouting: with many grouped triggers, only those
// whose constants match are activated.
func TestGroupedActivationRouting(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	for i, nm := range []string{"CRT 15", "CRT 15", "LCD 19"} {
		err := e.CreateTrigger(fmt.Sprintf(`
			CREATE TRIGGER T%d AFTER UPDATE ON view('catalog')/product
			WHERE OLD_NODE/@name = '%s' DO notifySmith(NEW_NODE)`, i, nm))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(80)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	var fired []string
	for _, n := range *log {
		fired = append(fired, n.Trigger)
	}
	sort.Strings(fired)
	if fmt.Sprint(fired) != "[T0 T1]" {
		t.Errorf("fired = %v, want [T0 T1] (both CRT 15 triggers, not the LCD 19 one)", fired)
	}
}

// TestNestedGroupedCondition reproduces the Section 5.1 hard case:
// count(NEW_NODE/vendor[./price < x]) >= y with per-trigger constants,
// under grouping.
func TestNestedGroupedCondition(t *testing.T) {
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, log := newCatalogEngine(t, mode)
			// T_cheap: >=2 vendors under 130; T_mid: >=2 under 210;
			// T_many: >=3 under 500.
			cases := []struct {
				name string
				x, y int
			}{
				{"T_cheap", 130, 2},
				{"T_mid", 210, 2},
				{"T_many", 500, 3},
			}
			for _, c := range cases {
				err := e.CreateTrigger(fmt.Sprintf(`
					CREATE TRIGGER %s AFTER UPDATE ON view('catalog')/product
					WHERE count(NEW_NODE/vendor[./price < %d]) >= %d
					DO notifySmith(NEW_NODE)`, c.name, c.x, c.y))
				if err != nil {
					t.Fatal(err)
				}
			}
			// Update LCD 19's Buy.com price: LCD 19 vendors become
			// (Bestbuy 180, Buy.com 190): under 130: 0; under 210: 2;
			// under 500: 2. So T_mid fires, T_cheap and T_many don't.
			if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Buy.com"), xdm.Str("P2")}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(190)
				return r
			}); err != nil {
				t.Fatal(err)
			}
			var fired []string
			for _, n := range *log {
				if n.NewKey == "LCD 19" {
					fired = append(fired, n.Trigger)
				}
			}
			sort.Strings(fired)
			if fmt.Sprint(fired) != "[T_mid]" {
				t.Errorf("fired = %v, want [T_mid]", fired)
			}
		})
	}
}

// TestAllModesAgree drives a random statement mix through all four modes
// and demands identical notification streams (the MATERIALIZED oracle
// validating the translated pipeline end to end).
func TestAllModesAgree(t *testing.T) {
	type run struct {
		mode Mode
		log  []string
	}
	var runs []run
	for _, mode := range []Mode{ModeUngrouped, ModeGrouped, ModeGroupedAgg, ModeMaterialized} {
		db, err := fixtures.OpenPaperDB()
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(db, mode)
		var log []string
		e.RegisterAction("rec", func(inv Invocation) error {
			key := ""
			if inv.New != nil {
				key, _ = inv.New.Attribute("name")
			} else if inv.Old != nil {
				key, _ = inv.Old.Attribute("name")
			}
			newXML := ""
			if inv.New != nil {
				newXML = inv.New.Serialize(false)
			}
			log = append(log, fmt.Sprintf("%s/%s/%s/%s", inv.Trigger, inv.Event, key, newXML))
			return nil
		})
		if _, err := e.CreateView("catalog", catalogSrc); err != nil {
			t.Fatal(err)
		}
		for i, nm := range []string{"CRT 15", "LCD 19", "OLED 27"} {
			if err := e.CreateTrigger(fmt.Sprintf(
				`CREATE TRIGGER U%d AFTER UPDATE ON view('catalog')/product WHERE NEW_NODE/@name = '%s' DO rec(NEW_NODE)`, i, nm)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.CreateTrigger(`CREATE TRIGGER Ins AFTER INSERT ON view('catalog')/product DO rec(NEW_NODE)`); err != nil {
			t.Fatal(err)
		}
		if err := e.CreateTrigger(`CREATE TRIGGER Del AFTER DELETE ON view('catalog')/product DO rec(OLD_NODE)`); err != nil {
			t.Fatal(err)
		}

		r := rand.New(rand.NewSource(2024))
		pids := []string{"P1", "P2", "P3"}
		vids := []string{"Amazon", "Bestbuy", "Buy.com", "Circuitcity", "Newegg"}
		names := []string{"CRT 15", "LCD 19", "OLED 27"}
		nextP := 4
		for step := 0; step < 30; step++ {
			log = append(log, "--step--")
			switch r.Intn(5) {
			case 0:
				pid := fmt.Sprintf("P%d", nextP)
				nextP++
				pids = append(pids, pid)
				if err := e.Insert("product", reldb.Row{xdm.Str(pid), xdm.Str(names[r.Intn(len(names))]), xdm.Str("m")}); err != nil {
					t.Fatal(err)
				}
			case 1:
				vid, pid := vids[r.Intn(len(vids))], pids[r.Intn(len(pids))]
				if _, ok, _ := e.DB().GetByPK("vendor", xdm.Str(vid), xdm.Str(pid)); ok {
					continue
				}
				if err := e.Insert("vendor", reldb.Row{xdm.Str(vid), xdm.Str(pid), xdm.Float(float64(60 + r.Intn(200)))}); err != nil {
					t.Fatal(err)
				}
			case 2:
				pid := pids[r.Intn(len(pids))]
				price := float64(60 + r.Intn(200))
				if _, err := e.Update("vendor",
					func(row reldb.Row) bool { return row[1].AsString() == pid },
					func(row reldb.Row) reldb.Row { row[2] = xdm.Float(price); return row }); err != nil {
					t.Fatal(err)
				}
			case 3:
				vid := vids[r.Intn(len(vids))]
				if _, err := e.Delete("vendor", func(row reldb.Row) bool { return row[0].AsString() == vid }); err != nil {
					t.Fatal(err)
				}
			case 4:
				pid := pids[r.Intn(len(pids))]
				nm := names[r.Intn(len(names))]
				if _, err := e.Update("product",
					func(row reldb.Row) bool { return row[0].AsString() == pid },
					func(row reldb.Row) reldb.Row { row[1] = xdm.Str(nm); return row }); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Per-step notification order can differ between modes; sort
		// within steps.
		var normalized []string
		var bucket []string
		flushB := func() {
			sort.Strings(bucket)
			normalized = append(normalized, bucket...)
			bucket = nil
		}
		for _, l := range log {
			if l == "--step--" {
				flushB()
				normalized = append(normalized, l)
				continue
			}
			bucket = append(bucket, l)
		}
		flushB()
		runs = append(runs, run{mode: mode, log: normalized})
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if len(r.log) != len(base.log) {
			t.Fatalf("%s produced %d entries, %s produced %d", base.mode, len(base.log), r.mode, len(r.log))
		}
		for i := range r.log {
			if r.log[i] != base.log[i] {
				t.Fatalf("mode divergence at %d:\n%s: %s\n%s: %s", i, base.mode, base.log[i], r.mode, r.log[i])
			}
		}
	}
}

// TestDropTrigger: dropped triggers stop firing; SQL triggers are removed.
func TestDropTrigger(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	if err := e.CreateTrigger(`CREATE TRIGGER T1 AFTER UPDATE ON view('catalog')/product DO notifySmith(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().SQLTriggers == 0 {
		t.Fatal("no SQL triggers installed")
	}
	if err := e.DropTrigger("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(42)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 0 {
		t.Errorf("dropped trigger fired: %+v", *log)
	}
	if got := e.Stats().SQLTriggers; got != 0 {
		t.Errorf("SQL triggers after drop = %d, want 0", got)
	}
	if err := e.DropTrigger("T1"); err == nil {
		t.Error("double drop accepted")
	}
}

// TestEngineErrors: bad trigger definitions fail cleanly.
func TestEngineErrors(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeGrouped)
	cases := []string{
		`CREATE TRIGGER X AFTER UPDATE ON view('nosuch')/product DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER X AFTER UPDATE ON view('catalog')/nosuch DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER X AFTER UPDATE ON view('catalog')/product DO unregistered(NEW_NODE)`,
		`CREATE TRIGGER X AFTER INSERT ON view('catalog')/product WHERE OLD_NODE/@name = 'x' DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER X AFTER DELETE ON view('catalog')/product DO notifySmith(NEW_NODE)`,
		`CREATE TRIGGER X AFTER FROB ON view('catalog')/product DO notifySmith(NEW_NODE)`,
	}
	for _, src := range cases {
		if err := e.CreateTrigger(src); err == nil {
			t.Errorf("CreateTrigger(%q): expected error", src)
		}
	}
	if err := e.CreateTrigger(`CREATE TRIGGER D1 AFTER UPDATE ON view('catalog')/product DO notifySmith(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER D1 AFTER UPDATE ON view('catalog')/product DO notifySmith(NEW_NODE)`); err == nil {
		t.Error("duplicate trigger name accepted")
	}
}

// TestSQLTextRendering: installed plans render as Figure 16-style SQL.
func TestSQLTextRendering(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeGrouped)
	if err := e.CreateTrigger(`
		CREATE TRIGGER Notify AFTER UPDATE ON view('catalog')/product
		WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	texts := e.SQLTexts()
	if len(texts) == 0 {
		t.Fatal("no SQL texts")
	}
	joined := ""
	for k, v := range texts {
		joined += k + "\n" + v + "\n"
	}
	for _, want := range []string{"WITH", "SELECT", "GROUP BY", "INSERTED_vendor", "DELETED_vendor", "VALUES"} {
		if !strings.Contains(joined, want) {
			t.Errorf("SQL text missing %q:\n%s", want, joined)
		}
	}
}

// TestDescendantPathTrigger: ON view('catalog')//vendor monitors the nested
// level.
func TestDescendantPathTrigger(t *testing.T) {
	e, log := newCatalogEngine(t, ModeGrouped)
	err := e.CreateTrigger(`CREATE TRIGGER VW AFTER UPDATE ON view('catalog')//vendor DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(90)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 1 {
		t.Fatalf("vendor-level notifications = %d, want 1", len(*log))
	}
	if !strings.Contains((*log)[0].NewXML, "<price>90.00</price>") {
		t.Errorf("vendor NEW_NODE = %s", (*log)[0].NewXML)
	}
}

// TestEvalView: the engine can materialize views on demand.
func TestEvalView(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeGrouped)
	n, err := e.EvalView("catalog")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "catalog" || len(n.ChildElements("product")) != 2 {
		t.Errorf("view = %s", n.Serialize(false))
	}
	if _, err := e.EvalView("nosuch"); err == nil {
		t.Error("unknown view accepted")
	}
}
