package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

// newAdaptiveCatalogEngine builds an adaptive engine (per-group modes
// enabled, no policy) with the two structural trigger families used across
// these tests: two UPDATE triggers keyed by product name (one group) and
// one nested-count trigger (second group).
func newAdaptiveCatalogEngine(t *testing.T) (*Engine, *[]notification) {
	t.Helper()
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, ModeGrouped)
	if err := e.SetModePolicy(nil); err != nil {
		t.Fatal(err)
	}
	var log []notification
	e.RegisterAction("notifySmith", func(inv Invocation) error {
		n := notification{Trigger: inv.Trigger, Event: inv.Event, Args: len(inv.Args)}
		if inv.Old != nil {
			n.OldKey, _ = inv.Old.Attribute("name")
		}
		if inv.New != nil {
			n.NewKey, _ = inv.New.Attribute("name")
			n.NewXML = inv.New.Serialize(false)
		}
		log = append(log, n)
		return nil
	})
	if _, err := e.CreateView("catalog", catalogSrc); err != nil {
		t.Fatal(err)
	}
	for i, nm := range []string{"CRT 15", "LCD 19"} {
		err := e.CreateTrigger(fmt.Sprintf(`
			CREATE TRIGGER Name%d AFTER UPDATE ON view('catalog')/product
			WHERE OLD_NODE/@name = '%s' DO notifySmith(NEW_NODE)`, i, nm))
		if err != nil {
			t.Fatal(err)
		}
	}
	err = e.CreateTrigger(`
		CREATE TRIGGER Cheap AFTER UPDATE ON view('catalog')/product
		WHERE count(NEW_NODE/vendor[./price < 210]) >= 2
		DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	return e, &log
}

func discountP1(t *testing.T, e *Engine, price float64) {
	t.Helper()
	if _, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(price)
		return r
	}); err != nil {
		t.Fatal(err)
	}
}

// dumpDB serializes the full relational image deterministically, for
// byte-identical before/after comparisons.
func dumpDB(e *Engine) string {
	var sb []byte
	for _, name := range e.DB().Schema().TableNames() {
		sb = append(sb, name...)
		sb = append(sb, ":\n"...)
		var rows []string
		for _, r := range e.DB().AllRows(name) {
			rows = append(rows, fmt.Sprint(r))
		}
		sort.Strings(rows)
		for _, r := range rows {
			sb = append(sb, r...)
			sb = append(sb, '\n')
		}
	}
	return string(sb)
}

func firedNames(log *[]notification) []string {
	var out []string
	for _, n := range *log {
		out = append(out, n.Trigger+"/"+n.NewKey)
	}
	return out
}

// TestAdaptiveMixedModes: an adaptive engine running its groups in
// different modes at once fires identically to a uniform engine.
func TestAdaptiveMixedModes(t *testing.T) {
	oracle, oracleLog := newCatalogEngine(t, ModeMaterialized)
	for i, nm := range []string{"CRT 15", "LCD 19"} {
		err := oracle.CreateTrigger(fmt.Sprintf(`
			CREATE TRIGGER Name%d AFTER UPDATE ON view('catalog')/product
			WHERE OLD_NODE/@name = '%s' DO notifySmith(NEW_NODE)`, i, nm))
		if err != nil {
			t.Fatal(err)
		}
	}
	err := oracle.CreateTrigger(`
		CREATE TRIGGER Cheap AFTER UPDATE ON view('catalog')/product
		WHERE count(NEW_NODE/vendor[./price < 210]) >= 2
		DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}

	e, log := newAdaptiveCatalogEngine(t)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	sigs := e.GroupSigs()
	if len(sigs) != 2 {
		t.Fatalf("groups = %d (%v), want 2", len(sigs), sigs)
	}
	// One group materialized, the other GROUPED-AGG: a genuinely mixed mix.
	if err := e.SetGroupMode(sigs[0], ModeMaterialized); err != nil {
		t.Fatal(err)
	}
	if err := e.SetGroupMode(sigs[1], ModeGroupedAgg); err != nil {
		t.Fatal(err)
	}
	if m, ok := e.GroupMode(sigs[0]); !ok || m != ModeMaterialized {
		t.Fatalf("GroupMode(%q) = %v,%v", sigs[0], m, ok)
	}

	discountP1(t, e, 75)
	discountP1(t, oracle, 75)
	if got, want := firedNames(log), firedNames(oracleLog); !reflect.DeepEqual(got, want) {
		t.Errorf("mixed-mode firings = %v, oracle = %v", got, want)
	}
}

// TestAdaptiveRuntimeSwitch: flipping a live group's mode mid-workload
// changes nothing observable — no spurious firings during the silent
// migration, identical firings before and after.
func TestAdaptiveRuntimeSwitch(t *testing.T) {
	e, log := newAdaptiveCatalogEngine(t)
	discountP1(t, e, 75)
	before := len(*log)
	if before == 0 {
		t.Fatal("warmup update fired nothing")
	}

	for _, m := range []Mode{ModeMaterialized, ModeUngrouped, ModeGroupedAgg, ModeMaterialized, ModeGrouped} {
		target := map[string]Mode{}
		for _, sig := range e.GroupSigs() {
			target[sig] = m
		}
		changes, err := e.SetGroupModes(target)
		if err != nil {
			t.Fatalf("switch to %v: %v", m, err)
		}
		if len(changes) == 0 {
			t.Fatalf("switch to %v reported no changes", m)
		}
		if len(*log) != before {
			t.Fatalf("silent switch to %v fired %d notifications", m, len(*log)-before)
		}
		*log = nil
		before = 0
		discountP1(t, e, 75) // no-op value change still exercises the plans
		discountP1(t, e, 60) // real change: CRT 15 goes from 75 to 60
		got := firedNames(log)
		want := []string{"Name0/CRT 15", "Cheap/CRT 15"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("after switch to %v fired %v, want %v", m, got, want)
		}
		discountP1(t, e, 75) // restore for next round
		*log = nil
		before = 0
	}
}

// TestAdaptiveAbortIsByteIdentical: a prepared mode switch that aborts
// leaves the engine exactly as it was — same modes, same relational
// image, same subsequent firings.
func TestAdaptiveAbortIsByteIdentical(t *testing.T) {
	e, log := newAdaptiveCatalogEngine(t)
	discountP1(t, e, 75)
	*log = nil

	imgBefore := dumpDB(e)
	modesBefore := map[string]Mode{}
	for _, sig := range e.GroupSigs() {
		modesBefore[sig], _ = e.GroupMode(sig)
	}

	target := map[string]Mode{}
	for _, sig := range e.GroupSigs() {
		target[sig] = ModeMaterialized
	}
	sw, err := e.PrepareGroupModes(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Changes()) == 0 {
		t.Fatal("prepared switch reported no changes")
	}
	if err := sw.Abort(); err != nil {
		t.Fatal(err)
	}

	if img := dumpDB(e); img != imgBefore {
		t.Error("abort changed the relational image")
	}
	for sig, m := range modesBefore {
		if got, _ := e.GroupMode(sig); got != m {
			t.Errorf("abort changed group %q mode %v -> %v", sig, m, got)
		}
	}
	if len(*log) != 0 {
		t.Errorf("aborted switch fired %d notifications", len(*log))
	}
	// The engine still works and fires exactly as before.
	discountP1(t, e, 60)
	got := firedNames(log)
	want := []string{"Name0/CRT 15", "Cheap/CRT 15"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-abort firings = %v, want %v", got, want)
	}
}

// TestAdaptiveSeededModes: modes seeded before triggers exist are adopted
// when the group appears (the replay path shards use after restart/grow).
func TestAdaptiveSeededModes(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := newAdaptiveCatalogEngine(t)
	if err := probe.Flush(); err != nil {
		t.Fatal(err)
	}
	sigs := probe.GroupSigs()

	e := NewEngine(db, ModeGrouped)
	if err := e.SetModePolicy(nil); err != nil {
		t.Fatal(err)
	}
	for _, sig := range sigs {
		if err := e.SeedGroupMode(sig, ModeMaterialized); err != nil {
			t.Fatal(err)
		}
	}
	e.RegisterAction("notifySmith", func(inv Invocation) error { return nil })
	if _, err := e.CreateView("catalog", catalogSrc); err != nil {
		t.Fatal(err)
	}
	err = e.CreateTrigger(`
		CREATE TRIGGER Name0 AFTER UPDATE ON view('catalog')/product
		WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, sig := range e.GroupSigs() {
		if m, _ := e.GroupMode(sig); m != ModeMaterialized {
			t.Errorf("seeded group %q mode = %v, want MATERIALIZED", sig, m)
		}
	}
	if got := e.SeededModes(); len(got) != len(sigs) {
		t.Errorf("SeededModes = %v, want %d entries", got, len(sigs))
	}
}

// TestAdaptivePerGroupStats: the always-on per-group counters flow out
// through GroupStats and Stats.PerGroup.
func TestAdaptivePerGroupStats(t *testing.T) {
	e, _ := newAdaptiveCatalogEngine(t)
	sigs := e.GroupSigs()
	if err := e.SetGroupMode(sigs[0], ModeMaterialized); err != nil {
		t.Fatal(err)
	}
	discountP1(t, e, 75)
	discountP1(t, e, 60)

	var fires, evalNS, matBytes int64
	for _, gs := range e.GroupStats() {
		fires += gs.Fires
		evalNS += gs.EvalNS
		if gs.Mode == ModeMaterialized {
			matBytes += gs.SnapshotBytes
			if gs.SnapshotRows == 0 {
				t.Errorf("materialized group %q has zero snapshot rows", gs.Sig)
			}
		}
		if gs.ModeName != gs.Mode.String() {
			t.Errorf("ModeName %q != %v", gs.ModeName, gs.Mode)
		}
	}
	if fires == 0 || evalNS == 0 {
		t.Errorf("per-group counters empty: fires=%d evalNS=%d", fires, evalNS)
	}
	if matBytes == 0 {
		t.Error("materialized group reports zero snapshot bytes")
	}
	st := e.Stats()
	if len(st.PerGroup) != len(sigs) {
		t.Errorf("Stats.PerGroup has %d entries, want %d", len(st.PerGroup), len(sigs))
	}
}

// TestAdaptivePolicyReplan: Replan applies the policy's decision.
type fixedPolicy struct{ want Mode }

func (p fixedPolicy) Decide(stats []GroupStat) map[string]Mode {
	out := map[string]Mode{}
	for _, gs := range stats {
		if gs.Mode != p.want {
			out[gs.Sig] = p.want
		}
	}
	return out
}

func TestAdaptivePolicyReplan(t *testing.T) {
	e, log := newAdaptiveCatalogEngine(t)
	if err := e.SetModePolicy(fixedPolicy{want: ModeMaterialized}); err != nil {
		t.Fatal(err)
	}
	discountP1(t, e, 75)
	*log = nil
	changes, err := e.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 {
		t.Fatalf("replan changes = %d, want 2", len(changes))
	}
	for _, sig := range e.GroupSigs() {
		if m, _ := e.GroupMode(sig); m != ModeMaterialized {
			t.Errorf("group %q mode = %v after replan", sig, m)
		}
	}
	if len(*log) != 0 {
		t.Errorf("replan fired %d notifications", len(*log))
	}
	// Second replan is a no-op.
	if changes, err = e.Replan(); err != nil || len(changes) != 0 {
		t.Errorf("second replan = %v, %v; want no changes", changes, err)
	}
}

// TestAdaptiveRejectedAfterTriggers: flipping an engine to adaptive after
// triggers exist is rejected (signatures would change shape).
func TestAdaptiveRejectedAfterTriggers(t *testing.T) {
	e, _ := newCatalogEngine(t, ModeUngrouped)
	err := e.CreateTrigger(`
		CREATE TRIGGER T AFTER UPDATE ON view('catalog')/product
		WHERE OLD_NODE/@name = 'CRT 15' DO notifySmith(NEW_NODE)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetModePolicy(nil); err == nil {
		t.Error("SetModePolicy after CreateTrigger should fail")
	}
}
