package core

import (
	"sort"
	"time"

	"quark/internal/grouping"
	"quark/internal/reldb"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// compileMaterialized compiles the strawman pipeline the paper argues
// against in Section 1: the trigger path's result is fully materialized
// and, after every statement on any underlying table, recomputed and
// diffed by canonical key. It is expensive by design (cost grows with
// view size, not with the number of affected nodes) but makes a perfect
// correctness oracle for the translated-trigger pipeline — and, for
// small hot views, the adaptive planner's cheapest option.
//
// Like compileGroup's translated modes, nothing installs here: the
// initial snapshot evaluates eagerly (the caller holds the table locks),
// so a group switching modes pays the snapshot cost during prepare and
// an aborted switch simply discards it.
func (e *Engine) compileMaterialized(g *group) (*groupBuild, error) {
	vw := g.nav.Op.OutWidth()
	layout := Layout{
		NewCol: func(i int) int { return i },
		OldCol: func(i int) int { return vw + i },
	}

	// Per-member bound conditions and argument expressions. The member
	// list is snapshotted here: the body runs without the metadata lock.
	order := append([]string(nil), g.order...)
	members := make(map[string]*TriggerInfo, len(g.members))
	conds := map[string]xqgm.Expr{}
	args := map[string][]xqgm.Expr{}
	for _, name := range order {
		ti := g.members[name]
		members[name] = ti
		cc := &condCompiler{nav: g.nav, layout: layout, abstract: true}
		if ti.Spec.Condition != nil {
			tmpl, err := cc.compile(ti.Spec.Condition)
			if err != nil {
				return nil, err
			}
			conds[name] = grouping.Bind(tmpl, ti.Consts)
		}
		a, err := e.compileArgs(g, ti, layout)
		if err != nil {
			return nil, err
		}
		args[name] = a
	}

	// Initial snapshot.
	snapshot, err := e.materializeSnapshot(g)
	if err != nil {
		return nil, err
	}
	state := &matState{rows: snapshot}
	recordSnapSize := func(rows map[string]xqgm.Tuple) {
		g.stats.snapRows.Store(int64(len(rows)))
		g.stats.snapBytes.Store(int64(len(rows)) * int64(vw) * bytesPerValue)
	}
	recordSnapSize(snapshot)

	body := func(ctx *reldb.FireContext) error {
		// Under a batched commit the body fires once per (table, event) of
		// the transaction, but the first firing already sees (and diffs
		// against) the final state; later firings of the same commit are
		// no-ops by construction, so skip the snapshot work outright.
		if ctx.Batch != nil {
			if state.lastBatch == ctx.Batch.Seq {
				return nil
			}
			state.lastBatch = ctx.Batch.Seq
		}
		e.fires.Add(1)
		g.stats.fires.Add(1)
		start := time.Now()                                             //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
		defer func() { g.stats.evalNS.Add(int64(time.Since(start))) }() //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
		after, err := e.materializeSnapshot(g)
		if err != nil {
			return err
		}
		if ctx.Stage != nil {
			// Prepare-phase staging: the snapshot publishes only when the
			// transaction commits. A rolled-back prepare must leave the
			// diff baseline untouched, or the next firing would diff
			// against state that never existed.
			ctx.Stage(func() error { state.rows = after; recordSnapSize(after); return nil })
		} else {
			defer func() { state.rows = after; recordSnapSize(after) }()
		}
		if ctx.Batch != nil && ctx.Batch.Silent {
			// Silent data movement (shard rebalancing): the snapshot must
			// refresh — this shard gained or lost whole view elements — but
			// the change is placement, not data, so nothing is diffed and
			// nothing delivered.
			return nil
		}
		before := state.rows

		type pair struct {
			key      string
			old, new xqgm.Tuple
		}
		var fired []pair
		switch g.event {
		case reldb.EvUpdate:
			for k, nt := range after {
				if ot, ok := before[k]; ok && !tuplesEqual(ot, nt) {
					fired = append(fired, pair{k, ot, nt})
				}
			}
		case reldb.EvInsert:
			for k, nt := range after {
				if _, ok := before[k]; !ok {
					fired = append(fired, pair{k, nullTuple(vw), nt})
				}
			}
		case reldb.EvDelete:
			for k, ot := range before {
				if _, ok := after[k]; !ok {
					fired = append(fired, pair{k, ot, nullTuple(vw)})
				}
			}
		}
		// The diff maps iterate in random order; delivery order is part of
		// the conformance contract, so sort the Δ/∇ pairs by view key
		// before firing members.
		sort.Slice(fired, func(i, j int) bool { return fired[i].key < fired[j].key })
		g.stats.deltaRows.Add(int64(len(fired)))
		for _, p := range fired {
			row := make(xqgm.Tuple, 0, 2*vw)
			row = append(row, p.new...)
			row = append(row, p.old...)
			env := &xqgm.Env{In: [2][]xdm.Value{row, nil}}
			for _, name := range order {
				ti := members[name]
				if c := conds[name]; c != nil {
					v, err := c.Eval(env)
					if err != nil {
						return err
					}
					if v.IsNull() || !v.EffectiveBool() {
						continue
					}
				}
				avals := make([]xdm.Value, len(args[name]))
				for i, ae := range args[name] {
					v, err := ae.Eval(env)
					if err != nil {
						return err
					}
					avals[i] = v
				}
				g.stats.activations.Add(1)
				inv := Invocation{
					Trigger: name,
					Event:   g.event,
					Old:     p.old[g.nav.NodeCol].AsNode(),
					New:     p.new[g.nav.NodeCol].AsNode(),
					Args:    avals,
				}
				if err := e.stageOrDeliver(ctx, ti.Spec.ActionFn, inv); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Fire on every event of every table the view reads.
	b := &groupBuild{mode: ModeMaterialized}
	for _, table := range xqgm.Tables(g.nav.Op) {
		for _, ev := range []reldb.Event{reldb.EvInsert, reldb.EvUpdate, reldb.EvDelete} {
			b.installs = append(b.installs, pendingTrigger{
				table: table, event: ev, prefix: "matTrig", body: body,
				sql: "-- materialized view maintenance + diff",
			})
		}
	}
	return b, nil
}

// bytesPerValue is the rough in-memory footprint charged per snapshot
// value when estimating materialized view size (slice header + boxed
// value). The planner's memory budget works in these units; precision
// matters less than monotonicity in rows × width.
const bytesPerValue = 24

type matState struct {
	rows      map[string]xqgm.Tuple
	lastBatch int64
}

// materializeSnapshot evaluates the path graph and keys rows by canonical
// key.
func (e *Engine) materializeSnapshot(g *group) (map[string]xqgm.Tuple, error) {
	ectx := xqgm.NewEvalContext(e.db, nil)
	rows, err := ectx.Eval(g.nav.Op)
	if err != nil {
		return nil, err
	}
	out := make(map[string]xqgm.Tuple, len(rows))
	for _, r := range rows {
		ks := make([]xdm.Value, len(g.nav.KeyCols))
		for i, kc := range g.nav.KeyCols {
			ks[i] = r[kc]
		}
		out[xdm.TupleKey(ks)] = r
	}
	return out, nil
}

func tuplesEqual(a, b xqgm.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !xdm.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func nullTuple(w int) xqgm.Tuple {
	t := make(xqgm.Tuple, w)
	for i := range t {
		t[i] = xdm.Null
	}
	return t
}
