package core

import (
	"fmt"
	"strings"
	"testing"

	"quark/internal/dispatch"
	"quark/internal/obs"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

// collectTree flattens a span tree depth-first.
func collectTree(s *obs.Span) []*obs.Span {
	out := []*obs.Span{s}
	for _, c := range s.Children() {
		out = append(out, collectTree(c)...)
	}
	return out
}

// checkSpanConformance enforces the trace contract on every retained
// root: roots are named "tx", every span in a retained tree is ended,
// and a prepare phase is always resolved by a commit or an abort in the
// same tree — a trace can never show a transaction stuck in prepare.
func checkSpanConformance(t *testing.T, reg *obs.Registry) []*obs.Span {
	t.Helper()
	roots := reg.FinishedSpans()
	for _, root := range roots {
		if root.Name != "tx" {
			t.Errorf("retained root %q, want \"tx\"", root.Name)
		}
		prepares, terminals := 0, 0
		for _, c := range root.Children() {
			switch c.Name {
			case "prepare":
				prepares++
			case "commit", "abort":
				terminals++
			}
		}
		if prepares > 0 && terminals == 0 {
			t.Errorf("trace has %d prepare span(s) but no commit/abort:\n%s", prepares, root.Render())
		}
		for _, s := range collectTree(root) {
			if !s.Ended() {
				t.Errorf("retained tree holds unfinished span %q:\n%s", s.Name, root.Render())
			}
		}
	}
	return roots
}

// hasChild reports whether any retained root has a child chain matching
// the given names (searching each level among all children).
func findSpan(roots []*obs.Span, path ...string) *obs.Span {
	level := roots
	var hit *obs.Span
	for _, name := range path {
		hit = nil
		for _, s := range level {
			if s.Name == name {
				hit = s
				break
			}
		}
		if hit == nil {
			return nil
		}
		level = hit.Children()
	}
	return hit
}

func bumpBatch(e *Engine, sym string, p float64) error {
	return e.Batch(func(tx *reldb.Tx) error {
		_, err := tx.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, func(r reldb.Row) reldb.Row {
			r[1] = xdm.Float(p)
			return r
		})
		return err
	})
}

// TestSpanConformanceSync commits, rolls back explicitly, and rolls back
// through a body error, all with synchronous delivery, and requires the
// retained traces to conform — including the trigger evaluation nesting
// as an "eval" child of the prepare phase.
func TestSpanConformanceSync(t *testing.T) {
	e := newWatchedEngine(t, 2)
	defer e.Close()
	reg := obs.New()
	e.EnableObs(reg)

	for i := 0; i < 3; i++ {
		if err := bumpBatch(e, "QRK", 100.5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := e.BeginBatch()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Rollback(); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("body failed")
	if err := e.Batch(func(*reldb.Tx) error { return wantErr }); err == nil {
		t.Fatal("erroring batch body must surface its error")
	}

	roots := checkSpanConformance(t, reg)
	if len(roots) != 5 {
		t.Fatalf("retained %d traces, want 5", len(roots))
	}
	if findSpan(roots, "tx", "prepare", "eval") == nil {
		t.Fatalf("no trace shows an eval span under prepare; first trace:\n%s", roots[0].Render())
	}
	if sp := findSpan(roots, "tx", "prepare"); sp == nil || sp.Attrs["staged"] == "" {
		t.Fatal("prepare span missing the staged-count attribute")
	}
	aborted := 0
	for _, r := range roots {
		if findSpan([]*obs.Span{r}, "tx", "abort") != nil {
			aborted++
		}
	}
	if aborted != 2 {
		t.Fatalf("retained %d aborted traces, want 2 (explicit rollback + body error)", aborted)
	}
}

// TestSpanConformanceAsync runs the same contract with the async
// dispatcher: deliveries outlive the commit span, but every prepare is
// still resolved before the root is retained.
func TestSpanConformanceAsync(t *testing.T) {
	e := newWatchedEngine(t, 3)
	defer e.Close()
	reg := obs.New()
	e.EnableObs(reg)
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bumpBatch(e, "XML", 200.5+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	roots := checkSpanConformance(t, reg)
	if len(roots) != 4 {
		t.Fatalf("retained %d traces, want 4", len(roots))
	}
}

// TestSpanConformanceOutboxReplay commits through the group-commit
// outbox into a partially failing sink, then restarts and replays. The
// original run's traces must conform and show the wave's group append
// ("outbox-append") and per-delivery spans under the commit phase, with
// delivery errors annotated; replay happens below core, so the replayed
// process records no new commit traces.
func TestSpanConformanceOutboxReplay(t *testing.T) {
	dir := t.TempDir()
	lg, err := outbox.Open(dir, outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newWatchedEngine(t, 3)
	reg := obs.New()
	e.EnableObs(reg)
	sink := outbox.NewPartitionedSink(2)
	sink.FailFor = func(trig string) bool { return trig == "W1" }
	if err := e.EnableOutbox(lg, sink); err != nil {
		t.Fatal(err)
	}
	const updates = 3
	for i := 0; i < updates; i++ {
		// W1's delivery fails; the wave aborts but the commit stands
		// (AFTER-trigger semantics), so the error surfaces here.
		if err := bumpBatch(e, "QRK", 300.5+float64(i)); err == nil {
			t.Fatal("failing sink must surface a delivery error")
		}
	}
	roots := checkSpanConformance(t, reg)
	if len(roots) != updates {
		t.Fatalf("retained %d traces, want %d", len(roots), updates)
	}
	if sp := findSpan(roots, "tx", "commit", "outbox-append"); sp == nil || sp.Attrs["records"] != "3" {
		t.Fatalf("commit trace missing the 3-record group append:\n%s", roots[0].Render())
	}
	var failed *obs.Span
	for _, r := range roots {
		for _, c := range findSpan([]*obs.Span{r}, "tx", "commit").Children() {
			if c.Name == "deliver" && c.Attrs["err"] != "" {
				failed = c
			}
		}
	}
	if failed == nil || failed.Attrs["trigger"] != "W1" {
		t.Fatalf("no deliver span carries W1's sink error:\n%s", roots[0].Render())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart and replay into a healthy sink: the undelivered W1 records
	// arrive, and the replay counter on a fresh registry records them.
	lg2, err := outbox.Open(dir, outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	reg2 := obs.New()
	lg2.AttachObs(reg2)
	replay := outbox.NewPartitionedSink(2)
	n, err := lg2.Replay(replay)
	if err != nil {
		t.Fatal(err)
	}
	if n < updates {
		t.Fatalf("replayed %d records, want >= %d", n, updates)
	}
	snap := reg2.Snapshot()
	if got := snap.Counters["quark_outbox_replayed_total"]; got != int64(n) {
		t.Fatalf("quark_outbox_replayed_total = %d, want %d", got, n)
	}
	if len(reg2.FinishedSpans()) != 0 {
		t.Fatal("replay must not record commit traces")
	}
}

// TestEngineSnapshotUnifiesLayers checks the one-call Snapshot: engine
// stats (with the folded-in reldb.Stats) plus the registry's metrics.
func TestEngineSnapshotUnifiesLayers(t *testing.T) {
	e := newWatchedEngine(t, 2)
	defer e.Close()
	reg := obs.New()
	e.EnableObs(reg)
	if err := bumpBatch(e, "QRK", 150); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Stats.Fires == 0 || snap.Stats.Actions == 0 {
		t.Fatalf("snapshot stats = %+v, want fires and actions", snap.Stats)
	}
	if snap.Stats.DB.Statements == 0 {
		t.Fatal("snapshot must fold reldb stats into engine stats")
	}
	if snap.Obs.Counters["quark_core_fires_total"] != snap.Stats.Fires {
		t.Fatalf("obs counter %d != stats fires %d",
			snap.Obs.Counters["quark_core_fires_total"], snap.Stats.Fires)
	}
	if h, ok := snap.Obs.Histograms["quark_core_fire_ns"]; !ok || h.Count == 0 {
		t.Fatal("snapshot missing the fire-latency histogram")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "quark_reldb_statements_total") {
		t.Fatal("scrape missing the reldb collector series")
	}
}
