// Package core is the system of Figure 6: an active XML-publishing engine
// that accepts XML views (XQuery over the default view) and XML triggers,
// translates the triggers into SQL statement triggers on the underlying
// relational engine, and activates trigger actions with OLD_NODE/NEW_NODE
// parameters when base updates affect the monitored view nodes.
//
// Three translation modes reproduce the paper's evaluated systems
// (Section 6): ModeUngrouped (one SQL trigger set per XML trigger),
// ModeGrouped (structurally similar triggers share one SQL trigger via a
// constants table, Section 5.1), and ModeGroupedAgg (additionally derives
// old aggregates from new values and transition tables, Section 5.2). A
// fourth mode, ModeMaterialized, implements the strawman the paper argues
// against — materialize the view and diff it on every update — and doubles
// as a correctness oracle in tests.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quark/internal/affected"
	"quark/internal/compile"
	"quark/internal/dispatch"
	"quark/internal/events"
	"quark/internal/grouping"
	"quark/internal/obs"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/trigger"
	"quark/internal/wire"
	"quark/internal/xdm"
	"quark/internal/xqgm"
	"quark/internal/xquery"
)

// Mode selects the trigger translation strategy.
type Mode uint8

// Translation modes.
const (
	ModeUngrouped Mode = iota
	ModeGrouped
	ModeGroupedAgg
	ModeMaterialized
)

func (m Mode) String() string {
	switch m {
	case ModeUngrouped:
		return "UNGROUPED"
	case ModeGrouped:
		return "GROUPED"
	case ModeGroupedAgg:
		return "GROUPED-AGG"
	case ModeMaterialized:
		return "MATERIALIZED"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Invocation is passed to an action function when its trigger fires.
type Invocation struct {
	Trigger string
	Event   reldb.Event
	Old     *xdm.Node // nil for INSERT events
	New     *xdm.Node // nil for DELETE events
	Args    []xdm.Value
}

// ActionFunc is a registered external function (paper Section 2.2: "the
// action is a call to an external function").
type ActionFunc func(inv Invocation) error

// Stats reports engine state and activity. Async and Dispatch are only
// meaningful after EnableAsyncDispatch: Dispatch carries the dispatcher's
// queue counters (enqueued, completed, dropped, max depth, action errors).
// Outbox and OutboxLog are only meaningful after EnableOutbox: OutboxLog
// carries the durable log's append/ack counters. DB folds in the
// relational layer's statement and access-path counters, so one Stats
// call covers every layer under the engine.
type Stats struct {
	XMLTriggers int
	SQLTriggers int
	Groups      int
	Fires       int64
	Actions     int64
	DB          reldb.Stats
	Async       bool
	Dispatch    dispatch.Stats
	Outbox      bool
	OutboxLog   outbox.Stats
	// PerGroup breaks the engine down by trigger group: mode, firings,
	// eval latency, delta sizes, and (for MATERIALIZED groups) snapshot
	// footprint. The adaptive planner and /snapshot read the same rows.
	PerGroup []GroupStat `json:",omitempty"`
}

// Engine ties the pipeline together over one relational database.
//
// Concurrency model: e.mu (an RWMutex) guards only engine metadata —
// registered views, triggers, groups, compiled plans, and the derived
// lock-planning tables. Data access is coordinated by per-table
// read/write locks: a statement write-locks its target table and
// read-locks every table the installed trigger plans for that target may
// read; EvalView read-locks only the tables its view reads. Concurrent
// readers therefore never serialize behind each other, and only
// serialize behind writers that touch overlapping tables. Lock
// acquisition always follows the global table-name order, which makes
// cycles (and hence deadlocks) impossible.
//
// Action delivery: by default (synchronous mode) action callbacks run
// inline while the firing statement's locks are held. After
// EnableAsyncDispatch, trigger *detection* still runs inline under the
// statement's locks, but the action callbacks are handed to a bounded
// worker pool (internal/dispatch) with per-trigger FIFO ordering, so a
// slow sink no longer stalls the writer. In either mode action callbacks
// must not call back into the engine.
type Engine struct {
	mu   sync.RWMutex
	db   *reldb.DB
	comp *compile.Compiler
	mode Mode

	// actions is copy-on-write so trigger firings can read it without
	// taking e.mu (firings run under table locks, not the metadata lock).
	actions atomic.Pointer[map[string]ActionFunc]

	// adaptive marks mode as a per-group property (SetModePolicy):
	// signatures stay structural in every mode so a group's mode can
	// change without re-grouping, and policy (possibly nil) is consulted
	// by Replan. seedModes pre-assigns modes to groups that do not exist
	// yet (restart adoption: the shard layer replays persisted decisions
	// before triggers are registered).
	adaptive  bool
	policy    ModePolicy
	seedModes map[string]Mode

	triggers map[string]*TriggerInfo
	groups   map[string]*group
	order    []string // group signatures in creation order
	dirty    bool
	// dirtyGroups marks groups whose membership changed since the last
	// flush; unchanged groups keep their compiled plans across flushes.
	dirtyGroups    map[string]bool
	pendingDropSQL []string // SQL triggers of groups that were emptied
	sqlSeq         int

	// Per-table lock manager. lockOrder is the global acquisition order;
	// readSets maps a write target to the tables its installed trigger
	// bodies may read (recomputed at flush); fkReads maps a write target
	// to the tables its foreign-key validation reads (static, from the
	// schema), which must be locked even when no trigger is installed.
	tableLocks map[string]*sync.RWMutex
	lockOrder  []string
	readSets   map[string][]string
	fkReads    map[string][]string

	// dispatcher, when non-nil, runs action callbacks asynchronously; nil
	// means inline (synchronous) delivery with identical semantics to the
	// pre-dispatch engine.
	dispatcher atomic.Pointer[dispatch.Dispatcher]

	// ob, when non-nil, makes delivery durable: every activation is
	// appended to the outbox log before it is delivered (inline or via the
	// dispatcher) and acknowledged only after the sink accepted it.
	// obStripes stripes a per-trigger mutex (by name hash) held across
	// append+enqueue so log order always agrees with lane order for any
	// one trigger; without it two statements on disjoint tables activating
	// the same trigger could enqueue in the opposite order of their
	// appends, and a replay would then reorder that trigger's deliveries.
	// Striping (rather than one global mutex) keeps a writer parked in
	// Block-policy backpressure from stalling unrelated triggers' durable
	// deliveries — cross-trigger order carries no guarantee anyway. The
	// stripe set is per-engine by default; engines sharing one outbox log
	// (shards) share one stripe set via EnableOutboxShared, extending the
	// invariant across engines.
	ob        atomic.Pointer[outboxState]
	obStripes *DeliveryStripes

	// dispShared marks the dispatcher as externally owned (attached via
	// AttachSharedDispatcher): Close drains it but must not stop it.
	dispShared atomic.Bool

	// prepCheck, when set, vets every batch transaction at the end of its
	// prepare phase (BatchHandle.Prepare) with the staged invocation set.
	// An error fails the prepare — before anything was delivered — so a
	// coordinator can roll every participant back. It doubles as
	// admission control and as the failure-injection seam the conformance
	// suite uses to prove all-or-nothing cross-shard commits.
	prepCheck atomic.Pointer[func([]Invocation) error]

	fires   atomic.Int64
	actsRun atomic.Int64

	// obsp, when non-nil, holds the resolved metric handles of an attached
	// observability registry (EnableObs). Nil means disabled: every
	// instrumented path reduces to one atomic load and a branch.
	obsp atomic.Pointer[engineObs]

	// shadow, when non-nil, re-executes every translated plan's rendered
	// SQL on an external backend (internal/relsql) and fails the firing on
	// any result divergence (SetPlanShadow). Nil means disabled: the firing
	// path pays one atomic load and a branch.
	shadow atomic.Pointer[PlanShadow]
}

// DeliveryStripes is the per-trigger mutex set serializing outbox append
// with dispatcher enqueue. Engines that share one outbox log must also
// share one DeliveryStripes so the log-order = lane-order invariant holds
// for a trigger firing on several engines concurrently (the sharded
// engine's case).
type DeliveryStripes struct {
	mu [64]sync.Mutex
}

// NewDeliveryStripes allocates a stripe set for engines sharing an outbox.
func NewDeliveryStripes() *DeliveryStripes { return &DeliveryStripes{} }

// outboxState pairs the durable log with the sink consuming it.
type outboxState struct {
	log  *outbox.Log
	sink outbox.Sink // nil: deliver to the registered action functions
}

// TriggerInfo is one registered XML trigger.
type TriggerInfo struct {
	Spec     *trigger.Spec
	Consts   []xdm.Value
	groupSig string
}

// group is a set of structurally similar triggers sharing plans. Each
// group carries its own translation mode: the engine-global mode only
// seeds it, and an adaptive engine (SetModePolicy) re-picks it per group
// at runtime — mixed modes coexist because the installed plans, not the
// engine, decide how a firing evaluates.
type group struct {
	sig     string
	mode    Mode
	event   reldb.Event
	view    string
	nav     *compile.NavNode
	members map[string]*TriggerInfo
	order   []string
	// built at flush:
	built    bool
	plans    []*installedPlan
	sqlNames []string
	// stats survive rebuilds and mode switches: the planner's cost model
	// wants the group's history, not the current plan's.
	stats groupStats
}

// groupStats are the always-on per-group counters behind GroupStats: the
// planner's cost model and the /snapshot surface read the same numbers.
// Plain atomics, recorded on the firing path without any obs registry.
type groupStats struct {
	fires       atomic.Int64 // plan/body evaluations
	evalNS      atomic.Int64 // wall time spent in those evaluations
	deltaRows   atomic.Int64 // transition rows seen across firings
	activations atomic.Int64 // member activations delivered or staged
	builds      atomic.Int64 // plan (re)compilations, incl. mode switches
	snapRows    atomic.Int64 // materialized snapshot rows (0 when translated)
	snapBytes   atomic.Int64 // rough materialized snapshot footprint
}

// groupBuild is one group's compiled-but-not-installed translation: the
// plans plus the SQL triggers to create. Compilation is side-effect-free
// (nothing is registered with the database until installGroup), which is
// what makes a prepared mode switch abortable — discarding a build leaves
// the engine byte-identical.
type groupBuild struct {
	mode     Mode
	plans    []*installedPlan
	installs []pendingTrigger
}

// pendingTrigger is one SQL trigger a groupBuild wants installed.
type pendingTrigger struct {
	table  string
	event  reldb.Event
	body   func(*reldb.FireContext) error
	sql    string
	prefix string // sql-trigger name prefix: "xmlTrig" or "matTrig"
}

// installedPlan is one compiled SQL-trigger body. Everything reachable
// from a plan is immutable after flush (member/arg maps are snapshots),
// so firings may run without the metadata lock.
type installedPlan struct {
	table      string
	an         *affected.ANGraph
	root       *xqgm.Operator
	trigIDsCol int                    // -1 for ungrouped plans
	trigID     string                 // ungrouped: the single owner
	args       map[string][]xqgm.Expr // trigID -> compiled action args
	members    map[string]*TriggerInfo
	sqlText    string
	batchSQL   string // rendered SQL of batchRoot (empty when batchRoot is nil)

	// batchRoot/batchAN, when set, replace root/an for batched firings
	// that touched more than one table: the GROUPED-AGG old-aggregate
	// derivation (§5.2) is only sound for single-table deltas.
	batchRoot *xqgm.Operator
	batchAN   *affected.ANGraph

	// lastBatch dedups plan evaluation within one Tx.Commit (the same
	// plan is shared by this table's INSERT/UPDATE/DELETE triggers).
	lastBatch int64
}

// NewEngine creates an engine over db using the given translation mode.
func NewEngine(db *reldb.DB, mode Mode) *Engine {
	e := &Engine{
		db:          db,
		comp:        compile.New(db.Schema()),
		mode:        mode,
		triggers:    map[string]*TriggerInfo{},
		groups:      map[string]*group{},
		dirtyGroups: map[string]bool{},
		tableLocks:  map[string]*sync.RWMutex{},
		readSets:    map[string][]string{},
	}
	acts := map[string]ActionFunc{}
	e.actions.Store(&acts)
	e.obStripes = NewDeliveryStripes()
	e.fkReads = map[string][]string{}
	for _, t := range db.Schema().Tables() {
		e.tableLocks[t.Name] = &sync.RWMutex{}
		e.lockOrder = append(e.lockOrder, t.Name)
		for _, fk := range t.ForeignKeys {
			e.fkReads[t.Name] = append(e.fkReads[t.Name], fk.RefTable)
		}
	}
	sort.Strings(e.lockOrder)
	return e
}

// acquireLocks takes the listed table locks in global name order (write
// wins when a table is in both sets) and returns the release function.
func (e *Engine) acquireLocks(write, read map[string]bool) func() {
	held := make([]func(), 0, len(write)+len(read))
	for _, t := range e.lockOrder {
		l := e.tableLocks[t]
		switch {
		case write[t]:
			l.Lock()
			held = append(held, l.Unlock)
		case read[t]:
			l.RLock()
			held = append(held, l.RUnlock)
		}
	}
	return func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i]()
		}
	}
}

// lockForWrite locks one statement's footprint: the target table for
// writing plus the tables its installed trigger bodies read and the
// tables foreign-key validation may scan (reldb.checkFK reads the
// referenced table's rows even when no trigger is installed on it).
func (e *Engine) lockForWrite(table string) func() {
	e.mu.RLock()
	write := map[string]bool{table: true}
	unlock := e.acquireLocks(write, e.readFootprint(write))
	e.mu.RUnlock()
	return unlock
}

// readFootprint derives the read-lock set for a statement or batch that
// writes the given tables: everything the installed trigger bodies on
// those tables may read, plus the tables their foreign-key validation
// scans, minus the write set itself. Caller holds e.mu.
func (e *Engine) readFootprint(write map[string]bool) map[string]bool {
	read := map[string]bool{}
	for t := range write {
		for _, r := range e.readSets[t] {
			if !write[r] {
				read[r] = true
			}
		}
		for _, r := range e.fkReads[t] {
			if !write[r] {
				read[r] = true
			}
		}
	}
	return read
}

// lockAllForWrite write-locks every table (used by Batch, whose write
// footprint is unknown until the callback runs).
func (e *Engine) lockAllForWrite() func() {
	e.mu.RLock()
	unlock := e.acquireLocks(allOf(e.lockOrder), nil)
	e.mu.RUnlock()
	return unlock
}

// recomputeReadSets derives, per write-target table, the union of tables
// any installed trigger body on that table may read.
func (e *Engine) recomputeReadSets() {
	rs := map[string]map[string]bool{}
	add := func(target string, tables []string) {
		m, ok := rs[target]
		if !ok {
			m = map[string]bool{}
			rs[target] = m
		}
		for _, t := range tables {
			m[t] = true
		}
	}
	for _, sig := range e.order {
		g := e.groups[sig]
		if g.mode == ModeMaterialized {
			ts := xqgm.Tables(g.nav.Op)
			for _, t := range ts {
				add(t, ts)
			}
			continue
		}
		for _, p := range g.plans {
			ts := xqgm.Tables(p.root)
			if p.batchRoot != nil {
				ts = append(ts, xqgm.Tables(p.batchRoot)...)
			}
			add(p.table, ts)
		}
	}
	e.readSets = map[string][]string{}
	for target, m := range rs {
		out := make([]string, 0, len(m))
		for t := range m {
			out = append(out, t)
		}
		sort.Strings(out)
		e.readSets[target] = out
	}
}

// DB returns the underlying relational database.
func (e *Engine) DB() *reldb.DB { return e.db }

// Mode returns the translation mode.
func (e *Engine) Mode() Mode { return e.mode }

// CreateView compiles and registers an XQuery view.
func (e *Engine) CreateView(name, src string) (*compile.ViewDef, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.comp.CompileView(name, src)
}

// View returns a registered view.
func (e *Engine) View(name string) (*compile.ViewDef, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.comp.View(name)
}

// RegisterAction installs an external action function.
func (e *Engine) RegisterAction(name string, fn ActionFunc) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := *e.actions.Load()
	acts := make(map[string]ActionFunc, len(old)+1)
	for k, v := range old {
		acts[k] = v
	}
	acts[name] = fn
	e.actions.Store(&acts)
}

// action looks up a registered action without taking the metadata lock.
func (e *Engine) action(name string) ActionFunc {
	return (*e.actions.Load())[name]
}

// EnableAsyncDispatch switches action delivery to a bounded-queue worker
// pool: trigger detection keeps running inline under the firing
// statement's locks, but each activation is enqueued as a delivery
// (per-trigger FIFO; distinct triggers fan out across workers) instead of
// invoked inline. cfg selects the queue capacity, worker count, and the
// backpressure policy applied to writers when the queue is full. Call
// Drain to wait for all queued deliveries (a barrier, e.g. before
// asserting on side effects) and Close to shut the pool down. Returns an
// error if async dispatch is already enabled.
func (e *Engine) EnableAsyncDispatch(cfg dispatch.Config) error {
	d := dispatch.New(cfg)
	if !e.dispatcher.CompareAndSwap(nil, d) {
		_ = d.Close() // lost the race: stop the freshly started pool
		return fmt.Errorf("core: async dispatch already enabled")
	}
	e.dispShared.Store(false)
	if m := e.obsp.Load(); m != nil {
		d.AttachObs(m.reg)
	}
	return nil
}

// AttachSharedDispatcher enables async delivery through a dispatcher the
// caller owns (and may have attached to other engines — the sharded
// engine's shared pool, which gives per-trigger FIFO lanes spanning every
// shard). Close drains deliveries this engine handed to the pool but does
// not stop it; stopping is the owner's job, after every attached engine
// has closed. Returns an error if async dispatch is already enabled.
func (e *Engine) AttachSharedDispatcher(d *dispatch.Dispatcher) error {
	if d == nil {
		return fmt.Errorf("core: AttachSharedDispatcher requires a dispatcher")
	}
	// CAS before marking shared: a failed attach must not flip an already
	// owned dispatcher into drain-only Close semantics. Attaching must not
	// race Close (both are setup/teardown-time calls).
	if !e.dispatcher.CompareAndSwap(nil, d) {
		return fmt.Errorf("core: async dispatch already enabled")
	}
	e.dispShared.Store(true)
	if m := e.obsp.Load(); m != nil {
		d.AttachObs(m.reg)
	}
	return nil
}

// AsyncDispatch reports whether async delivery is enabled.
func (e *Engine) AsyncDispatch() bool { return e.dispatcher.Load() != nil }

// Drain blocks until every queued async delivery has completed; it is a
// no-op in synchronous mode. With a quiesced writer side, the engine's
// observable side effects after Drain are identical to synchronous mode.
func (e *Engine) Drain() {
	if d := e.dispatcher.Load(); d != nil {
		d.Drain()
	}
}

// Close drains and stops the async dispatcher, reverting the engine to
// inline delivery. The dispatcher is closed *before* the engine reverts
// to inline mode, so a statement racing with Close either enqueues (and
// its delivery drains), observes a delivery rejection (ErrClosed) as its
// statement error, or — once the pool has fully drained and stopped —
// delivers inline; per-trigger exclusivity is never violated. Safe to
// call on a synchronous engine; idempotent. A shared dispatcher
// (AttachSharedDispatcher) is drained and detached but left running: its
// owner stops it once every attached engine has closed.
func (e *Engine) Close() error {
	d := e.dispatcher.Load()
	if d == nil {
		return nil
	}
	if e.dispShared.Load() {
		d.Drain()
		e.dispatcher.CompareAndSwap(d, nil)
		return nil
	}
	err := d.Close() // blocks until queued deliveries drain and workers exit
	e.dispatcher.CompareAndSwap(d, nil)
	return err
}

// TriggerDispatchStats returns the per-trigger delivery counters of the
// async dispatcher (zero values and false in synchronous mode or for
// triggers that never had a delivery).
func (e *Engine) TriggerDispatchStats(name string) (dispatch.LaneStats, bool) {
	if d := e.dispatcher.Load(); d != nil {
		return d.TriggerStats(name)
	}
	return dispatch.LaneStats{}, false
}

// EnableOutbox makes action delivery durable (transactional-outbox
// pattern): every activation is serialized through the wire codec and
// appended to lg *before* it is delivered, and acknowledged only after
// delivery succeeded. A crash — queued deliveries lost with the process,
// a sink outage, a statement aborted by an inline delivery error — leaves
// the unacknowledged records in the log, and outbox.(*Log).Replay on the
// next start re-drives exactly those through the sink in log order, so
// delivery is at-least-once with per-trigger FIFO preserved end to end.
//
// sink is the consumer: an outbox.SinkFunc, FileSink, PartitionedSink, or
// any external transport. A nil sink delivers to the registered action
// functions, making the outbox a durability layer under the existing
// in-process actions. With a drop policy (DropNewest/DropOldest) the
// dispatcher sheds live-queue load, but the shed records stay in the log
// unacknowledged — durable completeness behind a freshness-first queue.
//
// The engine does not own lg: the caller opens it (recovering any
// previous run's records), replays, enables, and closes it after
// Engine.Close. Returns an error if an outbox is already enabled.
func (e *Engine) EnableOutbox(lg *outbox.Log, sink outbox.Sink) error {
	return e.EnableOutboxShared(lg, sink, nil)
}

// EnableOutboxShared is EnableOutbox for engines sharing one log: stripes,
// when non-nil, replaces this engine's per-trigger append+enqueue stripe
// set with a shared one, so the log-order = lane-order invariant holds for
// a trigger firing concurrently on several engines over the same log (the
// sharded engine attaches the same log, sink, and stripe set to every
// shard). Must be called before any statement can fire — it swaps the
// stripe set unsynchronized.
func (e *Engine) EnableOutboxShared(lg *outbox.Log, sink outbox.Sink, stripes *DeliveryStripes) error {
	if lg == nil {
		return fmt.Errorf("core: EnableOutbox requires a log")
	}
	st := &outboxState{log: lg, sink: sink}
	if !e.ob.CompareAndSwap(nil, st) {
		// Fail without touching the stripe set: swapping it under an
		// already-active outbox would let one trigger's append+enqueue
		// proceed under two different stripes.
		return fmt.Errorf("core: outbox already enabled")
	}
	if stripes != nil {
		e.obStripes = stripes
	}
	if m := e.obsp.Load(); m != nil {
		lg.AttachObs(m.reg)
	}
	return nil
}

// OutboxEnabled reports whether durable delivery is enabled.
func (e *Engine) OutboxEnabled() bool { return e.ob.Load() != nil }

// deliver hands one activation to the action function: inline in
// synchronous mode (errors abort the firing statement, AFTER-trigger
// style), or enqueued on the dispatcher in async mode. The Invocation is
// an immutable snapshot — node bindings and argument values are
// materialized XDM values, so workers never touch live engine or database
// state. Async action errors cannot reach the writer (its statement
// already returned); they are counted by the dispatcher and reported to
// its OnError hook. Enqueue errors (Error-policy backpressure, closed
// dispatcher) do surface to the writer, as do outbox append errors — a
// delivery that cannot be made durable is not delivered.
func (e *Engine) deliver(fnName string, inv Invocation) error {
	fn := e.action(fnName)
	d := e.dispatcher.Load()
	if ob := e.ob.Load(); ob != nil {
		return e.deliverDurable(ob, d, fn, fnName, inv)
	}
	if d == nil {
		e.actsRun.Add(1)
		if err := fn(inv); err != nil {
			return fmt.Errorf("core: action %s of trigger %s: %w", fnName, inv.Trigger, err)
		}
		return nil
	}
	err := d.Enqueue(dispatch.Delivery{Trigger: inv.Trigger, Run: func() error {
		e.actsRun.Add(1)
		return fn(inv)
	}})
	if err != nil {
		return fmt.Errorf("core: dispatching action %s of trigger %s: %w", fnName, inv.Trigger, err)
	}
	return nil
}

// obStripeIdx returns the trigger's stripe index.
func (e *Engine) obStripeIdx(trigger string) int {
	h := uint32(2166136261)
	for i := 0; i < len(trigger); i++ {
		h = (h ^ uint32(trigger[i])) * 16777619 // FNV-1a
	}
	return int(h % uint32(len(e.obStripes.mu)))
}

// obLock returns the trigger's stripe lock.
func (e *Engine) obLock(trigger string) *sync.Mutex {
	return &e.obStripes.mu[e.obStripeIdx(trigger)]
}

// deliverDurable is deliver with the outbox enabled: append, then deliver
// (inline or enqueued), then ack. The trigger's stripe lock is held across
// append+enqueue so the log's sequence order and the dispatcher's lane
// order never disagree — the property that makes a replay reproduce live
// per-trigger order. In inline (no-dispatcher) mode the stripe is held
// across the delivery itself: concurrent disjoint-table statements can
// activate the same trigger, and the Sink contract (one at a time, in log
// order, per trigger) must hold there too. Callbacks re-entering the
// engine were always forbidden (see the Engine doc); with the outbox on,
// an inline violation now deadlocks on the stripe instead of racing.
func (e *Engine) deliverDurable(ob *outboxState, d *dispatch.Dispatcher, fn ActionFunc, fnName string, inv Invocation) error {
	rec := &wire.Record{Trigger: inv.Trigger, Event: inv.Event, Old: inv.Old, New: inv.New, Args: inv.Args}
	run := e.durableRun(ob, fn, inv, rec)
	mu := e.obLock(inv.Trigger)
	mu.Lock()
	if _, err := ob.log.Append(rec); err != nil {
		mu.Unlock()
		return fmt.Errorf("core: outbox append for trigger %s: %w", inv.Trigger, err)
	}
	if d == nil {
		err := run()
		mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: action %s of trigger %s: %w", fnName, inv.Trigger, err)
		}
		return nil
	}
	err := d.Enqueue(dispatch.Delivery{Trigger: inv.Trigger, Run: run})
	mu.Unlock()
	if err != nil {
		return fmt.Errorf("core: dispatching action %s of trigger %s: %w", fnName, inv.Trigger, err)
	}
	return nil
}

// durableRun builds the delivery closure of one durable record: sink (or
// registered action), then ack. A failed delivery leaves the record
// unacknowledged — due for replay — and counts against its dead-letter
// retry budget (outbox Options.RetryLimit), so a permanently failing
// record eventually moves to the dead-letter file instead of pinning the
// watermark forever.
func (e *Engine) durableRun(ob *outboxState, fn ActionFunc, inv Invocation, rec *wire.Record) func() error {
	return func() error {
		e.actsRun.Add(1)
		var start time.Time
		m := e.obsp.Load()
		if m != nil {
			start = time.Now()
		}
		var err error
		if ob.sink != nil {
			err = ob.sink.Deliver(rec)
		} else {
			err = fn(inv)
		}
		if m != nil {
			m.sink.Since(start)
		}
		if err != nil {
			if _, dlErr := ob.log.NoteFailure(rec); dlErr != nil {
				// A failing dead-letter file must not silently disable the
				// policy: surface it alongside the delivery error so the
				// operator learns the record cannot be quarantined.
				return fmt.Errorf("%w (dead-letter quarantine failed: %v)", err, dlErr)
			}
			return err
		}
		return ob.log.Ack(rec.Seq)
	}
}

// batchState is the engine's per-commit scratch riding on
// BatchInfo.EngineState: activation dedup across the commit's plans, the
// staged invocation set (inspected by the prepare check), and the
// group-commit wave when the outbox is enabled. All firing waves of one
// commit run on the committing goroutine, so no locking is needed.
type batchState struct {
	seen   map[string]bool
	staged []Invocation
	wave   *deliveryWave
}

// batchStateOf returns the commit's engine state, creating it on first use.
func batchStateOf(b *reldb.BatchInfo) *batchState {
	if st, ok := b.EngineState.(*batchState); ok {
		return st
	}
	st := &batchState{seen: map[string]bool{}}
	b.EngineState = st
	return st
}

// waveItem is one staged durable delivery.
type waveItem struct {
	fnName string
	fn     ActionFunc
	inv    Invocation
	rec    *wire.Record
}

// deliveryWave batches one commit's durable deliveries for group commit:
// at Tx.Commit every record of the wave is appended to the outbox as ONE
// contiguous write (and at most one fsync), then delivered in staging
// order. The whole wave runs under the stripe locks of every trigger it
// touches — taken in index order, so waves and single-statement
// deliveries can never deadlock — which preserves the log-order =
// lane-order invariant for the grouped appends exactly as the per-record
// stripe does for single statements. The cost is that a wave parked in
// Block-policy backpressure holds its stripes a little longer; the win is
// one write syscall per firing wave instead of one per record.
type deliveryWave struct {
	e     *Engine
	items []waveItem
	// span, when non-nil, is the committing handle's "commit" phase span:
	// the wave's group append and deliveries trace as its children.
	span *obs.Span
}

// add stages one delivery; it reports whether this was the wave's first
// item (the caller then stages wave.run with the transaction).
func (w *deliveryWave) add(fnName string, fn ActionFunc, inv Invocation) bool {
	w.items = append(w.items, waveItem{fnName: fnName, fn: fn, inv: inv,
		rec: &wire.Record{Trigger: inv.Trigger, Event: inv.Event, Old: inv.Old, New: inv.New, Args: inv.Args}})
	return len(w.items) == 1
}

// run is the wave's single staged thunk: group-append, then deliver (or
// enqueue) each item in staging order. A delivery error aborts the rest
// of the wave; its records are already durable and unacknowledged, so a
// replay finishes what the aborted wave did not — at-least-once holds
// even for the suffix the pre-group-commit engine would never have
// appended.
func (w *deliveryWave) run() error {
	e := w.e
	ob := e.ob.Load()
	if ob == nil {
		// The outbox vanished between staging and commit (teardown-time
		// misuse); deliver plainly rather than drop the wave.
		for _, it := range w.items {
			if err := e.deliver(it.fnName, it.inv); err != nil {
				return err
			}
		}
		return nil
	}
	d := e.dispatcher.Load()
	var idxs []int
	seen := map[int]bool{}
	for _, it := range w.items {
		if i := e.obStripeIdx(it.inv.Trigger); !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		e.obStripes.mu[i].Lock()
	}
	defer func() {
		for j := len(idxs) - 1; j >= 0; j-- {
			e.obStripes.mu[idxs[j]].Unlock()
		}
	}()
	recs := make([]*wire.Record, len(w.items))
	for i, it := range w.items {
		recs[i] = it.rec
	}
	asp := w.span.Child("outbox-append")
	asp.SetAttr("records", fmt.Sprint(len(recs)))
	if _, err := w.e.obAppendBatch(ob, recs); err != nil {
		asp.SetAttr("err", err.Error())
		asp.End()
		return err
	}
	asp.End()
	for _, it := range w.items {
		run := e.durableRun(ob, it.fn, it.inv, it.rec)
		if d == nil {
			// Synchronous durable delivery (sink + ack) traces inline; the
			// async path's latency lives in the dispatch histograms instead,
			// since the delivery outlives the commit span.
			dsp := w.span.Child("deliver")
			dsp.SetAttr("trigger", it.inv.Trigger)
			err := run()
			if err != nil {
				dsp.SetAttr("err", err.Error())
			}
			dsp.End()
			if err != nil {
				return fmt.Errorf("core: action %s of trigger %s: %w", it.fnName, it.inv.Trigger, err)
			}
			continue
		}
		if err := d.Enqueue(dispatch.Delivery{Trigger: it.inv.Trigger, Run: run}); err != nil {
			return fmt.Errorf("core: dispatching action %s of trigger %s: %w", it.fnName, it.inv.Trigger, err)
		}
	}
	return nil
}

// obAppendBatch group-appends the wave's records.
func (e *Engine) obAppendBatch(ob *outboxState, recs []*wire.Record) (uint64, error) {
	first, err := ob.log.AppendBatch(recs)
	if err != nil {
		return 0, fmt.Errorf("core: outbox group append of %d records: %w", len(recs), err)
	}
	return first, nil
}

// stageOrDeliver routes one activation: immediate delivery for
// statement-level firings, staged for a transaction's prepare phase. In
// staged mode with the outbox enabled, deliveries accumulate on the
// commit's group-commit wave; otherwise each delivery stages its own
// thunk, preserving activation order either way.
func (e *Engine) stageOrDeliver(ctx *reldb.FireContext, fnName string, inv Invocation) error {
	if ctx != nil && ctx.Batch != nil && ctx.Batch.Silent {
		// Defense in depth: no activation of a silent wave may ever reach a
		// sink, whatever body produced it.
		return nil
	}
	if ctx == nil || ctx.Stage == nil {
		return e.deliver(fnName, inv)
	}
	st := batchStateOf(ctx.Batch)
	st.staged = append(st.staged, inv)
	if e.ob.Load() != nil {
		if st.wave == nil {
			st.wave = &deliveryWave{e: e}
		}
		if st.wave.add(fnName, e.action(fnName), inv) {
			ctx.Stage(st.wave.run)
		}
		return nil
	}
	fn := fnName
	staged := inv
	ctx.Stage(func() error { return e.deliver(fn, staged) })
	return nil
}

// SetPrepareCheck installs (or, with nil, clears) the transaction
// admission check: fn runs at the end of every batch transaction's
// prepare phase with the invocation set the transaction staged, and an
// error fails the prepare — the transaction can still be rolled back
// everywhere, nothing having been delivered. Coordinators use it to veto
// commits fleet-wide; the conformance suite uses it to inject
// prepare-time failures and prove the two-phase protocol leaves no
// partial state behind.
func (e *Engine) SetPrepareCheck(fn func([]Invocation) error) {
	if fn == nil {
		e.prepCheck.Store(nil)
		return
	}
	e.prepCheck.Store(&fn)
}

// stagedInvocations extracts the invocation set a prepared transaction
// staged (empty when no trigger fired).
func (e *Engine) stagedInvocations(b *reldb.BatchInfo) []Invocation {
	if b == nil {
		return nil
	}
	if st, ok := b.EngineState.(*batchState); ok {
		return st.staged
	}
	return nil
}

// CreateTrigger parses and registers an XML trigger; installation of the
// translated SQL triggers is deferred until Flush (or the next statement
// through the engine's Exec helpers).
func (e *Engine) CreateTrigger(src string) error {
	spec, err := trigger.Parse(src)
	if err != nil {
		return err
	}
	return e.CreateTriggerSpec(spec)
}

// CreateTriggerSpec registers a pre-parsed trigger.
func (e *Engine) CreateTriggerSpec(spec *trigger.Spec) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.triggers[spec.Name]; dup {
		return fmt.Errorf("core: duplicate trigger %q", spec.Name)
	}
	if e.action(spec.ActionFn) == nil {
		return fmt.Errorf("core: action function %q is not registered", spec.ActionFn)
	}
	nav, err := e.resolvePath(spec)
	if err != nil {
		return err
	}
	// Collect the trigger's condition constants (traversal order matches
	// the abstracted template used for grouping).
	cc := &condCompiler{nav: nav, layout: identityLayout(nav), abstract: true}
	if spec.Condition != nil {
		if _, err := cc.compile(spec.Condition); err != nil {
			return err
		}
	}
	sig := e.signature(spec)
	ti := &TriggerInfo{Spec: spec, Consts: cc.consts, groupSig: sig}
	g, ok := e.groups[sig]
	if !ok {
		mode := e.mode
		if m, seeded := e.seedModes[sig]; seeded {
			mode = m
		}
		g = &group{sig: sig, mode: mode, event: spec.Event, view: spec.ViewName, nav: nav, members: map[string]*TriggerInfo{}}
		e.groups[sig] = g
		e.order = append(e.order, sig)
	}
	g.members[spec.Name] = ti
	g.order = append(g.order, spec.Name)
	e.triggers[spec.Name] = ti
	e.dirty = true
	e.dirtyGroups[sig] = true
	return nil
}

// DropTrigger removes an XML trigger. With async dispatch enabled it also
// rebuilds the installed SQL triggers immediately (Flush semantics) and
// then drains the trigger's delivery lane: deliveries already enqueued
// for the dropped trigger complete before DropTrigger returns, and the
// lane's bookkeeping is released. The immediate flush matters for the
// drain: it runs under every table's write lock, so it both waits out
// in-flight statements that could still fire the old plans and uninstalls
// those plans, guaranteeing nothing can enqueue to the drained lane
// afterwards. (In synchronous mode the rebuild stays deferred to the next
// Flush, as before.)
func (e *Engine) DropTrigger(name string) error {
	e.mu.Lock()
	err := e.dropTriggerLocked(name)
	d := e.dispatcher.Load()
	var flushErr error
	if err == nil && d != nil {
		flushErr = e.flushLocked()
	}
	e.mu.Unlock()
	if err != nil {
		return err
	}
	if d != nil {
		// Drain outside the metadata lock: lane deliveries may take
		// arbitrary time, and concurrent engine API calls must not queue
		// up behind the drop. The drain runs even when the flush failed —
		// the trigger is already unregistered, so the lane must still be
		// released (the flush error is surfaced afterwards, and the next
		// statement will retry the rebuild).
		d.DrainTrigger(name)
	}
	return flushErr
}

func (e *Engine) dropTriggerLocked(name string) error {
	ti, ok := e.triggers[name]
	if !ok {
		return fmt.Errorf("core: no trigger %q", name)
	}
	delete(e.triggers, name)
	g := e.groups[ti.groupSig]
	delete(g.members, name)
	for i, n := range g.order {
		if n == name {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	if len(g.members) == 0 {
		delete(e.groups, ti.groupSig)
		delete(e.dirtyGroups, ti.groupSig)
		e.pendingDropSQL = append(e.pendingDropSQL, g.sqlNames...)
		for i, s := range e.order {
			if s == ti.groupSig {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	} else {
		e.dirtyGroups[ti.groupSig] = true
	}
	e.dirty = true
	return nil
}

// identityLayout is used for constant collection (layout-independent).
func identityLayout(nav *compile.NavNode) Layout {
	w := nav.Op.OutWidth()
	return Layout{NewCol: func(i int) int { return i }, OldCol: func(i int) int { return w + i }}
}

// resolvePath composes the trigger Path with the view (Section 3.3): the
// navigation tree locates the operator producing the monitored elements.
func (e *Engine) resolvePath(spec *trigger.Spec) (*compile.NavNode, error) {
	v, ok := e.comp.View(spec.ViewName)
	if !ok {
		return nil, fmt.Errorf("core: unknown view %q", spec.ViewName)
	}
	nav := v.Nav
	for i, st := range spec.PathSteps {
		if len(st.Preds) > 0 {
			return nil, fmt.Errorf("core: predicates in trigger paths are not supported; use WHERE")
		}
		switch st.Axis {
		case "child":
			// Allow naming the document element as the first step.
			if i == 0 && st.Name == nav.ElemName {
				continue
			}
			c := nav.Child(st.Name)
			if c == nil {
				return nil, fmt.Errorf("core: view %q has no element %q under %q", spec.ViewName, st.Name, nav.ElemName)
			}
			nav = c
		case "descendant":
			c := nav.Find(st.Name)
			if c == nil || c == nav {
				return nil, fmt.Errorf("core: view %q has no descendant element %q", spec.ViewName, st.Name)
			}
			nav = c
		default:
			return nil, fmt.Errorf("core: unsupported axis %q in trigger path", st.Axis)
		}
	}
	if nav.Op == nil {
		return nil, fmt.Errorf("core: path resolves to no producer")
	}
	return nav, nil
}

// signature groups structurally similar triggers: same view, path, event,
// condition shape (literals abstracted), and action shape.
func (e *Engine) signature(spec *trigger.Spec) string {
	var sb strings.Builder
	// Legacy engine-global UNGROUPED never shares plans: every trigger is
	// its own group, producing one SQL trigger set per XML trigger
	// (Section 6's UNGROUPED system). An adaptive engine instead keeps
	// signatures structural in EVERY mode — grouping.ComposeSignature's
	// contract — so a group's mode is a mutable property, not part of its
	// identity, and the planner can flip it without re-grouping (a
	// structural group in per-group UNGROUPED mode evaluates one plan per
	// member instead).
	perTrigger := e.mode == ModeUngrouped && !e.adaptive
	sb.WriteString(spec.ViewName)
	sb.WriteByte('|')
	sb.WriteString(spec.PathString())
	sb.WriteByte('|')
	sb.WriteString(spec.Event.String())
	sb.WriteByte('|')
	sb.WriteString(abstractString(spec.Condition))
	sb.WriteByte('|')
	sb.WriteString(spec.ActionFn)
	for _, a := range spec.ActionArgs {
		sb.WriteByte(',')
		sb.WriteString(abstractString(a))
	}
	return grouping.ComposeSignature(sb.String(), perTrigger, spec.Name)
}

// abstractString renders an expression with literals replaced by "?".
func abstractString(ex xquery.Expr) string {
	if ex == nil {
		return "<none>"
	}
	s := xquery.String(ex)
	// Cheap structural abstraction: strip quoted strings and numbers.
	var sb strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '"' {
			sb.WriteByte('?')
			i++
			for i < len(s) && s[i] != '"' {
				i++
			}
			i++
			continue
		}
		if c >= '0' && c <= '9' {
			sb.WriteByte('?')
			for i < len(s) && ((s[i] >= '0' && s[i] <= '9') || s[i] == '.') {
				i++
			}
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

// Flush builds and installs the SQL triggers for all registered XML
// triggers (Figure 6's Event Pushdown → Affected-Node Graph Generation →
// Trigger Grouping → Trigger Pushdown pipeline). It is idempotent, and
// compiled per-group plans are cached across flushes: only groups whose
// membership changed since the last flush are rebuilt.
func (e *Engine) Flush() error {
	e.mu.RLock()
	dirty := e.dirty
	e.mu.RUnlock()
	if !dirty {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	if !e.dirty {
		return nil
	}
	// Installing/dropping SQL triggers mutates structures the write path
	// iterates, so DDL excludes all in-flight statements.
	unlock := e.acquireLocks(allOf(e.lockOrder), nil)
	defer unlock()

	for _, n := range e.pendingDropSQL {
		_ = e.db.DropTrigger(n)
	}
	e.pendingDropSQL = nil

	m := e.obsp.Load()
	for _, sig := range e.order {
		g := e.groups[sig]
		if g.built && !e.dirtyGroups[sig] {
			if m != nil {
				m.planHits.Inc()
			}
			continue
		}
		if m != nil {
			m.planMiss.Inc()
		}
		// Compile before dropping anything: a failed compile leaves the
		// previous plans installed and the group still dirty.
		b, err := e.compileGroup(g, g.mode)
		if err != nil {
			return fmt.Errorf("core: building trigger group %q: %w", sig, err)
		}
		if err := e.installGroup(g, b); err != nil {
			return fmt.Errorf("core: installing trigger group %q: %w", sig, err)
		}
	}
	e.dirtyGroups = map[string]bool{}
	e.recomputeReadSets()
	e.dirty = false
	return nil
}

func allOf(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

// compileGroup compiles one trigger group for the given mode without
// installing anything: no SQL triggers are created, no indexes built, no
// engine state mutated. The returned build either installs atomically
// (installGroup, under every table's write lock) or is discarded — the
// abort path of a prepared mode switch. Caller holds e.mu and the table
// locks (a MATERIALIZED compile evaluates its initial snapshot).
func (e *Engine) compileGroup(g *group, mode Mode) (*groupBuild, error) {
	g.stats.builds.Add(1)
	if mode == ModeMaterialized {
		return e.compileMaterialized(g)
	}
	b := &groupBuild{mode: mode}
	srcEvents := events.GetSrcEvents(e.db.Schema(), g.nav.Op, g.event)
	tables := map[string][]reldb.Event{}
	var tableOrder []string
	for _, te := range srcEvents {
		if _, seen := tables[te.Table]; !seen {
			tableOrder = append(tableOrder, te.Table)
		}
		tables[te.Table] = append(tables[te.Table], te.Event)
	}

	// Immutable membership snapshot shared by this build's plans: firings
	// run without the metadata lock, so they must not read g.members,
	// which CreateTrigger/DropTrigger mutate.
	members := make(map[string]*TriggerInfo, len(g.members))
	for name, ti := range g.members {
		members[name] = ti
	}

	for _, table := range tableOrder {
		plans, err := e.buildTablePlans(g, table, mode)
		if err != nil {
			return nil, err
		}
		for _, plan := range plans {
			plan.members = members
			b.plans = append(b.plans, plan)
			for _, relEv := range tables[table] {
				p := plan
				b.installs = append(b.installs, pendingTrigger{
					table: table, event: relEv, prefix: "xmlTrig", sql: plan.sqlText,
					body: func(ctx *reldb.FireContext) error { return e.fire(g, p, ctx) },
				})
			}
		}
	}
	return b, nil
}

// installGroup swaps a compiled build into the group: the old SQL
// triggers drop, the new ones install, and the group adopts the build's
// mode and plans. Runs under e.mu and every table's write lock (flush, or
// a prepared mode switch's commit), so no statement ever observes a
// half-installed group.
func (e *Engine) installGroup(g *group, b *groupBuild) error {
	for _, n := range g.sqlNames {
		_ = e.db.DropTrigger(n)
	}
	g.sqlNames = nil
	g.plans = b.plans
	g.mode = b.mode
	if b.mode != ModeMaterialized {
		// Leaving MATERIALIZED: the snapshot footprint is gone with the
		// dropped bodies.
		g.stats.snapRows.Store(0)
		g.stats.snapBytes.Store(0)
	}
	for _, p := range b.plans {
		if p.root != nil {
			e.ensureIndexes(p.root)
		}
		if p.batchRoot != nil {
			e.ensureIndexes(p.batchRoot)
		}
	}
	for _, pt := range b.installs {
		e.sqlSeq++
		name := fmt.Sprintf("%s_%d", pt.prefix, e.sqlSeq)
		if err := e.db.CreateTrigger(&reldb.SQLTrigger{
			Name: name, Table: pt.table, Event: pt.event, Body: pt.body, SQL: pt.sql,
		}); err != nil {
			return err
		}
		g.sqlNames = append(g.sqlNames, name)
	}
	g.built = true
	return nil
}

// buildTablePlans builds the affected-node graph and the plans for one
// base table: one shared plan in the grouped modes, one plan per member
// in UNGROUPED mode (a legacy UNGROUPED engine makes every trigger its
// own group, so the loop degenerates to the single-plan case; an adaptive
// engine keeps structural groups and this loop IS how a multi-member
// group runs ungrouped).
func (e *Engine) buildTablePlans(g *group, table string, mode Mode) ([]*installedPlan, error) {
	s := e.db.Schema()
	opts := affected.Options{Prune: true}
	injective := affected.InjectiveFor(g.nav.Op, table)
	if injective {
		opts.SkipValueCompare = true
	} else {
		opts.CompareCols = []int{g.nav.NodeCol}
	}

	an, err := affected.CreateANGraph(s, g.event, g.nav.Op, table, opts)
	if err != nil {
		return nil, err
	}
	layout := Layout{NewCol: an.NewCol, OldCol: an.OldCol}

	// Compile the shared condition template (abstracted constants). All
	// members of a structural group share the abstracted condition shape,
	// so the first member's condition is the template for every member.
	first := g.members[g.order[0]]
	tcc := &condCompiler{nav: g.nav, layout: layout, abstract: true}
	var template xqgm.Expr
	if first.Spec.Condition != nil {
		template, err = tcc.compile(first.Spec.Condition)
		if err != nil {
			return nil, err
		}
	}

	// GROUPED-AGG: rebuild the ANGraph with the Section 5.2 optimization
	// when it is sound (injective view, OLD_NODE content unused). The
	// layout is unchanged by these options. The unoptimized graph is kept
	// as the batch fallback: deriving old aggregates from new values and
	// one table's transition tables is only correct when that table is the
	// sole change, so commits that touched several tables evaluate the
	// plain graph instead.
	var anPlain *affected.ANGraph
	if mode == ModeGroupedAgg {
		anPlain = an
		oldContent := tcc.oldContentUsed || e.actionUsesOldContent(g, layout)
		opts.OldAggDelta = true
		if injective && !oldContent {
			opts.ElideOldXMLFrag = true
		}
		an, err = affected.CreateANGraph(s, g.event, g.nav.Op, table, opts)
		if err != nil {
			return nil, err
		}
		layout = Layout{NewCol: an.NewCol, OldCol: an.OldCol}
		tcc = &condCompiler{nav: g.nav, layout: layout, abstract: true}
		if first.Spec.Condition != nil {
			template, err = tcc.compile(first.Spec.Condition)
			if err != nil {
				return nil, err
			}
		}
		if anPlain.Root.OutWidth() != an.Root.OutWidth() {
			return nil, fmt.Errorf("core: internal error: GROUPED-AGG layout differs from plain layout")
		}
	}

	if mode == ModeUngrouped {
		// One plan per member, all sharing one ANGraph per table. A legacy
		// UNGROUPED engine makes every trigger its own group, so this loop
		// has one iteration; an adaptive engine keeps the structural group
		// and runs each member's plan separately — the paper's per-trigger
		// translation as a per-group property rather than a grouping one.
		plans := make([]*installedPlan, 0, len(g.order))
		for _, name := range g.order {
			ti := g.members[name]
			var root *xqgm.Operator = an.Root
			if template != nil {
				bound := grouping.Bind(template, ti.Consts)
				root = xqgm.NewSelect(an.Root, bound)
			}
			plan := &installedPlan{table: table, an: an, args: map[string][]xqgm.Expr{}}
			plan.root = root
			plan.trigIDsCol = -1
			plan.trigID = ti.Spec.Name
			args, err := e.compileArgs(g, ti, layout)
			if err != nil {
				return nil, err
			}
			plan.args[ti.Spec.Name] = args
			plan.sqlText = RenderSQL(root)
			plans = append(plans, plan)
		}
		return plans, nil
	}

	// GROUPED / GROUPED-AGG: constants table + shared plan.
	plan := &installedPlan{table: table, an: an, args: map[string][]xqgm.Expr{}}
	gg := grouping.NewGroup(g.sig, template, len(first.Consts))
	for _, name := range g.order {
		ti := g.members[name]
		if err := gg.Add(name, ti.Consts); err != nil {
			return nil, err
		}
	}
	gp := grouping.BuildGroupedPlan(gg, an.Root)
	plan.root = gp.Root
	plan.trigIDsCol = gp.TrigIDsCol
	if anPlain != nil {
		bp := grouping.BuildGroupedPlan(gg, anPlain.Root)
		if bp.TrigIDsCol != gp.TrigIDsCol {
			return nil, fmt.Errorf("core: internal error: batch fallback plan layout differs")
		}
		plan.batchRoot = bp.Root
		plan.batchAN = anPlain
		plan.batchSQL = RenderSQL(bp.Root)
	}
	for _, name := range g.order {
		ti := g.members[name]
		args, err := e.compileArgs(g, ti, layout)
		if err != nil {
			return nil, err
		}
		plan.args[name] = args
	}
	plan.sqlText = RenderSQL(gp.Root)
	return []*installedPlan{plan}, nil
}

// actionUsesOldContent reports whether any member's action arguments read
// OLD_NODE content.
func (e *Engine) actionUsesOldContent(g *group, layout Layout) bool {
	for _, name := range g.order {
		ti := g.members[name]
		cc := &condCompiler{nav: g.nav, layout: layout}
		for _, a := range ti.Spec.ActionArgs {
			if _, err := cc.compile(a); err != nil {
				return true // be conservative on compile errors
			}
		}
		if cc.oldContentUsed {
			return true
		}
	}
	return false
}

// compileArgs compiles a member's action arguments (concrete constants).
func (e *Engine) compileArgs(g *group, ti *TriggerInfo, layout Layout) ([]xqgm.Expr, error) {
	cc := &condCompiler{nav: g.nav, layout: layout}
	out := make([]xqgm.Expr, len(ti.Spec.ActionArgs))
	for i, a := range ti.Spec.ActionArgs {
		ce, err := cc.compile(a)
		if err != nil {
			return nil, err
		}
		out[i] = ce
	}
	return out, nil
}

// fire is the body of an installed SQL trigger: evaluate the plan over the
// transition tables, tag results, and activate the member triggers.
//
// Batched firings (Tx.Commit) evaluate the plan once per commit with the
// transaction's net deltas for every touched table, so N statements on a
// table cost one plan evaluation instead of N. Because each touched
// table's plan seeds affected keys from its own transition tables, plans
// of the same group can discover the same affected node when a commit
// touched several tables; the per-commit activation set dedups those.
func (e *Engine) fire(g *group, plan *installedPlan, ctx *reldb.FireContext) error {
	if ctx.Batch != nil {
		if ctx.Batch.Silent {
			// A silent data movement (shard rebalancing): the deltas are
			// placement artifacts, not logical changes. Translated plans are
			// stateless across firings, so skipping the evaluation outright
			// stages nothing and leaves nothing stale.
			return nil
		}
		return e.fireBatch(g, plan, ctx)
	}
	e.fires.Add(1)
	g.stats.fires.Add(1)
	g.stats.deltaRows.Add(int64(len(ctx.Inserted) + len(ctx.Deleted)))
	start := time.Now()                                             //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
	defer func() { g.stats.evalNS.Add(int64(time.Since(start))) }() //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
	if m := e.obsp.Load(); m != nil {
		defer m.fire.Since(time.Now())
	}
	deltas := map[string]*xqgm.Transition{
		ctx.Table: {Inserted: ctx.Inserted, Deleted: ctx.Deleted},
	}
	return e.activate(g, plan, plan.root, plan.an, deltas, ctx)
}

// fireBatch runs the plan once for a whole committed transaction.
// plan.lastBatch is only touched here, while the committing goroutine
// holds the plan's table write lock (a plan fires only from statements on
// its own table, so concurrent disjoint BatchTables commits touch
// disjoint plans). The per-commit activation dedup state rides on the
// commit's BatchInfo, so its lifetime is exactly the commit's.
func (e *Engine) fireBatch(g *group, plan *installedPlan, ctx *reldb.FireContext) error {
	if plan.lastBatch == ctx.Batch.Seq {
		return nil // another event of the same commit already ran this plan
	}
	plan.lastBatch = ctx.Batch.Seq
	e.fires.Add(1)
	g.stats.fires.Add(1)
	for _, nd := range ctx.Batch.Deltas {
		g.stats.deltaRows.Add(int64(len(nd.Inserted) + len(nd.Deleted)))
	}
	start := time.Now()                                             //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
	defer func() { g.stats.evalNS.Add(int64(time.Since(start))) }() //quark:clock planner calibration input: evalNS feeds the cost model, never delivered bytes
	if m := e.obsp.Load(); m != nil {
		defer m.fire.Since(time.Now())
		if psp, ok := ctx.Batch.Obs.(*obs.Span); ok && psp != nil {
			sp := psp.Child("eval")
			sp.SetAttr("tables", fmt.Sprint(len(ctx.Batch.Deltas)))
			defer sp.End()
		}
	}
	deltas := make(map[string]*xqgm.Transition, len(ctx.Batch.Deltas))
	for t, nd := range ctx.Batch.Deltas {
		deltas[t] = &xqgm.Transition{Inserted: nd.Inserted, Deleted: nd.Deleted}
	}
	root, an := plan.root, plan.an
	if len(deltas) > 1 && plan.batchRoot != nil {
		root, an = plan.batchRoot, plan.batchAN
	}
	return e.activate(g, plan, root, an, deltas, ctx)
}

// activate evaluates a trigger plan and invokes — or, in a prepare-phase
// staging pass, stages — the member actions. Batched firings dedup
// activations across the plans of one commit via the batch state riding
// on ctx.Batch.
func (e *Engine) activate(g *group, plan *installedPlan, root *xqgm.Operator, an *affected.ANGraph, deltas map[string]*xqgm.Transition, ctx *reldb.FireContext) error {
	var seen map[string]bool
	if ctx.Batch != nil {
		seen = batchStateOf(ctx.Batch).seen
	}
	ectx := xqgm.NewEvalContext(e.db, deltas)
	rows, err := ectx.Eval(root)
	if err != nil {
		return err
	}
	if sh := e.shadow.Load(); sh != nil {
		sqlText := plan.sqlText
		if root == plan.batchRoot {
			sqlText = plan.batchSQL
		}
		// Materialized-view bodies carry no rendered SQL; nothing to mirror.
		if sqlText != "" {
			if err := (*sh).VerifyPlan(plan.table, sqlText, deltas, rows); err != nil {
				return fmt.Errorf("core: plan shadow: %w", err)
			}
		}
	}
	if len(rows) == 0 {
		return nil
	}
	// Sorted activation (the ORDER BY of Figure 16): by TrigIDs then by
	// the affected key.
	sort.SliceStable(rows, func(i, j int) bool {
		if plan.trigIDsCol >= 0 {
			a, b := rows[i][plan.trigIDsCol].AsString(), rows[j][plan.trigIDsCol].AsString()
			if a != b {
				return a < b
			}
		}
		return xdm.TupleKey(rows[i]) < xdm.TupleKey(rows[j])
	})
	for _, row := range rows {
		var ids []string
		if plan.trigIDsCol >= 0 {
			ids = grouping.SplitTriggerIDs(row[plan.trigIDsCol])
		} else {
			ids = []string{plan.trigID}
		}
		oldNode := row[an.OldCol(g.nav.NodeCol)].AsNode()
		newNode := row[an.NewCol(g.nav.NodeCol)].AsNode()
		for _, id := range ids {
			ti, ok := plan.members[id]
			if !ok {
				continue
			}
			if seen != nil {
				k := activationKey(g, an, row, id)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			argExprs := plan.args[id]
			args := make([]xdm.Value, len(argExprs))
			env := &xqgm.Env{In: [2][]xdm.Value{row, nil}}
			for i, ae := range argExprs {
				v, err := ae.Eval(env)
				if err != nil {
					return err
				}
				args[i] = v
			}
			g.stats.activations.Add(1)
			if err := e.stageOrDeliver(ctx, ti.Spec.ActionFn, Invocation{
				Trigger: id,
				Event:   g.event,
				Old:     oldNode,
				New:     newNode,
				Args:    args,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// activationKey identifies one (trigger, affected node) activation within
// a commit: the member plus the node's canonical key on both sides.
func activationKey(g *group, an *affected.ANGraph, row xqgm.Tuple, id string) string {
	ks := make([]xdm.Value, 0, 2*len(g.nav.KeyCols))
	for _, kc := range g.nav.KeyCols {
		ks = append(ks, row[an.NewCol(kc)])
	}
	for _, kc := range g.nav.KeyCols {
		ks = append(ks, row[an.OldCol(kc)])
	}
	return g.sig + "\x00" + id + "\x00" + xdm.TupleKey(ks)
}

// ensureIndexes creates hash indexes on base-table columns used as
// equi-join keys anywhere in the plan ("appropriate indices on the key
// columns and other join columns", Section 6.1).
func (e *Engine) ensureIndexes(root *xqgm.Operator) {
	xqgm.Walk(root, func(o *xqgm.Operator) {
		if o.Type != xqgm.OpJoin {
			return
		}
		for _, eq := range o.On {
			e.indexIfBase(o.Inputs[0], eq.L)
			e.indexIfBase(o.Inputs[1], eq.R)
		}
	})
}

func (e *Engine) indexIfBase(op *xqgm.Operator, col int) {
	switch op.Type {
	case xqgm.OpTable:
		if op.Source == xqgm.SrcBase || op.Source == xqgm.SrcOld {
			if col >= 0 && col < len(op.Names) {
				_ = e.db.CreateIndex(op.Table, op.Names[col])
			}
		}
	case xqgm.OpSelect, xqgm.OpOrderBy:
		e.indexIfBase(op.Inputs[0], col)
	case xqgm.OpProject:
		if col < len(op.Projs) {
			if cr, ok := op.Projs[col].E.(*xqgm.ColRef); ok && cr.Input == 0 {
				e.indexIfBase(op.Inputs[0], cr.Col)
			}
		}
	}
}

// Stats returns engine counters, including the async dispatcher's queue
// counters when async dispatch is enabled.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	st := Stats{
		XMLTriggers: len(e.triggers),
		SQLTriggers: e.db.TriggerCount(),
		Groups:      len(e.groups),
		Fires:       e.fires.Load(),
		Actions:     e.actsRun.Load(),
	}
	e.mu.RUnlock()
	st.DB = e.db.Stats()
	if d := e.dispatcher.Load(); d != nil {
		st.Async = true
		st.Dispatch = d.Stats()
	}
	if ob := e.ob.Load(); ob != nil {
		st.Outbox = true
		st.OutboxLog = ob.log.Stats()
	}
	st.PerGroup = e.GroupStats()
	return st
}

// SQLTexts returns the rendered SQL of all installed plans, keyed by group
// signature and table (for inspection, like Figure 16).
func (e *Engine) SQLTexts() map[string]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := map[string]string{}
	for sig, g := range e.groups {
		for _, p := range g.plans {
			out[sig+"/"+p.table] = p.sqlText
		}
	}
	return out
}

// --- statement helpers: auto-flush, lock the statement's table
// footprint, then delegate to the database ---

// Insert flushes pending trigger builds and inserts rows.
func (e *Engine) Insert(table string, rows ...reldb.Row) error {
	if err := e.Flush(); err != nil {
		return err
	}
	unlock := e.lockForWrite(table)
	defer unlock()
	return e.db.Insert(table, rows...)
}

// Update flushes pending trigger builds and updates rows.
func (e *Engine) Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error) {
	if err := e.Flush(); err != nil {
		return 0, err
	}
	unlock := e.lockForWrite(table)
	defer unlock()
	return e.db.Update(table, pred, set)
}

// UpdateByPK flushes pending trigger builds and updates one row.
func (e *Engine) UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error) {
	if err := e.Flush(); err != nil {
		return false, err
	}
	unlock := e.lockForWrite(table)
	defer unlock()
	return e.db.UpdateByPK(table, key, set)
}

// Delete flushes pending trigger builds and deletes rows.
func (e *Engine) Delete(table string, pred func(reldb.Row) bool) (int, error) {
	if err := e.Flush(); err != nil {
		return 0, err
	}
	unlock := e.lockForWrite(table)
	defer unlock()
	return e.db.Delete(table, pred)
}

// DeleteByPK flushes pending trigger builds and deletes one row.
func (e *Engine) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	if err := e.Flush(); err != nil {
		return false, err
	}
	unlock := e.lockForWrite(table)
	defer unlock()
	return e.db.DeleteByPK(table, key...)
}

// GetByPK reads one row under the table's read lock and returns a copy,
// so the caller never holds a reference into live storage. It exists for
// coordinators (the shard router) that must inspect a row's current value
// before deciding where a statement belongs.
func (e *Engine) GetByPK(table string, key ...xdm.Value) (reldb.Row, bool, error) {
	e.mu.RLock()
	if _, ok := e.tableLocks[table]; !ok {
		e.mu.RUnlock()
		return nil, false, fmt.Errorf("core: unknown table %q", table)
	}
	unlock := e.acquireLocks(nil, map[string]bool{table: true})
	e.mu.RUnlock()
	defer unlock()
	r, found, err := e.db.GetByPK(table, key...)
	if err != nil || !found {
		return nil, found, err
	}
	return r.Copy(), true, nil
}

// Batch runs fn inside a batched update transaction: every mutation made
// through the Tx applies immediately, but the translated SQL triggers
// fire once per (table, event) at commit with the merged transition
// tables — N statements cost one trigger activation wave instead of N.
// If fn returns an error the transaction is rolled back and no triggers
// fire. The whole batch runs under write locks on all tables (its write
// footprint is unknown up front); fn must not call back into the engine.
func (e *Engine) Batch(fn func(*reldb.Tx) error) error {
	h, err := e.BeginBatch()
	if err != nil {
		return err
	}
	return h.Run(fn)
}

// BatchHandle is an open batched transaction whose lifetime the caller
// controls: BeginBatch locks and begins, the caller applies mutations
// through Tx, and Commit (fire the merged deltas) or Rollback finishes it
// and releases the locks. It exists for coordinators that interleave the
// statements of several engines inside one logical transaction — the
// sharded engine opens one handle per shard and commits them in shard
// order — where the callback shape of Batch cannot express the control
// flow. Handles are not safe for concurrent use.
type BatchHandle struct {
	e        *Engine
	tx       *reldb.Tx
	unlock   func()
	done     bool
	prepared bool
	// span is the handle's root trace ("tx"), non-nil only with
	// observability attached; Prepare/Commit/Rollback open phase children
	// and the commit's delivery wave nests its outbox append under it.
	span *obs.Span
}

// BeginBatch flushes pending trigger builds, write-locks every table, and
// begins a batched transaction. The caller must finish the handle with
// Commit or Rollback (or Run), or the engine stays locked.
func (e *Engine) BeginBatch() (*BatchHandle, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	unlock := e.lockAllForWrite()
	h := &BatchHandle{e: e, tx: e.db.Begin(), unlock: unlock}
	if m := e.obsp.Load(); m != nil {
		h.span = m.reg.StartSpan("tx")
	}
	return h, nil
}

// AttachSpan replaces the handle's trace span with sp — a fleet
// coordinator (the sharded engine) passes a child of its own distributed-
// transaction root so every shard's prepare/commit/abort phases nest
// under one tree. The handle ends sp at Commit/Rollback but never retains
// it; retaining the root is the coordinator's job. Passing nil disables
// tracing for this handle.
func (h *BatchHandle) AttachSpan(sp *obs.Span) { h.span = sp }

// Tx returns the handle's transaction for applying mutations.
func (h *BatchHandle) Tx() *reldb.Tx { return h.tx }

// SetSilent marks the handle's transaction as a silent data movement
// (see reldb.Tx.SetSilent): prepare still computes net deltas and lets
// stateful trigger bodies refresh themselves (a materialized view's diff
// baseline), but no trigger activates and nothing is staged or
// delivered. The sharded engine's rebalancer sets it on the donor and
// recipient handles of a group migration — physically moved rows are not
// logical data changes. Must be called before Prepare.
func (h *BatchHandle) SetSilent() error {
	return h.tx.SetSilent()
}

// Engine returns the engine the handle belongs to.
func (h *BatchHandle) Engine() *Engine { return h.e }

// Prepare runs the transaction's prepare phase without finishing the
// handle: the merged net deltas are computed, trigger conditions evaluate,
// and the resulting invocation set is staged (nothing is delivered). Any
// error — evaluation, cascade, or the engine's prepare check — leaves the
// handle open so the caller can Rollback, which is what lets a
// coordinator prepare every participant before committing any of them.
// Prepare on an already-prepared handle is a no-op; locks stay held until
// Commit or Rollback.
func (h *BatchHandle) Prepare() error {
	if h.done {
		return fmt.Errorf("core: batch already finished")
	}
	if h.prepared {
		return nil
	}
	sp := h.span.Child("prepare")
	if h.span != nil {
		// Thread the prepare span to the firing waves (reldb copies the
		// token onto the BatchInfo), so each group's trigger evaluation
		// traces as an "eval" child of this prepare.
		h.tx.SetObsToken(sp)
	}
	if err := h.tx.Prepare(); err != nil {
		sp.SetAttr("err", err.Error())
		sp.End()
		return err
	}
	if h.span != nil {
		if b := h.tx.Staged(); b != nil {
			if st, ok := b.EngineState.(*batchState); ok {
				sp.SetAttr("staged", fmt.Sprint(len(st.staged)))
			}
		}
	}
	if chk := h.e.prepCheck.Load(); chk != nil {
		if err := (*chk)(h.e.stagedInvocations(h.tx.Staged())); err != nil {
			sp.SetAttr("err", err.Error())
			sp.End()
			return err
		}
	}
	sp.End()
	h.prepared = true
	return nil
}

// Commit finishes the handle: an unprepared handle prepares first — and a
// prepare-phase error rolls the transaction back all-or-nothing, since
// nothing was delivered yet — then the staged deliveries run (delivery
// errors surface but the applied state stands, AFTER-trigger style) and
// the locks release.
func (h *BatchHandle) Commit() error {
	if h.done {
		return fmt.Errorf("core: batch already finished")
	}
	if err := h.Prepare(); err != nil {
		_ = h.Rollback()
		return err
	}
	h.done = true
	defer h.unlock()
	sp := h.span.Child("commit")
	if h.span != nil {
		// Hand the commit span to the delivery wave (if any trigger staged
		// one): the group-commit outbox append and synchronous deliveries
		// trace as its children.
		if b := h.tx.Staged(); b != nil {
			if st, ok := b.EngineState.(*batchState); ok && st.wave != nil {
				st.wave.span = sp
			}
		}
	}
	err := h.tx.Commit()
	if err != nil {
		sp.SetAttr("err", err.Error())
	}
	sp.End()
	h.span.End()
	return err
}

// Rollback undoes the transaction's mutations (no triggers fire) and
// releases the locks.
func (h *BatchHandle) Rollback() error {
	if h.done {
		return fmt.Errorf("core: batch already finished")
	}
	h.done = true
	defer h.unlock()
	err := h.tx.Rollback()
	sp := h.span.Child("abort")
	if err != nil {
		sp.SetAttr("err", err.Error())
	}
	sp.End()
	h.span.End()
	return err
}

// Run drives fn to commit or rollback with the panic safety of Batch.
func (h *BatchHandle) Run(fn func(*reldb.Tx) error) error {
	finished := false
	defer func() {
		if !finished {
			_ = h.Rollback()
		}
	}()
	if err := fn(h.tx); err != nil {
		finished = true
		if rbErr := h.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback failed: %v)", err, rbErr)
		}
		return err
	}
	finished = true
	return h.Commit()
}

// BatchTables runs fn like Batch, but write-locks only the declared table
// footprint (plus the tables the declared tables' installed triggers and
// foreign-key checks read), so batches with disjoint footprints run
// concurrently. The transaction is restricted to the declared tables: a
// mutation of an undeclared table fails with reldb.ErrUndeclaredTable,
// and the engine escalates — the declared-footprint attempt rolls back
// (nothing from it survives) and fn re-runs under Batch's all-table
// lock. Escalation is a restart, never a mid-flight lock upgrade: the
// declared locks release before the full set is acquired in global
// lockOrder, so two escalating batches cannot deadlock against each
// other. fn must therefore be safe to re-run from scratch, which every
// pure mutation callback is. Triggers installed on the declared tables
// still fire at commit exactly as with Batch.
func (e *Engine) BatchTables(tables []string, fn func(*reldb.Tx) error) error {
	h, err := e.BeginBatchTables(tables)
	if err != nil {
		return err
	}
	finished := false
	defer func() {
		if !finished {
			_ = h.Rollback()
		}
	}()
	err = fn(h.tx)
	if h.tx.NeedsEscalation() {
		// The declared footprint was too small. The handle's mutations are
		// partial (the undeclared statement was refused), so the whole
		// attempt rolls back and the batch restarts with every table
		// locked. Checked on the handle, not on fn's error: a callback
		// that swallowed the refusal and returned nil must not commit its
		// partial declared-table mutations.
		finished = true
		if rbErr := h.Rollback(); rbErr != nil {
			return fmt.Errorf("core: lock escalation rollback failed: %w", rbErr)
		}
		return e.Batch(fn)
	}
	if err != nil {
		finished = true
		if rbErr := h.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback failed: %v)", err, rbErr)
		}
		return err
	}
	finished = true
	return h.Commit()
}

// BeginBatchTables is BeginBatch with a declared footprint: only the
// listed tables are write-locked (plus their installed triggers' and
// foreign-key checks' read sets), and the transaction is restricted to
// them, so handles with disjoint footprints run concurrently.
func (e *Engine) BeginBatchTables(tables []string) (*BatchHandle, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	write := map[string]bool{}
	for _, t := range tables {
		if _, ok := e.tableLocks[t]; !ok {
			e.mu.RUnlock()
			return nil, fmt.Errorf("core: unknown table %q", t)
		}
		write[t] = true
	}
	unlock := e.acquireLocks(write, e.readFootprint(write))
	e.mu.RUnlock()
	tx := e.db.Begin()
	tx.Restrict(tables)
	h := &BatchHandle{e: e, tx: tx, unlock: unlock}
	if m := e.obsp.Load(); m != nil {
		h.span = m.reg.StartSpan("tx")
	}
	return h, nil
}

// EvalView materializes a registered view (for inspection/examples). It
// read-locks only the tables the view reads, so concurrent readers never
// serialize behind each other, nor behind writers on unrelated tables.
func (e *Engine) EvalView(name string) (*xdm.Node, error) {
	e.mu.RLock()
	v, ok := e.comp.View(name)
	if !ok {
		e.mu.RUnlock()
		return nil, fmt.Errorf("core: unknown view %q", name)
	}
	read := allOf(xqgm.Tables(v.Root))
	unlock := e.acquireLocks(nil, read)
	e.mu.RUnlock()
	defer unlock()
	ectx := xqgm.NewEvalContext(e.db, nil)
	rows, err := ectx.Eval(v.Root)
	if err != nil {
		return nil, err
	}
	if len(rows) != 1 {
		return nil, fmt.Errorf("core: view %q produced %d rows", name, len(rows))
	}
	return rows[0][v.Nav.NodeCol].AsNode(), nil
}
