package core

import (
	"quark/internal/obs"
)

// engineObs holds the engine's resolved metric handles. The pointer held
// in Engine.obsp is nil while observability is disabled, so every
// instrumented path pays one atomic load and a branch — no clock reads,
// no map lookups.
type engineObs struct {
	reg      *obs.Registry
	fire     *obs.Histogram // quark_core_fire_ns: one trigger-plan evaluation + activation wave
	planHits *obs.Counter   // quark_core_plan_cache_hits_total: groups reused across Flush
	planMiss *obs.Counter   // quark_core_plan_cache_misses_total: groups (re)compiled at Flush
	sink     *obs.Histogram // quark_outbox_sink_ns: one durable delivery (sink or action) incl. ack
}

// EnableObs attaches a metrics registry to the engine: trigger firing
// latency, plan-cache hit/miss counters, sink delivery latency, the
// relational layer's statement/prepare/commit histograms (DB.AttachObs),
// and commit span traces on every BatchHandle. Counter totals
// (quark_core_fires_total, quark_core_actions_total) are exported as
// snapshot-time collectors over the engine's existing atomics. Passing
// nil detaches. Idempotent; not safe to race with in-flight statements —
// call it at setup time, like EnableAsyncDispatch.
func (e *Engine) EnableObs(reg *obs.Registry) { e.enableObs(reg, true) }

// enableObs is EnableObs with the counter collectors optional: a fleet
// coordinator (the sharded engine) attaches many engines to ONE registry,
// and same-name collectors would shadow each other, so it suppresses the
// per-engine registration and exports fleet-wide sums itself. Histograms
// need no such care — shards recording into one shared histogram IS the
// fleet aggregate.
func (e *Engine) enableObs(reg *obs.Registry, registerFuncs bool) {
	if reg == nil {
		e.obsp.Store(nil)
		e.db.AttachObs(nil)
		if d := e.dispatcher.Load(); d != nil {
			d.AttachObs(nil)
		}
		if ob := e.ob.Load(); ob != nil {
			ob.log.AttachObs(nil)
		}
		return
	}
	m := &engineObs{
		reg:      reg,
		fire:     reg.Histogram("quark_core_fire_ns", nil),
		planHits: reg.Counter("quark_core_plan_cache_hits_total"),
		planMiss: reg.Counter("quark_core_plan_cache_misses_total"),
		sink:     reg.Histogram("quark_outbox_sink_ns", nil),
	}
	e.obsp.Store(m)
	e.db.AttachObs(reg)
	// Layers enabled before observability attach now; layers enabled
	// after pick the registry up in their Enable* call.
	if d := e.dispatcher.Load(); d != nil {
		d.AttachObs(reg)
	}
	if ob := e.ob.Load(); ob != nil {
		ob.log.AttachObs(reg)
	}
	if registerFuncs {
		reg.GaugeFunc("quark_core_materialized_bytes", func() int64 {
			var t int64
			for _, gs := range e.GroupStats() {
				t += gs.SnapshotBytes
			}
			return t
		})
		reg.GaugeFunc("quark_core_materialized_groups", func() int64 {
			var t int64
			for _, gs := range e.GroupStats() {
				if gs.Mode == ModeMaterialized {
					t++
				}
			}
			return t
		})
		reg.Func("quark_core_fires_total", func() int64 { return e.fires.Load() })
		reg.Func("quark_core_actions_total", func() int64 { return e.actsRun.Load() })
		reg.Func("quark_reldb_statements_total", func() int64 { return e.db.Stats().Statements })
		reg.Func("quark_reldb_trigger_fires_total", func() int64 { return e.db.Stats().TriggerFires })
		reg.Func("quark_reldb_full_scans_total", func() int64 { return e.db.Stats().FullScans })
		reg.Func("quark_reldb_index_lookups_total", func() int64 { return e.db.Stats().IndexLookups })
		reg.Func("quark_reldb_rows_read_total", func() int64 { return e.db.Stats().RowsRead })
	}
}

// EnableObsShared is EnableObs for fleet members sharing ONE registry
// with their siblings (the sharded engine): histograms and span traces
// record normally — same-name series aggregate fleet-wide — but the
// per-engine counter collectors are suppressed, because N shards
// registering the same collector name would shadow each other. The fleet
// coordinator exports the summed totals itself.
func (e *Engine) EnableObsShared(reg *obs.Registry) { e.enableObs(reg, false) }

// ObsRegistry returns the attached registry (nil when disabled).
func (e *Engine) ObsRegistry() *obs.Registry {
	if m := e.obsp.Load(); m != nil {
		return m.reg
	}
	return nil
}

// EngineSnapshot is the unified cross-layer observability snapshot:
// the engine's structural counters (Stats, which already folds in the
// relational layer's scan/lookup counters, the dispatcher's queue
// counters, and the outbox watermarks) plus the attached registry's
// metrics, histograms, and recent events.
type EngineSnapshot struct {
	Stats Stats        `json:"stats"`
	Obs   obs.Snapshot `json:"obs"`
}

// Snapshot captures the engine and its registry in one call. With
// observability disabled the Obs half is empty but Stats is still live.
func (e *Engine) Snapshot() EngineSnapshot {
	var reg *obs.Registry
	if m := e.obsp.Load(); m != nil {
		reg = m.reg
	}
	return EngineSnapshot{Stats: e.Stats(), Obs: reg.Snapshot()}
}
