package core

import (
	"fmt"
	"sort"

	"quark/internal/xqgm"
)

// This file is the engine's adaptive-mode surface: per-group translation
// modes as a runtime property, with abort-safe migration between them.
//
// The paper fixes the translation strategy per system (Section 6 compares
// UNGROUPED, GROUPED, GROUPED-AGG, and the MATERIALIZED strawman as four
// engines). An adaptive engine instead treats the engine-global mode as
// nothing but the default seed for new groups and lets a cost-based
// policy (internal/planner) re-pick each group's mode from its live
// groupStats — including mid-workload. The migration protocol reuses the
// silent-transaction machinery built for shard rebalancing: a mode
// switch is a silent batch that compiles the new plans (evaluating the
// materialized snapshot if the target mode needs one) while every table
// is write-locked, then either installs everything atomically (Commit)
// or discards the build leaving the engine byte-identical (Abort).

// ModePolicy decides, from the live per-group statistics, which
// translation mode every group should run. Decide returns the target
// mode per group signature; omitted signatures keep their current mode.
// Implementations must be deterministic in their input — Replan calls
// Decide on every shard-stat refresh, and the sharded engine requires
// all shards to agree.
type ModePolicy interface {
	Decide(stats []GroupStat) map[string]Mode
}

// GroupStat is one trigger group's row in Stats.PerGroup and the
// planner's cost-model input. Counters are cumulative since engine
// start and survive rebuilds and mode switches.
type GroupStat struct {
	Sig      string `json:"sig"`
	Mode     Mode   `json:"mode"`
	ModeName string `json:"mode_name"`
	Members  int    `json:"members"`

	Fires       int64 `json:"fires"`       // plan/body evaluations
	EvalNS      int64 `json:"eval_ns"`     // wall time spent evaluating
	DeltaRows   int64 `json:"delta_rows"`  // transition rows seen
	Activations int64 `json:"activations"` // member activations delivered/staged
	Builds      int64 `json:"builds"`      // plan (re)compilations

	// Measured materialized footprint (0 while the group is translated).
	SnapshotRows  int64 `json:"snapshot_rows"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Estimated footprint were the group MATERIALIZED now, derived from
	// base-table row counts and the view's output width. The planner's
	// memory budget is checked against the measured number when present
	// and this estimate otherwise.
	EstSnapshotRows  int64 `json:"est_snapshot_rows"`
	EstSnapshotBytes int64 `json:"est_snapshot_bytes"`
}

// SetModePolicy switches the engine into adaptive mode and installs the
// policy Replan consults (nil is allowed: adaptive grouping with manual
// SetGroupMode control only). Adaptive mode makes trigger-group
// signatures structural in every translation mode — a group's mode
// becomes a mutable property instead of part of its identity — so it
// must be set before any trigger is registered.
func (e *Engine) SetModePolicy(p ModePolicy) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.triggers) > 0 && !e.adaptive {
		return fmt.Errorf("core: SetModePolicy after triggers are registered (grouping signatures are already fixed)")
	}
	e.adaptive = true
	e.policy = p
	return nil
}

// Adaptive reports whether per-group modes are enabled (SetModePolicy).
func (e *Engine) Adaptive() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.adaptive
}

// SeedGroupMode pre-assigns a mode to a group signature. A group that
// already exists is re-targeted (it rebuilds at the next flush); a group
// that does not exist yet adopts the mode at creation. The shard layer
// uses the seeding half for restart adoption: persisted planner
// decisions replay before the application re-registers its triggers.
func (e *Engine) SeedGroupMode(sig string, m Mode) error {
	if m > ModeMaterialized {
		return fmt.Errorf("core: unknown mode %d", m)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.seedModes == nil {
		e.seedModes = map[string]Mode{}
	}
	e.seedModes[sig] = m
	if g, ok := e.groups[sig]; ok && g.mode != m {
		g.mode = m
		e.dirty = true
		e.dirtyGroups[sig] = true
	}
	return nil
}

// SeededModes returns the seed-mode map (for fleet replication: Grow
// replays it onto new shards). The returned map is a copy.
func (e *Engine) SeededModes() map[string]Mode {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]Mode, len(e.seedModes))
	for sig, m := range e.seedModes {
		out[sig] = m
	}
	return out
}

// GroupSigs returns all trigger-group signatures, sorted.
func (e *Engine) GroupSigs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := append([]string(nil), e.order...)
	sort.Strings(out)
	return out
}

// GroupMode returns the group's current translation mode.
func (e *Engine) GroupMode(sig string) (Mode, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	g, ok := e.groups[sig]
	if !ok {
		return 0, false
	}
	return g.mode, true
}

// GroupStats samples every group's counters plus a size estimate for
// materializing it. The estimate reads base-table row counts under read
// locks (RowCount is not synchronized against writers), acquired in
// global lockOrder like every other lock path.
func (e *Engine) GroupStats() []GroupStat {
	type pending struct {
		idx    int
		tables []string
		width  int
	}
	e.mu.RLock()
	stats := make([]GroupStat, 0, len(e.order))
	var est []pending
	for _, sig := range e.order {
		g := e.groups[sig]
		gs := GroupStat{
			Sig:           sig,
			Mode:          g.mode,
			ModeName:      g.mode.String(),
			Members:       len(g.members),
			Fires:         g.stats.fires.Load(),
			EvalNS:        g.stats.evalNS.Load(),
			DeltaRows:     g.stats.deltaRows.Load(),
			Activations:   g.stats.activations.Load(),
			Builds:        g.stats.builds.Load(),
			SnapshotRows:  g.stats.snapRows.Load(),
			SnapshotBytes: g.stats.snapBytes.Load(),
		}
		est = append(est, pending{idx: len(stats), tables: xqgm.Tables(g.nav.Op), width: g.nav.Op.OutWidth()})
		stats = append(stats, gs)
	}
	unlock := e.acquireLocks(nil, allOf(e.lockOrder))
	e.mu.RUnlock()
	for _, p := range est {
		// The view's cardinality is bounded by a join over its base
		// tables; the largest base table is a cheap, monotone proxy that
		// needs no evaluation. Precision matters less than ordering
		// groups consistently by size.
		var rows int64
		for _, t := range p.tables {
			if n := int64(e.db.RowCount(t)); n > rows {
				rows = n
			}
		}
		stats[p.idx].EstSnapshotRows = rows
		stats[p.idx].EstSnapshotBytes = rows * int64(p.width) * bytesPerValue
	}
	unlock()
	return stats
}

// ModeChange records one group's mode transition for callers and events.
type ModeChange struct {
	Sig      string `json:"sig"`
	From, To Mode   `json:"-"`
	FromName string `json:"from"`
	ToName   string `json:"to"`
}

// ModeSwitch is a prepared, not-yet-installed mode migration: the new
// plans are compiled (including any materialized snapshots, evaluated
// while the switch's silent transaction holds every table's write lock)
// but nothing is installed. Commit installs everything atomically
// against the plan cache; Abort discards the builds and leaves the
// engine byte-identical — no SQL trigger, index, snapshot, or counter
// visible to queries has changed. The sharded engine prepares one
// ModeSwitch per shard and commits them in its two-phase step.
type ModeSwitch struct {
	e       *Engine
	h       *BatchHandle
	builds  map[string]*groupBuild
	changes []ModeChange
	seeds   map[string]Mode
	done    bool
}

// PrepareGroupModes compiles the plan builds that would move each listed
// group to its target mode. Groups already in their target mode are
// skipped; signatures with no live group become seed modes at Commit
// (restart adoption). On error everything compiled so far is discarded
// and the engine is untouched.
//
// Lock protocol: the engine's global order is the metadata lock before
// table locks (every statement path acquires its table footprint while
// holding e.mu), so the switch takes e.mu first, then write-locks every
// table — and HOLDS BOTH until Commit or Abort. The window is exactly a
// Flush's critical section stretched across the two-phase step: the data
// the prepared snapshots saw cannot change, no trigger can register, and
// a fleet coordinator can prepare every shard before committing any.
func (e *Engine) PrepareGroupModes(target map[string]Mode) (*ModeSwitch, error) {
	for sig, m := range target { //quark:sorted validation only: any order rejects the same bad entry set
		if m > ModeMaterialized {
			return nil, fmt.Errorf("core: unknown mode %d for group %q", m, sig)
		}
	}
	e.mu.Lock()
	if err := e.flushLocked(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	unlock := e.acquireLocks(allOf(e.lockOrder), nil)
	h := &BatchHandle{e: e, tx: e.db.Begin(), unlock: unlock}
	if m := e.obsp.Load(); m != nil {
		h.span = m.reg.StartSpan("modeswitch")
	}
	abort := func() {
		_ = h.Rollback()
		e.mu.Unlock()
	}
	if err := h.SetSilent(); err != nil {
		abort()
		return nil, err
	}
	sw := &ModeSwitch{e: e, h: h, builds: map[string]*groupBuild{}, seeds: map[string]Mode{}}
	sigs := make([]string, 0, len(target))
	for sig := range target {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		m := target[sig]
		g, ok := e.groups[sig]
		if !ok {
			sw.seeds[sig] = m
			continue
		}
		if g.mode == m {
			continue
		}
		b, err := e.compileGroup(g, m)
		if err != nil {
			abort()
			return nil, fmt.Errorf("core: preparing mode switch of group %q to %s: %w", sig, m, err)
		}
		sw.builds[sig] = b
		sw.changes = append(sw.changes, ModeChange{
			Sig: sig, From: g.mode, To: m,
			FromName: g.mode.String(), ToName: m.String(),
		})
	}
	return sw, nil
}

// Changes lists the transitions this switch will install (empty when
// every target was already current).
func (sw *ModeSwitch) Changes() []ModeChange { return sw.changes }

// Commit installs the prepared builds atomically: old SQL triggers drop,
// new ones install, the groups adopt their new modes, and the read-set
// tables recompute — all under the metadata and table locks the prepare
// has been holding, then the silent transaction commits (firing
// nothing) and everything releases. Seed-only signatures land in the
// seed map. The prepare's locks guarantee the groups are exactly as
// compiled: no trigger registered or dropped in between.
func (sw *ModeSwitch) Commit() error {
	if sw.done {
		return fmt.Errorf("core: mode switch already finished")
	}
	sw.done = true
	e := sw.e
	defer e.mu.Unlock()
	if len(sw.seeds) > 0 && e.seedModes == nil {
		e.seedModes = map[string]Mode{}
	}
	for sig, m := range sw.seeds {
		e.seedModes[sig] = m
	}
	sigs := make([]string, 0, len(sw.builds))
	for sig := range sw.builds {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		b := sw.builds[sig]
		g, ok := e.groups[sig]
		if !ok {
			continue // unreachable under the held locks; defensive
		}
		if err := e.installGroup(g, b); err != nil {
			_ = sw.h.Rollback()
			return fmt.Errorf("core: installing mode switch of group %q: %w", sig, err)
		}
	}
	e.recomputeReadSets()
	if err := sw.h.Commit(); err != nil {
		return err
	}
	if m := e.obsp.Load(); m != nil {
		for _, c := range sw.changes {
			m.reg.Emit("mode.switch", map[string]string{
				"sig": c.Sig, "from": c.FromName, "to": c.ToName,
			})
		}
	}
	return nil
}

// Abort discards the prepared builds and rolls the silent transaction
// back, releasing the prepare's locks. The engine is byte-identical to
// before the prepare: compilation had no side effects, and the snapshot
// evaluations were pure reads.
func (sw *ModeSwitch) Abort() error {
	if sw.done {
		return fmt.Errorf("core: mode switch already finished")
	}
	sw.done = true
	defer sw.e.mu.Unlock()
	return sw.h.Rollback()
}

// SetGroupModes migrates the listed groups to their target modes in one
// atomic, abort-safe step (prepare + commit).
func (e *Engine) SetGroupModes(target map[string]Mode) ([]ModeChange, error) {
	sw, err := e.PrepareGroupModes(target)
	if err != nil {
		return nil, err
	}
	if err := sw.Commit(); err != nil {
		return nil, err
	}
	return sw.changes, nil
}

// SetGroupMode migrates one group.
func (e *Engine) SetGroupMode(sig string, m Mode) error {
	_, err := e.SetGroupModes(map[string]Mode{sig: m})
	return err
}

// Replan consults the installed policy with fresh GroupStats and applies
// whatever mode changes it decides, returning them (nil when the policy
// is absent or content). This is the single-engine form of the shard
// layer's fleet-wide replan.
func (e *Engine) Replan() ([]ModeChange, error) {
	e.mu.RLock()
	p := e.policy
	e.mu.RUnlock()
	if p == nil {
		return nil, nil
	}
	target := p.Decide(e.GroupStats())
	if len(target) == 0 {
		return nil, nil
	}
	changes, err := e.SetGroupModes(target)
	if err != nil {
		return nil, err
	}
	if m := e.obsp.Load(); m != nil && len(changes) > 0 {
		m.reg.Emit("replan", map[string]string{"switches": fmt.Sprint(len(changes))})
	}
	return changes, nil
}
