package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quark/internal/dispatch"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

// newTwoMarketEngine builds a schema with two fully independent table
// groups (quoteA / quoteB), one view and one watch trigger over each, so
// BatchTables batches on the two groups have disjoint lock footprints.
func newTwoMarketEngine(t *testing.T, mode Mode) (*Engine, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	s := schema.New()
	for _, name := range []string{"quoteA", "quoteB"} {
		s.MustAddTable(&schema.Table{
			Name: name,
			Columns: []schema.Column{
				{Name: "sym", Type: schema.TString},
				{Name: "price", Type: schema.TFloat},
			},
			PrimaryKey: []string{"sym"},
		})
	}
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"quoteA", "quoteB"} {
		if err := db.Insert(name,
			reldb.Row{xdm.Str("X1"), xdm.Float(100)},
			reldb.Row{xdm.Str("X2"), xdm.Float(200)},
		); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(db, mode)
	var firedA, firedB atomic.Int64
	e.RegisterAction("actA", func(Invocation) error { firedA.Add(1); return nil })
	e.RegisterAction("actB", func(Invocation) error { firedB.Add(1); return nil })
	for _, v := range []struct{ view, table, elem string }{
		{"vA", "quoteA", "qa"},
		{"vB", "quoteB", "qb"},
	} {
		src := fmt.Sprintf(`<m>{for $q in view('default')/%s/row return <%s sym={$q/sym} price={$q/price}></%s>}</m>`,
			v.table, v.elem, v.elem)
		if _, err := e.CreateView(v.view, src); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.CreateTrigger(`CREATE TRIGGER WA AFTER UPDATE ON view('vA')/qa DO actA(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER WB AFTER UPDATE ON view('vB')/qb DO actB(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e, &firedA, &firedB
}

func setQuotePrice(p float64) func(reldb.Row) reldb.Row {
	return func(r reldb.Row) reldb.Row {
		r[1] = xdm.Float(p)
		return r
	}
}

// TestBatchTablesFiresAndCoalesces: a declared-footprint batch behaves
// like Batch — triggers fire once at commit with merged deltas.
func TestBatchTablesFiresAndCoalesces(t *testing.T) {
	e, firedA, firedB := newTwoMarketEngine(t, ModeGrouped)
	before := e.Stats().Fires
	err := e.BatchTables([]string{"quoteA"}, func(tx *reldb.Tx) error {
		for i, sym := range []string{"X1", "X2"} {
			if _, err := tx.UpdateByPK("quoteA", []xdm.Value{xdm.Str(sym)}, setQuotePrice(float64(10+i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fires := e.Stats().Fires - before; fires != 1 {
		t.Errorf("batch fired %d plan evaluations, want 1", fires)
	}
	if firedA.Load() != 2 || firedB.Load() != 0 {
		t.Errorf("notifications A=%d B=%d, want A=2 B=0", firedA.Load(), firedB.Load())
	}
}

// TestBatchTablesLockEscalation: touching a table outside the declared
// footprint no longer fails the batch — the declared attempt rolls back
// (so its partial mutations never commit and never fire) and the batch
// re-runs under the all-table lock. The result is exactly what Batch
// would have produced: both updates applied, each trigger fired once.
func TestBatchTablesLockEscalation(t *testing.T) {
	e, firedA, firedB := newTwoMarketEngine(t, ModeGrouped)
	attempts := 0
	err := e.BatchTables([]string{"quoteA"}, func(tx *reldb.Tx) error {
		attempts++
		if _, err := tx.UpdateByPK("quoteA", []xdm.Value{xdm.Str("X1")}, setQuotePrice(11)); err != nil {
			return err
		}
		_, err := tx.UpdateByPK("quoteB", []xdm.Value{xdm.Str("X1")}, setQuotePrice(11))
		return err
	})
	if err != nil {
		t.Fatalf("escalated batch failed: %v", err)
	}
	if attempts != 2 {
		t.Errorf("escalation ran the callback %d times, want 2 (declared attempt + retry)", attempts)
	}
	for _, table := range []string{"quoteA", "quoteB"} {
		r, ok, _ := e.DB().GetByPK(table, xdm.Str("X1"))
		if !ok || r[1].AsFloat() != 11 {
			t.Errorf("escalated batch did not apply to %s.X1: %v", table, r)
		}
	}
	// Exactly one firing each: the rolled-back declared attempt must not
	// have fired for its partial quoteA update.
	if firedA.Load() != 1 || firedB.Load() != 1 {
		t.Errorf("escalated batch fired %d+%d notifications, want 1+1", firedA.Load(), firedB.Load())
	}
	// A callback that swallows the refusal must still escalate (partial
	// declared mutations must never commit behind the caller's back).
	err = e.BatchTables([]string{"quoteA"}, func(tx *reldb.Tx) error {
		if _, err := tx.UpdateByPK("quoteA", []xdm.Value{xdm.Str("X2")}, setQuotePrice(21)); err != nil {
			return err
		}
		if _, err := tx.UpdateByPK("quoteB", []xdm.Value{xdm.Str("X2")}, setQuotePrice(21)); err != nil &&
			!errors.Is(err, reldb.ErrUndeclaredTable) {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatalf("swallowed-refusal batch failed: %v", err)
	}
	for _, table := range []string{"quoteA", "quoteB"} {
		r, ok, _ := e.DB().GetByPK(table, xdm.Str("X2"))
		if !ok || r[1].AsFloat() != 21 {
			t.Errorf("swallowed-refusal escalation did not apply to %s.X2: %v", table, r)
		}
	}
	// Unknown table names are rejected up front.
	if err := e.BatchTables([]string{"nosuch"}, func(*reldb.Tx) error { return nil }); err == nil {
		t.Error("BatchTables accepted an unknown table")
	}
}

// TestBatchTablesDisjointConcurrency: two batches with disjoint declared
// footprints must be able to be inside their callbacks at the same time.
// Each callback waits for the other via a rendezvous; with Batch (all
// tables write-locked) this would deadlock, with BatchTables it runs.
func TestBatchTablesDisjointConcurrency(t *testing.T) {
	e, firedA, firedB := newTwoMarketEngine(t, ModeGrouped)
	aIn, bIn := make(chan struct{}), make(chan struct{})
	run := func(table string, mine, other chan struct{}) error {
		return e.BatchTables([]string{table}, func(tx *reldb.Tx) error {
			if _, err := tx.UpdateByPK(table, []xdm.Value{xdm.Str("X1")}, setQuotePrice(55)); err != nil {
				return err
			}
			close(mine)
			select {
			case <-other:
				return nil
			case <-time.After(5 * time.Second):
				return errors.New("peer batch never entered its callback: footprints are not disjoint")
			}
		})
	}
	errs := make(chan error, 2)
	go func() { errs <- run("quoteA", aIn, bIn) }()
	go func() { errs <- run("quoteB", bIn, aIn) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if firedA.Load() != 1 || firedB.Load() != 1 {
		t.Errorf("notifications A=%d B=%d, want 1 and 1", firedA.Load(), firedB.Load())
	}
}

// newOrderedEngine builds one item table whose rows are watched by
// per-row triggers (ord0..ord3), recording delivered values per trigger.
func newOrderedEngine(t *testing.T, lanes int) (*Engine, func() [][]int) {
	t.Helper()
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "item",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt},
			{Name: "name", Type: schema.TString},
			{Name: "val", Type: schema.TInt},
		},
		PrimaryKey: []string{"id"},
	})
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < lanes; k++ {
		if err := db.Insert("item", reldb.Row{xdm.Int(int64(k)), xdm.Str(fmt.Sprintf("n%d", k)), xdm.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(db, ModeGrouped)
	var mu sync.Mutex
	got := make([][]int, lanes)
	e.RegisterAction("rec", func(inv Invocation) error {
		lex, _ := inv.New.Attribute("v")
		v, err := strconv.Atoi(lex)
		if err != nil {
			return fmt.Errorf("bad v attribute %q: %w", lex, err)
		}
		k, err := strconv.Atoi(strings.TrimPrefix(inv.Trigger, "ord"))
		if err != nil {
			return err
		}
		mu.Lock()
		got[k] = append(got[k], v)
		mu.Unlock()
		return nil
	})
	if _, err := e.CreateView("vd", `<doc>{for $i in view('default')/item/row return <it name={$i/name} v={$i/val}></it>}</doc>`); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < lanes; k++ {
		src := fmt.Sprintf(`CREATE TRIGGER ord%d AFTER UPDATE ON view('vd')/it WHERE NEW_NODE/@name = 'n%d' DO rec(NEW_NODE)`, k, k)
		if err := e.CreateTrigger(src); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	snapshot := func() [][]int {
		mu.Lock()
		defer mu.Unlock()
		out := make([][]int, len(got))
		for i := range got {
			out[i] = append([]int(nil), got[i]...)
		}
		return out
	}
	return e, snapshot
}

// TestAsyncDeliveryOrderMatchesCommitOrder: under 8 workers, each
// trigger's deliveries must arrive exactly in its commit order, for a mix
// of single statements and batched commits, even though distinct triggers
// fan out concurrently.
func TestAsyncDeliveryOrderMatchesCommitOrder(t *testing.T) {
	const lanes, n = 4, 400
	e, snapshot := newOrderedEngine(t, lanes)
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 8, QueueCap: 1024, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	want := make([][]int, lanes)
	setVal := func(v int) func(reldb.Row) reldb.Row {
		return func(r reldb.Row) reldb.Row {
			r[2] = xdm.Int(int64(v))
			return r
		}
	}
	for i := 1; i <= n; i++ {
		k := i % lanes
		var err error
		if i%5 == 0 { // every fifth commit goes through the batch path
			err = e.Batch(func(tx *reldb.Tx) error {
				_, err := tx.UpdateByPK("item", []xdm.Value{xdm.Int(int64(k))}, setVal(i))
				return err
			})
		} else {
			_, err = e.UpdateByPK("item", []xdm.Value{xdm.Int(int64(k))}, setVal(i))
		}
		if err != nil {
			t.Fatal(err)
		}
		want[k] = append(want[k], i)
	}
	e.Drain()
	got := snapshot()
	for k := 0; k < lanes; k++ {
		if len(got[k]) != len(want[k]) {
			t.Fatalf("trigger ord%d delivered %d/%d notifications", k, len(got[k]), len(want[k]))
		}
		for i := range want[k] {
			if got[k][i] != want[k][i] {
				t.Fatalf("trigger ord%d delivery %d = %d, want %d (per-trigger FIFO violated)", k, i, got[k][i], want[k][i])
			}
		}
	}
	st := e.Stats()
	if !st.Async || st.Dispatch.Completed != int64(n) || st.Dispatch.Dropped != 0 {
		t.Errorf("dispatch stats = %+v, want Completed=%d Dropped=0", st.Dispatch, n)
	}
}

// TestDropTriggerDrainsAsyncLane: dropping a trigger with in-flight async
// deliveries completes them before returning and releases the lane.
func TestDropTriggerDrainsAsyncLane(t *testing.T) {
	e, snapshot := newOrderedEngine(t, 2)
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 2, QueueCap: 64, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gate := make(chan struct{})
	held := e.action("rec")
	e.RegisterAction("rec", func(inv Invocation) error {
		<-gate
		return held(inv)
	})
	for i := 1; i <= 3; i++ {
		if _, err := e.UpdateByPK("item", []xdm.Value{xdm.Int(0)}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Int(int64(i))
			return r
		}); err != nil {
			t.Fatal(err)
		}
	}
	if ls, ok := e.TriggerDispatchStats("ord0"); !ok || ls.Enqueued != 3 {
		t.Fatalf("lane stats before drop = %+v ok=%v, want Enqueued=3", ls, ok)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	if err := e.DropTrigger("ord0"); err != nil {
		t.Fatal(err)
	}
	if got := snapshot()[0]; len(got) != 3 {
		t.Errorf("DropTrigger returned with %d/3 deliveries run", len(got))
	}
	if _, ok := e.TriggerDispatchStats("ord0"); ok {
		t.Error("lane still present after DropTrigger (leak)")
	}
	// The engine stays functional: the other trigger still fires.
	if _, err := e.UpdateByPK("item", []xdm.Value{xdm.Int(1)}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Int(99)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if got := snapshot()[1]; len(got) != 1 || got[0] != 99 {
		t.Errorf("trigger ord1 after drop delivered %v, want [99]", got)
	}
}

// TestAsyncErrorPolicySurfacesToWriter: with Policy Error, a full queue
// rejects the delivery and the writer's statement reports it.
func TestAsyncErrorPolicySurfacesToWriter(t *testing.T) {
	e, _ := newOrderedEngine(t, 1)
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 1, QueueCap: 1, Policy: dispatch.Error}); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	gate := make(chan struct{})
	defer close(gate)
	held := e.action("rec")
	e.RegisterAction("rec", func(inv Invocation) error {
		<-gate
		return held(inv)
	})
	update := func(v int) error {
		_, err := e.UpdateByPK("item", []xdm.Value{xdm.Int(0)}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Int(int64(v))
			return r
		})
		return err
	}
	if err := update(1); err != nil { // occupies the worker
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().Dispatch.Running < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first delivery")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := update(2); err != nil { // fills the queue
		t.Fatal(err)
	}
	err := update(3)
	if !errors.Is(err, dispatch.ErrQueueFull) {
		t.Fatalf("statement on full queue = %v, want ErrQueueFull", err)
	}
	if st := e.Stats(); st.Dispatch.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dispatch.Dropped)
	}
}

// TestAsyncStress drives concurrent batched writers (disjoint
// BatchTables), a single-statement writer, EvalView readers, and stats
// pollers against an async engine with a deliberately slow sink. Run
// under -race this exercises the whole locking + dispatch surface.
func TestAsyncStress(t *testing.T) {
	e, firedA, firedB := newTwoMarketEngine(t, ModeGrouped)
	slow := func(held ActionFunc) ActionFunc {
		return func(inv Invocation) error {
			time.Sleep(50 * time.Microsecond)
			return held(inv)
		}
	}
	e.RegisterAction("actA", slow(e.action("actA")))
	e.RegisterAction("actB", slow(e.action("actB")))
	if err := e.EnableAsyncDispatch(dispatch.Config{Workers: 8, QueueCap: 256, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const iters = 60
	var wg sync.WaitGroup
	for _, w := range []struct{ table, view string }{
		{"quoteA", "vA"}, {"quoteB", "vB"},
	} {
		w := w
		wg.Add(1)
		go func() { // batched writer, declared footprint
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := e.BatchTables([]string{w.table}, func(tx *reldb.Tx) error {
					for _, sym := range []string{"X1", "X2"} {
						if _, err := tx.UpdateByPK(w.table, []xdm.Value{xdm.Str(sym)}, setQuotePrice(float64(10+i))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // single-statement writer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := e.UpdateByPK("quoteA", []xdm.Value{xdm.Str("X2")}, setQuotePrice(float64(500+i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, view := range []string{"vA", "vB"} {
					n, err := e.EvalView(view)
					if err != nil {
						t.Error(err)
						return
					}
					elem := "qa"
					if view == "vB" {
						elem = "qb"
					}
					if len(n.ChildElements(elem)) == 0 {
						t.Error("view snapshot lost its quotes")
						return
					}
				}
				_ = e.Stats()
			}
		}()
	}
	wg.Wait()
	e.Drain()
	if firedA.Load() == 0 || firedB.Load() == 0 {
		t.Fatalf("stress fired A=%d B=%d notifications; writers did not exercise dispatch", firedA.Load(), firedB.Load())
	}
	st := e.Stats()
	if st.Dispatch.Completed != st.Dispatch.Enqueued || st.Dispatch.Dropped != 0 {
		t.Errorf("dispatch stats after drain = %+v, want Completed=Enqueued and no drops", st.Dispatch)
	}
}
