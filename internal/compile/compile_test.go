package compile

import (
	"strings"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// catalogSrc is the paper's Figure 3 view definition body.
const catalogSrc = `
<catalog>
{for $prodname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $prodname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 where count($vendors) >= 2
 return <product name={$prodname}>
   { for $vendor in $vendors
     return <vendor>
       {$vendor/*}
     </vendor>}
 </product>}
</catalog>`

func compiledCatalog(t *testing.T) (*reldb.DB, *ViewDef) {
	t.Helper()
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	c := New(db.Schema())
	v, err := c.CompileView("catalog", catalogSrc)
	if err != nil {
		t.Fatal(err)
	}
	return db, v
}

// TestCompiledCatalogMatchesHandBuilt: the compiled Figure 3 view must
// produce exactly the same document as the hand-built Figure 5 graph.
func TestCompiledCatalogMatchesHandBuilt(t *testing.T) {
	db, v := compiledCatalog(t)
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(v.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("view rows = %d, want 1", len(rows))
	}
	got := rows[0][0].AsNode().Serialize(false)

	hand := fixtures.BuildCatalogView(db.Schema(), 2)
	ctx2 := xqgm.NewEvalContext(db, nil)
	rows2, err := ctx2.Eval(hand.Root)
	if err != nil {
		t.Fatal(err)
	}
	want := rows2[0][0].AsNode().Serialize(false)
	if got != want {
		t.Errorf("compiled view differs from hand-built Figure 5 graph:\n got: %s\nwant: %s", got, want)
	}
}

// TestNavigationTree: ON view('catalog')/product composition needs the
// product NavNode with attribute and count bindings.
func TestNavigationTree(t *testing.T) {
	db, v := compiledCatalog(t)
	if v.Nav.ElemName != "catalog" {
		t.Fatalf("nav root = %s", v.Nav.ElemName)
	}
	prod := v.Nav.Child("product")
	if prod == nil {
		t.Fatal("no product nav node")
	}
	if prod.Child("vendor") == nil {
		t.Fatal("no vendor nav node under product")
	}
	if _, ok := prod.Attrs["name"]; !ok {
		t.Error("product @name binding missing")
	}
	if _, ok := prod.Fields["count(vendors)"]; !ok {
		t.Errorf("count binding missing: %v", prod.Fields)
	}
	// The product producer evaluates to the two qualifying products.
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(prod.Op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("product rows = %d, want 2", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		n := r[prod.NodeCol].AsNode()
		if n.Name != "product" {
			t.Errorf("node = %s", n.Name)
		}
		nm, _ := n.Attribute("name")
		names[nm] = true
		if nm2 := r[prod.Attrs["name"]].AsString(); nm2 != nm {
			t.Errorf("attr binding %q != node attr %q", nm2, nm)
		}
	}
	if !names["CRT 15"] || !names["LCD 19"] {
		t.Errorf("names = %v", names)
	}
	// Trigger-specifiability (Theorem 1): every operator keyed.
	if !xqgm.TriggerSpecifiable(prod.Op) {
		t.Error("compiled product path graph not trigger-specifiable")
	}
	if !xqgm.TriggerSpecifiable(v.Root) {
		t.Error("compiled view not trigger-specifiable")
	}
}

// TestVendorNavLevel: the nested vendor producer yields all 7 vendors
// before the count filter... it is nested under the filtered product in
// document order, but the producer itself is the pre-aggregation join.
func TestVendorNavLevel(t *testing.T) {
	db, v := compiledCatalog(t)
	vend := v.Nav.Find("vendor")
	if vend == nil {
		t.Fatal("vendor nav missing")
	}
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(vend.Op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Errorf("vendor rows = %d, want 7", len(rows))
	}
	if len(vend.KeyCols) != 3 { // pname + (vid, pid)
		t.Errorf("vendor keys = %v", vend.KeyCols)
	}
}

// TestCountPredicateThreshold: varying the constant changes results.
func TestCountPredicateThreshold(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	c := New(db.Schema())
	src := strings.Replace(catalogSrc, ">= 2", ">= 3", 1)
	v, err := c.CompileView("catalog3", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(v.Root)
	if err != nil {
		t.Fatal(err)
	}
	prods := rows[0][0].AsNode().ChildElements("product")
	if len(prods) != 1 {
		t.Fatalf("products = %d, want 1 (CRT 15 only)", len(prods))
	}
}

// TestFlatView: a view without nesting (products only).
func TestFlatView(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	c := New(db.Schema())
	v, err := c.CompileView("flat", `
<products>
{for $p in view('default')/product/row[./mfr = 'Samsung']
 return <product id={$p/pid} name={$p/pname}></product>}
</products>`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(v.Root)
	if err != nil {
		t.Fatal(err)
	}
	prods := rows[0][0].AsNode().ChildElements("product")
	if len(prods) != 2 { // P1, P2 are Samsung
		t.Fatalf("products = %d, want 2", len(prods))
	}
	for _, p := range prods {
		if id, _ := p.Attribute("id"); id != "P1" && id != "P2" {
			t.Errorf("unexpected id %s", id)
		}
	}
	// Nav: attr bindings for id and name.
	pn := v.Nav.Child("product")
	if pn == nil || pn.Attrs["id"] == 0 && pn.Attrs["name"] == 0 {
		t.Errorf("flat nav attrs = %+v", pn)
	}
}

// TestDepth3View: three-level nesting compiles and evaluates (the shape of
// the paper's hierarchy-depth experiment, Figure 18).
func TestDepth3View(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "region",
		Columns: []schema.Column{
			{Name: "rid", Type: schema.TInt},
			{Name: "rname", Type: schema.TString},
		},
		PrimaryKey: []string{"rid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "store",
		Columns: []schema.Column{
			{Name: "sid", Type: schema.TInt},
			{Name: "rid", Type: schema.TInt},
			{Name: "sname", Type: schema.TString},
		},
		PrimaryKey:  []string{"sid"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"rid"}, RefTable: "region", RefColumns: []string{"rid"}}},
	})
	s.MustAddTable(&schema.Table{
		Name: "sale",
		Columns: []schema.Column{
			{Name: "saleid", Type: schema.TInt},
			{Name: "sid", Type: schema.TInt},
			{Name: "amount", Type: schema.TFloat},
		},
		PrimaryKey:  []string{"saleid"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"sid"}, RefTable: "store", RefColumns: []string{"sid"}}},
	})
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	ins := func(table string, rows ...reldb.Row) {
		t.Helper()
		if err := db.Insert(table, rows...); err != nil {
			t.Fatal(err)
		}
	}
	ins("region", reldb.Row{xdm.Int(1), xdm.Str("east")}, reldb.Row{xdm.Int(2), xdm.Str("west")})
	ins("store",
		reldb.Row{xdm.Int(10), xdm.Int(1), xdm.Str("s10")},
		reldb.Row{xdm.Int(11), xdm.Int(1), xdm.Str("s11")},
		reldb.Row{xdm.Int(20), xdm.Int(2), xdm.Str("s20")})
	ins("sale",
		reldb.Row{xdm.Int(100), xdm.Int(10), xdm.Float(5)},
		reldb.Row{xdm.Int(101), xdm.Int(10), xdm.Float(7)},
		reldb.Row{xdm.Int(102), xdm.Int(11), xdm.Float(9)},
		reldb.Row{xdm.Int(103), xdm.Int(20), xdm.Float(3)})

	c := New(s)
	v, err := c.CompileView("sales", `
<regions>
{for $r in view('default')/region/row
 let $stores := view('default')/store/row[./rid = $r/rid]
 return <region name={$r/rname}>
   {for $s in $stores
    let $sales := view('default')/sale/row[./sid = $s/sid]
    return <store name={$s/sname}>
      {for $x in $sales return <sale amount={$x/amount}></sale>}
    </store>}
 </region>}
</regions>`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(v.Root)
	if err != nil {
		t.Fatal(err)
	}
	doc := rows[0][0].AsNode()
	regions := doc.ChildElements("region")
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	east := regions[0]
	if n, _ := east.Attribute("name"); n != "east" {
		// map order: find east
		for _, r := range regions {
			if n, _ := r.Attribute("name"); n == "east" {
				east = r
			}
		}
	}
	stores := east.ChildElements("store")
	if len(stores) != 2 {
		t.Fatalf("east stores = %d, want 2", len(stores))
	}
	total := 0
	for _, st := range stores {
		total += len(st.ChildElements("sale"))
	}
	if total != 3 {
		t.Errorf("east sales = %d, want 3", total)
	}
	// Nav has three levels.
	if v.Nav.Find("sale") == nil || v.Nav.Find("store") == nil {
		t.Error("nav levels missing")
	}
	if !xqgm.TriggerSpecifiable(v.Nav.Find("store").Op) {
		t.Error("store level not trigger-specifiable")
	}
	// Childless parents survive (west has one store with one sale; remove
	// its sales and the store remains with empty content).
	if _, err := db.Delete("sale", func(r reldb.Row) bool { return r[1].AsInt() == 20 }); err != nil {
		t.Fatal(err)
	}
	ctx2 := xqgm.NewEvalContext(db, nil)
	rows, err = ctx2.Eval(v.Root)
	if err != nil {
		t.Fatal(err)
	}
	var west *xdm.Node
	for _, r := range rows[0][0].AsNode().ChildElements("region") {
		if n, _ := r.Attribute("name"); n == "west" {
			west = r
		}
	}
	if west == nil || len(west.ChildElements("store")) != 1 {
		t.Fatal("west store lost after deleting its sales")
	}
	if len(west.ChildElements("store")[0].ChildElements("sale")) != 0 {
		t.Error("expected empty sale content")
	}
}

// TestCompileErrors: invalid views produce errors, not panics.
func TestCompileErrors(t *testing.T) {
	s := schema.ProductVendor()
	c := New(s)
	bad := []string{
		`for $x in view('default')/product/row return <a></a>`, // not a ctor at top
		`<v>{for $x in view('default')/nosuch/row return <a></a>}</v>`,
		`<v>{for $x in view('other')/product/row return <a></a>}</v>`,
		`<v>{for $x in view('default')/product return <a></a>}</v>`,
		`<v>{for $x in view('default')/product/row return 42}</v>`,
		`<v>{for $x in view('default')/product/row return <a b={$nope}></a>}</v>`,
	}
	for _, src := range bad {
		if _, err := c.CompileView("bad", src); err == nil {
			t.Errorf("CompileView(%q): expected error", src)
		}
	}
}

// TestViewRegistry: views are registered and retrievable.
func TestViewRegistry(t *testing.T) {
	_, v := compiledCatalog(t)
	if v.Name != "catalog" || v.Source == "" {
		t.Error("view def incomplete")
	}
}
