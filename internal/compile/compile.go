// Package compile translates the XQuery subset into XQGM graphs (the
// XPERANTO role in the paper, Section 2.1): view definitions over the
// default view become operator DAGs, and a navigation tree is recorded per
// view so trigger Paths can be composed onto the view (Section 3.3) and
// trigger Conditions can be pushed down to scalar columns.
//
// The supported view dialect is the paper's (Figure 3 and the experimental
// hierarchies): element constructors over FLWOR expressions, iteration over
// distinct column values or table rows of the default view, let-bound
// correlated sets, count() predicates, and arbitrary nesting depth.
package compile

import (
	"fmt"

	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
	"quark/internal/xquery"
)

// NavNode is one level of a view's navigation tree: the producer of the
// elements reachable at a path step.
type NavNode struct {
	ElemName string
	Op       *xqgm.Operator // one output row per element instance
	NodeCol  int            // column carrying the constructed element
	KeyCols  []int          // canonical key of the element (within Op output)
	Attrs    map[string]int // attribute name -> scalar column
	Fields   map[string]int // scalar child element name -> column
	Children []*NavNode
}

// Find locates a descendant NavNode by element name (depth-first).
func (n *NavNode) Find(name string) *NavNode {
	if n == nil {
		return nil
	}
	if n.ElemName == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Child returns the direct child NavNode by name.
func (n *NavNode) Child(name string) *NavNode {
	for _, c := range n.Children {
		if c.ElemName == name {
			return c
		}
	}
	return nil
}

// ViewDef is a compiled XML view.
type ViewDef struct {
	Name   string
	Source string
	Root   *xqgm.Operator // produces exactly one row: the view document
	Nav    *NavNode       // navigation tree rooted at the document element
}

// Compiler compiles views and trigger expressions over a relational schema.
type Compiler struct {
	schema *schema.Schema
	views  map[string]*ViewDef
}

// New creates a compiler over the schema.
func New(s *schema.Schema) *Compiler {
	return &Compiler{schema: s, views: map[string]*ViewDef{}}
}

// Schema returns the compiler's schema.
func (c *Compiler) Schema() *schema.Schema { return c.schema }

// View returns a previously compiled view.
func (c *Compiler) View(name string) (*ViewDef, bool) {
	v, ok := c.views[name]
	return v, ok
}

// CompileView parses and compiles an XQuery view definition, registers it
// under the given name, and returns it. The body must be a single element
// constructor (the document element).
func (c *Compiler) CompileView(name, src string) (*ViewDef, error) {
	ast, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	ctor, ok := ast.(*xquery.ElemCtor)
	if !ok {
		return nil, fmt.Errorf("compile: view %q must be a single element constructor, got %s", name, xquery.String(ast))
	}
	root, nav, err := c.compileDocCtor(ctor)
	if err != nil {
		return nil, fmt.Errorf("compile: view %q: %w", name, err)
	}
	xqgm.DeriveKeys(root)
	v := &ViewDef{Name: name, Source: src, Root: root, Nav: nav}
	c.views[name] = v
	return v, nil
}

// MustCompileView panics on error; for fixtures and examples.
func (c *Compiler) MustCompileView(name, src string) *ViewDef {
	v, err := c.CompileView(name, src)
	if err != nil {
		panic(err)
	}
	return v
}

// --- internal compilation machinery ---

// binding is a variable binding in scope.
type binding struct {
	// scalar: a single column of ctx.op.
	scalarCol int
	isScalar  bool
	// row: a contiguous column range of ctx.op mapping a table's columns.
	table string
	start int
	width int
	isRow bool
	// set: a deferred let-bound table path.
	set *setDef
}

// setDef is a let-bound path over the default view: table rows restricted
// by predicates that may correlate with outer variables or other sets.
type setDef struct {
	name  string
	table string
	preds []xquery.Expr
	// realized tracks, per compilation context, where the set's row
	// binding landed after realization.
	realizedStart int
	realizedWidth int
	realized      bool
}

// ctx is a compilation context: the current tuple stream and scope.
type ctx struct {
	op      *xqgm.Operator
	keyCols []int // canonical key of the iteration (within op output)
	vars    map[string]*binding
}

func (cx *ctx) clone() *ctx {
	nv := make(map[string]*binding, len(cx.vars))
	for k, v := range cx.vars {
		b := *v
		if v.set != nil {
			sd := *v.set
			b.set = &sd
		}
		nv[k] = &b
	}
	return &ctx{op: cx.op, keyCols: append([]int(nil), cx.keyCols...), vars: nv}
}

// compileDocCtor compiles the document element: scalar content is inlined;
// FLWOR content is compiled, aggregated with aggXMLFrag, and spliced.
func (c *Compiler) compileDocCtor(ctor *xquery.ElemCtor) (*xqgm.Operator, *NavNode, error) {
	nav := &NavNode{ElemName: ctor.Name, Attrs: map[string]int{}, Fields: map[string]int{}}
	var childExprs []xqgm.Expr
	var cur *xqgm.Operator // aggregated child fragments joined cross-wise
	fragCols := 0

	for _, item := range ctor.Content {
		fl, ok := item.(*xquery.FLWOR)
		if !ok {
			// Literal text only at document level.
			lit, ok := item.(*xquery.Lit)
			if !ok {
				return nil, nil, fmt.Errorf("unsupported document content %s", xquery.String(item))
			}
			childExprs = append(childExprs, xqgm.LitOf(lit.V))
			continue
		}
		child, childNav, err := c.compileFLWOR(fl, nil)
		if err != nil {
			return nil, nil, err
		}
		// Aggregate all rows into one fragment.
		g := xqgm.NewGroupBy(child.op, nil,
			xqgm.Agg{Name: "frag", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(child.nodeCol)})
		if cur == nil {
			cur = g
		} else {
			cur = xqgm.NewJoin(xqgm.JoinInner, cur, g, nil, nil)
		}
		childExprs = append(childExprs, xqgm.Col(fragCols))
		fragCols++
		if childNav != nil {
			nav.Children = append(nav.Children, childNav)
		}
	}
	if cur == nil {
		// Constant document.
		cur = xqgm.NewConstants([]string{"one"}, [][]xqgm.Expr{{xqgm.LitOf(xdm.Int(1))}})
	}
	docCtor := &xqgm.ElemCtor{Name: ctor.Name, Children: childExprs}
	for _, a := range ctor.Attrs {
		lit, ok := a.Val.(*xquery.Lit)
		if !ok {
			return nil, nil, fmt.Errorf("document-level attributes must be literals")
		}
		docCtor.Attrs = append(docCtor.Attrs, xqgm.AttrSpec{Name: a.Name, E: xqgm.LitOf(lit.V)})
	}
	root := xqgm.NewProject(cur, xqgm.Proj{Name: ctor.Name, E: docCtor})
	nav.Op = root
	nav.NodeCol = 0
	nav.KeyCols = []int{}
	return root, nav, nil
}

// flResult is the compilation result of one FLWOR level: op produces one
// row per iteration with the constructed node.
type flResult struct {
	op      *xqgm.Operator
	nodeCol int
	keyCols []int // keys identifying each produced node (incl. parent keys)
}

// compileFLWOR compiles a FLWOR whose return is an element constructor.
// parent supplies the outer iteration (nil at the document level).
func (c *Compiler) compileFLWOR(f *xquery.FLWOR, parent *ctx) (*flResult, *NavNode, error) {
	cx := &ctx{vars: map[string]*binding{}}
	if parent != nil {
		cx = parent.clone()
	}

	// Process clauses in order.
	for _, cl := range f.Clauses {
		switch cl := cl.(type) {
		case xquery.ForClause:
			if err := c.compileForClause(cx, cl); err != nil {
				return nil, nil, err
			}
		case xquery.LetClause:
			sd, err := c.parseSetDef(cl)
			if err != nil {
				return nil, nil, err
			}
			cx.vars[cl.Var] = &binding{set: sd}
		}
	}
	if cx.op == nil {
		return nil, nil, fmt.Errorf("FLWOR has no iteration source")
	}

	ctor, ok := f.Return.(*xquery.ElemCtor)
	if !ok {
		return nil, nil, fmt.Errorf("FLWOR return must be an element constructor, got %s", xquery.String(f.Return))
	}

	nav := &NavNode{ElemName: ctor.Name, Attrs: map[string]int{}, Fields: map[string]int{}}

	// Compile nested content (FLWORs over sets/paths) and where-clause
	// aggregates. Nested children are grouped by the current keys and
	// joined back with a left-outer join; count() predicates reuse the same
	// group when they range over the same set.
	fragBySet := map[string]*childFragRef{}
	var contentExprs []xqgm.Expr

	for _, item := range ctor.Content {
		switch item := item.(type) {
		case *xquery.FLWOR:
			setName := nestedSetName(item)
			child, childNav, err := c.compileFLWOR(item, cx.clone())
			if err != nil {
				return nil, nil, err
			}
			// Group child nodes by this level's keys.
			aggs := []xqgm.Agg{
				{Name: "frag", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(child.nodeCol)},
				{Name: "cnt", Func: xqgm.AggCount, Arg: xqgm.Col(child.nodeCol)},
			}
			parentKeyInChild := child.keyCols[:len(cx.keyCols)]
			g := xqgm.NewGroupBy(child.op, parentKeyInChild, aggs...)
			// Left-outer join back: childless parents keep empty content.
			on := make([]xqgm.JoinEq, len(cx.keyCols))
			for i, kc := range cx.keyCols {
				on[i] = xqgm.JoinEq{L: kc, R: i}
			}
			w := cx.op.OutWidth()
			cx.op = xqgm.NewJoin(xqgm.JoinLeftOuter, cx.op, g, on, nil)
			frag := &childFragRef{col: w + len(cx.keyCols), countCol: w + len(cx.keyCols) + 1}
			if setName != "" {
				fragBySet[setName] = frag
			}
			contentExprs = append(contentExprs, xqgm.Col(frag.col))
			if childNav != nil {
				nav.Children = append(nav.Children, childNav)
			}
		case *xquery.Lit:
			contentExprs = append(contentExprs, xqgm.LitOf(item.V))
		default:
			e, fieldName, err := c.compileContentExpr(cx, item)
			if err != nil {
				return nil, nil, err
			}
			contentExprs = append(contentExprs, e)
			_ = fieldName
		}
	}

	// Where clause.
	if f.Where != nil {
		for _, conj := range conjuncts(f.Where) {
			pred, err := c.compileWhereConj(cx, conj, fragBySet)
			if err != nil {
				return nil, nil, err
			}
			cx.op = xqgm.NewSelect(cx.op, pred)
		}
	}

	// Build the node constructor.
	elem := &xqgm.ElemCtor{Name: ctor.Name, Children: contentExprs}
	for _, a := range ctor.Attrs {
		e, err := c.compileScalar(cx, a.Val)
		if err != nil {
			return nil, nil, err
		}
		elem.Attrs = append(elem.Attrs, xqgm.AttrSpec{Name: a.Name, E: e})
	}

	// Final projection: node, keys, and useful scalars (attr sources and
	// counts) for condition pushdown.
	projs := []xqgm.Proj{{Name: ctor.Name, E: elem}}
	nodeCol := 0
	var outKeys []int
	for i, kc := range cx.keyCols {
		projs = append(projs, xqgm.Proj{Name: fmt.Sprintf("k%d", i), E: xqgm.Col(kc)})
		outKeys = append(outKeys, len(projs)-1)
	}
	for _, a := range ctor.Attrs {
		e, _ := c.compileScalar(cx, a.Val)
		if cr, ok := e.(*xqgm.ColRef); ok && cr.Input == 0 {
			// Reuse a key projection when it is the same column.
			pos := -1
			for pi := 1; pi < len(projs); pi++ {
				if pcr, ok := projs[pi].E.(*xqgm.ColRef); ok && pcr.Col == cr.Col {
					pos = pi
					break
				}
			}
			if pos < 0 {
				projs = append(projs, xqgm.Proj{Name: "a_" + a.Name, E: e})
				pos = len(projs) - 1
			}
			nav.Attrs[a.Name] = pos
		}
	}
	for setName, fr := range fragBySet {
		projs = append(projs, xqgm.Proj{Name: "cnt_" + setName, E: xqgm.Col(fr.countCol)})
		nav.Fields["count("+setName+")"] = len(projs) - 1
	}
	top := xqgm.NewProject(cx.op, projs...)
	nav.Op = top
	nav.NodeCol = nodeCol
	nav.KeyCols = outKeys
	return &flResult{op: top, nodeCol: nodeCol, keyCols: outKeys}, nav, nil
}

// nestedSetName returns the set variable a nested FLWOR iterates over, or
// "" when it iterates a raw path.
func nestedSetName(f *xquery.FLWOR) string {
	for _, cl := range f.Clauses {
		if fc, ok := cl.(xquery.ForClause); ok {
			if vr, ok := fc.Seq.(*xquery.VarRef); ok {
				return vr.Name
			}
			return ""
		}
	}
	return ""
}

func conjuncts(e xquery.Expr) []xquery.Expr {
	if l, ok := e.(*xquery.Logic); ok && l.Op == "and" {
		var out []xquery.Expr
		for _, a := range l.Args {
			out = append(out, conjuncts(a)...)
		}
		return out
	}
	return []xquery.Expr{e}
}

// compileForClause extends the context with one iteration source.
func (c *Compiler) compileForClause(cx *ctx, fc xquery.ForClause) error {
	switch seq := fc.Seq.(type) {
	case *xquery.FnCall:
		if seq.Name != "distinct" && seq.Name != "distinct-values" {
			return fmt.Errorf("unsupported for-source %s", xquery.String(fc.Seq))
		}
		tp, err := c.parseTablePath(seq.Args[0])
		if err != nil {
			return err
		}
		if tp.field == "" {
			return fmt.Errorf("distinct() requires a column path")
		}
		def, _ := c.schema.Table(tp.table)
		fi := def.ColIndex(tp.field)
		if fi < 0 {
			return fmt.Errorf("unknown column %s.%s", tp.table, tp.field)
		}
		src := xqgm.NewTable(def, xqgm.SrcBase)
		var op *xqgm.Operator = src
		if len(tp.preds) > 0 {
			pred, _, err := c.compileRowPreds(cx, tp.preds, tp.table, 0, src.OutWidth(), nil)
			if err != nil {
				return err
			}
			op = xqgm.NewSelect(op, pred)
		}
		dist := xqgm.NewGroupBy(op, []int{fi})
		c.joinInto(cx, dist, nil)
		// The distinct value is the last column block's col 0.
		col := cx.op.OutWidth() - 1
		cx.vars[fc.Var] = &binding{isScalar: true, scalarCol: col}
		cx.keyCols = append(cx.keyCols, col)
		return nil
	case *xquery.VarRef:
		// for $v in $set
		b, ok := cx.vars[seq.Name]
		if !ok || b.set == nil {
			return fmt.Errorf("for over unknown set $%s", seq.Name)
		}
		start, width, err := c.realizeSet(cx, b.set)
		if err != nil {
			return err
		}
		cx.vars[fc.Var] = &binding{isRow: true, table: b.set.table, start: start, width: width}
		def, _ := c.schema.Table(b.set.table)
		for _, pk := range def.PKIndexes() {
			cx.keyCols = append(cx.keyCols, start+pk)
		}
		return nil
	default:
		tp, err := c.parseTablePath(fc.Seq)
		if err != nil {
			return fmt.Errorf("unsupported for-source %s: %w", xquery.String(fc.Seq), err)
		}
		if tp.field != "" {
			return fmt.Errorf("for over a column path requires distinct()")
		}
		sd := &setDef{name: fc.Var, table: tp.table, preds: tp.preds}
		start, width, err := c.realizeSet(cx, sd)
		if err != nil {
			return err
		}
		cx.vars[fc.Var] = &binding{isRow: true, table: tp.table, start: start, width: width}
		def, _ := c.schema.Table(tp.table)
		for _, pk := range def.PKIndexes() {
			cx.keyCols = append(cx.keyCols, start+pk)
		}
		return nil
	}
}

// joinInto cross/equi-joins an operator into the context.
func (c *Compiler) joinInto(cx *ctx, op *xqgm.Operator, on []xqgm.JoinEq) {
	if cx.op == nil {
		cx.op = op
		return
	}
	cx.op = xqgm.NewJoin(xqgm.JoinInner, cx.op, op, on, nil)
}

// tablePath is view('default')/T/row[preds](/field)?.
type tablePath struct {
	table string
	preds []xquery.Expr
	field string
}

func (c *Compiler) parseTablePath(e xquery.Expr) (*tablePath, error) {
	p, ok := e.(*xquery.Path)
	if !ok {
		return nil, fmt.Errorf("not a path: %s", xquery.String(e))
	}
	vr, ok := p.Base.(*xquery.ViewRef)
	if !ok || vr.Name != "default" {
		return nil, fmt.Errorf("paths must start at view('default')")
	}
	if len(p.Steps) < 2 || p.Steps[1].Name != "row" {
		return nil, fmt.Errorf("default-view paths have the form /table/row")
	}
	table := p.Steps[0].Name
	if _, ok := c.schema.Table(table); !ok {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	tp := &tablePath{table: table}
	tp.preds = append(tp.preds, p.Steps[0].Preds...)
	tp.preds = append(tp.preds, p.Steps[1].Preds...)
	if len(p.Steps) > 2 {
		if len(p.Steps) > 3 {
			return nil, fmt.Errorf("at most one field step after /row")
		}
		tp.field = p.Steps[2].Name
		tp.preds = append(tp.preds, p.Steps[2].Preds...)
	}
	return tp, nil
}

func (c *Compiler) parseSetDef(cl xquery.LetClause) (*setDef, error) {
	tp, err := c.parseTablePath(cl.Seq)
	if err != nil {
		return nil, err
	}
	if tp.field != "" {
		return nil, fmt.Errorf("let-bound sets must bind rows, not columns")
	}
	return &setDef{name: cl.Var, table: tp.table, preds: tp.preds}, nil
}

// realizeSet joins the set's table (and, transitively, the sets it
// references) into the context, returning the column range of the set's
// rows. Already-realized sets are reused.
func (c *Compiler) realizeSet(cx *ctx, sd *setDef) (int, int, error) {
	if sd.realized {
		return sd.realizedStart, sd.realizedWidth, nil
	}
	// Realize referenced sets first.
	for _, p := range sd.preds {
		for _, ref := range setRefs(p, cx) {
			if ref != sd.name {
				if b := cx.vars[ref]; b != nil && b.set != nil && !b.set.realized {
					if _, _, err := c.realizeSet(cx, b.set); err != nil {
						return 0, 0, err
					}
				}
			}
		}
	}
	def, _ := c.schema.Table(sd.table)
	tbl := xqgm.NewTable(def, xqgm.SrcBase)
	start := 0
	if cx.op != nil {
		start = cx.op.OutWidth()
	}
	pred, eqs, err := c.compileRowPreds(cx, sd.preds, sd.table, start, len(def.Columns), cx.op)
	if err != nil {
		return 0, 0, err
	}
	if cx.op == nil {
		cx.op = tbl
		if pred != nil {
			cx.op = xqgm.NewSelect(cx.op, pred)
		}
	} else {
		cx.op = xqgm.NewJoin(xqgm.JoinInner, cx.op, tbl, eqs, nil)
		if pred != nil {
			cx.op = xqgm.NewSelect(cx.op, pred)
		}
	}
	sd.realized = true
	sd.realizedStart = start
	sd.realizedWidth = len(def.Columns)
	return start, len(def.Columns), nil
}

// setRefs lists set variables referenced in a predicate.
func setRefs(e xquery.Expr, cx *ctx) []string {
	var out []string
	var walk func(x xquery.Expr)
	walk = func(x xquery.Expr) {
		switch x := x.(type) {
		case *xquery.VarRef:
			if b, ok := cx.vars[x.Name]; ok && b.set != nil {
				out = append(out, x.Name)
			}
		case *xquery.Path:
			walk(x.Base)
			for _, s := range x.Steps {
				for _, p := range s.Preds {
					walk(p)
				}
			}
		case *xquery.Cmp:
			walk(x.L)
			walk(x.R)
		case *xquery.Arith:
			walk(x.L)
			walk(x.R)
		case *xquery.Logic:
			for _, a := range x.Args {
				walk(a)
			}
		case *xquery.FnCall:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// compileRowPreds compiles the predicates of a table path. Context items
// (".") refer to the new table's columns starting at rowStart. Equality
// predicates between a new-table column and an outer expression become
// equi-join pairs (returned separately) when joining; everything else goes
// into the residual predicate. When outer is nil, all predicates become a
// residual over the standalone table (rowStart is then 0).
func (c *Compiler) compileRowPreds(cx *ctx, preds []xquery.Expr, table string, rowStart, rowWidth int, outer *xqgm.Operator) (xqgm.Expr, []xqgm.JoinEq, error) {
	def, _ := c.schema.Table(table)
	var residual []xqgm.Expr
	var eqs []xqgm.JoinEq
	for _, p := range preds {
		for _, conj := range conjuncts(p) {
			// Try the equi-join form: ./col = outerScalar (either order).
			if outer != nil {
				if eq, ok2 := c.tryEquiPred(cx, conj, def, rowStart); ok2 {
					eqs = append(eqs, eq)
					continue
				}
			}
			e, err := c.compilePredExpr(cx, conj, def, rowStart)
			if err != nil {
				return nil, nil, err
			}
			residual = append(residual, e)
		}
	}
	if len(residual) == 0 {
		return nil, eqs, nil
	}
	if len(residual) == 1 {
		return residual[0], eqs, nil
	}
	return &xqgm.Logic{Op: "and", Args: residual}, eqs, nil
}

// tryEquiPred recognizes ./col = <outer scalar> forms.
func (c *Compiler) tryEquiPred(cx *ctx, e xquery.Expr, def *schema.Table, rowStart int) (xqgm.JoinEq, bool) {
	cmp, ok := e.(*xquery.Cmp)
	if !ok || cmp.Op != "=" {
		return xqgm.JoinEq{}, false
	}
	try := func(rowSide, outerSide xquery.Expr) (xqgm.JoinEq, bool) {
		col, ok := contextField(rowSide, def)
		if !ok {
			return xqgm.JoinEq{}, false
		}
		oe, err := c.compileScalar(cx, outerSide)
		if err != nil {
			return xqgm.JoinEq{}, false
		}
		cr, ok := oe.(*xqgm.ColRef)
		if !ok || cr.Input != 0 {
			return xqgm.JoinEq{}, false
		}
		return xqgm.JoinEq{L: cr.Col, R: col}, true
	}
	if eq, ok := try(cmp.L, cmp.R); ok {
		return eq, true
	}
	if eq, ok := try(cmp.R, cmp.L); ok {
		return eq, true
	}
	return xqgm.JoinEq{}, false
}

// contextField matches ./field or field paths rooted at the context item.
func contextField(e xquery.Expr, def *schema.Table) (int, bool) {
	p, ok := e.(*xquery.Path)
	if !ok {
		return 0, false
	}
	if _, ok := p.Base.(*xquery.ContextItem); !ok {
		return 0, false
	}
	if len(p.Steps) != 1 || p.Steps[0].Axis != "child" {
		return 0, false
	}
	ci := def.ColIndex(p.Steps[0].Name)
	if ci < 0 {
		return 0, false
	}
	return ci, true
}

// compilePredExpr compiles a predicate where "." refers to the new table's
// row (columns offset by rowStart) and variables come from scope.
func (c *Compiler) compilePredExpr(cx *ctx, e xquery.Expr, def *schema.Table, rowStart int) (xqgm.Expr, error) {
	switch x := e.(type) {
	case *xquery.Lit:
		return xqgm.LitOf(x.V), nil
	case *xquery.Cmp:
		l, err := c.compilePredExpr(cx, x.L, def, rowStart)
		if err != nil {
			return nil, err
		}
		r, err := c.compilePredExpr(cx, x.R, def, rowStart)
		if err != nil {
			return nil, err
		}
		return &xqgm.Cmp{Op: x.Op, L: l, R: r}, nil
	case *xquery.Arith:
		l, err := c.compilePredExpr(cx, x.L, def, rowStart)
		if err != nil {
			return nil, err
		}
		r, err := c.compilePredExpr(cx, x.R, def, rowStart)
		if err != nil {
			return nil, err
		}
		return &xqgm.Arith{Op: x.Op, L: l, R: r}, nil
	case *xquery.Logic:
		args := make([]xqgm.Expr, len(x.Args))
		for i, a := range x.Args {
			e, err := c.compilePredExpr(cx, a, def, rowStart)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return &xqgm.Logic{Op: x.Op, Args: args}, nil
	case *xquery.Path:
		if col, ok := contextField(x, def); ok {
			return xqgm.Col(rowStart + col), nil
		}
		return c.compileScalar(cx, e)
	default:
		return c.compileScalar(cx, e)
	}
}

// compileScalar compiles an expression over in-scope variables to a scalar
// xqgm expression against the context operator.
func (c *Compiler) compileScalar(cx *ctx, e xquery.Expr) (xqgm.Expr, error) {
	switch x := e.(type) {
	case *xquery.Lit:
		return xqgm.LitOf(x.V), nil
	case *xquery.VarRef:
		b, ok := cx.vars[x.Name]
		if !ok {
			return nil, fmt.Errorf("unbound variable $%s", x.Name)
		}
		if b.isScalar {
			return xqgm.Col(b.scalarCol), nil
		}
		return nil, fmt.Errorf("variable $%s is not scalar here", x.Name)
	case *xquery.Path:
		// $rowVar/field or $setVar/field (the set must be realized).
		vr, ok := x.Base.(*xquery.VarRef)
		if !ok {
			return nil, fmt.Errorf("unsupported scalar path %s", xquery.String(e))
		}
		b, ok := cx.vars[vr.Name]
		if !ok {
			return nil, fmt.Errorf("unbound variable $%s", vr.Name)
		}
		if b.set != nil && b.set.realized {
			b = &binding{isRow: true, table: b.set.table, start: b.set.realizedStart, width: b.set.realizedWidth}
		}
		if !b.isRow {
			return nil, fmt.Errorf("$%s/%s: $%s does not bind rows", vr.Name, x.Steps[0].Name, vr.Name)
		}
		if len(x.Steps) != 1 || x.Steps[0].Axis != "child" {
			return nil, fmt.Errorf("unsupported path %s", xquery.String(e))
		}
		def, _ := c.schema.Table(b.table)
		ci := def.ColIndex(x.Steps[0].Name)
		if ci < 0 {
			return nil, fmt.Errorf("unknown column %s.%s", b.table, x.Steps[0].Name)
		}
		return xqgm.Col(b.start + ci), nil
	case *xquery.Cmp:
		l, err := c.compileScalar(cx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileScalar(cx, x.R)
		if err != nil {
			return nil, err
		}
		return &xqgm.Cmp{Op: x.Op, L: l, R: r}, nil
	case *xquery.Arith:
		l, err := c.compileScalar(cx, x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compileScalar(cx, x.R)
		if err != nil {
			return nil, err
		}
		return &xqgm.Arith{Op: x.Op, L: l, R: r}, nil
	case *xquery.Logic:
		args := make([]xqgm.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := c.compileScalar(cx, a)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &xqgm.Logic{Op: x.Op, Args: args}, nil
	case *xquery.FnCall:
		if x.Name == "data" || x.Name == "string" {
			inner, err := c.compileScalar(cx, x.Args[0])
			if err != nil {
				return nil, err
			}
			return &xqgm.Call{Name: x.Name, Args: []xqgm.Expr{inner}}, nil
		}
		return nil, fmt.Errorf("unsupported function %s in scalar context", x.Name)
	default:
		return nil, fmt.Errorf("unsupported scalar expression %s", xquery.String(e))
	}
}

// compileContentExpr compiles non-FLWOR element content: $var/* expands a
// row into its field elements; $var/field produces a single field element;
// scalars embed as text.
func (c *Compiler) compileContentExpr(cx *ctx, e xquery.Expr) (xqgm.Expr, string, error) {
	if p, ok := e.(*xquery.Path); ok {
		if vr, ok := p.Base.(*xquery.VarRef); ok && len(p.Steps) == 1 && p.Steps[0].Axis == "child" {
			b, ok2 := cx.vars[vr.Name]
			if ok2 && b.set != nil && b.set.realized {
				b = &binding{isRow: true, table: b.set.table, start: b.set.realizedStart, width: b.set.realizedWidth}
			}
			if ok2 && b.isRow {
				def, _ := c.schema.Table(b.table)
				if p.Steps[0].Name == "*" {
					// All fields as child elements, in column order.
					var kids []xqgm.Expr
					for ci, col := range def.Columns {
						kids = append(kids, &xqgm.ElemCtor{
							Name:     col.Name,
							Children: []xqgm.Expr{xqgm.Col(b.start + ci)},
						})
					}
					// A sequence splice: wrap in a constructor-less seq via
					// nested expression list. Use a synthetic ElemCtor-free
					// approach: return children as a Call "seq"? Simplest:
					// return an expression list via chained ctor is wrong;
					// instead inline each field separately.
					return seqExpr(kids), "", nil
				}
				ci := def.ColIndex(p.Steps[0].Name)
				if ci < 0 {
					return nil, "", fmt.Errorf("unknown column %s.%s", b.table, p.Steps[0].Name)
				}
				return &xqgm.ElemCtor{Name: p.Steps[0].Name, Children: []xqgm.Expr{xqgm.Col(b.start + ci)}}, p.Steps[0].Name, nil
			}
		}
	}
	se, err := c.compileScalar(cx, e)
	if err != nil {
		return nil, "", err
	}
	return se, "", nil
}

// compileWhereConj compiles one where-conjunct; count($set) predicates
// resolve to the count column of the set's child aggregation when present.
func (c *Compiler) compileWhereConj(cx *ctx, e xquery.Expr, frags map[string]*childFragRef) (xqgm.Expr, error) {
	if cmp, ok := e.(*xquery.Cmp); ok {
		if col, ok2 := countRef(cmp.L, frags); ok2 {
			r, err := c.compileScalar(cx, cmp.R)
			if err != nil {
				return nil, err
			}
			return &xqgm.Cmp{Op: cmp.Op, L: xqgm.Col(col), R: r}, nil
		}
		if col, ok2 := countRef(cmp.R, frags); ok2 {
			l, err := c.compileScalar(cx, cmp.L)
			if err != nil {
				return nil, err
			}
			return &xqgm.Cmp{Op: cmp.Op, L: l, R: xqgm.Col(col)}, nil
		}
	}
	return c.compileScalar(cx, e)
}

// childFragRef records where a nested child's fragment and count columns
// landed in the enclosing context.
type childFragRef struct {
	col      int
	countCol int
}

func countRef(e xquery.Expr, frags map[string]*childFragRef) (int, bool) {
	fc, ok := e.(*xquery.FnCall)
	if !ok || fc.Name != "count" || len(fc.Args) != 1 {
		return 0, false
	}
	vr, ok := fc.Args[0].(*xquery.VarRef)
	if !ok {
		return 0, false
	}
	f, ok := frags[vr.Name]
	if !ok {
		return 0, false
	}
	return f.countCol, true
}

// seqExpr builds an expression evaluating to a sequence of the given
// expressions' values (used for $var/* expansion).
func seqExpr(items []xqgm.Expr) xqgm.Expr {
	return &seqCtor{items: items}
}

// seqCtor is an internal expression assembling a sequence value.
type seqCtor struct {
	items []xqgm.Expr
}

// Eval implements xqgm.Expr.
func (s *seqCtor) Eval(env *xqgm.Env) (xdm.Value, error) {
	out := make([]xdm.Value, 0, len(s.items))
	for _, it := range s.items {
		v, err := it.Eval(env)
		if err != nil {
			return xdm.Null, err
		}
		out = append(out, v)
	}
	return xdm.Seq(out), nil
}

// SeqItems exposes the assembled expressions so SQL rendering (core.RenderSQL)
// can emit the sequence as an executable xml_concat call without depending on
// this unexported type.
func (s *seqCtor) SeqItems() []xqgm.Expr { return s.items }

func (s *seqCtor) String() string {
	out := "("
	for i, it := range s.items {
		if i > 0 {
			out += ", "
		}
		out += it.String()
	}
	return out + ")"
}
