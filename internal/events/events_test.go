package events

import (
	"fmt"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

func asSet(tes []TableEvent) map[string]bool {
	out := map[string]bool{}
	for _, te := range tes {
		out[te.String()] = true
	}
	return out
}

// TestPaperEventPushdown checks the paper's Section 3.3 claim: "UPDATE on
// the result of Box 7 ... can be caused either by an UPDATE on the product
// table, or by an INSERT, UPDATE or DELETE on the vendor table."
func TestPaperEventPushdown(t *testing.T) {
	s := schema.ProductVendor()
	v := fixtures.BuildCatalogView(s, 2)
	got := asSet(GetSrcEvents(s, v.ProductProj, reldb.EvUpdate))
	want := map[string]bool{
		"UPDATE ON product": true,
		"INSERT ON vendor":  true,
		"UPDATE ON vendor":  true,
		"DELETE ON vendor":  true,
	}
	if len(got) != len(want) {
		t.Errorf("events = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing event %s (got %v)", k, got)
		}
	}
	// In particular, INSERT/DELETE on product must be pruned by the FK
	// refinement: a new product cannot match existing vendors.
	if got["INSERT ON product"] || got["DELETE ON product"] {
		t.Errorf("FK refinement failed: %v", got)
	}
}

// TestInsertDeleteEventPushdown: XML INSERT/DELETE on the product path can
// be caused by vendor changes (count crossings) and product renames, but
// not by product INSERT/DELETE (FK refinement).
func TestInsertDeleteEventPushdown(t *testing.T) {
	s := schema.ProductVendor()
	for _, ev := range []reldb.Event{reldb.EvInsert, reldb.EvDelete} {
		v := fixtures.BuildCatalogView(s, 2)
		got := asSet(GetSrcEvents(s, v.ProductProj, ev))
		for _, want := range []string{"UPDATE ON product", "INSERT ON vendor", "UPDATE ON vendor", "DELETE ON vendor"} {
			if !got[want] {
				t.Errorf("%v: missing %s (got %v)", ev, want, got)
			}
		}
		if got["INSERT ON product"] || got["DELETE ON product"] {
			t.Errorf("%v: product INSERT/DELETE not pruned: %v", ev, got)
		}
	}
}

// TestWithoutFKRefinement: dropping the foreign key declaration makes the
// pushdown conservative (product INSERT/DELETE reappear).
func TestWithoutFKRefinement(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "product",
		Columns: []schema.Column{
			{Name: "pid", Type: schema.TString},
			{Name: "pname", Type: schema.TString},
			{Name: "mfr", Type: schema.TString},
		},
		PrimaryKey: []string{"pid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "vendor",
		Columns: []schema.Column{
			{Name: "vid", Type: schema.TString},
			{Name: "pid", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey: []string{"vid", "pid"},
		// no foreign key
	})
	v := fixtures.BuildCatalogView(s, 2)
	got := asSet(GetSrcEvents(s, v.ProductProj, reldb.EvUpdate))
	if !got["INSERT ON product"] || !got["DELETE ON product"] {
		t.Errorf("without FK, product INSERT/DELETE should be included: %v", got)
	}
}

// TestSelectOnlyUpdates: a flat selection view maps UPDATE to UPDATE only.
func TestSelectOnlyUpdates(t *testing.T) {
	s := schema.ProductVendor()
	pdef, _ := s.Table("product")
	p := xqgm.NewTable(pdef, xqgm.SrcBase)
	sel := xqgm.NewSelect(p, &xqgm.Cmp{Op: "=", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Str("Samsung"))})
	got := asSet(GetSrcEvents(s, sel, reldb.EvUpdate))
	if len(got) != 1 || !got["UPDATE ON product"] {
		t.Errorf("got %v, want only UPDATE ON product", got)
	}
	// INSERT on the selection ← INSERT on the table or UPDATE flipping the
	// predicate.
	got = asSet(GetSrcEvents(s, sel, reldb.EvInsert))
	if !got["INSERT ON product"] || !got["UPDATE ON product"] {
		t.Errorf("INSERT pushdown through Select: %v", got)
	}
	if got["DELETE ON product"] {
		t.Errorf("DELETE should not cause INSERT on a selection: %v", got)
	}
}

// TestProjectColumnSensitivity: updates to columns not used by the
// projection do not fire.
func TestProjectColumnSensitivity(t *testing.T) {
	s := schema.ProductVendor()
	vdef, _ := s.Table("vendor")
	vt := xqgm.NewTable(vdef, xqgm.SrcBase)
	proj := xqgm.NewProject(vt,
		xqgm.Proj{Name: "vid", E: xqgm.Col(0)},
		xqgm.Proj{Name: "pid", E: xqgm.Col(1)},
	)
	// UPDATE on the projection can only come from vendor updates; there is
	// no way to express column-level triggers in reldb, so the table-event
	// granularity is (vendor, UPDATE).
	got := asSet(GetSrcEvents(s, proj, reldb.EvUpdate))
	if len(got) != 1 || !got["UPDATE ON vendor"] {
		t.Errorf("got %v", got)
	}
}

// TestGroupByEventRules: aggregate outputs make INSERT/DELETE on the input
// relevant for UPDATE events; grouping-only outputs do not.
func TestGroupByEventRules(t *testing.T) {
	s := schema.ProductVendor()
	vdef, _ := s.Table("vendor")
	vt := xqgm.NewTable(vdef, xqgm.SrcBase)
	g := xqgm.NewGroupBy(vt, []int{1}, xqgm.Agg{Name: "n", Func: xqgm.AggCount})
	got := asSet(GetSrcEvents(s, g, reldb.EvUpdate))
	for _, want := range []string{"INSERT ON vendor", "DELETE ON vendor", "UPDATE ON vendor"} {
		if !got[want] {
			t.Errorf("groupby UPDATE: missing %s in %v", want, got)
		}
	}
	// Projecting ONLY the group column: C ⊆ G, so INSERT/DELETE are not
	// relevant for UPDATE events (Table 4 "unless C ⊆ G").
	proj := xqgm.NewProject(g, xqgm.Proj{Name: "pid", E: xqgm.Col(0)})
	got = asSet(GetSrcEvents(s, proj, reldb.EvUpdate))
	if got["INSERT ON vendor"] || got["DELETE ON vendor"] {
		t.Errorf("C⊆G case should not include INSERT/DELETE: %v", got)
	}
	if !got["UPDATE ON vendor"] {
		t.Errorf("C⊆G case should still include UPDATE: %v", got)
	}
}

// TestUnionEvents: events propagate into all branches.
func TestUnionEvents(t *testing.T) {
	s := schema.ProductVendor()
	pdef, _ := s.Table("product")
	p := xqgm.NewTable(pdef, xqgm.SrcBase)
	a := xqgm.NewSelect(p, &xqgm.Cmp{Op: "=", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Str("Samsung"))})
	b := xqgm.NewSelect(p, &xqgm.Cmp{Op: "=", L: xqgm.Col(1), R: xqgm.LitOf(xdm.Str("CRT 15"))})
	u := xqgm.NewUnion(true, a, b)
	got := asSet(GetSrcEvents(s, u, reldb.EvDelete))
	if !got["DELETE ON product"] || !got["UPDATE ON product"] {
		t.Errorf("union DELETE pushdown: %v", got)
	}
}

// TestEventOrderingDeterministic: output is sorted.
func TestEventOrderingDeterministic(t *testing.T) {
	s := schema.ProductVendor()
	v := fixtures.BuildCatalogView(s, 2)
	a := GetSrcEvents(s, v.ProductProj, reldb.EvUpdate)
	b := GetSrcEvents(s, fixtures.BuildCatalogView(s, 2).ProductProj, reldb.EvUpdate)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Table > a[i].Table {
			t.Errorf("not sorted: %v", a)
		}
	}
}

// TestEventsMatchRuntime cross-checks the pushdown against reality: for
// every (table, event) NOT in the pushdown set, random statements of that
// kind must never change the view.
func TestEventsMatchRuntime(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	v := fixtures.BuildCatalogView(s, 2)
	relevant := asSet(GetSrcEvents(s, v.ProductProj, reldb.EvUpdate))
	// Also collect INSERT/DELETE XML events - the union of all three XML
	// events covers any view change.
	for _, ev := range []reldb.Event{reldb.EvInsert, reldb.EvDelete} {
		for k := range asSet(GetSrcEvents(s, fixtures.BuildCatalogView(s, 2).ProductProj, ev)) {
			relevant[k] = true
		}
	}
	snapshot := func() string {
		ctx := xqgm.NewEvalContext(db, nil)
		rows, err := ctx.Eval(fixtures.BuildCatalogView(s, 2).Root)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0][0].AsNode().Serialize(false)
	}
	// product INSERT must be irrelevant (FK refinement) — verify: inserting
	// products never changes the view.
	if relevant["INSERT ON product"] {
		t.Skip("pushdown already includes product INSERT; nothing to verify")
	}
	before := snapshot()
	if err := db.Insert("product", reldb.Row{xdm.Str("P7"), xdm.Str("CRT 15"), xdm.Str("NewCo")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("product", reldb.Row{xdm.Str("P8"), xdm.Str("Fresh"), xdm.Str("NewCo")}); err != nil {
		t.Fatal(err)
	}
	if after := snapshot(); after != before {
		t.Error("product INSERT changed the view despite being pruned from pushdown")
	}
}
