// Package events implements event pushdown (paper Section 3.3 and
// Appendix C): given the XQGM graph of a trigger's Path and the XML event
// being monitored, it determines the minimal set of base-table events
// (table, INSERT/UPDATE/DELETE) that can cause that XML event, using the
// operator-specific rules of Table 4 plus a foreign-key refinement that
// prunes parent-table INSERT/DELETE events which cannot produce or remove
// join results (this is what reduces the paper's example to "UPDATE on
// product; INSERT, UPDATE or DELETE on vendor").
package events

import (
	"fmt"
	"sort"

	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xqgm"
)

// TableEvent is one base-table event that can fire the trigger.
type TableEvent struct {
	Table string
	Event reldb.Event
}

func (te TableEvent) String() string {
	return fmt.Sprintf("%s ON %s", te.Event, te.Table)
}

// colSet is a set of output-column indexes; nil means "all columns".
type colSet map[int]bool

func allCols() colSet { return nil }

func (c colSet) key() string {
	if c == nil {
		return "*"
	}
	idx := make([]int, 0, len(c))
	for i := range c {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return fmt.Sprint(idx)
}

func (c colSet) has(i int) bool { return c == nil || c[i] }

func (c colSet) empty() bool { return c != nil && len(c) == 0 }

// GetSrcEvents returns the base-table events that can cause event ev on the
// output of operator o (paper Figure 19). The schema is used for the
// foreign-key join refinement.
func GetSrcEvents(s *schema.Schema, o *xqgm.Operator, ev reldb.Event) []TableEvent {
	p := &pusher{schema: s, seen: map[string]bool{}, memo: map[string]bool{}}
	p.push(o, ev, allCols())
	out := make([]TableEvent, 0, len(p.out))
	out = append(out, p.out...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Event < out[j].Event
	})
	return out
}

type pusher struct {
	schema *schema.Schema
	out    []TableEvent
	seen   map[string]bool // emitted (table, event) pairs
	memo   map[string]bool // visited (op, event, cols) states
}

func (p *pusher) emit(table string, ev reldb.Event) {
	k := fmt.Sprintf("%s/%d", table, ev)
	if p.seen[k] {
		return
	}
	p.seen[k] = true
	p.out = append(p.out, TableEvent{Table: table, Event: ev})
}

func (p *pusher) push(o *xqgm.Operator, ev reldb.Event, cols colSet) {
	if cols.empty() {
		return
	}
	mk := fmt.Sprintf("%p/%d/%s", o, ev, cols.key())
	if p.memo[mk] {
		return
	}
	p.memo[mk] = true

	switch o.Type {
	case xqgm.OpTable, xqgm.OpConstants:
		if o.Type == xqgm.OpTable {
			p.emit(o.Table, ev)
		}
	case xqgm.OpSelect:
		in := o.Inputs[0]
		switch ev {
		case reldb.EvUpdate:
			// UPDATE(O,C) ← UPDATE(I,C): the value change passes through,
			// provided the selection still holds (a predicate flip is an
			// INSERT/DELETE on O, not an UPDATE).
			p.push(in, reldb.EvUpdate, cols)
		case reldb.EvInsert, reldb.EvDelete:
			// INSERT/DELETE(O) ← INSERT/DELETE(I) and UPDATE(I, Cσ).
			p.push(in, ev, allCols())
			p.push(in, reldb.EvUpdate, toSet(xqgm.ExprCols(o.Pred)))
		}
	case xqgm.OpOrderBy, xqgm.OpUnnest:
		p.push(o.Inputs[0], ev, allCols())
	case xqgm.OpProject:
		in := o.Inputs[0]
		switch ev {
		case reldb.EvUpdate:
			// "All columns" of a Project means all of its projections — the
			// input columns it does not reference cannot influence it.
			ic := colSet{}
			for c, pr := range o.Projs {
				if !cols.has(c) {
					continue
				}
				for _, icol := range xqgm.ExprCols(pr.E) {
					ic[icol] = true
				}
			}
			p.push(in, reldb.EvUpdate, ic)
		case reldb.EvInsert, reldb.EvDelete:
			p.push(in, ev, allCols())
		}
	case xqgm.OpJoin:
		p.pushJoin(o, ev, cols)
	case xqgm.OpGroupBy:
		p.pushGroupBy(o, ev, cols)
	case xqgm.OpUnion:
		for _, in := range o.Inputs {
			switch ev {
			case reldb.EvUpdate:
				p.push(in, reldb.EvUpdate, cols)
			case reldb.EvInsert, reldb.EvDelete:
				// Table 4: INSERT/DELETE(O) can come from INSERT/DELETE on
				// any input, and from UPDATE on any input (a tuple becoming
				// or ceasing to be a duplicate).
				p.push(in, ev, allCols())
				p.push(in, reldb.EvUpdate, allCols())
			}
		}
	}
}

func toSet(cols []int) colSet {
	s := colSet{}
	for _, c := range cols {
		s[c] = true
	}
	return s
}

func (p *pusher) pushJoin(o *xqgm.Operator, ev reldb.Event, cols colSet) {
	l, r := o.Inputs[0], o.Inputs[1]
	lw := l.OutWidth()
	joinColsL := colSet{}
	joinColsR := colSet{}
	for _, eq := range o.On {
		joinColsL[eq.L] = true
		joinColsR[eq.R] = true
	}
	if o.JoinPred != nil {
		// Join predicates reference the left input as input 0 and the
		// right input as input 1.
		xqgm.RewriteExpr(o.JoinPred, func(x xqgm.Expr) xqgm.Expr {
			if cr, ok := x.(*xqgm.ColRef); ok {
				if cr.Input == 0 {
					joinColsL[cr.Col] = true
				} else {
					joinColsR[cr.Col] = true
				}
			}
			return x
		})
	}
	switch ev {
	case reldb.EvUpdate:
		lset, rset := splitCols(cols, lw)
		p.push(l, reldb.EvUpdate, lset)
		p.push(r, reldb.EvUpdate, rset)
	case reldb.EvInsert, reldb.EvDelete:
		// INSERT/DELETE(O) ← INSERT/DELETE on either input, plus UPDATE of
		// the join columns on either input. The FK refinement prunes
		// INSERT/DELETE on the parent side of a key/foreign-key join: a
		// newly inserted (or about-to-be-deleted) parent row cannot match
		// any child rows while the foreign key holds.
		parentIsLeft, parentIsRight := p.fkParentSides(o)
		if !parentIsLeft {
			p.push(l, ev, allCols())
		}
		if !parentIsRight {
			p.push(r, ev, allCols())
		}
		p.push(l, reldb.EvUpdate, joinColsL)
		p.push(r, reldb.EvUpdate, joinColsR)
	}
}

func splitCols(cols colSet, lw int) (colSet, colSet) {
	if cols == nil {
		return nil, nil
	}
	lset, rset := colSet{}, colSet{}
	for c := range cols {
		if c < lw {
			lset[c] = true
		} else {
			rset[c-lw] = true
		}
	}
	return lset, rset
}

func (p *pusher) pushGroupBy(o *xqgm.Operator, ev reldb.Event, cols colSet) {
	in := o.Inputs[0]
	ng := len(o.GroupCols)
	switch ev {
	case reldb.EvUpdate:
		// Input columns of interest: group columns and agg arguments for
		// the output columns in C.
		ic := colSet{}
		onlyGroupCols := true
		for c := 0; c < ng+len(o.Aggs); c++ {
			if !cols.has(c) {
				continue
			}
			if c < ng {
				ic[o.GroupCols[c]] = true
			} else {
				onlyGroupCols = false
				if a := o.Aggs[c-ng]; a.Arg != nil {
					for _, icol := range xqgm.ExprCols(a.Arg) {
						ic[icol] = true
					}
				}
			}
		}
		p.push(in, reldb.EvUpdate, ic)
		// Table 4: INSERT(I)/DELETE(I) can change aggregate values, hence
		// cause UPDATE(O,C), unless C ⊆ G.
		if !onlyGroupCols {
			p.push(in, reldb.EvInsert, allCols())
			p.push(in, reldb.EvDelete, allCols())
		}
	case reldb.EvInsert, reldb.EvDelete:
		// A new/removed group requires an insert/delete on the input or an
		// update of a grouping column.
		p.push(in, ev, allCols())
		gset := colSet{}
		for _, g := range o.GroupCols {
			gset[g] = true
		}
		p.push(in, reldb.EvUpdate, gset)
	}
}

// fkParentSides reports whether the left/right input of an equi-join is the
// "parent" side of a declared foreign key covering exactly the join's
// column pairs. When child.fk REFERENCES parent.pk holds, inserting or
// deleting a parent row cannot create or remove join matches (children
// referencing it cannot exist at that moment), so those events are pruned.
func (p *pusher) fkParentSides(o *xqgm.Operator) (left, right bool) {
	if len(o.On) == 0 || o.JoinPred != nil {
		return false, false
	}
	lTab, lCols := baseCols(o.Inputs[0], onSide(o, 0))
	rTab, rCols := baseCols(o.Inputs[1], onSide(o, 1))
	if lTab == "" || rTab == "" {
		return false, false
	}
	left = p.isFKTarget(rTab, rCols, lTab, lCols)
	right = p.isFKTarget(lTab, lCols, rTab, rCols)
	return left, right
}

// onSide collects the join columns on the given input (0 = left, 1 =
// right), in On order, expressed in that input's column positions.
func onSide(o *xqgm.Operator, side int) []int {
	out := make([]int, len(o.On))
	for i, eq := range o.On {
		if side == 0 {
			out[i] = eq.L
		} else {
			out[i] = eq.R
		}
	}
	return out
}

// baseCols resolves the given output columns of op to (table, base column
// names) when op is a base-table access path (Table, possibly under Select
// or a column-preserving Project). Empty table name means unresolvable.
func baseCols(op *xqgm.Operator, cols []int) (string, []string) {
	if cols == nil {
		return "", nil
	}
	switch op.Type {
	case xqgm.OpTable:
		if op.Source != xqgm.SrcBase && op.Source != xqgm.SrcOld {
			return "", nil
		}
		names := make([]string, len(cols))
		for i, c := range cols {
			if c < 0 || c >= len(op.Names) {
				return "", nil
			}
			names[i] = op.Names[c]
		}
		return op.Table, names
	case xqgm.OpSelect, xqgm.OpOrderBy:
		return baseCols(op.Inputs[0], cols)
	case xqgm.OpProject:
		in := make([]int, len(cols))
		for i, c := range cols {
			if c < 0 || c >= len(op.Projs) {
				return "", nil
			}
			cr, ok := op.Projs[c].E.(*xqgm.ColRef)
			if !ok || cr.Input != 0 {
				return "", nil
			}
			in[i] = cr.Col
		}
		return baseCols(op.Inputs[0], in)
	default:
		return "", nil
	}
}

// isFKTarget reports whether childTable.childCols is a declared foreign key
// referencing parentTable.parentCols (order-sensitive pairing).
func (p *pusher) isFKTarget(childTable string, childCols []string, parentTable string, parentCols []string) bool {
	ct, ok := p.schema.Table(childTable)
	if !ok || len(childCols) == 0 || len(childCols) != len(parentCols) {
		return false
	}
	for _, fk := range ct.ForeignKeys {
		if fk.RefTable != parentTable || len(fk.Columns) != len(childCols) {
			continue
		}
		match := true
		for i := range childCols {
			if fk.Columns[i] != childCols[i] || fk.RefColumns[i] != parentCols[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
