package tagger

import (
	"testing"

	"quark/internal/fixtures"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// buildCatalogUnion builds the two-level sorted outer union for the paper's
// catalog view: level 1 rows are qualifying products (pname), level 2 rows
// are their vendors (pname, vid, pid, price) — the shape of Figure 16's
// final SELECT ... UNION ALL ... ORDER BY.
func buildCatalogUnion(t *testing.T) (*xqgm.Operator, *Template, []xqgm.Tuple) {
	t.Helper()
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(db.Schema(), 2)

	// Level 1: qualifying products -> (pname).
	lvl1 := xqgm.ProjectCols(v.ProductProj, []int{v.ProdNameCol})

	// Level 2: vendors of qualifying products -> (pname, vid, pid, price).
	// Join the qualifying names with the product/vendor join (box 3).
	names := xqgm.NewGroupBy(lvl1, []int{0})
	join := xqgm.NewJoin(xqgm.JoinInner, names, v.PVJoin, []xqgm.JoinEq{{L: 0, R: 1}}, nil)
	lvl2 := xqgm.NewProject(join,
		xqgm.Proj{Name: "pname", E: xqgm.Col(0)},
		xqgm.Proj{Name: "vid", E: xqgm.Col(4)},
		xqgm.Proj{Name: "pid", E: xqgm.Col(5)},
		xqgm.Proj{Name: "price", E: xqgm.Col(6)},
	)

	union, err := OuterUnion([]*xqgm.Operator{lvl1, lvl2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &Template{
		LevelCol: 0,
		Levels: []Level{
			{Tag: 1, ElemName: "product", KeyCols: []int{1},
				Attrs: []AttrSpec{{Name: "name", Col: 1}}, TextCol: -1},
			{Tag: 2, ElemName: "vendor", KeyCols: []int{2, 3},
				Fields:  []FieldSpec{{Name: "vid", Col: 2}, {Name: "pid", Col: 3}, {Name: "price", Col: 4}},
				TextCol: -1},
		},
	}
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(union)
	if err != nil {
		t.Fatal(err)
	}
	return union, tmpl, rows
}

// TestTaggerReconstructsCatalog: tagging the sorted outer union yields the
// same products as direct view evaluation.
func TestTaggerReconstructsCatalog(t *testing.T) {
	_, tmpl, rows := buildCatalogUnion(t)
	nodes, err := tmpl.Tag(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("tagged products = %d, want 2", len(nodes))
	}
	// Compare against direct evaluation of the view's product level.
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	ctx := xqgm.NewEvalContext(db, nil)
	direct, err := ctx.Eval(v.ProductProj)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, r := range direct {
		n := r[v.ProdNodeCol].AsNode()
		nm, _ := n.Attribute("name")
		want[nm] = n.Serialize(false)
	}
	for _, n := range nodes {
		nm, _ := n.Attribute("name")
		if got := n.Serialize(false); got != want[nm] {
			t.Errorf("tagged %q:\n got: %s\nwant: %s", nm, got, want[nm])
		}
	}
}

// TestTaggerRowOrder: rows arrive parent-first because of the union's
// ORDER BY (nulls sort first).
func TestTaggerRowOrder(t *testing.T) {
	_, _, rows := buildCatalogUnion(t)
	if len(rows) != 2+7 {
		t.Fatalf("union rows = %d, want 9 (2 products + 7 vendors)", len(rows))
	}
	if rows[0][0].AsInt() != 1 {
		t.Errorf("first row level = %v, want 1 (product before its vendors)", rows[0][0])
	}
	// Every level-2 row must follow a level-1 row with the same pname.
	currentName := ""
	for i, r := range rows {
		switch r[0].AsInt() {
		case 1:
			currentName = r[1].AsString()
		case 2:
			if r[1].AsString() != currentName {
				t.Errorf("row %d: vendor of %q under product %q", i, r[1].AsString(), currentName)
			}
		}
	}
}

// TestTaggerErrors: malformed inputs are rejected.
func TestTaggerErrors(t *testing.T) {
	tmpl := &Template{LevelCol: 0, Levels: []Level{
		{Tag: 1, ElemName: "a", TextCol: -1},
		{Tag: 2, ElemName: "b", TextCol: -1},
	}}
	// Child with no open parent.
	_, err := tmpl.Tag([]xqgm.Tuple{{xdm.Int(2)}})
	if err == nil {
		t.Error("expected error for orphan child row")
	}
	// Unknown level.
	_, err = tmpl.Tag([]xqgm.Tuple{{xdm.Int(9)}})
	if err == nil {
		t.Error("expected error for unknown level")
	}
	// Empty input is fine.
	nodes, err := tmpl.Tag(nil)
	if err != nil || len(nodes) != 0 {
		t.Error("empty input should tag to nothing")
	}
	if _, err := OuterUnion(nil, nil); err == nil {
		t.Error("OuterUnion with no levels should fail")
	}
}
