// Package tagger implements the constant-space tagger of XPERANTO/Quark
// (paper Section 3.2 and Figure 16 lines 61-71): it converts the rows of a
// sorted outer union — one row per XML node, tagged with a level number and
// padded with NULLs for the other levels' columns — into XML documents,
// holding only the current path of open elements in memory.
//
// The trigger pipeline executes XQGM plans directly (construction functions
// run in the evaluator), but the tagger demonstrates — and tests verify —
// that the generated relational plans could equally ship flat rows to a
// middleware tagger, as the paper's DB2-hosted system does.
package tagger

import (
	"fmt"

	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// AttrSpec maps an outer-union column to an attribute of the level element.
type AttrSpec struct {
	Name string
	Col  int
}

// FieldSpec maps an outer-union column to a scalar child element.
type FieldSpec struct {
	Name string
	Col  int
}

// Level describes one level of the sorted outer union.
type Level struct {
	// Tag is the value of the level column identifying this level's rows.
	Tag int64
	// ElemName is the element constructed for each row of this level.
	ElemName string
	// KeyCols identify a node instance (within the union row).
	KeyCols []int
	// Attrs and Fields populate the element from the row.
	Attrs  []AttrSpec
	Fields []FieldSpec
	// TextCol, when >= 0, supplies text content.
	TextCol int
}

// Template is a full tagging specification: LevelCol selects each row's
// level; Levels are ordered root-first (level i+1 rows attach to the most
// recently opened level-i element).
type Template struct {
	LevelCol int
	Levels   []Level
}

// Tag converts sorted outer-union rows into the sequence of root-level
// elements. Rows must be sorted so that each parent row immediately
// precedes its children (the ORDER BY of the sorted outer union). Space is
// constant in the document size: only the stack of currently open nodes is
// retained (the output slice aside).
func (t *Template) Tag(rows []xqgm.Tuple) ([]*xdm.Node, error) {
	var out []*xdm.Node
	// stack[i] is the currently open node at level i.
	stack := make([]*xdm.Node, len(t.Levels))
	for _, row := range rows {
		if t.LevelCol >= len(row) {
			return nil, fmt.Errorf("tagger: row too narrow for level column %d", t.LevelCol)
		}
		tag := row[t.LevelCol].AsInt()
		li := -1
		for i, l := range t.Levels {
			if l.Tag == tag {
				li = i
				break
			}
		}
		if li < 0 {
			return nil, fmt.Errorf("tagger: unknown level tag %d", tag)
		}
		l := t.Levels[li]
		n := xdm.Elem(l.ElemName)
		for _, a := range l.Attrs {
			n.AppendChild(xdm.Attr(a.Name, row[a.Col].Lexical()))
		}
		for _, f := range l.Fields {
			n.AppendChild(xdm.Elem(f.Name, xdm.TextNd(row[f.Col].Lexical())))
		}
		if l.TextCol >= 0 && l.TextCol < len(row) && !row[l.TextCol].IsNull() {
			n.AppendChild(xdm.TextNd(row[l.TextCol].Lexical()))
		}
		if li == 0 {
			out = append(out, n)
		} else {
			parent := stack[li-1]
			if parent == nil {
				return nil, fmt.Errorf("tagger: level-%d row with no open parent (input not sorted?)", tag)
			}
			parent.AppendChild(n)
		}
		stack[li] = n
		for i := li + 1; i < len(stack); i++ {
			stack[i] = nil
		}
	}
	return out, nil
}

// OuterUnion builds the sorted outer union plan over per-level operators:
// each level's rows are padded to the common width
// [level, key columns..., level-specific columns...] and the union is
// ordered by the interleaved key columns then level, so parents precede
// children (Figure 16's ORDER BY TrigIDs, pname, vid). levels[i] must
// produce the key columns of all enclosing levels first.
func OuterUnion(levels []*xqgm.Operator, keyWidths []int) (*xqgm.Operator, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("tagger: no levels")
	}
	// Common width: 1 (level) + max over levels of their width.
	maxW := 0
	for _, l := range levels {
		if w := l.OutWidth(); w > maxW {
			maxW = w
		}
	}
	padded := make([]*xqgm.Operator, len(levels))
	for i, l := range levels {
		projs := make([]xqgm.Proj, 0, maxW+1)
		projs = append(projs, xqgm.Proj{Name: "lvl", E: xqgm.LitOf(xdm.Int(int64(i + 1)))})
		w := l.OutWidth()
		for c := 0; c < maxW; c++ {
			if c < w {
				projs = append(projs, xqgm.Proj{Name: fmt.Sprintf("c%d", c), E: xqgm.Col(c)})
			} else {
				projs = append(projs, xqgm.Proj{Name: fmt.Sprintf("c%d", c), E: xqgm.LitOf(xdm.Null)})
			}
		}
		padded[i] = xqgm.NewProject(l, projs...)
	}
	u := xqgm.NewUnion(false, padded...)
	// Sort by the outermost level's keys, then deeper keys, then level, so
	// each parent row precedes its children: order by key columns in
	// outer-to-inner order with NULLS FIRST (xdm.Compare sorts nulls
	// first), finally by the level column.
	var order []xqgm.OrderCol
	col := 1
	for li := range levels {
		for k := 0; k < keyWidths[li]; k++ {
			order = append(order, xqgm.OrderCol{Col: col})
			col++
		}
		_ = li
	}
	order = append(order, xqgm.OrderCol{Col: 0})
	return xqgm.NewOrderBy(u, order...), nil
}
