package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLaneFIFO: deliveries of one trigger run in enqueue order even with
// many workers.
func TestLaneFIFO(t *testing.T) {
	d := New(Config{Workers: 8, QueueCap: 1024})
	defer d.Close()
	var mu sync.Mutex
	var got []int
	const n = 500
	for i := 0; i < n; i++ {
		i := i
		if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	if len(got) != n {
		t.Fatalf("ran %d deliveries, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d ran out of order (got value %d)", i, v)
		}
	}
}

// TestLaneExclusive: one lane never runs two deliveries concurrently,
// while distinct lanes do fan out across workers.
func TestLaneExclusive(t *testing.T) {
	d := New(Config{Workers: 8, QueueCap: 1024})
	defer d.Close()
	var inLane, maxInLane, inAll, maxInAll atomic.Int32
	track := func(cur, max *atomic.Int32) func() {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		return func() { cur.Add(-1) }
	}
	for i := 0; i < 200; i++ {
		lane := fmt.Sprintf("lane%d", i%8)
		mine := lane == "lane0"
		if err := d.Enqueue(Delivery{Trigger: lane, Run: func() error {
			defer track(&inAll, &maxInAll)()
			if mine {
				defer track(&inLane, &maxInLane)()
			}
			time.Sleep(200 * time.Microsecond)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain()
	if m := maxInLane.Load(); m != 1 {
		t.Errorf("lane0 ran %d deliveries concurrently, want 1", m)
	}
	if m := maxInAll.Load(); m < 2 {
		t.Errorf("max overall concurrency = %d, want >= 2 (no fan-out happened)", m)
	}
}

// TestPolicyError: a full queue rejects with ErrQueueFull and counts the
// rejection.
func TestPolicyError(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 2, Policy: Error})
	defer d.Close()
	gate := make(chan struct{})
	// Occupy the single worker so subsequent enqueues stay queued.
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	for i := 0; i < 2; i++ {
		if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	err := d.Enqueue(Delivery{Trigger: "b", Run: func() error { return nil }})
	if err != ErrQueueFull {
		t.Fatalf("enqueue on full queue = %v, want ErrQueueFull", err)
	}
	close(gate)
	d.Drain()
	st := d.Stats()
	if st.Dropped != 1 || st.Completed != 3 {
		t.Errorf("stats = %+v, want Dropped=1 Completed=3", st)
	}
	if ls, ok := d.TriggerStats("b"); !ok || ls.Dropped != 1 {
		t.Errorf("lane b stats = %+v ok=%v, want Dropped=1", ls, ok)
	}
}

// TestPolicyDropNewest: a full queue silently discards and counts.
func TestPolicyDropNewest(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 1, Policy: DropNewest})
	defer d.Close()
	gate := make(chan struct{})
	var ran atomic.Int32
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { ran.Add(1); return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { ran.Add(1); return nil }}); err != nil {
		t.Fatal(err) // dropped, not an error
	}
	close(gate)
	d.Drain()
	if got := ran.Load(); got != 1 {
		t.Errorf("ran %d queued deliveries, want 1 (second dropped)", got)
	}
	if st := d.Stats(); st.Dropped != 1 || st.Enqueued != 2 {
		t.Errorf("stats = %+v, want Dropped=1 Enqueued=2", st)
	}
}

// TestPolicyBlock: a blocked enqueuer proceeds when space frees.
func TestPolicyBlock(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 1, Policy: Block})
	defer d.Close()
	gate := make(chan struct{})
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- d.Enqueue(Delivery{Trigger: "a", Run: func() error { return nil }})
	}()
	select {
	case <-done:
		t.Fatal("enqueue on a full queue returned without blocking")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // worker drains; space frees; blocked enqueue proceeds
	if err := <-done; err != nil {
		t.Fatalf("blocked enqueue = %v, want nil", err)
	}
	d.Drain()
	if st := d.Stats(); st.Completed != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want Completed=3 Dropped=0", st)
	}
}

// TestCloseDrainsAndRejects: Close finishes queued work, then enqueues
// fail with ErrClosed; a Block-policy enqueuer stuck on a full queue is
// released with ErrClosed too.
func TestCloseDrainsAndRejects(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 1, Policy: Block})
	gate := make(chan struct{})
	var ran atomic.Int32
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { <-gate; ran.Add(1); return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { ran.Add(1); return nil }}); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- d.Enqueue(Delivery{Trigger: "a", Run: func() error { ran.Add(1); return nil }})
	}()
	time.Sleep(10 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		close(gate)
		_ = d.Close()
		close(closed)
	}()
	if err := <-blocked; err != ErrClosed {
		t.Errorf("blocked enqueue after Close = %v, want ErrClosed", err)
	}
	<-closed
	if got := ran.Load(); got != 2 {
		t.Errorf("Close ran %d queued deliveries, want 2", got)
	}
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { return nil }}); err != ErrClosed {
		t.Errorf("enqueue after Close = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

// TestDrainTrigger removes the lane after its deliveries complete.
func TestDrainTrigger(t *testing.T) {
	d := New(Config{Workers: 2, QueueCap: 16})
	defer d.Close()
	gate := make(chan struct{})
	var ran atomic.Int32
	for i := 0; i < 3; i++ {
		if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error {
			<-gate
			ran.Add(1)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(gate)
	}()
	st := d.DrainTrigger("t")
	if got := ran.Load(); got != 3 {
		t.Errorf("DrainTrigger returned with %d/3 deliveries run", got)
	}
	if st.Completed != 3 {
		t.Errorf("final lane stats = %+v, want Completed=3", st)
	}
	if _, ok := d.TriggerStats("t"); ok {
		t.Error("lane still present after DrainTrigger")
	}
	if d.Stats().Lanes != 0 {
		t.Errorf("lanes = %d after drain, want 0", d.Stats().Lanes)
	}
}

// TestActionErrorsAndPanics are counted and reported via OnError without
// killing workers.
func TestActionErrorsAndPanics(t *testing.T) {
	var reported atomic.Int32
	d := New(Config{Workers: 2, QueueCap: 16, OnError: func(trigger string, err error) {
		if trigger == "bad" && err != nil {
			reported.Add(1)
		}
	}})
	defer d.Close()
	if err := d.Enqueue(Delivery{Trigger: "bad", Run: func() error { return fmt.Errorf("sink down") }}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(Delivery{Trigger: "bad", Run: func() error { panic("boom") }}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(Delivery{Trigger: "ok", Run: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	st := d.Stats()
	if st.ActionErrors != 2 || st.Completed != 3 {
		t.Errorf("stats = %+v, want ActionErrors=2 Completed=3", st)
	}
	if got := reported.Load(); got != 2 {
		t.Errorf("OnError reported %d errors, want 2", got)
	}
	ls, ok := d.TriggerStats("bad")
	if !ok || ls.ActionErrors != 2 {
		t.Errorf("lane stats = %+v ok=%v, want ActionErrors=2", ls, ok)
	}
}

// TestMaxDepth records the queue high-water mark.
func TestMaxDepth(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 64})
	defer d.Close()
	gate := make(chan struct{})
	if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	for i := 0; i < 5; i++ {
		if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error { return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	d.Drain()
	if st := d.Stats(); st.MaxDepth != 5 {
		t.Errorf("MaxDepth = %d, want 5", st.MaxDepth)
	}
}

// waitRunning spins until the dispatcher reports n running deliveries, so
// tests can arrange a deterministically occupied pool.
func waitRunning(t *testing.T, d *Dispatcher, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().Running < n {
		if time.Now().After(deadline) {
			t.Fatalf("dispatcher never reached %d running deliveries", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLaneQuotaPreventsStarvation: a flooding trigger is capped at its
// quota, leaving shared-queue space for other triggers even though the
// flooder alone would fill it.
func TestLaneQuotaPreventsStarvation(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 8, LaneQuota: 2, Policy: DropNewest})
	defer d.Close()
	gate := make(chan struct{})
	if err := d.Enqueue(Delivery{Trigger: "hold", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	// The flooder tries to queue 20; only LaneQuota=2 may sit queued.
	var flooded atomic.Int32
	for i := 0; i < 20; i++ {
		if err := d.Enqueue(Delivery{Trigger: "flood", Run: func() error { flooded.Add(1); return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	if ls, _ := d.TriggerStats("flood"); ls.Queued != 2 || ls.Dropped != 18 {
		t.Fatalf("flood lane = %+v, want Queued=2 Dropped=18", ls)
	}
	// A well-behaved trigger still gets in: the flooder did not own the
	// shared queue.
	var quiet atomic.Int32
	if err := d.Enqueue(Delivery{Trigger: "quiet", Run: func() error { quiet.Add(1); return nil }}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	d.Drain()
	if flooded.Load() != 2 || quiet.Load() != 1 {
		t.Errorf("flooded=%d quiet=%d, want 2 and 1", flooded.Load(), quiet.Load())
	}
}

// TestPolicyDropOldest: at quota, the lane keeps the freshest deliveries
// in FIFO order and drops from the head.
func TestPolicyDropOldest(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 64, LaneQuota: 3, Policy: DropOldest})
	defer d.Close()
	gate := make(chan struct{})
	if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	var mu sync.Mutex
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	d.Drain()
	// Quota 3: the lane kept the newest three (7, 8, 9), in order.
	if len(got) != 3 || got[0] != 7 || got[1] != 8 || got[2] != 9 {
		t.Fatalf("ran %v, want [7 8 9] (oldest dropped, order kept)", got)
	}
	if st := d.Stats(); st.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", st.Dropped)
	}
}

// TestDropOldestNeverDisplacesOtherLanes: when the shared queue is full of
// other triggers' work, DropOldest with an empty own lane degrades to
// dropping the incoming delivery.
func TestDropOldestNeverDisplacesOtherLanes(t *testing.T) {
	d := New(Config{Workers: 1, QueueCap: 2, Policy: DropOldest})
	defer d.Close()
	gate := make(chan struct{})
	var aRan atomic.Int32
	if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	for i := 0; i < 2; i++ {
		if err := d.Enqueue(Delivery{Trigger: "a", Run: func() error { aRan.Add(1); return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	// Queue full with a's work; b has nothing queued to displace.
	var bRan atomic.Int32
	if err := d.Enqueue(Delivery{Trigger: "b", Run: func() error { bRan.Add(1); return nil }}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	d.Drain()
	if aRan.Load() != 2 || bRan.Load() != 0 {
		t.Errorf("a ran %d (want 2), b ran %d (want 0: dropped, not displacing)", aRan.Load(), bRan.Load())
	}
	if ls, ok := d.TriggerStats("b"); !ok || ls.Dropped != 1 {
		t.Errorf("lane b = %+v, want Dropped=1", ls)
	}
}

// TestBlockWakesLaneQuotaWaiters: with Block policy and a lane quota, an
// enqueuer blocked on its lane's quota (not the shared queue) must wake
// when that lane drains.
func TestBlockWakesLaneQuotaWaiters(t *testing.T) {
	d := New(Config{Workers: 2, QueueCap: 1024, LaneQuota: 1, Policy: Block})
	defer d.Close()
	gate := make(chan struct{})
	if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error { <-gate; return nil }}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d, 1)
	if err := d.Enqueue(Delivery{Trigger: "t", Run: func() error { return nil }}); err != nil {
		t.Fatal(err) // fills the quota-1 lane
	}
	done := make(chan error, 1)
	go func() {
		done <- d.Enqueue(Delivery{Trigger: "t", Run: func() error { return nil }})
	}()
	select {
	case err := <-done:
		t.Fatalf("enqueue returned %v before the lane drained", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked enqueuer never woke after the lane drained")
	}
	d.Drain()
	if st := d.Stats(); st.Completed != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want Completed=3 Dropped=0", st)
	}
}
