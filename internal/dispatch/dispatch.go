// Package dispatch decouples trigger actions from the firing statement:
// a bounded-queue worker pool that runs user-supplied action callbacks off
// the writer's critical path. The paper's translation makes trigger
// *detection* cheap — one statement-level SQL trigger per group — but the
// user-visible *action* is an external function call (Section 2.2), and a
// slow notification sink run inline stalls every writer whose statement
// fired it. The dispatcher restores the paper's asymmetry: detection stays
// inline under the statement's locks, delivery happens elsewhere.
//
// Ordering guarantee: deliveries for the same trigger never reorder and
// never run concurrently (per-trigger FIFO "lanes", matching enqueue
// order, which the engine ties to commit order via its table locks);
// deliveries for distinct triggers fan out across the worker pool.
//
// Backpressure: the queue capacity bounds the total number of queued
// deliveries across all lanes, and LaneQuota (optional) bounds each
// trigger's lane so one flooding trigger cannot consume the shared
// capacity and starve every other trigger. When either bound is hit,
// Enqueue applies the configured Policy: Block (wait for space — writers
// throttle to the sink rate), DropNewest (count and discard the new
// delivery), DropOldest (discard the flooding lane's oldest queued
// delivery to admit the new one — freshness over completeness), or Error
// (surface ErrQueueFull to the writer).
package dispatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quark/internal/obs"
)

// Policy selects the backpressure behavior of Enqueue on a full queue.
type Policy uint8

// Backpressure policies.
const (
	// Block waits until queue space frees up (or the dispatcher closes).
	Block Policy = iota
	// DropNewest discards the delivery being enqueued and counts it.
	DropNewest
	// Error rejects the delivery with ErrQueueFull, surfaced to the writer.
	Error
	// DropOldest discards the oldest *queued* delivery of the enqueueing
	// trigger's lane and admits the new one, keeping the freshest
	// notifications when a sink cannot keep up. When the lane has nothing
	// queued (the shared queue is full of other triggers' work), it
	// degrades to DropNewest — a delivery of another trigger is never
	// sacrificed.
	DropOldest
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "BLOCK"
	case DropNewest:
		return "DROP-NEWEST"
	case Error:
		return "ERROR"
	case DropOldest:
		return "DROP-OLDEST"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Sentinel errors surfaced to enqueuers.
var (
	ErrQueueFull = errors.New("dispatch: queue full")
	ErrClosed    = errors.New("dispatch: dispatcher closed")
)

// Delivery is one fired trigger activation: the trigger it belongs to (the
// FIFO lane key) and the closure that invokes the action. Run must be
// self-contained: it captures an immutable snapshot of everything the
// action needs (node bindings, evaluated arguments), so workers never
// touch engine or database state.
type Delivery struct {
	Trigger string
	Run     func() error
	// at is the enqueue timestamp, stamped by Enqueue only while
	// observability is attached; the worker turns it into the queue-wait
	// histogram. Unstamped (zero) deliveries record nothing.
	at time.Time
}

// Config parameterizes a Dispatcher.
type Config struct {
	// Workers is the pool size; defaults to runtime.NumCPU().
	Workers int
	// QueueCap bounds the queued (not yet running) deliveries across all
	// lanes; defaults to 1024.
	QueueCap int
	// LaneQuota, when positive, bounds the queued deliveries of any single
	// trigger's lane. It is the anti-starvation knob: without it, one
	// trigger flooding faster than its sink drains eventually owns the
	// whole shared queue and every other trigger's writers hit the
	// backpressure policy for work that is not theirs. Zero means no
	// per-lane bound (the pre-quota behavior).
	LaneQuota int
	// Policy is applied by Enqueue when the shared queue or the trigger's
	// lane quota is full.
	Policy Policy
	// OnError, when set, observes action errors (and recovered panics).
	// It is called outside the dispatcher's locks and must not call back
	// into the dispatcher's blocking operations for the same trigger.
	OnError func(trigger string, err error)
}

// Stats is a snapshot of dispatcher-wide counters.
type Stats struct {
	Enqueued     int64 // deliveries accepted into the queue
	Completed    int64 // deliveries whose action finished (ok or error)
	Dropped      int64 // deliveries discarded (DropNewest) or rejected (Error)
	ActionErrors int64 // actions that returned an error or panicked
	Panics       int64 // actions that panicked (a subset of ActionErrors)
	Queued       int64 // current queue depth (waiting, not running)
	Running      int64 // deliveries executing right now
	MaxDepth     int64 // high-water mark of Queued
	Lanes        int   // live per-trigger lanes
}

// LaneStats is the per-trigger slice of the counters.
type LaneStats struct {
	Enqueued     int64
	Completed    int64
	Dropped      int64
	ActionErrors int64
	Panics       int64 // recovered action panics (a subset of ActionErrors)
	Queued       int64
	MaxDepth     int64
}

// lane is one trigger's FIFO delivery queue. Invariants (under d.mu):
// inRunq implies len(pending) > 0; at most one worker has active set, so
// a lane's deliveries never run concurrently.
type lane struct {
	name    string
	pending []Delivery
	active  bool
	inRunq  bool
	stats   LaneStats
}

// Dispatcher runs deliveries on a worker pool with per-trigger FIFO
// ordering and a bounded global queue. All methods are safe for
// concurrent use.
type Dispatcher struct {
	cfg Config

	mu    sync.Mutex
	work  *sync.Cond // a lane became runnable, or the dispatcher is closing
	space *sync.Cond // queue space freed (Block-policy enqueuers wait here)
	idle  *sync.Cond // a delivery completed (Drain/DrainTrigger wait here)

	lanes   map[string]*lane
	runq    []*lane // runnable lanes, round-robin
	queued  int
	running int
	closed  bool
	stats   Stats

	// om, when non-nil, holds resolved metric handles (see AttachObs).
	// Nil is the disabled fast path: no clock reads on enqueue or run.
	om atomic.Pointer[dispObs]

	wg sync.WaitGroup
}

// dispObs is the resolved metric-handle set for one dispatcher.
type dispObs struct {
	wait *obs.Histogram // quark_dispatch_queue_wait_ns: enqueue → worker pickup
	run  *obs.Histogram // quark_dispatch_run_ns: action execution time
}

// AttachObs resolves the dispatcher's latency histograms and registers
// snapshot-time collectors for its counters and queue depths. Attaching
// again (same or different registry) replaces the handles; AttachObs(nil)
// detaches the hot-path handles (the registered collectors keep reading
// live stats, which stay cheap). Idempotent and safe during operation.
func (d *Dispatcher) AttachObs(reg *obs.Registry) {
	if reg == nil {
		d.om.Store(nil)
		return
	}
	d.om.Store(&dispObs{
		wait: reg.Histogram("quark_dispatch_queue_wait_ns", nil),
		run:  reg.Histogram("quark_dispatch_run_ns", nil),
	})
	reg.Func("quark_dispatch_enqueued_total", func() int64 { return d.Stats().Enqueued })
	reg.Func("quark_dispatch_completed_total", func() int64 { return d.Stats().Completed })
	reg.Func("quark_dispatch_dropped_total", func() int64 { return d.Stats().Dropped })
	reg.Func("quark_dispatch_action_errors_total", func() int64 { return d.Stats().ActionErrors })
	reg.Func("quark_dispatch_panics_total", func() int64 { return d.Stats().Panics })
	reg.GaugeFunc("quark_dispatch_queued", func() int64 { return d.Stats().Queued })
	reg.GaugeFunc("quark_dispatch_running", func() int64 { return d.Stats().Running })
	reg.GaugeFunc("quark_dispatch_queue_max_depth", func() int64 { return d.Stats().MaxDepth })
	reg.GaugeFunc("quark_dispatch_lanes", func() int64 { return int64(d.Stats().Lanes) })
}

// New starts a dispatcher with cfg.Workers goroutines.
func New(cfg Config) *Dispatcher {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	d := &Dispatcher{cfg: cfg, lanes: map[string]*lane{}}
	d.work = sync.NewCond(&d.mu)
	d.space = sync.NewCond(&d.mu)
	d.idle = sync.NewCond(&d.mu)
	d.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go d.worker()
	}
	return d
}

// Config returns the dispatcher's effective configuration.
func (d *Dispatcher) Config() Config { return d.cfg }

func (d *Dispatcher) laneOf(name string) *lane {
	ln, ok := d.lanes[name]
	if !ok {
		ln = &lane{name: name}
		d.lanes[name] = ln
	}
	return ln
}

// Enqueue appends a delivery to its trigger's lane. When the shared queue
// is full, or the lane is at its LaneQuota, it applies the configured
// policy; the returned error is nil unless the policy is Error
// (ErrQueueFull) or the dispatcher is closed (ErrClosed).
func (d *Dispatcher) Enqueue(dl Delivery) error {
	if m := d.om.Load(); m != nil {
		// Stamp before any Block-policy wait: time spent throttled on a
		// full queue is queue pressure and belongs in the wait histogram.
		dl.at = time.Now()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return ErrClosed
		}
		ln := d.laneOf(dl.Trigger)
		overShared := d.queued >= d.cfg.QueueCap
		overQuota := d.cfg.LaneQuota > 0 && len(ln.pending) >= d.cfg.LaneQuota
		if !overShared && !overQuota {
			break
		}
		switch d.cfg.Policy {
		case DropNewest:
			d.stats.Dropped++
			ln.stats.Dropped++
			return nil
		case Error:
			d.stats.Dropped++
			ln.stats.Dropped++
			return ErrQueueFull
		case DropOldest:
			if len(ln.pending) == 0 {
				// Shared queue full of other triggers' work: nothing of
				// ours to displace, and another lane's delivery is not
				// ours to drop.
				d.stats.Dropped++
				ln.stats.Dropped++
				return nil
			}
			// Displace our oldest queued delivery; the swap keeps both
			// the shared depth and the lane depth constant, so the lane's
			// inRunq/active invariants are untouched.
			ln.pending = ln.pending[1:]
			ln.pending = append(ln.pending, dl)
			d.stats.Dropped++
			d.stats.Enqueued++
			ln.stats.Dropped++
			ln.stats.Enqueued++
			return nil
		default: // Block
			d.space.Wait()
		}
	}
	ln := d.laneOf(dl.Trigger)
	ln.pending = append(ln.pending, dl)
	ln.stats.Enqueued++
	if q := int64(len(ln.pending)); q > ln.stats.MaxDepth {
		ln.stats.MaxDepth = q
	}
	d.queued++
	d.stats.Enqueued++
	if int64(d.queued) > d.stats.MaxDepth {
		d.stats.MaxDepth = int64(d.queued)
	}
	if !ln.active && !ln.inRunq {
		d.runq = append(d.runq, ln)
		ln.inRunq = true
		d.work.Signal()
	}
	return nil
}

// worker pops one delivery from the head of a runnable lane, runs it, and
// re-queues the lane at the tail if it has more work (round-robin across
// lanes, FIFO within a lane). After Close it keeps draining until the run
// queue is empty, then exits.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.runq) == 0 && !d.closed {
			d.work.Wait()
		}
		if len(d.runq) == 0 { // closed and drained
			d.mu.Unlock()
			return
		}
		ln := d.runq[0]
		d.runq = d.runq[1:]
		ln.inRunq = false
		dl := ln.pending[0]
		ln.pending = ln.pending[1:]
		if len(ln.pending) == 0 {
			ln.pending = nil // release the drained backing array
		}
		ln.active = true
		d.queued--
		d.running++
		// Broadcast, not Signal: Block-policy waiters may be waiting on
		// different conditions (shared-queue space vs a specific lane's
		// quota), and waking only one can strand a waiter whose condition
		// just became true.
		d.space.Broadcast()
		d.mu.Unlock()

		m := d.om.Load()
		var runStart time.Time
		if m != nil {
			if !dl.at.IsZero() {
				m.wait.Since(dl.at)
			}
			runStart = time.Now()
		}
		panicked, err := runDelivery(dl)
		if m != nil {
			m.run.Since(runStart)
		}
		if err != nil && d.cfg.OnError != nil {
			// Report before the completion accounting below: the delivery
			// still counts as running, so Drain/DrainTrigger/Close callers
			// observe every OnError for work they waited on.
			d.cfg.OnError(dl.Trigger, err)
		}

		d.mu.Lock()
		d.running--
		d.stats.Completed++
		ln.stats.Completed++
		if err != nil {
			d.stats.ActionErrors++
			ln.stats.ActionErrors++
		}
		if panicked {
			d.stats.Panics++
			ln.stats.Panics++
		}
		ln.active = false
		if len(ln.pending) > 0 {
			d.runq = append(d.runq, ln)
			ln.inRunq = true
			d.work.Signal()
		}
		d.idle.Broadcast()
		d.mu.Unlock()
	}
}

// runDelivery shields the pool from a panicking action: inline invocation
// would propagate the panic to the writer, but on a worker it would crash
// the whole process, so it is converted to an error, counted, and
// reported as panicked so the lane's recovered-panic counter can tell
// crashes apart from ordinary action errors.
func runDelivery(dl Delivery) (panicked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dispatch: action for trigger %s panicked: %v", dl.Trigger, r)
			panicked = true
		}
	}()
	return false, dl.Run()
}

// Drain blocks until every queued delivery has completed and no delivery
// is running. It does not stop producers: it is a barrier, not a shutdown
// (tests and the conformance harness use it to line async output up with
// the synchronous golden log).
func (d *Dispatcher) Drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.queued > 0 || d.running > 0 {
		d.idle.Wait()
	}
}

// DrainTrigger blocks until the named trigger's lane is empty and idle,
// then removes the lane (freeing its bookkeeping) and returns its final
// counters. The engine calls this from DropTrigger so in-flight deliveries
// of a dropped trigger complete before the drop returns, and nothing
// leaks.
func (d *Dispatcher) DrainTrigger(name string) LaneStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		ln, ok := d.lanes[name]
		if !ok {
			return LaneStats{}
		}
		if len(ln.pending) == 0 && !ln.active {
			delete(d.lanes, name)
			return ln.stats
		}
		d.idle.Wait()
	}
}

// Close drains the queue gracefully — workers finish every already-queued
// delivery — rejects new enqueues with ErrClosed (including Block-policy
// enqueuers already waiting for space), and stops the pool. Idempotent.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return nil
	}
	d.closed = true
	d.work.Broadcast()
	d.space.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
	return nil
}

// Stats returns a snapshot of the dispatcher-wide counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Queued = int64(d.queued)
	st.Running = int64(d.running)
	st.Lanes = len(d.lanes)
	return st
}

// TriggerStats returns the named trigger's lane counters, reporting false
// if the lane does not exist (never enqueued to, or drained away).
func (d *Dispatcher) TriggerStats(name string) (LaneStats, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ln, ok := d.lanes[name]
	if !ok {
		return LaneStats{}, false
	}
	st := ln.stats
	st.Queued = int64(len(ln.pending))
	return st, true
}
