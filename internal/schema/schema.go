// Package schema describes relational schemas: tables, typed columns,
// primary keys, and foreign keys. The XML default view (paper Figure 2) and
// the trigger-specifiability check (Theorem 1) are driven off this metadata.
package schema

import (
	"fmt"
	"strings"

	"quark/internal/xdm"
)

// ColType is the declared type of a relational column.
type ColType uint8

// Supported column types.
const (
	TInt ColType = iota
	TFloat
	TString
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "DECIMAL"
	case TString:
		return "VARCHAR"
	case TBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Accepts reports whether v may be stored in a column of this type. Null is
// accepted everywhere except primary-key columns (enforced by the engine).
func (t ColType) Accepts(v xdm.Value) bool {
	switch v.Kind() {
	case xdm.KindNull:
		return true
	case xdm.KindInt:
		return t == TInt || t == TFloat
	case xdm.KindFloat:
		return t == TFloat
	case xdm.KindString:
		return t == TString
	case xdm.KindBool:
		return t == TBool
	default:
		return false
	}
}

// Column is one column of a table.
type Column struct {
	Name string
	Type ColType
}

// ForeignKey declares that Columns of this table reference RefColumns of
// RefTable.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table describes one relational table.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; empty means no key (view then not trigger-specifiable)
	ForeignKeys []ForeignKey
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in declaration order.
func (t *Table) ColNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// PKIndexes returns the column indexes of the primary key, in key order.
func (t *Table) PKIndexes() []int {
	out := make([]int, len(t.PrimaryKey))
	for i, n := range t.PrimaryKey {
		out[i] = t.ColIndex(n)
	}
	return out
}

// HasPrimaryKey reports whether the table declares a primary key.
func (t *Table) HasPrimaryKey() bool { return len(t.PrimaryKey) > 0 }

// Validate checks internal consistency of the table definition.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema: table %s has an unnamed column", t.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("schema: table %s has duplicate column %s", t.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, k := range t.PrimaryKey {
		if !seen[k] {
			return fmt.Errorf("schema: table %s primary key references unknown column %s", t.Name, k)
		}
	}
	for _, fk := range t.ForeignKeys {
		if len(fk.Columns) != len(fk.RefColumns) {
			return fmt.Errorf("schema: table %s foreign key arity mismatch", t.Name)
		}
		for _, c := range fk.Columns {
			if !seen[c] {
				return fmt.Errorf("schema: table %s foreign key references unknown column %s", t.Name, c)
			}
		}
	}
	return nil
}

// Schema is a set of tables with stable declaration order.
type Schema struct {
	tables map[string]*Table
	order  []string
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: map[string]*Table{}}
}

// AddTable validates and registers a table definition.
func (s *Schema) AddTable(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := s.tables[t.Name]; dup {
		return fmt.Errorf("schema: duplicate table %s", t.Name)
	}
	for _, fk := range t.ForeignKeys {
		ref, ok := s.tables[fk.RefTable]
		if !ok && fk.RefTable != t.Name {
			return fmt.Errorf("schema: table %s foreign key references unknown table %s", t.Name, fk.RefTable)
		}
		if ok {
			for _, rc := range fk.RefColumns {
				if ref.ColIndex(rc) < 0 {
					return fmt.Errorf("schema: table %s foreign key references unknown column %s.%s", t.Name, fk.RefTable, rc)
				}
			}
		}
	}
	s.tables[t.Name] = t
	s.order = append(s.order, t.Name)
	return nil
}

// MustAddTable is AddTable that panics on error; intended for fixtures.
func (s *Schema) MustAddTable(t *Table) {
	if err := s.AddTable(t); err != nil {
		panic(err)
	}
}

// Table looks up a table by name.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the tables in declaration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, len(s.order))
	for i, n := range s.order {
		out[i] = s.tables[n]
	}
	return out
}

// TableNames returns the table names in declaration order.
func (s *Schema) TableNames() []string {
	return append([]string(nil), s.order...)
}

// String renders the schema as CREATE TABLE DDL for diagnostics.
func (s *Schema) String() string {
	var sb strings.Builder
	for _, t := range s.Tables() {
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(t.Name)
		sb.WriteString(" (")
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			sb.WriteByte(' ')
			sb.WriteString(c.Type.String())
		}
		if t.HasPrimaryKey() {
			sb.WriteString(", PRIMARY KEY (")
			sb.WriteString(strings.Join(t.PrimaryKey, ", "))
			sb.WriteString(")")
		}
		for _, fk := range t.ForeignKeys {
			sb.WriteString(", FOREIGN KEY (")
			sb.WriteString(strings.Join(fk.Columns, ", "))
			sb.WriteString(") REFERENCES ")
			sb.WriteString(fk.RefTable)
			sb.WriteString(" (")
			sb.WriteString(strings.Join(fk.RefColumns, ", "))
			sb.WriteString(")")
		}
		sb.WriteString(");\n")
	}
	return sb.String()
}

// ProductVendor returns the paper's running-example schema (Figure 2):
// product(PID, pname, mfr) and vendor(VID, PID, price) with vendor.PID
// referencing product.
func ProductVendor() *Schema {
	s := New()
	s.MustAddTable(&Table{
		Name: "product",
		Columns: []Column{
			{Name: "pid", Type: TString},
			{Name: "pname", Type: TString},
			{Name: "mfr", Type: TString},
		},
		PrimaryKey: []string{"pid"},
	})
	s.MustAddTable(&Table{
		Name: "vendor",
		Columns: []Column{
			{Name: "vid", Type: TString},
			{Name: "pid", Type: TString},
			{Name: "price", Type: TFloat},
		},
		PrimaryKey: []string{"vid", "pid"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"pid"}, RefTable: "product", RefColumns: []string{"pid"}},
		},
	})
	return s
}
