package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

// catalogSchema is the paper's product/vendor pair, routed by product
// NAME (the view's grouping key) with vendors co-located via their FK.
func catalogSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "product",
		Columns: []schema.Column{
			{Name: "pid", Type: schema.TString},
			{Name: "pname", Type: schema.TString},
			{Name: "mfr", Type: schema.TString},
		},
		PrimaryKey: []string{"pid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "vendor",
		Columns: []schema.Column{
			{Name: "vname", Type: schema.TString},
			{Name: "pid", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey: []string{"vname", "pid"},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"pid"}, RefTable: "product", RefColumns: []string{"pid"}},
		},
	})
	return s
}

func newCatalogEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e, err := New(catalogSchema(t), Config{
		Shards: n,
		Mode:   core.ModeGrouped,
		Routing: []TableRouting{
			{Table: "product", ByColumns: []string{"pname"}},
			{Table: "vendor", ViaParent: "product"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func row(vals ...any) reldb.Row {
	out := make(reldb.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			out[i] = xdm.Str(x)
		case int:
			out[i] = xdm.Int(int64(x))
		case float64:
			out[i] = xdm.Float(x)
		default:
			panic("bad test value")
		}
	}
	return out
}

func mustInsert(t *testing.T, e *Engine, table string, rows ...reldb.Row) {
	t.Helper()
	if err := e.Insert(table, rows...); err != nil {
		t.Fatalf("insert %s: %v", table, err)
	}
}

// TestRoutingCoLocation: children land on their parent's shard, and rows
// of one routing group agree across tables.
func TestRoutingCoLocation(t *testing.T) {
	e := newCatalogEngine(t, 4)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"), row("P3", "CRT 15", "Viewsonic"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0), row("Bestbuy", "P2", 180.0), row("Newegg", "P3", 90.0))

	p1, ok := e.OwnerOf("product", xdm.Str("P1"))
	if !ok {
		t.Fatal("P1 not in directory")
	}
	p3, _ := e.OwnerOf("product", xdm.Str("P3"))
	if p1 != p3 {
		t.Errorf("products sharing pname split: P1 on %d, P3 on %d", p1, p3)
	}
	v1, ok := e.OwnerOf("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
	if !ok || v1 != p1 {
		t.Errorf("vendor Amazon/P1 on shard %d (ok=%v), want parent's shard %d", v1, ok, p1)
	}
	// The row data actually lives where the directory says.
	if n := e.Shard(p1).DB().RowCount("product"); n < 2 {
		t.Errorf("owning shard has %d product rows, want >= 2", n)
	}
	total := 0
	for i := 0; i < e.NumShards(); i++ {
		total += e.Shard(i).DB().RowCount("vendor")
	}
	if total != 3 {
		t.Errorf("fleet holds %d vendor rows, want 3", total)
	}
}

// TestMigrationOnRename: renaming a product moves the row AND its vendors
// to the new name's shard; fleet-wide row counts are conserved.
func TestMigrationOnRename(t *testing.T) {
	for n := 2; n <= 5; n++ {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			e := newCatalogEngine(t, n)
			mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"))
			mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0), row("Bestbuy", "P1", 120.0))

			changed, err := e.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
				r[1] = xdm.Str("CRT 15 flat")
				return r
			})
			if err != nil || !changed {
				t.Fatalf("rename: changed=%v err=%v", changed, err)
			}
			owner, ok := e.OwnerOf("product", xdm.Str("P1"))
			if !ok {
				t.Fatal("P1 lost from directory")
			}
			wantOwner := e.Router().hashKey(xdm.TupleKey([]xdm.Value{xdm.Str("CRT 15 flat")}))
			if owner != wantOwner {
				t.Errorf("P1 on shard %d, want hash(new name) = %d", owner, wantOwner)
			}
			vOwner, ok := e.OwnerOf("vendor", xdm.Str("Amazon"), xdm.Str("P1"))
			if !ok || vOwner != owner {
				t.Errorf("vendor followed to shard %d (ok=%v), want %d", vOwner, ok, owner)
			}
			prods, vends := 0, 0
			for i := 0; i < e.NumShards(); i++ {
				prods += e.Shard(i).DB().RowCount("product")
				vends += e.Shard(i).DB().RowCount("vendor")
			}
			if prods != 1 || vends != 2 {
				t.Errorf("fleet holds %d products / %d vendors, want 1 / 2", prods, vends)
			}
			// The moved row's content survived, on the owning shard.
			got, found, err := e.Shard(owner).GetByPK("product", xdm.Str("P1"))
			if err != nil || !found {
				t.Fatalf("P1 missing on owner: found=%v err=%v", found, err)
			}
			if got[1].Lexical() != "CRT 15 flat" {
				t.Errorf("post-image pname = %s", got[1].Lexical())
			}
		})
	}
}

// TestVendorFKMove: moving a child to a parent on another shard migrates
// just the child.
func TestVendorFKMove(t *testing.T) {
	e := newCatalogEngine(t, 4)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"), row("P2", "OLED 27", "LG"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0))
	p2, _ := e.OwnerOf("product", xdm.Str("P2"))

	// The composite PK includes pid, so this is also a PK move.
	changed, err := e.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[1] = xdm.Str("P2")
		return r
	})
	if err != nil || !changed {
		t.Fatalf("move: changed=%v err=%v", changed, err)
	}
	if _, ok := e.OwnerOf("vendor", xdm.Str("Amazon"), xdm.Str("P1")); ok {
		t.Error("old vendor key still in directory")
	}
	owner, ok := e.OwnerOf("vendor", xdm.Str("Amazon"), xdm.Str("P2"))
	if !ok || owner != p2 {
		t.Errorf("moved vendor on shard %d (ok=%v), want %d", owner, ok, p2)
	}
}

// TestBatchRollback: a failed distributed batch leaves data and directory
// untouched on every shard.
func TestBatchRollback(t *testing.T) {
	e := newCatalogEngine(t, 3)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0))
	boom := fmt.Errorf("boom")
	err := e.Batch(func(tx *Tx) error {
		if err := tx.Insert("product", row("P9", "OLED 27", "LG")); err != nil {
			return err
		}
		if _, err := tx.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
			r[1] = xdm.Str("Elsewhere")
			return r
		}); err != nil {
			return err
		}
		if _, err := tx.Delete("vendor", func(reldb.Row) bool { return true }); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("batch err = %v, want boom", err)
	}
	if _, ok := e.OwnerOf("product", xdm.Str("P9")); ok {
		t.Error("rolled-back insert left a directory entry")
	}
	owner, ok := e.OwnerOf("product", xdm.Str("P1"))
	if !ok {
		t.Fatal("P1 lost from directory")
	}
	got, found, _ := e.Shard(owner).GetByPK("product", xdm.Str("P1"))
	if !found || got[1].Lexical() != "CRT 15" {
		t.Errorf("P1 after rollback: found=%v row=%v", found, got)
	}
	vends := 0
	for i := 0; i < e.NumShards(); i++ {
		vends += e.Shard(i).DB().RowCount("vendor")
	}
	if vends != 1 {
		t.Errorf("fleet holds %d vendors after rollback, want 1", vends)
	}
}

// TestTriggerFiresOnOwningShard: a trigger registered once on the fleet
// fires for updates routed to any shard, and Stats sums the firings.
func TestTriggerFiresOnOwningShard(t *testing.T) {
	e := newCatalogEngine(t, 4)
	var mu sync.Mutex
	var got []string
	e.RegisterAction("notify", func(inv core.Invocation) error {
		mu.Lock()
		got = append(got, inv.Trigger+":"+inv.New.Serialize(false))
		mu.Unlock()
		return nil
	})
	if err := e.CreateView("m", `<m>{for $q in view('default')/product/row return <p name={$q/pname} mfr={$q/mfr}></p>}</m>`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER watch AFTER UPDATE ON view('m')/p DO notify(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "product",
		row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"),
		row("P3", "OLED 27", "LG"), row("P4", "Plasma 42", "Panasonic"))
	for _, pid := range []string{"P1", "P2", "P3", "P4"} {
		changed, err := e.UpdateByPK("product", []xdm.Value{xdm.Str(pid)}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Str("ACME")
			return r
		})
		if err != nil || !changed {
			t.Fatalf("update %s: changed=%v err=%v", pid, changed, err)
		}
	}
	if len(got) != 4 {
		t.Fatalf("got %d notifications, want 4: %v", len(got), got)
	}
	st := e.Stats()
	if st.Actions != 4 {
		t.Errorf("Stats.Actions = %d, want 4", st.Actions)
	}
	if st.XMLTriggers != 1 || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Errorf("stats breakdown: %+v", st)
	}
}

// TestConcurrentRoutedWriters: writers hammering disjoint routing groups
// on different shards run concurrently without data races, every
// statement fires, and the directory stays consistent. (The scaling
// claim benchrunner -fig shard measures rests on this path being safe.)
func TestConcurrentRoutedWriters(t *testing.T) {
	e := newCatalogEngine(t, 4)
	var fired atomic.Int64
	e.RegisterAction("notify", func(core.Invocation) error {
		fired.Add(1)
		return nil
	})
	if err := e.CreateView("m", `<m>{for $q in view('default')/product/row return <p name={$q/pname} mfr={$q/mfr}></p>}</m>`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER watch AFTER UPDATE ON view('m')/p DO notify(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	const groups, perGroup = 8, 25
	for g := 0; g < groups; g++ {
		mustInsert(t, e, "product", row(fmt.Sprintf("P%d", g), fmt.Sprintf("Group %d", g), "ACME"))
	}
	var wg sync.WaitGroup
	errs := make(chan error, groups)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pid := fmt.Sprintf("P%d", g)
			for i := 0; i < perGroup; i++ {
				_, err := e.UpdateByPK("product", []xdm.Value{xdm.Str(pid)}, func(r reldb.Row) reldb.Row {
					r[2] = xdm.Str(fmt.Sprintf("mfr-%d", i))
					return r
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fired.Load(); got != groups*perGroup {
		t.Errorf("fired %d notifications, want %d", got, groups*perGroup)
	}
}

// TestGlobalPKUniqueness: the directory doubles as the fleet-wide PK
// index — a key that exists on ANY shard is rejected on insert and on
// PK-moving updates, matching the single engine's duplicate-key error
// even when the duplicate's routing columns hash to another shard.
func TestGlobalPKUniqueness(t *testing.T) {
	e := newCatalogEngine(t, 4)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"))
	// Same pid, different pname (different shard by routing): must fail.
	if err := e.Insert("product", row("P1", "Totally Different", "LG")); err == nil {
		t.Fatal("cross-shard duplicate pid accepted")
	}
	// Same inside a distributed transaction.
	err := e.Batch(func(tx *Tx) error {
		return tx.Insert("product", row("P1", "Another Name", "Sony"))
	})
	if err == nil {
		t.Fatal("cross-shard duplicate pid accepted inside a batch")
	}
	// Duplicate within one multi-row statement.
	if err := e.Insert("product", row("P7", "A", "X"), row("P7", "B", "Y")); err == nil {
		t.Fatal("intra-statement duplicate pid accepted")
	}
	// A PK move onto a key owned by another shard must fail and change
	// nothing.
	mustInsert(t, e, "product", row("P2", "Totally Different", "LG"))
	changed, err := e.UpdateByPK("product", []xdm.Value{xdm.Str("P2")}, func(r reldb.Row) reldb.Row {
		r[0] = xdm.Str("P1")
		return r
	})
	if err == nil || changed {
		t.Fatalf("PK move onto existing key: changed=%v err=%v", changed, err)
	}
	if _, ok := e.OwnerOf("product", xdm.Str("P2")); !ok {
		t.Error("failed PK move lost P2's directory entry")
	}
	total := 0
	for i := 0; i < e.NumShards(); i++ {
		total += e.Shard(i).DB().RowCount("product")
	}
	if total != 2 {
		t.Errorf("fleet holds %d products, want 2", total)
	}
}

// TestMultiShardInsertAtomicity: a multi-row insert spanning shards whose
// later row fails validation applies nothing anywhere (single-statement
// atomicity, like reldb's all-or-nothing applyInsert).
func TestMultiShardInsertAtomicity(t *testing.T) {
	e := newCatalogEngine(t, 4)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"))
	before := 0
	for i := 0; i < e.NumShards(); i++ {
		before += e.Shard(i).DB().RowCount("vendor")
	}
	// Two vendors on (almost surely) different shards; the second has a
	// NULL primary-key column, which reldb rejects at validation.
	err := e.Insert("vendor",
		row("Amazon", "P1", 100.0),
		reldb.Row{xdm.Null, xdm.Str("P2"), xdm.Float(1)},
	)
	if err == nil {
		t.Fatal("insert with NULL pk accepted")
	}
	after := 0
	for i := 0; i < e.NumShards(); i++ {
		after += e.Shard(i).DB().RowCount("vendor")
	}
	if after != before {
		t.Errorf("failed multi-shard insert left %d rows applied", after-before)
	}
	if _, ok := e.OwnerOf("vendor", xdm.Str("Amazon"), xdm.Str("P1")); ok {
		t.Error("failed multi-shard insert left a directory entry")
	}
}

// TestDirOpsTotalFold: a same-PK cross-shard migration carries BOTH its
// delete side (old shard) and set side (new shard) in the overlay; the
// two-phase protocol folds the overlay totally — deletes before sets, so
// the set side wins — or not at all (an aborted transaction discards it).
func TestDirOpsTotalFold(t *testing.T) {
	newRouterWithEntry := func() *Router {
		r := &Router{n: 4, dir: map[string]int{}}
		r.dir[dirKey("product", "k")] = 0
		return r
	}
	overlay := func() *dirOps {
		ov := newDirOps()
		ov.remove(dirKey("product", "k"))    // delete on old shard 0
		ov.record(dirKey("product", "k"), 2) // insert on new shard 2
		return ov
	}
	// Full commit: the set side wins; the row lives on shard 2.
	r := newRouterWithEntry()
	r.commit(overlay())
	if s, ok := r.lookup("product", "k", nil); !ok || s != 2 {
		t.Errorf("full fold: owner = %d ok=%v, want 2", s, ok)
	}
	// A pure delete (no re-insert) drops the entry.
	r = newRouterWithEntry()
	ovDel := newDirOps()
	ovDel.remove(dirKey("product", "k"))
	r.commit(ovDel)
	if _, ok := r.lookup("product", "k", nil); ok {
		t.Error("delete fold left a directory entry for a vanished row")
	}
	// An aborted transaction never folds: discarding the overlay leaves
	// the directory byte-identical.
	r = newRouterWithEntry()
	_ = overlay() // built, then dropped on abort
	if s, ok := r.lookup("product", "k", nil); !ok || s != 0 {
		t.Errorf("aborted overlay mutated the directory: owner = %d ok=%v, want 0", s, ok)
	}
	// In-tx lookup while both sides are pending sees the set side.
	ov := overlay()
	r = newRouterWithEntry()
	if s, ok := r.lookup("product", "k", ov); !ok || s != 2 {
		t.Errorf("overlay lookup: owner = %d ok=%v, want 2", s, ok)
	}
}

// TestSingleShardDegenerate: N=1 behaves like one engine for every path
// (fast, predicate, batch).
func TestSingleShardDegenerate(t *testing.T) {
	e := newCatalogEngine(t, 1)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0), row("Bestbuy", "P1", 120.0))
	n, err := e.Update("vendor", func(r reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(99.0)
		return r
	})
	if err != nil || n != 2 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	n, err = e.Delete("vendor", func(r reldb.Row) bool { return r[0].Lexical() == "Amazon" })
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	removed, err := e.DeleteByPK("vendor", xdm.Str("Bestbuy"), xdm.Str("P1"))
	if err != nil || !removed {
		t.Fatalf("deleteByPK: removed=%v err=%v", removed, err)
	}
	if e.Shard(0).DB().RowCount("vendor") != 0 {
		t.Error("vendors remain")
	}
}
