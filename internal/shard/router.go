// Package shard partitions the trigger engine horizontally: a Router
// hash-partitions the data hierarchy's root keys across N embedded engine
// instances — each with its own reldb store, compiled trigger plans, and
// table locks — and a shard.Engine mirrors the core Engine API on top,
// routing single-row statements to the owning shard and running
// cross-shard statements as distributed transactions committed in
// deterministic (shard, storage-key) order.
//
// # Partitioning model
//
// Every table is either a ROOT or a CHILD of the hierarchy:
//
//   - A root table routes each row by the hash of its routing columns
//     (TableRouting.ByColumns; default: the primary key). The routing
//     columns pick the unit of distribution — e.g. the paper's catalog
//     view groups products by NAME, so product routes "by pname" and all
//     products sharing a name land on one shard.
//   - A child table routes each row to the shard of the parent row its
//     foreign key references, resolved through the router's directory.
//     Children therefore always co-locate with their ancestors.
//
// The correctness contract this buys: if the routing columns are chosen
// so that every XML view element's provenance (the base rows any one
// element is computed from) lives on a single shard, then each shard's
// locally-evaluated view is exactly the slice of the global view it owns,
// per-shard trigger firing equals global firing restricted to owned
// elements, and the union of the shards' invocation streams equals the
// single-engine stream (internal/conformance proves this differentially
// and with a seeded fuzzer). Views that aggregate across routing groups
// are outside the contract.
//
// # Row movement
//
// An update that changes a row's routing key (a root's routing column, a
// child's foreign key, directly or via a primary-key move) may change its
// owner. The engine detects this before applying and, when the owner
// changes, executes the statement as a distributed transaction that
// deletes the row (and, for a root whose referenced key is unchanged, its
// co-located subtree) on the old shard and inserts the post-image on the
// new one. Net transition tables on each side then show exactly the
// global change restricted to that shard's elements, so view-level events
// still come out identical to the single-engine execution.
//
// # Directory
//
// The router maintains an in-memory directory mapping (table, primary
// key) -> shard for every row routed through the sharded engine. Child
// inserts resolve their parent through it, so parents must be inserted
// before children; a child whose parent is unknown routes by the hash of
// its foreign-key value (a deterministic orphan placement).
//
// Concurrency contract: statements that touch the same routing GROUP —
// the same row, a row and its ancestors, or a row and a statement that
// changes an ancestor's routing key — must be serialized by the
// application. The router resolves ownership from the directory before a
// statement takes its shard's locks, so e.g. a child insert racing its
// parent's cross-shard migration can target the parent's previous shard
// and fail there. Statements on disjoint routing groups need no external
// coordination, which is the sharding win; the precheck is not
// transactional across groups, matching the usual contract of
// hash-sharded stores.
package shard

import (
	"fmt"
	"sync"

	"quark/internal/schema"
	"quark/internal/xdm"
)

// TableRouting overrides how one table routes.
type TableRouting struct {
	// Table is the table the entry configures.
	Table string
	// ByColumns makes the table a root: rows route by the hash of these
	// columns' values. Mutually exclusive with ViaParent.
	ByColumns []string
	// ViaParent makes the table a child of the named parent table: rows
	// route to the shard owning the parent row their foreign key
	// references.
	ViaParent string
}

// route is one table's resolved routing rule.
type route struct {
	def   *schema.Table
	pkIdx []int
	// Root tables: byIdx are the routed column indexes.
	byIdx []int
	// Child tables: parent is the parent table, fkIdx the foreign-key
	// column indexes in this table referencing the parent's primary key.
	parent string
	fkIdx  []int
	// children are the tables routing via this one (subtree migration).
	children []childRef
}

type childRef struct {
	table  string
	fkIdx  []int // FK column indexes in the child
	refIdx []int // referenced column indexes in this (parent) table
}

// Router owns the partitioning function: static per-table routing rules
// plus the dynamic (table, primary key) -> shard directory.
type Router struct {
	n      int
	routes map[string]*route

	mu  sync.RWMutex
	dir map[string]int // table + "\x00" + pk tuple-key -> shard
}

// NewRouter resolves the routing rules for every table of the schema.
// Tables without an explicit TableRouting entry default to: child via the
// first foreign key's referenced table, or root by primary key when the
// table has no foreign keys. Every routed table must have a primary key,
// and a child's foreign key must reference its parent's primary key
// (that is what the directory is keyed by).
func NewRouter(s *schema.Schema, n int, overrides []TableRouting) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	ov := map[string]TableRouting{}
	for _, o := range overrides {
		ov[o.Table] = o
	}
	r := &Router{n: n, routes: map[string]*route{}, dir: map[string]int{}}
	for _, t := range s.Tables() {
		if len(t.PrimaryKey) == 0 {
			return nil, fmt.Errorf("shard: table %q has no primary key; sharding routes rows by key", t.Name)
		}
		rt := &route{def: t, pkIdx: t.PKIndexes()}
		spec, hasSpec := ov[t.Name]
		switch {
		case hasSpec && len(spec.ByColumns) > 0 && spec.ViaParent != "":
			return nil, fmt.Errorf("shard: table %q declares both ByColumns and ViaParent", t.Name)
		case hasSpec && len(spec.ByColumns) > 0:
			for _, c := range spec.ByColumns {
				ci := t.ColIndex(c)
				if ci < 0 {
					return nil, fmt.Errorf("shard: table %q has no routing column %q", t.Name, c)
				}
				rt.byIdx = append(rt.byIdx, ci)
			}
		case hasSpec && spec.ViaParent != "":
			fk, err := fkTo(t, spec.ViaParent)
			if err != nil {
				return nil, err
			}
			rt.parent = spec.ViaParent
			rt.fkIdx = fkIdx(t, fk)
		case len(t.ForeignKeys) > 0:
			rt.parent = t.ForeignKeys[0].RefTable
			rt.fkIdx = fkIdx(t, t.ForeignKeys[0])
		default:
			rt.byIdx = append([]int(nil), rt.pkIdx...)
		}
		r.routes[t.Name] = rt
	}
	// Validate parent links and build the child lists for migration.
	for name, rt := range r.routes {
		if rt.parent == "" {
			continue
		}
		prt, ok := r.routes[rt.parent]
		if !ok {
			return nil, fmt.Errorf("shard: table %q routes via unknown parent %q", name, rt.parent)
		}
		fk, err := fkTo(rt.def, rt.parent)
		if err != nil {
			return nil, err
		}
		if !sameStrings(fk.RefColumns, prt.def.PrimaryKey) {
			return nil, fmt.Errorf("shard: table %q's foreign key to %q must reference its primary key", name, rt.parent)
		}
		refIdx := make([]int, len(fk.RefColumns))
		for i, c := range fk.RefColumns {
			refIdx[i] = prt.def.ColIndex(c)
		}
		prt.children = append(prt.children, childRef{table: name, fkIdx: rt.fkIdx, refIdx: refIdx})
	}
	return r, nil
}

func fkTo(t *schema.Table, parent string) (schema.ForeignKey, error) {
	for _, fk := range t.ForeignKeys {
		if fk.RefTable == parent {
			return fk, nil
		}
	}
	return schema.ForeignKey{}, fmt.Errorf("shard: table %q has no foreign key to %q", t.Name, parent)
}

func fkIdx(t *schema.Table, fk schema.ForeignKey) []int {
	out := make([]int, len(fk.Columns))
	for i, c := range fk.Columns {
		out[i] = t.ColIndex(c)
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

func (r *Router) route(table string) (*route, error) {
	rt, ok := r.routes[table]
	if !ok {
		return nil, fmt.Errorf("shard: unknown table %q", table)
	}
	return rt, nil
}

// pkKeyOf renders the row's primary-key tuple key.
func pkKeyOf(rt *route, row []xdm.Value) string {
	ks := make([]xdm.Value, len(rt.pkIdx))
	for i, c := range rt.pkIdx {
		ks[i] = row[c]
	}
	return xdm.TupleKey(ks)
}

func dirKey(table, pkKey string) string { return table + "\x00" + pkKey }

// hashKey maps a canonical key string to a shard.
func (r *Router) hashKey(s string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211 // FNV-1a 64
	}
	return int(h % uint64(r.n))
}

// dirOps is the uncommitted directory overlay of one distributed
// transaction: lookups consult it before the committed directory, and
// commit folds it in atomically once every shard's prepare succeeded
// (an aborted transaction discards it untouched — under the two-phase
// protocol the directory either folds completely or not at all).
type dirOps struct {
	set map[string]int
	del map[string]struct{}
}

func newDirOps() *dirOps { return &dirOps{set: map[string]int{}, del: map[string]struct{}{}} }

// record notes a row's (new) owner. An existing del entry for the same
// key is kept: a same-PK cross-shard migration is del on one shard AND
// set on another, and the fold applies deletes before sets, so the set
// side wins.
func (o *dirOps) record(key string, shard int) {
	o.set[key] = shard
}

func (o *dirOps) remove(key string) {
	delete(o.set, key)
	o.del[key] = struct{}{}
}

// lookup finds a row's recorded shard, overlay first.
func (r *Router) lookup(table, pkKey string, ov *dirOps) (int, bool) {
	k := dirKey(table, pkKey)
	if ov != nil {
		if s, ok := ov.set[k]; ok {
			return s, true
		}
		if _, gone := ov.del[k]; gone {
			return 0, false
		}
	}
	r.mu.RLock()
	s, ok := r.dir[k]
	r.mu.RUnlock()
	return s, ok
}

// ownerForRow computes which shard owns the given (post-image) row: root
// tables hash their routing columns; child tables resolve the referenced
// parent through the directory, falling back to the hash of the
// foreign-key value when the parent is unknown (deterministic orphan
// placement — insert parents before children to co-locate).
func (r *Router) ownerForRow(table string, row []xdm.Value, ov *dirOps) (int, error) {
	rt, err := r.route(table)
	if err != nil {
		return 0, err
	}
	return r.ownerForRowRt(rt, row, ov), nil
}

func (r *Router) ownerForRowRt(rt *route, row []xdm.Value, ov *dirOps) int {
	if rt.parent == "" {
		ks := make([]xdm.Value, len(rt.byIdx))
		for i, c := range rt.byIdx {
			ks[i] = row[c]
		}
		return r.hashKey(xdm.TupleKey(ks))
	}
	ks := make([]xdm.Value, len(rt.fkIdx))
	for i, c := range rt.fkIdx {
		ks[i] = row[c]
	}
	parentKey := xdm.TupleKey(ks)
	if s, ok := r.lookup(rt.parent, parentKey, ov); ok {
		return s
	}
	return r.hashKey(parentKey)
}

// record installs a committed row's owner.
func (r *Router) record(table, pkKey string, shard int) {
	r.mu.Lock()
	r.dir[dirKey(table, pkKey)] = shard
	r.mu.Unlock()
}

// forget drops a committed row's directory entry.
func (r *Router) forget(table, pkKey string) {
	r.mu.Lock()
	delete(r.dir, dirKey(table, pkKey))
	r.mu.Unlock()
}

// rekey moves a committed row's entry to a new primary key.
func (r *Router) rekey(table, oldKey, newKey string, shard int) {
	r.mu.Lock()
	delete(r.dir, dirKey(table, oldKey))
	r.dir[dirKey(table, newKey)] = shard
	r.mu.Unlock()
}

// commit folds a transaction's overlay into the committed directory,
// deletes first so a migration's set side lands last. Under the
// two-phase protocol it is only called after every shard committed its
// data, so the fold is always total; an aborted transaction never folds.
func (r *Router) commit(ov *dirOps) {
	r.mu.Lock()
	for k := range ov.del {
		delete(r.dir, k)
	}
	for k, s := range ov.set {
		r.dir[k] = s
	}
	r.mu.Unlock()
}

// writeFootprint returns the tables a distributed statement on table may
// write: the table itself plus its transitive FK children (a routing-key
// change migrates the row's co-located subtree, which writes the child
// tables on both shards).
func (r *Router) writeFootprint(table string) []string {
	out := []string{table}
	seen := map[string]bool{table: true}
	for i := 0; i < len(out); i++ {
		rt := r.routes[out[i]]
		if rt == nil {
			continue
		}
		for _, cr := range rt.children {
			if !seen[cr.table] {
				seen[cr.table] = true
				out = append(out, cr.table)
			}
		}
	}
	return out
}

// DirSize reports the number of directory entries (for stats).
func (r *Router) DirSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.dir)
}

// DirSnapshot returns a copy of the routing directory, keyed by
// table + "\x00" + primary-key tuple key. Tests and consistency checkers
// use it to prove an aborted transaction left the directory untouched and
// that every entry agrees with the shard actually holding the row.
func (r *Router) DirSnapshot() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.dir))
	for k, s := range r.dir {
		out[k] = s
	}
	return out
}
