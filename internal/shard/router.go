// Package shard partitions the trigger engine horizontally: a Router
// hash-partitions the data hierarchy's root keys across N embedded engine
// instances — each with its own reldb store, compiled trigger plans, and
// table locks — and a shard.Engine mirrors the core Engine API on top,
// routing single-row statements to the owning shard and running
// cross-shard statements as distributed transactions committed in
// deterministic (shard, storage-key) order.
//
// # Partitioning model
//
// Every table is either a ROOT or a CHILD of the hierarchy:
//
//   - A root table routes each row by the hash of its routing columns
//     (TableRouting.ByColumns; default: the primary key). The routing
//     columns pick the unit of distribution — e.g. the paper's catalog
//     view groups products by NAME, so product routes "by pname" and all
//     products sharing a name land on one shard.
//   - A child table routes each row to the shard of the parent row its
//     foreign key references, resolved through the router's directory.
//     Children therefore always co-locate with their ancestors.
//
// The correctness contract this buys: if the routing columns are chosen
// so that every XML view element's provenance (the base rows any one
// element is computed from) lives on a single shard, then each shard's
// locally-evaluated view is exactly the slice of the global view it owns,
// per-shard trigger firing equals global firing restricted to owned
// elements, and the union of the shards' invocation streams equals the
// single-engine stream (internal/conformance proves this differentially
// and with a seeded fuzzer). Views that aggregate across routing groups
// are outside the contract.
//
// # Row movement
//
// An update that changes a row's routing key (a root's routing column, a
// child's foreign key, directly or via a primary-key move) may change its
// owner. The engine detects this before applying and, when the owner
// changes, executes the statement as a distributed transaction that
// deletes the row (and, for a root whose referenced key is unchanged, its
// co-located subtree) on the old shard and inserts the post-image on the
// new one. Net transition tables on each side then show exactly the
// global change restricted to that shard's elements, so view-level events
// still come out identical to the single-engine execution.
//
// # Directory
//
// The router maintains an in-memory directory mapping (table, primary
// key) -> shard for every row routed through the sharded engine. Child
// inserts resolve their parent through it, so parents must be inserted
// before children; a child whose parent is unknown routes by the hash of
// its foreign-key value (a deterministic orphan placement).
//
// Concurrency contract: statements that touch the same routing GROUP —
// the same row, a row and its ancestors, or a row and a statement that
// changes an ancestor's routing key — must be serialized by the
// application. The router resolves ownership from the directory before a
// statement takes its shard's locks, so e.g. a child insert racing its
// parent's cross-shard migration can target the parent's previous shard
// and fail there. Statements on disjoint routing groups need no external
// coordination, which is the sharding win; the precheck is not
// transactional across groups, matching the usual contract of
// hash-sharded stores.
package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"quark/internal/schema"
	"quark/internal/xdm"
)

// TableRouting overrides how one table routes.
type TableRouting struct {
	// Table is the table the entry configures.
	Table string
	// ByColumns makes the table a root: rows route by the hash of these
	// columns' values. Mutually exclusive with ViaParent.
	ByColumns []string
	// ViaParent makes the table a child of the named parent table: rows
	// route to the shard owning the parent row their foreign key
	// references.
	ViaParent string
}

// route is one table's resolved routing rule.
type route struct {
	def   *schema.Table
	pkIdx []int
	// Root tables: byIdx are the routed column indexes.
	byIdx []int
	// Child tables: parent is the parent table, fkIdx the foreign-key
	// column indexes in this table referencing the parent's primary key.
	parent string
	fkIdx  []int
	// children are the tables routing via this one (subtree migration).
	children []childRef
}

type childRef struct {
	table  string
	fkIdx  []int // FK column indexes in the child
	refIdx []int // referenced column indexes in this (parent) table
}

// Router owns the partitioning function: static per-table routing rules
// plus two pieces of dynamic state — the (table, primary key) -> shard
// directory, and the sticky (root table, routing tuple) -> shard group
// assignment. The hash of a root's routing columns only SEEDS a new
// group's placement; once placed, the group's assignment is authoritative
// until a Rebalance moves it. That decoupling is what makes the shard
// count elastic: changing the placement modulus (Grow/Shrink) never
// implicitly moves an existing group, and a rebalanced group never
// "snaps back" to its hash slot on its next write.
type Router struct {
	routes map[string]*route

	mu     sync.RWMutex
	n      int            // placement modulus (changes under Grow/Shrink)
	dir    map[string]int // table + "\x00" + pk tuple-key -> shard
	assign map[string]int // root table + "\x00" + routing tuple-key -> shard
	store  *DirStore      // nil: in-memory only; else every change appends a delta
}

// NewRouter resolves the routing rules for every table of the schema.
// Tables without an explicit TableRouting entry default to: child via the
// first foreign key's referenced table, or root by primary key when the
// table has no foreign keys. Every routed table must have a primary key,
// and a child's foreign key must reference its parent's primary key
// (that is what the directory is keyed by).
func NewRouter(s *schema.Schema, n int, overrides []TableRouting) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	ov := map[string]TableRouting{}
	for _, o := range overrides {
		ov[o.Table] = o
	}
	r := &Router{n: n, routes: map[string]*route{}, dir: map[string]int{}, assign: map[string]int{}}
	for _, t := range s.Tables() {
		if len(t.PrimaryKey) == 0 {
			return nil, fmt.Errorf("shard: table %q has no primary key; sharding routes rows by key", t.Name)
		}
		rt := &route{def: t, pkIdx: t.PKIndexes()}
		spec, hasSpec := ov[t.Name]
		switch {
		case hasSpec && len(spec.ByColumns) > 0 && spec.ViaParent != "":
			return nil, fmt.Errorf("shard: table %q declares both ByColumns and ViaParent", t.Name)
		case hasSpec && len(spec.ByColumns) > 0:
			for _, c := range spec.ByColumns {
				ci := t.ColIndex(c)
				if ci < 0 {
					return nil, fmt.Errorf("shard: table %q has no routing column %q", t.Name, c)
				}
				rt.byIdx = append(rt.byIdx, ci)
			}
		case hasSpec && spec.ViaParent != "":
			fk, err := fkTo(t, spec.ViaParent)
			if err != nil {
				return nil, err
			}
			rt.parent = spec.ViaParent
			rt.fkIdx = fkIdx(t, fk)
		case len(t.ForeignKeys) > 0:
			rt.parent = t.ForeignKeys[0].RefTable
			rt.fkIdx = fkIdx(t, t.ForeignKeys[0])
		default:
			rt.byIdx = append([]int(nil), rt.pkIdx...)
		}
		r.routes[t.Name] = rt
	}
	// Validate parent links and build the child lists for migration.
	// Child lists drive subtree-migration order, so build them from a
	// sorted walk rather than raw map iteration.
	names := make([]string, 0, len(r.routes))
	for name := range r.routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rt := r.routes[name]
		if rt.parent == "" {
			continue
		}
		prt, ok := r.routes[rt.parent]
		if !ok {
			return nil, fmt.Errorf("shard: table %q routes via unknown parent %q", name, rt.parent)
		}
		fk, err := fkTo(rt.def, rt.parent)
		if err != nil {
			return nil, err
		}
		if !sameStrings(fk.RefColumns, prt.def.PrimaryKey) {
			return nil, fmt.Errorf("shard: table %q's foreign key to %q must reference its primary key", name, rt.parent)
		}
		refIdx := make([]int, len(fk.RefColumns))
		for i, c := range fk.RefColumns {
			refIdx[i] = prt.def.ColIndex(c)
		}
		prt.children = append(prt.children, childRef{table: name, fkIdx: rt.fkIdx, refIdx: refIdx})
	}
	return r, nil
}

func fkTo(t *schema.Table, parent string) (schema.ForeignKey, error) {
	for _, fk := range t.ForeignKeys {
		if fk.RefTable == parent {
			return fk, nil
		}
	}
	return schema.ForeignKey{}, fmt.Errorf("shard: table %q has no foreign key to %q", t.Name, parent)
}

func fkIdx(t *schema.Table, fk schema.ForeignKey) []int {
	out := make([]int, len(fk.Columns))
	for i, c := range fk.Columns {
		out[i] = t.ColIndex(c)
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Shards returns the placement modulus (the live shard count).
func (r *Router) Shards() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// setShards changes the placement modulus. Existing groups keep their
// sticky assignments — only NEW groups hash against the new count — so
// the flip is safe while data is still mid-migration.
func (r *Router) setShards(n int) {
	r.mu.Lock()
	r.n = n
	r.appendDeltaLocked([]DirOp{{Op: OpShards, Shard: n}})
	r.mu.Unlock()
}

func (r *Router) route(table string) (*route, error) {
	rt, ok := r.routes[table]
	if !ok {
		return nil, fmt.Errorf("shard: unknown table %q", table)
	}
	return rt, nil
}

// pkKeyOf renders the row's primary-key tuple key.
func pkKeyOf(rt *route, row []xdm.Value) string {
	ks := make([]xdm.Value, len(rt.pkIdx))
	for i, c := range rt.pkIdx {
		ks[i] = row[c]
	}
	return xdm.TupleKey(ks)
}

func dirKey(table, pkKey string) string { return table + "\x00" + pkKey }

// groupKeyOf renders a root-table row's routing-group key: the table name
// plus the tuple key of its routing-column values. It is the assignment
// map's key and the Key a rebalance Plan names a group by.
func groupKeyOf(rt *route, row []xdm.Value) string {
	ks := make([]xdm.Value, len(rt.byIdx))
	for i, c := range rt.byIdx {
		ks[i] = row[c]
	}
	return dirKey(rt.def.Name, xdm.TupleKey(ks))
}

// hashKey maps a canonical key string to a shard.
func (r *Router) hashKey(s string) int {
	r.mu.RLock()
	n := r.n
	r.mu.RUnlock()
	return hashMod(s, n)
}

func hashMod(s string, n int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211 // FNV-1a 64
	}
	return int(h % uint64(n))
}

// dirOps is the uncommitted directory overlay of one distributed
// transaction: lookups consult it before the committed directory, and
// commit folds it in atomically once every shard's prepare succeeded
// (an aborted transaction discards it untouched — under the two-phase
// protocol the directory either folds completely or not at all).
type dirOps struct {
	set map[string]int
	del map[string]struct{}
	// aset records group assignments the transaction places or moves
	// (sticky placement of new groups, destination of a rebalance).
	aset map[string]int
}

func newDirOps() *dirOps {
	return &dirOps{set: map[string]int{}, del: map[string]struct{}{}, aset: map[string]int{}}
}

// record notes a row's (new) owner. An existing del entry for the same
// key is kept: a same-PK cross-shard migration is del on one shard AND
// set on another, and the fold applies deletes before sets, so the set
// side wins.
func (o *dirOps) record(key string, shard int) {
	o.set[key] = shard
}

func (o *dirOps) remove(key string) {
	delete(o.set, key)
	o.del[key] = struct{}{}
}

// assign records a routing group's (new) placement in the overlay.
func (o *dirOps) assign(groupKey string, shard int) {
	o.aset[groupKey] = shard
}

// lookup finds a row's recorded shard, overlay first.
func (r *Router) lookup(table, pkKey string, ov *dirOps) (int, bool) {
	k := dirKey(table, pkKey)
	if ov != nil {
		if s, ok := ov.set[k]; ok {
			return s, true
		}
		if _, gone := ov.del[k]; gone {
			return 0, false
		}
	}
	r.mu.RLock()
	s, ok := r.dir[k]
	r.mu.RUnlock()
	return s, ok
}

// ownerForRow computes which shard owns the given (post-image) row: root
// tables place by sticky group assignment (hash of the routing columns
// only seeds a NEW group); child tables resolve the referenced parent
// through the directory, falling back to the parent group's placement
// when the parent row is unknown (deterministic orphan placement that
// still co-locates with the parent once it arrives — insert parents
// before children to co-locate through the directory proper).
func (r *Router) ownerForRow(table string, row []xdm.Value, ov *dirOps) (int, error) {
	rt, err := r.route(table)
	if err != nil {
		return 0, err
	}
	return r.ownerForRowRt(rt, row, ov), nil
}

func (r *Router) ownerForRowRt(rt *route, row []xdm.Value, ov *dirOps) int {
	if rt.parent == "" {
		return r.placeGroup(groupKeyOf(rt, row), ov)
	}
	ks := make([]xdm.Value, len(rt.fkIdx))
	for i, c := range rt.fkIdx {
		ks[i] = row[c]
	}
	parentKey := xdm.TupleKey(ks)
	if s, ok := r.lookup(rt.parent, parentKey, ov); ok {
		return s
	}
	// Orphan fallback: place where the parent itself would. When the
	// parent is a root routed by its primary key, the FK value IS its
	// routing tuple, so the orphan follows the parent group's sticky
	// assignment (or its hash seed) and parent + orphan converge on one
	// shard even across rebalances.
	if prt, ok := r.routes[rt.parent]; ok && prt.parent == "" && sameInts(prt.byIdx, prt.pkIdx) {
		return r.placeGroup(dirKey(rt.parent, parentKey), ov)
	}
	return r.hashKey(parentKey)
}

// placeGroup resolves a routing group's shard: overlay assignment, then
// the committed assignment, then — for a brand-new group — the hash of
// the routing tuple (the part of the group key after the table prefix,
// matching the pre-elastic placement function exactly).
func (r *Router) placeGroup(groupKey string, ov *dirOps) int {
	if ov != nil {
		if s, ok := ov.aset[groupKey]; ok {
			return s
		}
	}
	r.mu.RLock()
	s, ok := r.assign[groupKey]
	n := r.n
	r.mu.RUnlock()
	if ok {
		return s
	}
	seed := groupKey
	if i := strings.IndexByte(groupKey, 0); i >= 0 {
		seed = groupKey[i+1:]
	}
	return hashMod(seed, n)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// record installs a committed row's owner.
func (r *Router) record(table, pkKey string, shard int) {
	r.mu.Lock()
	r.dir[dirKey(table, pkKey)] = shard
	r.appendDeltaLocked([]DirOp{{Op: OpSet, Key: dirKey(table, pkKey), Shard: shard}})
	r.mu.Unlock()
}

// recordAssign installs a committed group assignment, skipping the write
// (and its delta frame) when the placement is already recorded.
func (r *Router) recordAssign(groupKey string, shard int) {
	r.mu.Lock()
	if s, ok := r.assign[groupKey]; !ok || s != shard {
		r.assign[groupKey] = shard
		r.appendDeltaLocked([]DirOp{{Op: OpAssign, Key: groupKey, Shard: shard}})
	}
	r.mu.Unlock()
}

// assignOf reports a group's committed sticky assignment.
func (r *Router) assignOf(groupKey string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.assign[groupKey]
	return s, ok
}

// dropAssign removes a committed group assignment (Shrink retires the
// lingering assignments of emptied groups that point at drained shards).
func (r *Router) dropAssign(groupKey string) {
	r.mu.Lock()
	if _, ok := r.assign[groupKey]; ok {
		delete(r.assign, groupKey)
		r.appendDeltaLocked([]DirOp{{Op: OpUnassign, Key: groupKey}})
	}
	r.mu.Unlock()
}

// forget drops a committed row's directory entry.
func (r *Router) forget(table, pkKey string) {
	r.mu.Lock()
	delete(r.dir, dirKey(table, pkKey))
	r.appendDeltaLocked([]DirOp{{Op: OpDel, Key: dirKey(table, pkKey)}})
	r.mu.Unlock()
}

// rekey moves a committed row's entry to a new primary key.
func (r *Router) rekey(table, oldKey, newKey string, shard int) {
	r.mu.Lock()
	delete(r.dir, dirKey(table, oldKey))
	r.dir[dirKey(table, newKey)] = shard
	r.appendDeltaLocked([]DirOp{
		{Op: OpDel, Key: dirKey(table, oldKey)},
		{Op: OpSet, Key: dirKey(table, newKey), Shard: shard},
	})
	r.mu.Unlock()
}

// commit folds a transaction's overlay into the committed directory,
// deletes first so a migration's set side lands last, then the group
// assignments. Under the two-phase protocol it is only called after
// every shard committed its data, so the fold is always total — and it
// persists as ONE delta frame, so the persisted directory is atomic per
// transaction (a kill replays either none or all of a commit's routing
// changes). An aborted transaction never folds.
func (r *Router) commit(ov *dirOps) {
	r.mu.Lock()
	ops := make([]DirOp, 0, len(ov.del)+len(ov.set)+len(ov.aset))
	for _, k := range sortedKeys(ov.del) {
		delete(r.dir, k)
		ops = append(ops, DirOp{Op: OpDel, Key: k})
	}
	for _, k := range sortedKeyInts(ov.set) {
		r.dir[k] = ov.set[k]
		ops = append(ops, DirOp{Op: OpSet, Key: k, Shard: ov.set[k]})
	}
	for _, k := range sortedKeyInts(ov.aset) {
		if s, ok := r.assign[k]; ok && s == ov.aset[k] {
			continue
		}
		r.assign[k] = ov.aset[k]
		ops = append(ops, DirOp{Op: OpAssign, Key: k, Shard: ov.aset[k]})
	}
	if len(ops) > 0 {
		r.appendDeltaLocked(ops)
	}
	r.mu.Unlock()
}

// appendDeltaLocked streams routing changes to the persistence store (a
// no-op for an in-memory router). Persistence errors are sticky on the
// store and surface at the next checkpoint — routing itself never fails
// on a disk error, matching the outbox's best-effort auto-compaction
// stance.
func (r *Router) appendDeltaLocked(ops []DirOp) {
	if r.store != nil {
		r.store.AppendDelta(ops)
	}
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeyInts(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeFootprint returns the tables a distributed statement on table may
// write: the table itself plus its transitive FK children (a routing-key
// change migrates the row's co-located subtree, which writes the child
// tables on both shards).
func (r *Router) writeFootprint(table string) []string {
	out := []string{table}
	seen := map[string]bool{table: true}
	for i := 0; i < len(out); i++ {
		rt := r.routes[out[i]]
		if rt == nil {
			continue
		}
		for _, cr := range rt.children {
			if !seen[cr.table] {
				seen[cr.table] = true
				out = append(out, cr.table)
			}
		}
	}
	return out
}

// DirSize reports the number of directory entries (for stats).
func (r *Router) DirSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.dir)
}

// DirSnapshot returns a copy of the routing directory, keyed by
// table + "\x00" + primary-key tuple key. Tests and consistency checkers
// use it to prove an aborted transaction left the directory untouched and
// that every entry agrees with the shard actually holding the row.
func (r *Router) DirSnapshot() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.dir))
	for k, s := range r.dir {
		out[k] = s
	}
	return out
}

// AssignSnapshot returns a copy of the sticky group-assignment map, keyed
// by root table + "\x00" + routing tuple key.
func (r *Router) AssignSnapshot() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.assign))
	for k, s := range r.assign {
		out[k] = s
	}
	return out
}

// state snapshots the router's full dynamic state for a checkpoint.
func (r *Router) state() DirState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := DirState{Shards: r.n, Dir: make(map[string]int, len(r.dir)), Assign: make(map[string]int, len(r.assign))}
	for k, s := range r.dir {
		st.Dir[k] = s
	}
	for k, s := range r.assign {
		st.Assign[k] = s
	}
	return st
}

// adopt replaces the router's dynamic state wholesale (restart from a
// persisted directory, or a rebuild from the stores). The store is not
// written — callers checkpoint explicitly afterwards.
func (r *Router) adopt(dir, assign map[string]int) {
	r.mu.Lock()
	r.dir = dir
	r.assign = assign
	r.mu.Unlock()
}

// attachStore wires the persistence store; every later directory change
// appends a delta to it.
func (r *Router) attachStore(s *DirStore) {
	r.mu.Lock()
	r.store = s
	r.mu.Unlock()
}
