package shard

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"quark/internal/outbox"
)

// Directory persistence: the router's dynamic state — shard count, the
// (table, pk) -> shard directory, and the sticky group assignments — is
// persisted as a checkpoint file plus an append-only delta log, sharing
// the outbox's length+CRC frame format (and, by convention, its
// directory: outbox.Open ignores any file that is not seg-*.log, so the
// two subsystems co-locate their durable state in one place).
//
//	dir.ckpt    ONE frame: the full state at checkpoint time
//	dir.delta   one frame per committed routing change (a distributed
//	            transaction's whole overlay folds as one frame, so the
//	            persisted directory is transaction-atomic)
//
// Crash matrix:
//
//   - kill mid delta append: the torn frame is truncated at open; the
//     directory reverts to the last complete routing change (the data
//     stores are in-memory, so a restart reloads data anyway and the
//     surviving prefix matches everything reloaded up to that point).
//   - kill mid checkpoint: the checkpoint writes to a temp file and
//     renames over dir.ckpt, so the old checkpoint survives.
//   - kill between checkpoint rename and delta truncation: the stale
//     deltas replay on top of the new checkpoint as exact no-ops (the
//     checkpoint already contains their final effect; per-key, the last
//     delta op equals the checkpointed value).
//   - corrupt checkpoint (bad CRC): OpenDirStore fails with ErrDirCorrupt
//     and the caller rebuilds from the stores (Engine.RebuildDirectory).
const (
	dirCkptName  = "dir.ckpt"
	dirDeltaName = "dir.delta"
	dirMagic     = "DIR1"
)

// DirOp codes for delta frames.
const (
	OpSet      = byte(iota) // directory entry: Key -> Shard
	OpDel                   // directory entry removed
	OpAssign                // group assignment: Key -> Shard
	OpUnassign              // group assignment removed
	OpShards                // placement modulus changed to Shard
)

// DirOp is one routing change in a delta frame.
type DirOp struct {
	Op    byte
	Key   string
	Shard int
}

// DirState is the router's full dynamic state, as persisted.
type DirState struct {
	Shards int
	Dir    map[string]int
	Assign map[string]int
}

// ErrDirCorrupt reports an unreadable checkpoint. The state is still
// reconstructible from the shard stores: wipe the files and rebuild via
// Engine.RebuildDirectory.
var ErrDirCorrupt = fmt.Errorf("shard: directory checkpoint corrupt")

// DirStore persists the routing directory in one filesystem directory.
// Appends are best-effort with a sticky error (routing never fails on a
// disk error); Checkpoint surfaces any pending append error.
type DirStore struct {
	dir string

	mu     sync.Mutex
	deltaF *os.File
	err    error // sticky persistence error
}

// OpenDirStore opens (or creates) the persisted directory state under
// dir, returning the reconstructed state: the checkpoint, with every
// complete delta frame replayed on top. A torn delta tail is truncated
// (mirroring the outbox's segment recovery); a checkpoint that fails its
// CRC returns ErrDirCorrupt.
func OpenDirStore(dir string) (*DirStore, DirState, error) {
	st := DirState{Dir: map[string]int{}, Assign: map[string]int{}}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, st, err
	}
	s := &DirStore{dir: dir}

	ckptPath := filepath.Join(dir, dirCkptName)
	if b, err := os.ReadFile(ckptPath); err == nil {
		decoded := false
		if _, err := outbox.ScanFrames(b, func(payload []byte) error {
			if decoded {
				return nil // a checkpoint is exactly one frame; ignore trailing junk
			}
			decoded = true
			return decodeCkpt(payload, &st)
		}); err != nil {
			return nil, st, err
		}
		if !decoded && len(b) > 0 {
			return nil, st, ErrDirCorrupt
		}
	} else if !os.IsNotExist(err) {
		return nil, st, err
	}

	deltaPath := filepath.Join(dir, dirDeltaName)
	if b, err := os.ReadFile(deltaPath); err == nil {
		valid, err := outbox.ScanFrames(b, func(payload []byte) error {
			ops, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			applyOps(&st, ops)
			return nil
		})
		if err != nil {
			return nil, st, err
		}
		if valid < int64(len(b)) {
			if err := os.Truncate(deltaPath, valid); err != nil {
				return nil, st, err
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, st, err
	}

	f, err := os.OpenFile(deltaPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, st, err
	}
	s.deltaF = f
	return s, st, nil
}

// Dir returns the store's filesystem directory.
func (s *DirStore) Dir() string { return s.dir }

// AppendDelta appends one frame holding the given routing changes.
// Best-effort: an I/O error is recorded (sticky) and surfaced by Err and
// the next Checkpoint, never propagated into the routing fast path.
func (s *DirStore) AppendDelta(ops []DirOp) {
	if len(ops) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.deltaF == nil {
		return
	}
	if _, err := s.deltaF.Write(outbox.Frame(encodeDelta(ops))); err != nil {
		s.err = err
	}
}

// Err reports the sticky persistence error, if any.
func (s *DirStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Checkpoint atomically replaces the checkpoint with st and truncates the
// delta log. Any sticky append error surfaces here (and clears, since the
// checkpoint rewrote the full state the lost deltas described).
func (s *DirStore) Checkpoint(st DirState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	stickyErr := s.err
	ckptPath := filepath.Join(s.dir, dirCkptName)
	tmp := ckptPath + ".tmp"
	if err := os.WriteFile(tmp, outbox.Frame(encodeCkpt(st)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, ckptPath); err != nil {
		return err
	}
	if s.deltaF != nil {
		if err := s.deltaF.Truncate(0); err != nil {
			return err
		}
		if _, err := s.deltaF.Seek(0, 0); err != nil {
			return err
		}
	}
	s.err = nil
	if stickyErr != nil {
		return fmt.Errorf("shard: directory deltas were lost before this checkpoint repaired the state: %w", stickyErr)
	}
	return nil
}

// Close closes the delta log handle.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deltaF == nil {
		return nil
	}
	err := s.deltaF.Close()
	s.deltaF = nil
	return err
}

// --- encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 || uint64(len(b)-m) < n {
		return "", nil, ErrDirCorrupt
	}
	return string(b[m : m+int(n)]), b[m+int(n):], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 {
		return 0, nil, ErrDirCorrupt
	}
	return n, b[m:], nil
}

func encodeCkpt(st DirState) []byte {
	b := []byte(dirMagic)
	b = binary.AppendUvarint(b, uint64(st.Shards))
	for _, m := range []map[string]int{st.Dir, st.Assign} {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendString(b, k)
			b = binary.AppendUvarint(b, uint64(m[k]))
		}
	}
	return b
}

func decodeCkpt(b []byte, st *DirState) error {
	if len(b) < len(dirMagic) || string(b[:len(dirMagic)]) != dirMagic {
		return ErrDirCorrupt
	}
	b = b[len(dirMagic):]
	n, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	st.Shards = int(n)
	for _, m := range []map[string]int{st.Dir, st.Assign} {
		cnt, rest, err := readUvarint(b)
		if err != nil {
			return err
		}
		b = rest
		for i := uint64(0); i < cnt; i++ {
			var k string
			k, b, err = readString(b)
			if err != nil {
				return err
			}
			var sh uint64
			sh, b, err = readUvarint(b)
			if err != nil {
				return err
			}
			m[k] = int(sh)
		}
	}
	return nil
}

func encodeDelta(ops []DirOp) []byte {
	b := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		b = append(b, op.Op)
		b = appendString(b, op.Key)
		b = binary.AppendUvarint(b, uint64(op.Shard))
	}
	return b
}

func decodeDelta(b []byte) ([]DirOp, error) {
	cnt, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	ops := make([]DirOp, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		if len(b) < 1 {
			return nil, ErrDirCorrupt
		}
		op := DirOp{Op: b[0]}
		b = b[1:]
		op.Key, b, err = readString(b)
		if err != nil {
			return nil, err
		}
		var sh uint64
		sh, b, err = readUvarint(b)
		if err != nil {
			return nil, err
		}
		op.Shard = int(sh)
		ops = append(ops, op)
	}
	return ops, nil
}

func applyOps(st *DirState, ops []DirOp) {
	for _, op := range ops {
		switch op.Op {
		case OpSet:
			st.Dir[op.Key] = op.Shard
		case OpDel:
			delete(st.Dir, op.Key)
		case OpAssign:
			st.Assign[op.Key] = op.Shard
		case OpUnassign:
			delete(st.Assign, op.Key)
		case OpShards:
			st.Shards = op.Shard
		}
	}
}
