package shard

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/trigger"
	"quark/internal/xdm"
)

// Config parameterizes a sharded engine.
type Config struct {
	// Shards is the number of embedded engine instances; defaults to 1.
	Shards int
	// Mode is the trigger translation mode every shard uses.
	Mode core.Mode
	// Routing overrides per-table routing rules (see TableRouting); tables
	// without an entry default to child-via-first-FK or root-by-PK.
	Routing []TableRouting
	// Dir, when set, persists the routing directory (checkpoint +
	// append-only delta log, see DirStore) under this path. It may be the
	// outbox's directory: the outbox ignores files that are not seg-*.log.
	// Reopening an engine over an existing Dir adopts the persisted
	// directory and group assignments — the caller then reloads the base
	// data (parents before children), and every row lands back on the
	// shard it occupied before the restart, including rebalanced groups.
	Dir string
}

// Engine mirrors the core Engine API over N embedded engines, one per
// shard. Views, triggers, and actions registered here are installed on
// every shard (a trigger's spec is parsed once and compiled per shard
// against that shard's store); statements route to the owning shard, and
// statements whose footprint spans shards run as distributed transactions
// committed in shard order, so merged per-shard deltas activate in
// deterministic (shard, storage-key) order.
//
// Action delivery is shared: EnableAsyncDispatch attaches ONE dispatcher
// to every shard, so per-trigger FIFO lanes span shards; EnableOutbox
// attaches one log, sink, and append+enqueue stripe set to every shard,
// so log order is a global per-trigger order and a replay reproduces the
// fleet's deliveries exactly.
type Engine struct {
	router *Router
	schema *schema.Schema
	mode   core.Mode

	// topo guards the fleet slices, which Grow/Shrink replace wholesale
	// (readers snapshot them; an old snapshot stays valid because the
	// backing arrays are never mutated in place).
	topo    sync.RWMutex
	engines []*core.Engine
	dbs     []*reldb.DB

	d         *dispatch.Dispatcher
	ob        *outbox.Log
	obSink    outbox.Sink
	obStripes *core.DeliveryStripes

	// Registered actions, views, and triggers are retained (in
	// registration order) so Grow can replay them onto appended shards.
	regMu     sync.Mutex
	actions   []namedAction
	views     []namedView
	trigSpecs []*trigger.Spec

	store *DirStore // nil: in-memory directory only

	// om, when non-nil, holds the fleet's resolved metric handles (see
	// EnableObs). Nil is the disabled fast path.
	om atomic.Pointer[shardObs]

	// rebalanceBarrier, when set, runs between a rebalance transaction's
	// prepare-all and commit-all phases (the kill-mid-rebalance tests'
	// seam; see SetRebalanceBarrier).
	rebalanceBarrier func()

	// Adaptive per-group modes (see adaptive.go). adMu guards the policy
	// and the committed mode map; groupModes mirrors every committed
	// per-group decision for persistence (persistModes) and Grow replay.
	// replanBarrier is the kill-mid-migration crash seam, running between
	// a fleet mode switch's prepare-all and commit-all phases.
	adMu          sync.Mutex
	adaptive      bool
	policy        core.ModePolicy
	groupModes    map[string]core.Mode
	replanBarrier func()
}

type namedAction struct {
	name string
	fn   core.ActionFunc
}

type namedView struct {
	name, src string
}

// Stats reports fleet-wide counters plus the per-shard breakdown.
type Stats struct {
	Shards      int
	PerShard    []core.Stats
	XMLTriggers int   // registered triggers (same on every shard)
	Fires       int64 // summed over shards
	Actions     int64 // summed over shards
	DirEntries  int   // routing directory size
	Async       bool
	Dispatch    dispatch.Stats
	Outbox      bool
	OutboxLog   outbox.Stats
}

// New builds a sharded engine: cfg.Shards embedded engines over fresh
// stores of the same schema, and a router resolved from cfg.Routing.
// With cfg.Dir set, the persisted routing directory is adopted (see
// Config.Dir); the persisted shard count, when present, must match
// cfg.Shards.
func New(s *schema.Schema, cfg Config) (*Engine, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	router, err := NewRouter(s, n, cfg.Routing)
	if err != nil {
		return nil, err
	}
	e := &Engine{router: router, schema: s, mode: cfg.Mode}
	if cfg.Dir != "" {
		store, st, err := OpenDirStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if st.Shards != 0 && st.Shards != n {
			_ = store.Close()
			return nil, fmt.Errorf("shard: persisted directory has %d shards, config asks for %d", st.Shards, n)
		}
		for k, si := range st.Dir { //quark:sorted validation only: any order rejects the same bad entry set
			if si < 0 || si >= n {
				_ = store.Close()
				return nil, fmt.Errorf("shard: persisted directory entry %q references shard %d of %d", k, si, n)
			}
		}
		for k, si := range st.Assign { //quark:sorted validation only: any order rejects the same bad entry set
			if si < 0 || si >= n {
				_ = store.Close()
				return nil, fmt.Errorf("shard: persisted group assignment %q references shard %d of %d", k, si, n)
			}
		}
		router.adopt(st.Dir, st.Assign)
		router.attachStore(store)
		e.store = store
		// Re-checkpoint immediately: the persisted state now includes the
		// shard count even for a fresh directory, and the delta log resets
		// to empty for this process's run.
		if err := store.Checkpoint(router.state()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		db, err := reldb.Open(s)
		if err != nil {
			return nil, err
		}
		e.dbs = append(e.dbs, db)
		e.engines = append(e.engines, core.NewEngine(db, cfg.Mode))
	}
	if cfg.Dir != "" {
		// Persisted planner decisions (if any) adopt before the caller
		// re-registers triggers, so every group comes back in the mode it
		// ran before the restart (see adaptive.go).
		if err := e.loadModes(cfg.Dir); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// fleet snapshots the engine and store slices under the topology lock.
// Grow/Shrink replace the slices wholesale, so a snapshot stays
// internally consistent for the duration of one statement.
func (e *Engine) fleet() ([]*core.Engine, []*reldb.DB) {
	e.topo.RLock()
	defer e.topo.RUnlock()
	return e.engines, e.dbs
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int {
	engines, _ := e.fleet()
	return len(engines)
}

// Shard returns the i-th embedded engine (inspection and tests).
func (e *Engine) Shard(i int) *core.Engine {
	engines, _ := e.fleet()
	return engines[i]
}

// Router returns the engine's router.
func (e *Engine) Router() *Router { return e.router }

// Mode returns the translation mode.
func (e *Engine) Mode() core.Mode { return e.mode }

// OwnerOf reports which shard currently owns the row with the given
// primary key, according to the directory.
func (e *Engine) OwnerOf(table string, key ...xdm.Value) (int, bool) {
	return e.router.lookup(table, xdm.TupleKey(key), nil)
}

// RegisterAction installs an action function on every shard (current and
// future: Grow replays registrations onto appended shards).
func (e *Engine) RegisterAction(name string, fn core.ActionFunc) {
	engines, _ := e.fleet()
	for _, ce := range engines {
		ce.RegisterAction(name, fn)
	}
	e.regMu.Lock()
	e.actions = append(e.actions, namedAction{name, fn})
	e.regMu.Unlock()
}

// CreateView compiles and registers the view on every shard (current and
// future).
func (e *Engine) CreateView(name, src string) error {
	engines, _ := e.fleet()
	for _, ce := range engines {
		if _, err := ce.CreateView(name, src); err != nil {
			return err
		}
	}
	e.regMu.Lock()
	e.views = append(e.views, namedView{name, src})
	e.regMu.Unlock()
	return nil
}

// CreateTrigger parses the trigger once and registers it on every shard;
// each shard compiles its own plans against its own store at Flush. On a
// mid-fleet failure the already-registered shards are rolled back so the
// fleet never disagrees about the trigger population.
func (e *Engine) CreateTrigger(src string) error {
	spec, err := trigger.Parse(src)
	if err != nil {
		return err
	}
	return e.CreateTriggerSpec(spec)
}

// CreateTriggerSpec registers a pre-parsed trigger on every shard.
func (e *Engine) CreateTriggerSpec(spec *trigger.Spec) error {
	engines, _ := e.fleet()
	for i, ce := range engines {
		if err := ce.CreateTriggerSpec(spec); err != nil {
			for j := 0; j < i; j++ {
				_ = engines[j].DropTrigger(spec.Name)
			}
			return err
		}
	}
	e.regMu.Lock()
	e.trigSpecs = append(e.trigSpecs, spec)
	e.regMu.Unlock()
	return nil
}

// DropTrigger removes the trigger from every shard (draining its shared
// delivery lane via the per-shard drop path).
func (e *Engine) DropTrigger(name string) error {
	var first error
	engines, _ := e.fleet()
	for _, ce := range engines {
		if err := ce.DropTrigger(name); err != nil && first == nil {
			first = err
		}
	}
	e.regMu.Lock()
	for i, sp := range e.trigSpecs {
		if sp.Name == name {
			e.trigSpecs = append(e.trigSpecs[:i], e.trigSpecs[i+1:]...)
			break
		}
	}
	e.regMu.Unlock()
	return first
}

// Flush builds and installs the translated SQL triggers on every shard.
func (e *Engine) Flush() error {
	engines, _ := e.fleet()
	for _, ce := range engines {
		if err := ce.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// EnableAsyncDispatch switches every shard's action delivery to one
// shared bounded-queue worker pool: per-trigger FIFO lanes span shards,
// so a trigger's deliveries never reorder or run concurrently even when
// it fires on several shards.
func (e *Engine) EnableAsyncDispatch(cfg dispatch.Config) error {
	if e.d != nil {
		return fmt.Errorf("shard: async dispatch already enabled")
	}
	// Precheck the whole fleet before attaching anything: failing on
	// shard i>0 after attaching shards < i would leave a half-async
	// fleet, and closing the shared pool under the attached shards would
	// turn their next delivery into an ErrClosed statement error.
	engines, _ := e.fleet()
	for i, ce := range engines {
		if ce.AsyncDispatch() {
			return fmt.Errorf("shard: shard %d already has async dispatch enabled", i)
		}
	}
	d := dispatch.New(cfg)
	for _, ce := range engines {
		if err := ce.AttachSharedDispatcher(d); err != nil {
			_ = d.Close()
			return err
		}
	}
	e.d = d
	return nil
}

// EnableOutbox makes every shard's delivery durable through ONE shared
// log, sink, and append+enqueue stripe set, so the log's per-trigger
// order is the fleet's delivery order and a replay reproduces it.
func (e *Engine) EnableOutbox(lg *outbox.Log, sink outbox.Sink) error {
	if e.ob != nil {
		return fmt.Errorf("shard: outbox already enabled")
	}
	if lg == nil {
		return fmt.Errorf("shard: EnableOutbox requires a log")
	}
	// Precheck before enabling anything (see EnableAsyncDispatch): a
	// mid-fleet failure would leave a half-durable fleet with no way to
	// retry.
	engines, _ := e.fleet()
	for i, ce := range engines {
		if ce.OutboxEnabled() {
			return fmt.Errorf("shard: shard %d already has an outbox enabled", i)
		}
	}
	stripes := core.NewDeliveryStripes()
	for _, ce := range engines {
		if err := ce.EnableOutboxShared(lg, sink, stripes); err != nil {
			return err
		}
	}
	e.ob = lg
	e.obSink = sink
	e.obStripes = stripes
	return nil
}

// Drain blocks until every queued async delivery across the fleet has
// completed; a no-op in synchronous mode.
func (e *Engine) Drain() {
	if e.d != nil {
		e.d.Drain()
	}
}

// Close drains and detaches every shard from the shared dispatcher, then
// stops it. Idempotent; safe on a synchronous engine.
func (e *Engine) Close() error {
	var first error
	engines, _ := e.fleet()
	for _, ce := range engines {
		if err := ce.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.d != nil {
		if err := e.d.Close(); err != nil && first == nil {
			first = err
		}
		e.d = nil
	}
	if e.store != nil {
		if err := e.store.Close(); err != nil && first == nil {
			first = err
		}
		e.store = nil
	}
	return first
}

// Stats returns fleet counters with the per-shard breakdown.
func (e *Engine) Stats() Stats {
	engines, _ := e.fleet()
	st := Stats{Shards: len(engines), DirEntries: e.router.DirSize()}
	for _, ce := range engines {
		s := ce.Stats()
		st.PerShard = append(st.PerShard, s)
		st.Fires += s.Fires
		st.Actions += s.Actions
	}
	if len(st.PerShard) > 0 {
		st.XMLTriggers = st.PerShard[0].XMLTriggers
	}
	if e.d != nil {
		st.Async = true
		st.Dispatch = e.d.Stats()
	}
	if e.ob != nil {
		st.Outbox = true
		st.OutboxLog = e.ob.Stats()
	}
	return st
}

// --- statement surface: route to the owning shard when the statement's
// footprint is provably one shard; otherwise run a distributed tx ---

// Insert routes each row to its owning shard. A statement whose rows all
// land on one shard takes the fast path; a statement spanning shards runs
// as a distributed transaction so validation failures keep single-
// statement atomicity (the single engine's applyInsert is all-or-nothing,
// and so is the rolled-back fleet). Parents must be inserted before
// children (the directory resolves child ownership from the parent's
// entry). Primary keys are globally unique: the directory doubles as the
// fleet-wide PK index, rejecting a key that already exists on ANY shard —
// matching the single engine's duplicate-key error even when the
// duplicate's routing columns hash elsewhere.
func (e *Engine) Insert(table string, rows ...reldb.Row) error {
	rt, err := e.router.route(table)
	if err != nil {
		return err
	}
	engines, _ := e.fleet()
	groups := make(map[int][]reldb.Row)
	keys := make(map[int][]string)
	seen := make(map[string]bool, len(rows))
	for _, row := range rows {
		if len(row) != len(rt.def.Columns) {
			// Let an engine produce the canonical arity error (under its
			// table lock; validation fails before anything is applied).
			return engines[0].Insert(table, row)
		}
		k := pkKeyOf(rt, row)
		o := e.router.ownerForRowRt(rt, row, nil)
		if seen[k] {
			return fmt.Errorf("shard: duplicate primary key in table %s", table)
		}
		seen[k] = true
		if cur, ok := e.router.lookup(table, k, nil); ok && cur != o {
			// The same key lives on another shard; the owning reldb could
			// never see the collision, so the router rejects it.
			return fmt.Errorf("shard: duplicate primary key in table %s (row exists on shard %d)", table, cur)
		}
		groups[o] = append(groups[o], row)
		keys[o] = append(keys[o], k)
	}
	if len(groups) > 1 {
		// Cross-shard statement: distributed transaction for atomicity.
		return e.runTxTables([]string{table}, func(tx *Tx) error {
			return tx.Insert(table, rows...)
		})
	}
	if m := e.om.Load(); m != nil {
		m.routedStmt.Inc()
	}
	for si := range engines {
		g := groups[si]
		if len(g) == 0 {
			continue
		}
		err := engines[si].Insert(table, g...)
		if err == nil {
			for ri, k := range keys[si] {
				e.router.record(table, k, si)
				if rt.parent == "" {
					e.router.recordAssign(groupKeyOf(rt, g[ri]), si)
				}
			}
			continue
		}
		// The statement failed, but reldb applies rows BEFORE firing: a
		// trigger-action error leaves the rows in the store (AFTER-trigger
		// semantics). Reconcile the directory with what actually exists so
		// the rows stay addressable, exactly as on a single engine.
		for ri, k := range keys[si] {
			if _, found, _ := engines[si].GetByPK(table, pkVals(rt, g[ri])...); found {
				e.router.record(table, k, si)
				if rt.parent == "" {
					e.router.recordAssign(groupKeyOf(rt, g[ri]), si)
				}
			}
		}
		return err
	}
	return nil
}

// UpdateByPK updates one row on its owning shard. If the update changes
// the row's routing key to another shard, the statement runs as a
// distributed transaction migrating the row (and, for a root, its
// co-located subtree) to the new owner. The set function must be pure:
// the router probes it against a copy of the current row to decide the
// statement's footprint before applying it for real.
func (e *Engine) UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error) {
	rt, err := e.router.route(table)
	if err != nil {
		return false, err
	}
	engines, _ := e.fleet()
	pk := xdm.TupleKey(key)
	owner, ok := e.router.lookup(table, pk, nil)
	if !ok {
		return false, nil
	}
	cur, found, err := engines[owner].GetByPK(table, key...)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	next := set(cur.Copy())
	if len(next) != len(rt.def.Columns) {
		// Malformed post-image: let the owning engine produce the error.
		return engines[owner].UpdateByPK(table, key, set)
	}
	newOwner := e.router.ownerForRowRt(rt, next, nil)
	if nk := pkKeyOf(rt, next); nk != pk {
		// Fleet-wide PK uniqueness on PK moves (see Insert): a collision
		// on another shard is invisible to the destination's reldb.
		if cur, ok := e.router.lookup(table, nk, nil); ok && cur != newOwner {
			return false, fmt.Errorf("shard: duplicate primary key in table %s (row exists on shard %d)", table, cur)
		}
	}
	if newOwner == owner {
		if m := e.om.Load(); m != nil {
			m.routedStmt.Inc()
		}
		changed, err := engines[owner].UpdateByPK(table, key, set)
		applied := changed && err == nil
		if err != nil {
			// A firing error leaves the applied update in place
			// (AFTER-trigger semantics); reconcile the directory with
			// the store so a PK-moved row stays addressable.
			_, applied, _ = engines[owner].GetByPK(table, pkVals(rt, next)...)
		}
		if applied {
			if nk := pkKeyOf(rt, next); nk != pk {
				e.router.rekey(table, pk, nk, owner)
			}
			if rt.parent == "" {
				// The routing tuple may have changed to a group that happens
				// to stay on this shard; pin the new group here so a later
				// modulus change never splits it from its rows.
				e.router.recordAssign(groupKeyOf(rt, next), owner)
			}
		}
		return changed, err
	}
	var moved bool
	err = e.runTxTables(e.router.writeFootprint(table), func(tx *Tx) error {
		var err error
		moved, err = tx.UpdateByPK(table, key, set)
		return err
	})
	return moved, err
}

// Update applies a predicate update across the fleet as a distributed
// transaction scoped to the statement's write footprint (the table plus
// its FK-children, which a migration may write) — disjoint-footprint
// statements and single-shard statements on other tables stay
// concurrent. Per-row migration applies when the update changes a row's
// owner. set must be pure (see UpdateByPK).
func (e *Engine) Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error) {
	if _, err := e.router.route(table); err != nil {
		return 0, err
	}
	n := 0
	err := e.runTxTables(e.router.writeFootprint(table), func(tx *Tx) error {
		var err error
		n, err = tx.Update(table, pred, set)
		return err
	})
	return n, err
}

// Delete applies a predicate delete across the fleet as a distributed
// transaction write-locked on the target table only.
func (e *Engine) Delete(table string, pred func(reldb.Row) bool) (int, error) {
	if _, err := e.router.route(table); err != nil {
		return 0, err
	}
	n := 0
	err := e.runTxTables([]string{table}, func(tx *Tx) error {
		var err error
		n, err = tx.Delete(table, pred)
		return err
	})
	return n, err
}

// DeleteByPK deletes one row on its owning shard.
func (e *Engine) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	if _, err := e.router.route(table); err != nil {
		return false, err
	}
	engines, _ := e.fleet()
	pk := xdm.TupleKey(key)
	owner, ok := e.router.lookup(table, pk, nil)
	if !ok {
		return false, nil
	}
	if m := e.om.Load(); m != nil {
		m.routedStmt.Inc()
	}
	removed, err := engines[owner].DeleteByPK(table, key...)
	if err == nil && removed {
		e.router.forget(table, pk)
	} else if err != nil {
		// A firing error leaves the applied delete in place; reconcile.
		if _, found, _ := engines[owner].GetByPK(table, key...); !found {
			e.router.forget(table, pk)
		}
	}
	return removed, err
}

// Batch runs fn inside one distributed transaction spanning every shard:
// mutations route like their statement counterparts (including cross-
// shard migrations), each shard's triggers fire once at its commit with
// that shard's merged net deltas, and commits run in shard order. If fn
// returns an error every shard rolls back and the directory is untouched.
//
// Commit is two-phase: every shard prepares first (condition evaluation
// and invocation staging — any error rolls ALL shards back and discards
// the directory overlay, leaving the fleet byte-identical to its
// pre-transaction state), and only when every prepare succeeded do the
// shards commit and deliver. A delivery error during phase 2 surfaces to
// the caller but every shard's data still commits and the directory
// folds completely — the same contract a single engine's AFTER-trigger
// error has, never a half-committed fleet.
func (e *Engine) Batch(fn func(*Tx) error) error {
	return e.runTxTables(nil, fn)
}

// runTxTables drives one distributed transaction to commit or rollback.
// tables, when non-nil, is the declared write footprint (locked and
// restricted per shard via BeginBatchTables); nil locks every table
// (Batch, whose footprint is unknown up front).
func (e *Engine) runTxTables(tables []string, fn func(*Tx) error) error {
	tx, err := e.beginAll(tables)
	if err != nil {
		return err
	}
	finished := false
	defer func() {
		if !finished {
			tx.rollback()
		}
	}()
	if err := fn(tx); err != nil {
		finished = true
		tx.rollback()
		return err
	}
	finished = true
	return tx.commit()
}

// beginAll opens a batch handle on every shard in shard order; within a
// shard, table locks follow the global name order. Every multi-shard
// acquirer walks this one (shard, table) order, which makes concurrent
// distributed transactions deadlock-free against each other and against
// single-shard statements.
func (e *Engine) beginAll(tables []string) (*Tx, error) {
	engines, dbs := e.fleet()
	tx := &Tx{e: e, dbs: dbs, ov: newDirOps()}
	if m := e.om.Load(); m != nil {
		m.distStmt.Inc()
		tx.span = m.reg.StartSpan("tx")
		tx.span.SetAttr("shards", strconv.Itoa(len(engines)))
	}
	for i, ce := range engines {
		var h *core.BatchHandle
		var err error
		if tables == nil {
			h, err = ce.BeginBatch()
		} else {
			h, err = ce.BeginBatchTables(tables)
		}
		if err != nil {
			for _, open := range tx.hs {
				_ = open.Rollback()
			}
			tx.span.End()
			return nil, err
		}
		if tx.span != nil {
			// Replace the per-shard root the core handle opened with a
			// child of the fleet root, so the whole distributed commit —
			// every shard's prepare, trigger evaluation, commit, group
			// append — retains as ONE trace tree.
			sp := tx.span.Child("shard")
			sp.SetAttr("shard", strconv.Itoa(i))
			h.AttachSpan(sp)
		}
		tx.hs = append(tx.hs, h)
	}
	return tx, nil
}
