package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"quark/internal/core"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

func randState(rng *rand.Rand) DirState {
	st := DirState{Shards: 1 + rng.Intn(16), Dir: map[string]int{}, Assign: map[string]int{}}
	for i := rng.Intn(40); i > 0; i-- {
		st.Dir[fmt.Sprintf("t%d\x003:\x00i%d", rng.Intn(3), rng.Intn(1000))] = rng.Intn(st.Shards)
	}
	for i := rng.Intn(20); i > 0; i-- {
		st.Assign[fmt.Sprintf("t%d\x003:\x00i%d", rng.Intn(3), rng.Intn(1000))] = rng.Intn(st.Shards)
	}
	return st
}

// TestDirStoreRoundTrip is the persistence property test: random states
// checkpoint and reopen identical, with and without random delta frames
// replayed on top.
func TestDirStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		dir := t.TempDir()
		s, _, err := OpenDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		want := randState(rng)
		if err := s.Checkpoint(want); err != nil {
			t.Fatal(err)
		}
		// Half the iterations append random deltas after the checkpoint.
		if iter%2 == 1 {
			for f := rng.Intn(5); f > 0; f-- {
				var ops []DirOp
				for o := 1 + rng.Intn(4); o > 0; o-- {
					op := DirOp{Key: fmt.Sprintf("t%d\x003:\x00i%d", rng.Intn(3), rng.Intn(1000))}
					switch rng.Intn(5) {
					case 0:
						op.Op, op.Shard = OpSet, rng.Intn(want.Shards)
					case 1:
						op.Op = OpDel
					case 2:
						op.Op, op.Shard = OpAssign, rng.Intn(want.Shards)
					case 3:
						op.Op = OpUnassign
					default:
						op.Op, op.Shard = OpShards, 1+rng.Intn(16)
					}
					ops = append(ops, op)
				}
				s.AppendDelta(ops)
				applyOps(&want, ops)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		_, got, err := OpenDirStore(dir)
		if err != nil {
			t.Fatalf("iter %d: reopen: %v", iter, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: reopened state diverges:\nwant %+v\ngot  %+v", iter, want, got)
		}
	}
}

// TestDirStoreTornDeltaTail: a kill mid-append leaves a torn final frame;
// reopening must apply the complete prefix, truncate the torn tail, and
// keep appending from the truncation point.
func TestDirStoreTornDeltaTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.AppendDelta([]DirOp{{Op: OpSet, Key: "a", Shard: 1}})
	s.AppendDelta([]DirOp{{Op: OpAssign, Key: "g", Shard: 2}, {Op: OpShards, Shard: 4}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deltaPath := filepath.Join(dir, dirDeltaName)
	whole, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: a prefix of a third frame lands on disk.
	torn := append(append([]byte(nil), whole...), outbox.Frame(encodeDelta([]DirOp{{Op: OpSet, Key: "b", Shard: 3}}))[:5]...)
	if err := os.WriteFile(deltaPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, st, err := OpenDirStore(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if st.Dir["a"] != 1 || st.Assign["g"] != 2 || st.Shards != 4 {
		t.Fatalf("complete prefix not applied: %+v", st)
	}
	if _, ok := st.Dir["b"]; ok {
		t.Fatal("torn frame applied")
	}
	if b, _ := os.ReadFile(deltaPath); len(b) != len(whole) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(b), len(whole))
	}
	// Appending after recovery lands complete frames after the survivors.
	s2.AppendDelta([]DirOp{{Op: OpSet, Key: "c", Shard: 0}})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Dir["c"] != 0 || st3.Dir["a"] != 1 {
		t.Fatalf("post-recovery append lost: %+v", st3)
	}
}

// TestDirStoreStaleDeltaReplay: a kill between the checkpoint rename and
// the delta truncation leaves stale deltas beside the new checkpoint;
// replaying them on top must be an exact no-op (the checkpoint already
// contains their final effect).
func TestDirStoreStaleDeltaReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops := []DirOp{{Op: OpSet, Key: "a", Shard: 1}, {Op: OpAssign, Key: "g", Shard: 2}}
	s.AppendDelta(ops)
	want := DirState{Shards: 3, Dir: map[string]int{"a": 1}, Assign: map[string]int{"g": 2}}
	if err := s.Checkpoint(want); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-create the pre-truncation delta file: the checkpoint has renamed
	// but the truncate never happened.
	if err := os.WriteFile(filepath.Join(dir, dirDeltaName), outbox.Frame(encodeDelta(ops)), 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stale replay diverged:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestDirStoreCorruptCheckpoint: a checkpoint failing its CRC surfaces
// ErrDirCorrupt (the caller's cue to rebuild from the stores).
func TestDirStoreCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(DirState{Shards: 2, Dir: map[string]int{"a": 1}, Assign: map[string]int{}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, dirCkptName)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDirStore(dir); !errors.Is(err, ErrDirCorrupt) && err == nil {
		t.Fatalf("corrupt checkpoint opened cleanly")
	}
}

// TestEngineDirectoryCheckpointRoundTrip: the engine's live snapshots,
// checkpointed and reopened from disk, come back identical — including
// after a rebalance moved a group off its hash slot.
func TestEngineDirectoryCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := New(catalogSchema(t), Config{
		Shards: 4,
		Mode:   core.ModeGrouped,
		Routing: []TableRouting{
			{Table: "product", ByColumns: []string{"pname"}},
			{Table: "vendor", ViaParent: "product"},
		},
		Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0), row("Bestbuy", "P2", 180.0))
	from := e.GroupOwner("product", xdm.Str("CRT 15"))
	to := (from + 1) % 4
	if _, err := e.Rebalance(Plan{Moves: []GroupMove{{Table: "product", Key: GroupKey(xdm.Str("CRT 15")), To: to}}}); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckpointDirectory(); err != nil {
		t.Fatal(err)
	}
	wantDir, wantAssign := e.Router().DirSnapshot(), e.Router().AssignSnapshot()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || !reflect.DeepEqual(st.Dir, wantDir) || !reflect.DeepEqual(st.Assign, wantAssign) {
		t.Fatalf("checkpointed state diverges from live snapshots:\nwant dir %v assign %v\ngot %+v", wantDir, wantAssign, st)
	}
}

// TestEngineRestartAdoption: reopening an engine over a persisted
// directory and reloading the same base data (parents first) lands every
// row back on its pre-restart shard — including a group a rebalance had
// moved off its hash slot — and passes the full directory invariant.
func TestEngineRestartAdoption(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 4,
		Mode:   core.ModeGrouped,
		Routing: []TableRouting{
			{Table: "product", ByColumns: []string{"pname"}},
			{Table: "vendor", ViaParent: "product"},
		},
		Dir: dir,
	}
	products := []reldb.Row{row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"), row("P3", "CRT 15", "Viewsonic")}
	vendors := []reldb.Row{row("Amazon", "P1", 100.0), row("Bestbuy", "P2", 180.0), row("Newegg", "P3", 90.0)}

	e, err := New(catalogSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, e, "product", products...)
	mustInsert(t, e, "vendor", vendors...)
	from := e.GroupOwner("product", xdm.Str("CRT 15"))
	to := (from + 1) % 4
	if _, err := e.Rebalance(Plan{Moves: []GroupMove{{Table: "product", Key: GroupKey(xdm.Str("CRT 15")), To: to}}}); err != nil {
		t.Fatal(err)
	}
	wantDir := e.Router().DirSnapshot()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(catalogSchema(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.GroupOwner("product", xdm.Str("CRT 15")); got != to {
		t.Fatalf("adopted group placement %d, want %d", got, to)
	}
	mustInsert(t, e2, "product", products...)
	mustInsert(t, e2, "vendor", vendors...)
	if gotDir := e2.Router().DirSnapshot(); !reflect.DeepEqual(gotDir, wantDir) {
		t.Fatalf("reloaded rows landed differently:\nwant %v\ngot  %v", wantDir, gotDir)
	}
	if err := e2.VerifyDirectory(); err != nil {
		t.Fatal(err)
	}
	// The rebalanced group's rows are physically on the destination shard.
	if n := e2.Shard(to).DB().RowCount("product"); n != 2 {
		t.Fatalf("destination shard holds %d product rows, want 2 (the CRT 15 group)", n)
	}
}

// TestEngineRebuildDirectory: after a corrupt checkpoint, wiping the
// files and rebuilding from the stores reconstructs a directory and
// assignment set consistent with the data (rebalanced placements become
// the rebuilt truth — every group pins where its rows live).
func TestEngineRebuildDirectory(t *testing.T) {
	e := newCatalogEngine(t, 4)
	mustInsert(t, e, "product", row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"))
	mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0))
	from := e.GroupOwner("product", xdm.Str("CRT 15"))
	to := (from + 1) % 4
	if _, err := e.Rebalance(Plan{Moves: []GroupMove{{Table: "product", Key: GroupKey(xdm.Str("CRT 15")), To: to}}}); err != nil {
		t.Fatal(err)
	}
	want := e.Router().DirSnapshot()
	// Simulate the recovery path: throw the in-memory state away and
	// reconstruct from the stores alone.
	e.Router().adopt(map[string]int{}, map[string]int{})
	if err := e.RebuildDirectory(); err != nil {
		t.Fatal(err)
	}
	if got := e.Router().DirSnapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("rebuilt directory diverges:\nwant %v\ngot  %v", want, got)
	}
	if got := e.GroupOwner("product", xdm.Str("CRT 15")); got != to {
		t.Fatalf("rebuilt placement %d, want %d", got, to)
	}
	if err := e.VerifyDirectory(); err != nil {
		t.Fatal(err)
	}
}
