package shard

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"quark/internal/core"
	"quark/internal/obs"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

// newAdaptiveFleet builds an adaptive n-shard fleet (dir may be empty)
// with one watch trigger over the product map view, returning the engine
// and a pointer to the firing log.
func newAdaptiveFleet(t *testing.T, n int, dir string) (*Engine, *[]string, *sync.Mutex) {
	t.Helper()
	e, err := New(catalogSchema(t), Config{
		Shards: n,
		Mode:   core.ModeGrouped,
		Routing: []TableRouting{
			{Table: "product", ByColumns: []string{"pname"}},
			{Table: "vendor", ViaParent: "product"},
		},
		Dir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Adaptive() { // a restart over a persisted mode file is already adaptive
		if err := e.SetModePolicy(nil); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []string
	e.RegisterAction("notify", func(inv core.Invocation) error {
		mu.Lock()
		got = append(got, inv.Trigger)
		mu.Unlock()
		return nil
	})
	if err := e.CreateView("m", `<m>{for $q in view('default')/product/row return <p name={$q/pname} mfr={$q/mfr}></p>}</m>`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER watch AFTER UPDATE ON view('m')/p DO notify(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e, &got, &mu
}

func seedProducts(t *testing.T, e *Engine) {
	t.Helper()
	mustInsert(t, e, "product",
		row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"),
		row("P3", "OLED 27", "LG"), row("P4", "Plasma 42", "Panasonic"))
}

func touchAllProducts(t *testing.T, e *Engine, mfr string) {
	t.Helper()
	for _, pid := range []string{"P1", "P2", "P3", "P4"} {
		changed, err := e.UpdateByPK("product", []xdm.Value{xdm.Str(pid)}, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Str(mfr)
			return r
		})
		if err != nil || !changed {
			t.Fatalf("update %s: changed=%v err=%v", pid, changed, err)
		}
	}
}

// TestShardFleetModeSwitch: a fleet-wide mode switch flips every shard in
// one step — all shards agree afterwards, the switch itself fires
// nothing, and triggers keep firing correctly in the new mode.
func TestShardFleetModeSwitch(t *testing.T) {
	e, got, mu := newAdaptiveFleet(t, 4, "")
	reg := obs.New()
	e.EnableObs(reg)
	seedProducts(t, e)
	touchAllProducts(t, e, "ACME")
	mu.Lock()
	if len(*got) != 4 {
		t.Fatalf("warmup fired %d, want 4", len(*got))
	}
	*got = nil
	mu.Unlock()

	sigs := e.GroupSigs()
	if len(sigs) != 1 {
		t.Fatalf("group sigs = %v, want 1", sigs)
	}
	for _, m := range []core.Mode{core.ModeMaterialized, core.ModeUngrouped, core.ModeGroupedAgg} {
		changes, err := e.SetGroupModes(map[string]core.Mode{sigs[0]: m})
		if err != nil {
			t.Fatalf("switch to %v: %v", m, err)
		}
		if len(changes) != 1 {
			t.Fatalf("switch to %v: changes = %v", m, changes)
		}
		mu.Lock()
		if len(*got) != 0 {
			t.Fatalf("silent switch to %v fired %d notifications", m, len(*got))
		}
		mu.Unlock()
		// Every shard agrees.
		for i := 0; i < e.NumShards(); i++ {
			if sm, ok := e.Shard(i).GroupMode(sigs[0]); !ok || sm != m {
				t.Fatalf("shard %d mode = %v,%v; want %v", i, sm, ok, m)
			}
		}
		touchAllProducts(t, e, "ACME-"+m.String())
		mu.Lock()
		if len(*got) != 4 {
			t.Fatalf("in mode %v fired %d, want 4", m, len(*got))
		}
		*got = nil
		mu.Unlock()
	}
	snap := reg.Snapshot()
	if snap.Counters["quark_planner_mode_switches_total"] != 3 {
		t.Errorf("mode switch counter = %d, want 3", snap.Counters["quark_planner_mode_switches_total"])
	}
	var fleet, perShard int
	for _, ev := range snap.Events {
		if ev.Kind != "mode.switch" {
			continue
		}
		if ev.Fields["scope"] == "fleet" {
			fleet++
		} else {
			perShard++
		}
	}
	if fleet != 3 {
		t.Errorf("fleet mode.switch events = %d, want 3", fleet)
	}
	if perShard != 3*e.NumShards() {
		t.Errorf("per-shard mode.switch events = %d, want %d", perShard, 3*e.NumShards())
	}
}

// TestShardModeSwitchBadTarget: an invalid target aborts cleanly — the
// fleet keeps its modes and keeps firing.
func TestShardModeSwitchBadTarget(t *testing.T) {
	e, got, mu := newAdaptiveFleet(t, 2, "")
	seedProducts(t, e)
	sigs := e.GroupSigs()
	before, _ := e.GroupMode(sigs[0])
	if _, err := e.SetGroupModes(map[string]core.Mode{sigs[0]: core.Mode(9)}); err == nil {
		t.Fatal("invalid mode accepted")
	}
	if m, _ := e.GroupMode(sigs[0]); m != before {
		t.Errorf("failed switch changed mode %v -> %v", before, m)
	}
	touchAllProducts(t, e, "ACME")
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 4 {
		t.Errorf("after failed switch fired %d, want 4", len(*got))
	}
}

// TestShardModesPersistAndRestart: committed mode decisions survive a
// restart — a fresh engine over the same directory comes up adaptive with
// every group seeded to its pre-restart mode.
func TestShardModesPersistAndRestart(t *testing.T) {
	dir := t.TempDir()
	e, _, _ := newAdaptiveFleet(t, 2, dir)
	seedProducts(t, e)
	sigs := e.GroupSigs()
	if _, err := e.SetGroupModes(map[string]core.Mode{sigs[0]: core.ModeMaterialized}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, got, mu := newAdaptiveFleet(t, 2, dir)
	if !e2.Adaptive() {
		t.Fatal("reopened fleet not adaptive")
	}
	if m, ok := e2.GroupMode(sigs[0]); !ok || m != core.ModeMaterialized {
		t.Fatalf("reopened group mode = %v,%v; want MATERIALIZED", m, ok)
	}
	for i := 0; i < e2.NumShards(); i++ {
		if sm, ok := e2.Shard(i).GroupMode(sigs[0]); !ok || sm != core.ModeMaterialized {
			t.Fatalf("reopened shard %d mode = %v,%v", i, sm, ok)
		}
	}
	seedProducts(t, e2)
	touchAllProducts(t, e2, "ACME")
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 4 {
		t.Errorf("reopened fleet fired %d, want 4", len(*got))
	}
}

// TestShardKillMidModeSwitch: the disk image mid-protocol is wholly
// pre-switch (the decision file is written only after commit-all), so a
// process killed between prepare and commit recovers to the old modes,
// and one that survives commit recovers to the new — never in between.
func TestShardKillMidModeSwitch(t *testing.T) {
	dir := t.TempDir()
	e, _, _ := newAdaptiveFleet(t, 2, dir)
	seedProducts(t, e)
	sigs := e.GroupSigs()

	// State A on disk.
	if _, err := e.SetGroupModes(map[string]core.Mode{sigs[0]: core.ModeGroupedAgg}); err != nil {
		t.Fatal(err)
	}
	pre, err := os.ReadFile(filepath.Join(dir, "modes.ckpt"))
	if err != nil {
		t.Fatal(err)
	}

	// Kill seam: capture the decision file between prepare-all and
	// commit-all of the A -> B switch.
	var crash []byte
	e.SetReplanBarrier(func() {
		b, err := os.ReadFile(filepath.Join(dir, "modes.ckpt"))
		if err != nil {
			t.Error(err)
		}
		crash = b
	})
	if _, err := e.SetGroupModes(map[string]core.Mode{sigs[0]: core.ModeMaterialized}); err != nil {
		t.Fatal(err)
	}
	if crash == nil {
		t.Fatal("replan barrier never fired")
	}
	if string(crash) != string(pre) {
		t.Fatal("mid-protocol disk image diverged from the pre-switch state")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from the crash image: wholly pre-switch (state A).
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, "modes.ckpt"), crash, 0o644); err != nil {
		t.Fatal(err)
	}
	ec, _, _ := newAdaptiveFleet(t, 2, crashDir)
	if m, ok := ec.GroupMode(sigs[0]); !ok || m != core.ModeGroupedAgg {
		t.Fatalf("crash image recovered to %v,%v; want pre-switch GROUPED-AGG", m, ok)
	}

	// Recovery from the live directory: wholly post-switch (state B).
	e2, _, _ := newAdaptiveFleet(t, 2, dir)
	if m, ok := e2.GroupMode(sigs[0]); !ok || m != core.ModeMaterialized {
		t.Fatalf("committed image recovered to %v,%v; want post-switch MATERIALIZED", m, ok)
	}
}

// fleetPolicy drives every warm group to one mode (test double).
type fleetPolicy struct{ want core.Mode }

func (p fleetPolicy) Decide(stats []core.GroupStat) map[string]core.Mode {
	out := map[string]core.Mode{}
	for _, gs := range stats {
		if gs.Mode != p.want {
			out[gs.Sig] = p.want
		}
	}
	return out
}

// TestShardReplanAndGrow: a policy-driven replan applies fleet-wide, and
// shards added by Grow afterwards come up in the agreed modes.
func TestShardReplanAndGrow(t *testing.T) {
	e, got, mu := newAdaptiveFleet(t, 2, "")
	if err := e.SetModePolicy(fleetPolicy{want: core.ModeMaterialized}); err != nil {
		t.Fatal(err)
	}
	seedProducts(t, e)
	changes, err := e.Replan()
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("replan changes = %v, want 1", changes)
	}
	sigs := e.GroupSigs()
	if err := e.Grow(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if m, ok := e.Shard(i).GroupMode(sigs[0]); !ok || m != core.ModeMaterialized {
			t.Fatalf("post-grow shard %d mode = %v,%v; want MATERIALIZED", i, m, ok)
		}
	}
	touchAllProducts(t, e, "ACME")
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 4 {
		t.Errorf("post-grow fleet fired %d, want 4", len(*got))
	}
}
