package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"quark/internal/core"
	"quark/internal/outbox"
)

// Fleet-wide adaptive translation modes: every shard compiles the same
// trigger groups (registrations replicate), so a group's mode is a
// fleet-level agreement — a group half-flipped across shards would break
// the deterministic (shard, storage-key) activation order the golden
// conformance runs pin. SetGroupModes therefore flips a group on all
// shards in one two-phase step: phase 1 prepares the switch on every
// shard in shard order (each shard compiles the new plans under its own
// metadata + all-table locks and holds them), phase 2 commits them all.
// Any prepare failure aborts every prepared shard, leaving the fleet
// byte-identical. The committed decision set persists (one atomic frame
// file next to the routing directory) only after commit-all, so a crash
// anywhere in the protocol leaves the on-disk image wholly pre- or
// wholly post-switch — never between.

// modesCkptName is the persisted planner-decision file inside Config.Dir:
// one CRC frame (outbox format) holding a JSON map of group signature ->
// mode. Replaced atomically via tmp + rename after every committed fleet
// mode switch.
const modesCkptName = "modes.ckpt"

// SetModePolicy switches the fleet into adaptive per-group modes and
// installs the policy Replan consults (nil: adaptive with manual
// SetGroupModes control). Every shard is marked adaptive — signatures
// become structural in all modes — so this must run before triggers are
// registered, like its core counterpart. The policy itself lives only on
// the coordinator: shards never replan independently, because the fleet
// must agree on every group's mode.
func (e *Engine) SetModePolicy(p core.ModePolicy) error {
	engines, _ := e.fleet()
	for _, ce := range engines {
		if err := ce.SetModePolicy(nil); err != nil {
			return err
		}
	}
	e.adMu.Lock()
	e.adaptive = true
	e.policy = p
	e.adMu.Unlock()
	return nil
}

// Adaptive reports whether per-group modes are enabled.
func (e *Engine) Adaptive() bool {
	e.adMu.Lock()
	defer e.adMu.Unlock()
	return e.adaptive
}

// SetReplanBarrier installs a hook that runs between a fleet mode
// switch's prepare-all and commit-all phases (the kill-mid-migration
// tests' crash seam, mirroring SetRebalanceBarrier).
func (e *Engine) SetReplanBarrier(fn func()) { e.replanBarrier = fn }

// GroupSigs returns the fleet's trigger-group signatures (identical on
// every shard; read from shard 0).
func (e *Engine) GroupSigs() []string {
	engines, _ := e.fleet()
	if len(engines) == 0 {
		return nil
	}
	return engines[0].GroupSigs()
}

// GroupMode returns a group's fleet-agreed mode (from shard 0; the
// two-phase switch keeps all shards identical).
func (e *Engine) GroupMode(sig string) (core.Mode, bool) {
	engines, _ := e.fleet()
	if len(engines) == 0 {
		return 0, false
	}
	return engines[0].GroupMode(sig)
}

// GroupStats aggregates per-group statistics across the fleet: counters
// and footprints sum (each shard holds a partition of the view), while
// mode and membership come from shard 0 (identical everywhere). The
// result is the planner's cost-model input for fleet-wide replans.
func (e *Engine) GroupStats() []core.GroupStat {
	engines, _ := e.fleet()
	var agg []core.GroupStat
	idx := map[string]int{}
	for _, ce := range engines {
		for _, gs := range ce.GroupStats() {
			i, ok := idx[gs.Sig]
			if !ok {
				idx[gs.Sig] = len(agg)
				agg = append(agg, gs)
				continue
			}
			a := &agg[i]
			a.Fires += gs.Fires
			a.EvalNS += gs.EvalNS
			a.DeltaRows += gs.DeltaRows
			a.Activations += gs.Activations
			a.Builds += gs.Builds
			a.SnapshotRows += gs.SnapshotRows
			a.SnapshotBytes += gs.SnapshotBytes
			a.EstSnapshotRows += gs.EstSnapshotRows
			a.EstSnapshotBytes += gs.EstSnapshotBytes
		}
	}
	sort.Slice(agg, func(i, j int) bool { return agg[i].Sig < agg[j].Sig })
	return agg
}

// SetGroupModes flips the listed groups to their target modes on every
// shard in one two-phase step (see the package comment above). Returns
// the transitions actually performed (empty when every target was
// already current).
func (e *Engine) SetGroupModes(target map[string]core.Mode) ([]core.ModeChange, error) {
	engines, _ := e.fleet()
	var prepared []*core.ModeSwitch
	abort := func() {
		for _, sw := range prepared {
			_ = sw.Abort()
		}
	}
	// Phase 1: prepare every shard in shard order. Each prepared switch
	// holds its shard's metadata and table locks, so writers drain out
	// shard by shard exactly as beginAll's distributed transactions do —
	// the same (shard, table) order keeps the protocol deadlock-free
	// against them.
	for si, ce := range engines {
		sw, err := ce.PrepareGroupModes(target)
		if err != nil {
			abort()
			if m := e.om.Load(); m != nil {
				m.reg.Emit("mode.switch.abort", map[string]string{
					"shard": strconv.Itoa(si), "err": err.Error(),
				})
			}
			return nil, err
		}
		prepared = append(prepared, sw)
	}
	if e.replanBarrier != nil {
		e.replanBarrier()
	}
	// Phase 2: commit all. Commit on a prepared switch installs
	// pre-compiled plans and commits an empty silent transaction; the
	// failure modes left are invariant violations, not data races, so a
	// commit error is surfaced but the remaining shards still commit
	// (matching the distributed transaction's phase-2 contract).
	var changes []core.ModeChange
	var firstErr error
	for i, sw := range prepared {
		if i == 0 {
			changes = sw.Changes()
		}
		if err := sw.Commit(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	e.adMu.Lock()
	if e.groupModes == nil {
		e.groupModes = map[string]core.Mode{}
	}
	for sig, m := range target {
		e.groupModes[sig] = m
	}
	err := e.persistModesLocked()
	e.adMu.Unlock()
	if err != nil {
		return changes, err
	}
	if m := e.om.Load(); m != nil && len(changes) > 0 {
		m.reg.Counter("quark_planner_mode_switches_total").Add(int64(len(changes)))
		for _, c := range changes {
			// Per-shard core engines emit their own mode.switch events on
			// this shared registry; the fleet-level one is scope-tagged.
			m.reg.Emit("mode.switch", map[string]string{
				"sig": c.Sig, "from": c.FromName, "to": c.ToName, "scope": "fleet",
			})
		}
	}
	return changes, nil
}

// SetGroupMode flips one group fleet-wide.
func (e *Engine) SetGroupMode(sig string, m core.Mode) error {
	_, err := e.SetGroupModes(map[string]core.Mode{sig: m})
	return err
}

// Replan consults the installed policy with fresh fleet-wide GroupStats
// and applies whatever mode changes it decides. The decision runs once,
// on aggregated numbers, and the resulting target applies to all shards
// in one two-phase switch — shards never diverge.
func (e *Engine) Replan() ([]core.ModeChange, error) {
	e.adMu.Lock()
	p := e.policy
	e.adMu.Unlock()
	if p == nil {
		return nil, nil
	}
	target := p.Decide(e.GroupStats())
	if len(target) == 0 {
		return nil, nil
	}
	changes, err := e.SetGroupModes(target)
	if err != nil {
		return nil, err
	}
	if m := e.om.Load(); m != nil {
		m.reg.Counter("quark_planner_replans_total").Inc()
		m.reg.Emit("replan", map[string]string{"switches": strconv.Itoa(len(changes))})
	}
	return changes, nil
}

// persistModesLocked writes the committed decision set as one atomic CRC
// frame (tmp + rename). Caller holds adMu. A no-op without a persistence
// directory. Written only after commit-all, so the disk image is always
// wholly pre- or wholly post-switch.
func (e *Engine) persistModesLocked() error {
	if e.store == nil {
		return nil
	}
	enc := make(map[string]int, len(e.groupModes))
	for sig, m := range e.groupModes {
		enc[sig] = int(m)
	}
	buf, err := json.Marshal(enc)
	if err != nil {
		return err
	}
	path := filepath.Join(e.store.Dir(), modesCkptName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, outbox.Frame(buf), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadModes adopts a persisted decision set at New: the fleet is marked
// adaptive and every decision seeds every shard, so groups created by
// the caller's re-registration come up in their pre-restart modes. A
// fleet that never switched modes has no file and loads nothing —
// callers re-enable SetModePolicy on restart as they re-register
// everything else.
func (e *Engine) loadModes(dir string) error {
	b, err := os.ReadFile(filepath.Join(dir, modesCkptName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var enc map[string]int
	decoded := false
	if _, err := outbox.ScanFrames(b, func(payload []byte) error {
		if decoded {
			return nil
		}
		decoded = true
		return json.Unmarshal(payload, &enc)
	}); err != nil {
		return err
	}
	if !decoded && len(b) > 0 {
		return fmt.Errorf("shard: persisted mode file corrupt")
	}
	modes := make(map[string]core.Mode, len(enc))
	for sig, m := range enc { //quark:sorted decode+validate: builds a map and rejects bad entries; order-independent outcome
		if m < 0 || core.Mode(m) > core.ModeMaterialized {
			return fmt.Errorf("shard: persisted mode file names unknown mode %d for group %q", m, sig)
		}
		modes[sig] = core.Mode(m)
	}
	engines, _ := e.fleet()
	for _, ce := range engines {
		if err := ce.SetModePolicy(nil); err != nil {
			return err
		}
		for sig, m := range modes { //quark:sorted seeding per-group modes; groups are independent and seeds commute
			if err := ce.SeedGroupMode(sig, m); err != nil {
				return err
			}
		}
	}
	e.adMu.Lock()
	e.adaptive = true
	e.groupModes = modes
	e.adMu.Unlock()
	return nil
}
