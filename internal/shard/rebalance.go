package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/trigger"
	"quark/internal/xdm"
)

// Elastic rebalancing: routing GROUPS — a root row plus its co-located
// FK subtree — move between live shards while writers keep committing.
// A move is a silent distributed transaction: the group's rows are
// deleted on the donor and inserted on the recipient under the same
// two-phase protocol ordinary cross-shard statements use, but the firing
// wave is suppressed (reldb.Tx.SetSilent), so data movement produces no
// observable trigger activity — the invocation stream with a rebalance
// interleaved is byte-identical to the stream without it, which is
// exactly what the rebalance fuzzer proves differentially. The directory
// flip (row entries plus the group's sticky assignment) folds atomically
// at commit and persists as one delta frame; an abort leaves fleet and
// directory byte-identical to their pre-transaction state.

// Group is one routing group as reported by Groups: a root table, the
// tuple key of its routing-column values, and its current placement.
type Group struct {
	Table string
	Key   string
	Shard int
}

// GroupMove names one group's destination in a rebalance Plan.
type GroupMove struct {
	// Table is the ROOT table whose group moves.
	Table string
	// Key is the routing tuple key (GroupKey of the routing-column
	// values) naming the group.
	Key string
	// To is the destination shard.
	To int
}

// Plan is a set of group moves applied as ONE distributed transaction:
// either every move commits (and the directory flips atomically) or none
// does. Duplicate entries for the same group are collapsed, last wins.
type Plan struct {
	Moves []GroupMove
}

// GroupKey renders routing-column values as a group key for GroupMove.
func GroupKey(vals ...xdm.Value) string { return xdm.TupleKey(vals) }

// Groups lists every routing group with a sticky assignment, sorted by
// (table, key). Every group that has ever held a row is assigned (the
// statement and transaction paths pin placements on insert), so this is
// the fleet's group inventory; assignments outlive their last row until
// a Shrink or rebalance retires them.
func (e *Engine) Groups() []Group {
	as := e.router.AssignSnapshot()
	out := make([]Group, 0, len(as))
	for k, s := range as {
		i := strings.IndexByte(k, 0)
		if i < 0 {
			continue
		}
		out = append(out, Group{Table: k[:i], Key: k[i+1:], Shard: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// GroupOwner reports which shard a root table's routing group currently
// places on (sticky assignment, or the hash seed for a new group).
func (e *Engine) GroupOwner(table string, vals ...xdm.Value) int {
	return e.router.placeGroup(dirKey(table, xdm.TupleKey(vals)), nil)
}

// SetRebalanceBarrier installs a hook that runs between a rebalance
// transaction's prepare-all and commit-all phases. Crash-recovery tests
// use it to capture the persisted state mid-protocol; production code
// leaves it unset.
func (e *Engine) SetRebalanceBarrier(fn func()) { e.rebalanceBarrier = fn }

// Rebalance applies the plan as one silent distributed transaction and
// reports how many groups actually changed placement. Moves that name a
// group already on its destination only pin the assignment. An error
// rolls every shard back and leaves fleet and directory untouched.
func (e *Engine) Rebalance(p Plan) (int, error) {
	if len(p.Moves) == 0 {
		return 0, nil
	}
	n := e.NumShards()
	// Validate and dedupe (last entry for a group wins), and collect the
	// lock footprint: each moved table plus its transitive FK children,
	// which the subtree migration writes on both shards.
	moves := make([]GroupMove, 0, len(p.Moves))
	seen := map[string]int{}
	tables := map[string]bool{}
	for _, m := range p.Moves {
		rt, err := e.router.route(m.Table)
		if err != nil {
			return 0, err
		}
		if rt.parent != "" {
			return 0, fmt.Errorf("shard: rebalance moves routing groups of root tables; %q routes via parent %q", m.Table, rt.parent)
		}
		if m.To < 0 || m.To >= n {
			return 0, fmt.Errorf("shard: rebalance targets shard %d of %d", m.To, n)
		}
		if i, dup := seen[dirKey(m.Table, m.Key)]; dup {
			moves[i] = m
			continue
		}
		seen[dirKey(m.Table, m.Key)] = len(moves)
		moves = append(moves, m)
		for _, t := range e.router.writeFootprint(m.Table) {
			tables[t] = true
		}
	}
	footprint := make([]string, 0, len(tables))
	for t := range tables {
		footprint = append(footprint, t)
	}
	sort.Strings(footprint)

	m := e.om.Load()
	if m != nil {
		m.reg.Emit("rebalance.start", map[string]string{
			"moves": strconv.Itoa(len(moves)),
		})
	}
	tx, err := e.beginAll(footprint)
	if err != nil {
		return 0, err
	}
	tx.span.SetAttr("kind", "rebalance")
	tx.barrier = e.rebalanceBarrier
	for _, h := range tx.hs {
		if err := h.SetSilent(); err != nil {
			tx.rollback()
			return 0, err
		}
	}
	moved := 0
	for _, m := range moves {
		rt, _ := e.router.route(m.Table)
		gk := dirKey(m.Table, m.Key)
		// Overlay-aware source: an earlier move in this plan may already
		// have staged the group elsewhere.
		from := e.router.placeGroup(gk, tx.ov)
		if from == m.To {
			tx.ov.assign(gk, m.To) // pin an unassigned-but-correct group
			continue
		}
		if err := tx.moveGroup(rt, gk, from, m.To); err != nil {
			tx.rollback()
			if om := e.om.Load(); om != nil {
				om.reg.Emit("rebalance.abort", map[string]string{"err": err.Error()})
			}
			return 0, err
		}
		moved++
	}
	if err := tx.commit(); err != nil {
		return 0, err
	}
	if m != nil {
		m.rebalMoves.Add(int64(moved))
		m.reg.Emit("rebalance.finish", map[string]string{
			"moved": strconv.Itoa(moved),
		})
	}
	return moved, nil
}

// moveGroup migrates every root row of the group (and, through migrate,
// its co-located subtree) from shard `from` to shard `to` inside the open
// transaction, then points the group's sticky assignment at `to`. A group
// with no rows (a lingering assignment) just moves its assignment.
func (tx *Tx) moveGroup(rt *route, gk string, from, to int) error {
	var roots []reldb.Row
	if err := tx.dbs[from].Scan(rt.def.Name, func(r reldb.Row) bool {
		if groupKeyOf(rt, r) == gk {
			roots = append(roots, r.Copy())
		}
		return true
	}); err != nil {
		return err
	}
	for _, row := range roots {
		if err := tx.migrate(from, to, rt, row, row); err != nil {
			return err
		}
	}
	tx.ov.assign(gk, to)
	return nil
}

// Grow extends the fleet to n shards: fresh engines are built with every
// retained registration replayed (actions, views, triggers), wired into
// the shared dispatcher and outbox when enabled, and appended to the
// topology; then the placement modulus flips and existing groups stream
// to the n-shard hash layout in small chunks — each chunk one rebalance
// transaction, so writers keep committing between chunks and per-trigger
// FIFO and global outbox order are preserved throughout. Finishes with a
// directory checkpoint.
func (e *Engine) Grow(n int) error {
	cur := e.NumShards()
	if n <= cur {
		return fmt.Errorf("shard: Grow(%d) from %d shards", n, cur)
	}
	e.regMu.Lock()
	actions := append([]namedAction(nil), e.actions...)
	views := append([]namedView(nil), e.views...)
	specs := append([]*trigger.Spec(nil), e.trigSpecs...)
	e.regMu.Unlock()
	e.adMu.Lock()
	adaptive := e.adaptive
	modes := make(map[string]core.Mode, len(e.groupModes))
	for sig, m := range e.groupModes {
		modes[sig] = m
	}
	e.adMu.Unlock()
	var newEngines []*core.Engine
	var newDBs []*reldb.DB
	for i := cur; i < n; i++ {
		db, err := reldb.Open(e.schema)
		if err != nil {
			return err
		}
		ce := core.NewEngine(db, e.mode)
		if adaptive {
			// Adaptive marking and mode seeds must precede the trigger
			// replay: grouping signatures depend on the adaptive flag, and
			// seeded groups must come up in the fleet's agreed mode.
			if err := ce.SetModePolicy(nil); err != nil {
				return err
			}
			for sig, m := range modes { //quark:sorted seeding per-group modes; groups are independent and seeds commute
				if err := ce.SeedGroupMode(sig, m); err != nil {
					return err
				}
			}
		}
		for _, a := range actions {
			ce.RegisterAction(a.name, a.fn)
		}
		for _, v := range views {
			if _, err := ce.CreateView(v.name, v.src); err != nil {
				return err
			}
		}
		for _, sp := range specs {
			if err := ce.CreateTriggerSpec(sp); err != nil {
				return err
			}
		}
		if err := ce.Flush(); err != nil {
			return err
		}
		if e.d != nil {
			if err := ce.AttachSharedDispatcher(e.d); err != nil {
				return err
			}
		}
		if e.ob != nil {
			if err := ce.EnableOutboxShared(e.ob, e.obSink, e.obStripes); err != nil {
				return err
			}
		}
		if m := e.om.Load(); m != nil {
			ce.EnableObsShared(m.reg)
		}
		newEngines = append(newEngines, ce)
		newDBs = append(newDBs, db)
	}
	e.topo.Lock()
	e.engines = append(append([]*core.Engine(nil), e.engines...), newEngines...)
	e.dbs = append(append([]*reldb.DB(nil), e.dbs...), newDBs...)
	e.topo.Unlock()
	e.router.setShards(n)
	if m := e.om.Load(); m != nil {
		m.reg.Emit("shard.grow", map[string]string{
			"from": strconv.Itoa(cur), "to": strconv.Itoa(n),
		})
	}
	if err := e.streamToLayout(n); err != nil {
		return err
	}
	return e.CheckpointDirectory()
}

// Shrink contracts the fleet to n shards: the placement modulus flips
// FIRST (new groups immediately avoid the retiring shards), then every
// group placed on a retiring shard streams to its hash slot under the
// new modulus, chunk by chunk with writers interleaving. Once the
// retiring stores are verified empty they close and drop from the
// topology, and the directory checkpoints.
func (e *Engine) Shrink(n int) error {
	cur := e.NumShards()
	if n >= cur || n < 1 {
		return fmt.Errorf("shard: Shrink(%d) from %d shards", n, cur)
	}
	e.router.setShards(n)
	for {
		var moves []GroupMove
		for _, g := range e.Groups() {
			if g.Shard >= n {
				moves = append(moves, GroupMove{Table: g.Table, Key: g.Key, To: hashMod(g.Key, n)})
				if len(moves) == rebalanceChunk {
					break
				}
			}
		}
		if len(moves) == 0 {
			break
		}
		if _, err := e.Rebalance(Plan{Moves: moves}); err != nil {
			return err
		}
	}
	engines, dbs := e.fleet()
	for k, s := range e.router.DirSnapshot() { //quark:sorted validation only: any order rejects the same bad entry set
		if s >= n {
			return fmt.Errorf("shard: Shrink(%d) left directory entry %q on retiring shard %d", n, k, s)
		}
	}
	for si := n; si < cur; si++ {
		for _, t := range e.schema.Tables() {
			empty := true
			if err := dbs[si].Scan(t.Name, func(reldb.Row) bool {
				empty = false
				return false
			}); err != nil {
				return err
			}
			if !empty {
				return fmt.Errorf("shard: Shrink(%d) left rows of %s on retiring shard %d", n, t.Name, si)
			}
		}
	}
	var first error
	for si := n; si < cur; si++ {
		if err := engines[si].Close(); err != nil && first == nil {
			first = err
		}
	}
	e.topo.Lock()
	e.engines = append([]*core.Engine(nil), e.engines[:n]...)
	e.dbs = append([]*reldb.DB(nil), e.dbs[:n]...)
	e.topo.Unlock()
	if m := e.om.Load(); m != nil {
		m.reg.Emit("shard.shrink", map[string]string{
			"from": strconv.Itoa(cur), "to": strconv.Itoa(n),
		})
	}
	if err := e.CheckpointDirectory(); err != nil && first == nil {
		first = err
	}
	return first
}

// rebalanceChunk bounds how many groups one streaming transaction moves,
// so Grow/Shrink never hold the fleet's table locks for the whole
// migration — writers commit between chunks.
const rebalanceChunk = 8

// streamToLayout moves every group not on its n-shard hash slot there,
// one chunk-sized rebalance transaction at a time.
func (e *Engine) streamToLayout(n int) error {
	for {
		var moves []GroupMove
		for _, g := range e.Groups() {
			if target := hashMod(g.Key, n); g.Shard != target {
				moves = append(moves, GroupMove{Table: g.Table, Key: g.Key, To: target})
				if len(moves) == rebalanceChunk {
					break
				}
			}
		}
		if len(moves) == 0 {
			return nil
		}
		if _, err := e.Rebalance(Plan{Moves: moves}); err != nil {
			return err
		}
	}
}

// CheckpointDirectory writes the router's full state as a new checkpoint
// and truncates the delta log; a no-op without a persistence directory.
func (e *Engine) CheckpointDirectory() error {
	if e.store == nil {
		return nil
	}
	return e.store.Checkpoint(e.router.state())
}

// RebuildDirectory reconstructs directory and group assignments from the
// shard stores (the recovery path for a corrupt checkpoint: every row's
// entry points at the shard actually holding it, every root row pins its
// group where it lives) and checkpoints the rebuilt state.
func (e *Engine) RebuildDirectory() error {
	_, dbs := e.fleet()
	dir := map[string]int{}
	assign := map[string]int{}
	for si, db := range dbs {
		for _, t := range e.schema.Tables() {
			rt, err := e.router.route(t.Name)
			if err != nil {
				return err
			}
			if err := db.Scan(t.Name, func(r reldb.Row) bool {
				dir[dirKey(t.Name, pkKeyOf(rt, r))] = si
				if rt.parent == "" {
					assign[groupKeyOf(rt, r)] = si
				}
				return true
			}); err != nil {
				return err
			}
		}
	}
	e.router.adopt(dir, assign)
	return e.CheckpointDirectory()
}

// VerifyDirectory proves the routing metadata consistent with the data:
// every row has a directory entry pointing at the shard holding it and
// every entry has its row (exact both directions); every root row's
// group places on the shard its rows occupy; every assignment targets a
// live shard; and every child row whose parent exists co-locates with
// it. The rebalance fuzzer runs this after every operation.
func (e *Engine) VerifyDirectory() error {
	_, dbs := e.fleet()
	n := len(dbs)
	remaining := e.router.DirSnapshot()
	for gk, s := range e.router.AssignSnapshot() { //quark:sorted validation only: any order rejects the same bad entry set
		if s < 0 || s >= n {
			return fmt.Errorf("shard: assignment %q targets shard %d of %d", gk, s, n)
		}
	}
	for si, db := range dbs {
		for _, t := range e.schema.Tables() {
			rt, err := e.router.route(t.Name)
			if err != nil {
				return err
			}
			var verr error
			if err := db.Scan(t.Name, func(r reldb.Row) bool {
				k := dirKey(t.Name, pkKeyOf(rt, r))
				owner, ok := remaining[k]
				if !ok {
					// Either never recorded or already consumed by an
					// earlier shard holding the same key (a duplicate).
					verr = fmt.Errorf("shard: row %q on shard %d has no (unconsumed) directory entry", k, si)
					return false
				}
				if owner != si {
					verr = fmt.Errorf("shard: row %q lives on shard %d but the directory says %d", k, si, owner)
					return false
				}
				delete(remaining, k)
				if rt.parent == "" {
					if p := e.router.placeGroup(groupKeyOf(rt, r), nil); p != si {
						verr = fmt.Errorf("shard: root row %q on shard %d but its group places on %d", k, si, p)
						return false
					}
				} else {
					ks := make([]xdm.Value, len(rt.fkIdx))
					for i, c := range rt.fkIdx {
						ks[i] = r[c]
					}
					if ps, ok := e.router.lookup(rt.parent, xdm.TupleKey(ks), nil); ok && ps != si {
						verr = fmt.Errorf("shard: child row %q on shard %d but its parent lives on %d", k, si, ps)
						return false
					}
				}
				return true
			}); err != nil {
				return err
			}
			if verr != nil {
				return verr
			}
		}
	}
	if len(remaining) > 0 {
		for k, s := range remaining { //quark:sorted any leftover entry is fatal; which one surfaces first is diagnostic detail
			return fmt.Errorf("shard: directory entry %q -> shard %d has no row", k, s)
		}
	}
	return nil
}
