package shard

import (
	"fmt"
	"time"

	"quark/internal/core"
	"quark/internal/obs"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

// Tx is one distributed transaction: an open core.BatchHandle per shard
// plus a directory overlay. Mutations route exactly like their statement
// counterparts — a row whose routing key leaves its shard migrates inside
// the transaction — and commit fires each shard's merged deltas in shard
// order (each shard's own firing is storage-key ordered, giving the
// deterministic (shard, storage-key) activation order the conformance
// suite pins down). A Tx is not safe for concurrent use.
type Tx struct {
	e   *Engine
	dbs []*reldb.DB // fleet snapshot taken at begin (see Engine.fleet)
	hs  []*core.BatchHandle
	ov  *dirOps
	// span is the distributed transaction's fleet-root trace span,
	// non-nil only with observability attached (each per-shard handle
	// traces into a "shard" child; see Engine.beginAll).
	span *obs.Span
	// barrier, when set, runs between prepare-all and commit-all (the
	// rebalance crash tests' seam; see Engine.SetRebalanceBarrier).
	barrier func()
}

// Insert routes each row to its owner (overlay-aware, so a parent
// inserted earlier in this transaction resolves) and inserts it there.
func (tx *Tx) Insert(table string, rows ...reldb.Row) error {
	rt, err := tx.e.router.route(table)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(rt.def.Columns) {
			return tx.hs[0].Tx().Insert(table, row) // canonical arity error
		}
		k := pkKeyOf(rt, row)
		o := tx.e.router.ownerForRowRt(rt, row, tx.ov)
		if cur, ok := tx.e.router.lookup(table, k, tx.ov); ok && cur != o {
			// Fleet-wide PK uniqueness: the owning reldb only sees its own
			// rows, so a cross-shard duplicate is the router's to reject.
			return fmt.Errorf("shard: duplicate primary key in table %s (row exists on shard %d)", table, cur)
		}
		if err := tx.hs[o].Tx().Insert(table, row); err != nil {
			return err
		}
		tx.ov.record(dirKey(table, k), o)
		if rt.parent == "" {
			tx.ov.assign(groupKeyOf(rt, row), o)
		}
	}
	return nil
}

// UpdateByPK updates one row wherever it lives, migrating it (and its
// co-located subtree) when the post-image belongs to another shard. set
// must be pure: it is probed against a copy to compute the post-image.
func (tx *Tx) UpdateByPK(table string, key []xdm.Value, set func(reldb.Row) reldb.Row) (bool, error) {
	rt, err := tx.e.router.route(table)
	if err != nil {
		return false, err
	}
	pk := xdm.TupleKey(key)
	owner, ok := tx.e.router.lookup(table, pk, tx.ov)
	if !ok {
		return false, nil
	}
	cur, found, err := tx.dbs[owner].GetByPK(table, key...)
	if err != nil || !found {
		return false, err
	}
	return tx.updateRow(rt, owner, cur.Copy(), set)
}

// updateRow applies one row's update on shard owner: in place when the
// post-image stays, as a cross-shard migration otherwise. cur must be a
// private copy of the current row.
func (tx *Tx) updateRow(rt *route, owner int, cur reldb.Row, set func(reldb.Row) reldb.Row) (bool, error) {
	next := set(cur.Copy())
	if len(next) != len(rt.def.Columns) {
		return tx.hs[owner].Tx().UpdateByPK(rt.def.Name, pkVals(rt, cur), set)
	}
	newOwner := tx.e.router.ownerForRowRt(rt, next, tx.ov)
	oldKey := pkKeyOf(rt, cur)
	if nk := pkKeyOf(rt, next); nk != oldKey {
		// Fleet-wide PK uniqueness on PK moves: the destination shard's
		// reldb only detects collisions with its own rows.
		if cur, ok := tx.e.router.lookup(rt.def.Name, nk, tx.ov); ok && cur != newOwner {
			return false, fmt.Errorf("shard: duplicate primary key in table %s (row exists on shard %d)", rt.def.Name, cur)
		}
	}
	if newOwner == owner {
		changed, err := tx.hs[owner].Tx().UpdateByPK(rt.def.Name, pkVals(rt, cur), set)
		if err == nil && changed {
			if nk := pkKeyOf(rt, next); nk != oldKey {
				tx.ov.remove(dirKey(rt.def.Name, oldKey))
				tx.ov.record(dirKey(rt.def.Name, nk), owner)
			}
			if rt.parent == "" {
				tx.ov.assign(groupKeyOf(rt, next), owner)
			}
		}
		return changed, err
	}
	if err := tx.migrate(owner, newOwner, rt, cur, next); err != nil {
		return false, err
	}
	return true, nil
}

// Update applies a predicate update across every shard. All shards are
// scanned for matches BEFORE any row is touched, so a row migrating into
// a later shard is never double-processed.
func (tx *Tx) Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error) {
	rt, err := tx.e.router.route(table)
	if err != nil {
		return 0, err
	}
	type match struct {
		shard int
		row   reldb.Row
	}
	var matches []match
	for si := range tx.hs {
		if err := tx.dbs[si].Scan(table, func(r reldb.Row) bool {
			if pred(r) {
				matches = append(matches, match{si, r.Copy()})
			}
			return true
		}); err != nil {
			return 0, err
		}
	}
	n := 0
	for _, m := range matches {
		if _, err := tx.updateRow(rt, m.shard, m.row, set); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Delete applies a predicate delete on every shard, dropping the deleted
// rows' directory entries.
func (tx *Tx) Delete(table string, pred func(reldb.Row) bool) (int, error) {
	rt, err := tx.e.router.route(table)
	if err != nil {
		return 0, err
	}
	n := 0
	for si := range tx.hs {
		var keys []string
		if err := tx.dbs[si].Scan(table, func(r reldb.Row) bool {
			if pred(r) {
				keys = append(keys, pkKeyOf(rt, r))
			}
			return true
		}); err != nil {
			return 0, err
		}
		if len(keys) == 0 {
			continue
		}
		removed, err := tx.hs[si].Tx().Delete(table, pred)
		if err != nil {
			return n, err
		}
		n += removed
		for _, k := range keys {
			tx.ov.remove(dirKey(table, k))
		}
	}
	return n, nil
}

// DeleteByPK deletes one row from its owning shard.
func (tx *Tx) DeleteByPK(table string, key ...xdm.Value) (bool, error) {
	if _, err := tx.e.router.route(table); err != nil {
		return false, err
	}
	pk := xdm.TupleKey(key)
	owner, ok := tx.e.router.lookup(table, pk, tx.ov)
	if !ok {
		return false, nil
	}
	removed, err := tx.hs[owner].Tx().DeleteByPK(table, key...)
	if err == nil && removed {
		tx.ov.remove(dirKey(table, pk))
	}
	return removed, err
}

// migrate moves one row from shard `from` to shard `to` inside the open
// transaction: the row's pre-image (and, when its referenced key columns
// are unchanged, the co-located subtree hanging off it) is deleted on the
// old shard child-first and the post-image (plus subtree) inserted on the
// new shard parent-first. Each side's net deltas then equal the global
// statement's change restricted to that shard, which is what keeps
// view-level events identical to single-engine execution.
func (tx *Tx) migrate(from, to int, rt *route, oldRow, newRow reldb.Row) error {
	type node struct {
		rt  *route
		row reldb.Row // pre-image on the old shard
		ins reldb.Row // row to insert on the new shard
	}
	nodes := []node{{rt: rt, row: oldRow, ins: newRow}}
	visited := map[string]bool{dirKey(rt.def.Name, pkKeyOf(rt, oldRow)): true}

	// The subtree follows only if the migrating row still owns it: if the
	// update changed the columns its children reference, the children now
	// dangle (exactly as they would on a single engine) and stay put.
	refsUnchanged := true
	for _, cr := range rt.children {
		for _, ri := range cr.refIdx {
			if !xdm.Equal(oldRow[ri], newRow[ri]) {
				refsUnchanged = false
			}
		}
	}
	if refsUnchanged {
		// Breadth-first over the FK-children graph, parent before child.
		for i := 0; i < len(nodes); i++ {
			cur := nodes[i]
			for _, cr := range cur.rt.children {
				crt, err := tx.e.router.route(cr.table)
				if err != nil {
					return err
				}
				refVals := make([]xdm.Value, len(cr.refIdx))
				for j, ri := range cr.refIdx {
					refVals[j] = cur.row[ri]
				}
				var kids []reldb.Row
				if err := tx.dbs[from].Scan(cr.table, func(r reldb.Row) bool {
					for j, fi := range cr.fkIdx {
						if !xdm.Equal(r[fi], refVals[j]) {
							return true
						}
					}
					kids = append(kids, r.Copy())
					return true
				}); err != nil {
					return err
				}
				for _, kid := range kids {
					k := dirKey(cr.table, pkKeyOf(crt, kid))
					if visited[k] {
						return fmt.Errorf("shard: cycle in foreign-key children while migrating %s", rt.def.Name)
					}
					visited[k] = true
					nodes = append(nodes, node{rt: crt, row: kid, ins: kid})
				}
			}
		}
	}

	// Delete child-first on the old shard.
	for i := len(nodes) - 1; i >= 0; i-- {
		nd := nodes[i]
		if _, err := tx.hs[from].Tx().DeleteByPK(nd.rt.def.Name, pkVals(nd.rt, nd.row)...); err != nil {
			return err
		}
	}
	// Insert parent-first on the new shard, re-pointing the directory.
	for _, nd := range nodes {
		if err := tx.hs[to].Tx().Insert(nd.rt.def.Name, nd.ins); err != nil {
			return err
		}
		oldK := dirKey(nd.rt.def.Name, pkKeyOf(nd.rt, nd.row))
		newK := dirKey(nd.rt.def.Name, pkKeyOf(nd.rt, nd.ins))
		// Record BOTH sides, even when the key is unchanged: the fold
		// applies deletes before sets, so the set entry wins for a same-PK
		// migration (see dirOps.record).
		tx.ov.remove(oldK)
		tx.ov.record(newK, to)
		if nd.rt.parent == "" {
			tx.ov.assign(groupKeyOf(nd.rt, nd.ins), to)
		}
	}
	return nil
}

// commit drives the two-phase protocol. Phase 1 prepares every shard in
// shard order: FK/PK checks already passed at mutation time, each shard
// computes its merged net deltas, evaluates its trigger conditions, and
// stages the resulting invocation set — nothing is delivered. Any prepare
// error rolls EVERY shard back and discards the directory overlay, so a
// mid-fleet failure leaves fleet and directory byte-identical to their
// pre-transaction state (the partial-commit window the non-two-phase
// protocol had is closed). Phase 2 commits every shard: the staged
// deliveries run in shard order, each shard's in log order. A delivery
// error in phase 2 can no longer unwind state anywhere — the remaining
// shards still commit (their data and the single-engine AFTER-trigger
// contract both demand it), the full overlay folds, and the first error
// surfaces to the caller.
func (tx *Tx) commit() error {
	m := tx.e.om.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	for si, h := range tx.hs {
		if err := h.Prepare(); err != nil {
			tx.rollback()
			return fmt.Errorf("shard %d prepare: %w", si, err)
		}
	}
	if m != nil {
		m.prepare.Since(t0)
	}
	if tx.barrier != nil {
		tx.barrier()
	}
	var t1 time.Time
	if m != nil {
		t1 = time.Now()
	}
	var firstErr error
	for si, h := range tx.hs {
		if err := h.Commit(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d commit: %w", si, err)
		}
	}
	tx.e.router.commit(tx.ov)
	if m != nil {
		m.commit.Since(t1)
	}
	tx.span.End()
	return firstErr
}

// rollback rolls every shard back and discards the directory overlay.
func (tx *Tx) rollback() {
	for _, h := range tx.hs {
		_ = h.Rollback()
	}
	tx.span.SetAttr("aborted", "true")
	tx.span.End()
}

// pkVals extracts the row's primary-key values.
func pkVals(rt *route, row reldb.Row) []xdm.Value {
	ks := make([]xdm.Value, len(rt.pkIdx))
	for i, c := range rt.pkIdx {
		ks[i] = row[c]
	}
	return ks
}
