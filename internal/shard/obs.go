package shard

import (
	"quark/internal/core"
	"quark/internal/obs"
)

// shardObs is the fleet coordinator's resolved metric-handle set, held
// behind an atomic pointer on Engine: nil is the disabled fast path (one
// load + branch on the statement and commit paths, no clock reads).
type shardObs struct {
	reg        *obs.Registry
	routedStmt *obs.Counter   // quark_shard_stmt_routed_total: single-shard fast-path statements
	distStmt   *obs.Counter   // quark_shard_tx_total: distributed transactions (incl. rebalances)
	prepare    *obs.Histogram // quark_shard_prepare_ns: phase 1 (prepare-all) across the fleet
	commit     *obs.Histogram // quark_shard_commit_ns: phase 2 (commit-all) incl. directory fold
	rebalMoves *obs.Counter   // quark_shard_rebalance_moves_total: groups that changed placement
}

// EnableObs attaches one metrics registry to the whole fleet: every
// shard's core engine records into the same named series (histograms
// aggregate fleet-wide; see core.EnableObsShared), the shared dispatcher
// and outbox attach through their own Enable* paths, the 2PC phases and
// routing decisions of the coordinator get their own series, and
// rebalance/grow/shrink transitions emit structured events. Fleet-wide
// counter totals (fires, actions, relational-layer access paths) are
// exported as snapshot-time collectors summing over the live topology.
// Passing nil detaches. Call at setup time, like EnableAsyncDispatch;
// engines appended later by Grow attach automatically.
func (e *Engine) EnableObs(reg *obs.Registry) {
	engines, _ := e.fleet()
	if reg == nil {
		e.om.Store(nil)
		for _, ce := range engines {
			ce.EnableObsShared(nil)
		}
		return
	}
	m := &shardObs{
		reg:        reg,
		routedStmt: reg.Counter("quark_shard_stmt_routed_total"),
		distStmt:   reg.Counter("quark_shard_tx_total"),
		prepare:    reg.Histogram("quark_shard_prepare_ns", nil),
		commit:     reg.Histogram("quark_shard_commit_ns", nil),
		rebalMoves: reg.Counter("quark_shard_rebalance_moves_total"),
	}
	e.om.Store(m)
	for _, ce := range engines {
		ce.EnableObsShared(reg)
	}
	reg.Func("quark_core_fires_total", func() int64 {
		engines, _ := e.fleet()
		var t int64
		for _, ce := range engines {
			t += ce.Stats().Fires
		}
		return t
	})
	reg.Func("quark_core_actions_total", func() int64 {
		engines, _ := e.fleet()
		var t int64
		for _, ce := range engines {
			t += ce.Stats().Actions
		}
		return t
	})
	reg.Func("quark_reldb_statements_total", func() int64 {
		_, dbs := e.fleet()
		var t int64
		for _, db := range dbs {
			t += db.Stats().Statements
		}
		return t
	})
	reg.Func("quark_reldb_full_scans_total", func() int64 {
		_, dbs := e.fleet()
		var t int64
		for _, db := range dbs {
			t += db.Stats().FullScans
		}
		return t
	})
	reg.Func("quark_reldb_index_lookups_total", func() int64 {
		_, dbs := e.fleet()
		var t int64
		for _, db := range dbs {
			t += db.Stats().IndexLookups
		}
		return t
	})
	reg.GaugeFunc("quark_core_materialized_bytes", func() int64 {
		var t int64
		for _, gs := range e.GroupStats() {
			t += gs.SnapshotBytes
		}
		return t
	})
	reg.GaugeFunc("quark_core_materialized_groups", func() int64 {
		var t int64
		for _, gs := range e.GroupStats() {
			if gs.Mode == core.ModeMaterialized {
				t++
			}
		}
		return t
	})
	reg.GaugeFunc("quark_shard_shards", func() int64 { return int64(e.NumShards()) })
	reg.GaugeFunc("quark_shard_dir_entries", func() int64 { return int64(e.router.DirSize()) })
}

// ObsRegistry returns the attached registry (nil when disabled).
func (e *Engine) ObsRegistry() *obs.Registry {
	if m := e.om.Load(); m != nil {
		return m.reg
	}
	return nil
}

// Snapshot is the fleet's unified cross-layer observability snapshot:
// structural counters (Stats, with the per-shard breakdown, the shared
// dispatcher's queue counters, and the outbox watermarks) plus the
// attached registry's metrics, histograms, and recent events.
type Snapshot struct {
	Stats Stats        `json:"stats"`
	Obs   obs.Snapshot `json:"obs"`
}

// Snapshot captures the fleet and its registry in one call. With
// observability disabled the Obs half is empty but Stats is still live.
func (e *Engine) Snapshot() Snapshot {
	var reg *obs.Registry
	if m := e.om.Load(); m != nil {
		reg = m.reg
	}
	return Snapshot{Stats: e.Stats(), Obs: reg.Snapshot()}
}
