package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

// newWatchedEngine builds a catalog fleet with a product-update trigger
// installed and every delivery recorded.
func newWatchedEngine(t *testing.T, n int) (*Engine, *[]string, *sync.Mutex) {
	t.Helper()
	e := newCatalogEngine(t, n)
	var mu sync.Mutex
	var got []string
	e.RegisterAction("notify", func(inv core.Invocation) error {
		mu.Lock()
		got = append(got, inv.Trigger+":"+inv.New.Serialize(false))
		mu.Unlock()
		return nil
	})
	if err := e.CreateView("m", `<m>{for $q in view('default')/product/row return <p name={$q/pname} mfr={$q/mfr}></p>}</m>`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER watch AFTER UPDATE ON view('m')/p DO notify(NEW_NODE)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e, &got, &mu
}

// stateDump renders every shard's rows plus the directory for
// byte-identical comparison.
func stateDump(e *Engine) string {
	var sb strings.Builder
	for si := 0; si < e.NumShards(); si++ {
		db := e.Shard(si).DB()
		for _, tbl := range []string{"product", "vendor"} {
			var lines []string
			for _, r := range db.AllRows(tbl) {
				lines = append(lines, xdm.TupleKey(r))
			}
			sort.Strings(lines)
			fmt.Fprintf(&sb, "shard %d %s: %s\n", si, tbl, strings.Join(lines, " | "))
		}
	}
	dir := e.Router().DirSnapshot()
	keys := make([]string, 0, len(dir))
	for k := range dir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "dir %q -> %d\n", k, dir[k])
	}
	return sb.String()
}

// TestTwoPhasePrepareFailureRollsBackFleet: a prepare-phase failure on ANY
// shard of a multi-shard transaction leaves every shard and the routing
// directory byte-identical to the pre-transaction state, with nothing
// delivered — the partial-commit window the pre-2PC protocol had.
func TestTwoPhasePrepareFailureRollsBackFleet(t *testing.T) {
	const n = 3
	for k := 0; k < n; k++ {
		t.Run(fmt.Sprintf("failShard=%d", k), func(t *testing.T) {
			e, got, mu := newWatchedEngine(t, n)
			mustInsert(t, e, "product",
				row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"),
				row("P3", "OLED 27", "LG"), row("P4", "Plasma 42", "Panasonic"))
			mustInsert(t, e, "vendor", row("Amazon", "P1", 100.0), row("Bestbuy", "P3", 150.0))
			pre := stateDump(e)

			boom := errors.New("injected prepare failure")
			e.Shard(k).SetPrepareCheck(func([]core.Invocation) error { return boom })
			err := e.Batch(func(tx *Tx) error {
				// Touch every product (spanning shards), insert a row, and
				// migrate P1 to another routing group.
				if _, err := tx.Update("product", func(reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row {
					r[2] = xdm.Str("ACME")
					return r
				}); err != nil {
					return err
				}
				if err := tx.Insert("product", row("P9", "QLED 55", "TCL")); err != nil {
					return err
				}
				_, err := tx.UpdateByPK("product", []xdm.Value{xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
					r[1] = xdm.Str("Elsewhere")
					return r
				})
				return err
			})
			e.Shard(k).SetPrepareCheck(nil)
			if !errors.Is(err, boom) {
				t.Fatalf("batch error = %v, want the injected prepare failure", err)
			}
			mu.Lock()
			delivered := len(*got)
			mu.Unlock()
			if delivered != 0 {
				t.Errorf("aborted transaction delivered %d notifications: %v", delivered, *got)
			}
			if post := stateDump(e); post != pre {
				t.Errorf("aborted transaction left partial state:\n--- before ---\n%s--- after ---\n%s", pre, post)
			}
		})
	}
}

// TestTwoPhaseCommitDeliveryErrorCommitsAll: once every shard prepared, a
// delivery error during any shard's commit phase surfaces to the caller
// but can no longer unwind state — every shard's data commits and the
// directory folds completely, matching the single engine's AFTER-trigger
// contract instead of the old half-committed fleet.
func TestTwoPhaseCommitDeliveryErrorCommitsAll(t *testing.T) {
	const n = 3
	e, _, _ := newWatchedEngine(t, n)
	mustInsert(t, e, "product",
		row("P1", "CRT 15", "Samsung"), row("P2", "LCD 19", "Samsung"),
		row("P3", "OLED 27", "LG"), row("P4", "Plasma 42", "Panasonic"))

	// Make exactly one shard's deliveries fail: override the action on the
	// shard owning P3 (registrations are per embedded engine).
	owner, ok := e.OwnerOf("product", xdm.Str("P3"))
	if !ok {
		t.Fatal("P3 not in directory")
	}
	boom := errors.New("injected delivery failure")
	e.Shard(owner).RegisterAction("notify", func(core.Invocation) error { return boom })

	err := e.Batch(func(tx *Tx) error {
		_, err := tx.Update("product", func(reldb.Row) bool { return true }, func(r reldb.Row) reldb.Row {
			r[2] = xdm.Str("ACME")
			return r
		})
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("batch error = %v, want the injected delivery failure", err)
	}
	// Every shard committed: all four rows carry the update, wherever they
	// live — including shards after the failing one in commit order.
	for _, pid := range []string{"P1", "P2", "P3", "P4"} {
		si, ok := e.OwnerOf("product", xdm.Str(pid))
		if !ok {
			t.Fatalf("%s lost from directory", pid)
		}
		r, found, _ := e.Shard(si).GetByPK("product", xdm.Str(pid))
		if !found || r[2].Lexical() != "ACME" {
			t.Errorf("%s on shard %d after commit-phase delivery error: found=%v row=%v (state must commit fleet-wide)", pid, si, found, r)
		}
	}
}
