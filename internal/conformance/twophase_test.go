package conformance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"quark/internal/core"
	"quark/internal/shard"
	"quark/internal/workload"
	"quark/internal/xdm"
)

// TestGoldenAbortFirst proves aborted transactions leave zero trace: every
// batched begin..commit block is first attempted with an armed
// prepare-phase failure (the runner asserts the attempt errors and
// delivers nothing) and then run for real — and the final log must STILL
// be byte-identical to the committed goldens, on the single engine and on
// sharded fleets. Any state or directory leakage from the aborted attempt
// would corrupt the retry or a later unit and show up as golden drift.
func TestGoldenAbortFirst(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 2, 4} {
				single, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n})
				if err != nil {
					t.Fatalf("shards=%d single: %v", n, err)
				}
				batched, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n, Batched: true, AbortFirst: true})
				if err != nil {
					t.Fatalf("shards=%d batched+abortfirst: %v", n, err)
				}
				got := "== single ==\n" + single + "== batched ==\n" + batched
				if got != string(want) {
					t.Errorf("shards=%d abort-first run diverges from golden:\n%s", n, diffText(string(want), got))
				}
			}
			// One translated mode too: the staged GROUPED plans must abort
			// as cleanly as the materialized oracle's.
			oracle, err := Run(sc, core.ModeMaterialized, true)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunStyle(sc, core.ModeGrouped, RunOpts{Shards: 2, Batched: true, AbortFirst: true})
			if err != nil {
				t.Fatalf("grouped shards=2 batched+abortfirst: %v", err)
			}
			if got != oracle {
				t.Errorf("grouped abort-first run diverges from oracle:\n%s", diffText(oracle, got))
			}
		})
	}
}

var errInjected = errors.New("conformance: injected failure")

// fleetState renders every shard's rows (sorted per table) plus the
// routing directory as one canonical string, for byte-identical
// before/after comparison around aborted transactions.
func fleetState(e *shard.Engine, tables []string) string {
	var sb strings.Builder
	for si := 0; si < e.NumShards(); si++ {
		db := e.Shard(si).DB()
		for _, tbl := range tables {
			lines := []string{}
			for _, r := range db.AllRows(tbl) {
				lines = append(lines, xdm.TupleKey(r))
			}
			sort.Strings(lines)
			fmt.Fprintf(&sb, "shard %d %s [%d]\n", si, tbl, len(lines))
			for _, l := range lines {
				fmt.Fprintf(&sb, "  %q\n", l)
			}
		}
	}
	dir := e.Router().DirSnapshot()
	keys := make([]string, 0, len(dir))
	for k := range dir {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "dir %q -> %d\n", k, dir[k])
	}
	return sb.String()
}

// checkFleetAgainstOracle requires the fleet's union of rows to equal the
// oracle's, table by table (multiset comparison on canonical row keys).
func checkFleetAgainstOracle(t *testing.T, i int, seed int64, oracle *workload.Setup, sharded *workload.ShardedSetup, tables []string) {
	t.Helper()
	for _, tbl := range tables {
		var want, got []string
		for _, r := range oracle.DB.AllRows(tbl) {
			want = append(want, xdm.TupleKey(r))
		}
		for si := 0; si < sharded.Engine.NumShards(); si++ {
			for _, r := range sharded.Engine.Shard(si).DB().AllRows(tbl) {
				got = append(got, xdm.TupleKey(r))
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("op %d: table %s diverges from oracle (%d rows vs %d) [replay: -seed %d]",
				i, tbl, len(got), len(want), seed)
		}
	}
}

// checkDirectoryInvariant requires the routing directory to agree exactly
// with the rows the shards actually hold: every row's entry points at its
// shard, and there are no entries for rows that do not exist. It runs
// after every op — in particular after every aborted transaction.
func checkDirectoryInvariant(t *testing.T, i int, seed int64, e *shard.Engine, tables []string) {
	t.Helper()
	total := 0
	for _, tbl := range tables {
		for si := 0; si < e.NumShards(); si++ {
			for _, r := range e.Shard(si).DB().AllRows(tbl) {
				total++
				owner, ok := e.OwnerOf(tbl, r[0])
				if !ok {
					t.Fatalf("op %d: directory lost %s row id=%s held by shard %d [replay: -seed %d]",
						i, tbl, r[0].Lexical(), si, seed)
				}
				if owner != si {
					t.Fatalf("op %d: directory says %s id=%s is on shard %d but shard %d holds it [replay: -seed %d]",
						i, tbl, r[0].Lexical(), owner, si, seed)
				}
			}
		}
	}
	if ds := e.Router().DirSize(); ds != total {
		t.Fatalf("op %d: directory holds %d entries for %d rows (stale or missing entries) [replay: -seed %d]",
			i, ds, total, seed)
	}
}

// TestShardFuzzFailureInjection is the failure-injection half of the
// sharded fuzzer: the same seeded stream runs with faults injected into
// the two-phase protocol, and every op must leave the fleet all-or-nothing
// against the single-engine oracle.
//
//   - phase=prepare: every third op arms a prepare-phase failure on a
//     rotating shard k. An op that trips it (any distributed transaction —
//     prepare runs on every shard) must leave all shards AND the routing
//     directory byte-identical to their pre-op state; the op is then
//     replayed for real and must match the oracle.
//   - phase=commit: every third op arms a one-shot action failure. A
//     delivery error during phase 2 must surface WITHOUT unwinding state
//     anywhere: the whole fleet still commits, matching the oracle's
//     AFTER-trigger contract (data stands when an action errs).
//
// After every op the fleet is diffed against the oracle and the directory
// consistency invariant is re-checked.
func TestShardFuzzFailureInjection(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 16, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	for _, n := range []int{2, 4} {
		for _, phase := range []string{"prepare", "commit"} {
			t.Run(fmt.Sprintf("shards=%d/%s", n, phase), func(t *testing.T) {
				seed := *fuzzSeed
				t.Logf("replay with: go test ./internal/conformance -run TestShardFuzzFailureInjection -seed %d -fuzzops %d", seed, *fuzzOps)
				fuzzFailures(t, p, sp, n, phase, seed)
			})
		}
	}
}

func fuzzFailures(t *testing.T, p workload.Params, sp workload.StreamParams, shards int, phase string, seed int64) {
	t.Helper()
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := workload.Build(p, core.ModeGrouped, seed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := workload.BuildSharded(p, core.ModeGrouped, shards, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Engine.RegisterAction("notify", func(core.Invocation) error { return nil })
	// failArm makes the NEXT sharded delivery fail (one-shot), injecting a
	// commit-phase action error.
	var failArm atomic.Bool
	sharded.Engine.RegisterAction("notify", func(core.Invocation) error {
		if failArm.CompareAndSwap(true, false) {
			return errInjected
		}
		return nil
	})

	tables := []string{p.TableName(0), p.TableName(1)}
	oApp := workload.SingleApplier{E: oracle.Engine}
	sApp := workload.ShardApplier{E: sharded.Engine}
	injected, aborted := 0, 0
	for i, op := range ops {
		// prepare: arm every op (only distributed transactions prepare, so
		// this aborts-and-retries every one in the stream, on a rotating
		// shard). commit: arm every third op — the one-shot action failure
		// trips on whatever the next delivery is.
		inject := phase == "prepare" || i%3 == 0
		k := i % shards
		if inject {
			switch phase {
			case "prepare":
				sharded.Engine.Shard(k).SetPrepareCheck(func([]core.Invocation) error { return errInjected })
			case "commit":
				failArm.Store(true)
			}
		}
		pre := fleetState(sharded.Engine, tables)
		err := workload.ApplyOp(sApp, p, op)
		if inject && phase == "prepare" {
			sharded.Engine.Shard(k).SetPrepareCheck(nil)
		}
		failArm.Store(false)
		if err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("op %d (%+v): unexpected error %v [replay: -seed %d]", i, op, err, seed)
			}
			injected++
			if phase == "prepare" {
				aborted++
				// The acceptance bar: an aborted distributed transaction
				// leaves every shard and the directory byte-identical.
				if post := fleetState(sharded.Engine, tables); post != pre {
					t.Fatalf("op %d (%+v): aborted transaction left partial state [replay: -seed %d]:\n--- before ---\n%s\n--- after ---\n%s",
						i, op, seed, pre, post)
				}
				// Retry disarmed: the op must now apply cleanly.
				if err := workload.ApplyOp(sApp, p, op); err != nil {
					t.Fatalf("op %d (%+v): replay after abort: %v [replay: -seed %d]", i, op, err, seed)
				}
			}
			// phase=commit: the error surfaced but the fleet committed; the
			// oracle comparison below proves it committed COMPLETELY.
		}
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on oracle: %v [replay: -seed %d]", i, op, err, seed)
		}
		checkFleetAgainstOracle(t, i, seed, oracle, sharded, tables)
		checkDirectoryInvariant(t, i, seed, sharded.Engine, tables)
	}
	if injected == 0 {
		t.Fatalf("stream tripped no injected failures; the run proved nothing [replay: -seed %d]", seed)
	}
	t.Logf("%d ops, %d injected failures (%d aborted transactions)", len(ops), injected, aborted)
}
