package conformance

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/wire"
	"quark/internal/workload"
)

// Fuzzer knobs. The defaults are pinned so CI failures reproduce with a
// bare `go test -run TestShardFuzz`; pass -seed to explore, and replay a
// reported failure with the seed the test logs.
var (
	fuzzSeed = flag.Int64("seed", 1, "seed for the sharded differential fuzzer (streams are replayable)")
	fuzzOps  = flag.Int("fuzzops", 60, "ops per fuzzer configuration (N-shards x delivery-style)")
)

// fuzzStyle selects how the two engines under comparison deliver actions.
type fuzzStyle uint8

const (
	fuzzSync fuzzStyle = iota
	fuzzAsync
	fuzzOutbox
)

func (s fuzzStyle) String() string {
	switch s {
	case fuzzSync:
		return "sync"
	case fuzzAsync:
		return "async"
	default:
		return "outbox"
	}
}

// TestShardFuzz is the seeded differential fuzzer of the sharding
// subsystem: a random update stream (updates, inserts, deletes,
// cross-root moves, multi-root transactions) runs through the sharded
// engine and the single-engine oracle, and the two invocation streams
// must be byte-identical, op for op — across N in {1, 2, 4} shards and
// sync / async / outbox delivery. With the default -fuzzops 60 the nine
// configurations replay 540 ops; every run is reproducible from the
// logged seed.
func TestShardFuzz(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 192, Fanout: 16, NumTriggers: 24, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	for _, n := range []int{1, 2, 4} {
		for _, style := range []fuzzStyle{fuzzSync, fuzzAsync, fuzzOutbox} {
			t.Run(fmt.Sprintf("shards=%d/%s", n, style), func(t *testing.T) {
				seed := *fuzzSeed
				t.Logf("replay with: go test ./internal/conformance -run TestShardFuzz -seed %d -fuzzops %d", seed, *fuzzOps)
				fuzzOne(t, p, sp, n, style, seed)
			})
		}
	}
}

// capture is a notification recorder shared by the two engines' action
// registrations: each op's deliveries accumulate (concurrently in async
// styles) and take() drains them as one sorted unit.
type capture struct {
	mu    sync.Mutex
	lines []string
}

func (c *capture) action(inv core.Invocation) error {
	line := formatNotify(inv.Trigger, inv.Event, inv.Args, inv.New)
	c.mu.Lock()
	c.lines = append(c.lines, line)
	c.mu.Unlock()
	return nil
}

// take drains the unit's lines in delivery order (per trigger, the order
// the lane executed — appends happen inside the action, which per-trigger
// FIFO serializes even in async styles).
func (c *capture) take() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.lines
	c.lines = nil
	return out
}

// perTrigger splits a unit's delivery-ordered lines into per-trigger
// subsequences (a formatNotify line's second field is the trigger name).
func perTrigger(lines []string) map[string][]string {
	out := map[string][]string{}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) > 1 {
			out[f[1]] = append(out[f[1]], l)
		}
	}
	return out
}

func sortedJoin(lines []string) string {
	s := append([]string(nil), lines...)
	sort.Strings(s)
	return strings.Join(s, "\n")
}

func fuzzOne(t *testing.T, p workload.Params, sp workload.StreamParams, shards int, style fuzzStyle, seed int64) {
	t.Helper()
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}

	// Both engines run GROUPED translation: the differential suite already
	// proves the modes agree, the fuzzer isolates the sharding layer.
	oracle, err := workload.Build(p, core.ModeGrouped, seed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := workload.BuildSharded(p, core.ModeGrouped, shards, seed)
	if err != nil {
		t.Fatal(err)
	}
	var oCap, sCap capture
	oracle.Engine.RegisterAction("notify", oCap.action)
	sharded.Engine.RegisterAction("notify", sCap.action)

	oDrain, sDrain := func() {}, func() {}
	switch style {
	case fuzzAsync:
		cfg := dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}
		if err := oracle.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = oracle.Engine.Close() }()
		defer func() { _ = sharded.Engine.Close() }()
		oDrain, sDrain = oracle.Engine.Drain, sharded.Engine.Drain
	case fuzzOutbox:
		cfg := dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}
		oLog, err := outbox.Open(t.TempDir(), outbox.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer oLog.Close()
		sLog, err := outbox.Open(t.TempDir(), outbox.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer sLog.Close()
		if err := oracle.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = oracle.Engine.Close() }()
		defer func() { _ = sharded.Engine.Close() }()
		// nil sink: the log is a durability layer under the in-process
		// actions, so the capture path stays identical to the other styles
		// while every delivery still pays append+ack on the shared log.
		if err := oracle.Engine.EnableOutbox(oLog, nil); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Engine.EnableOutbox(sLog, nil); err != nil {
			t.Fatal(err)
		}
		oDrain, sDrain = oracle.Engine.Drain, sharded.Engine.Drain
		defer func() {
			// The shared log must account for every sharded delivery: all
			// appended records acknowledged once the fleet is drained.
			sharded.Engine.Drain()
			st := sLog.Stats()
			if st.Acked != st.NextSeq-1 {
				t.Errorf("sharded outbox: acked %d of %d appended", st.Acked, st.NextSeq-1)
			}
		}()
	}

	oApp := workload.SingleApplier{E: oracle.Engine}
	sApp := workload.ShardApplier{E: sharded.Engine}
	for i, op := range ops {
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on oracle: %v [replay: -seed %d]", i, op, err, seed)
		}
		oDrain()
		if err := workload.ApplyOp(sApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on sharded: %v [replay: -seed %d]", i, op, err, seed)
		}
		sDrain()
		want, got := oCap.take(), sCap.take()
		// The unit's invocation SET must match exactly. Global order is
		// not part of the contract (the sharded engine activates in
		// (shard, storage-key) order, the single engine in one global
		// sort), so the set comparison sorts...
		if sortedJoin(want) != sortedJoin(got) {
			t.Fatalf("op %d (%+v) diverges [replay: -seed %d]:\noracle:\n  %s\nsharded:\n  %s",
				i, op, seed, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
		}
		// ...but per-trigger delivery ORDER is the contract (FIFO lanes
		// spanning shards), so each trigger's subsequence must match the
		// oracle's unsorted.
		wantSeq, gotSeq := perTrigger(want), perTrigger(got)
		for trig, ws := range wantSeq {
			if strings.Join(ws, "\n") != strings.Join(gotSeq[trig], "\n") {
				t.Fatalf("op %d: trigger %s delivery order diverges [replay: -seed %d]:\noracle:\n  %s\nsharded:\n  %s",
					i, trig, seed, strings.Join(ws, "\n  "), strings.Join(gotSeq[trig], "\n  "))
			}
		}
	}

	// End-state agreement: the fleet's union of rows equals the oracle's.
	leaf := p.TableName(p.Depth - 1)
	want := oracle.DB.RowCount(leaf)
	got := 0
	for i := 0; i < sharded.Engine.NumShards(); i++ {
		got += sharded.Engine.Shard(i).DB().RowCount(leaf)
	}
	if got != want {
		t.Errorf("after %d ops the fleet holds %d leaf rows, oracle %d [replay: -seed %d]", len(ops), got, want, seed)
	}
}

// TestShardFuzzReplayedSink runs one fuzz configuration with a REAL sink
// on the sharded engine's outbox and rebuilds the notification stream
// from the segment log via the wire codec, requiring it to contain
// exactly the oracle's deliveries (global per-trigger order preserved by
// the shared append stripes). This closes the loop the conformance
// Replayed style covers for scenarios, on fuzzer-generated streams.
func TestShardFuzzReplayedSink(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 16, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	seed := *fuzzSeed
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := workload.Build(p, core.ModeGrouped, seed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := workload.BuildSharded(p, core.ModeGrouped, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	var oCap capture
	oracle.Engine.RegisterAction("notify", oCap.action)
	sharded.Engine.RegisterAction("notify", func(core.Invocation) error { return nil })

	lg, err := outbox.Open(t.TempDir(), outbox.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if err := sharded.Engine.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sharded.Engine.Close() }()
	sink := outbox.SinkFunc(func(*wire.Record) error { return nil })
	if err := sharded.Engine.EnableOutbox(lg, sink); err != nil {
		t.Fatal(err)
	}

	oApp := workload.SingleApplier{E: oracle.Engine}
	sApp := workload.ShardApplier{E: sharded.Engine}
	var want []string
	for i, op := range ops {
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d on oracle: %v", i, err)
		}
		want = append(want, oCap.take()...)
		if err := workload.ApplyOp(sApp, p, op); err != nil {
			t.Fatalf("op %d on sharded: %v", i, err)
		}
		sharded.Engine.Drain()
	}
	recs, err := lg.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range recs {
		got = append(got, formatRecord(r))
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(want, "\n") != strings.Join(got, "\n") {
		t.Fatalf("replayed log diverges from oracle deliveries [replay: -seed %d]:\noracle %d lines, log %d lines", seed, len(want), len(got))
	}
}
