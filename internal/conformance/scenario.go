// Package conformance is a golden-file conformance harness for the
// trigger-translation pipeline, in the spirit of RegreSQL's
// expected-result files: scenario fixtures under testdata/ declare a
// schema, data, an XML view, XML triggers, and an update script (with
// optional begin/commit/rollback batch blocks); the committed golden
// files hold the notification log the MATERIALIZED oracle produces for
// the script, executed both statement-by-statement and batched. The
// differential driver then requires every translation mode (UNGROUPED,
// GROUPED, GROUPED-AGG) to reproduce the oracle's log exactly in both
// execution styles. Regenerate goldens with `go test -run Golden -update`.
package conformance

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"quark/internal/schema"
	"quark/internal/shard"
	"quark/internal/xdm"
)

// Scenario is one parsed conformance fixture.
type Scenario struct {
	Name     string
	Schema   *schema.Schema
	Data     []DataRow
	Views    []View
	Triggers []string
	Script   []Stmt
	// Routing declares how the scenario partitions under the sharded
	// engine ([routing] section); tables without an entry use the shard
	// package defaults. The declared routing must co-locate every view
	// element's provenance — for the catalog scenarios that means routing
	// product BY its grouping column pname, vendors via their product.
	Routing []shard.TableRouting
}

// DataRow is one initial row of a table.
type DataRow struct {
	Table string
	Row   []xdm.Value
}

// View is one named XQuery view.
type View struct {
	Name string
	Src  string
}

// StmtKind enumerates script statements.
type StmtKind uint8

// Script statement kinds.
const (
	StInsert StmtKind = iota
	StUpdate
	StDelete
	StBegin
	StCommit
	StRollback
)

// Stmt is one script statement. For updates, Sets maps columns to new
// values; Where (when WhereAll is false) is an equality on one column.
type Stmt struct {
	Kind     StmtKind
	Table    string
	Row      []xdm.Value          // insert
	Sets     map[string]xdm.Value // update
	WhereCol string
	WhereVal xdm.Value
	WhereAll bool
	Text     string // source line, used as the unit label
}

// ParseFile loads and parses a scenario fixture.
func ParseFile(path, name string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(b), name)
}

// Parse parses the scenario fixture text.
func Parse(src, name string) (*Scenario, error) {
	sc := &Scenario{Name: name, Schema: schema.New()}
	lines := strings.Split(src, "\n")
	section := ""
	sectionArg := ""
	var block []string

	flush := func() error {
		text := strings.TrimSpace(strings.Join(block, "\n"))
		switch section {
		case "view":
			if text == "" {
				return fmt.Errorf("empty [view %s] section", sectionArg)
			}
			sc.Views = append(sc.Views, View{Name: sectionArg, Src: text})
		case "trigger":
			if text == "" {
				return fmt.Errorf("empty [trigger] section")
			}
			sc.Triggers = append(sc.Triggers, text)
		}
		block = nil
		return nil
	}

	for ln, raw := range lines {
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[") && strings.HasSuffix(trimmed, "]") {
			if err := flush(); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
			}
			head := strings.TrimSuffix(strings.TrimPrefix(trimmed, "["), "]")
			parts := strings.SplitN(head, " ", 2)
			section = parts[0]
			sectionArg = ""
			if len(parts) == 2 {
				sectionArg = strings.TrimSpace(parts[1])
			}
			continue
		}
		switch section {
		case "view", "trigger":
			block = append(block, line)
			continue
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		var err error
		switch section {
		case "schema":
			err = sc.parseTable(trimmed)
		case "data":
			err = sc.parseData(trimmed)
		case "routing":
			err = sc.parseRouting(trimmed)
		case "script":
			err = sc.parseStmt(trimmed)
		default:
			err = fmt.Errorf("content outside a known section: %q", trimmed)
		}
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
	}
	if err := flush(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(sc.Schema.Tables()) == 0 {
		return nil, fmt.Errorf("%s: scenario has no [schema] tables", name)
	}
	return sc, nil
}

// parseTable parses `table <name>: <col> <type> [pk] [fk(t.c)], ...`.
func (sc *Scenario) parseTable(line string) error {
	rest, ok := strings.CutPrefix(line, "table ")
	if !ok {
		return fmt.Errorf("expected `table <name>: ...`, got %q", line)
	}
	name, cols, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("missing `:` in table declaration %q", line)
	}
	t := &schema.Table{Name: strings.TrimSpace(name)}
	for _, colSpec := range strings.Split(cols, ",") {
		fields := strings.Fields(colSpec)
		if len(fields) < 2 {
			return fmt.Errorf("column spec %q needs `<name> <type>`", colSpec)
		}
		col := schema.Column{Name: fields[0]}
		switch fields[1] {
		case "int":
			col.Type = schema.TInt
		case "float":
			col.Type = schema.TFloat
		case "string":
			col.Type = schema.TString
		default:
			return fmt.Errorf("unknown column type %q", fields[1])
		}
		for _, flag := range fields[2:] {
			switch {
			case flag == "pk":
				t.PrimaryKey = append(t.PrimaryKey, col.Name)
			case strings.HasPrefix(flag, "fk(") && strings.HasSuffix(flag, ")"):
				ref := strings.TrimSuffix(strings.TrimPrefix(flag, "fk("), ")")
				rt, rc, ok := strings.Cut(ref, ".")
				if !ok {
					return fmt.Errorf("foreign key %q must be fk(table.column)", flag)
				}
				t.ForeignKeys = append(t.ForeignKeys, schema.ForeignKey{
					Columns: []string{col.Name}, RefTable: rt, RefColumns: []string{rc},
				})
			default:
				return fmt.Errorf("unknown column flag %q", flag)
			}
		}
		t.Columns = append(t.Columns, col)
	}
	return sc.Schema.AddTable(t)
}

// parseRouting parses one [routing] line:
//
//	<table>: by <col> [<col>...]   root table, partitioned by these columns
//	<table>: via <parent-table>    child table, co-located with its parent
func (sc *Scenario) parseRouting(line string) error {
	table, rule, ok := strings.Cut(line, ":")
	if !ok {
		return fmt.Errorf("expected `<table>: by <cols>` or `<table>: via <parent>`, got %q", line)
	}
	table = strings.TrimSpace(table)
	if _, err := sc.table(table); err != nil {
		return err
	}
	fields := strings.Fields(rule)
	if len(fields) < 2 {
		return fmt.Errorf("routing rule %q needs `by <cols>` or `via <parent>`", rule)
	}
	switch fields[0] {
	case "by":
		sc.Routing = append(sc.Routing, shard.TableRouting{Table: table, ByColumns: fields[1:]})
	case "via":
		if len(fields) != 2 {
			return fmt.Errorf("routing rule %q: via takes exactly one parent table", rule)
		}
		sc.Routing = append(sc.Routing, shard.TableRouting{Table: table, ViaParent: fields[1]})
	default:
		return fmt.Errorf("unknown routing rule %q (want by/via)", fields[0])
	}
	return nil
}

// parseData parses `<table>: v1 v2 v3`.
func (sc *Scenario) parseData(line string) error {
	table, vals, ok := strings.Cut(line, ":")
	if !ok {
		return fmt.Errorf("expected `<table>: values`, got %q", line)
	}
	table = strings.TrimSpace(table)
	row, err := sc.parseRow(table, vals)
	if err != nil {
		return err
	}
	sc.Data = append(sc.Data, DataRow{Table: table, Row: row})
	return nil
}

// tokenize splits on whitespace, honoring double quotes.
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			if inQuote {
				out = append(out, cur.String()) // may be empty
				cur.Reset()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func (sc *Scenario) table(name string) (*schema.Table, error) {
	t, ok := sc.Schema.Table(name)
	if !ok {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return t, nil
}

func (sc *Scenario) parseRow(table, vals string) ([]xdm.Value, error) {
	t, err := sc.table(table)
	if err != nil {
		return nil, err
	}
	toks := tokenize(vals)
	if len(toks) != len(t.Columns) {
		return nil, fmt.Errorf("table %s expects %d values, got %d (%q)", table, len(t.Columns), len(toks), vals)
	}
	row := make([]xdm.Value, len(toks))
	for i, tok := range toks {
		v, err := typedValue(t.Columns[i].Type, tok)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", t.Columns[i].Name, err)
		}
		row[i] = v
	}
	return row, nil
}

func typedValue(ct schema.ColType, tok string) (xdm.Value, error) {
	if tok == "NULL" {
		return xdm.Null, nil
	}
	switch ct {
	case schema.TInt:
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("bad int %q", tok)
		}
		return xdm.Int(n), nil
	case schema.TFloat:
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("bad float %q", tok)
		}
		return xdm.Float(f), nil
	default:
		return xdm.Str(tok), nil
	}
}

func (sc *Scenario) colType(table, col string) (schema.ColType, error) {
	t, err := sc.table(table)
	if err != nil {
		return 0, err
	}
	ci := t.ColIndex(col)
	if ci < 0 {
		return 0, fmt.Errorf("table %s has no column %q", table, col)
	}
	return t.Columns[ci].Type, nil
}

// parseStmt parses one script line.
func (sc *Scenario) parseStmt(line string) error {
	switch line {
	case "begin":
		sc.Script = append(sc.Script, Stmt{Kind: StBegin, Text: line})
		return nil
	case "commit":
		sc.Script = append(sc.Script, Stmt{Kind: StCommit, Text: line})
		return nil
	case "rollback":
		sc.Script = append(sc.Script, Stmt{Kind: StRollback, Text: line})
		return nil
	}
	fields := strings.SplitN(line, " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("bad statement %q", line)
	}
	op, rest := fields[0], strings.TrimSpace(fields[1])
	switch op {
	case "insert":
		table, vals, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("insert wants `insert <table>: values`, got %q", line)
		}
		table = strings.TrimSpace(table)
		row, err := sc.parseRow(table, vals)
		if err != nil {
			return err
		}
		sc.Script = append(sc.Script, Stmt{Kind: StInsert, Table: table, Row: row, Text: line})
		return nil
	case "update":
		// update <table> set c=v[, c=v] where c=v | where *
		setPart, wherePart, ok := strings.Cut(rest, " where ")
		if !ok {
			return fmt.Errorf("update needs a where clause (use `where *` for all rows): %q", line)
		}
		table, sets, ok := strings.Cut(setPart, " set ")
		if !ok {
			return fmt.Errorf("update wants `update <table> set ...`, got %q", line)
		}
		table = strings.TrimSpace(table)
		st := Stmt{Kind: StUpdate, Table: table, Sets: map[string]xdm.Value{}, Text: line}
		for _, as := range strings.Split(sets, ",") {
			col, val, ok := strings.Cut(strings.TrimSpace(as), "=")
			if !ok {
				return fmt.Errorf("bad assignment %q", as)
			}
			ct, err := sc.colType(table, strings.TrimSpace(col))
			if err != nil {
				return err
			}
			toks := tokenize(val)
			if len(toks) != 1 {
				return fmt.Errorf("bad assignment value %q", val)
			}
			v, err := typedValue(ct, toks[0])
			if err != nil {
				return err
			}
			st.Sets[strings.TrimSpace(col)] = v
		}
		if err := sc.parseWhere(&st, wherePart); err != nil {
			return err
		}
		sc.Script = append(sc.Script, st)
		return nil
	case "delete":
		table, wherePart, ok := strings.Cut(rest, " where ")
		if !ok {
			return fmt.Errorf("delete needs a where clause (use `where *` for all rows): %q", line)
		}
		st := Stmt{Kind: StDelete, Table: strings.TrimSpace(table), Text: line}
		if err := sc.parseWhere(&st, wherePart); err != nil {
			return err
		}
		sc.Script = append(sc.Script, st)
		return nil
	default:
		return fmt.Errorf("unknown statement %q", line)
	}
}

func (sc *Scenario) parseWhere(st *Stmt, where string) error {
	where = strings.TrimSpace(where)
	if where == "*" {
		st.WhereAll = true
		return nil
	}
	col, val, ok := strings.Cut(where, "=")
	if !ok {
		return fmt.Errorf("where clause must be `<col>=<val>` or `*`: %q", where)
	}
	st.WhereCol = strings.TrimSpace(col)
	ct, err := sc.colType(st.Table, st.WhereCol)
	if err != nil {
		return err
	}
	toks := tokenize(val)
	if len(toks) != 1 {
		return fmt.Errorf("bad where value %q", val)
	}
	v, err := typedValue(ct, toks[0])
	if err != nil {
		return err
	}
	st.WhereVal = v
	return nil
}
