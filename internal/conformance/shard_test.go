package conformance

import (
	"os"
	"path/filepath"
	"testing"

	"quark/internal/core"
)

// shardCounts are the fleet sizes the sharded conformance suite sweeps.
// N=1 pins the degenerate fleet to the single engine; N=2 and N=4 split
// the catalog's routing groups across shards, exercising distributed
// statements and cross-shard migrations in every scenario that moves
// rows between groups.
var shardCounts = []int{1, 2, 4}

// TestGoldenSharded runs the MATERIALIZED oracle on the sharded engine
// and requires the notification log to be byte-identical to the
// committed single-engine goldens, for every scenario, shard count, and
// execution style: the sharding layer must be observationally invisible.
func TestGoldenSharded(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range shardCounts {
				single, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n})
				if err != nil {
					t.Fatalf("shards=%d single: %v", n, err)
				}
				batched, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n, Batched: true})
				if err != nil {
					t.Fatalf("shards=%d batched: %v", n, err)
				}
				got := "== single ==\n" + single + "== batched ==\n" + batched
				if got != string(want) {
					t.Errorf("shards=%d diverges from single-engine golden:\n%s", n, diffText(string(want), got))
				}
			}
		})
	}
}

// TestGoldenShardedRebalance is the rebalance dress rehearsal: every
// scenario replays on N in {2, 4} shards with one forced routing-group
// migration injected before every unit, in both execution styles, and
// the notification log must STILL be byte-identical to the committed
// single-engine goldens — rebalancing is silent data movement, so a
// stream with migrations interleaved is indistinguishable from one
// without.
func TestGoldenShardedRebalance(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 4} {
				single, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n, Rebalance: true})
				if err != nil {
					t.Fatalf("shards=%d single: %v", n, err)
				}
				batched, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Shards: n, Batched: true, Rebalance: true})
				if err != nil {
					t.Fatalf("shards=%d batched: %v", n, err)
				}
				got := "== single ==\n" + single + "== batched ==\n" + batched
				if got != string(want) {
					t.Errorf("shards=%d with rebalances diverges from single-engine golden:\n%s", n, diffText(string(want), got))
				}
			}
		})
	}
}

// TestShardedDifferential requires every translation mode on the sharded
// engine to reproduce the single-engine oracle's log, across shard
// counts, both execution styles, and the async + replayed-outbox delivery
// paths (shared dispatcher / shared log spanning shards).
func TestShardedDifferential(t *testing.T) {
	modes := []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg}
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			oracles := map[bool]string{}
			for _, batched := range []bool{false, true} {
				oracle, err := Run(sc, core.ModeMaterialized, batched)
				if err != nil {
					t.Fatalf("oracle batched=%v: %v", batched, err)
				}
				oracles[batched] = oracle
			}
			for _, n := range shardCounts {
				for _, opts := range []RunOpts{
					{Shards: n}, {Shards: n, Batched: true},
					{Shards: n, Async: true},
					{Shards: n, Batched: true, Async: true, Replayed: true},
				} {
					style := "single"
					if opts.Batched {
						style = "batched"
					}
					if opts.Async {
						style += "+async"
					}
					if opts.Replayed {
						style += "+replayed"
					}
					for _, mode := range modes {
						got, err := RunStyle(sc, mode, opts)
						if err != nil {
							t.Fatalf("shards=%d %s/%s: %v", n, mode, style, err)
						}
						if got != oracles[opts.Batched] {
							t.Errorf("shards=%d %s/%s diverges from oracle:\n%s",
								n, mode, style, diffText(oracles[opts.Batched], got))
						}
					}
				}
			}
		})
	}
}
