package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quark/internal/core"
)

var update = flag.Bool("update", false, "regenerate golden files from the MATERIALIZED oracle")

func scenarioFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario fixtures under testdata/")
	}
	return files
}

func scenarioName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".txt")
}

// oracleOutput runs the scenario through the MATERIALIZED oracle in both
// execution styles and formats the combined golden text.
func oracleOutput(t *testing.T, sc *Scenario) string {
	t.Helper()
	single, err := Run(sc, core.ModeMaterialized, false)
	if err != nil {
		t.Fatalf("oracle single: %v", err)
	}
	batched, err := Run(sc, core.ModeMaterialized, true)
	if err != nil {
		t.Fatalf("oracle batched: %v", err)
	}
	return "== single ==\n" + single + "== batched ==\n" + batched
}

// TestGolden compares the oracle's notification log against the committed
// golden file for every scenario; -update rewrites the goldens.
func TestGolden(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			got := oracleOutput(t, sc)
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/conformance -run TestGolden -update` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch:\n%s", diffText(string(want), got))
			}
		})
	}
}

// TestDifferential requires every translation mode to reproduce the
// oracle's notification log exactly, statement-by-statement and batched,
// with actions delivered inline (sync) and through the async worker pool
// (with the per-unit Drain barrier the runner inserts).
func TestDifferential(t *testing.T) {
	modes := []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg}
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			// The oracle depends only on the execution style's batching,
			// not on how actions are delivered: compute it once per style.
			oracles := map[bool]string{}
			for _, batched := range []bool{false, true} {
				oracle, err := Run(sc, core.ModeMaterialized, batched)
				if err != nil {
					t.Fatalf("oracle batched=%v: %v", batched, err)
				}
				if !strings.Contains(oracle, "notify ") {
					t.Errorf("batched=%v: oracle fired no notifications; scenario exercises nothing", batched)
				}
				oracles[batched] = oracle
			}
			for _, opts := range []RunOpts{
				{Batched: false}, {Batched: true},
				{Batched: false, Async: true}, {Batched: true, Async: true},
				{Batched: false, Async: true, Replayed: true},
				{Batched: true, Async: true, Replayed: true},
			} {
				style := "single"
				if opts.Batched {
					style = "batched"
				}
				if opts.Async {
					style += "+async"
				}
				if opts.Replayed {
					style += "+replayed"
				}
				oracle := oracles[opts.Batched]
				for _, mode := range modes {
					got, err := RunStyle(sc, mode, opts)
					if err != nil {
						t.Fatalf("%s/%s: %v", mode, style, err)
					}
					if got != oracle {
						t.Errorf("%s/%s diverges from oracle:\n%s", mode, style, diffText(oracle, got))
					}
				}
			}
		})
	}
}

// TestGoldenAsync runs the oracle with async action dispatch and requires
// the log to be byte-identical to the committed (synchronous) golden
// files: the per-unit Drain barrier must fully mask the worker pool.
func TestGoldenAsync(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			single, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Async: true})
			if err != nil {
				t.Fatalf("async single: %v", err)
			}
			batched, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Batched: true, Async: true})
			if err != nil {
				t.Fatalf("async batched: %v", err)
			}
			got := "== single ==\n" + single + "== batched ==\n" + batched
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("async output diverges from sync golden:\n%s", diffText(string(want), got))
			}
		})
	}
}

// TestGoldenReplayed runs the oracle with async dispatch and the durable
// outbox, building the notification log from the segment files through
// the wire codec (the replayed-sink path), and requires it to be
// byte-identical to the committed synchronous goldens: serialization,
// the log, and replay ordering must lose nothing the action contract
// exposes.
func TestGoldenReplayed(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			single, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Async: true, Replayed: true})
			if err != nil {
				t.Fatalf("replayed single: %v", err)
			}
			batched, err := RunStyle(sc, core.ModeMaterialized, RunOpts{Batched: true, Async: true, Replayed: true})
			if err != nil {
				t.Fatalf("replayed batched: %v", err)
			}
			got := "== single ==\n" + single + "== batched ==\n" + batched
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("replayed-sink output diverges from sync golden:\n%s", diffText(string(want), got))
			}
		})
	}
}

// diffText renders a minimal line diff for failure messages.
func diffText(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			fmt.Fprintf(&sb, "  %s\n", w)
		} else {
			if w != "" || i < len(wl) {
				fmt.Fprintf(&sb, "- %s\n", w)
			}
			if g != "" || i < len(gl) {
				fmt.Fprintf(&sb, "+ %s\n", g)
			}
		}
	}
	return sb.String()
}
